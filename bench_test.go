// Benchmarks backing the experiment tables in EXPERIMENTS.md. Each family
// corresponds to an experiment ID from DESIGN.md:
//
//	E2  BenchmarkLBTPractical      — LBT vs n at small c (Theorem 3.2)
//	E3  BenchmarkLBTConcurrency    — LBT vs c at fixed n (Theorem 3.2)
//	E4  BenchmarkFZF, BenchmarkCrossover — FZF quasilinear for any c (Theorem 4.6)
//	E1  BenchmarkOracleBaseline    — the exact decider as the naive baseline
//	E6  BenchmarkWAVReduction      — exact weighted solve of Figure 5 instances
//	E7  BenchmarkQuorumVerify      — end-to-end verification of simulated stores
//	E8  BenchmarkSmallestK         — smallest-k search
//	E10 BenchmarkAblationDeepening — LBT deepening on/off, benign + trap
//	E12 BenchmarkSmallestDelta     — time-staleness binary search
//	     BenchmarkZones1AV         — the k=1 zone test for reference
//	     BenchmarkTraceCheck       — multi-register locality dispatch
//	     BenchmarkBandwidth        — §VI GBW: RCM heuristic vs exact
//	     BenchmarkRegularity       — §I safety/regularity classification
//
// Hot-path families added with the zero-allocation engine (run with
// -benchmem; compare against BENCH_baseline.json via benchstat):
//
//	BenchmarkFZF                — one-shot FZF (allocates a fresh arena)
//	BenchmarkFZFScratch         — FZF over a reused arena (0 allocs/op)
//	BenchmarkVerifierReuse      — engine-level k=2 check incl. witness check
//	BenchmarkTraceParse         — streaming multi-register parser
//	BenchmarkTraceCheckParallel — 1000-key trace, workers=1 vs GOMAXPROCS
package kat_test

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"kat/internal/bandwidth"
	"kat/internal/checkpoint"
	"kat/internal/faultfs"
	"kat/internal/fzf"
	"kat/internal/generator"
	"kat/internal/history"
	"kat/internal/lbt"
	"kat/internal/oracle"
	"kat/internal/quorum"
	"kat/internal/regularity"
	"kat/internal/trace"
	"kat/internal/wal"
	"kat/internal/wav"
	"kat/internal/wire"
	"kat/internal/zone"

	root "kat"
)

func mustPrepare(b *testing.B, h *history.History) *history.Prepared {
	b.Helper()
	p, err := history.Prepare(h)
	if err != nil {
		b.Fatalf("Prepare: %v", err)
	}
	return p
}

// E2: LBT across n at small fixed write concurrency (practical regime).
func BenchmarkLBTPractical(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000, 64000} {
		h := generator.KAtomic(generator.Config{
			Seed: 42, Ops: n, Concurrency: 4, StalenessDepth: 1, ReadFraction: 0.6,
		})
		p := mustPrepare(b, h)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if res := lbt.Check(p, lbt.Options{}); !res.Atomic {
					b.Fatal("rejected")
				}
			}
		})
	}
}

// E3: LBT across write concurrency c at fixed n (worst-case driver).
func BenchmarkLBTConcurrency(b *testing.B) {
	const n = 16000
	for _, c := range []int{2, 8, 32, 128, 512} {
		h := generator.Adversarial(generator.Config{Seed: 7, Ops: n, Concurrency: c})
		p := mustPrepare(b, h)
		b.Run(fmt.Sprintf("c=%d", c), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if res := lbt.Check(p, lbt.Options{}); !res.Atomic {
					b.Fatal("rejected")
				}
			}
		})
	}
}

// E4: FZF across n and c — stays quasilinear regardless of c.
func BenchmarkFZF(b *testing.B) {
	for _, c := range []int{4, 256} {
		for _, n := range []int{1000, 4000, 16000, 64000} {
			h := generator.Adversarial(generator.Config{Seed: 11, Ops: n, Concurrency: c})
			p := mustPrepare(b, h)
			b.Run(fmt.Sprintf("c=%d/n=%d", c, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if res := fzf.Check(p); !res.Atomic {
						b.Fatal("rejected")
					}
				}
			})
		}
	}
}

// FZF over a reused Scratch arena: the zero-allocation hot path.
func BenchmarkFZFScratch(b *testing.B) {
	for _, c := range []int{4, 256} {
		for _, n := range []int{1000, 16000} {
			h := generator.Adversarial(generator.Config{Seed: 11, Ops: n, Concurrency: c})
			p := mustPrepare(b, h)
			s := fzf.NewScratch()
			fzf.CheckScratch(p, s) // grow buffers before timing
			b.Run(fmt.Sprintf("c=%d/n=%d", c, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if res := fzf.CheckScratch(p, s); !res.Atomic {
						b.Fatal("rejected")
					}
				}
			})
		}
	}
}

// Engine-level reuse: prepared-history k=2 check through a long-lived
// Verifier, including the internal witness re-validation.
func BenchmarkVerifierReuse(b *testing.B) {
	h := generator.KAtomic(generator.Config{
		Seed: 42, Ops: 4000, Concurrency: 4, StalenessDepth: 1, ReadFraction: 0.6,
	})
	p := mustPrepare(b, h)
	v := root.NewVerifier()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := v.CheckPrepared(p, 2, root.Options{})
		if err != nil || !rep.Atomic {
			b.Fatalf("CheckPrepared: %v %+v", err, rep)
		}
	}
}

// E4 (crossover view): LBT vs FZF side by side on the same inputs.
func BenchmarkCrossover(b *testing.B) {
	const n = 16000
	for _, c := range []int{4, 256} {
		h := generator.Adversarial(generator.Config{Seed: 13, Ops: n, Concurrency: c})
		p := mustPrepare(b, h)
		b.Run(fmt.Sprintf("lbt/c=%d", c), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lbt.Check(p, lbt.Options{})
			}
		})
		b.Run(fmt.Sprintf("fzf/c=%d", c), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fzf.Check(p)
			}
		})
	}
}

// Reference: the k=1 zone test (Gibbons–Korach).
func BenchmarkZones1AV(b *testing.B) {
	for _, n := range []int{1000, 16000, 64000} {
		h := generator.KAtomic(generator.Config{
			Seed: 3, Ops: n, Concurrency: 4, StalenessDepth: 0, ReadFraction: 0.6,
		})
		p := mustPrepare(b, h)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if ok, _ := zone.Check1Atomic(p); !ok {
					b.Fatal("rejected")
				}
			}
		})
	}
}

// E1 baseline: the exact oracle on the same practical histories LBT/FZF
// handle — the naive-decider cost the polynomial algorithms remove.
func BenchmarkOracleBaseline(b *testing.B) {
	for _, n := range []int{250, 1000, 4000} {
		h := generator.KAtomic(generator.Config{
			Seed: 42, Ops: n, Concurrency: 4, StalenessDepth: 1, ReadFraction: 0.6,
		})
		p := mustPrepare(b, h)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := oracle.CheckK(p, 2, oracle.Options{})
				if err != nil || !res.Atomic {
					b.Fatalf("oracle: %v %+v", err, res)
				}
			}
		})
	}
}

// E6: exact weighted k-AV on Figure 5 reductions of growing item count.
func BenchmarkWAVReduction(b *testing.B) {
	for _, items := range []int{2, 4, 6, 8} {
		sizes := make([]int64, items)
		for i := range sizes {
			sizes[i] = int64(2 + i%3)
		}
		bp := wav.BinPacking{Sizes: sizes, Capacity: 6, Bins: 2}
		red, err := wav.Reduce(bp)
		if err != nil {
			b.Fatalf("Reduce: %v", err)
		}
		p := mustPrepare(b, red.History)
		b.Run(fmt.Sprintf("items=%d", items), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := oracle.CheckWeighted(p, red.Bound, oracle.Options{}); err != nil {
					b.Fatalf("CheckWeighted: %v", err)
				}
			}
		})
	}
}

// E7: verification cost on histories from the quorum simulator.
func BenchmarkQuorumVerify(b *testing.B) {
	configs := []struct {
		name string
		cfg  quorum.Config
	}{
		{"strict-3-2-2", quorum.Config{Replicas: 3, ReadQuorum: 2, WriteQuorum: 2,
			Clients: 6, OpsPerClient: 40}},
		{"weak-5-1-1", quorum.Config{Replicas: 5, ReadQuorum: 1, WriteQuorum: 1,
			Clients: 6, OpsPerClient: 40, ClockSkew: 15}},
	}
	for _, tc := range configs {
		tc.cfg.Seed = 9
		h, _, err := quorum.Run(tc.cfg)
		if err != nil {
			b.Fatalf("Run: %v", err)
		}
		p := mustPrepare(b, h)
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fzf.Check(p)
			}
		})
	}
}

// E8: smallest-k search end to end (normalize + dispatch + binary search).
func BenchmarkSmallestK(b *testing.B) {
	for _, depth := range []int{0, 1, 3} {
		h := generator.KAtomic(generator.Config{
			Seed: 17, Ops: 300, Concurrency: 2,
			StalenessDepth: depth, ForceDepth: true, ReadFraction: 0.5,
		})
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := root.SmallestK(h, root.Options{}); err != nil {
					b.Fatalf("SmallestK: %v", err)
				}
			}
		})
	}
}

// E10: LBT with iterative deepening disabled (the ablation). "benign" rows
// use generated adversarial-concurrency histories where deepening must be
// free; "trap" rows use the staircase construction with an adversarial
// candidate order, where plain Figure 2 LBT re-walks a long failing chain
// every epoch.
func BenchmarkAblationDeepening(b *testing.B) {
	type wl struct {
		name  string
		h     *history.History
		worst bool
	}
	wls := []wl{
		{"benign-c128", generator.Adversarial(generator.Config{Seed: 23, Ops: 16000, Concurrency: 128}), false},
		{"trap-1000", generator.LBTTrap(1000, 20), true},
		{"trap-4000", generator.LBTTrap(4000, 40), true},
	}
	for _, w := range wls {
		p := mustPrepare(b, w.h)
		b.Run("on/"+w.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lbt.Check(p, lbt.Options{WorstCaseOrder: w.worst})
			}
		})
		b.Run("off/"+w.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lbt.Check(p, lbt.Options{NoDeepening: true, WorstCaseOrder: w.worst})
			}
		})
	}
}

// Δ-atomicity: smallest time-staleness bound (binary search over zone
// checks) on histories of graded staleness.
func BenchmarkSmallestDelta(b *testing.B) {
	for _, depth := range []int{0, 2} {
		h := generator.KAtomic(generator.Config{
			Seed: 29, Ops: 400, Concurrency: 3, StalenessDepth: depth, ReadFraction: 0.5,
		})
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := root.SmallestDelta(h); err != nil {
					b.Fatalf("SmallestDelta: %v", err)
				}
			}
		})
	}
}

// buildBigTrace assembles a production-shaped multi-key trace: keys
// registers of opsPerKey operations each.
func buildBigTrace(keys, opsPerKey int) *root.Trace {
	tr := root.NewTrace()
	for key := 0; key < keys; key++ {
		h := generator.KAtomic(generator.Config{
			Seed: int64(key), Ops: opsPerKey, Concurrency: 3, StalenessDepth: 1,
		})
		for _, op := range h.Ops {
			tr.Add(fmt.Sprintf("key-%04d", key), op)
		}
	}
	return tr
}

// Streaming multi-register parser throughput (1000 keys x 40 ops).
func BenchmarkTraceParse(b *testing.B) {
	text := buildBigTrace(1000, 40).String()
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := root.ParseTrace(text); err != nil {
			b.Fatal(err)
		}
	}
}

// Parallel multi-key verification on a 1000-key trace: workers=1 is the
// sequential path (one reused Verifier), workers=0 is GOMAXPROCS.
func BenchmarkTraceCheckParallel(b *testing.B) {
	tr := buildBigTrace(1000, 40)
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{"workers=gomaxprocs", 0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep := root.CheckTraceParallel(tr, 2, root.Options{}, tc.workers)
				if !rep.Atomic() {
					b.Fatal("trace rejected")
				}
			}
		})
	}
}

// Streaming verification of the same 1000-key trace the parallel benchmark
// uses, end to end from text: parse + segment + verify overlapped.
func BenchmarkStreamCheck(b *testing.B) {
	text := serializeByStart(buildBigTrace(1000, 40))
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, _, err := root.StreamCheckTrace(strings.NewReader(text), 2, root.Options{},
			root.StreamOptions{})
		if err != nil || !rep.Atomic() {
			b.Fatalf("stream check: %v %v", err, rep.FailingKeys())
		}
	}
}

// heapPeak samples HeapAlloc on a ticker so benchmarks can report observed
// peak heap, not just allocation totals.
type heapPeak struct {
	stop, done chan struct{}
	peak       uint64
}

func sampleHeapPeak() *heapPeak {
	h := &heapPeak{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(h.done)
		var ms runtime.MemStats
		t := time.NewTicker(time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > h.peak {
					h.peak = ms.HeapAlloc
				}
			}
		}
	}()
	return h
}

func (h *heapPeak) finish() uint64 {
	close(h.stop)
	<-h.done
	return h.peak
}

var stream1M struct {
	once sync.Once
	text string
}

// stream1MText lazily builds a 1M-operation, 100-key trace serialized in
// arrival order (~25 MB of text). Built once per process, only when the 1M
// benchmarks actually run.
func stream1MText() string {
	stream1M.once.Do(func() {
		tr := root.NewTrace()
		for key := 0; key < 100; key++ {
			h := generator.KAtomic(generator.Config{
				Seed: int64(key), Ops: 10_000, Concurrency: 3,
				StalenessDepth: 1, ReadFraction: 0.6,
			})
			for _, op := range h.Ops {
				tr.Add(fmt.Sprintf("key-%03d", key), op)
			}
		}
		stream1M.text = serializeByStart(tr)
	})
	return stream1M.text
}

// The headline streaming claim on a 1M-op trace: verdicts identical to the
// monolithic engine with peak memory bounded by the open windows. Both
// variants report sampled peak heap; the stream variant also reports its
// live-operation peak and the parse position of the first verdict.
func BenchmarkStream1M(b *testing.B) {
	if testing.Short() {
		b.Skip("1M-op workload; skipped under -short (CI bench smoke)")
	}
	text := stream1MText()
	b.Run("stream", func(b *testing.B) {
		b.SetBytes(int64(len(text)))
		b.ReportAllocs()
		var last root.StreamStats
		runtime.GC()
		hp := sampleHeapPeak()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, stats, err := root.StreamCheckTrace(strings.NewReader(text), 2,
				root.Options{}, root.StreamOptions{})
			if err != nil || !rep.Atomic() {
				b.Fatalf("stream check: %v %v", err, rep.FailingKeys())
			}
			last = stats
		}
		b.StopTimer()
		b.ReportMetric(float64(hp.finish())/(1<<20), "heap-peak-MB")
		b.ReportMetric(float64(last.PeakBufferedOps), "live-ops-peak")
		b.ReportMetric(float64(last.FirstVerdictOps)/float64(last.Ops), "first-verdict-frac")
	})
	b.Run("monolithic", func(b *testing.B) {
		b.SetBytes(int64(len(text)))
		b.ReportAllocs()
		runtime.GC()
		hp := sampleHeapPeak()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr, err := root.ParseTraceReader(strings.NewReader(text))
			if err != nil {
				b.Fatal(err)
			}
			if rep := root.CheckTraceParallel(tr, 2, root.Options{}, 0); !rep.Atomic() {
				b.Fatal("rejected")
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(hp.finish())/(1<<20), "heap-peak-MB")
	})
}

// The multi-property headline: the marginal cost of verifying Δ-atomicity
// and regularity in the SAME streaming pass as smallest-k — one parse, one
// safe-cut segmentation, one work-stealing pool, extra checkers per segment.
// props=k is the legacy single-property baseline; props=all adds Δ and
// regularity. The 16k-op rows feed the benchcmp regression gate (in a
// second pass at a low -benchtime: one iteration is a full streaming pass,
// and the Δ binary search makes props=all ~10× props=k); the 1M-op replay
// (the trace behind BenchmarkStream1M) records the headline numbers and is
// skipped under -short.
func BenchmarkMultiProperty(b *testing.B) {
	run := func(b *testing.B, text string, props root.PropertySet) {
		b.SetBytes(int64(len(text)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			kvs, _, err := root.StreamVerdictsByKey(strings.NewReader(text),
				root.Options{}, root.StreamOptions{Workers: 4, Properties: props})
			if err != nil {
				b.Fatal(err)
			}
			for _, kv := range kvs {
				if kv.Err != nil {
					b.Fatalf("key %s: %v", kv.Key, kv.Err)
				}
			}
		}
	}
	tr := root.NewTrace()
	for key := 0; key < 16; key++ {
		h := generator.KAtomic(generator.Config{
			Seed: int64(key), Ops: 1000, Concurrency: 3,
			StalenessDepth: 1, ReadFraction: 0.6,
		})
		for _, op := range h.Ops {
			tr.Add(fmt.Sprintf("key-%02d", key), op)
		}
	}
	text := serializeByStart(tr)
	b.Run("props=k", func(b *testing.B) { run(b, text, root.PropertySetK) })
	b.Run("props=all", func(b *testing.B) { run(b, text, root.PropertySetAll) })
	b.Run("1M/props=k", func(b *testing.B) {
		if testing.Short() {
			b.Skip("1M-op workload; skipped under -short (CI bench smoke)")
		}
		run(b, stream1MText(), root.PropertySetK)
	})
	b.Run("1M/props=all", func(b *testing.B) {
		if testing.Short() {
			b.Skip("1M-op workload; skipped under -short (CI bench smoke)")
		}
		run(b, stream1MText(), root.PropertySetAll)
	})
}

// The hot-key headline: ONE register, 64k ops — the workload where key-level
// fan-out collapses to a single core. workers=1 is the sequential single-key
// path (CheckPreparedParallel delegates to the plain Verifier); workers=4
// fans the register's chunk (k=2) and safe-cut segment (smallest-k) units
// out over the work-stealing pool. On a multi-core host the 4-worker rows
// show the intra-key speedup; verdicts are identical either way (proved by
// TestCheckPreparedParallelMatchesSequential and FuzzSchedulerEquivalence).
func BenchmarkHotKey(b *testing.B) {
	check := mustPrepare(b, generator.Adversarial(generator.Config{
		Seed: 21, Ops: 64000, Concurrency: 64,
	}))
	smallest := mustPrepare(b, generator.KAtomic(generator.Config{
		Seed: 22, Ops: 64000, Concurrency: 4, StalenessDepth: 1,
		ForceDepth: true, ReadFraction: 0.6,
	}))
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("check-k2/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := root.CheckPreparedParallel(check, 2, root.Options{}, workers)
				if err != nil || !rep.Atomic {
					b.Fatalf("check: %v %+v", err, rep)
				}
			}
		})
		b.Run(fmt.Sprintf("smallestk/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				k, err := root.SmallestKPreparedParallel(smallest, root.Options{}, workers)
				if err != nil || k != 2 {
					b.Fatalf("smallestk: %v k=%d", err, k)
				}
			}
		})
	}
	// The memo row: identical repeated verification with a shared verdict
	// cache — every chunk is a content-hash hit after the first iteration.
	memo := root.NewMemo()
	b.Run("check-k2/workers=4/memo", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := root.CheckPreparedParallel(check, 2, root.Options{Memo: memo}, 4)
			if err != nil || !rep.Atomic {
				b.Fatalf("check: %v %+v", err, rep)
			}
		}
	})
}

// Zipf-skewed streaming verification: 32 keys, 128k ops, exponent 1.3 —
// most traffic lands on a handful of hot keys, so worker counts beyond the
// key count only help if chunk units steal across keys (exactly what the
// unified pool provides).
func BenchmarkStreamCheckZipf(b *testing.B) {
	const keys, opsPerKey = 32, 4000
	counts := root.ZipfKeyCounts(5, keys, keys*opsPerKey, 1.3)
	tr := root.NewTrace()
	for key := 0; key < keys; key++ {
		if counts[key] == 0 {
			continue
		}
		h := generator.KAtomic(generator.Config{
			Seed: int64(key), Ops: counts[key], Concurrency: 3,
			StalenessDepth: 1, ReadFraction: 0.6,
		})
		for _, op := range h.Ops {
			tr.Add(fmt.Sprintf("key-%04d", key), op)
		}
	}
	text := serializeByStart(tr)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(text)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, _, err := root.StreamCheckTrace(strings.NewReader(text), 2, root.Options{},
					root.StreamOptions{Workers: workers})
				if err != nil || !rep.Atomic() {
					b.Fatalf("stream check: %v %v", err, rep.FailingKeys())
				}
			}
		})
	}
}

// Multi-register verification throughput (locality dispatch over keys).
func BenchmarkTraceCheck(b *testing.B) {
	tr := root.NewTrace()
	for key := 0; key < 16; key++ {
		h := generator.KAtomic(generator.Config{
			Seed: int64(key), Ops: 200, Concurrency: 3, StalenessDepth: 1,
		})
		for _, op := range h.Ops {
			tr.Add(fmt.Sprintf("key-%02d", key), op)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := root.CheckTrace(tr, 2, root.Options{})
		if !rep.Atomic() {
			b.Fatal("trace rejected")
		}
	}
}

// Graph bandwidth on history interval graphs: RCM heuristic vs exact.
func BenchmarkBandwidth(b *testing.B) {
	h := generator.KAtomic(generator.Config{Seed: 31, Ops: 64, Concurrency: 4})
	g := bandwidth.FromHistory(h)
	b.Run("rcm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if g.Width(g.CuthillMcKee()) < 0 {
				b.Fatal("invalid layout")
			}
		}
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.Bandwidth()
		}
	})
}

// Regularity/safety classification throughput.
func BenchmarkRegularity(b *testing.B) {
	h := generator.KAtomic(generator.Config{Seed: 37, Ops: 2000, Concurrency: 4, StalenessDepth: 1})
	p := mustPrepare(b, h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		regularity.Check(p)
	}
}

// BenchmarkOnlineIngest measures the session ingest path under concurrent
// producers (disjoint key sets, the documented routing contract) at varying
// batch sizes: batch=1 is the op-granular Append (one shard-lock take per
// operation), larger batches go through AppendBatch (shard-grouped, one
// lock take per shard per batch). locks/op reports ingest-path shard-lock
// acquisitions per operation — the serialization currency batch ingest
// shrinks ~batch-size×. On a single-CPU host the wall-clock win is bounded
// by the saved acquire/release overhead; on multi-core hosts the removed
// lock serialization is what lets producers scale.
func BenchmarkOnlineIngest(b *testing.B) {
	for _, producers := range []int{1, 4, 8} {
		for _, batch := range []int{1, 64, 512} {
			b.Run(fmt.Sprintf("producers=%d/batch=%d", producers, batch), func(b *testing.B) {
				sess, err := root.NewOnlineCheckSession(2, root.Options{},
					root.StreamOptions{Workers: 1, IngestShards: 16, MinSegmentOps: 128})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				var wg sync.WaitGroup
				per := b.N / producers
				for p := 0; p < producers; p++ {
					n := per
					if p == 0 {
						n += b.N - per*producers
					}
					wg.Add(1)
					go func(p, n int) {
						defer wg.Done()
						if err := onlineIngestFeed(sess, p, n, batch); err != nil {
							b.Error(err)
						}
					}(p, n)
				}
				wg.Wait()
				b.StopTimer()
				locks := sess.IngestLockAcquisitions()
				st := sess.Stats()
				if err := sess.Flush(); err != nil {
					b.Fatal(err)
				}
				if st.Ops != int64(b.N) {
					b.Fatalf("ingested %d ops, want %d", st.Ops, b.N)
				}
				b.ReportMetric(float64(locks)/float64(b.N), "locks/op")
			})
		}
	}
	// Durability rows: the same ingest workload with a per-shard WAL
	// attached, one row per fsync policy, against real disk. Skipped under
	// -short so the benchcmp regression gate (which pins the in-memory rows
	// above against the committed baseline) is unaffected.
	for _, pol := range []struct {
		name   string
		policy wal.SyncPolicy
	}{{"never", wal.SyncNever}, {"batch", wal.SyncBatch}, {"always", wal.SyncAlways}} {
		b.Run(fmt.Sprintf("producers=4/batch=512/fsync=%s", pol.name), func(b *testing.B) {
			if testing.Short() {
				b.Skip("durability rows need real disk fsync; skipped under -short")
			}
			mgr, err := checkpoint.Open(faultfs.OS(), b.TempDir(), checkpoint.Config{Policy: pol.policy})
			if err != nil {
				b.Fatal(err)
			}
			defer mgr.Close()
			sess, err := root.NewOnlineCheckSession(2, root.Options{},
				root.StreamOptions{Workers: 1, IngestShards: 16, MinSegmentOps: 128})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := mgr.Recover(sess); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			const producers, batch = 4, 512
			var wg sync.WaitGroup
			per := b.N / producers
			for p := 0; p < producers; p++ {
				n := per
				if p == 0 {
					n += b.N - per*producers
				}
				wg.Add(1)
				go func(p, n int) {
					defer wg.Done()
					if err := onlineIngestFeed(sess, p, n, batch); err != nil {
						b.Error(err)
					}
				}(p, n)
			}
			wg.Wait()
			b.StopTimer()
			ws := mgr.Stats().WAL
			if err := sess.Flush(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(ws.Fsyncs)/float64(b.N), "fsyncs/op")
			b.ReportMetric(float64(ws.Bytes)/float64(b.N), "walB/op")
		})
	}
	// Decode rows: the codec alone — raw request bytes to keyed operations,
	// no session downstream — text parse (one key-string allocation per
	// operation, plus a scanner per body) vs wire decode (dictionary-interned
	// keys, reused buffers). This is the work the binary format deletes from
	// every /ingest body; the codec= rows below then show the same comparison
	// with the shared shard-grouped feed attached.
	for _, codec := range []string{"text", "wire"} {
		b.Run(fmt.Sprintf("decode=%s/batch=512", codec), func(b *testing.B) {
			payloads, totalBytes := buildIngestPayloads(b, codec, b.N, 512)
			r := bytes.NewReader(nil)
			dec := wire.NewDecoder(r)
			batch := make([]root.KeyedOp, 0, 512)
			var ops int
			var sink int64
			b.ReportAllocs()
			b.ResetTimer()
			for _, p := range payloads {
				r.Reset(p)
				batch = batch[:0]
				if codec == "wire" {
					dec.Reset(r)
					for {
						frame, err := dec.Next()
						if err == io.EOF {
							break
						}
						if err != nil {
							b.Fatal(err)
						}
						batch = append(batch, frame...)
					}
				} else {
					err := trace.ParseStream(r, func(key string, op root.Operation) error {
						batch = append(batch, root.KeyedOp{Key: key, Op: op})
						return nil
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				ops += len(batch)
				sink += batch[len(batch)-1].Op.Start
			}
			b.StopTimer()
			if ops != b.N {
				b.Fatalf("decoded %d ops, want %d (sink %d)", ops, b.N, sink)
			}
			b.ReportMetric(float64(totalBytes)/float64(b.N), "bodyB/op")
		})
	}
	// Full-path codec rows: the same bodies pushed through the session —
	// AppendTraceBatch vs AppendWire — so the decode saving is visible in
	// its end-to-end context (admission and segment accumulation included).
	// bodyB/op is the request-body bytes per operation, the wire format's
	// bandwidth saving.
	for _, codec := range []string{"text", "wire"} {
		b.Run(fmt.Sprintf("codec=%s/batch=512", codec), func(b *testing.B) {
			const batch = 512
			sess, err := root.NewOnlineCheckSession(2, root.Options{},
				root.StreamOptions{Workers: 1, IngestShards: 16, MinSegmentOps: 128})
			if err != nil {
				b.Fatal(err)
			}
			payloads, totalBytes := buildIngestPayloads(b, codec, b.N, batch)
			r := bytes.NewReader(nil)
			b.ReportAllocs()
			b.ResetTimer()
			for _, p := range payloads {
				r.Reset(p)
				var err error
				if codec == "wire" {
					_, err = sess.AppendWire(r)
				} else {
					_, err = sess.AppendTraceBatch(r)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := sess.Stats()
			if err := sess.Flush(); err != nil {
				b.Fatal(err)
			}
			if st.Ops != int64(b.N) {
				b.Fatalf("ingested %d ops, want %d", st.Ops, b.N)
			}
			b.ReportMetric(float64(totalBytes)/float64(b.N), "bodyB/op")
		})
	}
}

// buildIngestPayloads serializes the staircase workload of onlineIngestFeed
// (single producer) into per-request bodies of `batch` operations each, in
// the given codec — keyed text lines, or one self-contained wire frame per
// body (each request is its own decode stream, as over HTTP).
func buildIngestPayloads(b *testing.B, codec string, n, batch int) ([][]byte, int64) {
	b.Helper()
	const keysPer = 4
	var keys [keysPer]string
	for i := range keys {
		keys[i] = fmt.Sprintf("p00-key-%d", i)
	}
	enc := wire.NewEncoder()
	enc.SetSelfContained(true)
	var payloads [][]byte
	var total int64
	var clock, val [keysPer]int64
	var text bytes.Buffer
	flush := func() {
		var body []byte
		if codec == "wire" {
			body = enc.AppendFrame(nil)
		} else {
			body = bytes.Clone(text.Bytes())
			text.Reset()
		}
		payloads = append(payloads, body)
		total += int64(len(body))
	}
	for i := 0; i < n; i++ {
		ki := i % keysPer
		var op root.Operation
		if i%(2*keysPer) < keysPer {
			val[ki]++
			op = root.Operation{Kind: root.KindWrite, Value: val[ki], Start: clock[ki], Finish: clock[ki] + 1}
		} else {
			op = root.Operation{Kind: root.KindRead, Value: val[ki], Start: clock[ki], Finish: clock[ki] + 1}
		}
		clock[ki] += 4
		if codec == "wire" {
			if err := enc.Add(keys[ki], op); err != nil {
				b.Fatal(err)
			}
		} else {
			kind := "w"
			if op.Kind == root.KindRead {
				kind = "r"
			}
			fmt.Fprintf(&text, "%s %s %d %d %d\n", kind, keys[ki], op.Value, op.Start, op.Finish)
		}
		if (i+1)%batch == 0 || i == n-1 {
			flush()
		}
	}
	return payloads, total
}

// onlineIngestFeed pushes n operations for producer p's four keys into the
// session, batch at a time (batch 1 uses the op-granular Append). The
// workload is a per-key write/read staircase with a quiescent gap after
// each pair, so segments close and verify continuously while ingest runs;
// values stay fresh per key, so the stream is valid forever.
func onlineIngestFeed(sess *root.OnlineSession, p, n, batch int) error {
	const keysPer = 4
	var keys [keysPer]string
	for i := range keys {
		keys[i] = fmt.Sprintf("p%02d-key-%d", p, i)
	}
	var clock, val [keysPer]int64
	buf := make([]root.KeyedOp, 0, batch)
	for i := 0; i < n; i++ {
		ki := i % keysPer
		var op root.Operation
		if i%(2*keysPer) < keysPer { // write round, then read round
			val[ki]++
			op = root.Operation{Kind: root.KindWrite, Value: val[ki], Start: clock[ki], Finish: clock[ki] + 1}
		} else {
			op = root.Operation{Kind: root.KindRead, Value: val[ki], Start: clock[ki], Finish: clock[ki] + 1}
		}
		clock[ki] += 4 // quiescent gap: every pair boundary is a legal cut
		if batch == 1 {
			if err := sess.Append(keys[ki], op); err != nil {
				return err
			}
			continue
		}
		buf = append(buf, root.KeyedOp{Key: keys[ki], Op: op})
		if len(buf) == batch {
			if _, err := sess.AppendBatch(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	_, err := sess.AppendBatch(buf)
	return err
}

// Churning-keyspace lifecycle: key lifetimes are born, live briefly, and
// quiesce forever, so without retirement the session's live state grows
// with every lifetime ever seen. One iteration replays the whole churn
// trace in arrival-order batches (batch boundaries are the arrival
// instants retirement sweeps key off of). Custom metrics: bytes-live/op
// is the session's settled live-heap footprint after the replay (double
// GC, so pools drain), retire-rate the fraction of lifetimes retired.
func BenchmarkChurningKeyspace(b *testing.B) {
	tr := root.GenerateChurn(root.ChurnConfig{Seed: 11, Lifetimes: 200, OpsPerLifetime: 24})
	var sb strings.Builder
	if err := root.WriteTraceArrivalOrder(&sb, tr); err != nil {
		b.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(sb.String(), "\n"), "\n")
	var chunks []string
	const chunkLines = 256
	for i := 0; i < len(lines); i += chunkLines {
		end := i + chunkLines
		if end > len(lines) {
			end = len(lines)
		}
		chunks = append(chunks, strings.Join(lines[i:end], ""))
	}
	totalOps := tr.Len()

	heapLive := func() uint64 {
		runtime.GC()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	for _, mode := range []struct {
		name string
		ttl  int64
	}{
		{"retire=off", 0},
		{"retire=on", 50},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var liveBytes, retired float64
			for i := 0; i < b.N; i++ {
				sopts := root.StreamOptions{Workers: 2, MinSegmentOps: 32, IngestShards: 4}
				if mode.ttl > 0 {
					sopts.RetireTTL = mode.ttl
					sopts.RetireSweepOps = 64
				}
				b.StopTimer()
				before := heapLive()
				b.StartTimer()
				sess := root.NewOnlineSmallestKSession(root.Options{}, sopts)
				for _, chunk := range chunks {
					if _, err := sess.AppendTraceBatch(strings.NewReader(chunk)); err != nil {
						b.Fatalf("ingest: %v", err)
					}
				}
				b.StopTimer()
				// Measure the settled footprint while the keyspace state is
				// still held, before the drain folds it away.
				delta := heapLive()
				if delta > before {
					liveBytes += float64(delta - before)
				}
				retired += float64(sess.Stats().RetiredKeys)
				runtime.KeepAlive(sess)
				if err := sess.Flush(); err != nil {
					b.Fatalf("flush: %v", err)
				}
				b.StartTimer()
			}
			b.ReportMetric(liveBytes/float64(b.N*totalOps), "bytes-live/op")
			b.ReportMetric(retired/float64(b.N*200), "retire-rate")
		})
	}
}
