// Command benchcmp gates performance regressions: it compares a fresh
// `go test -bench` text output against the committed BENCH_baseline.json
// and fails (exit 1) when a pinned hot-path benchmark regressed beyond the
// threshold.
//
// Usage:
//
//	go test -run '^$' -bench 'FZF|Trace' -benchmem . | tee bench.txt
//	go run ./scripts/benchcmp -baseline BENCH_baseline.json bench.txt
//
// Cross-machine comparability: raw ns/op differs between the machine that
// recorded the baseline and the one running the gate, so by default each
// benchmark's time ratio is normalized by the median ratio across all
// compared benchmarks — a uniformly slower machine cancels out and only a
// *relative* regression of specific benchmarks trips the gate.
// Allocations are machine-independent and compared directly.
//
// Noise tolerance: scheduler jitter makes some benchmarks bimodal (the
// BenchmarkFZF/c=256/n=64000 family has shown 13ms→35ms outliers on shared
// runners). Medians over repeated samples (-count in the Makefile) absorb
// isolated outliers, and each benchmark's threshold is additionally widened
// by an IQR-based noise floor: a benchmark whose own samples spread wide
// (large interquartile range relative to its median, in either run) gets a
// proportionally wider gate, while tight benchmarks keep the strict one.
// -iqr-mult scales the widening (0 disables it).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	ns     []float64
	allocs []float64
}

type baselineDoc struct {
	Benchmarks []struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
	} `json:"benchmarks"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline JSON (from scripts/benchjson)")
		benchRe      = flag.String("bench", "", "regexp of benchmark names to gate (default: all in both runs)")
		nsRatio      = flag.Float64("max-ns-ratio", 1.30, "fail when normalized time ratio exceeds this (0 disables)")
		allocRatio   = flag.Float64("max-alloc-ratio", 1.30, "fail when allocs/op ratio exceeds this (0 disables)")
		normalize    = flag.Bool("normalize", true, "divide time ratios by their median (cross-machine comparison)")
		iqrMult      = flag.Float64("iqr-mult", 2.0, "widen each benchmark's time gate by this multiple of its relative IQR (noise floor; 0 disables)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [flags] <bench-output.txt>")
		os.Exit(2)
	}

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	cur, err := loadBenchText(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	var filter *regexp.Regexp
	if *benchRe != "" {
		if filter, err = regexp.Compile(*benchRe); err != nil {
			fatal(err)
		}
	}

	type row struct {
		name             string
		ratio, allocFrom float64
		allocTo          float64
		noise            float64 // relative IQR of the baseline samples only
	}
	var rows []row
	for name, c := range cur {
		b, ok := base[name]
		if !ok || (filter != nil && !filter.MatchString(name)) {
			continue
		}
		rows = append(rows, row{
			name:      name,
			ratio:     median(c.ns) / median(b.ns),
			allocFrom: median(b.allocs),
			allocTo:   median(c.allocs),
			// Baseline spread only: widening by the *current* run's IQR
			// would let a change that made a benchmark bimodal (a common
			// regression signature) raise its own gate and pass.
			noise: relIQR(b.ns),
		})
	}
	if len(rows) == 0 {
		// An empty intersection means the gate compared nothing — a
		// renamed benchmark, a bad -bench regex, or a bench run that died
		// before emitting results. Never report that as success.
		fmt.Fprintln(os.Stderr, "benchcmp: no overlapping benchmarks to compare (renamed benchmark, bad -bench regex, or empty input?)")
		os.Exit(1)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })

	norm := 1.0
	if *normalize {
		ratios := make([]float64, len(rows))
		for i, r := range rows {
			ratios[i] = r.ratio
		}
		norm = median(ratios)
		fmt.Printf("benchcmp: machine-speed normalization factor %.3f\n", norm)
	}

	failed := false
	for _, r := range rows {
		rel := r.ratio / norm
		// The per-benchmark gate: the global threshold widened by the
		// benchmark's own observed noise, so medians of jittery
		// benchmarks don't fail on scheduler variance while tight ones
		// keep the strict gate.
		gate := *nsRatio
		if gate > 0 && *iqrMult > 0 {
			// Cap the widening: a wildly noisy baseline should demand a
			// re-record, not disable the gate.
			gate += min(*iqrMult*r.noise, 0.70)
		}
		status := "ok"
		if *nsRatio > 0 && rel > gate {
			status = fmt.Sprintf("TIME REGRESSION (>%.0f%%, noise floor %.0f%%)", (*nsRatio-1)*100, r.noise*100)
			failed = true
		}
		// Small absolute slack keeps counting noise on tiny benchmarks
		// from tripping the allocation gate.
		if *allocRatio > 0 && r.allocTo > r.allocFrom**allocRatio+8 {
			status = fmt.Sprintf("ALLOC REGRESSION (%.0f -> %.0f)", r.allocFrom, r.allocTo)
			failed = true
		}
		fmt.Printf("  %-60s time x%.2f (gate x%.2f)  allocs %.0f->%.0f  %s\n",
			r.name, rel, gate, r.allocFrom, r.allocTo, status)
	}
	if failed {
		fmt.Println("benchcmp: FAIL")
		os.Exit(1)
	}
	fmt.Printf("benchcmp: ok (%d benchmarks within threshold)\n", len(rows))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(1)
}

// canonName strips the trailing GOMAXPROCS suffix ("-8") so runs from
// machines with different core counts compare.
func canonName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func loadBaseline(path string) (map[string]*result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc baselineDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]*result)
	for _, b := range doc.Benchmarks {
		r := out[canonName(b.Name)]
		if r == nil {
			r = &result{}
			out[canonName(b.Name)] = r
		}
		r.ns = append(r.ns, b.NsPerOp)
		r.allocs = append(r.allocs, float64(b.AllocsPerOp))
	}
	return out, nil
}

func loadBenchText(path string) (map[string]*result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]*result)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := canonName(fields[0])
		r := out[name]
		if r == nil {
			r = &result{}
			out[name] = r
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.ns = append(r.ns, val)
			case "allocs/op":
				r.allocs = append(r.allocs, val)
			}
		}
	}
	return out, sc.Err()
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// quantile returns the q-quantile (0..1) of xs by linear interpolation over
// the sorted samples.
func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	pos := q * float64(n-1)
	i := int(pos)
	if i >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// relIQR returns the interquartile range of xs divided by its median — the
// scale-free noise measure behind the per-benchmark gate widening. Fewer
// than 4 samples cannot estimate spread; they get floor 0 (strict gate).
func relIQR(xs []float64) float64 {
	if len(xs) < 4 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	med := median(s)
	if med <= 0 {
		return 0
	}
	return (quantile(s, 0.75) - quantile(s, 0.25)) / med
}
