#!/usr/bin/env bash
# Cluster smoke: end-to-end proof that router-mode kavserve produces
# verdicts identical to the offline checker on the merged trace, with a
# chaos proxy injecting faults between the router and one member.
#
#  1. start 3 kavserve member nodes
#  2. front member 1 with kavchaos (503 sheds, resets, dropped bodies,
#     torn responses on /ingest)
#  3. start kavserve -route over [member0, chaos(member1), member2]
#  4. replay a generated trace through the router and drain the cluster —
#     the router's retry/reconcile machinery must absorb every fault, so
#     the replay client sees only clean acks
#  5. assert the chaos actually fired (router retry metrics + the kavchaos
#     shutdown summary)
#  6. diff the merged cluster per-key smallest-k verdicts against the
#     offline checker (kavcheck -stream -smallest) on the same trace
#
# Usage: scripts/cluster_smoke.sh [baseport]
set -euo pipefail

base=${1:-19080}
router_addr=127.0.0.1:$base
router_url=http://$router_addr
work=$(mktemp -d)
bin=$work/bin
pids=()
trap 'kill -9 "${pids[@]}" 2>/dev/null || true; rm -rf "$work"' EXIT

echo "== build"
go build -o "$bin/" ./cmd/kavserve ./cmd/kavgen ./cmd/kavcheck ./cmd/kavchaos

echo "== generate trace"
"$bin/kavgen" -keys 16 -ops 200 -depth 1 -inject 0.3 -inject-depth 2 > "$work/trace.txt"

wait_up() {
  for _ in $(seq 1 100); do
    if curl -sf "$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "no /healthz on $1" >&2
  return 1
}

echo "== start 3 member nodes"
members=()
for i in 0 1 2; do
  addr=127.0.0.1:$((base + 1 + i))
  "$bin/kavserve" -addr "$addr" > "$work/member$i.log" 2>&1 &
  pids+=($!)
  disown
  members+=("http://$addr")
done
for m in "${members[@]}"; do wait_up "$m"; done

echo "== front member 1 with kavchaos"
chaos_addr=127.0.0.1:$((base + 4))
"$bin/kavchaos" -addr "$chaos_addr" -target "${members[1]}" \
  -shed 3 -reset 2 -drop 2 -torn 2 > "$work/chaos.log" 2>&1 &
chaos_pid=$!
pids+=($chaos_pid)
disown
wait_up "http://$chaos_addr"

echo "== start router"
"$bin/kavserve" -addr "$router_addr" -probe-interval 200ms -forward-retries 16 \
  -route "${members[0]},http://$chaos_addr,${members[2]}" > "$work/router.log" 2>&1 &
pids+=($!)
disown
wait_up "$router_url"

echo "== replay through the router (chaos between router and member 1)"
"$bin/kavgen" -replay "$router_url" -batch-ops 128 -drain "$work/trace.txt" > "$work/replay.log"
grep -q "replayed" "$work/replay.log"

echo "== chaos must actually have fired"
curl -sf "$router_url/metrics" > "$work/metrics.txt"
for metric in kavserve_router_forward_retries_total kavserve_router_reconciles_total \
  kavserve_router_forward_ops_total kavserve_router_breaker_state; do
  if ! grep -q "^$metric" "$work/metrics.txt"; then
    echo "FAIL: router /metrics is missing $metric" >&2
    exit 1
  fi
done
retries=$(awk '/^kavserve_router_forward_retries_total/ {s += $2} END {print s+0}' "$work/metrics.txt")
if [ "$retries" -eq 0 ]; then
  echo "FAIL: router recorded no forward retries; the chaos proxy injected nothing" >&2
  cat "$work/chaos.log" >&2
  exit 1
fi
kill -INT "$chaos_pid"
while kill -0 "$chaos_pid" 2>/dev/null; do sleep 0.05; done
grep "injected" "$work/chaos.log"
if grep -q "injected 0 faults" "$work/chaos.log"; then
  echo "FAIL: kavchaos reports zero injected faults" >&2
  exit 1
fi

echo "== compare merged cluster verdicts against offline kavcheck"
norm='s/^key \([^ ]*\).*smallest k: \([0-9][0-9]*\).*/\1 \2/p'
sed -n "$norm" "$work/replay.log" | sort > "$work/cluster.verdicts"
"$bin/kavcheck" -stream -smallest "$work/trace.txt" > "$work/offline.log" || true
sed -n "$norm" "$work/offline.log" | sort > "$work/offline.verdicts"
if ! diff -u "$work/offline.verdicts" "$work/cluster.verdicts"; then
  echo "FAIL: cluster verdicts diverge from offline checker" >&2
  cat "$work/router.log" >&2
  exit 1
fi
[ -s "$work/cluster.verdicts" ] || { echo "FAIL: no verdicts compared" >&2; exit 1; }

echo "PASS: $(wc -l < "$work/cluster.verdicts") keys verdict-identical across a 3-node chaos cluster"
