// Command benchjson converts `go test -bench` output into a JSON document
// (BENCH_baseline.json) so the perf trajectory can be tracked across PRs by
// tools that do not parse the Go benchmark text format.
//
// Usage: go run ./scripts/benchjson bench_output.txt > BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line; repeated -count runs of the same
// benchmark appear as separate entries.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Document is the whole baseline file.
type Document struct {
	GeneratedAt string      `json:"generated_at"`
	Goos        string      `json:"goos,omitempty"`
	Goarch      string      `json:"goarch,omitempty"`
	Pkg         string      `json:"pkg,omitempty"`
	CPU         string      `json:"cpu,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson <bench-output-file>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	defer f.Close()

	doc := Document{GeneratedAt: time.Now().UTC().Format(time.RFC3339)}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}

// parseLine parses one "BenchmarkName-N  iters  value unit  value unit ..."
// result line.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0]}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			b.NsPerOp, _ = strconv.ParseFloat(val, 64)
		case "MB/s":
			b.MBPerS, _ = strconv.ParseFloat(val, 64)
		case "B/op":
			b.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			b.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	return b, true
}
