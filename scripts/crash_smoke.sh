#!/usr/bin/env bash
# Crash-recovery smoke: end-to-end proof that a SIGKILLed durable kavserve
# loses nothing it acknowledged.
#
#  1. start kavserve with -data-dir (batch fsync, fast checkpoints)
#  2. replay a generated trace into it and wait for the acknowledgment
#  3. kill -9 the server — no drain, no terminal checkpoint
#  4. restart from the same -data-dir (checkpoint restore + WAL replay)
#  5. re-replay with -resume: the server must already hold every op
#  6. drain and diff the recovered per-key smallest-k verdicts against the
#     offline checker (kavcheck -stream -smallest) on the same trace
#
# Usage: scripts/crash_smoke.sh [port]
set -euo pipefail

port=${1:-18080}
addr=127.0.0.1:$port
url=http://$addr
work=$(mktemp -d)
bin=$work/bin
data=$work/data
trap 'kill -9 $server_pid 2>/dev/null || true; rm -rf "$work"' EXIT

echo "== build"
go build -o "$bin/" ./cmd/kavserve ./cmd/kavgen ./cmd/kavcheck

echo "== generate trace"
"$bin/kavgen" -keys 16 -ops 300 -depth 1 -inject 0.3 -inject-depth 2 > "$work/trace.txt"

wait_up() {
  for _ in $(seq 1 100); do
    if curl -sf "$url/verdict" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "kavserve did not come up on $addr" >&2
  return 1
}

echo "== start durable kavserve"
"$bin/kavserve" -addr "$addr" -data-dir "$data" -fsync batch \
  -checkpoint-interval 200ms > "$work/serve1.log" 2>&1 &
server_pid=$!
disown
wait_up

echo "== replay trace (acknowledged batches)"
"$bin/kavgen" -replay "$url" -batch-ops 256 "$work/trace.txt"
sleep 0.5 # let at least one checkpoint land: the restart then exercises restore + WAL-tail replay

echo "== SIGKILL mid-flight (no drain, no terminal checkpoint)"
kill -9 "$server_pid"
while kill -0 "$server_pid" 2>/dev/null; do sleep 0.05; done

echo "== restart from $data"
"$bin/kavserve" -addr "$addr" -data-dir "$data" -fsync batch \
  -checkpoint-interval 200ms > "$work/serve2.log" 2>&1 &
server_pid=$!
disown
wait_up
grep "recovered checkpoint" "$work/serve2.log"
if ! grep -qE "recovered checkpoint epoch [0-9]+ \(|replayed [1-9]" "$work/serve2.log"; then
  echo "FAIL: restart neither restored a checkpoint nor replayed WAL ops" >&2
  cat "$work/serve2.log" >&2
  exit 1
fi

echo "== durability counters exported on /metrics"
curl -sf "$url/metrics" > "$work/metrics.txt"
for metric in kavserve_wal_fsyncs_total kavserve_wal_fsync_seconds_total \
  kavserve_recovery_replayed_ops_total kavserve_checkpoints_total; do
  if ! grep -q "^$metric" "$work/metrics.txt"; then
    echo "FAIL: /metrics is missing $metric" >&2
    exit 1
  fi
done

echo "== resume replay: every acknowledged op must already be there"
"$bin/kavgen" -replay "$url" -resume -drain "$work/trace.txt" > "$work/resume.log"
total=$(grep -c . "$work/trace.txt")
if ! grep -q "server already holds $total of these ops" "$work/resume.log"; then
  echo "FAIL: recovered server is missing acknowledged ops" >&2
  cat "$work/resume.log" >&2
  exit 1
fi

echo "== compare recovered verdicts against offline kavcheck"
norm='s/^key \([^ ]*\).*smallest k: \([0-9][0-9]*\).*/\1 \2/p'
sed -n "$norm" "$work/resume.log" | sort > "$work/recovered.verdicts"
"$bin/kavcheck" -stream -smallest "$work/trace.txt" > "$work/offline.log" || true
sed -n "$norm" "$work/offline.log" | sort > "$work/offline.verdicts"
if ! diff -u "$work/offline.verdicts" "$work/recovered.verdicts"; then
  echo "FAIL: recovered verdicts diverge from offline checker" >&2
  exit 1
fi
[ -s "$work/recovered.verdicts" ] || { echo "FAIL: no verdicts compared" >&2; exit 1; }

kill -9 "$server_pid" 2>/dev/null || true
echo "PASS: $(wc -l < "$work/recovered.verdicts") keys verdict-identical after crash recovery"
