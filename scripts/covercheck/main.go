// Command covercheck enforces a minimum total statement coverage over one or
// more Go cover profiles, so test-only packages (internal/refcheck, the
// differential and metamorphic suites) cannot silently rot: a package whose
// tests stop compiling or stop running drags the total below the gate.
//
// Usage:
//
//	go test -coverprofile=cover.out ./...
//	go run ./scripts/covercheck -min 70 cover.out
//
// Total coverage is computed the same way `go tool cover -func` computes its
// "total" line: covered statements over all statements, deduplicating
// repeated blocks (a block may appear once per test binary that ran it).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("covercheck", flag.ContinueOnError)
	min := fs.Float64("min", 70, "minimum total statement coverage, in percent")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: covercheck [-min pct] profile.out...")
	}
	// block -> (stmts, covered): keyed by position so profiles merged from
	// several packages (or -count > 1) count each block once.
	type blockStat struct {
		stmts   int
		covered bool
	}
	blocks := make(map[string]blockStat)
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<24)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "mode:") {
				continue
			}
			// file.go:sl.sc,el.ec numStmts count
			pos, rest, ok := strings.Cut(line, " ")
			if !ok {
				return fmt.Errorf("%s: malformed profile line %q", path, line)
			}
			stmtStr, countStr, ok := strings.Cut(rest, " ")
			if !ok {
				return fmt.Errorf("%s: malformed profile line %q", path, line)
			}
			stmts, err := strconv.Atoi(stmtStr)
			if err != nil {
				return fmt.Errorf("%s: bad statement count in %q: %v", path, line, err)
			}
			count, err := strconv.Atoi(countStr)
			if err != nil {
				return fmt.Errorf("%s: bad hit count in %q: %v", path, line, err)
			}
			b := blocks[pos]
			b.stmts = stmts
			b.covered = b.covered || count > 0
			blocks[pos] = b
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	total, covered := 0, 0
	for _, b := range blocks {
		total += b.stmts
		if b.covered {
			covered += b.stmts
		}
	}
	if total == 0 {
		return fmt.Errorf("no statements found in %v", fs.Args())
	}
	pct := 100 * float64(covered) / float64(total)
	fmt.Fprintf(out, "covercheck: total coverage %.1f%% of statements (%d/%d), minimum %.1f%%\n",
		pct, covered, total, *min)
	if pct < *min {
		return fmt.Errorf("coverage %.1f%% is below the %.1f%% gate", pct, *min)
	}
	return nil
}
