// Multikey audits a whole key-value store rather than a single register:
// k-atomicity is a local property (Section II-B of the paper), so a
// multi-key trace is verified by checking each key's subhistory on its own.
// The example simulates a store whose keys live on differently-tuned
// replica groups (a common production reality: hot keys get safer configs),
// builds one combined trace, and reports consistency per key and for the
// trace as a whole — including the time-based Δ-staleness of the worst key.
//
//	go run ./examples/multikey
package main

import (
	"fmt"
	"log"

	"kat"
)

func main() {
	// Three keys on three replica-group configurations.
	groups := []struct {
		key  string
		r, w int
		skew int64
	}{
		{key: "user:1001", r: 3, w: 3, skew: 0},  // strict quorums
		{key: "feed:1001", r: 2, w: 2, skew: 5},  // cheaper reads
		{key: "ctr:likes", r: 1, w: 1, skew: 60}, // fastest, weakest
	}

	tr := kat.NewTrace()
	for i, g := range groups {
		h, _, err := kat.SimulateQuorum(kat.QuorumConfig{
			Seed: int64(300 + i), Replicas: 5, ReadQuorum: g.r, WriteQuorum: g.w,
			Clients: 8, OpsPerClient: 20, ClockSkew: g.skew, MaxDelay: 50,
			ReadFraction: 0.6,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, op := range h.Ops {
			tr.Add(g.key, op)
		}
	}
	fmt.Printf("combined trace: %d ops across %d keys\n\n", tr.Len(), len(tr.Keys))

	// Per-key smallest k.
	ks := kat.SmallestKByKey(tr, kat.Options{})
	fmt.Println("per-key staleness bound:")
	for _, key := range tr.SortedKeys() {
		k := ks[key]
		label := "linearizable"
		if k > 1 {
			label = fmt.Sprintf("reads up to %d update(s) behind", k-1)
		}
		fmt.Printf("  %-10s k=%d (%s)\n", key, k, label)
	}

	// Trace-level verdicts at k=1 and k=2.
	for _, k := range []int{1, 2} {
		rep := kat.CheckTrace(tr, k, kat.Options{})
		if rep.Atomic() {
			fmt.Printf("\ntrace is %d-atomic across all keys\n", k)
		} else {
			fmt.Printf("\ntrace is NOT %d-atomic; failing keys: %v\n", k, rep.FailingKeys())
		}
	}

	// Worst key, in both versions (k) and time (Δ).
	k, key, ok := kat.WorstK(tr, kat.Options{})
	if !ok {
		log.Fatal("no key verified")
	}
	d, err := kat.SmallestDelta(tr.Keys[key])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworst key: %s — k=%d (version staleness), Δ=%d time units (time staleness)\n", key, k, d)
	fmt.Println("\n(locality per Section II-B: per-key verification is sound for the whole store)")
}
