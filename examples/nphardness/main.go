// Nphardness walks through Section V: the weighted k-AV problem is
// NP-complete by reduction from bin packing. The example builds the Figure 5
// construction for a concrete instance, prints the resulting history, and
// solves it both ways — with the bin-packing solver directly and with the
// exact weighted k-AV checker on the reduced history.
//
//	go run ./examples/nphardness
package main

import (
	"fmt"
	"log"

	"kat"
)

func main() {
	// Can items of sizes {4, 3, 3, 2} be packed into 2 bins of capacity 6?
	bp := kat.BinPacking{
		Sizes:    []int64{4, 3, 3, 2},
		Capacity: 6,
		Bins:     2,
	}
	fmt.Printf("bin packing: sizes=%v capacity=%d bins=%d\n\n", bp.Sizes, bp.Capacity, bp.Bins)

	red, err := kat.ReduceBinPacking(bp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 5 construction: %d operations, weighted bound k = B+2 = %d\n",
		red.History.Len(), red.Bound)
	fmt.Println("  short writes (weight 1) + dictated reads pin the frame:")
	fmt.Println("  w(1) w(2) r(1) w(3) r(2) ... w(m+1) r(m)")
	fmt.Println("  long writes (weight = item size) float between w(1) and w(m+1)")
	fmt.Println()
	fmt.Println("reduced history:")
	fmt.Print(red.History)
	fmt.Println()

	direct := bp.Solvable()
	viaKWAV, err := kat.SolveBinPackingViaReduction(bp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bin-packing solver says:   %v\n", direct)
	fmt.Printf("weighted k-AV checker says: %v\n", viaKWAV)
	if direct != viaKWAV {
		log.Fatal("REDUCTION BROKEN: the two answers must agree (Theorem 5.1)")
	}
	fmt.Println("agreement confirms the Theorem 5.1 equivalence on this instance.")

	// An infeasible sibling instance: one more size-3 item.
	bad := kat.BinPacking{Sizes: []int64{4, 3, 3, 3, 2}, Capacity: 6, Bins: 2}
	badDirect := bad.Solvable()
	badViaKWAV, err := kat.SolveBinPackingViaReduction(bad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninfeasible instance %v: solver=%v, k-WAV=%v (both false expected)\n",
		bad.Sizes, badDirect, badViaKWAV)
}
