// Quickstart: parse a tiny history, check 1- and 2-atomicity, inspect the
// witness, and compute the smallest k.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"kat"
)

func main() {
	// Two completed writes, then a read that returns the older value — the
	// signature staleness pattern of a sloppy-quorum store.
	h := kat.MustParse(`
w 1 0 10
w 2 20 30
r 1 40 50
`)

	rep1, err := kat.Check(h, 1, kat.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1-atomic (linearizable): %v\n", rep1.Atomic)

	rep2, err := kat.Check(h, 2, kat.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-atomic:                %v (decided by %v)\n", rep2.Atomic, rep2.Algorithm)

	fmt.Println("witness total order:")
	for _, idx := range rep2.Witness {
		fmt.Printf("  %s\n", rep2.Prepared.Op(idx))
	}

	k, err := kat.SmallestK(h, kat.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("smallest k: %d\n", k)

	// LBT and FZF are interchangeable deciders for k=2.
	repLBT, err := kat.Check(h, 2, kat.Options{Algorithm: kat.AlgoLBT})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LBT agrees: %v\n", repLBT.Atomic == rep2.Atomic)
}
