// Socialfeed reproduces the paper's motivating scenario (Section I): a
// social-network profile stored in a Dynamo-style replicated register. Users
// tolerate reading a profile "at most a few updates behind" — exactly the
// guarantee k-atomicity formalizes. We simulate the store under a weak
// quorum configuration, verify the observed histories, and report how stale
// the feed actually got.
//
//	go run ./examples/socialfeed
package main

import (
	"fmt"
	"log"

	"kat"
)

func main() {
	// A profile updated by several devices and read by many followers,
	// served from 5 replicas with single-replica reads and writes (fast,
	// available — and weakly consistent: R+W <= N).
	cfg := kat.QuorumConfig{
		Seed:         2026,
		Replicas:     5,
		ReadQuorum:   1,
		WriteQuorum:  1,
		Clients:      8,
		OpsPerClient: 20,
		ReadFraction: 0.7,
		ClockSkew:    15,
		MaxDelay:     25,
	}
	h, stats, err := kat.SimulateQuorum(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated feed traffic: %d updates, %d reads (timeouts: %d)\n",
		stats.CompletedWrites, stats.CompletedReads, stats.TimedOutReads+stats.TimedOutWrites)

	// Is the feed linearizable? Almost certainly not with these quorums.
	rep1, err := kat.Check(h, 1, kat.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("linearizable (k=1): %v\n", rep1.Atomic)

	// But is it at-most-one-update stale (2-atomic)? And if not, how deep
	// does the staleness go?
	rep2, err := kat.Check(h, 2, kat.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at most 1 update behind (k=2): %v\n", rep2.Atomic)

	k, err := kat.SmallestK(h, kat.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst read was %d update(s) behind (smallest k = %d)\n", k-1, k)

	// Per-read staleness profile under the verified order.
	rep, err := kat.Check(h, k, kat.Options{})
	if err != nil {
		log.Fatal(err)
	}
	st, err := kat.ReadStaleness(rep.Prepared, rep.Witness)
	if err != nil {
		log.Fatal(err)
	}
	hist := map[int]int{}
	for _, s := range st {
		hist[s]++
	}
	fmt.Println("reads by staleness (updates behind):")
	for d := 0; d < k; d++ {
		if hist[d] > 0 {
			fmt.Printf("  %d behind: %d reads\n", d, hist[d])
		}
	}
	fmt.Println("\nverdict: the feed is not linearizable, but its staleness is")
	fmt.Printf("bounded at %d update(s) — the k-atomicity guarantee users feel.\n", k-1)
}
