// Quorumtuning demonstrates the paper's second motivation (Section I): use
// consistency verification to decide whether a storage system provides MORE
// consistency than the application needs, so its "tuning knobs" (quorum
// sizes) can be turned back to cut latency and cost.
//
// The example sweeps quorum configurations of a 5-replica register, verifies
// the histories each produces, and recommends the cheapest configuration
// that still keeps every read within one update of fresh (2-atomicity).
//
//	go run ./examples/quorumtuning
package main

import (
	"fmt"
	"log"

	"kat"
)

func main() {
	type knob struct {
		r, w int
	}
	knobs := []knob{
		{r: 3, w: 3}, // strict and slow: every quorum overlaps
		{r: 2, w: 3},
		{r: 2, w: 2},
		{r: 1, w: 2},
		{r: 1, w: 1}, // fastest and cheapest: no overlap guarantee
	}
	const (
		replicas = 5
		runs     = 15
		needK    = 2 // the application tolerates reads one update behind
	)

	fmt.Printf("application requirement: %d-atomicity (reads at most %d update behind)\n\n",
		needK, needK-1)
	fmt.Println(" R  W  | R+W>N | % runs k<=1 | % runs k<=2 | verdict")
	fmt.Println("-------+-------+-------------+-------------+--------")

	var best *knob
	for i := range knobs {
		k := knobs[i]
		var corpus []*kat.History
		for seed := int64(0); seed < runs; seed++ {
			h, _, err := kat.SimulateQuorum(kat.QuorumConfig{
				Seed: seed, Replicas: replicas, ReadQuorum: k.r, WriteQuorum: k.w,
				Clients: 4, OpsPerClient: 12, ClockSkew: 10, MaxDelay: 20,
			})
			if err != nil {
				log.Fatal(err)
			}
			corpus = append(corpus, h)
		}
		dist := kat.SmallestKDistribution(corpus, kat.Options{})
		ok2 := dist.Fraction(needK)
		verdict := "too stale"
		if ok2 == 1 {
			verdict = "meets requirement"
			best = &knobs[i] // later (cheaper) configs overwrite earlier ones
		}
		strict := "no"
		if k.r+k.w > replicas {
			strict = "yes"
		}
		fmt.Printf(" %d  %d  |  %-3s  |    %5.1f%%   |    %5.1f%%   | %s\n",
			k.r, k.w, strict, 100*dist.Fraction(1), 100*ok2, verdict)
	}

	fmt.Println()
	if best != nil {
		fmt.Printf("recommendation: R=%d W=%d is the cheapest knob setting that stayed\n",
			best.r, best.w)
		fmt.Printf("%d-atomic across all %d runs — weaker (cheaper) than full strict quorums.\n",
			needK, runs)
	} else {
		fmt.Println("no configuration met the requirement; keep strict quorums.")
	}
	fmt.Println("\n(this is the \"turn back the tuning knobs\" workflow of Section I,")
	fmt.Println("powered by the 2-AV algorithms of Sections III and IV)")
}
