// Package refcheck is the brute-force reference oracle for k-atomicity: an
// exhaustive search over every real-time-valid total order of a tiny
// history, with none of the algorithmic machinery the production engines
// rely on (no zones, no FZF candidate pruning, no eager read placement, no
// memoization, no segmentation). Its only optimizations are the two facts
// the definition itself gives — an order in which a read precedes its
// dictating write is never k-atomic for any k, and a partial order's running
// maximum staleness can only grow — so its verdicts follow from Section II's
// definitions by direct enumeration.
//
// That independence is the point: the repository now has four distinct
// verification engines (sequential, chunk-parallel, streaming, online), all
// sharing algorithmic core code. The differential suite in this package
// sweeps generated tiny histories through every engine and asserts all of
// them agree with this oracle, in the spirit of small-bounded exhaustive
// checking as a trust anchor (cf. Bouajjani et al., "On Reducing
// Linearizability to State Reachability": bounded exhaustive analysis is
// what makes such checkers trustworthy in practice).
//
// The search visits every valid order, so it is O(n!) and intentionally
// capped at MaxOps operations.
package refcheck

import (
	"fmt"
	"math"

	"kat/internal/history"
)

// MaxOps is the largest history the oracle accepts. The differential suites
// stay at 8 operations and below; the cap only exists to make an accidental
// big input fail loudly instead of hanging.
const MaxOps = 10

// SmallestK returns the least k for which the history is k-atomic, by
// exhaustive search over total orders: the minimum over every
// real-time-valid order (with each read after its dictating write) of
// 1 + the largest number of writes strictly between a read and its
// dictating write. Histories are normalized first; anomalies are reported
// as errors, exactly like the production engines.
func SmallestK(h *history.History) (int, error) {
	if h.Len() > MaxOps {
		return 0, fmt.Errorf("refcheck: history has %d ops, oracle cap is %d", h.Len(), MaxOps)
	}
	p, err := history.Prepare(history.Normalize(h))
	if err != nil {
		return 0, err
	}
	n := p.Len()
	if n == 0 {
		return 1, nil
	}
	b := &brute{
		p:         p,
		n:         n,
		placed:    make([]bool, n),
		writeRank: make([]int, n),
		best:      math.MaxInt,
	}
	b.dfs(n, 0)
	if b.best == math.MaxInt {
		// Unreachable for prepared histories (any anomaly-free history is
		// W-atomic under the order "all writes by start, then reads"), but
		// fail loudly rather than fabricate a verdict.
		return 0, fmt.Errorf("refcheck: no valid total order found")
	}
	return b.best, nil
}

// CheckK decides whether the history is k-atomic, directly from the
// definition: some valid total order keeps every read within k of its
// dictating write iff the exhaustive minimum does.
func CheckK(h *history.History, k int) (bool, error) {
	if k < 1 {
		return false, fmt.Errorf("refcheck: k must be >= 1, got %d", k)
	}
	sk, err := SmallestK(h)
	if err != nil {
		return false, err
	}
	return sk <= k, nil
}

// brute is the exhaustive search state.
type brute struct {
	p         *history.Prepared
	n         int
	placed    []bool
	writeRank []int // for a placed write: 1-based count of writes placed through it
	writes    int   // writes placed so far
	best      int   // minimum complete-order cost seen (max read staleness, floor 1)
}

// dfs extends the current prefix with every appendable operation. curMax is
// the largest staleness (dictating write included, per the witness
// semantics) of any read placed so far; a read's staleness is fixed the
// moment it is placed, because later writes land after it.
func (b *brute) dfs(remaining, curMax int) {
	if curMax >= b.best {
		return // bound: the running max only grows
	}
	if remaining == 0 {
		b.best = max(curMax, 1)
		return
	}
	for i := 0; i < b.n; i++ {
		if b.placed[i] || !b.appendable(i) {
			continue
		}
		op := b.p.Op(i)
		if op.IsRead() {
			w := b.p.DictatingWrite[i]
			if !b.placed[w] {
				// A read before its dictating write is never k-atomic;
				// the orders that place w first are explored separately.
				continue
			}
			sep := b.writes - b.writeRank[w] + 1
			b.placed[i] = true
			b.dfs(remaining-1, max(curMax, sep))
			b.placed[i] = false
			continue
		}
		b.placed[i] = true
		b.writes++
		b.writeRank[i] = b.writes
		b.dfs(remaining-1, curMax)
		b.writes--
		b.placed[i] = false
	}
}

// appendable reports whether operation i may be placed next: no unplaced
// operation precedes it in real time.
func (b *brute) appendable(i int) bool {
	start := b.p.Op(i).Start
	for j := 0; j < b.n; j++ {
		if j != i && !b.placed[j] && b.p.Op(j).Finish < start {
			return false
		}
	}
	return true
}

// EnumerateHistories yields every n-operation single-register history shape,
// the exhaustive corpus of the differential suite:
//
//   - every interleaving of n real-time intervals — all total orders of the
//     2n endpoints with each start before its finish, operations numbered by
//     start order (canonical, so no interleaving appears twice), timestamps
//     0..2n-1 in endpoint order;
//   - for each interleaving, all 2^n read/write kind assignments, writes
//     valued 1..W in start order;
//   - for each kind assignment, every way to point each read at one of the
//     W writes (W^R variants). A read-only shape (W = 0, R > 0) yields one
//     variant with all reads returning the unwritten value 1, covering the
//     dangling-read anomaly path.
//
// Every yielded history is freshly allocated; yield may retain it.
func EnumerateHistories(n int, yield func(*history.History)) {
	if n <= 0 {
		return
	}
	skel := make([]history.Operation, n) // interval skeleton under construction
	open := make([]int, 0, n)            // started, unfinished ops
	var rec func(clock, started, finished int)
	rec = func(clock, started, finished int) {
		if finished == n {
			emitKindAssignments(n, skel, yield)
			return
		}
		if started < n {
			skel[started].Start = int64(clock)
			open = append(open, started)
			rec(clock+1, started+1, finished)
			open = open[:len(open)-1]
		}
		// Finish each currently open op in turn (swap-remove, then restore,
		// so the iteration sees every op exactly once).
		for oi := 0; oi < len(open); oi++ {
			op := open[oi]
			skel[op].Finish = int64(clock)
			last := len(open) - 1
			open[oi] = open[last]
			open = open[:last]
			rec(clock+1, started, finished+1)
			open = open[:last+1]
			open[last] = open[oi]
			open[oi] = op
		}
	}
	rec(0, 0, 0)
}

// emitKindAssignments fills the interval skeletons with every read/write
// kind mask and every read-value assignment, yielding each complete history.
func emitKindAssignments(n int, skel []history.Operation, yield func(*history.History)) {
	var writes, reads []int
	for mask := 0; mask < 1<<n; mask++ {
		writes, reads = writes[:0], reads[:0]
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				writes = append(writes, i)
			} else {
				reads = append(reads, i)
			}
		}
		w := len(writes)
		variants := 1
		for range reads {
			variants *= max(w, 1)
		}
		for v := 0; v < variants; v++ {
			h := &history.History{Ops: make([]history.Operation, n)}
			copy(h.Ops, skel)
			for rank, i := range writes {
				h.Ops[i].Kind = history.KindWrite
				h.Ops[i].Value = int64(rank + 1)
			}
			c := v
			for _, i := range reads {
				h.Ops[i].Kind = history.KindRead
				if w == 0 {
					h.Ops[i].Value = 1 // dangling read: anomaly variant
				} else {
					h.Ops[i].Value = int64(c%w) + 1 // the (c%w)-th write's value
					c /= w
				}
			}
			for i := range h.Ops {
				h.Ops[i].ID = i
			}
			yield(h)
		}
	}
}
