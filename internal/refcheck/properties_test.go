package refcheck

import (
	"testing"

	"kat/internal/history"
)

func TestCheckDeltaKnownHistories(t *testing.T) {
	// r(1) starts at 40; the intervening w2 finishes at 30. Relaxing the
	// read's start by 10 (to 30) dissolves "w2 precedes r" and the order
	// w1 r w2 becomes valid, so smallest Δ is exactly 10.
	h := history.MustParse("w 1 0 10; w 2 20 30; r 1 40 50")
	d, err := SmallestDelta(h)
	if err != nil {
		t.Fatal(err)
	}
	if d != 10 {
		t.Fatalf("SmallestDelta = %d, want 10", d)
	}
	for _, tc := range []struct {
		delta int64
		want  bool
	}{{0, false}, {9, false}, {10, true}, {30, true}} {
		ok, err := CheckDelta(h, tc.delta)
		if err != nil {
			t.Fatalf("CheckDelta(%d): %v", tc.delta, err)
		}
		if ok != tc.want {
			t.Errorf("CheckDelta(%d) = %v, want %v", tc.delta, ok, tc.want)
		}
	}
	if _, err := CheckDelta(h, -1); err == nil {
		t.Error("negative delta accepted")
	}
	if _, err := SmallestDelta(history.MustParse("r 1 0 10")); err == nil {
		t.Error("anomalous history accepted")
	}
	if d, err := SmallestDelta(history.MustParse("w 1 0 10; r 1 20 30")); err != nil || d != 0 {
		t.Errorf("atomic history: SmallestDelta = %d, %v; want 0", d, err)
	}
}

func TestPropertiesKnownHistories(t *testing.T) {
	v, err := Properties(history.MustParse("w 1 0 10; r 1 20 30; w 2 40 50; r 2 60 70"))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Safe || !v.Regular || len(v.UnsafeReads) != 0 || len(v.IrregularReads) != 0 {
		t.Errorf("fresh sequential reads misclassified: %+v", v)
	}

	// Stale isolated read: violates both properties.
	v, err = Properties(history.MustParse("w 1 0 10; w 2 20 30; r 1 40 50"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Safe || v.Regular || len(v.UnsafeReads) != 1 || len(v.IrregularReads) != 1 {
		t.Errorf("stale isolated read misclassified: %+v", v)
	}

	// Stale read concurrent with a write: safe but irregular.
	v, err = Properties(history.MustParse("w 1 0 10; w 2 20 30; w 3 40 60; r 1 45 55"))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Safe || v.Regular {
		t.Errorf("read concurrent with a write misclassified: %+v", v)
	}

	if _, err := Properties(history.MustParse("r 1 0 10")); err == nil {
		t.Error("anomalous history accepted")
	}
}
