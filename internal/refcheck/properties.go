package refcheck

import (
	"fmt"
	"sort"

	"kat/internal/history"
)

// This file extends the brute-force trust anchor from k-atomicity to the
// other two properties the paper contrasts it with: Δ-atomicity (time-based
// staleness) and Lamport safety/regularity (per-read). Like SmallestK, the
// implementations here follow the definitions directly — Δ-atomicity by
// relaxing read starts and re-running the exhaustive permutation search,
// safety/regularity by the literal per-read quantifier scans — so that the
// production checkers in internal/delta and internal/regularity have an
// independent oracle to diverge from.

// CheckDelta reports whether the history is Δ-atomic for the given delta by
// the definition: move every read's start delta units into the past, then
// ask the exhaustive total-order search whether the relaxed history is
// 1-atomic. The relaxation is a plain subtraction (no clamping); callers
// stay within the enumeration corpus's tiny timestamp range, so overflow is
// not a concern here and the production clamp is itself under test.
func CheckDelta(h *history.History, delta int64) (bool, error) {
	if delta < 0 {
		return false, fmt.Errorf("refcheck: delta must be >= 0, got %d", delta)
	}
	cp := h.Clone()
	for i := range cp.Ops {
		if cp.Ops[i].IsRead() {
			cp.Ops[i].Start -= delta
		}
	}
	k, err := SmallestK(cp)
	if err != nil {
		return false, err
	}
	return k == 1, nil
}

// SmallestDelta returns the least Δ for which the history is Δ-atomic, by
// testing every Δ at which the relaxed precedence relation can change: 0,
// plus each positive difference r.Start − x.Finish between a read's start
// and any operation's finish (the constraint "x precedes relaxed-r" flips
// exactly when Δ crosses that difference, so the verdict is constant between
// consecutive candidates). Errors if even maximal relaxation fails, like
// delta.Smallest.
func SmallestDelta(h *history.History) (int64, error) {
	cands := []int64{0}
	for _, r := range h.Ops {
		if !r.IsRead() {
			continue
		}
		for _, x := range h.Ops {
			if d := r.Start - x.Finish; d > 0 {
				cands = append(cands, d)
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	for _, d := range cands {
		ok, err := CheckDelta(h, d)
		if err != nil {
			return 0, err
		}
		if ok {
			return d, nil
		}
	}
	return 0, fmt.Errorf("refcheck: history is not Δ-atomic under maximal relaxation")
}

// PropertiesVerdict mirrors regularity.Verdict without importing the package
// under test.
type PropertiesVerdict struct {
	Safe, Regular  bool
	UnsafeReads    []int
	IrregularReads []int
}

// Properties classifies every read of the (normalized, prepared) history by
// the literal definitions of Lamport safety and regularity, multi-writer
// generalization: a read whose dictating write precedes it is regular iff no
// other write falls strictly between them; a read of a concurrent write is
// regular; a read preceding its dictating write is never regular. A read is
// safe iff it is regular or concurrent with at least one write.
func Properties(h *history.History) (PropertiesVerdict, error) {
	p, err := history.Prepare(history.Normalize(h))
	if err != nil {
		return PropertiesVerdict{}, err
	}
	v := PropertiesVerdict{Safe: true, Regular: true}
	for r := 0; r < p.Len(); r++ {
		rop := p.Op(r)
		if !rop.IsRead() {
			continue
		}
		wop := p.Op(p.DictatingWrite[r])
		regular := wop.ConcurrentWith(rop)
		if !regular && wop.Precedes(rop) {
			regular = true
			for x := 0; x < p.Len(); x++ {
				xop := p.Op(x)
				if xop.IsWrite() && wop.Precedes(xop) && xop.Precedes(rop) {
					regular = false
					break
				}
			}
		}
		safe := regular
		for x := 0; !safe && x < p.Len(); x++ {
			if p.Op(x).IsWrite() && p.Op(x).ConcurrentWith(rop) {
				safe = true
			}
		}
		if !regular {
			v.Regular = false
			v.IrregularReads = append(v.IrregularReads, r)
		}
		if !safe {
			v.Safe = false
			v.UnsafeReads = append(v.UnsafeReads, r)
		}
	}
	return v, nil
}
