package refcheck

// Metamorphic invariance tests: k-atomicity verdicts are defined purely by
// the relative order of operation endpoints, the read-to-dictating-write
// relation, and the per-key grouping — so there are whole families of trace
// transformations under which every engine's verdict must be exactly
// unchanged. Each test below documents its invariant, states why it holds,
// applies the transformation to a randomized corpus, and asserts the full
// per-key verdict maps (sequential and streaming) are identical before and
// after. Unlike the differential suite, these need no oracle — the trace is
// its own expected value — so they run on histories far beyond brute-force
// reach.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"kat"
	"kat/internal/history"
)

// metaCorpus builds a randomized multi-key trace with mixed staleness
// depths: a few keys, each a generated k-atomic history with injected
// staleness, op counts well beyond the brute-force oracle's reach.
func metaCorpus(seed int64) *kat.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := kat.NewTrace()
	nkeys := 2 + rng.Intn(4)
	for ki := 0; ki < nkeys; ki++ {
		cfg := kat.GenConfig{
			Seed:           seed + int64(ki)*101,
			Ops:            20 + rng.Intn(60),
			Concurrency:    1 + rng.Intn(4),
			ReadFraction:   0.3 + rng.Float64()*0.4,
			StalenessDepth: rng.Intn(3),
		}
		h := kat.GenerateKAtomic(cfg)
		if rng.Float64() < 0.5 {
			h = kat.InjectStaleness(h, cfg.Seed+1, rng.Float64()*0.4, 1+rng.Intn(2))
		}
		for _, op := range h.Ops {
			tr.Add(fmt.Sprintf("k%02d", ki), op)
		}
	}
	return tr
}

// verdicts captures every engine-level verdict surface we assert invariance
// over: the per-key smallest-k map (sequential path) and its streaming
// counterpart, plus the fixed-k=2 atomic flags.
type verdicts struct {
	smallest map[string]int
	stream   map[string]int
	atomic2  map[string]bool
}

func takeVerdicts(t *testing.T, tr *kat.Trace) verdicts {
	t.Helper()
	v := verdicts{
		smallest: kat.SmallestKByKey(tr, kat.Options{}),
		atomic2:  make(map[string]bool),
	}
	for _, kr := range kat.CheckTrace(tr, 2, kat.Options{}).Keys {
		v.atomic2[kr.Key] = kr.Atomic
	}
	var b strings.Builder
	if err := kat.WriteTraceArrivalOrder(&b, tr); err != nil {
		t.Fatal(err)
	}
	stream, stats, err := kat.StreamSmallestKByKey(strings.NewReader(b.String()), kat.Options{},
		kat.StreamOptions{Workers: 2, MinSegmentOps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SaturatedKeys > 0 {
		t.Fatalf("corpus saturated the stream horizon; deepen Horizon or shallow the corpus")
	}
	v.stream = stream
	return v
}

// equalUnderKeyMap asserts b's verdicts are a's with keys renamed by m
// (identity when m is nil).
func equalUnderKeyMap(t *testing.T, what string, a, b verdicts, m func(string) string) {
	t.Helper()
	if m == nil {
		m = func(k string) string { return k }
	}
	for k, want := range a.smallest {
		if got := b.smallest[m(k)]; got != want {
			t.Fatalf("%s: smallest k for %s: %d, want %d", what, k, got, want)
		}
	}
	for k, want := range a.stream {
		if got := b.stream[m(k)]; got != want {
			t.Fatalf("%s: stream smallest k for %s: %d, want %d", what, k, got, want)
		}
	}
	for k, want := range a.atomic2 {
		if got := b.atomic2[m(k)]; got != want {
			t.Fatalf("%s: 2-atomic for %s: %v, want %v", what, k, got, want)
		}
	}
	if len(a.smallest) != len(b.smallest) {
		t.Fatalf("%s: key count changed: %d -> %d", what, len(a.smallest), len(b.smallest))
	}
}

// mapTrace rebuilds a trace with the key and operation transformations
// applied, preserving per-key op order.
func mapTrace(tr *kat.Trace, keyf func(string) string, opf func(string, history.Operation) history.Operation) *kat.Trace {
	out := kat.NewTrace()
	for _, key := range tr.SortedKeys() {
		for _, op := range tr.Keys[key].Ops {
			out.Add(keyf(key), opf(key, op))
		}
	}
	return out
}

// TestInvarianceKeyRenaming: INVARIANT — verdicts depend on keys only as
// grouping labels (k-atomicity is local, Section II-B), so any injective
// renaming permutes the verdict map and changes nothing else.
func TestInvarianceKeyRenaming(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		tr := metaCorpus(seed)
		rename := func(k string) string { return "zz-" + k + "-renamed" }
		got := takeVerdicts(t, mapTrace(tr, rename, func(_ string, op history.Operation) history.Operation { return op }))
		equalUnderKeyMap(t, "key renaming", takeVerdicts(t, tr), got, rename)
	}
}

// TestInvarianceValueRenaming: INVARIANT — values only tie reads to their
// dictating writes; any per-key injective remapping preserves that relation
// exactly, so verdicts are unchanged (value magnitude and order never
// matter).
func TestInvarianceValueRenaming(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		tr := metaCorpus(seed)
		// x -> C - 13x is injective and order-reversing, so it also shakes
		// out any accidental dependence on value ordering.
		remap := func(_ string, op history.Operation) history.Operation {
			op.Value = 1_000_003 - 13*op.Value
			return op
		}
		got := takeVerdicts(t, mapTrace(tr, func(k string) string { return k }, remap))
		equalUnderKeyMap(t, "value renaming", takeVerdicts(t, tr), got, nil)
	}
}

// TestInvarianceTimeTranslation: INVARIANT — the model only consults the
// "precedes" order between endpoints, so shifting every timestamp by a
// constant (including below zero) changes no verdict.
func TestInvarianceTimeTranslation(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		tr := metaCorpus(seed)
		for _, delta := range []int64{+1_000_000, -5_000} {
			shift := func(_ string, op history.Operation) history.Operation {
				op.Start += delta
				op.Finish += delta
				return op
			}
			got := takeVerdicts(t, mapTrace(tr, func(k string) string { return k }, shift))
			equalUnderKeyMap(t, fmt.Sprintf("time translation %+d", delta), takeVerdicts(t, tr), got, nil)
		}
	}
}

// TestInvarianceTimeScaling: INVARIANT — multiplying every timestamp by a
// positive constant preserves every endpoint comparison (it is a strictly
// monotone map), so verdicts are unchanged.
func TestInvarianceTimeScaling(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		tr := metaCorpus(seed)
		scale := func(_ string, op history.Operation) history.Operation {
			op.Start *= 37
			op.Finish *= 37
			return op
		}
		got := takeVerdicts(t, mapTrace(tr, func(k string) string { return k }, scale))
		equalUnderKeyMap(t, "time scaling", takeVerdicts(t, tr), got, nil)
	}
}

// TestInvarianceInterleavingPermutation: INVARIANT — a History is a set of
// operations (Prepare sorts by start time; the streaming engine consumes
// the canonical arrival order), so permuting the in-memory order of each
// key's operations — and thereby the interleaving the trace presents —
// changes no verdict.
func TestInvarianceInterleavingPermutation(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		tr := metaCorpus(seed)
		rng := rand.New(rand.NewSource(seed * 977))
		perm := kat.NewTrace()
		for _, key := range tr.SortedKeys() {
			ops := append([]history.Operation(nil), tr.Keys[key].Ops...)
			rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
			for _, op := range ops {
				perm.Add(key, op)
			}
		}
		equalUnderKeyMap(t, "interleaving permutation", takeVerdicts(t, tr), takeVerdicts(t, perm), nil)
	}
}
