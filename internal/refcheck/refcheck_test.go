package refcheck

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"kat"
	"kat/internal/history"
	"kat/internal/oracle"
)

// --- Oracle self-tests -------------------------------------------------

func TestSmallestKKnownHistories(t *testing.T) {
	cases := []struct {
		text string
		want int
	}{
		{"w 1 0 10", 1},
		{"w 1 0 10; r 1 20 30", 1},
		{"w 1 0 10; w 2 20 30; r 1 40 50", 2},
		{"w 1 0 30; w 2 5 35; r 2 40 50; r 1 60 70", 2},
		{"w 1 0 10; w 2 20 30; w 3 40 50; r 1 60 70", 3},
		// Concurrent writes can be ordered after the read's dictating
		// write is consumed, so this stays 1-atomic.
		{"w 1 0 30; w 2 5 35; r 1 10 20", 1},
	}
	for _, tc := range cases {
		h := history.MustParse(tc.text)
		got, err := SmallestK(h)
		if err != nil {
			t.Fatalf("%q: %v", tc.text, err)
		}
		if got != tc.want {
			t.Errorf("%q: smallest k = %d, want %d", tc.text, got, tc.want)
		}
		for k := 1; k <= tc.want+1; k++ {
			ok, err := CheckK(h, k)
			if err != nil {
				t.Fatalf("%q k=%d: %v", tc.text, k, err)
			}
			if ok != (k >= tc.want) {
				t.Errorf("%q: CheckK(%d) = %v, smallest %d", tc.text, k, ok, tc.want)
			}
		}
	}
}

func TestSmallestKAnomalies(t *testing.T) {
	for _, text := range []string{
		"r 1 0 10",            // dangling read
		"w 1 0 10; w 1 20 30", // duplicate write value
		"w 1 20 30; r 1 0 10", // read finishes before its write starts
		"w 1 0 10; r 2 20 30", // read of a never-written value
	} {
		if _, err := SmallestK(history.MustParse(text)); err == nil {
			t.Errorf("%q: expected an anomaly error", text)
		}
	}
}

func TestSmallestKOpsCap(t *testing.T) {
	h := &history.History{Ops: make([]history.Operation, MaxOps+1)}
	if _, err := SmallestK(h); err == nil {
		t.Fatal("oversized history accepted")
	}
	if _, err := CheckK(history.MustParse("w 1 0 10"), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestEnumerateHistoriesCounts(t *testing.T) {
	// (2n-1)!! interval interleavings times the kind/value variants; pinned
	// so the corpus cannot silently shrink.
	want := map[int]int{1: 2, 2: 12, 3: 165, 4: 4410}
	for n, wantCount := range want {
		got := 0
		EnumerateHistories(n, func(h *history.History) {
			if h.Len() != n {
				t.Fatalf("n=%d: yielded history with %d ops", n, h.Len())
			}
			got++
		})
		if got != wantCount {
			t.Errorf("n=%d: enumerated %d histories, want %d", n, got, wantCount)
		}
	}
}

// --- Differential suite -------------------------------------------------

// engines bundles the reusable machinery so the sweep doesn't re-create
// pools and verifiers per history.
type engines struct {
	pool *kat.Pool
	v    *kat.Verifier
}

func newEngines() *engines {
	return &engines{pool: kat.NewPool(2), v: kat.NewVerifier()}
}

func (e *engines) close() { e.pool.Close() }

// singleKeyTrace wraps h under one register key.
func singleKeyTrace(h *history.History) *kat.Trace {
	tr := kat.NewTrace()
	for _, op := range h.Ops {
		tr.Add("x", op)
	}
	return tr
}

func arrivalText(tr *kat.Trace) string {
	var b strings.Builder
	if err := kat.WriteTraceArrivalOrder(&b, tr); err != nil {
		panic(err)
	}
	return b.String()
}

// verifyAllEngines asserts that the sequential, chunk-parallel, streaming,
// and online engines all agree with the brute-force oracle on h: identical
// error presence, identical smallest k, and fixed-k verdicts matching
// refK <= k at and around the oracle's answer. This is the trust anchor the
// acceptance criteria ask for: online verdicts are compared both to the
// oracle and to StreamCheckTrace on the same input.
func verifyAllEngines(t *testing.T, e *engines, h *history.History) {
	t.Helper()
	refK, refErr := SmallestK(h)
	desc := strings.ReplaceAll(h.String(), "\n", "; ")

	// Sequential smallest-k and fixed-k checks.
	seqK, seqErr := e.v.SmallestK(h, kat.Options{})
	if (refErr == nil) != (seqErr == nil) {
		t.Fatalf("%s: oracle err=%v, sequential err=%v", desc, refErr, seqErr)
	}
	tr := singleKeyTrace(h)
	canon := arrivalText(tr)
	if refErr != nil {
		// Every engine must reject the anomalous history too.
		if gotK := kat.SmallestKByKeyParallel(tr, kat.Options{MinParallelOps: -1}, 2)["x"]; gotK != 0 {
			t.Fatalf("%s: parallel accepted anomalous history (k=%d)", desc, gotK)
		}
		rep, _, err := kat.StreamCheckTrace(strings.NewReader(canon), 1, kat.Options{},
			kat.StreamOptions{Pool: e.pool, MinSegmentOps: 1})
		if err != nil {
			t.Fatalf("%s: StreamCheckTrace: %v", desc, err)
		}
		if len(rep.Keys) != 1 || rep.Keys[0].Err == nil {
			t.Fatalf("%s: stream accepted anomalous history", desc)
		}
		sess := kat.NewOnlineSmallestKSession(kat.Options{}, kat.StreamOptions{Pool: e.pool, MinSegmentOps: 1})
		if _, err := sess.AppendTrace(strings.NewReader(canon)); err != nil {
			t.Fatalf("%s: online ingest: %v", desc, err)
		}
		sess.Flush()
		if ks, _ := sess.SmallestKByKey(); ks["x"] != 0 {
			t.Fatalf("%s: online accepted anomalous history (k=%d)", desc, ks["x"])
		}
		return
	}
	if seqK != refK {
		t.Fatalf("%s: oracle k=%d, sequential k=%d", desc, refK, seqK)
	}

	bounds := []int{1, refK - 1, refK, refK + 1}
	for _, k := range bounds {
		if k < 1 {
			continue
		}
		rep, err := e.v.Check(h, k, kat.Options{})
		if err != nil {
			t.Fatalf("%s: Check(%d): %v", desc, k, err)
		}
		if rep.Atomic != (refK <= k) {
			t.Fatalf("%s: Check(%d) = %v, oracle smallest %d", desc, k, rep.Atomic, refK)
		}
	}

	// Chunk-parallel trace engine (MinParallelOps -1 forces chunk
	// scheduling even on tiny inputs).
	popts := kat.Options{MinParallelOps: -1}
	if gotK := kat.SmallestKByKeyParallel(tr, popts, 2)["x"]; gotK != refK {
		t.Fatalf("%s: parallel smallest k = %d, oracle %d", desc, gotK, refK)
	}
	prep := kat.CheckTraceParallel(tr, refK, popts, 2)
	if !prep.Keys[0].Atomic {
		t.Fatalf("%s: parallel not atomic at oracle k=%d", desc, refK)
	}
	if refK > 1 {
		if below := kat.CheckTraceParallel(tr, refK-1, popts, 2); below.Keys[0].Atomic {
			t.Fatalf("%s: parallel atomic below oracle k=%d", desc, refK)
		}
	}

	// Streaming engine (MinSegmentOps 1 cuts at every quiescent instant).
	sopts := kat.StreamOptions{Pool: e.pool, MinSegmentOps: 1}
	streamK, stats, err := kat.StreamSmallestKByKey(strings.NewReader(canon), kat.Options{}, sopts)
	if err != nil {
		t.Fatalf("%s: StreamSmallestKByKey: %v", desc, err)
	}
	if stats.SaturatedKeys > 0 {
		t.Fatalf("%s: tiny history saturated the horizon", desc)
	}
	if streamK["x"] != refK {
		t.Fatalf("%s: stream smallest k = %d, oracle %d", desc, streamK["x"], refK)
	}

	// Online sessions: verdicts must match both the oracle and the
	// reader-driven stream engine on the same input.
	onlineK := kat.NewOnlineSmallestKSession(kat.Options{}, sopts)
	if _, err := onlineK.AppendTrace(strings.NewReader(canon)); err != nil {
		t.Fatalf("%s: online ingest: %v", desc, err)
	}
	if err := onlineK.Flush(); err != nil {
		t.Fatalf("%s: online flush: %v", desc, err)
	}
	if got, _ := onlineK.SmallestKByKey(); got["x"] != refK {
		t.Fatalf("%s: online smallest k = %d, oracle %d", desc, got["x"], refK)
	}
	for _, k := range []int{refK, refK - 1} {
		if k < 1 {
			continue
		}
		streamRep, _, err := kat.StreamCheckTrace(strings.NewReader(canon), k, kat.Options{}, sopts)
		if err != nil {
			t.Fatalf("%s: StreamCheckTrace(%d): %v", desc, k, err)
		}
		sess, err := kat.NewOnlineCheckSession(k, kat.Options{}, sopts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.AppendTrace(strings.NewReader(canon)); err != nil {
			t.Fatalf("%s: online ingest: %v", desc, err)
		}
		if err := sess.Flush(); err != nil {
			t.Fatalf("%s: online flush: %v", desc, err)
		}
		rep, _ := sess.Report()
		if rep.Keys[0].Atomic != (refK <= k) {
			t.Fatalf("%s: online Check(%d) = %v, oracle smallest %d", desc, k, rep.Keys[0].Atomic, refK)
		}
		if rep.Keys[0].Atomic != streamRep.Keys[0].Atomic || rep.Keys[0].Ops != streamRep.Keys[0].Ops {
			t.Fatalf("%s: online %+v != stream %+v at k=%d", desc, rep.Keys[0], streamRep.Keys[0], k)
		}
	}
}

// TestDifferentialTinyHistories sweeps every generated history of up to 4
// operations (2+12+165+4410 histories: all interval interleavings, kind
// masks, and read-value assignments) through all four production engines
// and the brute-force oracle.
func TestDifferentialTinyHistories(t *testing.T) {
	maxN := 4
	if testing.Short() {
		maxN = 3
	}
	e := newEngines()
	defer e.close()
	total := 0
	for n := 1; n <= maxN; n++ {
		EnumerateHistories(n, func(h *history.History) {
			total++
			verifyAllEngines(t, e, h)
		})
		if t.Failed() {
			t.FailNow()
		}
	}
	t.Logf("swept %d histories through all engines", total)
}

// TestDifferentialRandomHistories extends the sweep to randomized histories
// of 5..8 operations — beyond exhaustive-enumeration reach but still within
// the brute-force oracle's.
func TestDifferentialRandomHistories(t *testing.T) {
	rounds := 400
	if testing.Short() {
		rounds = 80
	}
	e := newEngines()
	defer e.close()
	rng := rand.New(rand.NewSource(20260728))
	for i := 0; i < rounds; i++ {
		h := randomHistory(rng, 5+rng.Intn(4))
		verifyAllEngines(t, e, h)
		if t.Failed() {
			t.FailNow()
		}
	}
}

// TestOracleVsExactSearch cross-checks the two independent exact deciders —
// this package's permutation search and internal/oracle's memoized
// eager-read DFS — on a larger randomized corpus (cheap: no pools).
func TestOracleVsExactSearch(t *testing.T) {
	rounds := 1500
	if testing.Short() {
		rounds = 300
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < rounds; i++ {
		h := randomHistory(rng, 2+rng.Intn(7))
		refK, refErr := SmallestK(h)
		p, err := history.Prepare(history.Normalize(h))
		if (refErr == nil) != (err == nil) {
			t.Fatalf("%v: prepare err mismatch: %v vs %v", h, refErr, err)
		}
		if err != nil {
			continue
		}
		for k := 1; k <= refK+1; k++ {
			res, err := oracle.CheckK(p, k, oracle.Options{})
			if err != nil {
				t.Fatalf("oracle.CheckK: %v", err)
			}
			if res.Atomic != (refK <= k) {
				t.Fatalf("history:\n%s\noracle.CheckK(%d) = %v, refcheck smallest %d",
					h, k, res.Atomic, refK)
			}
		}
	}
}

// TestDifferentialMultiKey merges random tiny histories under several keys
// and asserts the trace-level engines (parallel, streaming, online) report
// exactly the per-key oracle answers.
func TestDifferentialMultiKey(t *testing.T) {
	rounds := 120
	if testing.Short() {
		rounds = 30
	}
	e := newEngines()
	defer e.close()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < rounds; i++ {
		nkeys := 2 + rng.Intn(3)
		tr := kat.NewTrace()
		want := make(map[string]int, nkeys)
		for ki := 0; ki < nkeys; ki++ {
			key := fmt.Sprintf("key-%c", 'a'+ki)
			h := randomHistory(rng, 2+rng.Intn(6))
			refK, refErr := SmallestK(h)
			if refErr != nil {
				want[key] = 0
			} else {
				want[key] = refK
			}
			for _, op := range h.Ops {
				tr.Add(key, op)
			}
		}
		if got := kat.SmallestKByKeyParallel(tr, kat.Options{MinParallelOps: -1}, 2); !mapsEqual(got, want) {
			t.Fatalf("parallel %v, oracle %v\ntrace:\n%s", got, want, tr)
		}
		canon := arrivalText(tr)
		sopts := kat.StreamOptions{Pool: e.pool, MinSegmentOps: 1}
		got, stats, err := kat.StreamSmallestKByKey(strings.NewReader(canon), kat.Options{}, sopts)
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		if stats.SaturatedKeys == 0 && !mapsEqual(got, want) {
			t.Fatalf("stream %v, oracle %v\ntrace:\n%s", got, want, tr)
		}
		sess := kat.NewOnlineSmallestKSession(kat.Options{}, sopts)
		if _, err := sess.AppendTrace(strings.NewReader(canon)); err != nil {
			t.Fatalf("online ingest: %v", err)
		}
		sess.Flush()
		if gotOnline, _ := sess.SmallestKByKey(); !mapsEqual(gotOnline, got) {
			t.Fatalf("online %v, stream %v\ntrace:\n%s", gotOnline, got, tr)
		}
	}
}

func mapsEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// randomHistory builds an arbitrary small history: random intervals, random
// kinds, reads mostly pointing at real writes with occasional dangling reads
// so the anomaly paths stay covered.
func randomHistory(rng *rand.Rand, n int) *history.History {
	h := &history.History{Ops: make([]history.Operation, n)}
	var writeVals []int64
	for i := range h.Ops {
		start := rng.Int63n(40)
		h.Ops[i] = history.Operation{
			ID:     i,
			Start:  start,
			Finish: start + 1 + rng.Int63n(15),
		}
		if rng.Float64() < 0.55 {
			h.Ops[i].Kind = history.KindWrite
			v := int64(len(writeVals) + 1)
			if rng.Float64() < 0.03 {
				v = 1 // occasional duplicate-value anomaly
			}
			h.Ops[i].Value = v
			writeVals = append(writeVals, v)
		} else {
			h.Ops[i].Kind = history.KindRead
		}
	}
	for i := range h.Ops {
		if !h.Ops[i].IsRead() {
			continue
		}
		if len(writeVals) == 0 || rng.Float64() < 0.04 {
			h.Ops[i].Value = 99 // dangling read
		} else {
			h.Ops[i].Value = writeVals[rng.Intn(len(writeVals))]
		}
	}
	return h
}
