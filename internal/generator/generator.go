// Package generator produces synthetic histories for tests and benchmarks:
// histories that are k-atomic by construction (with tunable size, read
// fraction, write concurrency, and staleness depth), adversarial
// high-concurrency histories that drive LBT into its O(c·n) regime, fully
// random histories for differential testing, and mutation helpers that
// inject extra staleness into existing histories.
//
// All generation is deterministic given the Seed.
package generator

import (
	"fmt"
	"math/rand"
	"sort"

	"kat/internal/history"
)

// Config controls synthetic history generation.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// Ops is the total number of operations to generate.
	Ops int
	// ReadFraction is the fraction of operations that are reads
	// (default 0.5). The first operation is always a write.
	ReadFraction float64
	// Concurrency widens operation intervals: roughly how many operations
	// overlap at any instant (default 1, i.e., nearly sequential).
	Concurrency int
	// StalenessDepth is the maximum number of newer committed writes a
	// read may ignore: 0 generates 1-atomic (linearizable) histories,
	// 1 generates 2-atomic, etc. (default 0).
	StalenessDepth int
	// ForceDepth makes at least one read return exactly the
	// StalenessDepth-deep value so the history is not (StalenessDepth)-
	// atomic by luck (best effort; requires enough committed writes).
	ForceDepth bool
}

func (cfg *Config) fill() {
	if cfg.Ops < 0 {
		cfg.Ops = 0
	}
	if cfg.ReadFraction <= 0 || cfg.ReadFraction >= 1 {
		cfg.ReadFraction = 0.5
	}
	if cfg.Concurrency < 1 {
		cfg.Concurrency = 1
	}
	if cfg.StalenessDepth < 0 {
		cfg.StalenessDepth = 0
	}
}

// KAtomic generates a history guaranteed to be (StalenessDepth+1)-atomic:
// every operation is given a commit point on a logical timeline, operation
// intervals contain their commit points, and each read returns one of the
// StalenessDepth+1 freshest committed writes at its commit point. The commit
// order itself is the witness total order, so validity is by construction.
//
// The result is normalized (distinct timestamps, shortened writes) and ready
// for Prepare.
func KAtomic(cfg Config) *history.History {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	const spacing = 16
	// Concurrency 1 keeps intervals strictly disjoint (commit order is then
	// the unique valid order, so ForceDepth lower-bounds the smallest k);
	// larger values overlap ~Concurrency neighboring operations.
	halfWidth := int64(6 + spacing*(cfg.Concurrency-1)/2)

	var (
		ops       []history.Operation
		committed []int64 // values in commit order
		nextVal   int64   = 1
		forced    bool
	)
	for i := 0; i < cfg.Ops; i++ {
		commit := int64(i+1) * spacing
		lo := commit - 1 - rng.Int63n(halfWidth+1)
		hi := commit + 1 + rng.Int63n(halfWidth+1)
		isRead := rng.Float64() < cfg.ReadFraction && len(committed) > 0
		if i == 0 {
			isRead = false
		}
		if isRead {
			depth := rng.Intn(cfg.StalenessDepth + 1)
			if cfg.ForceDepth && !forced && len(committed) > cfg.StalenessDepth {
				depth = cfg.StalenessDepth
				forced = true
			}
			if depth >= len(committed) {
				depth = len(committed) - 1
			}
			val := committed[len(committed)-1-depth]
			ops = append(ops, history.Operation{
				ID: i, Kind: history.KindRead, Value: val, Start: lo, Finish: hi,
			})
			continue
		}
		ops = append(ops, history.Operation{
			ID: i, Kind: history.KindWrite, Value: nextVal, Start: lo, Finish: hi,
		})
		committed = append(committed, nextVal)
		nextVal++
	}
	return history.Normalize(history.New(ops))
}

// Adversarial generates a 2-atomic history whose write concurrency is
// approximately cfg.Concurrency at every instant, driving LBT's per-epoch
// candidate set to size Θ(c) (the worst-case regime of Theorem 3.2). It is
// a KAtomic run with StalenessDepth 1 and write-heavy traffic.
func Adversarial(cfg Config) *history.History {
	cfg.fill()
	cfg.StalenessDepth = 1
	if cfg.ReadFraction == 0.5 {
		cfg.ReadFraction = 0.25
	}
	return KAtomic(cfg)
}

// Random generates an unconstrained random history: random intervals, writes
// with distinct values, and each read returning a uniformly chosen write
// whose interval started before the read finishes (avoiding the trivial
// read-before-write anomaly). The result carries no k-atomicity guarantee —
// ideal for differential testing of checkers. It is normalized and
// anomaly-free.
func Random(cfg Config) *history.History {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	span := int64(cfg.Ops) * 8
	if span < 8 {
		span = 8
	}
	maxLen := int64(cfg.Concurrency) * 8

	var writes []history.Operation
	var ops []history.Operation
	nWrites := 0
	for i := 0; i < cfg.Ops; i++ {
		if i == 0 || rng.Float64() >= cfg.ReadFraction {
			start := rng.Int63n(span)
			ops = append(ops, history.Operation{
				ID: i, Kind: history.KindWrite, Value: int64(nWrites + 1),
				Start: start, Finish: start + 1 + rng.Int63n(maxLen),
			})
			writes = append(writes, ops[len(ops)-1])
			nWrites++
			continue
		}
		ops = append(ops, history.Operation{ID: i, Kind: history.KindRead})
	}
	// Assign read intervals and dictating writes.
	for i := range ops {
		if !ops[i].IsRead() {
			continue
		}
		start := rng.Int63n(span)
		finish := start + 1 + rng.Int63n(maxLen)
		// Choose among writes starting before this read finishes.
		var eligible []history.Operation
		for _, w := range writes {
			if w.Start < finish {
				eligible = append(eligible, w)
			}
		}
		if len(eligible) == 0 {
			// Read everything overlaps: make it a read of the first write,
			// stretched to overlap it.
			w := writes[0]
			start = w.Start
			finish = w.Finish + 1
			eligible = []history.Operation{w}
		}
		w := eligible[rng.Intn(len(eligible))]
		ops[i].Value = w.Value
		ops[i].Start = start
		ops[i].Finish = finish
	}
	return history.Normalize(history.New(ops))
}

// LBTTrap builds the pathological input for literal Figure 2 LBT that
// Theorem 3.2's proof warns about: at every epoch, candidate writes tried
// early chain through a long "staircase" of forced reads before failing,
// while one write (examined late under an adversarial candidate order)
// succeeds immediately. Without iterative deepening each epoch costs
// Θ(chain²); with deepening the failing candidates are cut off at the
// doubling budget.
//
// Construction (one register):
//   - staircase writes v_1..v_chain whose dictated reads are shifted one
//     finish-time step later, so an epoch started anywhere on the staircase
//     chains all the way down;
//   - a "doom" pair of old writes whose reads sit at the bottom of the
//     staircase, guaranteeing every staircase chain eventually fails;
//   - `goods` mutually concurrent readless writes with the largest finish
//     times, each of which ends an epoch instantly.
//
// The history is NOT 2-atomic (once the good writes are exhausted every
// remaining candidate fails), so this also measures rejection latency.
func LBTTrap(chain, goods int) *history.History {
	if chain < 1 {
		chain = 1
	}
	if goods < 0 {
		goods = 0
	}
	var ops []history.Operation
	val := int64(1)
	add := func(kind history.Kind, v, s, f int64) {
		ops = append(ops, history.Operation{ID: len(ops), Kind: kind, Value: v, Start: s, Finish: f})
	}
	L := int64(chain)
	fin := func(j int64) int64 { return 1000 + 10*j } // staircase finish ladder
	// Doom pair X, Y: old writes whose reads sit only in v_1's forced
	// region, so every full chain ends in a two-foreign-dicts failure.
	xv, yv := val, val+1
	val += 2
	add(history.KindWrite, xv, 3, 500)
	add(history.KindWrite, yv, 4, 501)
	add(history.KindRead, xv, fin(1)+2, fin(1)+3)
	add(history.KindRead, yv, fin(1)+5, fin(1)+6)
	// Staircase writes are near-points [F_j-5, F_j]: each precedes the
	// next, so only the top one is ever an epoch candidate. Their reads
	// are shifted one rung up (rv_j starts just above F_{j+1}), which is
	// what makes an epoch started at the top chain all the way down.
	vvals := make([]int64, chain+1)
	for j := int64(1); j <= L; j++ {
		vvals[j] = val
		val++
		add(history.KindWrite, vvals[j], fin(j)-5, fin(j))
	}
	for j := int64(1); j <= L; j++ {
		next := fin(j + 1) // v_{j+1}.f; for j=chain this is the trap's finish
		add(history.KindRead, vvals[j], next+2, next+7)
	}
	// The trap write T: readless, spans the staircase, largest write
	// finish among non-goods. Its forced region holds only rv_chain, so
	// its epoch descends the entire staircase before failing.
	add(history.KindWrite, val, 700, fin(L+1))
	val++
	// Good writes: start below the staircase band (staying out of every
	// chain region) and finish above every read start, so each ends an
	// epoch instantly. Mutually concurrent.
	base := fin(L+1) + 1000
	for i := int64(0); i < int64(goods); i++ {
		add(history.KindWrite, val, 800+i%200, base+10*i)
		val++
	}
	return history.Normalize(history.New(ops))
}

// ZipfCounts distributes total operations over keys with Zipfian skew of
// exponent s > 1: key rank r (0-based) receives ops proportional to
// 1/(r+1)^s, the canonical hot-key model of Internet-scale stores. The
// result is deterministic given the seed, sums exactly to total, and every
// key receives at least one operation when total >= keys. kavgen's -zipf
// flag and the hot-key benchmarks both draw from this.
//
// ZipfCounts panics when s is not > 1 (rand.NewZipf's domain); callers
// exposing the exponent to users must validate it first, as kavgen does.
func ZipfCounts(seed int64, keys, total int, s float64) []int {
	if !(s > 1) {
		panic(fmt.Sprintf("generator: zipf exponent must be > 1, got %v", s))
	}
	counts := make([]int, keys)
	if keys <= 0 || total <= 0 {
		return counts
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(keys-1))
	for i := 0; i < total; i++ {
		counts[z.Uint64()]++
	}
	// Guarantee non-empty registers (an empty history is legal but a
	// zero-op key would silently vanish from keyed output): each empty key
	// takes one op from the fullest remaining donor, walking donors in
	// descending-count order — O(keys log keys) regardless of skew.
	if total >= keys {
		donors := make([]int, keys)
		for i := range donors {
			donors[i] = i
		}
		sort.Slice(donors, func(a, b int) bool { return counts[donors[a]] > counts[donors[b]] })
		d := 0
		for i := range counts {
			if counts[i] > 0 {
				continue
			}
			for counts[donors[d]] <= 1 {
				d++
			}
			counts[donors[d]]--
			counts[i]++
			if counts[donors[d]] <= 1 {
				d++
			}
		}
	}
	return counts
}

// InjectStaleness returns a copy of h in which extra reads have been
// redirected to older writes: each selected read's value is replaced with
// the value of a write `extraDepth` positions earlier in start order. This
// typically deepens the history's smallest k. The result is re-normalized;
// reads that would become anomalous (preceding the older write) are left
// unchanged.
func InjectStaleness(h *history.History, seed int64, fraction float64, extraDepth int) *history.History {
	if extraDepth < 1 {
		extraDepth = 1
	}
	rng := rand.New(rand.NewSource(seed))
	cp := h.Clone()
	cp.SortByStart()
	// Collect writes in start order.
	var writeIdx []int
	posOfValue := make(map[int64]int)
	for i, op := range cp.Ops {
		if op.IsWrite() {
			posOfValue[op.Value] = len(writeIdx)
			writeIdx = append(writeIdx, i)
		}
	}
	for i := range cp.Ops {
		op := &cp.Ops[i]
		if !op.IsRead() || rng.Float64() >= fraction {
			continue
		}
		pos, ok := posOfValue[op.Value]
		if !ok {
			continue
		}
		older := pos - extraDepth
		if older < 0 {
			continue
		}
		w := cp.Ops[writeIdx[older]]
		if op.Finish < w.Start {
			continue // would create a read-before-write anomaly
		}
		op.Value = w.Value
	}
	return history.Normalize(cp)
}
