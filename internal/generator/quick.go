package generator

import (
	"math/rand"
	"reflect"

	"kat/internal/history"
)

// QuickHistory adapts random history generation to testing/quick: it
// implements quick.Generator, so property-based tests can take a
// QuickHistory parameter and receive structurally valid, anomaly-free,
// normalized histories of varied size, concurrency, and read mix.
type QuickHistory struct {
	H *history.History
}

// Generate implements testing/quick.Generator.
func (QuickHistory) Generate(r *rand.Rand, size int) reflect.Value {
	if size < 4 {
		size = 4
	}
	cfg := Config{
		Seed:         r.Int63(),
		Ops:          4 + r.Intn(size+12),
		Concurrency:  1 + r.Intn(8),
		ReadFraction: 0.25 + r.Float64()*0.5,
	}
	return reflect.ValueOf(QuickHistory{H: Random(cfg)})
}

// QuickAtomicHistory is like QuickHistory but guarantees the generated
// history is (Depth+1)-atomic by construction, recording the bound.
type QuickAtomicHistory struct {
	H     *history.History
	Depth int
}

// Generate implements testing/quick.Generator.
func (QuickAtomicHistory) Generate(r *rand.Rand, size int) reflect.Value {
	if size < 4 {
		size = 4
	}
	depth := r.Intn(3)
	cfg := Config{
		Seed:           r.Int63(),
		Ops:            4 + r.Intn(size+12),
		Concurrency:    1 + r.Intn(6),
		ReadFraction:   0.3 + r.Float64()*0.4,
		StalenessDepth: depth,
	}
	return reflect.ValueOf(QuickAtomicHistory{H: KAtomic(cfg), Depth: depth})
}
