package generator

import "testing"

func TestZipfCountsInvariants(t *testing.T) {
	for _, tc := range []struct {
		keys, total int
		s           float64
	}{
		{8, 400, 1.2},
		{100, 1000, 1.5},
		{50, 50, 2.5},   // total == keys: exactly one each after rebalance
		{1000, 5000, 3}, // strong skew: many ranks empty before rebalance
		{5, 2, 1.3},     // total < keys: zeros are legal
	} {
		counts := ZipfCounts(7, tc.keys, tc.total, tc.s)
		if len(counts) != tc.keys {
			t.Fatalf("%+v: %d ranks", tc, len(counts))
		}
		sum := 0
		for i, c := range counts {
			if c < 0 {
				t.Fatalf("%+v: rank %d negative (%d)", tc, i, c)
			}
			if tc.total >= tc.keys && c == 0 {
				t.Fatalf("%+v: rank %d empty despite total >= keys", tc, i)
			}
			sum += c
		}
		if sum != tc.total {
			t.Fatalf("%+v: counts sum to %d", tc, sum)
		}
	}
	// Determinism and actual skew.
	a := ZipfCounts(3, 16, 1600, 1.3)
	b := ZipfCounts(3, 16, 1600, 1.3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("ZipfCounts not deterministic")
		}
	}
	if a[0] <= 1600/16 {
		t.Fatalf("rank 0 got %d ops; expected above the uniform share", a[0])
	}
}

func TestZipfCountsRejectsBadExponent(t *testing.T) {
	for _, s := range []float64{1, 0.5, -2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("s=%v did not panic", s)
				}
			}()
			ZipfCounts(1, 4, 100, s)
		}()
	}
}
