package generator

import (
	"testing"

	"kat/internal/history"
	"kat/internal/oracle"
	"kat/internal/witness"
)

func prepare(t *testing.T, h *history.History) *history.Prepared {
	t.Helper()
	p, err := history.Prepare(h)
	if err != nil {
		t.Fatalf("generated history fails Prepare: %v", err)
	}
	return p
}

func TestKAtomicIsPreparable(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		h := KAtomic(Config{Seed: seed, Ops: 60, Concurrency: 3, StalenessDepth: 1})
		prepare(t, h)
	}
}

func TestKAtomicRespectsDepth(t *testing.T) {
	for _, depth := range []int{0, 1, 2, 3} {
		for seed := int64(0); seed < 8; seed++ {
			h := KAtomic(Config{Seed: seed, Ops: 30, Concurrency: 2, StalenessDepth: depth})
			p := prepare(t, h)
			res, err := oracle.CheckK(p, depth+1, oracle.Options{})
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			if !res.Atomic {
				t.Errorf("depth=%d seed=%d: generated history not %d-atomic", depth, seed, depth+1)
			}
			if err := witness.Validate(p, res.Witness, depth+1); err != nil {
				t.Errorf("oracle witness invalid: %v", err)
			}
		}
	}
}

func TestKAtomicForceDepthSequential(t *testing.T) {
	// Concurrency 1 → disjoint intervals → commit order is forced, so a
	// forced depth-d read makes the history exactly (d+1)-atomic.
	for _, depth := range []int{1, 2, 3} {
		h := KAtomic(Config{
			Seed: 11, Ops: 40, Concurrency: 1,
			StalenessDepth: depth, ForceDepth: true, ReadFraction: 0.4,
		})
		p := prepare(t, h)
		atK, err := oracle.CheckK(p, depth+1, oracle.Options{})
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		if !atK.Atomic {
			t.Fatalf("depth=%d: not %d-atomic", depth, depth+1)
		}
		below, err := oracle.CheckK(p, depth, oracle.Options{})
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		if below.Atomic {
			t.Errorf("depth=%d: unexpectedly %d-atomic (force failed)", depth, depth)
		}
	}
}

func TestKAtomicFirstOpIsWrite(t *testing.T) {
	h := KAtomic(Config{Seed: 3, Ops: 10, ReadFraction: 0.99})
	if h.Len() == 0 {
		t.Fatal("empty history")
	}
	// After normalization order may change, but some write must exist and
	// no read may dangle (Prepare already checks); ensure write count >= 1.
	if h.Writes() == 0 {
		t.Error("no writes generated")
	}
}

func TestKAtomicConcurrencyGrowsOverlap(t *testing.T) {
	low := history.Measure(KAtomic(Config{Seed: 5, Ops: 200, Concurrency: 1, ReadFraction: 0.01}))
	high := history.Measure(KAtomic(Config{Seed: 5, Ops: 200, Concurrency: 16, ReadFraction: 0.01}))
	if low.MaxConcurrentWrites > 2 {
		t.Errorf("sequential config has concurrency %d", low.MaxConcurrentWrites)
	}
	if high.MaxConcurrentWrites < 4 {
		t.Errorf("concurrent config has concurrency %d, want >= 4", high.MaxConcurrentWrites)
	}
}

func TestAdversarialProducesConcurrentWrites(t *testing.T) {
	h := Adversarial(Config{Seed: 9, Ops: 300, Concurrency: 32})
	st := history.Measure(h)
	if st.MaxConcurrentWrites < 8 {
		t.Errorf("adversarial concurrency = %d, want >= 8", st.MaxConcurrentWrites)
	}
	p := prepare(t, h)
	res, err := oracle.CheckK(p, 2, oracle.Options{})
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if !res.Atomic {
		t.Error("adversarial history must still be 2-atomic")
	}
}

func TestRandomIsPreparable(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		h := Random(Config{Seed: seed, Ops: 40, Concurrency: 4})
		prepare(t, h)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(Config{Seed: 77, Ops: 50, Concurrency: 3})
	b := Random(Config{Seed: 77, Ops: 50, Concurrency: 3})
	if a.String() != b.String() {
		t.Error("same seed produced different histories")
	}
	c := Random(Config{Seed: 78, Ops: 50, Concurrency: 3})
	if a.String() == c.String() {
		t.Error("different seeds produced identical histories")
	}
}

func TestInjectStalenessDeepens(t *testing.T) {
	base := KAtomic(Config{Seed: 21, Ops: 40, Concurrency: 1, StalenessDepth: 0, ReadFraction: 0.5})
	p := prepare(t, base)
	res, err := oracle.CheckK(p, 1, oracle.Options{})
	if err != nil || !res.Atomic {
		t.Fatalf("base should be 1-atomic: %v %+v", err, res)
	}
	mut := InjectStaleness(base, 1, 1.0, 3)
	pm := prepare(t, mut)
	res, err = oracle.CheckK(pm, 1, oracle.Options{})
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if res.Atomic {
		t.Error("full staleness injection at depth 3 left history 1-atomic")
	}
}

func TestInjectStalenessZeroFractionIsIdentityModuloNormalize(t *testing.T) {
	base := KAtomic(Config{Seed: 22, Ops: 30, Concurrency: 2, StalenessDepth: 1})
	mut := InjectStaleness(base, 5, 0, 2)
	if base.Len() != mut.Len() || base.Writes() != mut.Writes() {
		t.Error("zero-fraction mutation changed history shape")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Ops: -5, ReadFraction: 2, Concurrency: 0, StalenessDepth: -1}
	cfg.fill()
	if cfg.Ops != 0 || cfg.ReadFraction != 0.5 || cfg.Concurrency != 1 || cfg.StalenessDepth != 0 {
		t.Errorf("fill() = %+v", cfg)
	}
}

func TestLBTTrapStructure(t *testing.T) {
	h := LBTTrap(10, 5)
	p := prepare(t, h)
	// 2 doom writes + 2 doom reads + 10 staircase writes + 10 staircase
	// reads + 1 trap write + 5 goods.
	if want := 2 + 2 + 10 + 10 + 1 + 5; p.Len() != want {
		t.Errorf("ops = %d, want %d", p.Len(), want)
	}
	res, err := oracle.CheckK(p, 2, oracle.Options{})
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if res.Atomic {
		t.Error("trap history should not be 2-atomic")
	}
}

func TestLBTTrapDegenerateParams(t *testing.T) {
	for _, h := range []*history.History{LBTTrap(0, 0), LBTTrap(1, 0), LBTTrap(-3, -1)} {
		prepare(t, h)
	}
}
