package generator

import (
	"fmt"
	"sort"

	"kat/internal/history"
)

// ChurnConfig controls the churning-keyspace workload: a stream of key
// lifetimes born at a fixed cadence, each living briefly (one KAtomic
// history's worth of operations) and then quiescing forever — the traffic
// shape that grows a verifier's live heap without bound unless quiescent
// keys are retired. All generation is deterministic given the Seed.
type ChurnConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// Lifetimes is how many key lifetimes are born over the run.
	Lifetimes int
	// OpsPerLifetime is the operations in each lifetime (default 64).
	OpsPerLifetime int
	// Concurrency and ReadFraction shape each lifetime's history as in
	// Config.
	Concurrency  int
	ReadFraction float64
	// NamePool, when > 0, recycles this many distinct key names
	// round-robin across lifetimes, so a retired name is later reborn —
	// exercising retirement *and* re-admission. Write values stay
	// globally unique across lifetimes (each lifetime's values are
	// offset into a distinct high range), which re-admission requires:
	// retirement frees the key's value index, so a re-admitted lifetime
	// reusing an old value would dodge staleness detection. 0 gives
	// every lifetime a fresh name (pure churn, no re-admission).
	NamePool int
	// Gap is the trace-time between successive births (0 = auto). With
	// a NamePool the gap is raised as needed so a name's next lifetime
	// begins strictly after its previous one ended: per-key operations
	// must arrive in nondecreasing start order, and the rebirth must be
	// a genuinely quiescent re-admission rather than an overlap.
	Gap int64
	// NoQuiesce switches to the adversarial variant: every lifetime is
	// a chain of deliberately overlapping write intervals, so no safe
	// cut ever forms, no key ever quiesces, and the verifier's open
	// windows grow for as long as the trace runs. This is the
	// memory-pressure chaos input: a server without watermark admission
	// control OOMs on it; one with watermarks sheds with typed
	// memory_pressure rejects instead.
	NoQuiesce bool
}

// KeyedOp pairs an operation with its register key; Churn returns them in
// global arrival (start) order.
type KeyedOp struct {
	Key string
	Op  history.Operation
}

// lifeSpacing is KAtomic's commit spacing; lifeSpan bounds one lifetime's
// timeline footprint (commits at (i+1)*spacing, interval half-widths of
// 6+spacing*(c-1)/2, plus normalization slack).
const lifeSpacing = 16

func lifeSpan(ops, concurrency int) int64 {
	if concurrency < 1 {
		concurrency = 1
	}
	return int64(ops+2)*lifeSpacing + 2*int64(6+lifeSpacing*(concurrency-1)/2) + 8
}

// Churn generates the churning-keyspace workload. Each lifetime i is an
// independent (1-atomic by construction, unless NoQuiesce) history whose
// timestamps are shifted to its birth time i*gap and whose write values
// are offset into the range (i+1)<<32, keeping values unique per key even
// when NamePool recycles names across lifetimes.
func Churn(cfg ChurnConfig) []KeyedOp {
	if cfg.Lifetimes <= 0 {
		return nil
	}
	if cfg.OpsPerLifetime <= 0 {
		cfg.OpsPerLifetime = 64
	}
	span := lifeSpan(cfg.OpsPerLifetime, cfg.Concurrency)
	gap := cfg.Gap
	if gap <= 0 {
		// Auto: enough birth overlap to keep several keys live at once
		// (the retirement sweep then always has both live and quiescent
		// keys to look at), floored at 1 so time advances.
		gap = span / 8
		if gap < 1 {
			gap = 1
		}
	}
	if p := cfg.NamePool; p > 0 {
		// A name's successive lifetimes are p births apart; stretch the
		// gap until p*gap clears one lifetime's span so the rebirth
		// starts after the previous lifetime finished.
		if min := span/int64(p) + 1; gap < min {
			gap = min
		}
	}
	var out []KeyedOp
	for i := 0; i < cfg.Lifetimes; i++ {
		name := fmt.Sprintf("key-%06d", i)
		if cfg.NamePool > 0 {
			name = fmt.Sprintf("key-%04d", i%cfg.NamePool)
		}
		base := int64(i) * gap
		valBase := int64(i+1) << 32
		var ops []history.Operation
		if cfg.NoQuiesce {
			ops = chainedWrites(cfg.OpsPerLifetime)
		} else {
			h := KAtomic(Config{
				Seed: cfg.Seed + int64(i), Ops: cfg.OpsPerLifetime,
				Concurrency: cfg.Concurrency, ReadFraction: cfg.ReadFraction,
			})
			ops = h.Ops
		}
		for _, op := range ops {
			op.Start += base
			op.Finish += base
			op.Value += valBase
			op.Client = i
			out = append(out, KeyedOp{Key: name, Op: op})
		}
	}
	// Global arrival order; any per-key subsequence of a start-sorted
	// stream is itself nondecreasing in start, so the ingest ordering
	// contract holds for every key.
	sortKeyedOps(out)
	return out
}

// chainedWrites builds the never-quiescing lifetime: write-only (trivially
// k-atomic for any k, so the adversarial trace stays a *valid* workload),
// with each interval overlapping the next — no quiescent point ever
// forms, so no safe cut, no segment dispatch, and no retirement.
// Timestamps are distinct by construction (starts ≡ 0, finishes ≡ 8 mod
// lifeSpacing), so no normalization pass is needed that might shorten the
// overlaps away.
func chainedWrites(n int) []history.Operation {
	ops := make([]history.Operation, n)
	for i := range ops {
		s := int64(i) * lifeSpacing
		ops[i] = history.Operation{
			ID: i, Kind: history.KindWrite, Value: int64(i + 1),
			Start: s, Finish: s + 2*lifeSpacing + 8,
		}
	}
	return ops
}

// sortKeyedOps orders by (Start, Key, ID): deterministic across runs.
func sortKeyedOps(ops []KeyedOp) {
	sort.SliceStable(ops, func(i, j int) bool {
		a, b := ops[i], ops[j]
		if a.Op.Start != b.Op.Start {
			return a.Op.Start < b.Op.Start
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Op.ID < b.Op.ID
	})
}
