package shrink

import (
	"testing"

	"kat/internal/core"
	"kat/internal/generator"
	"kat/internal/history"
)

// not2Atomic is the canonical predicate: the history is NOT 2-atomic.
func not2Atomic(h *history.History) bool {
	rep, err := core.Check(h, 2, core.Options{})
	if err != nil {
		return false // treat malformed candidates as uninteresting
	}
	return !rep.Atomic
}

func TestMinimizeKeepsViolation(t *testing.T) {
	// Large 1-atomic history with injected deep staleness.
	base := generator.KAtomic(generator.Config{
		Seed: 4, Ops: 80, Concurrency: 2, StalenessDepth: 0, ReadFraction: 0.5,
	})
	mut := generator.InjectStaleness(base, 8, 0.2, 4)
	if !not2Atomic(mut) {
		t.Skip("mutation did not produce a 2-AV violation for this seed")
	}
	min := Minimize(mut, not2Atomic)
	if !not2Atomic(min) {
		t.Fatal("minimized history no longer violates")
	}
	if min.Len() >= mut.Len() {
		t.Errorf("no reduction: %d -> %d ops", mut.Len(), min.Len())
	}
	// A minimal 2-AV violation needs at least 3 writes + 1 read = 4 ops.
	if min.Len() < 4 {
		t.Errorf("implausibly small violation: %d ops\n%s", min.Len(), min)
	}
}

func TestMinimizeIsOneMinimal(t *testing.T) {
	base := generator.KAtomic(generator.Config{
		Seed: 10, Ops: 60, Concurrency: 2, StalenessDepth: 0, ReadFraction: 0.5,
	})
	mut := generator.InjectStaleness(base, 3, 0.2, 4)
	if !not2Atomic(mut) {
		t.Skip("mutation did not produce a violation for this seed")
	}
	min := Minimize(mut, not2Atomic)
	// Removing any single read must erase the violation... not necessarily
	// (there can be several independent violations), but removing EVERY
	// read one at a time must be checked not to panic and to keep
	// well-formedness.
	for i := 0; i < min.Len(); i++ {
		if !min.Ops[i].IsRead() {
			continue
		}
		cand := &history.History{}
		cand.Ops = append(cand.Ops, min.Ops[:i]...)
		cand.Ops = append(cand.Ops, min.Ops[i+1:]...)
		if not2Atomic(cand) {
			t.Errorf("not 1-minimal: removing read %d keeps the violation", i)
		}
	}
}

func TestMinimizeNonViolatingReturnsInput(t *testing.T) {
	h := generator.KAtomic(generator.Config{Seed: 2, Ops: 20, StalenessDepth: 1})
	min := Minimize(h, not2Atomic)
	if min.Len() != h.Len() {
		t.Errorf("minimized a non-violating history: %d -> %d", h.Len(), min.Len())
	}
}

func TestMinimizeTinyCore(t *testing.T) {
	// The classic minimal violation plus noise: the shrinker should cut
	// most of the noise ops.
	text := `
w 1 0 10
w 2 20 30
w 3 40 50
r 1 60 70
w 90 100 110
r 90 120 130
w 91 140 150
r 91 160 170
`
	h := history.MustParse(text)
	if !not2Atomic(h) {
		t.Fatal("setup: history should violate 2-AV")
	}
	min := Minimize(h, not2Atomic)
	if min.Len() != 4 {
		t.Errorf("minimized to %d ops, want exactly the 4-op core:\n%s", min.Len(), min)
	}
}
