// Package shrink minimizes failing histories: given a history that violates
// a property (typically "is 2-atomic"), it removes operations while the
// violation persists, producing a small counterexample a human can read.
// This is the debugging companion a consistency checker needs in practice:
// a production trace with thousands of operations usually violates
// k-atomicity because of a handful of them.
//
// Removal preserves well-formedness: reads are removed individually; a write
// is only removed together with all reads of its value (cluster removal), so
// no dangling reads are ever created.
package shrink

import (
	"kat/internal/history"
)

// Predicate reports whether a history still exhibits the failure of
// interest (e.g., "not 2-atomic"). It must be deterministic.
type Predicate func(*history.History) bool

// Minimize greedily removes clusters and then individual reads while pred
// stays true, iterating to a fixed point. The result satisfies pred and is
// 1-minimal with respect to these removal operations: removing any single
// read or any single cluster makes pred false.
func Minimize(h *history.History, pred Predicate) *history.History {
	cur := h.Clone()
	if !pred(cur) {
		return cur // nothing to minimize
	}
	for {
		reduced := false
		// Pass 1: whole clusters (a write and all reads of its value).
		for _, v := range writeValues(cur) {
			cand := withoutCluster(cur, v)
			if cand.Len() < cur.Len() && pred(cand) {
				cur = cand
				reduced = true
			}
		}
		// Pass 2: individual reads.
		for i := 0; i < cur.Len(); i++ {
			if !cur.Ops[i].IsRead() {
				continue
			}
			cand := withoutIndex(cur, i)
			if pred(cand) {
				cur = cand
				reduced = true
				i-- // the slice shifted; re-examine this position
			}
		}
		if !reduced {
			return cur
		}
	}
}

func writeValues(h *history.History) []int64 {
	var out []int64
	for _, op := range h.Ops {
		if op.IsWrite() {
			out = append(out, op.Value)
		}
	}
	return out
}

func withoutCluster(h *history.History, value int64) *history.History {
	out := &history.History{}
	for _, op := range h.Ops {
		if op.Value == value {
			continue
		}
		out.Ops = append(out.Ops, op)
	}
	return out
}

func withoutIndex(h *history.History, i int) *history.History {
	out := &history.History{Ops: make([]history.Operation, 0, h.Len()-1)}
	out.Ops = append(out.Ops, h.Ops[:i]...)
	out.Ops = append(out.Ops, h.Ops[i+1:]...)
	return out
}
