// Package wal implements the write-ahead log of the durable online
// verifier: CRC-framed records in per-ingest-shard files, grouped into
// epochs that rotate at each checkpoint.
//
// Record framing follows the leveldb log idiom (the ROADMAP exemplar),
// simplified to unbounded records since our payloads are batch groups of
// at most a few hundred KiB:
//
//	crc    uint32 LE  — CRC-32C (Castagnoli) over type byte + payload
//	length uint32 LE  — payload length
//	type   byte       — record type (RecordBatch, RecordCkptHeader, ...)
//	payload[length]
//
// Torn tails truncate: a reader stops cleanly at the first incomplete or
// CRC-corrupt record, which is exactly the state a crash mid-append leaves
// behind. Writers are sticky — after any write error the writer refuses
// further appends, so a torn record is always the *last* record of its
// file and recovery never replays operations written after a failure the
// client was already told about.
//
// File layout under the data directory:
//
//	wal-ep%08d-s%04d.log — epoch E, ingest shard S
//
// Epochs tie the log to checkpoints: checkpoint N snapshots exactly the
// state produced by the operations in epochs < N, so recovery restores the
// newest valid checkpoint and replays only epochs >= its number.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kat/internal/faultfs"
)

// Record types. Batch records carry ingest payloads; the Ckpt* types frame
// sections of a checkpoint file (package checkpoint reuses this framing so
// checkpoints get CRC and torn-tail detection for free).
const (
	RecordBatch      byte = 1
	RecordCkptHeader byte = 2
	RecordCkptKey    byte = 3
	RecordCkptFooter byte = 4
)

const headerSize = 4 + 4 + 1 // crc + length + type

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrSticky reports an append attempted after a prior write error; the
// writer refuses so a torn record is always terminal in its file.
var ErrSticky = errors.New("wal: writer failed earlier; refusing further appends")

// Writer frames records into one file with group-commit fsync: Sync is a
// no-op when nothing was written since the last Sync, so N logical commits
// that race into one quiet period cost one fsync.
type Writer struct {
	f       faultfs.File
	scratch [headerSize]byte
	written int64 // bytes appended
	synced  int64 // bytes known durable
	err     error // sticky first error
}

// NewWriter wraps an open file the writer takes ownership of.
func NewWriter(f faultfs.File) *Writer { return &Writer{f: f} }

// Append frames and writes one record. Errors are sticky.
func (w *Writer) Append(typ byte, payload []byte) error {
	if w.err != nil {
		return ErrSticky
	}
	crc := crc32.Update(0, castagnoli, []byte{typ})
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(w.scratch[0:4], crc)
	binary.LittleEndian.PutUint32(w.scratch[4:8], uint32(len(payload)))
	w.scratch[8] = typ
	if _, err := w.f.Write(w.scratch[:]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.f.Write(payload); err != nil {
		w.err = err
		return err
	}
	w.written += int64(headerSize + len(payload))
	return nil
}

// Sync makes all appended records durable. Skips the fsync when nothing new
// was written — the group-commit fast path.
func (w *Writer) Sync() error {
	if w.err != nil {
		return ErrSticky
	}
	if w.synced == w.written {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.err = err
		return err
	}
	w.synced = w.written
	return nil
}

// Dirty reports whether records were appended since the last Sync.
func (w *Writer) Dirty() bool { return w.err == nil && w.synced != w.written }

// Written returns the bytes appended so far (framing included).
func (w *Writer) Written() int64 { return w.written }

// Err returns the sticky error, if any.
func (w *Writer) Err() error { return w.err }

// Close closes the underlying file without syncing.
func (w *Writer) Close() error { return w.f.Close() }

// Record is one decoded record.
type Record struct {
	Type    byte
	Payload []byte
}

// ReadAll decodes every complete, CRC-valid record from r, stopping cleanly
// at the first torn or corrupt one. It returns the records, the count of
// trailing bytes discarded as torn (0 for a clean file), and any underlying
// read error other than the expected EOF forms.
func ReadAll(r io.Reader) (recs []Record, torn int64, err error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, err
	}
	off := 0
	for {
		if off+headerSize > len(data) {
			return recs, int64(len(data) - off), nil
		}
		crc := binary.LittleEndian.Uint32(data[off : off+4])
		length := int(binary.LittleEndian.Uint32(data[off+4 : off+8]))
		typ := data[off+8]
		body := off + headerSize
		if length < 0 || body+length > len(data) {
			return recs, int64(len(data) - off), nil
		}
		got := crc32.Update(0, castagnoli, data[off+8:off+9])
		got = crc32.Update(got, castagnoli, data[body:body+length])
		if got != crc {
			return recs, int64(len(data) - off), nil
		}
		recs = append(recs, Record{Type: typ, Payload: data[body : body+length]})
		off = body + length
	}
}

// ReadFile decodes the records of one log file. A missing file is an error.
func ReadFile(fsys faultfs.FS, name string) ([]Record, int64, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return ReadAll(f)
}

// SyncPolicy selects when the per-shard log files are fsynced.
type SyncPolicy int

const (
	// SyncNever leaves durability to the OS (and the periodic checkpoint's
	// explicit syncs). Fastest; loses the page-cache tail on machine crash,
	// nothing on process crash.
	SyncNever SyncPolicy = iota
	// SyncBatch fsyncs each dirty shard file once per committed ingest
	// batch — group commit at batch granularity, the default for -fsync=batch.
	SyncBatch
	// SyncAlways fsyncs on every shard append, before the ingest lock is
	// released. Strongest and slowest.
	SyncAlways
)

// ParseSyncPolicy maps flag spellings to policies.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "never", "":
		return SyncNever, nil
	case "batch":
		return SyncBatch, nil
	case "always":
		return SyncAlways, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want never, batch, or always)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncNever:
		return "never"
	case SyncBatch:
		return "batch"
	case SyncAlways:
		return "always"
	}
	return "unknown"
}

// Stats are the log's monotonic counters, safe to read concurrently.
type Stats struct {
	Fsyncs       int64 // fsync calls that actually hit the disk
	FsyncNanos   int64 // cumulative wall time inside those fsyncs
	Records      int64 // batch records appended
	Bytes        int64 // payload + framing bytes appended
	Rotations    int64 // epoch rotations
	EpochsPurged int64 // old epoch files garbage-collected
}

// Log is the per-shard, epoch-rotating write-ahead log. One shardWriter per
// ingest shard; the ingest path appends to shard S's file under shard S's
// ingest lock, so appends to one file never race. Rotation and Commit take
// the log-wide mutex; appends only read the current writer pointer under a
// per-shard mutex that rotation also takes, keeping the hot path
// uncontended (the shard ingest lock already serializes callers per shard).
type Log struct {
	fs     faultfs.FS
	dir    string
	policy SyncPolicy
	shards []*shardWriter

	mu    sync.Mutex // guards epoch/rotation
	epoch int

	fsyncs     atomic.Int64
	fsyncNanos atomic.Int64
	records    atomic.Int64
	bytes      atomic.Int64
	rotations  atomic.Int64
	purged     atomic.Int64
}

type shardWriter struct {
	mu sync.Mutex
	w  *Writer
}

// FileName returns the log file name (relative to the data dir) of one
// epoch+shard pair.
func FileName(epoch, shard int) string {
	return fmt.Sprintf("wal-ep%08d-s%04d.log", epoch, shard)
}

// ParseFileName inverts FileName; ok is false for non-WAL names.
func ParseFileName(name string) (epoch, shard int, ok bool) {
	var e, s int
	n, err := fmt.Sscanf(name, "wal-ep%08d-s%04d.log", &e, &s)
	if err != nil || n != 2 {
		return 0, 0, false
	}
	return e, s, true
}

// ListEpochs scans dir for WAL files and returns the sorted distinct epoch
// numbers present.
func ListEpochs(fsys faultfs.FS, dir string) ([]int, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	seen := map[int]bool{}
	for _, name := range names {
		if e, _, ok := ParseFileName(name); ok {
			seen[e] = true
		}
	}
	epochs := make([]int, 0, len(seen))
	for e := range seen {
		epochs = append(epochs, e)
	}
	sort.Ints(epochs)
	return epochs, nil
}

// Open creates a Log writing epoch `epoch` files for `shards` ingest
// shards. The directory must already exist.
func Open(fsys faultfs.FS, dir string, shards, epoch int, policy SyncPolicy) (*Log, error) {
	l := &Log{fs: fsys, dir: dir, policy: policy, epoch: epoch,
		shards: make([]*shardWriter, shards)}
	for s := range l.shards {
		l.shards[s] = &shardWriter{}
	}
	if err := l.openEpoch(epoch); err != nil {
		return nil, err
	}
	return l, nil
}

// openEpoch creates all shard files of one epoch, closing any current
// writers first. Create-all-first: if any create fails, the already-created
// files of the new epoch are removed so a failed rotation leaves only whole
// epochs on disk.
func (l *Log) openEpoch(epoch int) error {
	writers := make([]*Writer, len(l.shards))
	for s := range l.shards {
		f, err := l.fs.Create(join(l.dir, FileName(epoch, s)))
		if err != nil {
			for t := 0; t < s; t++ {
				writers[t].Close()
				l.fs.Remove(join(l.dir, FileName(epoch, t)))
			}
			return fmt.Errorf("wal: open epoch %d: %w", epoch, err)
		}
		writers[s] = NewWriter(f)
	}
	for s, sw := range l.shards {
		sw.mu.Lock()
		if sw.w != nil {
			sw.w.Close()
		}
		sw.w = writers[s]
		sw.mu.Unlock()
	}
	l.epoch = epoch
	return nil
}

// join is filepath.Join without pulling path/filepath into the hot-path
// package surface; data-dir layouts are flat so simple concatenation works
// across faultfs implementations (MemFS keys are plain strings).
func join(dir, name string) string {
	if dir == "" || dir == "." {
		return name
	}
	return dir + "/" + name
}

// Epoch returns the current epoch number.
func (l *Log) Epoch() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// AppendShard logs one batch-group payload for shard s. Called with shard
// s's ingest lock held, so per-shard record order matches per-shard ingest
// order exactly. Under SyncAlways the record is durable before return.
func (l *Log) AppendShard(s int, payload []byte) error {
	sw := l.shards[s]
	sw.mu.Lock()
	defer sw.mu.Unlock()
	w := sw.w
	if err := w.Append(RecordBatch, payload); err != nil {
		return fmt.Errorf("wal: shard %d append: %w", s, err)
	}
	l.records.Add(1)
	l.bytes.Add(int64(headerSize + len(payload)))
	if l.policy == SyncAlways {
		if err := l.syncWriter(w); err != nil {
			return fmt.Errorf("wal: shard %d sync: %w", s, err)
		}
	}
	return nil
}

func (l *Log) syncWriter(w *Writer) error {
	if !w.Dirty() {
		return w.Sync() // surfaces sticky errors without timing a no-op
	}
	start := time.Now()
	err := w.Sync()
	l.fsyncNanos.Add(time.Since(start).Nanoseconds())
	l.fsyncs.Add(1)
	return err
}

// Commit makes every record appended so far durable under SyncBatch (and
// surfaces sticky errors under all policies). Under SyncNever it does not
// fsync. Safe to call concurrently with appends to other shards.
func (l *Log) Commit() error {
	for s, sw := range l.shards {
		sw.mu.Lock()
		w := sw.w
		var err error
		if l.policy == SyncNever {
			err = w.Err()
		} else {
			err = l.syncWriter(w)
		}
		sw.mu.Unlock()
		if err != nil {
			return fmt.Errorf("wal: shard %d commit: %w", s, err)
		}
	}
	return nil
}

// Rotate syncs and closes the current epoch's files and opens epoch
// `epoch`. The caller must guarantee no concurrent AppendShard (the
// checkpoint freeze holds every ingest lock). Old epoch files stay on disk
// until PurgeBefore.
func (l *Log) Rotate(epoch int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if epoch <= l.epoch {
		return fmt.Errorf("wal: rotate to epoch %d not after current %d", epoch, l.epoch)
	}
	// Seal the outgoing epoch: even under SyncNever, an epoch boundary is a
	// durability boundary (the checkpoint that follows will claim to cover
	// everything before it).
	for s, sw := range l.shards {
		sw.mu.Lock()
		err := l.syncWriter(sw.w)
		sw.mu.Unlock()
		if err != nil {
			return fmt.Errorf("wal: rotate seal shard %d: %w", s, err)
		}
	}
	if err := l.openEpoch(epoch); err != nil {
		return err
	}
	l.rotations.Add(1)
	return nil
}

// PurgeBefore removes all WAL files of epochs < epoch. Called only after a
// checkpoint covering those epochs has been durably published. Removal
// failures are ignored (stale files are harmless — recovery replays from
// the checkpoint's epoch anyway).
func (l *Log) PurgeBefore(epoch int) {
	epochs, err := ListEpochs(l.fs, l.dir)
	if err != nil {
		return
	}
	for _, e := range epochs {
		if e >= epoch {
			continue
		}
		for s := range l.shards {
			if l.fs.Remove(join(l.dir, FileName(e, s))) == nil {
				l.purged.Add(1)
			}
		}
	}
}

// Stats snapshots the counters.
func (l *Log) Stats() Stats {
	return Stats{
		Fsyncs:       l.fsyncs.Load(),
		FsyncNanos:   l.fsyncNanos.Load(),
		Records:      l.records.Load(),
		Bytes:        l.bytes.Load(),
		Rotations:    l.rotations.Load(),
		EpochsPurged: l.purged.Load(),
	}
}

// Close closes all shard writers without rotating or syncing.
func (l *Log) Close() error {
	var first error
	for _, sw := range l.shards {
		sw.mu.Lock()
		if sw.w != nil {
			if err := sw.w.Close(); err != nil && first == nil {
				first = err
			}
			sw.w = nil
		}
		sw.mu.Unlock()
	}
	return first
}
