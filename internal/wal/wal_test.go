package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"kat/internal/faultfs"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	mem := faultfs.NewMem()
	f, _ := mem.Create("log")
	w := NewWriter(f)
	payloads := [][]byte{[]byte("alpha"), {}, []byte("gamma with spaces\nand newline")}
	for _, p := range payloads {
		if err := w.Append(RecordBatch, p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if !w.Dirty() {
		t.Fatal("writer should be dirty before sync")
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if w.Dirty() {
		t.Fatal("writer dirty after sync")
	}

	recs, torn, err := ReadFile(mem, "log")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if torn != 0 {
		t.Fatalf("torn = %d, want 0", torn)
	}
	if len(recs) != len(payloads) {
		t.Fatalf("got %d records, want %d", len(recs), len(payloads))
	}
	for i, r := range recs {
		if r.Type != RecordBatch || !bytes.Equal(r.Payload, payloads[i]) {
			t.Fatalf("record %d = (%d, %q)", i, r.Type, r.Payload)
		}
	}
}

// TestTornTailEveryByte truncates a three-record file at every byte offset
// and checks the reader returns exactly the records whose frames fit.
func TestTornTailEveryByte(t *testing.T) {
	mem := faultfs.NewMem()
	f, _ := mem.Create("log")
	w := NewWriter(f)
	var ends []int64 // cumulative file size after each record
	for i := 0; i < 3; i++ {
		p := bytes.Repeat([]byte{byte('a' + i)}, 10+i*7)
		if err := w.Append(RecordBatch, p); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, w.Written())
	}
	full, _ := faultfs.ReadFile(mem, "log")
	for cut := 0; cut <= len(full); cut++ {
		recs, torn, err := ReadAll(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := 0
		for _, e := range ends {
			if int64(cut) >= e {
				want++
			}
		}
		if len(recs) != want {
			t.Fatalf("cut %d: got %d records, want %d", cut, len(recs), want)
		}
		wantTorn := int64(cut)
		if want > 0 {
			wantTorn = int64(cut) - ends[want-1]
		}
		if torn != wantTorn {
			t.Fatalf("cut %d: torn = %d, want %d", cut, torn, wantTorn)
		}
	}
}

func TestCorruptMiddleStops(t *testing.T) {
	mem := faultfs.NewMem()
	f, _ := mem.Create("log")
	w := NewWriter(f)
	w.Append(RecordBatch, []byte("first"))
	firstEnd := w.Written()
	w.Append(RecordBatch, []byte("second"))
	data, _ := faultfs.ReadFile(mem, "log")
	data[firstEnd+9]++ // flip a payload byte of the second record
	recs, torn, err := ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "first" {
		t.Fatalf("recs = %v", recs)
	}
	if torn != int64(len(data))-firstEnd {
		t.Fatalf("torn = %d", torn)
	}
}

func TestWriterSticky(t *testing.T) {
	mem := faultfs.NewMem()
	ff := faultfs.NewFaulty(mem, faultfs.FailOnce(faultfs.OpWrite, 2, 3))
	f, _ := ff.Create("log")
	w := NewWriter(f)
	if err := w.Append(RecordBatch, []byte("ok")); err != nil {
		t.Fatalf("first append: %v", err)
	}
	// Second append: header write (op 1) passes, payload write (op 2) tears.
	if err := w.Append(RecordBatch, []byte("doomed")); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("append err = %v, want injected", err)
	}
	if err := w.Append(RecordBatch, []byte("after")); !errors.Is(err, ErrSticky) {
		t.Fatalf("append after failure = %v, want ErrSticky", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrSticky) {
		t.Fatalf("sync after failure = %v, want ErrSticky", err)
	}
	// The torn file still yields the first record cleanly.
	recs, torn, err := ReadFile(mem, "log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "ok" {
		t.Fatalf("recs = %+v", recs)
	}
	if torn == 0 {
		t.Fatal("expected torn bytes from the failed append")
	}
}

func TestGroupSyncSkipsCleanFile(t *testing.T) {
	mem := faultfs.NewMem()
	syncs := 0
	ff := faultfs.NewFaulty(mem, func(op faultfs.Op, _ string, _ int64) *faultfs.Fault {
		if op == faultfs.OpSync {
			syncs++
		}
		return nil
	})
	f, _ := ff.Create("log")
	w := NewWriter(f)
	w.Append(RecordBatch, []byte("x"))
	w.Sync()
	w.Sync()
	w.Sync()
	if syncs != 1 {
		t.Fatalf("underlying syncs = %d, want 1 (group-commit skip)", syncs)
	}
}

func TestFileNameRoundTrip(t *testing.T) {
	name := FileName(7, 12)
	if name != "wal-ep00000007-s0012.log" {
		t.Fatalf("FileName = %q", name)
	}
	e, s, ok := ParseFileName(name)
	if !ok || e != 7 || s != 12 {
		t.Fatalf("ParseFileName = %d, %d, %v", e, s, ok)
	}
	for _, bad := range []string{"ckpt-00000007", "wal-ep.log", "random.txt"} {
		if _, _, ok := ParseFileName(bad); ok {
			t.Fatalf("ParseFileName(%q) unexpectedly ok", bad)
		}
	}
}

func TestLogEpochsRotatePurge(t *testing.T) {
	mem := faultfs.NewMem()
	mem.MkdirAll("d")
	l, err := Open(mem, "d", 2, 0, SyncBatch)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendShard(0, []byte("s0 e0")); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendShard(1, []byte("s1 e0")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(1); err != nil {
		t.Fatal(err)
	}
	if l.Epoch() != 1 {
		t.Fatalf("epoch = %d", l.Epoch())
	}
	if err := l.AppendShard(0, []byte("s0 e1")); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	epochs, err := ListEpochs(mem, "d")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(epochs) != "[0 1]" {
		t.Fatalf("epochs = %v", epochs)
	}
	recs, _, err := ReadFile(mem, "d/"+FileName(0, 0))
	if err != nil || len(recs) != 1 || string(recs[0].Payload) != "s0 e0" {
		t.Fatalf("epoch0 shard0: %v %v", recs, err)
	}
	recs, _, err = ReadFile(mem, "d/"+FileName(1, 0))
	if err != nil || len(recs) != 1 || string(recs[0].Payload) != "s0 e1" {
		t.Fatalf("epoch1 shard0: %v %v", recs, err)
	}
	l.PurgeBefore(1)
	epochs, _ = ListEpochs(mem, "d")
	if fmt.Sprint(epochs) != "[1]" {
		t.Fatalf("epochs after purge = %v", epochs)
	}
	st := l.Stats()
	if st.Records != 3 || st.Rotations != 1 || st.EpochsPurged != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Fsyncs == 0 {
		t.Fatalf("stats.Fsyncs = 0 under SyncBatch")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRotateBackwardsRejected(t *testing.T) {
	mem := faultfs.NewMem()
	l, err := Open(mem, ".", 1, 3, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(3); err == nil {
		t.Fatal("rotate to same epoch should fail")
	}
	if err := l.Rotate(2); err == nil {
		t.Fatal("rotate backwards should fail")
	}
}

func TestRotateCreateFailureLeavesWholeEpochs(t *testing.T) {
	mem := faultfs.NewMem()
	// Creates: epoch0 shard0+1 pass (ops 0,1); rotation's epoch1 shard1
	// create fails (op 3), after shard0's create (op 2) succeeded.
	ff := faultfs.NewFaulty(mem, faultfs.FailOnce(faultfs.OpCreate, 3, 0))
	l, err := Open(ff, ".", 2, 0, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	l.AppendShard(0, []byte("keep"))
	if err := l.Rotate(1); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("rotate err = %v", err)
	}
	// The half-created epoch-1 file was cleaned up; epoch 0 still complete
	// and writable (rotation failed before swapping writers).
	epochs, _ := ListEpochs(mem, ".")
	if fmt.Sprint(epochs) != "[0]" {
		t.Fatalf("epochs = %v", epochs)
	}
	if err := l.AppendShard(0, []byte("still writable")); err != nil {
		t.Fatalf("append after failed rotate: %v", err)
	}
	recs, _, _ := ReadFile(mem, FileName(0, 0))
	if len(recs) != 2 {
		t.Fatalf("epoch0 shard0 records = %d", len(recs))
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    SyncPolicy
		wantErr bool
	}{
		{"never", SyncNever, false},
		{"", SyncNever, false},
		{"batch", SyncBatch, false},
		{"always", SyncAlways, false},
		{"nope", 0, true},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if (err != nil) != tc.wantErr || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if SyncBatch.String() != "batch" || SyncAlways.String() != "always" || SyncNever.String() != "never" {
		t.Fatal("String round-trip broken")
	}
}

func TestSyncAlwaysFsyncsPerAppend(t *testing.T) {
	mem := faultfs.NewMem()
	l, err := Open(mem, ".", 1, 0, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	l.AppendShard(0, []byte("a"))
	l.AppendShard(0, []byte("b"))
	if st := l.Stats(); st.Fsyncs != 2 {
		t.Fatalf("fsyncs = %d, want 2", st.Fsyncs)
	}
}

func TestAppendShardFaultSticky(t *testing.T) {
	mem := faultfs.NewMem()
	ff := faultfs.NewFaulty(mem, faultfs.FailOnce(faultfs.OpSync, 0, 0))
	l, err := Open(ff, ".", 1, 0, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendShard(0, []byte("x")); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("append err = %v", err)
	}
	if err := l.AppendShard(0, []byte("y")); !errors.Is(err, ErrSticky) {
		t.Fatalf("second append err = %v, want sticky", err)
	}
	if err := l.Commit(); !errors.Is(err, ErrSticky) {
		t.Fatalf("commit err = %v, want sticky", err)
	}
}
