package quorum

import (
	"testing"

	"kat/internal/core"
	"kat/internal/history"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Replicas: 0, ReadQuorum: 1, WriteQuorum: 1},
		{Replicas: 3, ReadQuorum: 0, WriteQuorum: 1},
		{Replicas: 3, ReadQuorum: 4, WriteQuorum: 1},
		{Replicas: 3, ReadQuorum: 1, WriteQuorum: 0},
		{Replicas: 3, ReadQuorum: 1, WriteQuorum: 5},
	}
	for i, cfg := range bad {
		if _, _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRunProducesPreparableHistory(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		h, stats, err := Run(Config{
			Seed: seed, Replicas: 3, ReadQuorum: 2, WriteQuorum: 2,
			Clients: 4, OpsPerClient: 20,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if _, err := history.Prepare(h); err != nil {
			t.Fatalf("seed %d: history not preparable: %v\n%s", seed, err, h)
		}
		if stats.CompletedWrites == 0 || stats.CompletedReads == 0 {
			t.Errorf("seed %d: no completed traffic: %+v", seed, stats)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Replicas: 5, ReadQuorum: 2, WriteQuorum: 3,
		Clients: 3, OpsPerClient: 15, ClockSkew: 5}
	a, _, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, _, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different histories")
	}
}

func TestStrictQuorumMostlyAtomic(t *testing.T) {
	// R+W > N with no skew: every read quorum intersects every write
	// quorum; histories should verify at k=1 (or at worst k=2 under
	// concurrency).
	atomic1 := 0
	total := 20
	for seed := int64(0); seed < int64(total); seed++ {
		h, _, err := Run(Config{
			Seed: seed, Replicas: 3, ReadQuorum: 2, WriteQuorum: 2,
			Clients: 3, OpsPerClient: 12,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		rep, err := core.Check(h, 1, core.Options{})
		if err != nil {
			t.Fatalf("Check: %v", err)
		}
		if rep.Atomic {
			atomic1++
		} else {
			// Must at least be k-atomic for some reasonable k.
			k, err := core.SmallestK(h, core.Options{})
			if err != nil {
				t.Fatalf("SmallestK: %v", err)
			}
			if k > 3 {
				t.Errorf("seed %d: strict quorum run needed k=%d", seed, k)
			}
		}
	}
	if atomic1 < total/2 {
		t.Errorf("only %d/%d strict-quorum runs were 1-atomic", atomic1, total)
	}
}

func TestWeakQuorumShowsStaleness(t *testing.T) {
	// R+W <= N with clock skew: staleness should appear in some runs.
	sawStale := false
	for seed := int64(0); seed < 30 && !sawStale; seed++ {
		h, _, err := Run(Config{
			Seed: seed, Replicas: 5, ReadQuorum: 1, WriteQuorum: 1,
			Clients: 6, OpsPerClient: 15, ClockSkew: 20, MaxDelay: 30,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		rep, err := core.Check(h, 1, core.Options{})
		if err != nil {
			t.Fatalf("Check: %v", err)
		}
		if !rep.Atomic {
			sawStale = true
		}
	}
	if !sawStale {
		t.Error("no staleness in 30 weak-quorum runs; simulator too forgiving")
	}
}

func TestCrashesStillVerifiable(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		h, stats, err := Run(Config{
			Seed: seed, Replicas: 5, ReadQuorum: 2, WriteQuorum: 2,
			Clients: 4, OpsPerClient: 15, CrashReplicas: 2,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if stats.Crashes != 2 {
			t.Errorf("seed %d: crashes = %d, want 2", seed, stats.Crashes)
		}
		if _, err := history.Prepare(h); err != nil {
			t.Fatalf("seed %d: history not preparable after crashes: %v", seed, err)
		}
		// Smallest k must still be computable (bounded search).
		if _, err := core.SmallestK(h, core.Options{}); err != nil {
			t.Fatalf("seed %d: SmallestK: %v", seed, err)
		}
	}
}

func TestTimeoutsHappenWithAggressiveDeadline(t *testing.T) {
	sawTimeout := false
	for seed := int64(0); seed < 10 && !sawTimeout; seed++ {
		_, stats, err := Run(Config{
			Seed: seed, Replicas: 5, ReadQuorum: 5, WriteQuorum: 5,
			Clients: 2, OpsPerClient: 10, CrashReplicas: 3,
			Timeout: 50,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if stats.TimedOutReads+stats.TimedOutWrites > 0 {
			sawTimeout = true
		}
	}
	if !sawTimeout {
		t.Error("full-quorum ops against 3 crashed replicas never timed out")
	}
}

func TestSeedWritePresent(t *testing.T) {
	h, _, err := Run(Config{Seed: 1, Replicas: 3, ReadQuorum: 1, WriteQuorum: 1,
		Clients: 1, OpsPerClient: 3, ReadFraction: 0.9})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	found := false
	for _, op := range h.Ops {
		if op.IsWrite() && op.Value == 0 {
			found = true
		}
	}
	if !found {
		t.Error("seed write missing from history")
	}
}

func TestZeroOps(t *testing.T) {
	h, _, err := Run(Config{Seed: 1, Replicas: 3, ReadQuorum: 2, WriteQuorum: 2,
		Clients: 2, OpsPerClient: 0})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Only the seed write remains.
	if h.Len() != 1 {
		t.Errorf("ops = %d, want 1 (seed write)", h.Len())
	}
}

func TestReadRepairImprovesConsistency(t *testing.T) {
	// Weak quorums with skew: read repair should produce at least as many
	// 1-atomic runs as no repair, and strictly more in aggregate.
	base := Config{Replicas: 5, ReadQuorum: 1, WriteQuorum: 1,
		Clients: 6, OpsPerClient: 15, ClockSkew: 10, MaxDelay: 30, ReadFraction: 0.6}
	var plainOK, repairOK int
	const runs = 20
	for seed := int64(0); seed < runs; seed++ {
		cfg := base
		cfg.Seed = seed
		h, _, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if rep, err := core.Check(h, 1, core.Options{}); err == nil && rep.Atomic {
			plainOK++
		}
		cfg.ReadRepair = true
		h, stats, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run repair: %v", err)
		}
		if stats.Repairs == 0 {
			t.Fatalf("seed %d: no repairs recorded", seed)
		}
		if rep, err := core.Check(h, 1, core.Options{}); err == nil && rep.Atomic {
			repairOK++
		}
	}
	t.Logf("1-atomic runs: plain=%d/%d repair=%d/%d", plainOK, runs, repairOK, runs)
	if repairOK < plainOK {
		t.Errorf("read repair made consistency worse: %d vs %d", repairOK, plainOK)
	}
}
