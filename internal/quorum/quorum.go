// Package quorum is a deterministic discrete-event simulator of a replicated
// read/write register with quorum replication in the style of Dynamo — the
// class of systems whose consistency k-atomicity was designed to describe
// (Section I of the paper). It generates operation histories (with real
// simulated-time intervals) that the verification algorithms then analyze,
// standing in for the production traces the paper's motivation refers to.
//
// The model: N replicas hold (version, value) pairs with last-writer-wins
// versions; a coordinator broadcasts each client operation to all replicas
// and completes a write after W acknowledgements and a read after R replies
// (first responders — quorums are not fixed sets, as with sloppy quorums).
// When R+W <= N a read quorum may miss the latest write entirely, which is
// exactly the staleness k-atomicity bounds. Failure injection (replica
// crashes, message delay spread, per-client clock skew feeding the versions)
// widens the anomaly spectrum.
//
// Simplifications relative to a production system, none of which affect the
// code paths under test: a single key (k-atomicity is a local property), no
// hinted handoff to non-home replicas, and crash-stop failures without
// recovery. Read repair is modeled (Config.ReadRepair).
package quorum

import (
	"container/heap"
	"fmt"
	"math/rand"

	"kat/internal/history"
)

// Config parameterizes a simulation run.
type Config struct {
	// Seed makes the run deterministic.
	Seed int64
	// Replicas is N, the number of replicas (>= 1).
	Replicas int
	// ReadQuorum is R, replies required to complete a read (1..N).
	ReadQuorum int
	// WriteQuorum is W, acks required to complete a write (1..N).
	WriteQuorum int
	// Clients is the number of concurrent closed-loop clients (>= 1).
	Clients int
	// OpsPerClient is how many operations each client issues.
	OpsPerClient int
	// ReadFraction is the probability an operation is a read (default 0.5).
	ReadFraction float64
	// MinDelay and MaxDelay bound one-way message latency (defaults 1, 10).
	MinDelay, MaxDelay int64
	// ThinkTime is the maximum pause between a client's operations
	// (default MaxDelay).
	ThinkTime int64
	// Timeout is the coordinator deadline per operation (default
	// 20*MaxDelay). Timed-out reads are dropped from the history;
	// timed-out writes are kept, because their mutations may survive on
	// some replicas and be read later.
	Timeout int64
	// ClockSkew is the maximum absolute per-client skew applied to the
	// timestamps used in write versions (default 0). Skew makes
	// last-writer-wins resolve against real-time order, deepening
	// staleness.
	ClockSkew int64
	// CrashReplicas crashes this many distinct replicas (crash-stop) at
	// random times in the middle of the run (default 0).
	CrashReplicas int
	// ReadRepair, when set, makes the coordinator push the freshest
	// (version, value) it observed back to every replica after a read
	// completes — the classic Dynamo anti-entropy mechanism. Repair
	// narrows the window in which weak quorums serve stale values.
	ReadRepair bool
}

func (cfg *Config) fill() error {
	if cfg.Replicas < 1 {
		return fmt.Errorf("quorum: need at least 1 replica, got %d", cfg.Replicas)
	}
	if cfg.ReadQuorum < 1 || cfg.ReadQuorum > cfg.Replicas {
		return fmt.Errorf("quorum: read quorum %d out of range [1,%d]", cfg.ReadQuorum, cfg.Replicas)
	}
	if cfg.WriteQuorum < 1 || cfg.WriteQuorum > cfg.Replicas {
		return fmt.Errorf("quorum: write quorum %d out of range [1,%d]", cfg.WriteQuorum, cfg.Replicas)
	}
	if cfg.Clients < 1 {
		cfg.Clients = 1
	}
	if cfg.OpsPerClient < 0 {
		cfg.OpsPerClient = 0
	}
	if cfg.ReadFraction <= 0 || cfg.ReadFraction >= 1 {
		cfg.ReadFraction = 0.5
	}
	if cfg.MinDelay <= 0 {
		cfg.MinDelay = 1
	}
	if cfg.MaxDelay < cfg.MinDelay {
		cfg.MaxDelay = cfg.MinDelay + 9
	}
	if cfg.ThinkTime <= 0 {
		cfg.ThinkTime = cfg.MaxDelay
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 20 * cfg.MaxDelay
	}
	if cfg.CrashReplicas < 0 {
		cfg.CrashReplicas = 0
	}
	if cfg.CrashReplicas > cfg.Replicas {
		cfg.CrashReplicas = cfg.Replicas
	}
	return nil
}

// Stats summarizes a run.
type Stats struct {
	// CompletedWrites and CompletedReads made their quorums.
	CompletedWrites, CompletedReads int
	// TimedOutWrites are kept in the history; TimedOutReads are dropped.
	TimedOutWrites, TimedOutReads int
	// Crashes is the number of replicas crashed during the run.
	Crashes int
	// Repairs counts read-repair rounds issued (one per completed read
	// when Config.ReadRepair is on).
	Repairs int
}

// version orders writes replica-side: last-writer-wins by (timestamp,
// client), with the zero version reserved for the seed value.
type version struct {
	ts     int64
	client int
}

func (v version) less(o version) bool {
	if v.ts != o.ts {
		return v.ts < o.ts
	}
	return v.client < o.client
}

// event is a scheduled simulator action.
type event struct {
	at  int64
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type replica struct {
	alive bool
	ver   version
	val   int64
}

// pendingOp tracks a coordinator waiting for its quorum.
type pendingOp struct {
	client    int
	isRead    bool
	value     int64 // value being written (writes)
	start     int64
	need      int
	acks      int
	bestVer   version
	bestVal   int64
	done      bool
	deadline  int64
	remaining int // ops the client still has to issue after this one
}

type sim struct {
	cfg      Config
	rng      *rand.Rand
	now      int64
	seq      int64
	events   eventHeap
	replicas []replica
	skew     []int64
	nextVal  int64
	ops      []history.Operation
	stats    Stats
}

// Run simulates the configured workload and returns the resulting
// normalized history (including a seed write of value 0 that initializes
// all replicas) plus run statistics.
func Run(cfg Config) (*history.History, Stats, error) {
	if err := cfg.fill(); err != nil {
		return nil, Stats{}, err
	}
	s := &sim{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		replicas: make([]replica, cfg.Replicas),
		skew:     make([]int64, cfg.Clients),
		nextVal:  1,
	}
	for i := range s.replicas {
		s.replicas[i] = replica{alive: true, ver: version{ts: 0, client: -1}, val: 0}
	}
	for c := range s.skew {
		if cfg.ClockSkew > 0 {
			s.skew[c] = s.rng.Int63n(2*cfg.ClockSkew+1) - cfg.ClockSkew
		}
	}
	// Seed write: value 0 present on all replicas before time 1.
	s.ops = append(s.ops, history.Operation{
		Kind: history.KindWrite, Value: 0, Start: 0, Finish: 1, Client: -1,
	})
	// Crash schedule.
	horizon := int64(cfg.OpsPerClient) * (cfg.ThinkTime + 4*cfg.MaxDelay)
	if horizon < 100 {
		horizon = 100
	}
	for _, r := range s.rng.Perm(cfg.Replicas)[:cfg.CrashReplicas] {
		r := r
		at := horizon/4 + s.rng.Int63n(horizon/2+1)
		s.schedule(at, func() {
			s.replicas[r].alive = false
			s.stats.Crashes++
		})
	}
	// Clients.
	for c := 0; c < cfg.Clients; c++ {
		c := c
		start := 2 + s.rng.Int63n(cfg.ThinkTime+1)
		s.schedule(start, func() { s.clientIssue(c, cfg.OpsPerClient) })
	}
	// Event loop.
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(*event)
		s.now = e.at
		e.fn()
	}
	return history.Normalize(history.New(s.ops)), s.stats, nil
}

func (s *sim) schedule(at int64, fn func()) {
	if at <= s.now {
		at = s.now + 1
	}
	s.seq++
	heap.Push(&s.events, &event{at: at, seq: s.seq, fn: fn})
}

func (s *sim) delay() int64 {
	return s.cfg.MinDelay + s.rng.Int63n(s.cfg.MaxDelay-s.cfg.MinDelay+1)
}

// clientIssue starts the next operation for client c, with remaining ops to
// issue after this one.
func (s *sim) clientIssue(c, remaining int) {
	if remaining <= 0 {
		return
	}
	isRead := s.rng.Float64() < s.cfg.ReadFraction
	op := &pendingOp{
		client:    c,
		isRead:    isRead,
		start:     s.now,
		deadline:  s.now + s.cfg.Timeout,
		bestVer:   version{ts: -1, client: -1},
		remaining: remaining - 1,
	}
	if isRead {
		op.need = s.cfg.ReadQuorum
	} else {
		op.need = s.cfg.WriteQuorum
		op.value = s.nextVal
		s.nextVal++
	}
	ver := version{ts: s.now + s.skew[c], client: c}
	for r := range s.replicas {
		r := r
		s.schedule(s.now+s.delay(), func() { s.replicaHandle(r, op, ver) })
	}
	s.schedule(op.deadline, func() { s.timeout(op) })
}

// replicaHandle processes a request arrival at replica r.
func (s *sim) replicaHandle(r int, op *pendingOp, ver version) {
	if !s.replicas[r].alive {
		return // crashed replicas drop requests silently
	}
	if op.isRead {
		rv, rval := s.replicas[r].ver, s.replicas[r].val
		s.schedule(s.now+s.delay(), func() { s.coordinatorReply(op, rv, rval) })
		return
	}
	if s.replicas[r].ver.less(ver) {
		s.replicas[r].ver = ver
		s.replicas[r].val = op.value
	}
	s.schedule(s.now+s.delay(), func() { s.coordinatorReply(op, ver, op.value) })
}

// coordinatorReply processes one replica response at the coordinator.
func (s *sim) coordinatorReply(op *pendingOp, ver version, val int64) {
	if op.done {
		return
	}
	op.acks++
	if op.isRead && op.bestVer.less(ver) {
		op.bestVer = ver
		op.bestVal = val
	}
	if op.acks < op.need {
		return
	}
	op.done = true
	if op.isRead {
		s.stats.CompletedReads++
		s.ops = append(s.ops, history.Operation{
			Kind: history.KindRead, Value: op.bestVal,
			Start: op.start, Finish: s.now, Client: op.client,
		})
		if s.cfg.ReadRepair {
			ver, val := op.bestVer, op.bestVal
			for r := range s.replicas {
				r := r
				s.schedule(s.now+s.delay(), func() { s.applyRepair(r, ver, val) })
			}
			s.stats.Repairs++
		}
	} else {
		s.stats.CompletedWrites++
		s.ops = append(s.ops, history.Operation{
			Kind: history.KindWrite, Value: op.value,
			Start: op.start, Finish: s.now, Client: op.client,
		})
	}
	s.scheduleNext(op)
}

// applyRepair installs a read-repair value at replica r if it is newer than
// what the replica holds.
func (s *sim) applyRepair(r int, ver version, val int64) {
	if !s.replicas[r].alive {
		return
	}
	if s.replicas[r].ver.less(ver) {
		s.replicas[r].ver = ver
		s.replicas[r].val = val
	}
}

// timeout fires at the operation deadline; if the op has not completed it is
// abandoned — reads dropped, writes recorded because their effects may
// persist on some replicas — and the client moves on.
func (s *sim) timeout(op *pendingOp) {
	if op.done {
		return // completed earlier; next op already scheduled
	}
	op.done = true
	if op.isRead {
		s.stats.TimedOutReads++
	} else {
		s.stats.TimedOutWrites++
		s.ops = append(s.ops, history.Operation{
			Kind: history.KindWrite, Value: op.value,
			Start: op.start, Finish: s.now, Client: op.client,
		})
	}
	s.scheduleNext(op)
}

func (s *sim) scheduleNext(op *pendingOp) {
	think := int64(1)
	if s.cfg.ThinkTime > 0 {
		think += s.rng.Int63n(s.cfg.ThinkTime)
	}
	c, rem := op.client, op.remaining
	s.schedule(s.now+think, func() { s.clientIssue(c, rem) })
}
