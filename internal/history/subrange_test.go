package history

import (
	"testing"
)

func mustPrepareT(t *testing.T, text string) *Prepared {
	t.Helper()
	h := MustParse(text)
	p, err := PrepareInPlace(Normalize(h))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	return p
}

func TestSubPreparedView(t *testing.T) {
	// Two quiescent, value-closed halves: cut at index 4.
	p := mustPrepareT(t, "w 1 0 10; r 1 12 14; w 2 16 20; r 2 22 24; w 3 100 110; r 3 112 114; w 4 116 120; r 4 122 124")
	sub, err := SubPrepared(p, 4, 8)
	if err != nil {
		t.Fatalf("SubPrepared: %v", err)
	}
	if sub.Len() != 4 {
		t.Fatalf("sub len = %d, want 4", sub.Len())
	}
	// Ops alias the parent slice.
	if &sub.H.Ops[0] != &p.H.Ops[4] {
		t.Fatal("sub view copied operations")
	}
	// Index structures are shifted into local coordinates.
	for i := 0; i < sub.Len(); i++ {
		w := sub.DictatingWrite[i]
		pw := p.DictatingWrite[4+i]
		if pw < 0 {
			if w != -1 {
				t.Fatalf("op %d: dictating %d, want -1", i, w)
			}
			continue
		}
		if w != pw-4 {
			t.Fatalf("op %d: dictating %d, want %d", i, w, pw-4)
		}
		if !sub.Op(w).IsWrite() || sub.Op(w).Value != sub.Op(i).Value {
			t.Fatalf("op %d: dictating write mismatch", i)
		}
	}
	for w := 0; w < sub.Len(); w++ {
		for _, r := range sub.DictatedReads[w] {
			if sub.DictatingWrite[r] != w {
				t.Fatalf("write %d lists read %d which dictates to %d", w, r, sub.DictatingWrite[r])
			}
		}
	}
	// WriteFor resolves values local to the view and misses foreign ones.
	if w, ok := sub.WriteFor(sub.Op(0).Value); !ok || w != 0 {
		t.Fatalf("WriteFor(local) = %d,%v", w, ok)
	}
	if _, ok := sub.WriteFor(p.Op(0).Value); ok {
		t.Fatal("WriteFor resolved a value outside the view")
	}
}

func TestSubPreparedRejectsUnsafeCut(t *testing.T) {
	// The read at the end returns the first write: any interior cut between
	// them severs the pair.
	p := mustPrepareT(t, "w 1 0 10; w 2 20 30; r 1 40 50")
	if _, err := SubPrepared(p, 2, 3); err == nil {
		t.Fatal("SubPrepared accepted a cut severing a read from its write")
	}
	// Write-side crossing: the range holds the write but not its read.
	if _, err := SubPrepared(p, 0, 1); err == nil {
		t.Fatal("SubPrepared accepted a range holding a write whose dictated read lies beyond it")
	}
	if _, err := SubPrepared(p, -1, 2); err == nil {
		t.Fatal("SubPrepared accepted out-of-bounds lo")
	}
	if _, err := SubPrepared(p, 0, 99); err == nil {
		t.Fatal("SubPrepared accepted out-of-bounds hi")
	}
}

func TestSubPreparedWholeAndEmpty(t *testing.T) {
	p := mustPrepareT(t, "w 1 0 10; r 1 12 14")
	whole, err := SubPrepared(p, 0, p.Len())
	if err != nil {
		t.Fatalf("whole view: %v", err)
	}
	if whole.Len() != p.Len() {
		t.Fatalf("whole view len = %d", whole.Len())
	}
	empty, err := SubPrepared(p, 1, 1)
	if err != nil || empty.Len() != 0 {
		t.Fatalf("empty view: %v len=%d", err, empty.Len())
	}
}
