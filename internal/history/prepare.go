package history

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"slices"
)

// Errors reported while preparing a history for verification.
var (
	// ErrDuplicateValue indicates two writes stored the same value,
	// violating the unique-values assumption of Section II-C.
	ErrDuplicateValue = errors.New("history: duplicate written value")
	// ErrInvertedInterval indicates an operation with Finish <= Start.
	ErrInvertedInterval = errors.New("history: operation finish not after start")
	// ErrDuplicateTimestamp indicates two endpoints share a timestamp,
	// violating the distinct-timestamps assumption of Section II-C.
	// Normalize repairs this.
	ErrDuplicateTimestamp = errors.New("history: duplicate endpoint timestamp")
	// ErrDanglingRead indicates a read whose value no write stored
	// (anomaly; Section II-C assumes these were screened out).
	ErrDanglingRead = errors.New("history: read without dictating write")
	// ErrReadBeforeWrite indicates a read that precedes its dictating
	// write (anomaly; Section II-C assumes these were screened out).
	ErrReadBeforeWrite = errors.New("history: read precedes its dictating write")
	// ErrLongWrite indicates a write that does not end before the minimum
	// finish time of its dictated reads. Normalize repairs this by
	// shortening the write (Section II-C).
	ErrLongWrite = errors.New("history: write ends after a dictated read finishes")
)

// AnomalyKind classifies assumption violations found in a history.
type AnomalyKind uint8

const (
	// AnomalyDuplicateValue marks a pair of writes with the same value.
	AnomalyDuplicateValue AnomalyKind = iota + 1
	// AnomalyInvertedInterval marks an operation with Finish <= Start.
	AnomalyInvertedInterval
	// AnomalyDuplicateTimestamp marks endpoints sharing a timestamp.
	AnomalyDuplicateTimestamp
	// AnomalyDanglingRead marks a read without a dictating write.
	AnomalyDanglingRead
	// AnomalyReadBeforeWrite marks a read preceding its dictating write.
	AnomalyReadBeforeWrite
	// AnomalyLongWrite marks a write ending after a dictated read's finish.
	AnomalyLongWrite
)

// String names the anomaly kind.
func (k AnomalyKind) String() string {
	switch k {
	case AnomalyDuplicateValue:
		return "duplicate-value"
	case AnomalyInvertedInterval:
		return "inverted-interval"
	case AnomalyDuplicateTimestamp:
		return "duplicate-timestamp"
	case AnomalyDanglingRead:
		return "dangling-read"
	case AnomalyReadBeforeWrite:
		return "read-before-write"
	case AnomalyLongWrite:
		return "long-write"
	default:
		return fmt.Sprintf("AnomalyKind(%d)", uint8(k))
	}
}

// Anomaly describes one assumption violation.
type Anomaly struct {
	Kind AnomalyKind
	// OpIDs identifies the offending operation(s) by ID.
	OpIDs []int
}

// String renders the anomaly for diagnostics.
func (a Anomaly) String() string {
	return fmt.Sprintf("%s ops=%v", a.Kind, a.OpIDs)
}

// valueEntry pairs a written value with its write's index; sorted by value
// (ties by index) it replaces the seed's map[int64]int lookups with binary
// search over a single contiguous allocation.
type valueEntry struct {
	value int64
	write int
}

// sortValueEntries orders entries by value, ties by write index, so that a
// run of duplicates starts at the earliest write.
func sortValueEntries(vi []valueEntry) {
	slices.SortFunc(vi, func(a, b valueEntry) int {
		if c := cmp.Compare(a.value, b.value); c != 0 {
			return c
		}
		return cmp.Compare(a.write, b.write)
	})
}

// lookupValue binary-searches the sorted index and returns the position of
// the first entry for value, or -1. Open-coded (not slices.BinarySearchFunc)
// because it sits on the per-read hot path of Prepare and FindAnomalies.
func lookupValue(vi []valueEntry, value int64) int {
	lo, hi := 0, len(vi)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if vi[mid].value < value {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(vi) && vi[lo].value == value {
		return lo
	}
	return -1
}

// FindAnomalies scans a history for all assumption violations of
// Section II-C. Repairable violations (duplicate timestamps, long writes)
// are fixed by Normalize; the rest make every k-AV answer trivially NO
// (dangling read, read-before-write) or the input malformed.
func FindAnomalies(h *History) []Anomaly {
	writes := make([]valueEntry, 0, len(h.Ops))
	for i, op := range h.Ops {
		if op.IsWrite() {
			writes = append(writes, valueEntry{op.Value, i})
		}
	}
	sortValueEntries(writes)
	return findAnomaliesIndexed(h, writes)
}

// findAnomaliesIndexed is FindAnomalies over a prebuilt sorted write-value
// index, so Prepare can validate with the index it builds anyway.
func findAnomaliesIndexed(h *History, writes []valueEntry) []Anomaly {
	var out []Anomaly
	for _, op := range h.Ops {
		if op.Finish <= op.Start {
			out = append(out, Anomaly{Kind: AnomalyInvertedInterval, OpIDs: []int{op.ID}})
		}
	}
	// A run of equal values in the sorted index marks duplicates.
	for i := 1; i < len(writes); i++ {
		if writes[i].value == writes[i-1].value {
			first := i - 1
			for first > 0 && writes[first-1].value == writes[i].value {
				first--
			}
			out = append(out, Anomaly{Kind: AnomalyDuplicateValue,
				OpIDs: []int{h.Ops[writes[first].write].ID, h.Ops[writes[i].write].ID}})
		}
	}
	// Endpoint distinctness: duplicates surface as equal neighbors in the
	// sorted timestamp multiset (a plain int64 sort, the cheapest check);
	// owners are recovered — one extra pass over the operations, shared by
	// all duplicated times — only when at least one duplicate exists.
	times := make([]int64, 0, 2*len(h.Ops))
	for _, op := range h.Ops {
		times = append(times, op.Start, op.Finish)
	}
	slices.Sort(times)
	var dups []int64 // duplicated times, ascending, unique
	for i := 1; i < len(times); {
		if times[i] != times[i-1] {
			i++
			continue
		}
		t := times[i]
		for i < len(times) && times[i] == t {
			i++
		}
		dups = append(dups, t)
	}
	if len(dups) > 0 {
		owners := make([][]int, len(dups))
		collect := func(t int64, id int) {
			if di, ok := slices.BinarySearch(dups, t); ok {
				owners[di] = append(owners[di], id)
			}
		}
		for _, op := range h.Ops {
			collect(op.Start, op.ID)
			collect(op.Finish, op.ID)
		}
		for di := range dups {
			out = append(out, Anomaly{Kind: AnomalyDuplicateTimestamp, OpIDs: owners[di]})
		}
	}
	// Read/write pairing anomalies, and per-write minimum dictated-read
	// finish (for the long-write condition below).
	minReadFinish := make([]int64, len(writes))
	for i := range minReadFinish {
		minReadFinish[i] = math.MaxInt64
	}
	for _, op := range h.Ops {
		if !op.IsRead() {
			continue
		}
		vi := lookupValue(writes, op.Value)
		if vi < 0 {
			out = append(out, Anomaly{Kind: AnomalyDanglingRead, OpIDs: []int{op.ID}})
			continue
		}
		w := h.Ops[writes[vi].write]
		if op.Finish < w.Start {
			out = append(out, Anomaly{Kind: AnomalyReadBeforeWrite, OpIDs: []int{op.ID, w.ID}})
		}
		if op.Finish < minReadFinish[vi] {
			minReadFinish[vi] = op.Finish
		}
	}
	// Long writes: a write must end before the minimum finish time of its
	// dictated reads.
	for _, op := range h.Ops {
		if !op.IsWrite() {
			continue
		}
		if vi := lookupValue(writes, op.Value); op.Finish >= minReadFinish[vi] {
			out = append(out, Anomaly{Kind: AnomalyLongWrite, OpIDs: []int{op.ID}})
		}
	}
	return out
}

// Prepared is a history that satisfies all Section II assumptions, sorted by
// start time with IDs equal to slice indices, plus the dictating-write index
// every verification algorithm needs.
type Prepared struct {
	// H is the prepared history: sorted by start, IDs renumbered.
	H *History
	// DictatingWrite maps a read's index to its dictating write's index.
	// Entries for writes are -1.
	DictatingWrite []int
	// DictatedReads maps a write's index to the indices of its dictated
	// reads, in increasing start order. Entries for reads are nil. All
	// per-write slices share one backing array.
	DictatedReads [][]int
	// valueIndex maps written values to write indices, sorted by value for
	// binary search (see WriteFor).
	valueIndex []valueEntry
}

// WriteFor returns the index of the write that stored value, or ok=false if
// no write did. Prepared histories have unique written values, so the answer
// is unambiguous.
func (p *Prepared) WriteFor(value int64) (w int, ok bool) {
	i := lookupValue(p.valueIndex, value)
	if i < 0 {
		return -1, false
	}
	return p.valueIndex[i].write, true
}

// Prepare validates the Section II assumptions, sorts the history by start
// time, and builds the dictating-write index. The input history is not
// modified. Histories that fail validation should be run through Normalize
// first (for repairable violations) or rejected (for true anomalies).
func Prepare(h *History) (*Prepared, error) {
	return prepareSorted(h.Clone(), nil)
}

// PrepareInPlace is Prepare for callers that own h and will not use it
// afterwards: it sorts h directly instead of cloning it first. Normalize
// already returns a private copy, so Normalize-then-PrepareInPlace pipelines
// (the per-key trace hot path) skip one full history copy.
func PrepareInPlace(h *History) (*Prepared, error) {
	return prepareSorted(h, nil)
}

// PrepareScratch holds the index buffers PrepareInPlaceScratch reuses, so
// that preparing a stream of similar-sized histories (the per-segment hot
// path) stops allocating once the buffers reach steady state.
type PrepareScratch struct {
	p          Prepared
	dictating  []int
	dictated   [][]int
	valueIndex []valueEntry
	counts     []int
	flat       []int
}

// PrepareInPlaceScratch is PrepareInPlace reusing s's buffers. The returned
// Prepared aliases s and is valid only until the next call with the same
// Scratch.
func PrepareInPlaceScratch(h *History, s *PrepareScratch) (*Prepared, error) {
	return prepareSorted(h, s)
}

// intsFor returns buf resized to n reusing its capacity; fresh entries (and
// reused ones) are NOT zeroed.
func intsFor(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func prepareSorted(cp *History, s *PrepareScratch) (*Prepared, error) {
	if s == nil {
		// One-shot path: a fresh scratch per call keeps the returned
		// Prepared independent while sharing the code below.
		s = &PrepareScratch{}
	}
	cp.SortByStart()
	n := len(cp.Ops)
	if cap(s.valueIndex) < n {
		s.valueIndex = make([]valueEntry, 0, n)
	}
	valueIndex := s.valueIndex[:0]
	for i, op := range cp.Ops {
		if op.IsWrite() {
			valueIndex = append(valueIndex, valueEntry{op.Value, i})
		}
	}
	sortValueEntries(valueIndex)
	s.valueIndex = valueIndex
	for _, a := range findAnomaliesIndexed(cp, valueIndex) {
		switch a.Kind {
		case AnomalyDuplicateValue:
			return nil, fmt.Errorf("%w (ops %v)", ErrDuplicateValue, a.OpIDs)
		case AnomalyInvertedInterval:
			return nil, fmt.Errorf("%w (op %v)", ErrInvertedInterval, a.OpIDs)
		case AnomalyDuplicateTimestamp:
			return nil, fmt.Errorf("%w (ops %v)", ErrDuplicateTimestamp, a.OpIDs)
		case AnomalyDanglingRead:
			return nil, fmt.Errorf("%w (op %v)", ErrDanglingRead, a.OpIDs)
		case AnomalyReadBeforeWrite:
			return nil, fmt.Errorf("%w (ops %v)", ErrReadBeforeWrite, a.OpIDs)
		case AnomalyLongWrite:
			return nil, fmt.Errorf("%w (op %v)", ErrLongWrite, a.OpIDs)
		}
	}
	s.dictating = intsFor(s.dictating, n)
	if cap(s.dictated) < n {
		s.dictated = make([][]int, n)
	} else {
		s.dictated = s.dictated[:n]
		clear(s.dictated)
	}
	s.counts = intsFor(s.counts, n)
	clear(s.counts)
	p := &s.p
	*p = Prepared{
		H:              cp,
		DictatingWrite: s.dictating,
		DictatedReads:  s.dictated,
		valueIndex:     valueIndex,
	}
	// Resolve dictating writes, count reads per write, then carve all
	// DictatedReads slices out of one flat allocation.
	counts := s.counts
	for i, op := range cp.Ops {
		p.DictatingWrite[i] = -1
		if !op.IsRead() {
			continue
		}
		w, _ := p.WriteFor(op.Value)
		p.DictatingWrite[i] = w
		counts[w]++
	}
	if cap(s.flat) < n-len(valueIndex) {
		s.flat = make([]int, 0, n-len(valueIndex))
	}
	flat := s.flat[:0]
	for w, c := range counts {
		if c == 0 {
			continue
		}
		off := len(flat)
		flat = flat[:off+c]
		p.DictatedReads[w] = flat[off : off : off+c]
	}
	s.flat = flat
	for i, op := range cp.Ops {
		if op.IsRead() {
			w := p.DictatingWrite[i]
			p.DictatedReads[w] = append(p.DictatedReads[w], i)
		}
	}
	return p, nil
}

// Op returns the operation at index i.
func (p *Prepared) Op(i int) Operation { return p.H.Ops[i] }

// Len returns the number of operations.
func (p *Prepared) Len() int { return len(p.H.Ops) }

// Cluster returns the operation indices of the cluster (Section IV) for the
// write at index w: the write followed by its dictated reads.
func (p *Prepared) Cluster(w int) []int {
	out := make([]int, 0, 1+len(p.DictatedReads[w]))
	out = append(out, w)
	out = append(out, p.DictatedReads[w]...)
	return out
}
