package history

import (
	"errors"
	"fmt"
	"sort"
)

// Errors reported while preparing a history for verification.
var (
	// ErrDuplicateValue indicates two writes stored the same value,
	// violating the unique-values assumption of Section II-C.
	ErrDuplicateValue = errors.New("history: duplicate written value")
	// ErrInvertedInterval indicates an operation with Finish <= Start.
	ErrInvertedInterval = errors.New("history: operation finish not after start")
	// ErrDuplicateTimestamp indicates two endpoints share a timestamp,
	// violating the distinct-timestamps assumption of Section II-C.
	// Normalize repairs this.
	ErrDuplicateTimestamp = errors.New("history: duplicate endpoint timestamp")
	// ErrDanglingRead indicates a read whose value no write stored
	// (anomaly; Section II-C assumes these were screened out).
	ErrDanglingRead = errors.New("history: read without dictating write")
	// ErrReadBeforeWrite indicates a read that precedes its dictating
	// write (anomaly; Section II-C assumes these were screened out).
	ErrReadBeforeWrite = errors.New("history: read precedes its dictating write")
	// ErrLongWrite indicates a write that does not end before the minimum
	// finish time of its dictated reads. Normalize repairs this by
	// shortening the write (Section II-C).
	ErrLongWrite = errors.New("history: write ends after a dictated read finishes")
)

// AnomalyKind classifies assumption violations found in a history.
type AnomalyKind uint8

const (
	// AnomalyDuplicateValue marks a pair of writes with the same value.
	AnomalyDuplicateValue AnomalyKind = iota + 1
	// AnomalyInvertedInterval marks an operation with Finish <= Start.
	AnomalyInvertedInterval
	// AnomalyDuplicateTimestamp marks endpoints sharing a timestamp.
	AnomalyDuplicateTimestamp
	// AnomalyDanglingRead marks a read without a dictating write.
	AnomalyDanglingRead
	// AnomalyReadBeforeWrite marks a read preceding its dictating write.
	AnomalyReadBeforeWrite
	// AnomalyLongWrite marks a write ending after a dictated read's finish.
	AnomalyLongWrite
)

// String names the anomaly kind.
func (k AnomalyKind) String() string {
	switch k {
	case AnomalyDuplicateValue:
		return "duplicate-value"
	case AnomalyInvertedInterval:
		return "inverted-interval"
	case AnomalyDuplicateTimestamp:
		return "duplicate-timestamp"
	case AnomalyDanglingRead:
		return "dangling-read"
	case AnomalyReadBeforeWrite:
		return "read-before-write"
	case AnomalyLongWrite:
		return "long-write"
	default:
		return fmt.Sprintf("AnomalyKind(%d)", uint8(k))
	}
}

// Anomaly describes one assumption violation.
type Anomaly struct {
	Kind AnomalyKind
	// OpIDs identifies the offending operation(s) by ID.
	OpIDs []int
}

// String renders the anomaly for diagnostics.
func (a Anomaly) String() string {
	return fmt.Sprintf("%s ops=%v", a.Kind, a.OpIDs)
}

// FindAnomalies scans a history for all assumption violations of
// Section II-C. Repairable violations (duplicate timestamps, long writes)
// are fixed by Normalize; the rest make every k-AV answer trivially NO
// (dangling read, read-before-write) or the input malformed.
func FindAnomalies(h *History) []Anomaly {
	var out []Anomaly
	writeByValue := make(map[int64]int, len(h.Ops))
	for i, op := range h.Ops {
		if op.Finish <= op.Start {
			out = append(out, Anomaly{Kind: AnomalyInvertedInterval, OpIDs: []int{op.ID}})
		}
		if op.IsWrite() {
			if j, dup := writeByValue[op.Value]; dup {
				out = append(out, Anomaly{Kind: AnomalyDuplicateValue, OpIDs: []int{h.Ops[j].ID, op.ID}})
			} else {
				writeByValue[op.Value] = i
			}
		}
	}
	// Endpoint distinctness.
	times := make([]int64, 0, 2*len(h.Ops))
	owner := make(map[int64][]int, 2*len(h.Ops))
	for _, op := range h.Ops {
		times = append(times, op.Start, op.Finish)
		owner[op.Start] = append(owner[op.Start], op.ID)
		owner[op.Finish] = append(owner[op.Finish], op.ID)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	reported := make(map[int64]bool)
	for i := 1; i < len(times); i++ {
		if times[i] == times[i-1] && !reported[times[i]] {
			reported[times[i]] = true
			out = append(out, Anomaly{Kind: AnomalyDuplicateTimestamp, OpIDs: owner[times[i]]})
		}
	}
	// Read/write pairing anomalies.
	for _, op := range h.Ops {
		if !op.IsRead() {
			continue
		}
		wi, ok := writeByValue[op.Value]
		if !ok {
			out = append(out, Anomaly{Kind: AnomalyDanglingRead, OpIDs: []int{op.ID}})
			continue
		}
		w := h.Ops[wi]
		if op.Finish < w.Start {
			out = append(out, Anomaly{Kind: AnomalyReadBeforeWrite, OpIDs: []int{op.ID, w.ID}})
		}
	}
	// Long writes: a write must end before the minimum finish time of its
	// dictated reads.
	minReadFinish := make(map[int64]int64)
	for _, op := range h.Ops {
		if !op.IsRead() {
			continue
		}
		if cur, ok := minReadFinish[op.Value]; !ok || op.Finish < cur {
			minReadFinish[op.Value] = op.Finish
		}
	}
	for _, op := range h.Ops {
		if !op.IsWrite() {
			continue
		}
		if mrf, ok := minReadFinish[op.Value]; ok && op.Finish >= mrf {
			out = append(out, Anomaly{Kind: AnomalyLongWrite, OpIDs: []int{op.ID}})
		}
	}
	return out
}

// Prepared is a history that satisfies all Section II assumptions, sorted by
// start time with IDs equal to slice indices, plus the dictating-write index
// every verification algorithm needs.
type Prepared struct {
	// H is the prepared history: sorted by start, IDs renumbered.
	H *History
	// DictatingWrite maps a read's index to its dictating write's index.
	// Entries for writes are -1.
	DictatingWrite []int
	// DictatedReads maps a write's index to the indices of its dictated
	// reads, in increasing start order. Entries for reads are nil.
	DictatedReads [][]int
	// WriteByValue maps each written value to the write's index.
	WriteByValue map[int64]int
}

// Prepare validates the Section II assumptions, sorts the history by start
// time, and builds the dictating-write index. The input history is not
// modified. Histories that fail validation should be run through Normalize
// first (for repairable violations) or rejected (for true anomalies).
func Prepare(h *History) (*Prepared, error) {
	cp := h.Clone()
	cp.SortByStart()
	for _, a := range FindAnomalies(cp) {
		switch a.Kind {
		case AnomalyDuplicateValue:
			return nil, fmt.Errorf("%w (ops %v)", ErrDuplicateValue, a.OpIDs)
		case AnomalyInvertedInterval:
			return nil, fmt.Errorf("%w (op %v)", ErrInvertedInterval, a.OpIDs)
		case AnomalyDuplicateTimestamp:
			return nil, fmt.Errorf("%w (ops %v)", ErrDuplicateTimestamp, a.OpIDs)
		case AnomalyDanglingRead:
			return nil, fmt.Errorf("%w (op %v)", ErrDanglingRead, a.OpIDs)
		case AnomalyReadBeforeWrite:
			return nil, fmt.Errorf("%w (ops %v)", ErrReadBeforeWrite, a.OpIDs)
		case AnomalyLongWrite:
			return nil, fmt.Errorf("%w (op %v)", ErrLongWrite, a.OpIDs)
		}
	}
	p := &Prepared{
		H:              cp,
		DictatingWrite: make([]int, len(cp.Ops)),
		DictatedReads:  make([][]int, len(cp.Ops)),
		WriteByValue:   make(map[int64]int, len(cp.Ops)),
	}
	for i, op := range cp.Ops {
		p.DictatingWrite[i] = -1
		if op.IsWrite() {
			p.WriteByValue[op.Value] = i
		}
	}
	for i, op := range cp.Ops {
		if !op.IsRead() {
			continue
		}
		w := p.WriteByValue[op.Value]
		p.DictatingWrite[i] = w
		p.DictatedReads[w] = append(p.DictatedReads[w], i)
	}
	return p, nil
}

// Op returns the operation at index i.
func (p *Prepared) Op(i int) Operation { return p.H.Ops[i] }

// Len returns the number of operations.
func (p *Prepared) Len() int { return len(p.H.Ops) }

// Cluster returns the operation indices of the cluster (Section IV) for the
// write at index w: the write followed by its dictated reads.
func (p *Prepared) Cluster(w int) []int {
	out := make([]int, 0, 1+len(p.DictatedReads[w]))
	out = append(out, w)
	out = append(out, p.DictatedReads[w]...)
	return out
}
