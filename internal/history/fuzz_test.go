package history

import (
	"strings"
	"testing"
)

// FuzzParse ensures the text parser never panics and that everything it
// accepts survives a String/Parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"w 1 0 10",
		"r 1 5 20",
		"w 1 0 10; r 1 5 20",
		"w 1 0 10 weight=3 client=2",
		"# comment\nw 1 0 10",
		"w -5 -10 -1",
		"w 9223372036854775807 0 1",
		"",
		";;;",
		"w 1 0 10 weight=",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		h, err := Parse(text)
		if err != nil {
			return
		}
		h2, err := Parse(h.String())
		if err != nil {
			t.Fatalf("round trip failed: %v\noriginal: %q\nrendered: %q", err, text, h.String())
		}
		if h2.Len() != h.Len() {
			t.Fatalf("round trip changed length %d -> %d", h.Len(), h2.Len())
		}
	})
}

// FuzzNormalize ensures normalization of arbitrary parsed histories never
// panics, never produces duplicate endpoints, and never loses precedence
// edges.
func FuzzNormalize(f *testing.F) {
	f.Add("w 1 0 10; r 1 5 20; w 2 10 20")
	f.Add("w 1 5 5")
	f.Add("w 1 0 100; r 1 1 2")
	f.Fuzz(func(t *testing.T, text string) {
		h, err := Parse(text)
		if err != nil || h.Len() > 64 {
			return
		}
		n := Normalize(h)
		seen := make(map[int64]bool)
		for _, op := range n.Ops {
			if op.Start >= op.Finish {
				t.Fatalf("degenerate interval %+v from %q", op, text)
			}
			if seen[op.Start] || seen[op.Finish] {
				t.Fatalf("duplicate endpoint in %+v from %q", op, text)
			}
			seen[op.Start] = true
			seen[op.Finish] = true
		}
		for i := range h.Ops {
			for j := range h.Ops {
				if h.Ops[i].Precedes(h.Ops[j]) && !n.Ops[i].Precedes(n.Ops[j]) {
					t.Fatalf("lost precedence (%d,%d) in %q", i, j, text)
				}
			}
		}
	})
}

// FuzzJSONRoundTrip ensures the JSON codec tolerates arbitrary bytes and
// round-trips whatever it accepts.
func FuzzJSONRoundTrip(f *testing.F) {
	f.Add(`{"ops":[{"kind":"w","value":1,"start":0,"finish":10}]}`)
	f.Add(`{"ops":[]}`)
	f.Add(`{}`)
	f.Fuzz(func(t *testing.T, text string) {
		h, err := ReadJSON(strings.NewReader(text))
		if err != nil {
			return
		}
		var out strings.Builder
		if err := WriteJSON(&out, h); err != nil {
			t.Fatalf("WriteJSON after accept: %v", err)
		}
		h2, err := ReadJSON(strings.NewReader(out.String()))
		if err != nil || h2.Len() != h.Len() {
			t.Fatalf("round trip: %v (%d vs %d ops)", err, h2.Len(), h.Len())
		}
	})
}
