package history_test

import (
	"reflect"
	"strings"
	"testing"

	"kat/internal/core"
	"kat/internal/generator"
	"kat/internal/history"
)

// On sequential (non-overlapping) histories the forced-staleness bound is
// exact: a read redirected d writes back has exactly d forced writes in
// between.
func TestForcedStalenessExactWhenSequential(t *testing.T) {
	for depth := 0; depth < 4; depth++ {
		h := generator.KAtomic(generator.Config{
			Seed: int64(depth), Ops: 200, Concurrency: 1,
			StalenessDepth: depth, ForceDepth: true, ReadFraction: 0.5,
		})
		p, err := history.Prepare(h)
		if err != nil {
			t.Fatalf("Prepare: %v", err)
		}
		if got, want := history.ForcedStaleness(p), depth+1; got != want {
			t.Errorf("depth %d: ForcedStaleness=%d, want %d", depth, got, want)
		}
	}
}

// The bound must never exceed the true smallest k.
func TestForcedStalenessIsLowerBound(t *testing.T) {
	v := core.NewVerifier()
	for seed := int64(0); seed < 30; seed++ {
		h := generator.KAtomic(generator.Config{
			Seed: seed, Ops: 120, Concurrency: 1 + int(seed%5),
			StalenessDepth: int(seed % 4), ReadFraction: 0.6,
		})
		if seed%3 == 0 {
			h = generator.InjectStaleness(h, seed, 0.3, 1+int(seed%3))
		}
		p, err := history.Prepare(history.Normalize(h))
		if err != nil {
			t.Fatalf("Prepare: %v", err)
		}
		lb := history.ForcedStaleness(p)
		k, err := v.SmallestKPrepared(p, core.Options{})
		if err != nil {
			t.Fatalf("SmallestKPrepared: %v", err)
		}
		if lb > k {
			t.Errorf("seed %d: ForcedStaleness=%d exceeds smallest k=%d", seed, lb, k)
		}
		if lb < 1 {
			t.Errorf("seed %d: ForcedStaleness=%d < 1", seed, lb)
		}
	}
}

func TestForcedStalenessEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		text string
		want int
	}{
		{"w 1 0 10", 1},                                  // no reads
		{"w 1 0 10; r 1 20 30", 1},                       // fresh read
		{"w 1 0 10; w 2 20 30; r 1 40 50", 2},            // one forced write
		{"w 1 0 10; w 2 20 30; w 3 40 50; r 1 60 70", 3}, // two forced writes
		{"w 1 0 10; w 2 5 15; r 1 20 30", 1},             // concurrent writes force nothing
		{"w 1 0 10; w 2 20 30; r 1 25 40; r 2 50 60", 1}, // read overlaps the newer write
	} {
		p, err := history.Prepare(history.Normalize(history.MustParse(tc.text)))
		if err != nil {
			t.Fatalf("%q: %v", tc.text, err)
		}
		if got := history.ForcedStaleness(p); got != tc.want {
			t.Errorf("%q: ForcedStaleness=%d, want %d", tc.text, got, tc.want)
		}
	}
}

func TestMeasureReportsForcedStaleness(t *testing.T) {
	h := history.MustParse("w 1 0 10; w 2 20 30; w 3 40 50; r 1 60 70")
	if got := history.Measure(h).ForcedStaleness; got != 3 {
		t.Errorf("Measure.ForcedStaleness=%d, want 3", got)
	}
	// Dangling reads are skipped, not fatal.
	h = history.MustParse("r 9 0 10; w 1 20 30")
	if got := history.Measure(h).ForcedStaleness; got != 1 {
		t.Errorf("anomalous Measure.ForcedStaleness=%d, want 1", got)
	}
}

// PrepareInPlaceScratch must produce the same index as Prepare, across
// reuses of one scratch by differently-sized histories.
func TestPrepareInPlaceScratchMatchesPrepare(t *testing.T) {
	var s history.PrepareScratch
	for seed := int64(0); seed < 12; seed++ {
		h := generator.KAtomic(generator.Config{
			Seed: seed, Ops: 30 + int(seed*17)%120, Concurrency: 1 + int(seed%4),
			StalenessDepth: int(seed % 3),
		})
		want, err := history.Prepare(h)
		if err != nil {
			t.Fatalf("Prepare: %v", err)
		}
		got, err := history.PrepareInPlaceScratch(h.Clone(), &s)
		if err != nil {
			t.Fatalf("PrepareInPlaceScratch: %v", err)
		}
		if !reflect.DeepEqual(want.H.Ops, got.H.Ops) {
			t.Fatalf("seed %d: ops differ", seed)
		}
		if !reflect.DeepEqual(want.DictatingWrite, got.DictatingWrite) {
			t.Fatalf("seed %d: DictatingWrite differs", seed)
		}
		if len(want.DictatedReads) != len(got.DictatedReads) {
			t.Fatalf("seed %d: DictatedReads length differs", seed)
		}
		for i := range want.DictatedReads {
			a, b := want.DictatedReads[i], got.DictatedReads[i]
			if len(a) != len(b) || (len(a) > 0 && !reflect.DeepEqual(a, b)) {
				t.Fatalf("seed %d: DictatedReads[%d] differs: %v vs %v", seed, i, a, b)
			}
		}
	}
}

func TestPrepareInPlaceScratchReportsAnomalies(t *testing.T) {
	var s history.PrepareScratch
	h := history.MustParse("w 1 0 10; r 2 20 30")
	if _, err := history.PrepareInPlaceScratch(history.NormalizeInPlace(h), &s); err == nil {
		t.Fatal("dangling read not reported")
	}
	// The scratch must still work after an error.
	ok := history.MustParse("w 1 0 10; r 1 20 30")
	p, err := history.PrepareInPlaceScratch(history.NormalizeInPlace(ok), &s)
	if err != nil || p.Len() != 2 {
		t.Fatalf("scratch unusable after error: %v", err)
	}
}

func TestNormalizeInPlaceMatchesNormalize(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		h := generator.Random(generator.Config{Seed: seed, Ops: 60, Concurrency: 3})
		want := history.Normalize(h)
		cp := h.Clone()
		got := history.NormalizeInPlace(cp)
		if got != cp {
			t.Fatal("NormalizeInPlace did not return its argument")
		}
		if !reflect.DeepEqual(want.Ops, got.Ops) {
			t.Fatalf("seed %d: NormalizeInPlace diverges from Normalize", seed)
		}
	}
}

func TestParseReaderMatchesParse(t *testing.T) {
	text := "# header\nw 1 0 10; r 1 20 30\n\nw 2 40 50 weight=3 # trailing\nr 2 60 70 client=4\n"
	want, err := history.Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	got, err := history.ParseReader(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseReader: %v", err)
	}
	if !reflect.DeepEqual(want.Ops, got.Ops) {
		t.Fatalf("ParseReader diverges:\n%v\nvs\n%v", want.Ops, got.Ops)
	}
	if _, err := history.ParseReader(strings.NewReader("w 1 0")); err == nil {
		t.Fatal("short operation not rejected")
	}
}
