package history

import (
	"errors"
	"strings"
	"testing"
	"testing/iotest"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{KindWrite, "w"},
		{KindRead, "r"},
		{Kind(0), "Kind(0)"},
		{Kind(9), "Kind(9)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestOperationPredicates(t *testing.T) {
	w := Operation{Kind: KindWrite, Start: 0, Finish: 10}
	r := Operation{Kind: KindRead, Start: 20, Finish: 30}
	if !w.IsWrite() || w.IsRead() {
		t.Errorf("write misclassified: IsWrite=%v IsRead=%v", w.IsWrite(), w.IsRead())
	}
	if !r.IsRead() || r.IsWrite() {
		t.Errorf("read misclassified: IsWrite=%v IsRead=%v", r.IsWrite(), r.IsRead())
	}
	if !w.Precedes(r) {
		t.Error("w [0,10] should precede r [20,30]")
	}
	if r.Precedes(w) {
		t.Error("r [20,30] should not precede w [0,10]")
	}
	if w.ConcurrentWith(r) {
		t.Error("disjoint intervals should not be concurrent")
	}
	o := Operation{Kind: KindRead, Start: 5, Finish: 25}
	if !w.ConcurrentWith(o) || !o.ConcurrentWith(w) {
		t.Error("overlapping intervals should be concurrent")
	}
	// Touching endpoints: op1.Finish == op2.Start is NOT strict precedence.
	a := Operation{Kind: KindWrite, Start: 0, Finish: 10}
	b := Operation{Kind: KindRead, Start: 10, Finish: 20}
	if a.Precedes(b) {
		t.Error("touching intervals must not satisfy strict precedes")
	}
	if !a.ConcurrentWith(b) {
		t.Error("touching intervals are concurrent under the strict order")
	}
}

func TestEffectiveWeight(t *testing.T) {
	tests := []struct {
		weight int64
		want   int64
	}{
		{0, 1},
		{-3, 1},
		{1, 1},
		{7, 7},
	}
	for _, tt := range tests {
		op := Operation{Weight: tt.weight}
		if got := op.EffectiveWeight(); got != tt.want {
			t.Errorf("EffectiveWeight(%d) = %d, want %d", tt.weight, got, tt.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	const text = `
# a small history
w 1 0 10
r 1 5 20
w 2 15 25 weight=3
r 2 30 40 client=7
`
	h, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if h.Len() != 4 {
		t.Fatalf("Len = %d, want 4", h.Len())
	}
	if h.Writes() != 2 || h.Reads() != 2 {
		t.Fatalf("Writes=%d Reads=%d, want 2/2", h.Writes(), h.Reads())
	}
	if h.Ops[2].Weight != 3 {
		t.Errorf("weight attribute lost: %+v", h.Ops[2])
	}
	if h.Ops[3].Client != 7 {
		t.Errorf("client attribute lost: %+v", h.Ops[3])
	}
	// Round-trip through String/Parse.
	h2, err := Parse(h.String())
	if err != nil {
		t.Fatalf("re-Parse: %v", err)
	}
	if len(h2.Ops) != len(h.Ops) {
		t.Fatalf("round trip lost ops: %d vs %d", len(h2.Ops), len(h.Ops))
	}
	for i := range h.Ops {
		a, b := h.Ops[i], h2.Ops[i]
		if a.Kind != b.Kind || a.Value != b.Value || a.Start != b.Start ||
			a.Finish != b.Finish || a.Client != b.Client || a.EffectiveWeight() != b.EffectiveWeight() {
			t.Errorf("op %d mismatch after round trip: %+v vs %+v", i, a, b)
		}
	}
}

func TestParseSemicolons(t *testing.T) {
	h, err := Parse("w 1 0 10; r 1 5 20 ; w 2 15 25")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		text string
	}{
		{"bad kind", "x 1 0 10"},
		{"too few fields", "w 1 0"},
		{"bad value", "w abc 0 10"},
		{"bad start", "w 1 abc 10"},
		{"bad finish", "w 1 0 abc"},
		{"bad attribute", "w 1 0 10 bogus"},
		{"unknown attribute", "w 1 0 10 color=2"},
		{"bad attribute value", "w 1 0 10 weight=x"},
		{"nonpositive weight", "w 1 0 10 weight=0"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.text); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", tt.text)
			}
		})
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on malformed input did not panic")
		}
	}()
	MustParse("not an op")
}

func TestSortByStart(t *testing.T) {
	h := MustParse("w 2 30 40; w 1 0 10; r 1 5 20")
	h.SortByStart()
	wantStarts := []int64{0, 5, 30}
	for i, want := range wantStarts {
		if h.Ops[i].Start != want {
			t.Errorf("op %d start = %d, want %d", i, h.Ops[i].Start, want)
		}
		if h.Ops[i].ID != i {
			t.Errorf("op %d ID = %d, want %d", i, h.Ops[i].ID, i)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	h := MustParse("w 1 0 10")
	c := h.Clone()
	c.Ops[0].Value = 99
	if h.Ops[0].Value == 99 {
		t.Error("Clone shares backing array with original")
	}
}

func TestFindAnomalies(t *testing.T) {
	tests := []struct {
		name string
		text string
		want AnomalyKind
	}{
		{"duplicate value", "w 1 0 10; w 1 20 30", AnomalyDuplicateValue},
		{"inverted interval", "w 1 10 10", AnomalyInvertedInterval},
		{"duplicate timestamp", "w 1 0 10; r 1 10 20", AnomalyDuplicateTimestamp},
		{"dangling read", "w 1 0 10; r 2 20 30", AnomalyDanglingRead},
		{"read before write", "r 1 0 5; w 1 10 20", AnomalyReadBeforeWrite},
		{"long write", "w 1 0 50; r 1 5 30", AnomalyLongWrite},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h := MustParse(tt.text)
			got := FindAnomalies(h)
			found := false
			for _, a := range got {
				if a.Kind == tt.want {
					found = true
				}
			}
			if !found {
				t.Errorf("FindAnomalies = %v, want to include %v", got, tt.want)
			}
		})
	}
}

func TestFindAnomaliesCleanHistory(t *testing.T) {
	h := MustParse("w 1 0 10; r 1 5 20; w 2 25 30; r 2 35 45")
	if got := FindAnomalies(h); len(got) != 0 {
		t.Errorf("clean history reported anomalies: %v", got)
	}
}

func TestAnomalyStrings(t *testing.T) {
	kinds := []AnomalyKind{
		AnomalyDuplicateValue, AnomalyInvertedInterval, AnomalyDuplicateTimestamp,
		AnomalyDanglingRead, AnomalyReadBeforeWrite, AnomalyLongWrite,
	}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if seen[s] {
			t.Errorf("duplicate anomaly name %q", s)
		}
		seen[s] = true
	}
	if got := AnomalyKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind String() = %q", got)
	}
	a := Anomaly{Kind: AnomalyDanglingRead, OpIDs: []int{3}}
	if s := a.String(); !strings.Contains(s, "dangling-read") || !strings.Contains(s, "3") {
		t.Errorf("Anomaly.String() = %q", s)
	}
}

func TestPrepareHappyPath(t *testing.T) {
	h := MustParse("w 1 0 10; r 1 5 20; w 2 25 30; r 2 35 45; r 2 37 47")
	p, err := Prepare(h)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if p.Len() != 5 {
		t.Fatalf("Len = %d, want 5", p.Len())
	}
	w1, _ := p.WriteFor(1)
	w2, _ := p.WriteFor(2)
	if !p.Op(w1).IsWrite() || p.Op(w1).Value != 1 {
		t.Errorf("WriteFor(1) wrong: %+v", p.Op(w1))
	}
	if len(p.DictatedReads[w1]) != 1 {
		t.Errorf("write 1 dictated reads = %v, want one", p.DictatedReads[w1])
	}
	if len(p.DictatedReads[w2]) != 2 {
		t.Errorf("write 2 dictated reads = %v, want two", p.DictatedReads[w2])
	}
	for _, r := range p.DictatedReads[w2] {
		if p.DictatingWrite[r] != w2 {
			t.Errorf("read %d dictating write = %d, want %d", r, p.DictatingWrite[r], w2)
		}
	}
	cl := p.Cluster(w2)
	if len(cl) != 3 || cl[0] != w2 {
		t.Errorf("Cluster(w2) = %v", cl)
	}
}

func TestPrepareErrors(t *testing.T) {
	tests := []struct {
		name string
		text string
		want error
	}{
		{"duplicate value", "w 1 0 10; w 1 20 30", ErrDuplicateValue},
		{"inverted", "w 1 10 10", ErrInvertedInterval},
		{"dup timestamp", "w 1 0 10; w 2 10 20", ErrDuplicateTimestamp},
		{"dangling read", "r 9 0 10", ErrDanglingRead},
		{"read before write", "r 1 0 5; w 1 10 20", ErrReadBeforeWrite},
		{"long write", "w 1 0 50; r 1 5 30", ErrLongWrite},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Prepare(MustParse(tt.text))
			if !errors.Is(err, tt.want) {
				t.Errorf("Prepare error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestPrepareDoesNotMutateInput(t *testing.T) {
	h := MustParse("w 2 30 40; w 1 0 10")
	if _, err := Prepare(h); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if h.Ops[0].Value != 2 {
		t.Error("Prepare mutated the input history order")
	}
}

func TestNormalizeRepairsDuplicates(t *testing.T) {
	// Duplicate timestamps and a long write, both repairable.
	h := MustParse("w 1 0 10; r 1 10 20; w 2 10 30; r 2 25 28")
	n := Normalize(h)
	if _, err := Prepare(n); err != nil {
		t.Fatalf("Prepare after Normalize: %v", err)
	}
}

func TestNormalizePreservesOrder(t *testing.T) {
	h := MustParse("w 1 0 10; r 1 20 30; w 2 40 50; r 2 60 70")
	n := Normalize(h)
	// Precedence relations must be identical.
	for i := range h.Ops {
		for j := range h.Ops {
			origPrec := h.Ops[i].Precedes(h.Ops[j])
			newPrec := n.Ops[i].Precedes(n.Ops[j])
			if origPrec != newPrec {
				t.Errorf("precedence (%d,%d) changed: %v -> %v", i, j, origPrec, newPrec)
			}
		}
	}
}

func TestNormalizeTouchingStaysConcurrent(t *testing.T) {
	// op1.Finish == op2.Start: strictly concurrent before, must remain so.
	h := MustParse("w 1 0 10; w 2 10 20")
	n := Normalize(h)
	if n.Ops[0].Precedes(n.Ops[1]) || n.Ops[1].Precedes(n.Ops[0]) {
		t.Errorf("touching ops became ordered after Normalize: %v", n)
	}
	if _, err := Prepare(n); err != nil {
		t.Fatalf("Prepare after Normalize: %v", err)
	}
}

func TestNormalizeShortensWrites(t *testing.T) {
	h := MustParse("w 1 0 100; r 1 5 30; r 1 10 60")
	n := Normalize(h)
	p, err := Prepare(n)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	w, _ := p.WriteFor(1)
	for _, r := range p.DictatedReads[w] {
		if p.Op(w).Finish >= p.Op(r).Finish {
			t.Errorf("write finish %d not before read finish %d", p.Op(w).Finish, p.Op(r).Finish)
		}
	}
}

func TestNormalizeDoesNotMutateInput(t *testing.T) {
	h := MustParse("w 1 0 10; w 2 10 20")
	orig := h.String()
	_ = Normalize(h)
	if h.String() != orig {
		t.Error("Normalize mutated its input")
	}
}

func TestNormalizeIdempotentOnPrecedence(t *testing.T) {
	h := MustParse("w 1 0 10; r 1 5 20; w 2 15 25; r 2 30 40")
	n1 := Normalize(h)
	n2 := Normalize(n1)
	for i := range n1.Ops {
		for j := range n1.Ops {
			if n1.Ops[i].Precedes(n1.Ops[j]) != n2.Ops[i].Precedes(n2.Ops[j]) {
				t.Fatalf("precedence changed between normalizations at (%d,%d)", i, j)
			}
		}
	}
}

func TestMeasure(t *testing.T) {
	tests := []struct {
		name         string
		text         string
		wantWrites   int
		wantReads    int
		wantMaxConcW int
		wantMaxConc  int
	}{
		{
			name: "empty", text: "",
			wantWrites: 0, wantReads: 0, wantMaxConcW: 0, wantMaxConc: 0,
		},
		{
			name: "sequential", text: "w 1 0 10; r 1 20 30; w 2 40 50",
			wantWrites: 2, wantReads: 1, wantMaxConcW: 1, wantMaxConc: 1,
		},
		{
			name: "three concurrent writes", text: "w 1 0 100; w 2 5 90; w 3 10 80",
			wantWrites: 3, wantReads: 0, wantMaxConcW: 3, wantMaxConc: 3,
		},
		{
			name: "reads overlap writes", text: "w 1 0 50; r 1 10 60; r 1 20 70",
			wantWrites: 1, wantReads: 2, wantMaxConcW: 1, wantMaxConc: 3,
		},
		{
			name: "touching writes do not overlap", text: "w 1 0 10; w 2 10 20",
			wantWrites: 2, wantReads: 0, wantMaxConcW: 1, wantMaxConc: 1,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			st := Measure(MustParse(tt.text))
			if st.Writes != tt.wantWrites || st.Reads != tt.wantReads {
				t.Errorf("Writes=%d Reads=%d, want %d/%d", st.Writes, st.Reads, tt.wantWrites, tt.wantReads)
			}
			if st.MaxConcurrentWrites != tt.wantMaxConcW {
				t.Errorf("MaxConcurrentWrites = %d, want %d", st.MaxConcurrentWrites, tt.wantMaxConcW)
			}
			if st.MaxConcurrentOps != tt.wantMaxConc {
				t.Errorf("MaxConcurrentOps = %d, want %d", st.MaxConcurrentOps, tt.wantMaxConc)
			}
		})
	}
}

func TestJSONRoundTrip(t *testing.T) {
	h := MustParse("w 1 0 10 weight=4; r 1 5 20 client=2; w 2 15 25")
	var buf strings.Builder
	if err := WriteJSON(&buf, h); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	h2, err := ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if len(h2.Ops) != len(h.Ops) {
		t.Fatalf("ops count mismatch: %d vs %d", len(h2.Ops), len(h.Ops))
	}
	for i := range h.Ops {
		a, b := h.Ops[i], h2.Ops[i]
		if a.Kind != b.Kind || a.Value != b.Value || a.Start != b.Start ||
			a.Finish != b.Finish || a.Client != b.Client || a.Weight != b.Weight {
			t.Errorf("op %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestJSONUnknownKind(t *testing.T) {
	_, err := ReadJSON(strings.NewReader(`{"ops":[{"kind":"z","value":1,"start":0,"finish":1}]}`))
	if err == nil {
		t.Error("ReadJSON accepted unknown kind")
	}
}

func TestTextCodecRoundTrip(t *testing.T) {
	h := MustParse("w 1 0 10; r 1 5 20; w 2 15 25 weight=2")
	var buf strings.Builder
	if err := WriteText(&buf, h); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	h2, err := ReadText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if len(h2.Ops) != len(h.Ops) {
		t.Fatalf("ops count mismatch: %d vs %d", len(h2.Ops), len(h.Ops))
	}
}

// TestReadTextStreams pins ReadText to the buffered line parser: it must
// accept an arbitrarily fragmented reader (no whole-input materialization
// step to paper over short reads), handle ';' separators and comments like
// Parse, and surface reader errors.
func TestReadTextStreams(t *testing.T) {
	text := "w 1 0 10; r 1 5 20\n# comment\nw 2 15 25 weight=2\n"
	want := MustParse(text)
	got, err := ReadText(iotest.OneByteReader(strings.NewReader(text)))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if len(got.Ops) != len(want.Ops) {
		t.Fatalf("ops count mismatch: %d vs %d", len(got.Ops), len(want.Ops))
	}
	if _, err := ReadText(iotest.TimeoutReader(strings.NewReader(text))); err == nil {
		t.Error("ReadText swallowed a reader error")
	}
}

func TestOperationString(t *testing.T) {
	op := Operation{Kind: KindWrite, Value: 5, Start: 1, Finish: 2, Weight: 3, Client: 4}
	s := op.String()
	for _, want := range []string{"w 5 1 2", "weight=3", "client=4"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
