package history

import (
	"cmp"
	"slices"
)

// ForcedStaleness returns a cheap lower bound on the smallest k for which
// the prepared history can be k-atomic: 1 plus the maximum, over all reads,
// of the number of writes that are forced between the read's dictating
// write and the read by real time alone — writes that start after the
// dictating write finishes and finish before the read starts. Every total
// order consistent with the "precedes" partial order places all such writes
// between the pair, so the read's staleness is at least that count + 1 in
// any witness.
//
// Histories with no reads return 1. The bound is exact when operations are
// totally ordered in real time and never exceeds the true smallest k.
// Verifier.SmallestKPrepared starts its upward search here instead of
// always probing k=1,2,3,...
//
// Cost: O(n log n) — one sweep over writes ordered by start with a Fenwick
// tree counting write finish ranks.
func ForcedStaleness(p *Prepared) int {
	writes := make([]span, 0, len(p.valueIndex))
	for _, op := range p.H.Ops {
		if op.IsWrite() {
			writes = append(writes, span{op.Start, op.Finish})
		}
	}
	queries := make([]span, 0, p.Len()-len(writes))
	for i, op := range p.H.Ops {
		if !op.IsRead() {
			continue
		}
		w := p.DictatingWrite[i]
		// (after, before): count writes with Start > after && Finish < before.
		queries = append(queries, span{p.Op(w).Finish, op.Start})
	}
	return 1 + maxForcedBetween(writes, queries)
}

// span is a half-open query or write interval for the forced-between sweep;
// for writes it is (Start, Finish), for queries (after, before).
type span struct{ a, b int64 }

// maxForcedBetween returns the maximum, over queries, of the number of
// writes with Start > q.a and Finish < q.b. Writes are consumed in
// descending start order while queries are served in descending q.a order;
// a Fenwick tree over finish ranks answers the Finish < q.b prefix counts.
func maxForcedBetween(writes, queries []span) int {
	if len(writes) == 0 || len(queries) == 0 {
		return 0
	}
	finishes := make([]int64, len(writes))
	for i, w := range writes {
		finishes[i] = w.b
	}
	slices.Sort(finishes)
	byStart := make([]span, len(writes))
	copy(byStart, writes)
	slices.SortFunc(byStart, func(x, y span) int { return cmp.Compare(y.a, x.a) })
	qs := make([]span, len(queries))
	copy(qs, queries)
	slices.SortFunc(qs, func(x, y span) int { return cmp.Compare(y.a, x.a) })

	tree := make(fenwick, len(finishes))
	best, wi := 0, 0
	for _, q := range qs {
		for wi < len(byStart) && byStart[wi].a > q.a {
			r, _ := slices.BinarySearch(finishes, byStart[wi].b)
			tree.add(r)
			wi++
		}
		// Count inserted finishes strictly below q.b.
		r, _ := slices.BinarySearch(finishes, q.b)
		if n := tree.sum(r - 1); n > best {
			best = n
		}
	}
	return best
}

// fenwick is a 0-based binary indexed tree over counts.
type fenwick []int

func (f fenwick) add(i int) {
	for ; i < len(f); i |= i + 1 {
		f[i]++
	}
}

// sum returns the count over ranks [0, i]; i < 0 yields 0.
func (f fenwick) sum(i int) int {
	s := 0
	for ; i >= 0; i = i&(i+1) - 1 {
		s += f[i]
	}
	return s
}

// forcedStalenessRaw is the Measure-side variant over a raw, possibly
// anomalous history: reads resolve their dictating write through a sorted
// value index, and unresolved reads are skipped. It reports on the
// un-normalized timestamps, so it may undercount relative to
// ForcedStaleness on the normalized history (normalization only shortens
// writes); it is informational, not a verification input.
func forcedStalenessRaw(h *History) int {
	writes := make([]valueEntry, 0, len(h.Ops))
	spans := make([]span, 0, len(h.Ops))
	for i, op := range h.Ops {
		if op.IsWrite() {
			writes = append(writes, valueEntry{op.Value, i})
			spans = append(spans, span{op.Start, op.Finish})
		}
	}
	if len(spans) == 0 {
		return 1
	}
	sortValueEntries(writes)
	queries := make([]span, 0, len(h.Ops)-len(spans))
	for _, op := range h.Ops {
		if !op.IsRead() {
			continue
		}
		vi := lookupValue(writes, op.Value)
		if vi < 0 {
			continue
		}
		queries = append(queries, span{h.Ops[writes[vi].write].Finish, op.Start})
	}
	return 1 + maxForcedBetween(spans, queries)
}
