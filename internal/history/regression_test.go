package history

import (
	"testing"
)

func TestCoarseClockAnomalyPerf(t *testing.T) {
	// 80k ops all sharing a handful of timestamps: FindAnomalies must stay
	// near-linear (this was O(n^2) briefly).
	h := &History{}
	for i := 0; i < 80000; i++ {
		h.Ops = append(h.Ops, Operation{ID: i, Kind: KindWrite, Value: int64(i),
			Start: int64(i % 16), Finish: int64(i%16) + 100})
	}
	out := FindAnomalies(h)
	if len(out) == 0 {
		t.Fatal("expected duplicate-timestamp anomalies")
	}
}

func TestNormalizeDuplicateValueTimestampsDistinct(t *testing.T) {
	// Two writes of the same value share the minimum-read-finish shortening
	// target; Normalize must still return distinct timestamps.
	h := MustParse("w 5 0 100; w 5 20 120; r 5 40 50")
	n := Normalize(h)
	seen := map[int64]bool{}
	for _, op := range n.Ops {
		if seen[op.Start] || seen[op.Finish] {
			t.Fatalf("duplicate timestamp in normalized history:\n%s", n)
		}
		seen[op.Start], seen[op.Finish] = true, true
	}
	for _, a := range FindAnomalies(n) {
		if a.Kind == AnomalyDuplicateTimestamp {
			t.Fatalf("normalized history has duplicate-timestamp anomaly: %v", a)
		}
	}
}
