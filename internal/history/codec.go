package history

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteText writes the history in the compact text format parsed by Parse,
// one operation per line.
func WriteText(w io.Writer, h *History) error {
	bw := bufio.NewWriter(w)
	for _, op := range h.Ops {
		if _, err := bw.WriteString(op.String()); err != nil {
			return fmt.Errorf("history: write text: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("history: write text: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("history: write text: %w", err)
	}
	return nil
}

// ReadText parses a history from the compact text format. It streams
// through the buffered line parser, so memory tracks the parsed operations
// rather than the raw input size (the seed copied the whole reader into a
// string first).
func ReadText(r io.Reader) (*History, error) {
	return ParseReader(r)
}

// jsonOp is the wire form of an operation.
type jsonOp struct {
	Kind   string `json:"kind"`
	Value  int64  `json:"value"`
	Start  int64  `json:"start"`
	Finish int64  `json:"finish"`
	Client int    `json:"client,omitempty"`
	Weight int64  `json:"weight,omitempty"`
}

// jsonHistory is the wire form of a history.
type jsonHistory struct {
	Ops []jsonOp `json:"ops"`
}

// MarshalJSON encodes the history as {"ops": [...]}.
func (h *History) MarshalJSON() ([]byte, error) {
	out := jsonHistory{Ops: make([]jsonOp, len(h.Ops))}
	for i, op := range h.Ops {
		out.Ops[i] = jsonOp{
			Kind:   op.Kind.String(),
			Value:  op.Value,
			Start:  op.Start,
			Finish: op.Finish,
			Client: op.Client,
			Weight: op.Weight,
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes {"ops": [...]} into the history, assigning IDs in
// input order.
func (h *History) UnmarshalJSON(data []byte) error {
	var in jsonHistory
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("history: unmarshal: %w", err)
	}
	h.Ops = make([]Operation, len(in.Ops))
	for i, jop := range in.Ops {
		var kind Kind
		switch jop.Kind {
		case "w", "W", "write":
			kind = KindWrite
		case "r", "R", "read":
			kind = KindRead
		default:
			return fmt.Errorf("history: unmarshal: unknown kind %q", jop.Kind)
		}
		h.Ops[i] = Operation{
			ID:     i,
			Kind:   kind,
			Value:  jop.Value,
			Start:  jop.Start,
			Finish: jop.Finish,
			Client: jop.Client,
			Weight: jop.Weight,
		}
	}
	return nil
}

// WriteJSON writes the history as JSON.
func WriteJSON(w io.Writer, h *History) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("history: write json: %w", err)
	}
	return nil
}

// ReadJSON parses a history from JSON.
func ReadJSON(r io.Reader) (*History, error) {
	var h History
	dec := json.NewDecoder(r)
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("history: read json: %w", err)
	}
	return &h, nil
}
