package history

import (
	"cmp"
	"slices"
)

// Normalize returns a copy of h transformed to satisfy the repairable
// assumptions of Section II-C:
//
//  1. All endpoint timestamps are made distinct by order-preserving
//     re-ranking. Ties are broken deterministically: at equal time a start
//     endpoint is ranked before a finish endpoint (so operations that merely
//     touch remain concurrent rather than ordered), then by operation ID.
//  2. Every write is shortened so that it finishes strictly before the
//     minimum finish time of its dictated reads. This is without loss of
//     generality: a write's commit point cannot occur after one of its
//     dictated reads has finished, so no k-atomic total order is lost.
//
// Normalize does not repair true anomalies (dangling reads, reads preceding
// their dictating writes, duplicate written values); those still surface as
// errors from Prepare.
//
// The returned history is k-atomic if and only if the input is, for every k.
func Normalize(h *History) *History {
	return NormalizeInPlace(h.Clone())
}

// NormalizeInPlace is Normalize for callers that own h and will not use the
// raw operations afterwards: it rewrites h's timestamps directly instead of
// cloning first, and returns h. The streaming segment pipeline normalizes
// every closed segment this way, saving one full copy per segment.
func NormalizeInPlace(h *History) *History {
	for i := range h.Ops {
		if h.Ops[i].ID == 0 {
			h.Ops[i].ID = i
		}
	}
	rankTimestamps(h)
	shortenWrites(h)
	compactRanks(h) // compact back to dense distinct ranks
	return h
}

// endpoint identifies one end of one operation for re-ranking. The
// tie-break fields (endpoint kind, owner ID) are embedded so the sort
// comparator never chases back into the operation slice.
type endpoint struct {
	t       int64
	id      int // owning operation's ID (tie-break)
	op      int // index into Ops
	isStart bool
}

// rankTimestamps rewrites all endpoints to distinct integers 0..2n-1
// preserving the original order, with deterministic tie-breaking: by time,
// then starts before finishes, then by operation ID. Degenerate zero-length
// operations (Start == Finish) become unit-length intervals.
func rankTimestamps(h *History) {
	n := len(h.Ops)
	if n == 0 {
		return
	}
	// Fast path: when the time span is moderate and IDs equal indices (true
	// for parsed and generated histories; Prepare renumbers this way too),
	// each endpoint packs into one uint64 — (time-offset, kind bit, op
	// index) — preserving the exact tie-break order below, and the
	// specialized ordered-slice sort replaces the struct sort.
	const idxBits = 21
	minT, maxT := h.Ops[0].Start, h.Ops[0].Start
	idsAreIndex := true
	for i, op := range h.Ops {
		minT = min(minT, op.Start, op.Finish)
		maxT = max(maxT, op.Start, op.Finish)
		if op.ID != i {
			idsAreIndex = false
		}
	}
	if idsAreIndex && n < 1<<idxBits && uint64(maxT-minT) < 1<<42 {
		keys := make([]uint64, 0, 2*n)
		for i, op := range h.Ops {
			keys = append(keys,
				uint64(op.Start-minT)<<(idxBits+1)|uint64(i),
				uint64(op.Finish-minT)<<(idxBits+1)|1<<idxBits|uint64(i))
		}
		slices.Sort(keys)
		for rank, key := range keys {
			i := int(key & (1<<idxBits - 1))
			if key>>idxBits&1 == 0 {
				h.Ops[i].Start = int64(rank)
			} else {
				h.Ops[i].Finish = int64(rank)
			}
		}
		return
	}

	eps := make([]endpoint, 0, 2*len(h.Ops))
	for i, op := range h.Ops {
		eps = append(eps, endpoint{t: op.Start, id: op.ID, op: i, isStart: true})
		eps = append(eps, endpoint{t: op.Finish, id: op.ID, op: i, isStart: false})
	}
	slices.SortFunc(eps, func(x, y endpoint) int {
		if c := cmp.Compare(x.t, y.t); c != 0 {
			return c
		}
		if x.isStart != y.isStart {
			if x.isStart { // starts rank before finishes at equal time
				return -1
			}
			return 1
		}
		if c := cmp.Compare(x.id, y.id); c != 0 {
			return c
		}
		// Same time, same endpoint kind, same ID only under user-supplied
		// duplicate IDs; the op index keeps the order total.
		return cmp.Compare(x.op, y.op)
	})
	for rank, ep := range eps {
		if ep.isStart {
			h.Ops[ep.op].Start = int64(rank)
		} else {
			h.Ops[ep.op].Finish = int64(rank)
		}
	}
}

// compactRanks re-ranks to dense 0..2n-1 after shortenWrites, whose output
// timestamps are distinct integers in [0, 4n): a counting pass replaces the
// sort that general re-ranking needs. (Distinctness: starts and unmodified
// finishes are doubled ranks, hence even and distinct; shortened finishes
// are mrf*2-1, odd, and distinct because each value's minimum dictated-read
// finish is a distinct read finish — except when two writes share a value,
// a duplicate-value anomaly that makes them share mrf. That collision is
// detected by the marking pass, which then falls back to the general
// re-ranking so Normalize still returns distinct timestamps.)
func compactRanks(h *History) {
	limit := 4 * len(h.Ops)
	rank := make([]int32, limit)
	for _, op := range h.Ops {
		rank[op.Start] = 1
		rank[op.Finish] = 1
	}
	r := int32(0)
	for t := range rank {
		if rank[t] != 0 {
			rank[t] = r
			r++
		}
	}
	if int(r) != 2*len(h.Ops) {
		// Colliding endpoints (duplicate written values): re-rank fully,
		// which separates every tie deterministically.
		rankTimestamps(h)
		return
	}
	for i := range h.Ops {
		h.Ops[i].Start = int64(rank[h.Ops[i].Start])
		h.Ops[i].Finish = int64(rank[h.Ops[i].Finish])
	}
}

// shortenWrites enforces that each write finishes before the minimum finish
// of its dictated reads. It assumes distinct integer timestamps (having just
// been ranked): times are doubled so the new finish minReadFinish*2-1 is a
// fresh odd value, unique per write because read finish times are unique.
func shortenWrites(h *History) {
	// Sorted (value, finish) pairs of all reads; after sorting, the first
	// entry of each value run is that value's minimum read finish, and the
	// runs compact in place into a binary-searchable index.
	type vf struct{ value, finish int64 }
	reads := make([]vf, 0, len(h.Ops))
	for _, op := range h.Ops {
		if op.IsRead() {
			reads = append(reads, vf{op.Value, op.Finish})
		}
	}
	slices.SortFunc(reads, func(a, b vf) int {
		if c := cmp.Compare(a.value, b.value); c != 0 {
			return c
		}
		return cmp.Compare(a.finish, b.finish)
	})
	mins := slices.CompactFunc(reads, func(a, b vf) bool { return a.value == b.value })
	for i := range h.Ops {
		h.Ops[i].Start *= 2
		h.Ops[i].Finish *= 2
	}
	for i := range h.Ops {
		op := &h.Ops[i]
		if !op.IsWrite() {
			continue
		}
		vi, ok := slices.BinarySearchFunc(mins, op.Value, func(e vf, v int64) int {
			return cmp.Compare(e.value, v)
		})
		if !ok {
			continue
		}
		mrf := mins[vi].finish
		// Guard against inversion: if some read of this value finishes
		// before the write even starts, that is a read-before-write
		// anomaly — leave the write alone and let Prepare report it.
		if limit := mrf*2 - 1; op.Finish > limit && limit > op.Start {
			op.Finish = limit
		}
	}
}
