package history

import "sort"

// Normalize returns a copy of h transformed to satisfy the repairable
// assumptions of Section II-C:
//
//  1. All endpoint timestamps are made distinct by order-preserving
//     re-ranking. Ties are broken deterministically: at equal time a start
//     endpoint is ranked before a finish endpoint (so operations that merely
//     touch remain concurrent rather than ordered), then by operation ID.
//  2. Every write is shortened so that it finishes strictly before the
//     minimum finish time of its dictated reads. This is without loss of
//     generality: a write's commit point cannot occur after one of its
//     dictated reads has finished, so no k-atomic total order is lost.
//
// Normalize does not repair true anomalies (dangling reads, reads preceding
// their dictating writes, duplicate written values); those still surface as
// errors from Prepare.
//
// The returned history is k-atomic if and only if the input is, for every k.
func Normalize(h *History) *History {
	cp := h.Clone()
	for i := range cp.Ops {
		if cp.Ops[i].ID == 0 {
			cp.Ops[i].ID = i
		}
	}
	rankTimestamps(cp)
	shortenWrites(cp)
	rankTimestamps(cp) // compact back to dense distinct ranks
	return cp
}

// endpoint identifies one end of one operation for re-ranking.
type endpoint struct {
	t       int64
	isStart bool
	op      int // index into Ops
}

// rankTimestamps rewrites all endpoints to distinct integers 0..2n-1
// preserving the original order, with deterministic tie-breaking: by time,
// then starts before finishes, then by operation ID. Degenerate zero-length
// operations (Start == Finish) become unit-length intervals.
func rankTimestamps(h *History) {
	eps := make([]endpoint, 0, 2*len(h.Ops))
	for i, op := range h.Ops {
		eps = append(eps, endpoint{t: op.Start, isStart: true, op: i})
		eps = append(eps, endpoint{t: op.Finish, isStart: false, op: i})
	}
	sort.Slice(eps, func(a, b int) bool {
		x, y := eps[a], eps[b]
		if x.t != y.t {
			return x.t < y.t
		}
		if x.isStart != y.isStart {
			return x.isStart // starts rank before finishes at equal time
		}
		return h.Ops[x.op].ID < h.Ops[y.op].ID
	})
	for rank, ep := range eps {
		if ep.isStart {
			h.Ops[ep.op].Start = int64(rank)
		} else {
			h.Ops[ep.op].Finish = int64(rank)
		}
	}
}

// shortenWrites enforces that each write finishes before the minimum finish
// of its dictated reads. It assumes distinct integer timestamps (having just
// been ranked): times are doubled so the new finish minReadFinish*2-1 is a
// fresh odd value, unique per write because read finish times are unique.
func shortenWrites(h *History) {
	minReadFinish := make(map[int64]int64)
	for _, op := range h.Ops {
		if !op.IsRead() {
			continue
		}
		if cur, ok := minReadFinish[op.Value]; !ok || op.Finish < cur {
			minReadFinish[op.Value] = op.Finish
		}
	}
	for i := range h.Ops {
		h.Ops[i].Start *= 2
		h.Ops[i].Finish *= 2
	}
	for i := range h.Ops {
		op := &h.Ops[i]
		if !op.IsWrite() {
			continue
		}
		mrf, ok := minReadFinish[op.Value]
		if !ok {
			continue
		}
		// Guard against inversion: if some read of this value finishes
		// before the write even starts, that is a read-before-write
		// anomaly — leave the write alone and let Prepare report it.
		if limit := mrf*2 - 1; op.Finish > limit && limit > op.Start {
			op.Finish = limit
		}
	}
}
