// Package history defines the operation/history model from Section II of
// "On the k-Atomicity-Verification Problem" (Golab, Hurwitz, Li; ICDCS 2013):
// read and write operations on a single register, each with a real-time
// interval, the "precedes" partial order over operations, and the
// dictating-write / dictated-read relationship between writes and the reads
// that return their values.
//
// The package also implements the normalization steps the paper assumes in
// Section II-C (distinct timestamps, writes ending before their dictated
// reads) and detection of the anomalies that trivially rule out k-atomicity
// (a read without a dictating write, a read preceding its dictating write).
package history

import (
	"cmp"
	"fmt"
	"slices"
	"strings"
)

// Kind distinguishes read operations from write operations.
type Kind uint8

const (
	// KindWrite is an operation that stores a value.
	KindWrite Kind = iota + 1
	// KindRead is an operation that retrieves a value.
	KindRead
)

// String returns "w" for writes and "r" for reads.
func (k Kind) String() string {
	switch k {
	case KindWrite:
		return "w"
	case KindRead:
		return "r"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Operation is a single read or write on the register. Times are abstract
// integer timestamps (the paper assumes accurately timestamped operations;
// see the TrueTime discussion in Section II-C). Start must be strictly less
// than Finish after normalization.
type Operation struct {
	// ID identifies the operation within its history. Prepare assigns
	// IDs equal to the operation's index in the prepared history.
	ID int
	// Kind says whether the operation is a read or a write.
	Kind Kind
	// Value is the value written (for writes) or returned (for reads).
	// The paper assumes each write assigns a distinct value.
	Value int64
	// Start is the invocation timestamp.
	Start int64
	// Finish is the response timestamp.
	Finish int64
	// Client optionally records the issuing client (informational).
	Client int
	// Weight is the write's weight for the weighted k-AV problem of
	// Section V. Zero is treated as 1 by the weighted checkers. Weights
	// on reads are ignored.
	Weight int64
}

// IsWrite reports whether the operation is a write.
func (op Operation) IsWrite() bool { return op.Kind == KindWrite }

// IsRead reports whether the operation is a read.
func (op Operation) IsRead() bool { return op.Kind == KindRead }

// Precedes reports whether op finishes strictly before other starts; this is
// the "precedes" partial order of Section II-A.
func (op Operation) Precedes(other Operation) bool { return op.Finish < other.Start }

// ConcurrentWith reports whether neither operation precedes the other.
func (op Operation) ConcurrentWith(other Operation) bool {
	return !op.Precedes(other) && !other.Precedes(op)
}

// EffectiveWeight returns the operation's weight, defaulting to 1.
func (op Operation) EffectiveWeight() int64 {
	if op.Weight <= 0 {
		return 1
	}
	return op.Weight
}

// String renders the operation in the compact text format understood by
// Parse, e.g. "w 7 10 20" or "r 7 15 30".
func (op Operation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %d %d %d", op.Kind, op.Value, op.Start, op.Finish)
	if op.Weight > 1 {
		fmt.Fprintf(&b, " weight=%d", op.Weight)
	}
	if op.Client != 0 {
		fmt.Fprintf(&b, " client=%d", op.Client)
	}
	return b.String()
}

// History is a collection of operations on a single register. k-atomicity is
// a local property (Section II-B), so multi-register workloads are verified
// by building one History per register.
type History struct {
	// Ops holds the operations in no particular order unless the history
	// has been prepared (see Prepare), in which case they are sorted by
	// start time and IDs equal slice indices.
	Ops []Operation
}

// New returns a history over a copy of ops.
func New(ops []Operation) *History {
	cp := make([]Operation, len(ops))
	copy(cp, ops)
	return &History{Ops: cp}
}

// Len returns the number of operations.
func (h *History) Len() int { return len(h.Ops) }

// Clone returns a deep copy of the history.
func (h *History) Clone() *History {
	return New(h.Ops)
}

// Writes returns the number of write operations.
func (h *History) Writes() int {
	n := 0
	for _, op := range h.Ops {
		if op.IsWrite() {
			n++
		}
	}
	return n
}

// Reads returns the number of read operations.
func (h *History) Reads() int { return len(h.Ops) - h.Writes() }

// SortByStart sorts operations by start time (ties broken by finish, then
// original ID) and renumbers IDs to slice indices.
func (h *History) SortByStart() {
	slices.SortFunc(h.Ops, func(a, b Operation) int {
		if c := cmp.Compare(a.Start, b.Start); c != 0 {
			return c
		}
		if c := cmp.Compare(a.Finish, b.Finish); c != 0 {
			return c
		}
		return cmp.Compare(a.ID, b.ID)
	})
	for i := range h.Ops {
		h.Ops[i].ID = i
	}
}

// String renders the history in the compact text format, one operation per
// line, in the current operation order.
func (h *History) String() string {
	var b strings.Builder
	for _, op := range h.Ops {
		b.WriteString(op.String())
		b.WriteByte('\n')
	}
	return b.String()
}
