package history

import (
	"errors"
	"fmt"
	"sort"
)

// Event is one half of an operation as it appears in a system log:
// an invocation or a response. FromEvents pairs them into operations.
// Real checkers consume logs in this form (one line per call/return),
// so this adapter is the bridge from production traces to History.
type Event struct {
	// Time is the event timestamp.
	Time int64
	// Client identifies the session; each client has at most one
	// outstanding operation (well-formedness), which is how invocations
	// pair with responses.
	Client int
	// Invoke is true for invocation events, false for responses.
	Invoke bool
	// Kind is the operation type (on the invocation; responses may omit).
	Kind Kind
	// Value is the written value (on a write's invocation) or the value
	// returned (on a read's response).
	Value int64
}

// Errors from event pairing.
var (
	// ErrUnpairedResponse marks a response with no outstanding invocation.
	ErrUnpairedResponse = errors.New("history: response without outstanding invocation")
	// ErrDoubleInvoke marks overlapping invocations by one client.
	ErrDoubleInvoke = errors.New("history: client invoked while an operation is outstanding")
	// ErrBadEventTime marks a response at or before its invocation.
	ErrBadEventTime = errors.New("history: response not after invocation")
)

// FromEvents pairs invocation/response events into a History. Events are
// processed in time order (the slice is sorted internally; ties keep input
// order). Operations still outstanding at the end of the log are dropped
// with their count returned — the standard treatment for crashed clients,
// sound for writes only if their effects were never observed; callers that
// need pending-write semantics should synthesize responses first.
func FromEvents(events []Event) (h *History, dropped int, err error) {
	evs := make([]Event, len(events))
	copy(evs, events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })

	h = &History{}
	open := make(map[int]Event) // client -> outstanding invocation
	for _, e := range evs {
		if e.Invoke {
			if _, busy := open[e.Client]; busy {
				return nil, 0, fmt.Errorf("%w (client %d at t=%d)", ErrDoubleInvoke, e.Client, e.Time)
			}
			open[e.Client] = e
			continue
		}
		inv, ok := open[e.Client]
		if !ok {
			return nil, 0, fmt.Errorf("%w (client %d at t=%d)", ErrUnpairedResponse, e.Client, e.Time)
		}
		delete(open, e.Client)
		if e.Time <= inv.Time {
			return nil, 0, fmt.Errorf("%w (client %d, t=%d..%d)", ErrBadEventTime, e.Client, inv.Time, e.Time)
		}
		op := Operation{
			ID:     h.Len(),
			Kind:   inv.Kind,
			Start:  inv.Time,
			Finish: e.Time,
			Client: e.Client,
		}
		if inv.Kind == KindWrite {
			op.Value = inv.Value
		} else {
			op.Value = e.Value // reads return their value on the response
		}
		h.Ops = append(h.Ops, op)
	}
	return h, len(open), nil
}

// ToEvents flattens a history back into a time-sorted event stream
// (the inverse of FromEvents for complete histories).
func ToEvents(h *History) []Event {
	evs := make([]Event, 0, 2*h.Len())
	for _, op := range h.Ops {
		inv := Event{Time: op.Start, Client: op.Client, Invoke: true, Kind: op.Kind}
		res := Event{Time: op.Finish, Client: op.Client, Kind: op.Kind}
		if op.Kind == KindWrite {
			inv.Value = op.Value
		} else {
			res.Value = op.Value
		}
		evs = append(evs, inv, res)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
	return evs
}
