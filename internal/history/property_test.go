package history

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// rawHistory generates raw, possibly tie-ridden operation sets: timestamps
// are drawn from a small range to force duplicate endpoints, writes carry
// distinct values, and every read references some write's value.
type rawHistory struct {
	H *History
}

func (rawHistory) Generate(r *rand.Rand, size int) reflect.Value {
	if size < 2 {
		size = 2
	}
	n := 2 + r.Intn(size+10)
	span := int64(2 * n)
	var ops []Operation
	var writeVals []int64
	for i := 0; i < n; i++ {
		start := r.Int63n(span)
		finish := start + 1 + r.Int63n(span/2+1)
		if len(writeVals) == 0 || r.Intn(2) == 0 {
			v := int64(len(writeVals) + 1)
			writeVals = append(writeVals, v)
			ops = append(ops, Operation{ID: i, Kind: KindWrite, Value: v, Start: start, Finish: finish})
			continue
		}
		v := writeVals[r.Intn(len(writeVals))]
		ops = append(ops, Operation{ID: i, Kind: KindRead, Value: v, Start: start, Finish: finish})
	}
	return reflect.ValueOf(rawHistory{H: New(ops)})
}

// TestPropertyNormalizeMonotone: Normalize never removes a precedence edge
// (it may add edges only via the WLOG write-shortening of Section II-C),
// and its output always has distinct endpoints and non-degenerate
// intervals.
func TestPropertyNormalizeMonotone(t *testing.T) {
	prop := func(rh rawHistory) bool {
		n := Normalize(rh.H)
		if n.Len() != rh.H.Len() {
			return false
		}
		for i := range rh.H.Ops {
			for j := range rh.H.Ops {
				if rh.H.Ops[i].Precedes(rh.H.Ops[j]) && !n.Ops[i].Precedes(n.Ops[j]) {
					t.Logf("edge (%d,%d) lost", i, j)
					return false
				}
			}
		}
		seen := make(map[int64]bool, 2*n.Len())
		for _, op := range n.Ops {
			if op.Start >= op.Finish {
				t.Logf("degenerate interval %+v", op)
				return false
			}
			if seen[op.Start] || seen[op.Finish] {
				t.Logf("duplicate endpoint in %+v", op)
				return false
			}
			seen[op.Start] = true
			seen[op.Finish] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestPropertyNormalizeExactWithoutLongWrites: when no write outlives a
// dictated read (no repair needed beyond tie-breaking), the precedence
// relation is preserved exactly.
func TestPropertyNormalizeExactWithoutLongWrites(t *testing.T) {
	prop := func(rh rawHistory) bool {
		for _, a := range FindAnomalies(rh.H) {
			if a.Kind == AnomalyLongWrite {
				return true // vacuous: repair is allowed to add edges
			}
		}
		n := Normalize(rh.H)
		for i := range rh.H.Ops {
			for j := range rh.H.Ops {
				if rh.H.Ops[i].Precedes(rh.H.Ops[j]) != n.Ops[i].Precedes(n.Ops[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMeasureInvariants: structural statistics are internally
// consistent on arbitrary inputs.
func TestPropertyMeasureInvariants(t *testing.T) {
	prop := func(rh rawHistory) bool {
		st := Measure(rh.H)
		if st.Ops != rh.H.Len() || st.Writes+st.Reads != st.Ops {
			return false
		}
		if st.MaxConcurrentWrites > st.Writes || st.MaxConcurrentOps > st.Ops {
			return false
		}
		if st.MaxConcurrentWrites > st.MaxConcurrentOps {
			return false
		}
		if st.Ops > 0 && (st.MaxConcurrentOps < 1 || st.Span < 1) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestPropertyParseRoundTrip: String/Parse is the identity on operation
// content for normalized histories.
func TestPropertyParseRoundTrip(t *testing.T) {
	prop := func(rh rawHistory) bool {
		n := Normalize(rh.H)
		back, err := Parse(n.String())
		if err != nil || back.Len() != n.Len() {
			return false
		}
		for i := range n.Ops {
			a, b := n.Ops[i], back.Ops[i]
			if a.Kind != b.Kind || a.Value != b.Value || a.Start != b.Start || a.Finish != b.Finish {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}
