package history

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromEventsBasic(t *testing.T) {
	events := []Event{
		{Time: 0, Client: 1, Invoke: true, Kind: KindWrite, Value: 7},
		{Time: 10, Client: 1},
		{Time: 20, Client: 2, Invoke: true, Kind: KindRead},
		{Time: 30, Client: 2, Value: 7},
	}
	h, dropped, err := FromEvents(events)
	if err != nil || dropped != 0 {
		t.Fatalf("FromEvents: %v (dropped %d)", err, dropped)
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h.Len())
	}
	w, r := h.Ops[0], h.Ops[1]
	if !w.IsWrite() || w.Value != 7 || w.Start != 0 || w.Finish != 10 {
		t.Errorf("write op = %+v", w)
	}
	if !r.IsRead() || r.Value != 7 || r.Start != 20 || r.Finish != 30 {
		t.Errorf("read op = %+v", r)
	}
}

func TestFromEventsInterleavedClients(t *testing.T) {
	events := []Event{
		{Time: 0, Client: 1, Invoke: true, Kind: KindWrite, Value: 1},
		{Time: 5, Client: 2, Invoke: true, Kind: KindWrite, Value: 2},
		{Time: 12, Client: 2},
		{Time: 20, Client: 1},
	}
	h, dropped, err := FromEvents(events)
	if err != nil || dropped != 0 {
		t.Fatalf("FromEvents: %v", err)
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d", h.Len())
	}
	// Client 1's op spans [0,20]; client 2's [5,12]: nested.
	if !h.Ops[0].ConcurrentWith(h.Ops[1]) {
		t.Error("nested ops should be concurrent")
	}
}

func TestFromEventsUnsortedInput(t *testing.T) {
	events := []Event{
		{Time: 30, Client: 2, Value: 7},
		{Time: 0, Client: 1, Invoke: true, Kind: KindWrite, Value: 7},
		{Time: 20, Client: 2, Invoke: true, Kind: KindRead},
		{Time: 10, Client: 1},
	}
	h, _, err := FromEvents(events)
	if err != nil {
		t.Fatalf("FromEvents: %v", err)
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestFromEventsDropsPending(t *testing.T) {
	events := []Event{
		{Time: 0, Client: 1, Invoke: true, Kind: KindWrite, Value: 1},
		{Time: 10, Client: 1},
		{Time: 20, Client: 2, Invoke: true, Kind: KindRead}, // never returns
	}
	h, dropped, err := FromEvents(events)
	if err != nil {
		t.Fatalf("FromEvents: %v", err)
	}
	if dropped != 1 || h.Len() != 1 {
		t.Errorf("dropped=%d len=%d, want 1/1", dropped, h.Len())
	}
}

func TestFromEventsErrors(t *testing.T) {
	tests := []struct {
		name   string
		events []Event
		want   error
	}{
		{
			"double invoke",
			[]Event{
				{Time: 0, Client: 1, Invoke: true, Kind: KindWrite, Value: 1},
				{Time: 5, Client: 1, Invoke: true, Kind: KindRead},
			},
			ErrDoubleInvoke,
		},
		{
			"unpaired response",
			[]Event{{Time: 5, Client: 1}},
			ErrUnpairedResponse,
		},
		{
			"response at invocation time",
			[]Event{
				{Time: 5, Client: 1, Invoke: true, Kind: KindWrite, Value: 1},
				{Time: 5, Client: 1},
			},
			ErrBadEventTime,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, _, err := FromEvents(tt.events)
			if !errors.Is(err, tt.want) {
				t.Errorf("err = %v, want %v", err, tt.want)
			}
		})
	}
}

// TestPropertyEventsRoundTrip: ToEvents then FromEvents reconstructs any
// complete history whose clients are well-formed (which per-client
// sequential generation guarantees — here we synthesize client IDs from op
// order to ensure well-formedness).
func TestPropertyEventsRoundTrip(t *testing.T) {
	prop := func(seed int64, nOps uint8) bool {
		n := int(nOps%32) + 1
		h := &History{}
		// Sequential ops per client: client c's ops never overlap.
		timeBase := int64(0)
		for i := 0; i < n; i++ {
			start := timeBase
			finish := start + 1 + (seed+int64(i))&7 // mask keeps the jitter non-negative
			kind := KindWrite
			val := int64(i + 1)
			if i%3 == 2 {
				kind = KindRead
				val = int64(i) // reads value of a previous write
			}
			h.Ops = append(h.Ops, Operation{
				ID: i, Kind: kind, Value: val, Start: start, Finish: finish, Client: i % 3,
			})
			timeBase = finish + 1
		}
		back, dropped, err := FromEvents(ToEvents(h))
		if err != nil || dropped != 0 || back.Len() != h.Len() {
			return false
		}
		for i := range h.Ops {
			a, b := h.Ops[i], back.Ops[i]
			if a.Kind != b.Kind || a.Value != b.Value || a.Start != b.Start || a.Finish != b.Finish {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}
