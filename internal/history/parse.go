package history

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads a history in the compact text format: one operation per line
// (or per ';'-separated segment), each of the form
//
//	w <value> <start> <finish> [weight=W] [client=C]
//	r <value> <start> <finish> [client=C]
//
// Blank segments and '#' comments are ignored. Operation IDs are assigned in
// input order.
func Parse(text string) (*History, error) {
	return ParseReader(strings.NewReader(text))
}

// ParseReader is Parse over an io.Reader: input streams through a buffered
// line scanner, so memory is proportional to the parsed operations rather
// than the raw text plus the operations. Use it for file and stdin inputs.
func ParseReader(r io.Reader) (*History, error) {
	var ops []Operation
	seg := 0
	sc := bufio.NewScanner(r)
	// The whole history may legally sit on one ';'-separated line, so the
	// line cap is a backstop, not a real format limit; the buffer only
	// grows to the longest line actually seen.
	sc.Buffer(make([]byte, 0, 64*1024), 1<<30)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for len(line) > 0 {
			part := line
			if i := strings.IndexByte(line, ';'); i >= 0 {
				part, line = line[:i], line[i+1:]
			} else {
				line = ""
			}
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			seg++
			op, err := parseOp(part)
			if err != nil {
				return nil, fmt.Errorf("segment %d (%q): %w", seg, part, err)
			}
			op.ID = len(ops)
			ops = append(ops, op)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	return &History{Ops: ops}, nil
}

// MustParse is Parse for tests and examples; it panics on malformed input.
func MustParse(text string) *History {
	h, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return h
}

func parseOp(s string) (Operation, error) {
	fields := strings.Fields(s)
	if len(fields) < 4 {
		return Operation{}, fmt.Errorf("want at least 4 fields (kind value start finish), got %d", len(fields))
	}
	return ParseOpParts(fields[0], fields[1:])
}

// AppendFields splits s on whitespace, appending the fields to dst (usually
// dst[:0] of a reused buffer). It is strings.Fields without the fresh slice
// allocation, for streaming parsers.
func AppendFields(dst []string, s string) []string {
	for i := 0; i < len(s); {
		for i < len(s) && asciiSpace(s[i]) {
			i++
		}
		start := i
		for i < len(s) && !asciiSpace(s[i]) {
			i++
		}
		if i > start {
			dst = append(dst, s[start:i])
		}
	}
	return dst
}

func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f'
}

// ParseOpParts parses a single operation from pre-split fields: kind is the
// "w"/"r" token and args the remaining fields (value, start, finish, then
// optional attributes). It is the field-level core shared by Parse and the
// multi-register trace parser, which has a key column in the middle and so
// cannot hand over a contiguous segment.
func ParseOpParts(kind string, args []string) (Operation, error) {
	if len(args) < 3 {
		return Operation{}, fmt.Errorf("want at least 4 fields (kind value start finish), got %d", len(args)+1)
	}
	var op Operation
	switch kind {
	case "w", "W":
		op.Kind = KindWrite
	case "r", "R":
		op.Kind = KindRead
	default:
		return Operation{}, fmt.Errorf("unknown kind %q", kind)
	}
	var err error
	if op.Value, err = strconv.ParseInt(args[0], 10, 64); err != nil {
		return Operation{}, fmt.Errorf("value: %w", err)
	}
	if op.Start, err = strconv.ParseInt(args[1], 10, 64); err != nil {
		return Operation{}, fmt.Errorf("start: %w", err)
	}
	if op.Finish, err = strconv.ParseInt(args[2], 10, 64); err != nil {
		return Operation{}, fmt.Errorf("finish: %w", err)
	}
	for _, f := range args[3:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return Operation{}, fmt.Errorf("malformed attribute %q", f)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return Operation{}, fmt.Errorf("attribute %q: %w", key, err)
		}
		switch key {
		case "weight":
			if n <= 0 {
				return Operation{}, fmt.Errorf("weight must be positive, got %d", n)
			}
			op.Weight = n
		case "client":
			op.Client = int(n)
		default:
			return Operation{}, fmt.Errorf("unknown attribute %q", key)
		}
	}
	return op, nil
}
