package history

import "sort"

// Stats summarizes structural properties of a history that drive algorithm
// cost, most importantly c, the maximum number of concurrent writes, which
// appears in LBT's O(n log n + c·n) bound (Theorem 3.2).
type Stats struct {
	// Ops is the total operation count n.
	Ops int
	// Writes and Reads partition Ops.
	Writes int
	Reads  int
	// MaxConcurrentWrites is c: the maximum number of write intervals
	// overlapping at any single point in time.
	MaxConcurrentWrites int
	// MaxConcurrentOps is the maximum number of operation intervals
	// (reads and writes) overlapping at any single point in time.
	MaxConcurrentOps int
	// ForcedStaleness is a lower bound on the history's smallest k: 1 plus
	// the maximum number of writes forced by real time between any read and
	// its dictating write (see ForcedStaleness). Reads that resolve to no
	// write are skipped.
	ForcedStaleness int
	// Span is the time from the earliest start to the latest finish.
	Span int64
}

// Measure computes Stats in O(n log n).
func Measure(h *History) Stats {
	st := Stats{Ops: len(h.Ops)}
	if len(h.Ops) == 0 {
		return st
	}
	var (
		allEvents   = make([]sweepEvent, 0, 2*len(h.Ops))
		writeEvents = make([]sweepEvent, 0, 2*len(h.Ops))
		minStart    = h.Ops[0].Start
		maxFinish   = h.Ops[0].Finish
	)
	for _, op := range h.Ops {
		if op.IsWrite() {
			st.Writes++
			writeEvents = append(writeEvents,
				sweepEvent{t: op.Start, delta: +1},
				sweepEvent{t: op.Finish, delta: -1})
		} else {
			st.Reads++
		}
		allEvents = append(allEvents,
			sweepEvent{t: op.Start, delta: +1},
			sweepEvent{t: op.Finish, delta: -1})
		if op.Start < minStart {
			minStart = op.Start
		}
		if op.Finish > maxFinish {
			maxFinish = op.Finish
		}
	}
	st.MaxConcurrentWrites = sweepMax(writeEvents)
	st.MaxConcurrentOps = sweepMax(allEvents)
	st.ForcedStaleness = forcedStalenessRaw(h)
	st.Span = maxFinish - minStart
	return st
}

type sweepEvent struct {
	t     int64
	delta int
}

// sweepMax returns the maximum overlap of the closed intervals encoded as
// +1/-1 events. At equal timestamps, -1 events sort first so that intervals
// sharing only an endpoint do not count as overlapping (consistent with the
// strict "precedes" relation: op1.f < op2.s).
func sweepMax(events []sweepEvent) int {
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return events[i].delta < events[j].delta
	})
	cur, best := 0, 0
	for _, e := range events {
		cur += e.delta
		if cur > best {
			best = cur
		}
	}
	return best
}
