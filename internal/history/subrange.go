package history

import "fmt"

// SubPrepared returns a verification view of the prepared history restricted
// to the contiguous operation range [lo, hi). The view's History aliases p's
// operation slice — no operations are copied — while the index structures
// (dictating writes, dictated reads, value index) are rebuilt with indices
// shifted into the view's coordinate space.
//
// The boundaries must be safe cuts (zone.SafeCut): every read in the range
// must have its dictating write inside the range, or an error is returned.
// Under that precondition the view satisfies every Prepared invariant the
// verification algorithms rely on (start-sorted operations, local
// dictating-write index, unique values), so the segment-equivalence lemma
// applies: the history is k-atomic iff every safe-cut segment view is, and
// smallest-k is the maximum over views. This is what lets the (key, chunk)
// scheduler fan the exact oracle and the smallest-k search out over segments
// of a single hot key.
//
// Operation IDs are left global (they identify ops of the full history), so
// diagnostics reference the original trace; verification is index-based and
// never consults IDs.
func SubPrepared(p *Prepared, lo, hi int) (*Prepared, error) {
	n := p.Len()
	if lo < 0 || hi > n || lo > hi {
		return nil, fmt.Errorf("history: subrange [%d,%d) out of bounds (len %d)", lo, hi, n)
	}
	m := hi - lo
	sub := &Prepared{
		H:              &History{Ops: p.H.Ops[lo:hi]},
		DictatingWrite: make([]int, m),
	}
	reads := 0
	for i := 0; i < m; i++ {
		w := p.DictatingWrite[lo+i]
		if w < 0 {
			sub.DictatingWrite[i] = -1
			continue
		}
		if w < lo || w >= hi {
			return nil, fmt.Errorf("history: read %d dictated by write %d outside subrange [%d,%d) — not a safe cut", lo+i, w, lo, hi)
		}
		sub.DictatingWrite[i] = w - lo
		reads++
	}
	// Carve the per-write read lists out of one flat allocation, mirroring
	// prepareSorted.
	sub.DictatedReads = make([][]int, m)
	flat := make([]int, 0, reads)
	for w := lo; w < hi; w++ {
		rs := p.DictatedReads[w]
		if len(rs) == 0 {
			continue
		}
		off := len(flat)
		for _, r := range rs {
			if r < lo || r >= hi {
				// The write-side crossing of the same contract the read
				// loop above enforces: a dictated read outside the range
				// means the boundary is not a safe cut.
				return nil, fmt.Errorf("history: write %d dictates read %d outside subrange [%d,%d) — not a safe cut", w, r, lo, hi)
			}
			flat = append(flat, r-lo)
		}
		sub.DictatedReads[w-lo] = flat[off:len(flat):len(flat)]
	}
	// The value index filtered to in-range writes stays sorted by value.
	for _, e := range p.valueIndex {
		if e.write >= lo && e.write < hi {
			sub.valueIndex = append(sub.valueIndex, valueEntry{e.value, e.write - lo})
		}
	}
	return sub, nil
}
