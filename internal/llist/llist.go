// Package llist provides intrusive doubly-linked lists over a fixed arena of
// nodes, with dancing-links removal: an unlinked node keeps its prev/next
// pointers, so pushing unlinks onto an undo log and replaying the log in
// reverse restores the list exactly. This is the data-structure substrate the
// LBT implementation sketch in Theorem 3.2 requires — constant-time removal
// from H and W, and cheap revert of an aborted epoch (Figure 2, line 7).
//
// Several lists can share one arena: each List owns a lane (a pair of
// prev/next pointer arrays), so an element can sit simultaneously in, say,
// the history list H and its dictating write's read list.
package llist

// None marks the absence of a node.
const None = -1

// List is a doubly-linked list over node indices 0..n-1 with head/tail
// sentinels held outside the arena. The zero value is not usable; call New.
type List struct {
	prev []int
	next []int
	head int // first element or None
	tail int // last element or None
	size int
}

// New returns an empty list able to hold node indices in [0, n).
func New(n int) *List {
	l := &List{
		prev: make([]int, n),
		next: make([]int, n),
		head: None,
		tail: None,
	}
	for i := range l.prev {
		l.prev[i] = None
		l.next[i] = None
	}
	return l
}

// Len returns the number of linked elements.
func (l *List) Len() int { return l.size }

// Head returns the first element, or None if the list is empty.
func (l *List) Head() int { return l.head }

// Tail returns the last element, or None if the list is empty.
func (l *List) Tail() int { return l.tail }

// Next returns the element after i, or None.
func (l *List) Next(i int) int { return l.next[i] }

// Prev returns the element before i, or None.
func (l *List) Prev(i int) int { return l.prev[i] }

// PushBack appends node i, which must not currently be linked.
func (l *List) PushBack(i int) {
	l.prev[i] = l.tail
	l.next[i] = None
	if l.tail != None {
		l.next[l.tail] = i
	} else {
		l.head = i
	}
	l.tail = i
	l.size++
}

// Unlink removes node i from the list but leaves its prev/next pointers
// intact so Relink can restore it (dancing links). The caller must ensure i
// is currently linked and must Relink unlinks in reverse order.
func (l *List) Unlink(i int) {
	p, n := l.prev[i], l.next[i]
	if p != None {
		l.next[p] = n
	} else {
		l.head = n
	}
	if n != None {
		l.prev[n] = p
	} else {
		l.tail = p
	}
	l.size--
}

// Relink restores node i, previously removed by Unlink. Restorations must
// happen in exactly the reverse order of the unlinks.
func (l *List) Relink(i int) {
	p, n := l.prev[i], l.next[i]
	if p != None {
		l.next[p] = i
	} else {
		l.head = i
	}
	if n != None {
		l.prev[n] = i
	} else {
		l.tail = i
	}
	l.size++
}

// Slice returns the linked elements front to back (for tests/diagnostics).
func (l *List) Slice() []int {
	out := make([]int, 0, l.size)
	for i := l.head; i != None; i = l.next[i] {
		out = append(out, i)
	}
	return out
}

// MultiList is a family of disjoint doubly-linked lists over one shared node
// arena: every node belongs to at most one member list (its owner). LBT uses
// one MultiList for the per-write dictated-read lists: each read node sits in
// exactly its dictating write's list.
type MultiList struct {
	prev  []int
	next  []int
	head  []int
	tail  []int
	owner []int
	size  []int
}

// NewMulti returns an empty family of `lists` lists over nodes [0, n).
func NewMulti(n, lists int) *MultiList {
	m := &MultiList{
		prev:  make([]int, n),
		next:  make([]int, n),
		head:  make([]int, lists),
		tail:  make([]int, lists),
		owner: make([]int, n),
		size:  make([]int, lists),
	}
	for i := range m.prev {
		m.prev[i] = None
		m.next[i] = None
		m.owner[i] = None
	}
	for i := range m.head {
		m.head[i] = None
		m.tail[i] = None
	}
	return m
}

// PushBack appends node i to list l; i must not currently belong to any list.
func (m *MultiList) PushBack(l, i int) {
	m.owner[i] = l
	m.prev[i] = m.tail[l]
	m.next[i] = None
	if m.tail[l] != None {
		m.next[m.tail[l]] = i
	} else {
		m.head[l] = i
	}
	m.tail[l] = i
	m.size[l]++
}

// Head returns the first node of list l, or None.
func (m *MultiList) Head(l int) int { return m.head[l] }

// Next returns the node after i within its list, or None.
func (m *MultiList) Next(i int) int { return m.next[i] }

// LenOf returns the number of nodes in list l.
func (m *MultiList) LenOf(l int) int { return m.size[l] }

// Unlink removes node i from its owner list, dancing-links style.
func (m *MultiList) Unlink(i int) {
	l := m.owner[i]
	p, n := m.prev[i], m.next[i]
	if p != None {
		m.next[p] = n
	} else {
		m.head[l] = n
	}
	if n != None {
		m.prev[n] = p
	} else {
		m.tail[l] = p
	}
	m.size[l]--
}

// Relink restores node i into its owner list; restorations must occur in
// reverse unlink order.
func (m *MultiList) Relink(i int) {
	l := m.owner[i]
	p, n := m.prev[i], m.next[i]
	if p != None {
		m.next[p] = i
	} else {
		m.head[l] = i
	}
	if n != None {
		m.prev[n] = i
	} else {
		m.tail[l] = i
	}
	m.size[l]++
}

// SliceOf returns the nodes of list l front to back (tests/diagnostics).
func (m *MultiList) SliceOf(l int) []int {
	out := make([]int, 0, m.size[l])
	for i := m.head[l]; i != None; i = m.next[i] {
		out = append(out, i)
	}
	return out
}

// Linked is any dancing-links structure an UndoLog can revert.
type Linked interface {
	// Unlink removes node i, leaving its pointers intact.
	Unlink(i int)
	// Relink restores node i; calls must be in reverse unlink order.
	Relink(i int)
}

var (
	_ Linked = (*List)(nil)
	_ Linked = (*MultiList)(nil)
)

// UndoLog records unlinks across one or more lists so they can be reverted
// in reverse order. The zero value is ready to use.
type UndoLog struct {
	entries []undoEntry
}

type undoEntry struct {
	list Linked
	node int
}

// Unlink removes node i from list l and records the removal.
func (u *UndoLog) Unlink(l Linked, i int) {
	l.Unlink(i)
	u.entries = append(u.entries, undoEntry{list: l, node: i})
}

// Mark returns a position that RevertTo can rewind to.
func (u *UndoLog) Mark() int { return len(u.entries) }

// RevertTo relinks every node unlinked since the given mark, most recent
// first, and truncates the log back to the mark.
func (u *UndoLog) RevertTo(mark int) {
	for i := len(u.entries) - 1; i >= mark; i-- {
		e := u.entries[i]
		e.list.Relink(e.node)
	}
	u.entries = u.entries[:mark]
}

// Commit discards log entries since the given mark, making the unlinks
// permanent (they can no longer be reverted past the mark).
func (u *UndoLog) Commit(mark int) {
	u.entries = u.entries[:mark]
}

// Len returns the number of recorded unlinks.
func (u *UndoLog) Len() int { return len(u.entries) }
