package llist

import (
	"math/rand"
	"testing"
)

func TestEmptyList(t *testing.T) {
	l := New(4)
	if l.Len() != 0 {
		t.Errorf("Len = %d, want 0", l.Len())
	}
	if l.Head() != None || l.Tail() != None {
		t.Errorf("Head=%d Tail=%d, want None", l.Head(), l.Tail())
	}
	if got := l.Slice(); len(got) != 0 {
		t.Errorf("Slice = %v, want empty", got)
	}
}

func TestPushBackOrder(t *testing.T) {
	l := New(5)
	for _, i := range []int{2, 0, 4} {
		l.PushBack(i)
	}
	want := []int{2, 0, 4}
	got := l.Slice()
	if len(got) != len(want) {
		t.Fatalf("Slice = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
	if l.Head() != 2 || l.Tail() != 4 {
		t.Errorf("Head=%d Tail=%d, want 2/4", l.Head(), l.Tail())
	}
	if l.Next(2) != 0 || l.Prev(0) != 2 || l.Next(4) != None || l.Prev(2) != None {
		t.Error("neighbor pointers wrong")
	}
}

func TestUnlinkMiddle(t *testing.T) {
	l := New(3)
	l.PushBack(0)
	l.PushBack(1)
	l.PushBack(2)
	l.Unlink(1)
	if got := l.Slice(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Slice after unlink = %v, want [0 2]", got)
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
	l.Relink(1)
	if got := l.Slice(); len(got) != 3 || got[1] != 1 {
		t.Fatalf("Slice after relink = %v, want [0 1 2]", got)
	}
}

func TestUnlinkHeadAndTail(t *testing.T) {
	l := New(3)
	l.PushBack(0)
	l.PushBack(1)
	l.PushBack(2)
	l.Unlink(0)
	if l.Head() != 1 {
		t.Errorf("Head after unlinking head = %d, want 1", l.Head())
	}
	l.Unlink(2)
	if l.Tail() != 1 {
		t.Errorf("Tail after unlinking tail = %d, want 1", l.Tail())
	}
	l.Relink(2)
	l.Relink(0)
	if got := l.Slice(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("Slice after relinks = %v, want [0 1 2]", got)
	}
}

func TestUnlinkAll(t *testing.T) {
	l := New(3)
	for i := 0; i < 3; i++ {
		l.PushBack(i)
	}
	for i := 0; i < 3; i++ {
		l.Unlink(i)
	}
	if l.Len() != 0 || l.Head() != None || l.Tail() != None {
		t.Errorf("list not empty after unlinking all: len=%d head=%d tail=%d", l.Len(), l.Head(), l.Tail())
	}
	// Reverse-order relink restores everything.
	for i := 2; i >= 0; i-- {
		l.Relink(i)
	}
	if got := l.Slice(); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("Slice = %v, want [0 1 2]", got)
	}
}

func TestUndoLogRevert(t *testing.T) {
	l := New(6)
	for i := 0; i < 6; i++ {
		l.PushBack(i)
	}
	var log UndoLog
	m0 := log.Mark()
	log.Unlink(l, 1)
	log.Unlink(l, 4)
	m1 := log.Mark()
	log.Unlink(l, 0)
	log.Unlink(l, 5)
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	log.RevertTo(m1)
	if got := l.Slice(); len(got) != 4 {
		t.Fatalf("after partial revert Slice = %v, want 4 elements", got)
	}
	log.RevertTo(m0)
	if got := l.Slice(); len(got) != 6 {
		t.Fatalf("after full revert Slice = %v, want 6 elements", got)
	}
	for i, v := range l.Slice() {
		if v != i {
			t.Fatalf("order not restored: %v", l.Slice())
		}
	}
}

func TestUndoLogCommit(t *testing.T) {
	l := New(3)
	for i := 0; i < 3; i++ {
		l.PushBack(i)
	}
	var log UndoLog
	m := log.Mark()
	log.Unlink(l, 1)
	log.Commit(m)
	if log.Len() != 0 {
		t.Errorf("log Len = %d after commit, want 0", log.Len())
	}
	if l.Len() != 2 {
		t.Errorf("list Len = %d, want 2 (commit must not relink)", l.Len())
	}
}

func TestUndoLogAcrossLists(t *testing.T) {
	a := New(4)
	b := New(4)
	for i := 0; i < 4; i++ {
		a.PushBack(i)
		b.PushBack(3 - i)
	}
	var log UndoLog
	m := log.Mark()
	log.Unlink(a, 2)
	log.Unlink(b, 2)
	log.Unlink(a, 0)
	log.RevertTo(m)
	if ga, gb := a.Slice(), b.Slice(); len(ga) != 4 || len(gb) != 4 {
		t.Fatalf("revert across lists failed: a=%v b=%v", ga, gb)
	}
	for i, v := range a.Slice() {
		if v != i {
			t.Fatalf("list a order wrong: %v", a.Slice())
		}
	}
	for i, v := range b.Slice() {
		if v != 3-i {
			t.Fatalf("list b order wrong: %v", b.Slice())
		}
	}
}

// TestRandomizedUndo exercises dancing-links restoration under random
// unlink/revert interleavings against a reference slice implementation.
func TestRandomizedUndo(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(20)
		l := New(n)
		for i := 0; i < n; i++ {
			l.PushBack(i)
		}
		ref := make([]int, n)
		for i := range ref {
			ref[i] = i
		}
		var log UndoLog
		type frame struct {
			mark int
			ref  []int
		}
		var stack []frame
		for step := 0; step < 30; step++ {
			switch {
			case rng.Intn(3) == 0 && len(stack) > 0:
				// revert to a random open frame
				f := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				log.RevertTo(f.mark)
				ref = f.ref
			case l.Len() > 0:
				if rng.Intn(4) == 0 {
					cp := make([]int, len(ref))
					copy(cp, ref)
					stack = append(stack, frame{mark: log.Mark(), ref: cp})
				}
				// unlink a random current element
				idx := rng.Intn(len(ref))
				log.Unlink(l, ref[idx])
				ref = append(ref[:idx:idx], ref[idx+1:]...)
			}
			got := l.Slice()
			if len(got) != len(ref) {
				t.Fatalf("trial %d step %d: len %d vs ref %d", trial, step, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("trial %d step %d: got %v want %v", trial, step, got, ref)
				}
			}
		}
	}
}

func TestMultiListBasics(t *testing.T) {
	m := NewMulti(6, 2)
	m.PushBack(0, 1)
	m.PushBack(0, 3)
	m.PushBack(1, 2)
	m.PushBack(1, 4)
	if got := m.SliceOf(0); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("list 0 = %v, want [1 3]", got)
	}
	if got := m.SliceOf(1); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("list 1 = %v, want [2 4]", got)
	}
	if m.LenOf(0) != 2 || m.LenOf(1) != 2 {
		t.Errorf("LenOf = %d,%d, want 2,2", m.LenOf(0), m.LenOf(1))
	}
	if m.Head(0) != 1 || m.Next(1) != 3 || m.Next(3) != None {
		t.Error("head/next pointers wrong")
	}
	m.Unlink(1)
	if got := m.SliceOf(0); len(got) != 1 || got[0] != 3 {
		t.Fatalf("after unlink list 0 = %v, want [3]", got)
	}
	if got := m.SliceOf(1); len(got) != 2 {
		t.Fatalf("unlink affected wrong list: %v", got)
	}
	m.Relink(1)
	if got := m.SliceOf(0); len(got) != 2 || got[0] != 1 {
		t.Fatalf("after relink list 0 = %v, want [1 3]", got)
	}
}

func TestUndoLogMixedListKinds(t *testing.T) {
	l := New(4)
	for i := 0; i < 4; i++ {
		l.PushBack(i)
	}
	m := NewMulti(4, 1)
	for i := 0; i < 4; i++ {
		m.PushBack(0, i)
	}
	var log UndoLog
	mark := log.Mark()
	log.Unlink(l, 2)
	log.Unlink(m, 2)
	log.Unlink(m, 0)
	log.Unlink(l, 0)
	if l.Len() != 2 || m.LenOf(0) != 2 {
		t.Fatalf("unlinks did not apply: list=%d multi=%d", l.Len(), m.LenOf(0))
	}
	log.RevertTo(mark)
	if got := l.Slice(); len(got) != 4 {
		t.Fatalf("list not restored: %v", got)
	}
	if got := m.SliceOf(0); len(got) != 4 {
		t.Fatalf("multi not restored: %v", got)
	}
	for i, v := range m.SliceOf(0) {
		if v != i {
			t.Fatalf("multi order wrong: %v", m.SliceOf(0))
		}
	}
}
