package trace

import (
	"testing"

	"kat/internal/core"
	"kat/internal/generator"
)

const sampleTrace = `
# two registers: x is linearizable, y has a 1-stale read
w x 1 0 10
r x 1 20 30
w x 2 40 50
r x 2 60 70
w y 1 5 15
w y 2 25 35
r y 1 45 55
`

func TestParseAndSplit(t *testing.T) {
	tr, err := Parse(sampleTrace)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if tr.Len() != 7 {
		t.Fatalf("Len = %d, want 7", tr.Len())
	}
	keys := tr.SortedKeys()
	if len(keys) != 2 || keys[0] != "x" || keys[1] != "y" {
		t.Fatalf("keys = %v", keys)
	}
	if tr.Keys["x"].Len() != 4 || tr.Keys["y"].Len() != 3 {
		t.Errorf("split sizes: x=%d y=%d", tr.Keys["x"].Len(), tr.Keys["y"].Len())
	}
}

func TestParseErrors(t *testing.T) {
	for _, text := range []string{
		"w x 1 0",          // too few fields
		"z x 1 0 10",       // bad kind
		"w x abc 0 10",     // bad value
		"w x 1 0 10 bad=q", // bad attribute
	} {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) succeeded", text)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	tr, err := Parse(sampleTrace)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	tr2, err := Parse(tr.String())
	if err != nil {
		t.Fatalf("re-Parse: %v", err)
	}
	if tr2.Len() != tr.Len() || len(tr2.Keys) != len(tr.Keys) {
		t.Errorf("round trip changed shape: %d/%d keys %d/%d ops",
			len(tr2.Keys), len(tr.Keys), tr2.Len(), tr.Len())
	}
	if tr.String() != tr2.String() {
		t.Error("String not stable across round trip")
	}
}

func TestLocalityCheck(t *testing.T) {
	tr, err := Parse(sampleTrace)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	rep1 := Check(tr, 1, core.Options{})
	if rep1.Atomic() {
		t.Error("trace with stale y accepted at k=1")
	}
	failing := rep1.FailingKeys()
	if len(failing) != 1 || failing[0] != "y" {
		t.Errorf("failing keys = %v, want [y]", failing)
	}
	rep2 := Check(tr, 2, core.Options{})
	if !rep2.Atomic() {
		t.Errorf("trace rejected at k=2: %+v", rep2.Keys)
	}
}

func TestPerKeyValuesIndependent(t *testing.T) {
	// The same value on different keys must not collide.
	tr, err := Parse("w x 1 0 10; w y 1 5 15; r x 1 20 30; r y 1 25 35")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	rep := Check(tr, 1, core.Options{})
	if !rep.Atomic() {
		t.Errorf("per-key value namespaces collided: %+v", rep.Keys)
	}
}

func TestSmallestKByKey(t *testing.T) {
	tr, err := Parse(sampleTrace)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ks := SmallestKByKey(tr, core.Options{})
	if ks["x"] != 1 || ks["y"] != 2 {
		t.Errorf("SmallestKByKey = %v, want x:1 y:2", ks)
	}
}

func TestWorstK(t *testing.T) {
	tr, err := Parse(sampleTrace)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	k, key, ok := WorstK(tr, core.Options{})
	if !ok || k != 2 || key != "y" {
		t.Errorf("WorstK = %d,%q,%v; want 2,y,true", k, key, ok)
	}
}

func TestKeyWithAnomalyReported(t *testing.T) {
	tr, err := Parse("w x 1 0 10; r x 1 20 30; r y 9 0 10") // y read dangles
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	rep := Check(tr, 2, core.Options{})
	if rep.Atomic() {
		t.Error("trace with anomalous key accepted")
	}
	for _, kr := range rep.Keys {
		if kr.Key == "y" && kr.Err == nil {
			t.Error("anomalous key carries no error")
		}
	}
}

func TestGeneratedMultiKey(t *testing.T) {
	tr := New()
	for i, key := range []string{"alpha", "beta", "gamma"} {
		h := generator.KAtomic(generator.Config{
			Seed: int64(i), Ops: 30, Concurrency: 2, StalenessDepth: i,
			ForceDepth: true, ReadFraction: 0.5,
		})
		for _, op := range h.Ops {
			tr.Add(key, op)
		}
	}
	ks := SmallestKByKey(tr, core.Options{})
	for i, key := range []string{"alpha", "beta", "gamma"} {
		if ks[key] != i+1 {
			t.Errorf("key %s: k=%d, want %d", key, ks[key], i+1)
		}
	}
	k, key, ok := WorstK(tr, core.Options{})
	if !ok || k != 3 || key != "gamma" {
		t.Errorf("WorstK = %d,%q,%v; want 3,gamma,true", k, key, ok)
	}
}
