package trace

// Pluggable property checking over the streaming engine's safe-cut segments.
//
// The engine in stream.go does one parse/cut/schedule pass per trace; this
// file makes the *verdict* computed over each closed segment pluggable, so
// one ingest produces k-atomicity, Δ-atomicity, and regularity/safety
// verdicts side by side instead of three replays.
//
// Soundness rests on extending the segment-equivalence lemma (stream.go) to
// the other two properties:
//
//   - Δ-atomicity decomposes over safe cuts: smallest-Δ(H) = max over
//     segments of smallest-Δ(S), measured on the raw (pre-normalization)
//     time scale. Relaxing a read's start by Δ only dissolves "x precedes r"
//     constraints; by value-closedness the read's dictating write w is in
//     the read's own segment, and by quiescence w already follows every
//     earlier-segment operation, so a witness order for any relaxed segment
//     concatenates with the others exactly as in the k-atomicity proof —
//     relaxation past the cut removes no constraint that was not already
//     implied by "r follows w". (TestCutsPreserveSmallestDelta checks this
//     directly.)
//   - Safety and regularity are per-read and decompose exactly: writes in
//     other segments are never concurrent with a read (quiescence) and never
//     lie strictly between the read and its dictating write without at least
//     one same-segment boundary argument applying — concretely, a
//     cross-segment dictating write is the cross-boundary stale case handled
//     below, and for a same-segment dictating write every intervening write
//     is same-segment too. Per-segment offender counts therefore sum to the
//     whole-history counts. (TestCutsPreserveRegularity checks this.)
//
// Cross-boundary stale reads (value from an already-dispatched segment)
// never reach a segment verifier, so each property folds them from evidence
// gathered at drop time: k-atomicity keeps its forced-writes floor,
// Δ-atomicity gets the sound floor r.Start − cumMaxFinish[s'] (s' the first
// write-bearing segment after the value's), and regularity counts the read
// as irregular definitively (the forced writes all fall between the read and
// its dictating write) and as unsafe unless the read overlaps a write of its
// own closing window (decided by staleReadSafety, which replays the window
// through the real normalize/prepare machinery so write-shortening cannot
// skew the concurrency answer).

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"kat/internal/core"
	"kat/internal/delta"
	"kat/internal/history"
	"kat/internal/regularity"
)

// Property identifies one consistency property the streaming engine can
// verify over its safe-cut segments.
type Property uint8

const (
	// PropertyKAtomicity is the paper's bounded-version-staleness property;
	// always enabled (the engine's modes are its two forms).
	PropertyKAtomicity Property = iota
	// PropertyDelta is Δ-atomicity: bounded time staleness (smallest Δ).
	PropertyDelta
	// PropertyRegularity is Lamport safety/regularity, per-read.
	PropertyRegularity
	numProperties
)

// String returns the flag-syntax name ("k", "delta", "regularity").
func (p Property) String() string {
	switch p {
	case PropertyKAtomicity:
		return "k"
	case PropertyDelta:
		return "delta"
	case PropertyRegularity:
		return "regularity"
	}
	return fmt.Sprintf("property(%d)", uint8(p))
}

// PropertySet is a bitmask of enabled properties. The zero value means
// k-atomicity only (the engine's historical behavior); PropertyKAtomicity
// is implicitly always enabled.
type PropertySet uint8

const (
	PropertySetK          PropertySet = 1 << PropertyKAtomicity
	PropertySetDelta      PropertySet = 1 << PropertyDelta
	PropertySetRegularity PropertySet = 1 << PropertyRegularity
	PropertySetAll                    = PropertySetK | PropertySetDelta | PropertySetRegularity
)

// Has reports whether the set enables p. K-atomicity is always enabled.
func (s PropertySet) Has(p Property) bool {
	return p == PropertyKAtomicity || s&(1<<p) != 0
}

// Names returns the enabled property names in canonical order.
func (s PropertySet) Names() []string {
	var out []string
	for p := PropertyKAtomicity; p < numProperties; p++ {
		if s.Has(p) {
			out = append(out, p.String())
		}
	}
	return out
}

// String renders the set in -properties flag syntax.
func (s PropertySet) String() string { return strings.Join(s.Names(), ",") }

// ParseProperties parses a comma-separated property list ("k,delta,
// regularity"); names are case-insensitive and k is implied. An empty
// string selects k only.
func ParseProperties(list string) (PropertySet, error) {
	var s PropertySet
	for _, name := range strings.Split(list, ",") {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "", "k":
			s |= PropertySetK
		case "delta", "Δ":
			s |= PropertySetDelta
		case "regularity", "regular", "safety":
			s |= PropertySetRegularity
		default:
			return 0, fmt.Errorf("trace: unknown property %q (want k, delta, regularity)", strings.TrimSpace(name))
		}
	}
	return s, nil
}

// PropertyVerdict is one property's verdict over a single verified segment
// and, via the checker's Fold, a key's accumulated verdict across segments.
// Fields not belonging to the verdict's Property stay zero.
type PropertyVerdict struct {
	// Property says which checker produced the verdict.
	Property Property
	// Atomic is the fixed-k verdict (k-atomicity checker, check mode).
	Atomic bool
	// K is the smallest k (k-atomicity checker, smallest-k mode).
	K int
	// Delta is the smallest Δ (Δ-atomicity checker), on the input time scale.
	Delta int64
	// UnsafeReads and IrregularReads count reads violating Lamport safety
	// and regularity (regularity checker).
	UnsafeReads    int
	IrregularReads int
	// Saturated reports that a cross-boundary stale read reduced K or Delta
	// to a lower-bound floor.
	Saturated bool
}

// staleReadEvidence is what the engine knows about a cross-boundary stale
// read at the moment it is dropped from its closing window.
type staleReadEvidence struct {
	// forcedWrites counts the writes closed between the read's dictating
	// segment and the read — every one of them forced between the dictating
	// write and the read in any valid total order.
	forcedWrites int
	// deltaFloor is a sound lower bound on the key's smallest Δ implied by
	// the read (see the package comment above).
	deltaFloor int64
	// safe reports whether the read overlaps (post-normalization) at least
	// one write of its own closing window — the only writes that can be
	// concurrent with it.
	safe bool
}

// PropertyChecker computes one property over closed safe-cut segments and
// folds per-segment verdicts into a per-key one.
type PropertyChecker interface {
	// Property identifies the checker.
	Property() Property
	// CheckSegment computes the property's verdict over one closed segment.
	// It runs on a verification worker and MUST NOT mutate h or its
	// operations: the k-atomicity checker runs last in the same pass and
	// normalizes the buffer in place, so every other checker sees (and must
	// preserve) the raw input timestamps.
	CheckSegment(c *core.Ctx, h *history.History, opts core.Options) (PropertyVerdict, error)
	// Fold merges a segment verdict into the key's accumulated verdict.
	// Folds must be commutative and associative: segments land in whatever
	// order the pool finishes them.
	Fold(acc *PropertyVerdict, seg PropertyVerdict)
	// FoldStale accounts a cross-boundary stale read, which never reaches a
	// segment verifier.
	FoldStale(acc *PropertyVerdict, ev staleReadEvidence)
}

// checkersFor builds the engine's checker slice: k-atomicity first (the
// engine's own mode), then any extra properties in canonical order.
func checkersFor(mode streamMode, k int, set PropertySet) []PropertyChecker {
	out := []PropertyChecker{kAtomicityChecker{mode: mode, k: k}}
	if set.Has(PropertyDelta) {
		out = append(out, deltaChecker{})
	}
	if set.Has(PropertyRegularity) {
		out = append(out, regularityChecker{})
	}
	return out
}

// kAtomicityChecker is the existing engine verdict behind the interface:
// fixed-k in check mode, smallest-k otherwise.
type kAtomicityChecker struct {
	mode streamMode
	k    int
}

func (kAtomicityChecker) Property() Property { return PropertyKAtomicity }

func (kc kAtomicityChecker) CheckSegment(c *core.Ctx, h *history.History, opts core.Options) (PropertyVerdict, error) {
	pv := PropertyVerdict{Property: PropertyKAtomicity, Atomic: true}
	if kc.mode == modeCheck {
		rep, err := c.CheckOwned(h, kc.k, opts)
		pv.Atomic = rep.Atomic
		return pv, err
	}
	k, err := c.SmallestKOwned(h, opts)
	pv.K = k
	return pv, err
}

func (kAtomicityChecker) Fold(acc *PropertyVerdict, seg PropertyVerdict) {
	acc.Atomic = acc.Atomic && seg.Atomic
	if seg.K > acc.K {
		acc.K = seg.K
	}
}

func (kc kAtomicityChecker) FoldStale(acc *PropertyVerdict, ev staleReadEvidence) {
	if kc.mode == modeCheck {
		// forcedWrites >= threshold == k, so staleness > k: definitive.
		acc.Atomic = false
		return
	}
	acc.Saturated = true
	if ev.forcedWrites+1 > acc.K {
		acc.K = ev.forcedWrites + 1
	}
}

// deltaChecker computes each segment's smallest Δ; the fold is max, per the
// Δ decomposition lemma in the package comment.
type deltaChecker struct{}

func (deltaChecker) Property() Property { return PropertyDelta }

func (deltaChecker) CheckSegment(_ *core.Ctx, h *history.History, _ core.Options) (PropertyVerdict, error) {
	// delta.Smallest clones before relaxing, so the segment buffer keeps its
	// raw timestamps for the checkers that follow.
	d, err := delta.Smallest(h)
	return PropertyVerdict{Property: PropertyDelta, Atomic: true, Delta: d}, err
}

func (deltaChecker) Fold(acc *PropertyVerdict, seg PropertyVerdict) {
	if seg.Delta > acc.Delta {
		acc.Delta = seg.Delta
	}
}

func (deltaChecker) FoldStale(acc *PropertyVerdict, ev staleReadEvidence) {
	acc.Saturated = true
	if ev.deltaFloor > acc.Delta {
		acc.Delta = ev.deltaFloor
	}
}

// regularityChecker counts each segment's safety/regularity offenders; the
// fold is a sum, per the per-read decomposition in the package comment.
type regularityChecker struct{}

func (regularityChecker) Property() Property { return PropertyRegularity }

func (regularityChecker) CheckSegment(_ *core.Ctx, h *history.History, _ core.Options) (PropertyVerdict, error) {
	pv := PropertyVerdict{Property: PropertyRegularity, Atomic: true}
	// Clone (Normalize copies) and renumber IDs by position so normalization
	// tie-breaking matches what the offline checker sees on the whole key
	// history: segment ops keep their arrival order, and window-local IDs
	// may collide after merges.
	cp := &history.History{Ops: append([]history.Operation(nil), h.Ops...)}
	for i := range cp.Ops {
		cp.Ops[i].ID = i
	}
	p, err := history.Prepare(history.NormalizeInPlace(cp))
	if err != nil {
		return pv, err
	}
	v := regularity.Check(p)
	pv.UnsafeReads = len(v.UnsafeReads)
	pv.IrregularReads = len(v.IrregularReads)
	return pv, nil
}

func (regularityChecker) Fold(acc *PropertyVerdict, seg PropertyVerdict) {
	acc.UnsafeReads += seg.UnsafeReads
	acc.IrregularReads += seg.IrregularReads
}

func (regularityChecker) FoldStale(acc *PropertyVerdict, ev staleReadEvidence) {
	// The forced writes all fall between the read and its (cross-boundary)
	// dictating write, so the read is definitively irregular; it is unsafe
	// unless it overlaps a write of its own closing window.
	acc.IrregularReads++
	if !ev.safe {
		acc.UnsafeReads++
	}
}

// staleReadSafety decides, for each dropped cross-boundary read, whether the
// read is SAFE: concurrent — in the normalized sense the offline checker
// uses, where writes may be shortened to just before their first dictated
// read's finish — with at least one write of its closing window. Writes of
// any other segment finish before the window's reads start (quiescence plus
// the arrival-order invariant), so the window is the whole question.
//
// Rather than re-deriving normalize's shortening and tie-break rules here, a
// synthetic history replays them: the window's kept operations, the dropped
// reads, one synthetic write per distinct dropped value, and one extra
// synthetic "fencepost" write, all placed strictly before the window origin.
// Each dropped read then has a dictating write that precedes everything, and
// the fencepost write sits between that write and the read, so the read is
// definitively irregular in the synthetic history — which makes its
// synthetic safety verdict exactly "concurrent with some window write".
// The per-op Client field (informational, untouched by normalize/prepare)
// carries each read's identity through the sort.
func staleReadSafety(kept, dropped []history.Operation) []bool {
	safe := make([]bool, len(dropped))
	// Window origin over every operation involved.
	origin := int64(math.MaxInt64)
	for _, op := range kept {
		origin = min(origin, op.Start)
	}
	for _, op := range dropped {
		origin = min(origin, op.Start)
	}
	// Distinct dropped values, and every value in play (synthetic writes
	// must not collide with window writes).
	vals := make(map[int64]bool, len(dropped))
	used := make(map[int64]bool, len(kept)+len(dropped)+1)
	for _, op := range kept {
		used[op.Value] = true
	}
	for _, op := range dropped {
		used[op.Value] = true
		vals[op.Value] = true
	}
	fence := int64(0)
	for used[fence] {
		fence++
	}
	nsynth := len(vals) + 1
	if origin < math.MinInt64+2*int64(nsynth)+2 {
		// No room below the origin to place synthetic writes (timestamps at
		// the very bottom of int64). Fall back to the raw-interval scan:
		// only exactly-touching shortened writes could disagree, and traces
		// down here are already outside any realistic clock domain.
		for i, r := range dropped {
			for _, op := range kept {
				if op.IsWrite() && op.ConcurrentWith(r) {
					safe[i] = true
					break
				}
			}
		}
		return safe
	}
	synth := make([]history.Operation, 0, nsynth+len(kept)+len(dropped))
	t := origin - 2*int64(nsynth)
	valOrder := make([]int64, 0, len(vals))
	for v := range vals {
		valOrder = append(valOrder, v)
	}
	sort.Slice(valOrder, func(i, j int) bool { return valOrder[i] < valOrder[j] })
	for _, v := range valOrder {
		synth = append(synth, history.Operation{Kind: history.KindWrite, Value: v, Start: t, Finish: t + 1})
		t += 2
	}
	// Fencepost write: follows every synthetic dictating write, precedes the
	// window, read by nobody.
	synth = append(synth, history.Operation{Kind: history.KindWrite, Value: fence, Start: t, Finish: t + 1})
	base := len(synth)
	synth = append(synth, kept...)
	synth = append(synth, dropped...)
	for i := range synth {
		synth[i].ID = i
		synth[i].Client = i
	}
	p, err := history.Prepare(history.NormalizeInPlace(&history.History{Ops: synth}))
	if err != nil {
		// The window itself carries an anomaly (duplicate value, dangling
		// read); the key's error verdict dominates any safety count.
		return safe
	}
	unsafeAt := make(map[int]bool, len(p.H.Ops))
	for _, r := range regularity.Check(p).UnsafeReads {
		unsafeAt[p.Op(r).Client] = true
	}
	for i := range dropped {
		safe[i] = !unsafeAt[base+len(kept)+i]
	}
	return safe
}
