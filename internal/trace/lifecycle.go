package trace

// Keyspace lifecycle: quiescent-key retirement and epoch-windowed verdicts.
//
// The engine in stream.go keeps per-key state for as long as the key exists:
// the value index, the cumulative write counts, and the keyState itself are
// never freed, so a churning keyspace (keys born, active briefly, then
// abandoned) grows live heap without bound even though every individual
// window closes. This file bounds that growth.
//
// Retirement. When a key has been quiescent past the safe-cut horizon for at
// least StreamOptions.RetireTTL trace-time units — measured against the
// global ingest watermark, the largest operation start time seen on any key —
// a retirement sweep commits the key's final quiescent cut, dispatches
// everything it still holds, and once the last in-flight segment verdict
// folds in, collapses the key to a compact retiredKey record (final
// per-property verdict, op count, committed cut) and frees everything else:
// open window, deque, value index, cumulative counts, the keyState itself.
// A later operation for a retired key transparently re-admits it: the
// retired record seeds the fresh keyState's verdict accumulators (sound
// because every property fold is commutative and associative — max for
// smallest-k and smallest-Δ, AND for fixed-k, sums for regularity — so
// carrying the folded floor forward and folding new segments into it equals
// folding all segments into one accumulator), and the committed cut carries
// forward so the arrival-order invariant keeps rejecting operations that
// start at or before it.
//
// Soundness. Retirement commits a quiescent cut the never-retired run might
// have deferred (the open window may be below MinSegmentOps), but the
// segment-equivalence lemma (stream.go) holds for ANY subset of safe cuts,
// so the extra cut is verdict-neutral. What retirement does tighten is the
// arrival-order tolerance: an operation arriving more than RetireTTL of
// trace time after every operation of its key — but starting at or before
// the retirement cut — is rejected with ErrOutOfOrder where the
// never-retired run would have admitted it into the still-open window.
// RetireTTL is therefore exactly the cross-key start-time skew the ingest
// order is allowed; an operation log sorted by invocation time has zero skew
// and is unaffected for any TTL. Retirement also frees the value index, so
// re-admitted lifetimes must write fresh values; a duplicate of a retired
// value goes undetected rather than erroring (the same trade MaxBufferedOps
// already documents for unbounded value indexes).
// FuzzRetirementEquivalence drives both runs over random retirement points
// and requires identical per-key, per-property verdicts.
//
// Epochs. With StreamOptions.EpochLength set, every segment verdict also
// folds into the summary of the epoch its cut time falls in (epoch N covers
// trace time [N*len, (N+1)*len)), so an infinite stream answers "was the
// last hour k-atomic" without retaining per-key state per window. Epoch
// attribution happens at quiescent cuts — the only instants a verdict
// exists — and summaries are monotone aggregates, so late-landing verdicts
// fold in regardless of worker scheduling. At most RetainEpochs summaries
// are kept; older ones fold into a single cumulative aggregate.

import (
	"math"
	"sort"
	"sync"
)

// DefaultRetireSweepOps is the per-shard operation interval between
// retirement sweeps when StreamOptions.RetireSweepOps is zero: frequent
// enough that an idle key outlives its TTL by at most a few thousand
// operations of shard traffic, rare enough that the O(shard keys) scan
// amortizes to noise.
const DefaultRetireSweepOps = 4096

// DefaultRetainEpochs caps retained epoch summaries when
// StreamOptions.RetainEpochs is zero. Each summary is a few dozen bytes, so
// the default keeps days of hourly epochs while still bounding an
// adversarial tiny-epoch configuration.
const DefaultRetainEpochs = 1024

// retiredKey is the compact residue of a retired key: everything needed to
// report its final verdict and to seed a re-admitted lifetime. ~100 bytes
// versus the keyState's maps and buffers.
type retiredKey struct {
	ops             int
	maxClosedFinish int64
	props           []PropertyVerdict
	err             error
}

// RetiredSummary aggregates the retired keys of a session (Session.
// RetiredSummary). Keys/Ops cover currently retired keys (re-admission
// moves a key back out); Retirements and Readmissions are lifetime event
// counts.
type RetiredSummary struct {
	// Keys counts currently retired keys; Ops their folded operations.
	Keys int64 `json:"keys"`
	Ops  int64 `json:"ops,omitempty"`
	// Retirements and Readmissions count lifetime retire / re-admit events.
	Retirements  int64 `json:"retirements,omitempty"`
	Readmissions int64 `json:"readmissions,omitempty"`
	// MaxK / MaxDelta are the worst smallest-k and smallest-Δ folded into any
	// currently retired key; UnsafeReads / IrregularReads and Errors sum over
	// them.
	MaxK           int   `json:"maxK,omitempty"`
	MaxDelta       int64 `json:"maxDelta,omitempty"`
	UnsafeReads    int64 `json:"unsafeReads,omitempty"`
	IrregularReads int64 `json:"irregularReads,omitempty"`
	Errors         int64 `json:"errors,omitempty"`
}

// EpochStats is one epoch window's verdict summary (Session.Epochs). Epoch N
// covers trace time [N*EpochLength, (N+1)*EpochLength); verdicts attribute
// to the epoch their segment's quiescent cut falls in, stale-read floors to
// the epoch of the read's start.
type EpochStats struct {
	// Epoch is the window index; for the Folded aggregate it is the highest
	// epoch folded in.
	Epoch int64 `json:"epoch"`
	// Folded marks the cumulative aggregate of epochs evicted past
	// RetainEpochs.
	Folded bool `json:"folded,omitempty"`
	// Ops counts operations whose verdicts landed in this epoch (verified
	// segment operations plus dropped stale reads); Segments counts verified
	// segments.
	Ops      int64 `json:"ops,omitempty"`
	Segments int64 `json:"segments,omitempty"`
	// StaleReads counts cross-boundary stale reads folded into this epoch.
	StaleReads int64 `json:"staleReads,omitempty"`
	// MaxK / MaxDelta are the worst per-segment smallest-k and smallest-Δ
	// (smallest-k sessions); Violations counts non-atomic segments and
	// definitive stale violations (fixed-k sessions).
	MaxK       int   `json:"maxK,omitempty"`
	MaxDelta   int64 `json:"maxDelta,omitempty"`
	Violations int64 `json:"violations,omitempty"`
	// UnsafeReads / IrregularReads sum the regularity property's offenders;
	// Errors counts segments whose verification erred.
	UnsafeReads    int64 `json:"unsafeReads,omitempty"`
	IrregularReads int64 `json:"irregularReads,omitempty"`
	Errors         int64 `json:"errors,omitempty"`
}

// foldInto merges src into dst (commutative sums and maxes; Epoch keeps the
// maximum so a folded aggregate reports the newest epoch it covers).
func (dst *EpochStats) foldInto(src *EpochStats) {
	if src.Epoch > dst.Epoch {
		dst.Epoch = src.Epoch
	}
	dst.Ops += src.Ops
	dst.Segments += src.Segments
	dst.StaleReads += src.StaleReads
	if src.MaxK > dst.MaxK {
		dst.MaxK = src.MaxK
	}
	if src.MaxDelta > dst.MaxDelta {
		dst.MaxDelta = src.MaxDelta
	}
	dst.Violations += src.Violations
	dst.UnsafeReads += src.UnsafeReads
	dst.IrregularReads += src.IrregularReads
	dst.Errors += src.Errors
}

// epochTracker owns the per-epoch summaries; a mutex suffices because folds
// happen once per segment verdict, not per operation.
type epochTracker struct {
	mu     sync.Mutex
	epochs map[int64]*EpochStats
	folded *EpochStats // aggregate of epochs evicted past the retain cap
}

// watermark is the global ingest high-water mark: the largest operation
// start time routed into any shard, or math.MinInt64 before any operation.
func (e *engine) watermark() int64 {
	wm := int64(math.MinInt64)
	for _, sh := range e.shards {
		if v := sh.maxStart.Load(); v > wm {
			wm = v
		}
	}
	return wm
}

// epochOf maps a trace time to its epoch index (floor division, exact for
// negative times).
func (e *engine) epochOf(t int64) int64 {
	d := t / e.epochLen
	if t%e.epochLen != 0 && t < 0 {
		d--
	}
	return d
}

// foldEpoch applies fn to the summary of epoch ep, creating it (and evicting
// past the retain cap) as needed. Late folds into an already-evicted epoch
// land in the cumulative aggregate.
func (e *engine) foldEpoch(ep int64, fn func(*EpochStats)) {
	if e.epochLen <= 0 {
		return
	}
	t := &e.epochT
	t.mu.Lock()
	defer t.mu.Unlock()
	es := t.epochs[ep]
	if es == nil {
		if t.folded != nil && ep <= t.folded.Epoch {
			fn(t.folded)
			return
		}
		es = &EpochStats{Epoch: ep}
		t.epochs[ep] = es
		for len(t.epochs) > e.retainEpochs {
			oldest := int64(math.MaxInt64)
			for k := range t.epochs {
				if k < oldest {
					oldest = k
				}
			}
			if t.folded == nil {
				t.folded = &EpochStats{Epoch: math.MinInt64, Folded: true}
			}
			t.folded.foldInto(t.epochs[oldest])
			delete(t.epochs, oldest)
			es = t.epochs[ep] // may have just been evicted
		}
		if es == nil { // the new epoch itself was the oldest
			fn(t.folded)
			return
		}
	}
	fn(es)
}

// maybeSweep is the ingest-path retirement trigger: every RetireSweepOps
// operations routed into a shard, sweep it. The caller owns the shard
// (ingest lock or the single reader-driven goroutine).
func (e *engine) maybeSweep(sh *ingestShard) error {
	sh.sinceSweep++
	if sh.sinceSweep < e.sweepEvery {
		return nil
	}
	sh.sinceSweep = 0
	return e.sweepShard(sh, e.retireTTL, e.sweepWatermark(sh))
}

// sweepWatermark is the idleness reference for a sweep of sh: the global
// ingest watermark, capped by the shard's batch floor (operations fed in the
// same batch arrived simultaneously, so they say nothing about how long a
// key has been idle — see ingestShard.sweepWM).
func (e *engine) sweepWatermark(sh *ingestShard) int64 {
	wm := e.watermark()
	if sh.sweepWM < wm {
		wm = sh.sweepWM
	}
	return wm
}

// maybeSweepAll is the cold-shard retirement trigger. The ingest-path sweep
// in maybeSweep only ever visits the shard receiving the operation, so a
// shard whose keys all went quiescent — no traffic at all — would never be
// swept and its keys never retired. Session entry points and the
// reader-driven loops count every operation here, and every
// RetireSweepOps*shards operations one pass sweeps every shard. wm is the
// idleness reference: the watermark before the counted operations arrived.
// lock says whether to take the shard locks (sessions) or the caller owns
// every shard (the single goroutine of a reader-driven run).
func (e *engine) maybeSweepAll(n int64, wm int64, lock bool) error {
	if e.retireTTL <= 0 || wm == math.MinInt64 {
		return nil
	}
	c := e.sinceSweepAll.Add(n)
	period := int64(e.sweepEvery) * int64(len(e.shards))
	if c < period || !e.sinceSweepAll.CompareAndSwap(c, 0) {
		return nil // not due, or a concurrent feeder won the pass
	}
	var firstErr error
	for _, sh := range e.shards {
		if lock {
			sh.mu.Lock()
		}
		err := e.sweepShard(sh, e.retireTTL, wm)
		if lock {
			sh.mu.Unlock()
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// sweepShard retires every key of sh that has been idle — no operation
// within ttl of the global watermark — and finalizes keys whose earlier
// retirement was waiting out in-flight verification. The caller owns the
// shard. Retirement is two-phase because workers never take shard locks
// (the checkpoint freeze invariant): the sweep commits the final cut and
// dispatches under the shard, and a later sweep (or the same one, when
// verification already drained) folds the verdict and frees the state.
func (e *engine) sweepShard(sh *ingestShard, ttl, wm int64) error {
	if ttl <= 0 {
		ttl = 1
	}
	if wm == math.MinInt64 {
		return nil
	}
	var firstErr error
	for _, ks := range sh.keys {
		if ks.retiring {
			e.finalizeRetire(sh, ks)
			continue
		}
		last := ks.maxClosedFinish
		if ks.totalOpen() > 0 && ks.openMaxFinish > last {
			last = ks.openMaxFinish
		}
		// wm-last is computed only when last < wm; an overflow wraps
		// negative and conservatively skips the key.
		if last >= wm || wm-last < ttl {
			continue
		}
		if err := e.flush(ks); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ks.retiring = true
		e.retirements.Add(1)
		e.finalizeRetire(sh, ks)
	}
	return firstErr
}

// finalizeRetire completes phase two of a retirement: once the key's last
// in-flight segment verdict has folded, collapse it to a retiredKey and
// free the keyState. The caller owns the shard. The inflight load
// synchronizes with the worker's decrement, so the verdict fields read
// below include every fold.
func (e *engine) finalizeRetire(sh *ingestShard, ks *keyState) {
	if ks.inflight.Load() != 0 {
		return
	}
	if ks.totalOpen() > 0 || len(ks.deque) > 0 {
		// An operation re-opened the window after the retire flush; the key
		// is live again.
		ks.retiring = false
		return
	}
	ks.mu.Lock()
	rk := &retiredKey{
		ops:             ks.ops,
		maxClosedFinish: ks.maxClosedFinish,
		props:           append([]PropertyVerdict(nil), ks.props...),
		err:             ks.err,
	}
	ks.mu.Unlock()
	if sh.retired == nil {
		sh.retired = make(map[string]*retiredKey)
	}
	sh.retired[ks.key] = rk
	delete(sh.keys, ks.key)
	e.retiredNow.Add(1)
	e.retiredOps.Add(int64(rk.ops))
}

// readmit seeds a fresh keyState from a retired record: the carried floor.
// Every property fold is commutative and associative, so starting the new
// lifetime's accumulator at the retired verdict is exactly equivalent to
// folding all lifetimes' segments into one accumulator. The committed cut
// carries forward so the arrival-order invariant still rejects operations
// at or before it; the retired error predates every new segment, so its
// seq is set below any the new lifetime can produce (first error wins by
// lowest seq).
func (e *engine) readmit(ks *keyState, rk *retiredKey) {
	ks.ops = rk.ops
	ks.closedAny = true
	ks.maxClosedFinish = rk.maxClosedFinish
	copy(ks.props, rk.props)
	ks.err = rk.err
	if ks.err != nil {
		ks.errSeq = math.MinInt
	}
	bad := ks.err != nil || !ks.props[0].Atomic
	if e.mode == modeCheck && len(e.checkers) == 1 {
		ks.settled.Store(bad)
	} else {
		ks.settled.Store(ks.err != nil)
	}
	e.retiredNow.Add(-1)
	e.retiredOps.Add(int64(-rk.ops))
	e.readmissions.Add(1)
}

// propsFromCheckpoint rebuilds a per-property accumulator slice in checker
// order from checkpointed verdict fields (the k verdict rides the legacy
// Atomic/MaxK/Saturated fields, extras ride PropState records).
func (e *engine) propsFromCheckpoint(atomicK bool, maxK int, sat bool, extras []PropState) []PropertyVerdict {
	props := make([]PropertyVerdict, len(e.checkers))
	for i, ck := range e.checkers {
		props[i] = PropertyVerdict{Property: ck.Property(), Atomic: true}
	}
	props[0].Atomic = atomicK
	props[0].K = maxK
	props[0].Saturated = sat
	for _, ps := range extras {
		for i := range props {
			if props[i].Property.String() != ps.Property {
				continue
			}
			props[i].Delta = ps.Delta
			props[i].UnsafeReads = ps.Unsafe
			props[i].IrregularReads = ps.Irregular
			props[i].Saturated = ps.Saturated
			break
		}
	}
	return props
}

// retiredVerdictOf is keyVerdictOf for a retired record.
func retiredVerdictOf(key string, rk *retiredKey) KeyVerdict {
	kv := KeyVerdict{
		Key:        key,
		Ops:        rk.ops,
		Properties: PropertySetK,
		Retired:    true,
		Err:        rk.err,
	}
	applyPropVerdicts(&kv, rk.props, rk.err)
	return kv
}

// applyPropVerdicts fills a KeyVerdict's per-property fields from an
// accumulator slice (shared by the live and retired verdict builders).
func applyPropVerdicts(kv *KeyVerdict, props []PropertyVerdict, err error) {
	for _, pv := range props {
		switch pv.Property {
		case PropertyKAtomicity:
			kv.Atomic = err == nil && pv.Atomic
			kv.SmallestK = pv.K
			kv.Saturated = pv.Saturated
		case PropertyDelta:
			kv.Properties |= PropertySetDelta
			kv.SmallestDelta = pv.Delta
			kv.DeltaSaturated = pv.Saturated
		case PropertyRegularity:
			kv.Properties |= PropertySetRegularity
			kv.UnsafeReads = pv.UnsafeReads
			kv.IrregularReads = pv.IrregularReads
		}
	}
}

// RetireIdle sweeps every shard, retiring keys idle for at least minIdle
// trace-time units against the ingest watermark (minIdle <= 0 retires every
// strictly idle key — the aggressive memory-pressure form). It works whether
// or not StreamOptions.RetireTTL enabled automatic sweeps. Spill I/O errors
// surface like ingest errors (sticky).
func (s *Session) RetireIdle(minIdle int64) error {
	if s.flushed.Load() {
		return nil
	}
	var firstErr error
	for _, sh := range s.e.shards {
		sh.mu.Lock()
		err := s.e.sweepShard(sh, minIdle, s.e.watermark())
		sh.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		s.err.CompareAndSwap(nil, &stickyIngestErr{firstErr})
	}
	return firstErr
}

// sweepAllSticky runs the cold-shard sweep pass for a session feeder that
// just appended n operations, making any spill I/O error sticky the way
// ingest errors are. The caller must hold no shard lock.
func (s *Session) sweepAllSticky(n int64, wm int64) error {
	if s.flushed.Load() {
		return nil
	}
	err := s.e.maybeSweepAll(n, wm, true)
	if err != nil {
		s.err.CompareAndSwap(nil, &stickyIngestErr{err})
	}
	return err
}

// SpillOpenWindows spills every key's in-memory open-window tail to the
// session's BlobStore regardless of SpillThresholdOps — the memory-pressure
// relief valve. No-op without a store.
func (s *Session) SpillOpenWindows() error {
	if s.e.store == nil || s.flushed.Load() {
		return nil
	}
	var firstErr error
	for _, sh := range s.e.shards {
		sh.mu.Lock()
		for _, ks := range sh.keys {
			if err := s.e.spillOpenTail(ks); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		sh.mu.Unlock()
	}
	if firstErr != nil {
		s.err.CompareAndSwap(nil, &stickyIngestErr{firstErr})
	}
	return firstErr
}

// RetiredSummary aggregates the session's retired keys. The per-key floor
// scan takes each shard lock briefly; the counters are lock-free.
func (s *Session) RetiredSummary() RetiredSummary {
	e := s.e
	sum := RetiredSummary{
		Keys:         e.retiredNow.Load(),
		Ops:          e.retiredOps.Load(),
		Retirements:  e.retirements.Load(),
		Readmissions: e.readmissions.Load(),
	}
	e.eachShardLocked(func(sh *ingestShard) {
		for _, rk := range sh.retired {
			if rk.err != nil {
				sum.Errors++
			}
			for _, pv := range rk.props {
				switch pv.Property {
				case PropertyKAtomicity:
					if pv.K > sum.MaxK {
						sum.MaxK = pv.K
					}
				case PropertyDelta:
					if pv.Delta > sum.MaxDelta {
						sum.MaxDelta = pv.Delta
					}
				case PropertyRegularity:
					sum.UnsafeReads += int64(pv.UnsafeReads)
					sum.IrregularReads += int64(pv.IrregularReads)
				}
			}
		}
	})
	return sum
}

// RetiredKeys returns the number of currently retired keys. Lock-free.
func (s *Session) RetiredKeys() int64 { return s.e.retiredNow.Load() }

// Watermark returns the global ingest high-water mark (largest operation
// start seen), or math.MinInt64 before any operation. Lock-free.
func (s *Session) Watermark() int64 { return s.e.watermark() }

// CurrentEpoch returns the epoch index the ingest watermark falls in; ok is
// false when epochs are disabled or no operation has arrived.
func (s *Session) CurrentEpoch() (int64, bool) {
	if s.e.epochLen <= 0 {
		return 0, false
	}
	wm := s.e.watermark()
	if wm == math.MinInt64 {
		return 0, false
	}
	return s.e.epochOf(wm), true
}

// Epochs returns every retained epoch summary, oldest first, preceded by the
// cumulative aggregate of evicted epochs if any. Empty when epochs are
// disabled.
func (s *Session) Epochs() []EpochStats {
	t := &s.e.epochT
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]EpochStats, 0, len(t.epochs)+1)
	if t.folded != nil {
		out = append(out, *t.folded)
	}
	n := len(out)
	for _, es := range t.epochs {
		out = append(out, *es)
	}
	live := out[n:]
	sort.Slice(live, func(i, j int) bool { return live[i].Epoch < live[j].Epoch })
	return out
}

// EpochSummary returns one epoch's summary. For an epoch already evicted
// into the cumulative aggregate, the aggregate is returned (Folded set). ok
// is false when epochs are disabled or the epoch has no folded verdicts yet.
func (s *Session) EpochSummary(epoch int64) (EpochStats, bool) {
	if s.e.epochLen <= 0 {
		return EpochStats{}, false
	}
	t := &s.e.epochT
	t.mu.Lock()
	defer t.mu.Unlock()
	if es, ok := t.epochs[epoch]; ok {
		return *es, true
	}
	if t.folded != nil && epoch <= t.folded.Epoch {
		return *t.folded, true
	}
	return EpochStats{}, false
}

// EpochLength returns the session's epoch window length in trace-time units
// (0 when epochs are disabled).
func (s *Session) EpochLength() int64 { return s.e.epochLen }
