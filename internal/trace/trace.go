// Package trace handles multi-register workloads. k-atomicity is a local
// property (Section II-B of the paper): a multi-key trace satisfies a
// consistency bound iff every per-key subhistory does, so verification
// splits the trace by key and runs the single-register algorithms on each.
//
// The text format extends the single-register one with a key column:
//
//	w <key> <value> <start> <finish> [weight=N] [client=N]
//	r <key> <value> <start> <finish> [client=N]
//
// Keys are arbitrary non-whitespace tokens. Values must be unique per key
// (they identify writes within a register), not globally.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"kat/internal/core"
	"kat/internal/history"
	"kat/internal/wire"
)

// Trace is a multi-register history: operations tagged with register keys.
type Trace struct {
	Keys map[string]*history.History
}

// New returns an empty trace.
func New() *Trace {
	return &Trace{Keys: make(map[string]*history.History)}
}

// Add appends an operation to the given key's register.
func (t *Trace) Add(key string, op history.Operation) {
	h, ok := t.Keys[key]
	if !ok {
		h = &history.History{}
		t.Keys[key] = h
	}
	op.ID = h.Len()
	h.Ops = append(h.Ops, op)
}

// Len returns the total number of operations across all keys.
func (t *Trace) Len() int {
	n := 0
	for _, h := range t.Keys {
		n += h.Len()
	}
	return n
}

// SortedKeys returns the register keys in lexicographic order.
func (t *Trace) SortedKeys() []string {
	out := make([]string, 0, len(t.Keys))
	for k := range t.Keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Parse reads a multi-register trace from the keyed text format. Lines are
// newline- or ';'-separated; '#' starts a comment. It shares the byte-level
// streaming parser with ParseStream (the seed spliced the key out,
// re-joined the rest, and ran the full single-register parser per segment,
// which built a throwaway History for every operation).
func Parse(text string) (*Trace, error) {
	return ParseReader(strings.NewReader(text))
}

// String renders the trace in the keyed text format, keys in sorted order.
func (t *Trace) String() string {
	var b strings.Builder
	for _, key := range t.SortedKeys() {
		for _, op := range t.Keys[key].Ops {
			single := op.String()
			kind, rest, _ := strings.Cut(single, " ")
			fmt.Fprintf(&b, "%s %s %s\n", kind, key, rest)
		}
	}
	return b.String()
}

// WriteArrivalOrder renders the trace in the keyed text format ordered by
// operation start time — the arrival order of an operation log, which is
// exactly what the streaming engine requires of its input (nondecreasing
// starts per key).
func WriteArrivalOrder(w io.Writer, t *Trace) error {
	type rec struct {
		key string
		op  history.Operation
	}
	recs := make([]rec, 0, t.Len())
	for key, h := range t.Keys {
		for _, op := range h.Ops {
			recs = append(recs, rec{key, op})
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.op.Start != b.op.Start {
			return a.op.Start < b.op.Start
		}
		if a.key != b.key {
			return a.key < b.key
		}
		return a.op.ID < b.op.ID
	})
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		kind, rest, _ := strings.Cut(r.op.String(), " ")
		fmt.Fprintf(bw, "%s %s %s\n", kind, r.key, rest)
	}
	return bw.Flush()
}

// WriteWireArrivalOrder renders the trace as a binary wire stream in the
// same arrival order WriteArrivalOrder uses: frames of frameOps operations
// (a sensible default when <= 0) sharing one key dictionary, optionally
// compressed. The output feeds Session.AppendWire, kavcheck -stream, and
// binary /ingest bodies.
func WriteWireArrivalOrder(w io.Writer, t *Trace, frameOps int, compress bool) error {
	if frameOps <= 0 {
		frameOps = 512
	}
	type rec struct {
		key string
		op  history.Operation
	}
	recs := make([]rec, 0, t.Len())
	for key, h := range t.Keys {
		for _, op := range h.Ops {
			recs = append(recs, rec{key, op})
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.op.Start != b.op.Start {
			return a.op.Start < b.op.Start
		}
		if a.key != b.key {
			return a.key < b.key
		}
		return a.op.ID < b.op.ID
	})
	enc := wire.NewEncoder()
	enc.SetCompress(compress)
	var buf []byte
	for i, r := range recs {
		if err := enc.Add(r.key, r.op); err != nil {
			return err
		}
		if enc.Pending() >= frameOps || i == len(recs)-1 {
			buf = enc.AppendFrame(buf[:0])
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// KeyReport is the verification outcome for one register.
type KeyReport struct {
	Key    string
	Ops    int
	Atomic bool
	// Err records a per-key anomaly or verification failure; the key is
	// counted as not atomic when set.
	Err error
}

// Report aggregates per-key results for a bound k.
type Report struct {
	K    int
	Keys []KeyReport
}

// Atomic reports whether every register verified.
func (r Report) Atomic() bool {
	for _, kr := range r.Keys {
		if !kr.Atomic {
			return false
		}
	}
	return true
}

// FailingKeys lists keys that did not verify.
func (r Report) FailingKeys() []string {
	var out []string
	for _, kr := range r.Keys {
		if !kr.Atomic {
			out = append(out, kr.Key)
		}
	}
	return out
}

// Check verifies every register at bound k (locality: the trace is k-atomic
// iff every register is). Keys are verified sequentially with one reused
// Verifier; use CheckParallel to saturate multiple cores.
func Check(t *Trace, k int, opts core.Options) Report {
	return CheckParallel(t, k, opts, 1)
}

// CheckParallel is Check with verification fanned out over one work-stealing
// pool of (key, chunk) units. workers <= 0 uses GOMAXPROCS. Each key forks
// as a unit that prepares the register and then forks its chunk (k=1, 2) or
// safe-cut segment (k >= 3) sub-units back onto the same pool, so a skewed
// trace with one hot key still saturates every worker — idle workers steal
// chunks instead of waiting at key boundaries. Every outcome is written into
// its key-sorted slot and all cross-unit combining is commutative, so the
// Report is identical to the sequential one regardless of worker count.
func CheckParallel(t *Trace, k int, opts core.Options, workers int) Report {
	keys := t.SortedKeys()
	rep := Report{K: k, Keys: make([]KeyReport, len(keys))}
	forEachKey(keys, workers, func(c *core.Ctx, i int) {
		key := keys[i]
		h := t.Keys[key]
		kr := KeyReport{Key: key, Ops: h.Len()}
		r, err := c.Check(h, k, opts)
		if err != nil {
			kr.Err = err
		} else {
			kr.Atomic = r.Atomic
		}
		rep.Keys[i] = kr
	})
	return rep
}

// SmallestKByKey computes the smallest k per register; errors are reported
// per key (k=0 for failed keys).
func SmallestKByKey(t *Trace, opts core.Options) map[string]int {
	return SmallestKByKeyParallel(t, opts, 1)
}

// SmallestKByKeyParallel is SmallestKByKey over the shared (key, chunk)
// work-stealing pool (workers <= 0 uses GOMAXPROCS): each key's search forks
// per-segment smallest-k probes back onto the pool, so a single deep key no
// longer serializes the sweep. The result is identical to the sequential
// form for any worker count.
func SmallestKByKeyParallel(t *Trace, opts core.Options, workers int) map[string]int {
	keys := t.SortedKeys()
	results := make([]int, len(keys))
	forEachKey(keys, workers, func(c *core.Ctx, i int) {
		k, err := c.SmallestK(t.Keys[keys[i]], opts)
		if err != nil {
			k = 0
		}
		results[i] = k
	})
	out := make(map[string]int, len(keys))
	for i, key := range keys {
		out[key] = results[i]
	}
	return out
}

// forEachKey forks fn over the keys as units of one work-stealing pool:
// each unit runs with a worker-owned Verifier and may fork chunk sub-units;
// results land in disjoint slots, so output is deterministic. workers <= 0
// uses GOMAXPROCS.
func forEachKey(keys []string, workers int, fn func(c *core.Ctx, i int)) {
	if len(keys) == 0 {
		return
	}
	core.Run(workers, func(c *core.Ctx) {
		c.Fork(len(keys), fn)
	})
}

// WorstK returns the maximum smallest-k across registers (the trace-level
// staleness bound) and the key exhibiting it. Keys that fail verification
// are skipped; ok is false if no key verified.
func WorstK(t *Trace, opts core.Options) (k int, key string, ok bool) {
	v := core.NewVerifier()
	for cand, h := range t.Keys {
		ck, err := v.SmallestK(h, opts)
		if err != nil {
			continue
		}
		if !ok || ck > k || (ck == k && cand < key) {
			k, key, ok = ck, cand, true
		}
	}
	return k, key, ok
}
