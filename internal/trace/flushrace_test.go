package trace

// Satellite stress coverage for the Flush drain barrier: Flush sets the
// terminal flag and then takes every shard lock in index order, so any
// append that passed the lock-free gate before the flip either lands
// entirely before the drain or bounces with ErrSessionFlushed — no
// operation may land behind the barrier. This test races batch producers
// against Flush across many shard counts and checks the accounting closes
// exactly: every operation a producer was told was appended is in the final
// report, and nothing else is.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"kat/internal/core"
	"kat/internal/history"
)

func TestFlushRacingAppendBatch(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 8, 16, 64} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			t.Parallel()
			const producers = 8
			const batches = 40
			const batchOps = 25

			s := NewSmallestKSession(core.Options{}, StreamOptions{
				Workers:       2,
				MinSegmentOps: 1,
				IngestShards:  shards,
			})

			var accepted atomic.Int64
			var wg sync.WaitGroup
			start := make(chan struct{})
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					<-start
					clock := int64(0)
					val := int64(0)
					for b := 0; b < batches; b++ {
						batch := make([]KeyedOp, 0, batchOps)
						// Each producer owns its keys, so per-key arrival
						// order holds no matter how batches interleave.
						for i := 0; i < batchOps; i++ {
							key := fmt.Sprintf("p%02d-k%d", p, i%3)
							val++
							batch = append(batch, KeyedOp{Key: key, Op: history.Operation{
								Kind: history.KindWrite, Value: val,
								Start: clock, Finish: clock + 1,
							}})
							clock += 3
						}
						n, err := s.AppendBatch(batch)
						accepted.Add(int64(n))
						if err != nil {
							if !errors.Is(err, ErrSessionFlushed) {
								t.Errorf("producer %d: %v", p, err)
							}
							return
						}
					}
				}(p)
			}

			// Fire the drain into the middle of the storm.
			flushed := make(chan error, 1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				flushed <- s.Flush()
			}()
			close(start)
			if err := <-flushed; err != nil {
				t.Fatalf("Flush: %v", err)
			}

			// The barrier is down: nothing may be admitted anymore, from any
			// path.
			if _, err := s.AppendBatch([]KeyedOp{{Key: "late", Op: history.Operation{
				Kind: history.KindWrite, Value: 1, Start: 1 << 40, Finish: 1<<40 + 1,
			}}}); !errors.Is(err, ErrSessionFlushed) {
				t.Fatalf("post-flush AppendBatch: %v, want ErrSessionFlushed", err)
			}
			if err := s.Append("late", history.Operation{
				Kind: history.KindWrite, Value: 2, Start: 1 << 41, Finish: 1<<41 + 1,
			}); !errors.Is(err, ErrSessionFlushed) {
				t.Fatalf("post-flush Append: %v, want ErrSessionFlushed", err)
			}
			wg.Wait()

			// Exact accounting: the engine ingested precisely the operations
			// the producers were told were appended (no drops, nothing
			// admitted behind the barrier), and the final report covers all
			// of them.
			want := accepted.Load()
			stats := s.Stats()
			if stats.Ops != want {
				t.Fatalf("engine ingested %d ops, producers saw %d accepted", stats.Ops, want)
			}
			var reported int64
			for _, kv := range s.Snapshot() {
				reported += int64(kv.Ops)
				if kv.PendingOps != 0 {
					t.Fatalf("key %s has %d pending ops after flush", kv.Key, kv.PendingOps)
				}
				if !kv.Atomic || kv.Err != nil {
					t.Fatalf("write-only key %s not atomic: %+v", kv.Key, kv)
				}
			}
			if reported != want {
				t.Fatalf("report covers %d ops, want %d", reported, want)
			}
		})
	}
}
