package trace

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"kat/internal/core"
	"kat/internal/history"
)

// memStore is an in-memory BlobStore for spill tests.
type memStore struct {
	mu    sync.Mutex
	next  uint64
	blobs map[uint64][]byte
	puts  int
	fail  error // when set, Put/Get fail with it
}

func newMemStore() *memStore { return &memStore{blobs: map[uint64][]byte{}} }

func (m *memStore) Put(data []byte) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fail != nil {
		return 0, m.fail
	}
	m.next++
	m.blobs[m.next] = append([]byte(nil), data...)
	m.puts++
	return m.next, nil
}

func (m *memStore) Get(id uint64) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fail != nil {
		return nil, m.fail
	}
	data, ok := m.blobs[id]
	if !ok {
		return nil, fmt.Errorf("memStore: no blob %d", id)
	}
	return data, nil
}

func (m *memStore) Del(id uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.blobs, id)
	return nil
}

func (m *memStore) live() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.blobs)
}

// captureLogger is a ShardLogger that accumulates per-shard payloads.
type captureLogger struct {
	mu      sync.Mutex
	shards  map[int][]byte
	commits int
	fail    error
}

func newCaptureLogger() *captureLogger { return &captureLogger{shards: map[int][]byte{}} }

func (c *captureLogger) LogShardBatch(shard int, encoded []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fail != nil {
		return c.fail
	}
	c.shards[shard] = append(c.shards[shard], encoded...)
	return nil
}

func (c *captureLogger) Commit() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fail != nil {
		return c.fail
	}
	c.commits++
	return nil
}

// replayText concatenates the captured shards in index order — replay
// feeds keys back through hash routing, so only per-key (= per-shard
// suffix) order matters.
func (c *captureLogger) replayText(nshards int) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b bytes.Buffer
	for s := 0; s < nshards; s++ {
		b.Write(c.shards[s])
	}
	return b.String()
}

func smallestKOf(t *testing.T, text string, sopts StreamOptions) map[string]int {
	t.Helper()
	s := NewSmallestKSession(core.Options{}, sopts)
	if _, err := s.AppendTraceBatch(strings.NewReader(text)); err != nil {
		t.Fatalf("feed: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	m, _ := s.SmallestKByKey()
	return m
}

// TestShardLoggerReplayEquivalence checks the WAL invariant end to end at
// the session layer: replaying the logged per-shard payloads through a
// fresh session reproduces the original verdicts, across all four ingest
// paths and a different replay shard count.
func TestShardLoggerReplayEquivalence(t *testing.T) {
	text := genSessionTrace(11, 5, 120)
	base := StreamOptions{Workers: 2, MinSegmentOps: 1, IngestShards: 4}
	want := smallestKOf(t, text, base)

	feed := []struct {
		name string
		run  func(t *testing.T, s *Session)
	}{
		{"Append", func(t *testing.T, s *Session) { feedPerOp(t, s, text) }},
		{"AppendTrace", func(t *testing.T, s *Session) {
			if _, err := s.AppendTrace(strings.NewReader(text)); err != nil {
				t.Fatal(err)
			}
		}},
		{"AppendTraceBatch", func(t *testing.T, s *Session) {
			if _, err := s.AppendTraceBatch(strings.NewReader(text)); err != nil {
				t.Fatal(err)
			}
		}},
		{"AppendBatch", func(t *testing.T, s *Session) {
			var kops []KeyedOp
			err := ParseStream(strings.NewReader(text), func(key string, op history.Operation) error {
				kops = append(kops, KeyedOp{Key: key, Op: op})
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for len(kops) > 0 {
				n := min(37, len(kops))
				if _, err := s.AppendBatch(kops[:n]); err != nil {
					t.Fatal(err)
				}
				kops = kops[n:]
			}
		}},
	}
	for _, f := range feed {
		t.Run(f.name, func(t *testing.T) {
			logger := newCaptureLogger()
			s := NewSmallestKSession(core.Options{}, base)
			s.SetShardLogger(logger)
			f.run(t, s)
			if err := s.Flush(); err != nil {
				t.Fatalf("flush: %v", err)
			}
			got, _ := s.SmallestKByKey()
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("logged session verdicts differ: %v vs %v", got, want)
			}
			if logger.commits == 0 {
				t.Fatal("logger never committed")
			}
			// Replay into a session with a different shard count.
			replayed := smallestKOf(t, logger.replayText(s.Shards()),
				StreamOptions{Workers: 2, MinSegmentOps: 1, IngestShards: 7})
			if fmt.Sprint(replayed) != fmt.Sprint(want) {
				t.Fatalf("replayed verdicts differ: %v vs %v", replayed, want)
			}
		})
	}
}

func TestShardLoggerErrorSticky(t *testing.T) {
	logger := newCaptureLogger()
	logger.fail = errors.New("disk on fire")
	s := NewSmallestKSession(core.Options{}, StreamOptions{Workers: 1, IngestShards: 2})
	s.SetShardLogger(logger)
	err := s.Append("a", history.Operation{Kind: history.KindWrite, Value: 1, Start: 0, Finish: 1})
	if err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("append err = %v, want logger failure", err)
	}
	if err := s.Append("a", history.Operation{Kind: history.KindWrite, Value: 2, Start: 2, Finish: 3}); err == nil {
		t.Fatal("sticky error did not gate later appends")
	}
}

// TestCheckpointRestoreEquivalence cuts a trace at several points, snapshots
// the session mid-stream, restores into a fresh session (same and different
// shard counts), feeds the remainder, and requires verdicts identical to an
// uninterrupted run.
func TestCheckpointRestoreEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		text := genSessionTrace(seed, 4, 100)
		lines := strings.SplitAfter(text, "\n")
		base := StreamOptions{Workers: 2, MinSegmentOps: 1, IngestShards: 4}
		want := smallestKOf(t, text, base)
		for _, frac := range []float64{0.1, 0.5, 0.9} {
			cut := int(float64(len(lines)) * frac)
			head, tail := strings.Join(lines[:cut], ""), strings.Join(lines[cut:], "")

			s1 := NewSmallestKSession(core.Options{}, base)
			if _, err := s1.AppendTraceBatch(strings.NewReader(head)); err != nil {
				t.Fatalf("seed %d cut %v: head: %v", seed, frac, err)
			}
			froze := false
			cp, err := s1.Checkpoint(func() error { froze = true; return nil })
			if err != nil {
				t.Fatalf("seed %d cut %v: checkpoint: %v", seed, frac, err)
			}
			if !froze {
				t.Fatal("frozen callback did not run")
			}
			// s1 keeps running after the checkpoint — snapshotting must not
			// disturb it.
			if _, err := s1.AppendTraceBatch(strings.NewReader(tail)); err != nil {
				t.Fatalf("seed %d cut %v: s1 tail: %v", seed, frac, err)
			}
			if err := s1.Flush(); err != nil {
				t.Fatal(err)
			}
			if got, _ := s1.SmallestKByKey(); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("seed %d cut %v: checkpointed session drifted: %v vs %v", seed, frac, got, want)
			}

			for _, shards := range []int{4, 9} {
				s2 := NewSmallestKSession(core.Options{},
					StreamOptions{Workers: 2, MinSegmentOps: 1, IngestShards: shards})
				if err := s2.RestoreCheckpoint(cp); err != nil {
					t.Fatalf("seed %d cut %v shards %d: restore: %v", seed, frac, shards, err)
				}
				if _, err := s2.AppendTraceBatch(strings.NewReader(tail)); err != nil {
					t.Fatalf("seed %d cut %v shards %d: tail: %v", seed, frac, shards, err)
				}
				if err := s2.Flush(); err != nil {
					t.Fatal(err)
				}
				got, _ := s2.SmallestKByKey()
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("seed %d cut %v shards %d: restored verdicts differ: %v vs %v",
						seed, frac, shards, got, want)
				}
			}
		}
	}
}

func TestCheckpointRestoreGuards(t *testing.T) {
	s := NewSmallestKSession(core.Options{}, StreamOptions{Workers: 1})
	cp, err := s.Checkpoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	chk, _ := NewCheckSession(2, core.Options{}, StreamOptions{Workers: 1})
	if err := chk.RestoreCheckpoint(cp); err == nil {
		t.Fatal("mode mismatch accepted")
	}
	other := NewSmallestKSession(core.Options{}, StreamOptions{Workers: 1, Horizon: cp.Threshold + 1})
	if err := other.RestoreCheckpoint(cp); err == nil {
		t.Fatal("horizon mismatch accepted")
	}
	used := NewSmallestKSession(core.Options{}, StreamOptions{Workers: 1})
	used.Append("x", history.Operation{Kind: history.KindWrite, Value: 1, Start: 0, Finish: 1})
	if err := used.RestoreCheckpoint(cp); err == nil {
		t.Fatal("restore onto a used session accepted")
	}
}

func TestCheckpointOfFlushedSession(t *testing.T) {
	text := genSessionTrace(3, 3, 60)
	base := StreamOptions{Workers: 2, MinSegmentOps: 1}
	want := smallestKOf(t, text, base)

	s := NewSmallestKSession(core.Options{}, base)
	if _, err := s.AppendTraceBatch(strings.NewReader(text)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	cp, err := s.Checkpoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Flushed {
		t.Fatal("checkpoint of flushed session not marked Flushed")
	}
	s2 := NewSmallestKSession(core.Options{}, base)
	if err := s2.RestoreCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	if !s2.Flushed() {
		t.Fatal("restored session not flushed")
	}
	if err := s2.Append("x", history.Operation{Kind: history.KindWrite, Value: 1, Start: 0, Finish: 1}); !errors.Is(err, ErrSessionFlushed) {
		t.Fatalf("append on restored-flushed session: %v", err)
	}
	got, _ := s2.SmallestKByKey()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("restored final verdicts differ: %v vs %v", got, want)
	}
}

// TestSpillEquivalence runs the same traces with and without spill-to-disk
// at an aggressive threshold and requires identical verdicts, real spill
// traffic, and an empty store at the end.
func TestSpillEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		text := genSessionTrace(seed, 4, 150)
		base := StreamOptions{Workers: 2, MinSegmentOps: 1, IngestShards: 2}
		want := smallestKOf(t, text, base)

		store := newMemStore()
		sopts := base
		sopts.Store = store
		sopts.SpillThresholdOps = 4
		s := NewSmallestKSession(core.Options{}, sopts)
		if _, err := s.AppendTraceBatch(strings.NewReader(text)); err != nil {
			t.Fatalf("seed %d: feed: %v", seed, err)
		}
		if err := s.Flush(); err != nil {
			t.Fatalf("seed %d: flush: %v", seed, err)
		}
		got, stats := s.SmallestKByKey()
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("seed %d: spilled verdicts differ: %v vs %v", seed, got, want)
		}
		if stats.Spills == 0 || stats.OpsSpilled == 0 {
			t.Fatalf("seed %d: no spill traffic (stats %+v)", seed, stats)
		}
		if s.SpilledOps() != 0 {
			t.Fatalf("seed %d: %d ops still on disk after flush", seed, s.SpilledOps())
		}
		if store.live() != 0 {
			t.Fatalf("seed %d: %d blobs leaked", seed, store.live())
		}
	}
}

// TestSpillBoundsOpenWindow feeds one never-quiescing window and checks the
// in-memory tail stays at the threshold while the full window lands on disk.
func TestSpillBoundsOpenWindow(t *testing.T) {
	store := newMemStore()
	s := NewSmallestKSession(core.Options{}, StreamOptions{
		Workers: 1, IngestShards: 1, Store: store, SpillThresholdOps: 8,
	})
	const n = 200
	for i := 0; i < n; i++ {
		// Overlapping intervals: no quiescent instant, the window never cuts.
		op := history.Operation{Kind: history.KindWrite, Value: int64(i + 1),
			Start: int64(2 * i), Finish: int64(2*i + 3)}
		if err := s.Append("hot", op); err != nil {
			t.Fatal(err)
		}
	}
	if buf := s.BufferedOps(); buf >= n/2 {
		t.Fatalf("buffered = %d, want bounded well under %d", buf, n)
	}
	if disk := s.SpilledOps(); disk < n/2 {
		t.Fatalf("on disk = %d, want most of %d", disk, n)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	got, _ := s.SmallestKByKey()
	if got["hot"] != 1 {
		t.Fatalf("hot key k = %d, want 1", got["hot"])
	}
	if store.live() != 0 {
		t.Fatalf("%d blobs leaked", store.live())
	}
}

// TestSpillWithCheckpoint exercises both features together: a mid-stream
// checkpoint with spilled state inlines the spilled ops and restores cleanly.
func TestSpillWithCheckpoint(t *testing.T) {
	text := genSessionTrace(7, 3, 120)
	base := StreamOptions{Workers: 2, MinSegmentOps: 1, IngestShards: 2}
	want := smallestKOf(t, text, base)

	lines := strings.SplitAfter(text, "\n")
	cut := len(lines) / 2
	head, tail := strings.Join(lines[:cut], ""), strings.Join(lines[cut:], "")

	store := newMemStore()
	sopts := base
	sopts.Store = store
	sopts.SpillThresholdOps = 4
	s := NewSmallestKSession(core.Options{}, sopts)
	if _, err := s.AppendTraceBatch(strings.NewReader(head)); err != nil {
		t.Fatal(err)
	}
	cp, err := s.Checkpoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Restore into a spill-less session: checkpoints inline spilled ops, so
	// the restored session does not need the original store.
	s2 := NewSmallestKSession(core.Options{}, base)
	if err := s2.RestoreCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.AppendTraceBatch(strings.NewReader(tail)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	got, _ := s2.SmallestKByKey()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("restored-from-spilled verdicts differ: %v vs %v", got, want)
	}
}

func TestSpillErrorPoisonsSession(t *testing.T) {
	store := newMemStore()
	s := NewSmallestKSession(core.Options{}, StreamOptions{
		Workers: 1, IngestShards: 1, Store: store, SpillThresholdOps: 4,
	})
	store.fail = errors.New("spill device gone")
	var sawErr error
	for i := 0; i < 20 && sawErr == nil; i++ {
		op := history.Operation{Kind: history.KindWrite, Value: int64(i + 1),
			Start: int64(2 * i), Finish: int64(2*i + 3)}
		sawErr = s.Append("hot", op)
	}
	if sawErr == nil || !strings.Contains(sawErr.Error(), "spill device gone") {
		t.Fatalf("spill failure not surfaced: %v", sawErr)
	}
	if err := s.Append("hot", history.Operation{Kind: history.KindWrite, Value: 99, Start: 100, Finish: 101}); err == nil {
		t.Fatal("session not sticky after spill failure")
	}
}
