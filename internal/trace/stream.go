package trace

// Streaming segmented verification.
//
// The monolithic checkers materialize a whole trace before the first
// verification step runs, so peak memory and time-to-first-verdict are both
// O(trace). This file verifies a trace from an io.Reader in O(open-window)
// memory instead, by cutting each register's history at *safe cut points*
// and dispatching every closed segment to a verifier pool while parsing
// continues.
//
// A cut between a prefix A and a suffix B of one register's history is safe
// when (see zone.SafeCut for the offline form):
//
//	(a) quiescence: every operation in A finishes before every operation
//	    in B starts, and
//	(b) value-closedness: no read in B returns a value written in A.
//
// Segment-equivalence lemma: if every cut is safe, the history is k-atomic
// iff every segment is, for every k — and smallest-k(H) = max over segments
// of smallest-k(S). Proof sketch: (a) forces any total order consistent
// with real time to concatenate per-segment orders, and (b) keeps each
// read's dictating write inside the read's own segment, so the writes
// between a dictating write and its read in the concatenated order are
// exactly the writes between them in that segment's order. Restriction and
// concatenation of witnesses therefore preserve k-atomicity in both
// directions. (TestCutsPreserveSmallestK checks this directly.)
//
// Streaming discovers (a) online: provided each key's operations arrive in
// nondecreasing start order (the natural order of an operation log; see
// ErrOutOfOrder), the moment an arriving operation starts after the maximum
// finish time of the open window, a quiescent cut is committed. (b) cannot
// be known in advance — a read a million operations later may still return
// a value from the segment just closed — so closed segments are held in a
// small per-key deque and dispatched only once at least `threshold` writes
// have closed behind them (threshold = k for fixed-k checks, the staleness
// horizon for smallest-k). Then:
//
//   - a read returning a value from a deque segment merges that segment
//     (and everything after it) back into the closing one — the union is
//     still a validly closed segment, and the joint constraint is decided
//     exactly by the verifier;
//   - a read returning a value from an already-dispatched segment has, by
//     construction, at least `threshold` writes forced between its
//     dictating write and itself in every valid total order, so for a
//     fixed-k check it is a definitive violation (staleness > k) with no
//     joint reasoning needed. For smallest-k it yields a lower bound
//     (the key is reported at that floor and counted in
//     Stats.SaturatedKeys — raise StreamOptions.Horizon for exactness on
//     deeper-stale traces).
//
// Memory: per key, the open window plus at most `threshold` writes' worth
// of closed segments, plus two index structures that are never pruned —
// one map entry per distinct written value (the value index that
// classifies reads and detects cross-segment duplicate writes; dropping
// entries would misreport a deep stale read as a dangling-read anomaly)
// and one cumulative write count per closed segment. The operation
// buffers dominate on bounded traces and are recycled through a pool once
// segments verify; on unbounded streams with ever-fresh values the value
// index is the asymptotic term, and MaxBufferedOps caps only the
// operation buffering.

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"kat/internal/core"
	"kat/internal/history"
	"kat/internal/wire"
	"kat/internal/zone"
)

// Stream input errors.
var (
	// ErrOutOfOrder reports an operation that starts at or before a cut
	// that was already committed for its key. The streaming engine requires
	// each key's operations to arrive in nondecreasing start order across
	// quiescent gaps (arbitrary interleaving within an open window is
	// fine); an operation log sorted by invocation time satisfies this.
	ErrOutOfOrder = errors.New("trace: operation starts at or before a committed cut")
	// ErrBufferLimit reports that the live operation buffer exceeded
	// StreamOptions.MaxBufferedOps (the trace has no quiescent cuts within
	// the budget).
	ErrBufferLimit = errors.New("trace: buffered operations exceed MaxBufferedOps")
)

// errStopped aborts parsing after an early exit; it never escapes.
var errStopped = errors.New("trace: stream stopped")

// DefaultHorizon is the smallest-k dispatch horizon when
// StreamOptions.Horizon is zero: a closed segment is verified (and its
// operations released) once this many writes have closed behind it.
const DefaultHorizon = 256

// DefaultMinSegmentOps is the segment batching floor when
// StreamOptions.MinSegmentOps is zero. Cutting at every quiescent instant
// is sound but drowns the pipeline in tiny segments; since the
// segment-equivalence lemma holds for any subset of safe cuts, the open
// window instead accumulates at least this many operations before the next
// quiescent instant commits a cut.
const DefaultMinSegmentOps = 128

// DefaultIngestShards is the session ingest shard count when
// StreamOptions.IngestShards is zero: enough stripes that a few dozen
// concurrent producers rarely collide, cheap enough (a map plus a handful
// of counters per shard) that small sessions don't notice.
const DefaultIngestShards = 16

// maxIngestShards bounds StreamOptions.IngestShards; shards beyond any
// plausible producer count only waste memory and make per-shard metrics
// unreadable.
const maxIngestShards = 4096

// DefaultSpillThresholdOps is the spill threshold when StreamOptions.Store
// is set and SpillThresholdOps is zero: large enough that ordinary windows
// never touch the disk, small enough to bound a runaway window's memory at
// a few MB of operations.
const DefaultSpillThresholdOps = 64 << 10

// StreamOptions tunes the streaming engine.
type StreamOptions struct {
	// Workers sizes the verification pool; <= 0 uses GOMAXPROCS.
	Workers int
	// Pool, when non-nil, runs segment verification on this shared
	// work-stealing pool instead of a private one, so any number of
	// concurrent streams and sessions (the online service, batch sweeps
	// over many small traces) share one set of workers and their warm
	// scratch arenas. Workers is then ignored, and the pool is left open
	// when the stream finishes — whoever created it closes it.
	Pool *core.Pool
	// Horizon is the smallest-k dispatch horizon in writes (see
	// DefaultHorizon). Fixed-k checks ignore it and use k itself: a read
	// reaching past k closed writes is already a definitive violation.
	Horizon int
	// MinSegmentOps is the minimum open-window size before a quiescent
	// instant commits a cut (see DefaultMinSegmentOps; use 1 to cut at
	// every quiescent instant). Verdicts are identical for any value —
	// only segment granularity, and so pipelining overhead versus peak
	// memory, changes.
	MinSegmentOps int
	// IngestShards partitions a Session's per-key ingest state over this
	// many independently locked shards (key-hash routed), so concurrent
	// producers contend only when their keys share a shard. <= 0 uses
	// DefaultIngestShards for sessions; the reader-driven streams default
	// to one shard (a single parser goroutine has nothing to contend
	// with). Verdicts are identical for any value — keys never share
	// state, so routing them to different locks cannot change a verdict.
	IngestShards int
	// MaxBufferedOps caps the live operations (open windows + held
	// segments + in-flight verification) across all keys; 0 means no cap.
	// Exceeding it fails the stream with ErrBufferLimit.
	MaxBufferedOps int
	// StopOnViolation stops parsing as soon as any key's verdict turns
	// negative (early exit); the report then covers only the consumed
	// prefix and Stats.Stopped is set.
	StopOnViolation bool
	// Store, when non-nil, enables segment spill-to-disk: open windows and
	// held segments larger than SpillThresholdOps move their operations to
	// the store and reload only when the cut rules next need them (close,
	// merge, dispatch), bounding ingest memory for traces whose windows
	// never quiesce. Verdicts are identical with or without a store (the
	// verifiers renumber operations anyway); spill I/O errors surface as
	// ingest errors.
	Store BlobStore
	// SpillThresholdOps is the per-key operation count above which an open
	// window or held segment spills; <= 0 with a non-nil Store uses
	// DefaultSpillThresholdOps.
	SpillThresholdOps int
	// OnSegment, when non-nil, is invoked from verification workers after
	// each segment verdict. Callbacks may run concurrently.
	OnSegment func(SegmentVerdict)
	// Properties selects which consistency properties the engine verifies
	// over its segments (k-atomicity is always on; the zero value selects it
	// alone). Extra properties ride the same parse/cut/schedule pass: each
	// closed segment is checked once per enabled property by the same
	// worker, and per-key verdicts fold per property (see PropertyChecker).
	Properties PropertySet
	// RetireTTL enables quiescent-key retirement: a key idle for at least
	// this many trace-time units against the global ingest watermark is
	// collapsed to a compact retired record and its state freed, with the
	// verdict floor carried forward on re-admission (see lifecycle.go for
	// the soundness argument and the skew-tolerance trade). 0 disables
	// automatic sweeps; Session.RetireIdle still works.
	RetireTTL int64
	// RetireSweepOps is the per-shard operation interval between retirement
	// sweeps (<= 0 uses DefaultRetireSweepOps).
	RetireSweepOps int
	// EpochLength, when positive, folds every segment verdict into the
	// summary of the epoch window its quiescent cut falls in (epoch N covers
	// trace time [N*EpochLength, (N+1)*EpochLength)), so infinite streams
	// answer windowed verdict queries (Session.Epochs, EpochSummary).
	EpochLength int64
	// RetainEpochs caps retained epoch summaries (<= 0 uses
	// DefaultRetainEpochs); older epochs fold into one cumulative aggregate.
	RetainEpochs int
}

// SegmentVerdict is the outcome of one verified segment.
type SegmentVerdict struct {
	// Key is the register the segment belongs to.
	Key string
	// Seq is the first segment sequence number covered (merged segments
	// span several).
	Seq int
	// Ops is the segment length.
	Ops int
	// Atomic is the fixed-k verdict (true for anomaly-scan-only segments
	// of already-settled keys).
	Atomic bool
	// K is the segment's smallest k in smallest-k mode (0 otherwise).
	K int
	// Props holds the extra enabled properties' segment verdicts (Δ,
	// regularity — the k verdict is Atomic/K above), in checker order.
	// Empty for anomaly-scan-only segments of settled keys.
	Props []PropertyVerdict
	// Err is the segment's anomaly error, if any.
	Err error
}

// StreamStats describes a finished (or stopped) streaming run.
type StreamStats struct {
	// Ops and Keys count parsed operations and distinct registers.
	Ops  int64
	Keys int
	// Segments counts dispatched segments; Merges counts deque segments
	// merged back into a closing one by a backward-reaching read.
	Segments int64
	Merges   int64
	// MaxOpenOps is the largest single open window observed.
	MaxOpenOps int
	// PeakBufferedOps is the maximum number of live operations observed
	// (open windows + held segments + in-flight verification) — the
	// engine's working-set bound, compared to Ops for a monolithic run.
	PeakBufferedOps int64
	// StaleReads counts reads that returned values from already-dispatched
	// segments (definitive violations for fixed-k checks; lower-bound
	// floors for smallest-k).
	StaleReads int64
	// SaturatedKeys counts keys whose smallest-k is only a lower bound
	// because a read reached past the horizon.
	SaturatedKeys int
	// FirstVerdictOps is the parse position (in operations) when the first
	// segment verdict landed; 0 if no verdict arrived before the end.
	FirstVerdictOps int64
	// Stopped reports an early exit via StopOnViolation.
	Stopped bool
	// Spills / OpsSpilled / SpillLoads count spill-to-disk activity when a
	// StreamOptions.Store is configured: spill events, cumulative
	// operations written to the store, and reload events.
	Spills     int64
	OpsSpilled int64
	SpillLoads int64
	// RetiredKeys counts currently retired keys; Retirements and
	// Readmissions count lifetime retire / re-admit events (see
	// StreamOptions.RetireTTL).
	RetiredKeys  int64
	Retirements  int64
	Readmissions int64
}

// ParseStream reads the keyed text format from r and invokes emit for every
// operation in input order, without materializing the input or the trace:
// memory is one line plus whatever emit retains. Returning an error from
// emit aborts the parse with that error.
func ParseStream(r io.Reader, emit func(key string, op history.Operation) error) error {
	return parseStreamBytes(r, func(key []byte, op history.Operation) error {
		return emit(string(key), op)
	})
}

// ParseStreamBytes is the allocation-lean form of ParseStream: the key
// reaches emit as a view into the line buffer, valid only during the call,
// so callers that intern or hash keys themselves (the engine's shard maps,
// the cluster router's per-node splitter) pay no per-operation string.
func ParseStreamBytes(r io.Reader, emit func(key []byte, op history.Operation) error) error {
	return parseStreamBytes(r, emit)
}

// parseStreamBytes is the core of ParseStream and ParseStreamBytes.
func parseStreamBytes(r io.Reader, emit func(key []byte, op history.Operation) error) error {
	sc := bufio.NewScanner(r)
	// A trace may legally sit on one ';'-separated line, so the cap is a
	// backstop; the buffer only grows to the longest line actually seen.
	sc.Buffer(make([]byte, 0, 64*1024), 1<<30)
	seg := 0
	for sc.Scan() {
		if err := parseLineOps(sc.Bytes(), &seg, emit); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// parseLineOps strips the '#' comment, splits one line's ';'-separated
// segments, and emits each parsed operation; *seg advances per segment so
// error positions stay global across lines. Both the op-granular scanner
// path and the batch chunk path parse through here, so the trace grammar
// cannot drift between them.
func parseLineOps(line []byte, seg *int, emit func(key []byte, op history.Operation) error) error {
	if i := bytes.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	for len(line) > 0 {
		part := line
		if i := bytes.IndexByte(line, ';'); i >= 0 {
			part, line = line[:i], line[i+1:]
		} else {
			line = nil
		}
		part = bytes.TrimSpace(part)
		if len(part) == 0 {
			continue
		}
		*seg++
		key, op, err := parseKeyedOp(part)
		if err != nil {
			return fmt.Errorf("trace: segment %d (%q): %w", *seg, part, err)
		}
		if err := emit(key, op); err != nil {
			return err
		}
	}
	return nil
}

// parseKeyedOp parses one "kind key value start finish [attr=N]..." segment
// from raw bytes. The common five-field form parses without allocating;
// attribute-bearing or otherwise unusual segments fall back to the shared
// string-based field parser for identical semantics and errors.
func parseKeyedOp(part []byte) ([]byte, history.Operation, error) {
	var f [6][]byte
	n := 0
	for i := 0; i < len(part); {
		for i < len(part) && asciiSpace(part[i]) {
			i++
		}
		st := i
		for i < len(part) && !asciiSpace(part[i]) {
			i++
		}
		if i > st {
			if n == len(f) {
				return parseKeyedOpSlow(part)
			}
			f[n] = part[st:i]
			n++
		}
	}
	if n < 5 {
		return nil, history.Operation{}, errors.New("want kind key value start finish")
	}
	if n > 5 || len(f[0]) != 1 {
		return parseKeyedOpSlow(part)
	}
	var op history.Operation
	switch f[0][0] {
	case 'w', 'W':
		op.Kind = history.KindWrite
	case 'r', 'R':
		op.Kind = history.KindRead
	default:
		return parseKeyedOpSlow(part)
	}
	var ok bool
	if op.Value, ok = parseI64(f[2]); !ok {
		return parseKeyedOpSlow(part)
	}
	if op.Start, ok = parseI64(f[3]); !ok {
		return parseKeyedOpSlow(part)
	}
	if op.Finish, ok = parseI64(f[4]); !ok {
		return parseKeyedOpSlow(part)
	}
	return f[1], op, nil
}

// parseKeyedOpSlow handles attributes and malformed input through the same
// field parser the non-streaming Parse uses.
func parseKeyedOpSlow(part []byte) ([]byte, history.Operation, error) {
	fields := history.AppendFields(nil, string(part))
	if len(fields) < 5 {
		return nil, history.Operation{}, errors.New("want kind key value start finish")
	}
	op, err := history.ParseOpParts(fields[0], fields[2:])
	if err != nil {
		return nil, history.Operation{}, err
	}
	return []byte(fields[1]), op, nil
}

func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f'
}

// parseI64 is a minimal decimal parser for the hot path; anything it cannot
// handle (including overflow) defers to the strconv-based slow path.
func parseI64(b []byte) (int64, bool) {
	i, neg := 0, false
	if len(b) > 0 && (b[0] == '-' || b[0] == '+') {
		neg = b[0] == '-'
		i++
	}
	if i == len(b) || len(b)-i > 18 {
		return 0, false
	}
	var v int64
	for ; i < len(b); i++ {
		c := b[i] - '0'
		if c > 9 {
			return 0, false
		}
		v = v*10 + int64(c)
	}
	if neg {
		v = -v
	}
	return v, true
}

// ParseReader reads a whole multi-register trace from r through the
// streaming parser, so memory is proportional to the operations rather than
// the raw text plus the operations. Use it for file and stdin inputs.
func ParseReader(r io.Reader) (*Trace, error) {
	t := New()
	err := parseStreamBytes(r, func(key []byte, op history.Operation) error {
		h, ok := t.Keys[string(key)]
		if !ok {
			h = &history.History{}
			t.Keys[string(key)] = h
		}
		op.ID = h.Len()
		h.Ops = append(h.Ops, op)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// StreamCheck verifies every register of the trace read from r at bound k,
// with parse, segmentation, and verification overlapped: closed segments
// dispatch to a worker pool while parsing continues, so verdicts start
// landing before the input is fully consumed and peak memory is bounded by
// the open windows (see the package comment for the cut rules). The report
// is identical to CheckParallel on the same trace for any worker count,
// provided the input satisfies the arrival-order requirement (else
// ErrOutOfOrder).
func StreamCheck(r io.Reader, k int, opts core.Options, sopts StreamOptions) (Report, StreamStats, error) {
	if k < 1 {
		return Report{}, StreamStats{}, fmt.Errorf("trace: k must be >= 1, got %d", k)
	}
	e := newEngine(modeCheck, k, k, opts, sopts)
	err := e.run(r)
	return e.checkReport(), e.finalStats(), err
}

// StreamSmallestKByKey computes each register's smallest k from a streamed
// trace: per the segment-equivalence lemma the answer is the maximum
// segment smallest-k, accumulated as segments verify. Keys that fail
// verification report 0, like SmallestKByKey. Keys with reads staler than
// the horizon report a lower bound and are counted in Stats.SaturatedKeys.
func StreamSmallestKByKey(r io.Reader, opts core.Options, sopts StreamOptions) (map[string]int, StreamStats, error) {
	horizon := sopts.Horizon
	if horizon <= 0 {
		horizon = DefaultHorizon
	}
	e := newEngine(modeSmallestK, 0, horizon, opts, sopts)
	err := e.run(r)
	return e.smallestKMap(), e.finalStats(), err
}

// StreamVerdictsByKey computes every enabled property's verdict per key
// (sopts.Properties; k-atomicity in smallest-k form is always included) from
// a streamed trace in one parse/cut/schedule pass: each closed segment is
// checked once per property and the per-key verdicts fold as segments
// verify. The result is key-sorted KeyVerdicts in the shape Session.Snapshot
// produces, final for the consumed input.
func StreamVerdictsByKey(r io.Reader, opts core.Options, sopts StreamOptions) ([]KeyVerdict, StreamStats, error) {
	horizon := sopts.Horizon
	if horizon <= 0 {
		horizon = DefaultHorizon
	}
	e := newEngine(modeSmallestK, 0, horizon, opts, sopts)
	err := e.run(r)
	return e.keyVerdicts(), e.finalStats(), err
}

type streamMode int

const (
	modeCheck streamMode = iota
	modeSmallestK
)

// closedSeg is a quiescence-closed, not-yet-dispatched segment. When
// spilled, ops is nil, spill holds the blob id, and nops remembers the
// operation count (nops == len(ops) while in memory).
type closedSeg struct {
	loSeq, hiSeq int
	ops          []history.Operation
	writes       int
	nops         int
	spill        uint64
	// cutAt is the quiescent cut time that closed the segment (the key's
	// maxClosedFinish at close) — the epoch the verdict attributes to.
	cutAt int64
}

// ingestShard is one stripe of the engine's per-key state. Every key hashes
// to exactly one shard, which owns that key's map entry and parser-side
// accumulator fields; taking mu grants exclusive access to all of them.
// Sessions lock the shard per operation (Append) or once per batch
// (AppendBatch / AppendTraceBatch); the reader-driven engine is a single
// goroutine and does not lock at all. The atomic counters below mu are the
// shard's observability surface — they are written on the ingest and
// verification paths and read lock-free by gauges, so scraping never queues
// behind a backpressured producer.
type ingestShard struct {
	mu   sync.Mutex
	keys map[string]*keyState

	// lockTakes counts ingest-path acquisitions of mu (not monitoring or
	// flush ones), the denominator of the locks-per-op measurement that
	// batch ingest exists to shrink.
	lockTakes atomic.Int64
	// ingested counts operations routed into this shard (whether or not
	// they were later rejected); the sum over shards is StreamStats.Ops.
	ingested atomic.Int64
	// buffered counts live operations owned by this shard's keys (open
	// windows + held segments + in-flight verification).
	buffered atomic.Int64
	// maxOpen tracks the largest open window among this shard's keys.
	// Written only under the shard's exclusive ingest access (plain
	// store), read lock-free by finalStats, which folds a max over
	// shards — keeping the per-op hot path off any cross-shard cacheline.
	maxOpen atomic.Int64
	// maxStart is the largest operation start routed into this shard
	// (math.MinInt64 before any). Written under the shard's exclusive
	// ingest access, read lock-free cross-shard by the watermark fold that
	// drives retirement TTLs and the current-epoch gauge.
	maxStart atomic.Int64

	// sinceSweep counts operations since the last retirement sweep and
	// retired holds the compact records of this shard's retired keys; both
	// owned under the shard's exclusive access (see lifecycle.go).
	sinceSweep int
	retired    map[string]*retiredKey
	// sweepWM caps the watermark retirement sweeps may use while a batch
	// feed holds this shard (math.MaxInt64 = no cap, use the live fold).
	// Batch ingest routes a whole chunk before any shard processes its
	// group, so mid-group the cross-shard maxStart fold includes
	// operations that arrived *simultaneously* with the ones still being
	// fed here — no evidence of idleness. feedGrouped pins this to the
	// pre-batch watermark for the group's duration; owned under the
	// shard's exclusive access.
	sweepWM int64
}

// keyState is one register's accumulator plus its verdict aggregation.
// The key's ingest shard owns everything above mu (exclusive access under
// the shard lock, or the single parser goroutine in reader-driven runs);
// workers only touch the fields below it (under mu) and the settled flag.
type keyState struct {
	key               string
	sh                *ingestShard
	seq               int // sequence number of the open segment
	open              []history.Operation
	openWrites        int
	openMaxFinish     int64
	maxClosedFinish   int64 // committed cut time (max finish of all closed ops)
	closedAny         bool
	deque             []closedSeg
	dequeWrites       int
	dispatchedThrough int             // highest dispatched seq, -1 initially
	values            map[int64]int32 // written value -> writer segment seq
	cumWrites         []int64         // cumWrites[s] = closed writes through seq s's close
	cumMaxFinish      []int64         // cumMaxFinish[s] = max closed finish through seq s's close
	totalClosed       int64
	ops               int
	// spillOpen holds blob ids of the open window's spilled prefix chunks
	// (in append order); spillOpenOps counts the operations in them. The
	// in-memory ks.open is always the window's tail.
	spillOpen    []uint64
	spillOpenOps int

	// retiring marks a key whose retirement sweep flushed it; finalization
	// (fold + free) waits until inflight — dispatched segments whose
	// verdicts have not folded yet — drains to zero, because workers never
	// take shard locks (see lifecycle.go).
	retiring bool
	inflight atomic.Int32

	settled atomic.Bool

	mu     sync.Mutex
	err    error
	errSeq int
	// props accumulates one verdict per enabled property, index-aligned
	// with engine.checkers (props[0] is always the k-atomicity verdict;
	// stale-read floors fold straight into it, so props[0].K is already
	// max(segment maxima, floors)).
	props []PropertyVerdict
}

type job struct {
	ks       *keyState
	seq      int
	ops      []history.Operation
	scanOnly bool
	cutAt    int64
}

type engine struct {
	mode      streamMode
	k         int
	threshold int
	minSeg    int
	opts      core.Options
	sopts     StreamOptions

	// checkers verify each closed segment, one verdict per enabled
	// property; checkers[0] is always the k-atomicity checker (the engine's
	// own mode) and runs last on each segment — it owns and normalizes the
	// buffer in place, so the extras before it see raw timestamps.
	checkers []PropertyChecker

	// store/spillMin enable segment spill-to-disk (see StreamOptions.Store);
	// spillBufs recycles the encode buffers of the spill path.
	store     BlobStore
	spillMin  int
	spillBufs sync.Pool

	// shards stripe the per-key state (see ingestShard). Reader-driven
	// engines run one shard; sessions default to DefaultIngestShards.
	shards []*ingestShard

	// vpool is the shared (key, chunk) work-stealing pool: segment jobs are
	// submitted from the parser and may fork chunk sub-units, so one hot
	// key's segments spread over every worker. sem bounds in-flight
	// submissions (the parser blocks when verification falls behind,
	// keeping buffered operations bounded exactly like the former
	// fixed-capacity job channel). bufPool recycles operation buffers.
	// ownPool records whether the engine created vpool (and so must close
	// it) or borrowed a shared one via StreamOptions.Pool; wg joins this
	// engine's own dispatched segments, which is the only wait a borrowed
	// pool allows.
	vpool   *core.Pool
	ownPool bool
	wg      sync.WaitGroup
	sem     chan struct{}
	bufPool sync.Pool

	// Keyspace lifecycle (lifecycle.go): retirement TTL + sweep cadence,
	// epoch windowing, and the epoch summary tracker. sinceSweepAll gates
	// the cold-shard sweep pass (maybeSweepAll) that the session entry
	// points and reader-driven loops drive.
	retireTTL     int64
	sweepEvery    int
	epochLen      int64
	retainEpochs  int
	epochT        epochTracker
	sinceSweepAll atomic.Int64

	stop      atomic.Bool
	parseDone atomic.Bool

	// Every statistic below is an atomic so StreamStats assembles without
	// taking any lock: monitoring (Session.Stats, the /metrics gauges) must
	// never queue behind a backpressured producer, and with sharded ingest
	// there is no single goroutine that could own plain counters anyway.
	buffered      atomic.Int64
	keyCount      atomic.Int64
	peakBuffered  atomic.Int64
	merges        atomic.Int64
	segments      atomic.Int64
	stopped       atomic.Bool
	staleReads    atomic.Int64
	saturatedKeys atomic.Int64
	firstVerdict  atomic.Int64
	spills        atomic.Int64
	opsSpilled    atomic.Int64
	spillLoads    atomic.Int64
	onDisk        atomic.Int64
	retiredNow    atomic.Int64
	retiredOps    atomic.Int64
	retirements   atomic.Int64
	readmissions  atomic.Int64
}

// atomicMax raises a to at least v.
func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// shardHash is FNV-1a over the key bytes — the same stateless hash for the
// []byte and string views, so both lookup paths route identically.
func shardHash(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h
}

func shardHashBytes(key []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range key {
		h = (h ^ uint32(c)) * 16777619
	}
	return h
}

func (e *engine) shardIndex(key string) int {
	if len(e.shards) == 1 {
		return 0
	}
	return int(shardHash(key) % uint32(len(e.shards)))
}

func (e *engine) shardIndexBytes(key []byte) int {
	if len(e.shards) == 1 {
		return 0
	}
	return int(shardHashBytes(key) % uint32(len(e.shards)))
}

// opsIngested sums the per-shard ingest counters: StreamStats.Ops without
// a lock.
func (e *engine) opsIngested() int64 {
	var n int64
	for _, sh := range e.shards {
		n += sh.ingested.Load()
	}
	return n
}

// lockIngest takes the shard lock on behalf of an ingest path, counting
// the acquisition (monitoring and flush take mu directly and stay out of
// the locks-per-op measurement).
func (sh *ingestShard) lockIngest() {
	sh.lockTakes.Add(1)
	sh.mu.Lock()
}

func newEngine(mode streamMode, k, threshold int, opts core.Options, sopts StreamOptions) *engine {
	workers := sopts.Workers
	if sopts.Pool != nil {
		workers = sopts.Pool.Workers()
	} else if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	minSeg := sopts.MinSegmentOps
	if minSeg <= 0 {
		minSeg = DefaultMinSegmentOps
	}
	nshards := sopts.IngestShards
	if nshards <= 0 {
		nshards = 1
	} else if nshards > maxIngestShards {
		nshards = maxIngestShards
	}
	e := &engine{
		mode:      mode,
		k:         k,
		threshold: threshold,
		minSeg:    minSeg,
		opts:      opts,
		sopts:     sopts,
		checkers:  checkersFor(mode, k, sopts.Properties),
		shards:    make([]*ingestShard, nshards),
		sem:       make(chan struct{}, 2*workers),
	}
	for i := range e.shards {
		e.shards[i] = &ingestShard{keys: make(map[string]*keyState), sweepWM: math.MaxInt64}
		e.shards[i].maxStart.Store(math.MinInt64)
	}
	e.retireTTL = sopts.RetireTTL
	e.sweepEvery = sopts.RetireSweepOps
	if e.sweepEvery <= 0 {
		e.sweepEvery = DefaultRetireSweepOps
	}
	e.epochLen = sopts.EpochLength
	e.retainEpochs = sopts.RetainEpochs
	if e.retainEpochs <= 0 {
		e.retainEpochs = DefaultRetainEpochs
	}
	if e.epochLen > 0 {
		e.epochT.epochs = make(map[int64]*EpochStats)
	}
	if sopts.Store != nil {
		e.store = sopts.Store
		e.spillMin = sopts.SpillThresholdOps
		if e.spillMin <= 0 {
			e.spillMin = DefaultSpillThresholdOps
		}
	}
	if sopts.Pool != nil {
		e.vpool = sopts.Pool
	} else {
		e.vpool = core.NewPool(workers)
		e.ownPool = true
	}
	e.bufPool.New = func() any { return []history.Operation(nil) }
	return e
}

func (e *engine) run(r io.Reader) error {
	// Sniff the codec: binary wire streams open with a fixed magic that no
	// valid text trace can start with, so reader-driven runs (kavcheck
	// -stream, StreamCheck, StreamSmallestKByKey) accept either format
	// without being told which.
	br := bufio.NewReaderSize(r, 64*1024)
	var input error
	if head, err := br.Peek(4); err == nil && wire.IsMagic(head) {
		input = e.runWire(br)
	} else {
		// The single parser goroutine owns every shard, and feeds in strict
		// input order — the live watermark is exactly the arrival position,
		// so the cold-shard sweep needs no batch floor here.
		input = parseStreamBytes(br, func(key []byte, op history.Operation) error {
			if err := e.add(key, op); err != nil {
				return err
			}
			return e.maybeSweepAll(1, e.watermark(), false)
		})
	}
	err := e.drain(input)
	e.finish()
	return err
}

// runWire feeds a binary wire stream through the same per-operation entry
// point the text parser uses; decoded keys are already interned strings.
func (e *engine) runWire(r io.Reader) error {
	dec := wire.NewDecoder(r)
	for {
		ops, err := dec.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		for i := range ops {
			sh := e.shards[e.shardIndex(ops[i].Key)]
			if err := e.addStringIn(sh, ops[i].Key, ops[i].Op); err != nil {
				return err
			}
			if err := e.maybeSweepAll(1, e.watermark(), false); err != nil {
				return err
			}
		}
	}
}

// drain finalizes the parser side after input ends: it marks the parse done,
// absorbs the early-exit sentinel, and — on clean input — commits every open
// window and dispatches everything still held. The caller must own every
// shard's parser-side state (the single parser goroutine of a reader-driven
// run, or Session.Flush holding every shard lock).
func (e *engine) drain(err error) error {
	e.parseDone.Store(true)
	if errors.Is(err, errStopped) {
		e.stopped.Store(true)
		return nil
	}
	if err == nil {
		for _, sh := range e.shards {
			for _, ks := range sh.keys {
				if ferr := e.flush(ks); ferr != nil && err == nil {
					err = ferr
				}
			}
		}
	}
	return err
}

// finish waits for every segment this engine dispatched and, when the engine
// owns its pool, releases the workers. Borrowed pools stay open for their
// other users.
func (e *engine) finish() {
	e.wg.Wait()
	if e.ownPool {
		e.vpool.Close()
	}
}

// add is the per-operation entry point (parser goroutine). The key is a
// view into the line buffer; the no-copy map lookup makes the hot path
// allocation-free, and only a first sighting clones it. Locking the shard
// is the caller's job: the reader-driven engine (one goroutine) never
// locks, sessions lock per op or per batch.
func (e *engine) add(key []byte, op history.Operation) error {
	return e.addIn(e.shards[e.shardIndexBytes(key)], key, op)
}

// addIn is add with the shard already routed (batch ingest groups first,
// then feeds each shard under one lock).
func (e *engine) addIn(sh *ingestShard, key []byte, op history.Operation) error {
	if e.stop.Load() {
		return errStopped
	}
	ks := sh.keys[string(key)]
	if ks == nil {
		ks = e.newKey(sh, string(key))
	}
	return e.addOp(ks, op)
}

// addStringIn is addIn for callers that already hold the key as a string
// (Session.Append / AppendBatch), so the public per-op path stays
// allocation-free too.
func (e *engine) addStringIn(sh *ingestShard, key string, op history.Operation) error {
	if e.stop.Load() {
		return errStopped
	}
	ks := sh.keys[key]
	if ks == nil {
		ks = e.newKey(sh, key)
	}
	return e.addOp(ks, op)
}

func (e *engine) newKey(sh *ingestShard, key string) *keyState {
	ks := &keyState{
		key:               key,
		sh:                sh,
		maxClosedFinish:   math.MinInt64,
		dispatchedThrough: -1,
		values:            make(map[int64]int32),
		props:             make([]PropertyVerdict, len(e.checkers)),
	}
	for i, ck := range e.checkers {
		ks.props[i] = PropertyVerdict{Property: ck.Property(), Atomic: true}
	}
	if rk, ok := sh.retired[key]; ok {
		// Re-admission: the retired record seeds the new lifetime's verdict
		// accumulators and committed cut (see lifecycle.go).
		delete(sh.retired, key)
		e.readmit(ks, rk)
	} else {
		e.keyCount.Add(1)
	}
	sh.keys[key] = ks
	return ks
}

func (e *engine) addOp(ks *keyState, op history.Operation) error {
	ks.ops++
	ks.sh.ingested.Add(1)
	if op.Start > ks.sh.maxStart.Load() {
		ks.sh.maxStart.Store(op.Start) // single writer per shard: no CAS needed
	}
	if ks.retiring {
		// A retirement sweep flushed this key but an operation landed before
		// finalization: the key is live again.
		ks.retiring = false
	}
	if op.Finish < op.Start {
		// Normalization repairs zero-length operations but not truly
		// inverted ones; report incrementally, since the operation may
		// later be dropped as a cross-boundary stale read and so never
		// reach a segment verifier.
		seq := ks.seq
		e.settle(ks, func() {
			if ks.err == nil || seq < ks.errSeq {
				ks.err = fmt.Errorf("core: %w (op %q on key %q)",
					history.ErrInvertedInterval, op.String(), ks.key)
				ks.errSeq = seq
			}
		})
	}
	if ks.closedAny && op.Start <= ks.maxClosedFinish {
		return fmt.Errorf("%w (key %q, op %q, cut at %d)", ErrOutOfOrder, ks.key, op.String(), ks.maxClosedFinish)
	}
	if ks.totalOpen() >= e.minSeg && zone.Quiescent(ks.openMaxFinish, op.Start) {
		if err := e.closeOpen(ks); err != nil {
			return err
		}
	}
	if ks.open == nil {
		ks.open = e.bufPool.Get().([]history.Operation)
	}
	op.ID = ks.spillOpenOps + len(ks.open)
	ks.open = append(ks.open, op)
	if ks.totalOpen() == 1 || op.Finish > ks.openMaxFinish {
		ks.openMaxFinish = op.Finish
	}
	if op.IsWrite() {
		if _, dup := ks.values[op.Value]; dup {
			e.settle(ks, func() {
				if ks.err == nil || ks.seq < ks.errSeq {
					ks.err = fmt.Errorf("core: %w (value %d written twice on key %q)",
						history.ErrDuplicateValue, op.Value, ks.key)
					ks.errSeq = ks.seq
				}
			})
		} else {
			ks.values[op.Value] = int32(ks.seq)
		}
		ks.openWrites++
	}
	if n := int64(ks.totalOpen()); n > ks.sh.maxOpen.Load() {
		ks.sh.maxOpen.Store(n) // single writer per shard: no CAS needed
	}
	ks.sh.buffered.Add(1)
	cur := e.buffered.Add(1)
	atomicMax(&e.peakBuffered, cur)
	if e.sopts.MaxBufferedOps > 0 && cur > int64(e.sopts.MaxBufferedOps) {
		return fmt.Errorf("%w (%d live ops; largest open window %d)", ErrBufferLimit, cur, e.maxOpenAll())
	}
	if e.store != nil && len(ks.open) >= e.spillMin {
		if err := e.spillOpenTail(ks); err != nil {
			return err
		}
	}
	if e.retireTTL > 0 {
		return e.maybeSweep(ks.sh)
	}
	return nil
}

// maxOpenAll folds the per-shard open-window maxima.
func (e *engine) maxOpenAll() int64 {
	var m int64
	for _, sh := range e.shards {
		if v := sh.maxOpen.Load(); v > m {
			m = v
		}
	}
	return m
}

// closeOpen commits the quiescent cut before the arriving operation:
// classifies the closing segment's reads against the value index, merges
// back any deque segments a read refers into, records the close in the
// cumulative write counts, and dispatches every deque segment that now has
// at least `threshold` writes closed behind it. Spilled operations (the
// window's own prefix, and any deque segment being merged or dispatched)
// are reloaded here — the only points that need them; an error is a spill
// I/O failure and poisons the stream.
func (e *engine) closeOpen(ks *keyState) error {
	if err := e.reloadOpen(ks); err != nil {
		return err
	}
	ops, writes := ks.open, ks.openWrites
	ks.open, ks.openWrites = nil, 0
	ks.maxClosedFinish = ks.openMaxFinish
	ks.closedAny = true

	// Classify reads: in-segment (seq match), deque (merge back), or
	// dispatched (cross-boundary staleness; drop the read — its verdict
	// contribution is recorded here, and leaving it would misreport a
	// dangling read).
	mergeFrom := -1
	var dropped []history.Operation
	var droppedSeq []int
	kept := ops[:0]
	for _, op := range ops {
		if op.IsRead() {
			if s, ok := ks.values[op.Value]; ok && int(s) != ks.seq {
				if int(s) > ks.dispatchedThrough {
					if mergeFrom < 0 || int(s) < mergeFrom {
						mergeFrom = int(s)
					}
				} else {
					dropped = append(dropped, op)
					droppedSeq = append(droppedSeq, int(s))
					ks.sh.buffered.Add(-1)
					e.buffered.Add(-1)
					continue
				}
			}
		}
		kept = append(kept, op)
	}
	ops = kept
	if len(dropped) > 0 {
		e.foldStaleReads(ks, kept, dropped, droppedSeq)
	}

	merged := closedSeg{loSeq: ks.seq, hiSeq: ks.seq, ops: ops, writes: writes, cutAt: ks.maxClosedFinish}
	if mergeFrom >= 0 {
		j := 0
		for j < len(ks.deque) && ks.deque[j].hiSeq < mergeFrom {
			j++
		}
		// Concatenate deque[j:] and the closing ops in time order.
		base := ks.deque[j]
		if err := e.unspill(ks, &base); err != nil {
			return err
		}
		for si := j + 1; si < len(ks.deque); si++ {
			seg := ks.deque[si]
			if err := e.unspill(ks, &seg); err != nil {
				return err
			}
			base.ops = append(base.ops, seg.ops...)
			base.writes += seg.writes
			e.bufPool.Put(seg.ops[:0])
			e.merges.Add(1)
		}
		base.ops = append(base.ops, ops...)
		base.writes += writes
		base.hiSeq = ks.seq
		base.cutAt = ks.maxClosedFinish
		e.bufPool.Put(ops[:0])
		e.merges.Add(1) // the entry the read reached into
		ks.deque = ks.deque[:j]
		merged = base
	}

	ks.totalClosed += int64(writes)
	ks.cumWrites = append(ks.cumWrites, ks.totalClosed)           // index == ks.seq
	ks.cumMaxFinish = append(ks.cumMaxFinish, ks.maxClosedFinish) // index == ks.seq
	if len(merged.ops) > 0 {
		merged.nops = len(merged.ops)
		if e.store != nil && merged.nops >= e.spillMin {
			if err := e.spillSeg(ks, &merged); err != nil {
				return err
			}
		}
		ks.deque = append(ks.deque, merged)
		ks.dequeWrites += writes
	} else {
		e.bufPool.Put(merged.ops[:0])
	}
	ks.seq++

	for len(ks.deque) > 0 && ks.dequeWrites-ks.deque[0].writes >= e.threshold {
		if err := e.unspill(ks, &ks.deque[0]); err != nil {
			return err
		}
		e.dispatch(ks, ks.deque[0])
		ks.dequeWrites -= ks.deque[0].writes
		ks.deque = ks.deque[1:]
	}
	return nil
}

// foldStaleReads records the closing window's cross-boundary stale reads
// (values from already-dispatched segments). At least `threshold` writes
// closed between each read's dictating segment and this window, all forced
// between the dictating write and the read in every valid total order; the
// reads never reach a segment verifier, so each enabled property folds the
// evidence gathered here into its per-key verdict instead (for fixed-k
// checks the k verdict is definitive: forced >= threshold == k means
// staleness >= k+1). Runs before the close is recorded, so cumWrites and
// cumMaxFinish still end at the previous close — exactly the segments
// behind the dropped reads.
func (e *engine) foldStaleReads(ks *keyState, kept, dropped []history.Operation, droppedSeq []int) {
	e.staleReads.Add(int64(len(dropped)))
	evs := make([]staleReadEvidence, len(dropped))
	for i, op := range dropped {
		vs := droppedSeq[i]
		evs[i].forcedWrites = int(ks.totalClosed - ks.cumWrites[vs])
		if e.sopts.Properties.Has(PropertyDelta) && evs[i].forcedWrites > 0 {
			// First write-bearing segment after the value's holds the
			// earliest writes forced between the dictating write and the
			// read. All its operations finish by cumMaxFinish[s], so the
			// read's relaxed start must reach at least that far back before
			// any forced write stops preceding it: a sound smallest-Δ floor.
			s := vs + 1 + sort.Search(len(ks.cumWrites)-vs-1, func(j int) bool {
				return ks.cumWrites[vs+1+j] > ks.cumWrites[vs]
			})
			evs[i].deltaFloor = op.Start - ks.cumMaxFinish[s]
		}
	}
	if e.sopts.Properties.Has(PropertyRegularity) {
		safe := staleReadSafety(kept, dropped)
		for i := range evs {
			evs[i].safe = safe[i]
		}
	}
	e.settle(ks, func() {
		wasSat := ks.props[0].Saturated
		for _, ev := range evs {
			for i, ck := range e.checkers {
				ck.FoldStale(&ks.props[i], ev)
			}
		}
		if !wasSat && ks.props[0].Saturated {
			e.saturatedKeys.Add(1)
		}
	})
	if e.epochLen > 0 {
		for i, op := range dropped {
			ev := evs[i]
			e.foldEpoch(e.epochOf(op.Start), func(es *EpochStats) {
				es.StaleReads++
				es.Ops++
				if e.mode == modeCheck {
					es.Violations++
				} else if ev.forcedWrites+1 > es.MaxK {
					es.MaxK = ev.forcedWrites + 1
				}
				if ev.deltaFloor > es.MaxDelta {
					es.MaxDelta = ev.deltaFloor
				}
				if e.sopts.Properties.Has(PropertyRegularity) {
					es.IrregularReads++
					if !ev.safe {
						es.UnsafeReads++
					}
				}
			})
		}
	}
}

// settle applies a verdict mutation under the key's lock and updates the
// settled fast path and early-exit flag. Parser and workers both funnel
// through here, and every mutation is commutative (AND / max / min-seq), so
// the outcome is deterministic for any scheduling.
func (e *engine) settle(ks *keyState, apply func()) {
	ks.mu.Lock()
	apply()
	bad := ks.err != nil || !ks.props[0].Atomic
	if e.mode == modeCheck && len(e.checkers) == 1 {
		// k-only fixed-k checks downgrade a violated key to anomaly-scan;
		// with extra properties enabled, later segments still owe their Δ
		// and regularity verdicts, so only an error (which dominates every
		// property) settles the key.
		ks.settled.Store(bad)
	} else {
		ks.settled.Store(ks.err != nil)
	}
	ks.mu.Unlock()
	if bad && e.sopts.StopOnViolation {
		e.stop.Store(true)
	}
}

func (e *engine) dispatch(ks *keyState, seg closedSeg) {
	ks.dispatchedThrough = seg.hiSeq
	e.segments.Add(1)
	ks.inflight.Add(1)
	j := job{ks: ks, seq: seg.loSeq, ops: seg.ops, scanOnly: ks.settled.Load(), cutAt: seg.cutAt}
	e.sem <- struct{}{}
	e.wg.Add(1)
	e.vpool.Submit(func(c *core.Ctx) {
		defer func() { <-e.sem; e.wg.Done() }()
		e.verifySegment(c, j)
	})
}

// flush closes the open window and dispatches everything still held; after
// end of input no future read can reach back, so the deque drains fully.
func (e *engine) flush(ks *keyState) error {
	if ks.totalOpen() > 0 {
		if err := e.closeOpen(ks); err != nil {
			return err
		}
	}
	for i := range ks.deque {
		if err := e.unspill(ks, &ks.deque[i]); err != nil {
			return err
		}
		e.dispatch(ks, ks.deque[i])
	}
	ks.deque, ks.dequeWrites = nil, 0
	return nil
}

// verifySegment is one segment unit on the pool. Large segments fork their
// chunk (and, for smallest-k, safe-cut segment) sub-units back onto the same
// pool via the Ctx verification methods, so idle workers steal intra-segment
// work instead of waiting for whole segments.
func (e *engine) verifySegment(c *core.Ctx, j job) {
	n := len(j.ops)
	h := history.History{Ops: j.ops}
	verdict := SegmentVerdict{Key: j.ks.key, Seq: j.seq, Ops: n, Atomic: true}
	var kv PropertyVerdict
	if j.scanOnly {
		verdict.Err = c.Verifier().ScanOwned(&h)
	} else {
		// Extra checkers first: they clone before relaxing/normalizing, so
		// the raw segment buffer survives for the k checker, which runs
		// last and normalizes it in place. Any checker's error is the same
		// class of anomaly (the segment is shared), so the first one wins
		// with the k checker's preferred for message stability.
		var extraErr error
		if len(e.checkers) > 1 {
			verdict.Props = make([]PropertyVerdict, 0, len(e.checkers)-1)
			for _, ck := range e.checkers[1:] {
				pv, err := ck.CheckSegment(c, &h, e.opts)
				if err != nil && extraErr == nil {
					extraErr = err
				}
				verdict.Props = append(verdict.Props, pv)
			}
		}
		kv, verdict.Err = e.checkers[0].CheckSegment(c, &h, e.opts)
		verdict.Atomic, verdict.K = kv.Atomic, kv.K
		if verdict.Err == nil {
			verdict.Err = extraErr
		}
	}
	e.settle(j.ks, func() {
		ks := j.ks
		if verdict.Err != nil {
			if ks.err == nil || j.seq < ks.errSeq {
				ks.err, ks.errSeq = verdict.Err, j.seq
			}
		} else if !j.scanOnly {
			e.checkers[0].Fold(&ks.props[0], kv)
			for i, pv := range verdict.Props {
				e.checkers[i+1].Fold(&ks.props[i+1], pv)
			}
		}
	})
	if e.epochLen > 0 {
		e.foldEpoch(e.epochOf(j.cutAt), func(es *EpochStats) {
			es.Segments++
			es.Ops += int64(n)
			if verdict.Err != nil {
				es.Errors++
			}
			if !j.scanOnly {
				if kv.K > es.MaxK {
					es.MaxK = kv.K
				}
				if e.mode == modeCheck && !kv.Atomic {
					es.Violations++
				}
				for _, pv := range verdict.Props {
					switch pv.Property {
					case PropertyDelta:
						if pv.Delta > es.MaxDelta {
							es.MaxDelta = pv.Delta
						}
					case PropertyRegularity:
						es.UnsafeReads += int64(pv.UnsafeReads)
						es.IrregularReads += int64(pv.IrregularReads)
					}
				}
			}
		})
	}
	// The decrement must follow the settle fold: a retirement finalizer that
	// observes inflight == 0 reads verdict state that includes this segment.
	j.ks.inflight.Add(-1)
	j.ks.sh.buffered.Add(-int64(n))
	e.buffered.Add(-int64(n))
	// FirstVerdictOps documents the pipelining win, so only verdicts
	// landing while input is still being consumed count.
	if !e.parseDone.Load() {
		e.firstVerdict.CompareAndSwap(0, e.opsIngested())
	}
	if e.sopts.OnSegment != nil {
		e.sopts.OnSegment(verdict)
	}
	e.bufPool.Put(h.Ops[:0])
}

// eachShardLocked runs fn on every shard under that shard's lock, one shard
// at a time. The read paths (reports, snapshots) use it so they can touch
// parser-side key state even while session producers are appending; for the
// reader-driven engine the locks are simply uncontended.
func (e *engine) eachShardLocked(fn func(*ingestShard)) {
	for _, sh := range e.shards {
		sh.mu.Lock()
		fn(sh)
		sh.mu.Unlock()
	}
}

// finalStats assembles StreamStats entirely from atomics — no lock, so
// monitoring never queues behind a backpressured or batch-locked producer.
func (e *engine) finalStats() StreamStats {
	return StreamStats{
		Ops:             e.opsIngested(),
		Keys:            int(e.keyCount.Load()),
		Segments:        e.segments.Load(),
		Merges:          e.merges.Load(),
		MaxOpenOps:      int(e.maxOpenAll()),
		PeakBufferedOps: e.peakBuffered.Load(),
		StaleReads:      e.staleReads.Load(),
		SaturatedKeys:   int(e.saturatedKeys.Load()),
		FirstVerdictOps: e.firstVerdict.Load(),
		Stopped:         e.stopped.Load(),
		Spills:          e.spills.Load(),
		OpsSpilled:      e.opsSpilled.Load(),
		SpillLoads:      e.spillLoads.Load(),
		RetiredKeys:     e.retiredNow.Load(),
		Retirements:     e.retirements.Load(),
		Readmissions:    e.readmissions.Load(),
	}
}
