package trace

import (
	"fmt"
	"runtime"
	"testing"

	"kat/internal/core"
	"kat/internal/generator"
	"kat/internal/history"
)

// fuzzTrace builds a deterministic multi-key trace with per-key histories of
// varying staleness depth, plus a few keys carrying true anomalies so the
// error paths cross the worker pool too.
func fuzzTrace(t testing.TB, keys int) *Trace {
	t.Helper()
	tr := New()
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%04d", i)
		if i%97 == 3 {
			// Anomalous key: a dangling read (no dictating write).
			tr.Add(key, history.Operation{Kind: history.KindWrite, Value: 1, Start: 0, Finish: 10})
			tr.Add(key, history.Operation{Kind: history.KindRead, Value: 99, Start: 20, Finish: 30})
			continue
		}
		h := generator.KAtomic(generator.Config{
			Seed: int64(i), Ops: 20, Concurrency: 2,
			StalenessDepth: i % 3, ReadFraction: 0.5,
		})
		for _, op := range h.Ops {
			tr.Add(key, op)
		}
	}
	return tr
}

// reportsEqual compares reports structurally; errors compare by message.
func reportsEqual(t *testing.T, a, b Report) {
	t.Helper()
	if a.K != b.K || len(a.Keys) != len(b.Keys) {
		t.Fatalf("report shapes differ: K=%d/%d keys=%d/%d", a.K, b.K, len(a.Keys), len(b.Keys))
	}
	for i := range a.Keys {
		x, y := a.Keys[i], b.Keys[i]
		if x.Key != y.Key || x.Ops != y.Ops || x.Atomic != y.Atomic {
			t.Errorf("key slot %d differs: %+v vs %+v", i, x, y)
		}
		switch {
		case (x.Err == nil) != (y.Err == nil):
			t.Errorf("key %s: error presence differs: %v vs %v", x.Key, x.Err, y.Err)
		case x.Err != nil && x.Err.Error() != y.Err.Error():
			t.Errorf("key %s: error text differs: %q vs %q", x.Key, x.Err, y.Err)
		}
	}
}

func TestCheckParallelMatchesSequential(t *testing.T) {
	tr := fuzzTrace(t, 1000)
	seq := Check(tr, 2, core.Options{})
	for _, workers := range []int{0, 2, runtime.GOMAXPROCS(0), 64} {
		par := CheckParallel(tr, 2, core.Options{}, workers)
		reportsEqual(t, seq, par)
	}
	if seq.Atomic() {
		t.Error("trace with anomalous keys reported atomic")
	}
}

func TestSmallestKByKeyParallelMatchesSequential(t *testing.T) {
	tr := fuzzTrace(t, 300)
	seq := SmallestKByKey(tr, core.Options{})
	for _, workers := range []int{0, 3, 64} {
		par := SmallestKByKeyParallel(tr, core.Options{}, workers)
		if len(par) != len(seq) {
			t.Fatalf("map sizes differ: %d vs %d", len(par), len(seq))
		}
		for key, k := range seq {
			if par[key] != k {
				t.Errorf("workers=%d key %s: k=%d, want %d", workers, key, par[key], k)
			}
		}
	}
}

func TestCheckParallelMoreWorkersThanKeys(t *testing.T) {
	tr := fuzzTrace(t, 3)
	seq := Check(tr, 2, core.Options{})
	par := CheckParallel(tr, 2, core.Options{}, 32)
	reportsEqual(t, seq, par)
}

func TestCheckParallelEmptyTrace(t *testing.T) {
	rep := CheckParallel(New(), 2, core.Options{}, 8)
	if !rep.Atomic() || len(rep.Keys) != 0 {
		t.Errorf("empty trace: %+v", rep)
	}
}
