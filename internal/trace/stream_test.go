package trace

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kat/internal/core"
	"kat/internal/generator"
	"kat/internal/history"
)

// streamText serializes a trace in global start order — the natural order
// of an operation log, which satisfies the streaming arrival requirement
// (per-key nondecreasing starts).
func streamText(tr *Trace) string {
	var b strings.Builder
	if err := WriteArrivalOrder(&b, tr); err != nil {
		panic(err)
	}
	return b.String()
}

// buildStreamTrace mixes well-formed keys of varying concurrency and
// staleness with keys carrying true anomalies, so every error path crosses
// the segmenter too.
func buildStreamTrace(keys int, seedBase int64) *Trace {
	tr := New()
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%03d", i)
		switch {
		case i%11 == 5:
			// Dangling read in its own segment.
			tr.Add(key, history.Operation{Kind: history.KindWrite, Value: 1, Start: 0, Finish: 10})
			tr.Add(key, history.Operation{Kind: history.KindRead, Value: 99, Start: 20, Finish: 30})
		case i%13 == 7:
			// Read precedes its dictating write across a quiescent cut.
			tr.Add(key, history.Operation{Kind: history.KindRead, Value: 5, Start: 0, Finish: 10})
			tr.Add(key, history.Operation{Kind: history.KindWrite, Value: 5, Start: 20, Finish: 30})
		case i%17 == 9:
			// Duplicate written value in different segments.
			tr.Add(key, history.Operation{Kind: history.KindWrite, Value: 1, Start: 0, Finish: 10})
			tr.Add(key, history.Operation{Kind: history.KindWrite, Value: 2, Start: 20, Finish: 30})
			tr.Add(key, history.Operation{Kind: history.KindWrite, Value: 1, Start: 40, Finish: 50})
		default:
			h := generator.KAtomic(generator.Config{
				Seed: seedBase + int64(i), Ops: 40, Concurrency: 1 + i%4,
				StalenessDepth: i % 3, ForceDepth: i%2 == 0, ReadFraction: 0.5,
			})
			if i%5 == 4 {
				h = generator.InjectStaleness(h, seedBase+int64(i), 0.25, 1+i%2)
			}
			for _, op := range h.Ops {
				tr.Add(key, op)
			}
		}
	}
	return tr
}

// assertStreamMatches compares a streamed report with the monolithic one:
// same keys, op counts, and verdicts, and the same error *presence* (the
// segmenter may classify a multi-anomaly key under a different kind).
func assertStreamMatches(t *testing.T, mono, stream Report) {
	t.Helper()
	if len(mono.Keys) != len(stream.Keys) {
		t.Fatalf("key counts differ: %d vs %d", len(mono.Keys), len(stream.Keys))
	}
	for i := range mono.Keys {
		m, s := mono.Keys[i], stream.Keys[i]
		if m.Key != s.Key || m.Ops != s.Ops || m.Atomic != s.Atomic {
			t.Errorf("key slot %d differs: %+v vs %+v", i, m, s)
		}
		if (m.Err == nil) != (s.Err == nil) {
			t.Errorf("key %s: error presence differs: %v vs %v", m.Key, m.Err, s.Err)
		}
	}
}

func TestStreamCheckMatchesMonolithic(t *testing.T) {
	for _, keys := range []int{1, 7, 60} {
		text := streamText(buildStreamTrace(keys, int64(keys)))
		tr, err := ParseReader(strings.NewReader(text))
		if err != nil {
			t.Fatalf("ParseReader: %v", err)
		}
		// Verdicts must be identical for any segment-boundary placement
		// (MinSegmentOps 1 cuts at every quiescent instant; 1<<20 never
		// cuts before EOF) and any worker count.
		for _, k := range []int{1, 2, 3} {
			mono := CheckParallel(tr, k, core.Options{}, 0)
			for _, cfg := range []struct{ workers, minSeg int }{
				{1, 1}, {4, 7}, {0, 0}, {2, 1 << 20},
			} {
				rep, stats, err := StreamCheck(strings.NewReader(text), k, core.Options{},
					StreamOptions{Workers: cfg.workers, MinSegmentOps: cfg.minSeg})
				if err != nil {
					t.Fatalf("keys=%d k=%d cfg=%+v: StreamCheck: %v", keys, k, cfg, err)
				}
				assertStreamMatches(t, mono, rep)
				if stats.Ops != int64(tr.Len()) || stats.Keys != len(tr.Keys) {
					t.Errorf("stats mismatch: %+v", stats)
				}
			}
		}
	}
}

// TestStreamMemoRepeatedRun re-streams the same trace with a shared verdict
// memo: the second pass must produce an identical report while serving
// segment verdicts from content-hash hits (the incremental re-verification
// path of the chunk scheduler).
func TestStreamMemoRepeatedRun(t *testing.T) {
	text := streamText(buildStreamTrace(12, 5))
	memo := core.NewMemo()
	opts := core.Options{Memo: memo}
	sopts := StreamOptions{Workers: 3, MinSegmentOps: 1}
	first, _, err := StreamCheck(strings.NewReader(text), 2, opts, sopts)
	if err != nil {
		t.Fatalf("first pass: %v", err)
	}
	second, _, err := StreamCheck(strings.NewReader(text), 2, opts, sopts)
	if err != nil {
		t.Fatalf("second pass: %v", err)
	}
	assertStreamMatches(t, first, second)
	st := memo.Stats()
	if st.Hits == 0 || st.Entries == 0 {
		t.Fatalf("re-streaming produced no memo hits: %+v", st)
	}
	// And against the plain monolithic verdicts, to rule out a memo that is
	// self-consistently wrong.
	tr, err := ParseReader(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	assertStreamMatches(t, CheckParallel(tr, 2, core.Options{}, 1), second)
}

func TestStreamSmallestKMatchesMonolithic(t *testing.T) {
	text := streamText(buildStreamTrace(40, 99))
	tr, err := ParseReader(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseReader: %v", err)
	}
	mono := SmallestKByKeyParallel(tr, core.Options{}, 0)
	for _, cfg := range []struct{ workers, minSeg int }{{1, 1}, {0, 0}, {2, 1 << 20}} {
		got, stats, err := StreamSmallestKByKey(strings.NewReader(text), core.Options{},
			StreamOptions{Workers: cfg.workers, MinSegmentOps: cfg.minSeg})
		if err != nil {
			t.Fatalf("StreamSmallestKByKey: %v", err)
		}
		if stats.SaturatedKeys != 0 {
			t.Fatalf("unexpected saturation: %+v", stats)
		}
		if len(got) != len(mono) {
			t.Fatalf("map sizes differ: %d vs %d", len(got), len(mono))
		}
		for key, k := range mono {
			if got[key] != k {
				t.Errorf("cfg=%+v key %s: k=%d, want %d", cfg, key, got[key], k)
			}
		}
	}
}

// A read reaching back into a still-held segment must merge, not misreport:
// with k=5 nothing dispatches early, so the backward read is resolved
// jointly and the verdicts match the monolithic ones exactly.
func TestStreamMergesBackwardReads(t *testing.T) {
	const text = `w k 1 0 10
w k 2 20 30
w k 3 40 50
w k 4 60 70
r k 1 80 90
`
	tr, _ := ParseReader(strings.NewReader(text))
	for _, k := range []int{4, 5} {
		mono := CheckParallel(tr, k, core.Options{}, 1)
		rep, stats, err := StreamCheck(strings.NewReader(text), k, core.Options{}, StreamOptions{Workers: 1, MinSegmentOps: 1})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		assertStreamMatches(t, mono, rep)
		if stats.Merges == 0 {
			t.Errorf("k=%d: expected a deque merge, stats %+v", k, stats)
		}
		if stats.StaleReads != 0 {
			t.Errorf("k=%d: backward read misclassified as stale: %+v", k, stats)
		}
	}
}

// A read reaching past k dispatched writes is a definitive violation — the
// segments are long gone, yet the verdict still matches the monolithic
// checker.
func TestStreamCrossBoundaryStaleRead(t *testing.T) {
	var b strings.Builder
	for i := 1; i <= 40; i++ {
		fmt.Fprintf(&b, "w k %d %d %d\n", i, 20*i, 20*i+10)
	}
	fmt.Fprintf(&b, "r k 1 %d %d\n", 20*41, 20*41+10)
	text := b.String()
	tr, _ := ParseReader(strings.NewReader(text))
	for _, k := range []int{1, 2, 3} {
		mono := CheckParallel(tr, k, core.Options{}, 1)
		if mono.Atomic() {
			t.Fatalf("k=%d: monolithic unexpectedly atomic", k)
		}
		rep, stats, err := StreamCheck(strings.NewReader(text), k, core.Options{}, StreamOptions{Workers: 2, MinSegmentOps: 1})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		assertStreamMatches(t, mono, rep)
		if stats.StaleReads == 0 {
			t.Errorf("k=%d: stale read not counted: %+v", k, stats)
		}
	}
	// smallest-k with a horizon the read out-reaches: floor, flagged.
	ks, stats, err := StreamSmallestKByKey(strings.NewReader(text), core.Options{},
		StreamOptions{Workers: 1, Horizon: 5, MinSegmentOps: 1})
	if err != nil {
		t.Fatalf("StreamSmallestKByKey: %v", err)
	}
	if stats.SaturatedKeys != 1 {
		t.Fatalf("want 1 saturated key, got %+v", stats)
	}
	if ks["k"] < 6 {
		t.Errorf("saturated floor too low: %d", ks["k"])
	}
	// With a generous horizon the answer is exact.
	ks, stats, err = StreamSmallestKByKey(strings.NewReader(text), core.Options{}, StreamOptions{MinSegmentOps: 1})
	if err != nil || stats.SaturatedKeys != 0 {
		t.Fatalf("exact run: %v %+v", err, stats)
	}
	if want := SmallestKByKey(tr, core.Options{})["k"]; ks["k"] != want {
		t.Errorf("exact k=%d, want %d", ks["k"], want)
	}
}

func TestStreamOutOfOrderDetected(t *testing.T) {
	const text = "w k 1 0 10\nw k 2 20 30\nw k 3 5 15\n"
	_, _, err := StreamCheck(strings.NewReader(text), 2, core.Options{}, StreamOptions{MinSegmentOps: 1})
	if err == nil || !strings.Contains(err.Error(), "committed cut") {
		t.Fatalf("out-of-order input not rejected: %v", err)
	}
}

func TestStreamBufferLimit(t *testing.T) {
	// One key, fully overlapping ops: no quiescent cut ever.
	var b strings.Builder
	for i := 1; i <= 100; i++ {
		fmt.Fprintf(&b, "w k %d %d %d\n", i, i, 1000+i)
	}
	_, _, err := StreamCheck(strings.NewReader(b.String()), 2, core.Options{},
		StreamOptions{MaxBufferedOps: 50, MinSegmentOps: 1})
	if err == nil || !strings.Contains(err.Error(), "MaxBufferedOps") {
		t.Fatalf("buffer cap not enforced: %v", err)
	}
}

// gateReader serves the input up to a gate position, then blocks until
// released (or a timeout it records). It proves verdicts land before the
// input is fully consumed: if the engine were not pipelined, nothing would
// ever release the gate.
type gateReader struct {
	rest     io.Reader
	pre      io.Reader
	release  chan struct{}
	timedOut bool
	opened   bool
}

func (g *gateReader) Read(p []byte) (int, error) {
	n, err := g.pre.Read(p)
	if n > 0 || err != io.EOF {
		return n, err
	}
	if !g.opened {
		select {
		case <-g.release:
		case <-time.After(30 * time.Second):
			g.timedOut = true
		}
		g.opened = true
	}
	return g.rest.Read(p)
}

func TestStreamVerdictBeforeEOF(t *testing.T) {
	tr := New()
	for i := 0; i < 4; i++ {
		h := generator.KAtomic(generator.Config{
			Seed: int64(i), Ops: 3000, Concurrency: 1, StalenessDepth: 1, ReadFraction: 0.5,
		})
		for _, op := range h.Ops {
			tr.Add(fmt.Sprintf("key-%d", i), op)
		}
	}
	text := streamText(tr)
	cut := len(text) * 3 / 4
	release := make(chan struct{})
	var once atomic.Bool
	g := &gateReader{
		pre:     strings.NewReader(text[:cut]),
		rest:    strings.NewReader(text[cut:]),
		release: release,
	}
	rep, stats, err := StreamCheck(g, 2, core.Options{}, StreamOptions{
		OnSegment: func(SegmentVerdict) {
			if once.CompareAndSwap(false, true) {
				close(release)
			}
		},
	})
	if err != nil {
		t.Fatalf("StreamCheck: %v", err)
	}
	if g.timedOut {
		t.Fatal("no segment verdict arrived while input was still pending")
	}
	if !rep.Atomic() {
		t.Fatalf("trace rejected: %+v", rep.FailingKeys())
	}
	if stats.FirstVerdictOps == 0 || stats.FirstVerdictOps >= stats.Ops {
		t.Errorf("first verdict at %d of %d ops — not pipelined", stats.FirstVerdictOps, stats.Ops)
	}
	if stats.PeakBufferedOps >= stats.Ops {
		t.Errorf("peak buffer %d not below trace size %d", stats.PeakBufferedOps, stats.Ops)
	}
}

func TestStreamStopOnViolation(t *testing.T) {
	// A violating key up front (one window whose segment is not 1-atomic,
	// plus two closer ops so the segment dispatches at threshold k=1),
	// then a long tail the engine should skip.
	var b strings.Builder
	b.WriteString("w bad 100 0 1000\n" + // long write holds the window open
		"w bad 1 10 20\nw bad 2 30 40\nr bad 1 50 60\n" + // forced staleness 2
		"w bad 3 2000 2010\nw bad 4 2020 2030\n")
	tail := New()
	for i := 0; i < 8; i++ {
		h := generator.KAtomic(generator.Config{Seed: int64(i), Ops: 2000, Concurrency: 1})
		for _, op := range h.Ops {
			op.Start += 1000
			op.Finish += 1000
			tail.Add(fmt.Sprintf("tail-%d", i), op)
		}
	}
	text := b.String() + streamText(tail)
	cut := len(b.String()) + len(text[len(b.String()):])/2
	release := make(chan struct{})
	var once atomic.Bool
	g := &gateReader{
		pre:     strings.NewReader(text[:cut]),
		rest:    strings.NewReader(text[cut:]),
		release: release,
	}
	rep, stats, err := StreamCheck(g, 1, core.Options{}, StreamOptions{
		StopOnViolation: true,
		MinSegmentOps:   1,
		OnSegment: func(sv SegmentVerdict) {
			if !sv.Atomic && once.CompareAndSwap(false, true) {
				close(release)
			}
		},
	})
	if err != nil {
		t.Fatalf("StreamCheck: %v", err)
	}
	if g.timedOut {
		t.Fatal("violation verdict never arrived")
	}
	if !stats.Stopped {
		t.Fatalf("engine did not stop early: %+v", stats)
	}
	for _, kr := range rep.Keys {
		if kr.Key == "bad" && kr.Atomic {
			t.Error("violating key reported atomic")
		}
	}
}

func TestStreamDuplicateValueAcrossSegments(t *testing.T) {
	const text = "w k 1 0 10\nw k 2 20 30\nw k 1 40 50\n"
	tr, _ := ParseReader(strings.NewReader(text))
	mono := CheckParallel(tr, 2, core.Options{}, 1)
	rep, _, err := StreamCheck(strings.NewReader(text), 2, core.Options{}, StreamOptions{MinSegmentOps: 1})
	if err != nil {
		t.Fatalf("StreamCheck: %v", err)
	}
	assertStreamMatches(t, mono, rep)
	if rep.Keys[0].Err == nil {
		t.Fatal("cross-segment duplicate value not reported")
	}
}

func TestStreamEmptyAndTiny(t *testing.T) {
	rep, stats, err := StreamCheck(strings.NewReader(""), 2, core.Options{}, StreamOptions{})
	if err != nil || len(rep.Keys) != 0 || !rep.Atomic() || stats.Ops != 0 {
		t.Fatalf("empty stream: %+v %+v %v", rep, stats, err)
	}
	rep, _, err = StreamCheck(strings.NewReader("w k 1 0 10\n"), 1, core.Options{}, StreamOptions{})
	if err != nil || !rep.Atomic() || rep.Keys[0].Ops != 1 {
		t.Fatalf("single op: %+v %v", rep, err)
	}
	if _, _, err = StreamCheck(strings.NewReader("w k 1 0\n"), 1, core.Options{}, StreamOptions{}); err == nil {
		t.Fatal("malformed line accepted")
	}
	if _, _, err = StreamCheck(strings.NewReader("ok"), 0, core.Options{}, StreamOptions{}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestParseReaderMatchesParse(t *testing.T) {
	text := streamText(buildStreamTrace(12, 7)) + "# comment\nw extra 1 0 10; r extra 1 20 30\n"
	want, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	got, err := ParseReader(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseReader: %v", err)
	}
	if len(want.Keys) != len(got.Keys) {
		t.Fatalf("key counts differ: %d vs %d", len(want.Keys), len(got.Keys))
	}
	for key, wh := range want.Keys {
		gh := got.Keys[key]
		if gh == nil || gh.Len() != wh.Len() {
			t.Fatalf("key %s differs", key)
		}
		for i := range wh.Ops {
			if wh.Ops[i] != gh.Ops[i] {
				t.Fatalf("key %s op %d differs: %v vs %v", key, i, wh.Ops[i], gh.Ops[i])
			}
		}
	}
}
