//go:build race

package trace

// raceEnabled reports that the race detector is instrumenting this build;
// allocation-count assertions are meaningless then (the detector itself
// allocates on pool and lock operations).
const raceEnabled = true
