package trace

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"kat/internal/core"
	"kat/internal/history"
)

// genSessionTrace builds a deterministic multi-key trace text in arrival
// order, with enough quiescent gaps that MinSegmentOps 1 produces real
// segmentation.
func genSessionTrace(seed int64, keys, opsPerKey int) string {
	rng := rand.New(rand.NewSource(seed))
	t := New()
	for ki := 0; ki < keys; ki++ {
		clock := int64(rng.Intn(5))
		vals := 0
		var written []int64
		for i := 0; i < opsPerKey; i++ {
			var op history.Operation
			start := clock
			clock += int64(1 + rng.Intn(4))
			op.Start, op.Finish = start, clock
			clock += int64(rng.Intn(6)) // occasional quiescent gap
			if len(written) == 0 || rng.Float64() < 0.5 {
				vals++
				op.Kind = history.KindWrite
				op.Value = int64(vals)
				written = append(written, op.Value)
			} else {
				op.Kind = history.KindRead
				// Mostly fresh, sometimes stale by a few writes.
				back := rng.Intn(3)
				if back >= len(written) {
					back = len(written) - 1
				}
				op.Value = written[len(written)-1-back]
			}
			t.Add(fmt.Sprintf("key-%02d", ki), op)
		}
	}
	var b strings.Builder
	if err := WriteArrivalOrder(&b, t); err != nil {
		panic(err)
	}
	return b.String()
}

// feedPerOp pushes the canonical text into the session one operation at a
// time through Append (exercising the string-key path).
func feedPerOp(t *testing.T, s *Session, text string) {
	t.Helper()
	err := ParseStream(strings.NewReader(text), func(key string, op history.Operation) error {
		return s.Append(key, op)
	})
	if err != nil {
		t.Fatalf("feed: %v", err)
	}
}

func TestSessionMatchesStreamCheck(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		text := genSessionTrace(seed, 4, 60)
		for _, k := range []int{1, 2} {
			sopts := StreamOptions{Workers: 2, MinSegmentOps: 1}
			want, wantStats, err := StreamCheck(strings.NewReader(text), k, core.Options{}, sopts)
			if err != nil {
				t.Fatalf("seed %d: StreamCheck: %v", seed, err)
			}
			s, err := NewCheckSession(k, core.Options{}, sopts)
			if err != nil {
				t.Fatal(err)
			}
			feedPerOp(t, s, text)
			if err := s.Flush(); err != nil {
				t.Fatalf("seed %d: Flush: %v", seed, err)
			}
			got, gotStats := s.Report()
			if len(got.Keys) != len(want.Keys) {
				t.Fatalf("seed %d k=%d: key counts differ", seed, k)
			}
			for i := range want.Keys {
				w, g := want.Keys[i], got.Keys[i]
				if w.Key != g.Key || w.Ops != g.Ops || w.Atomic != g.Atomic || (w.Err == nil) != (g.Err == nil) {
					t.Fatalf("seed %d k=%d: key %s: stream %+v vs session %+v", seed, k, w.Key, w, g)
				}
			}
			if gotStats.Ops != wantStats.Ops || gotStats.Keys != wantStats.Keys {
				t.Fatalf("seed %d: stats differ: %+v vs %+v", seed, gotStats, wantStats)
			}
		}

		wantK, _, err := StreamSmallestKByKey(strings.NewReader(text), core.Options{},
			StreamOptions{Workers: 2, MinSegmentOps: 1})
		if err != nil {
			t.Fatal(err)
		}
		s := NewSmallestKSession(core.Options{}, StreamOptions{Workers: 2, MinSegmentOps: 1})
		if _, err := s.AppendTrace(strings.NewReader(text)); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		gotK, _ := s.SmallestKByKey()
		for key, want := range wantK {
			if gotK[key] != want {
				t.Fatalf("seed %d: key %s: session k=%d, stream k=%d", seed, key, gotK[key], want)
			}
		}
	}
}

func TestSessionSharedPool(t *testing.T) {
	pool := core.NewPool(3)
	defer pool.Close()
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			text := genSessionTrace(seed, 3, 50)
			want, _, err := StreamSmallestKByKey(strings.NewReader(text), core.Options{},
				StreamOptions{Workers: 1, MinSegmentOps: 1})
			if err != nil {
				t.Error(err)
				return
			}
			s := NewSmallestKSession(core.Options{}, StreamOptions{Pool: pool, MinSegmentOps: 1})
			if _, err := s.AppendTrace(strings.NewReader(text)); err != nil {
				t.Error(err)
				return
			}
			if err := s.Flush(); err != nil {
				t.Error(err)
				return
			}
			got, _ := s.SmallestKByKey()
			for key, w := range want {
				if got[key] != w {
					t.Errorf("seed %d key %s: shared-pool k=%d, want %d", seed, key, got[key], w)
				}
			}
		}(int64(i + 1))
	}
	wg.Wait()
	// The shared pool must survive every session: it still runs work.
	s := NewSmallestKSession(core.Options{}, StreamOptions{Pool: pool, MinSegmentOps: 1})
	if err := s.Append("late", history.Operation{Kind: history.KindWrite, Value: 1, Start: 0, Finish: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.SmallestKByKey(); got["late"] != 1 {
		t.Fatalf("post-sessions pool run: k=%d, want 1", got["late"])
	}
}

func TestSessionConcurrentAppend(t *testing.T) {
	// Each goroutine owns disjoint keys, so per-key arrival order is
	// preserved no matter how the appends interleave.
	const producers = 8
	texts := make([]string, producers)
	for i := range texts {
		texts[i] = genSessionTrace(int64(1000+i), 2, 40)
	}
	// Distinct keys per producer: prefix them.
	s := NewSmallestKSession(core.Options{}, StreamOptions{Workers: 2, MinSegmentOps: 1})
	seq := make(map[string]int, producers*2)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i, text := range texts {
		wg.Add(1)
		go func(i int, text string) {
			defer wg.Done()
			err := ParseStream(strings.NewReader(text), func(key string, op history.Operation) error {
				return s.Append(fmt.Sprintf("p%d-%s", i, key), op)
			})
			if err != nil {
				t.Error(err)
			}
		}(i, text)
		// Sequential reference under the same prefixed keys.
		ref := NewSmallestKSession(core.Options{}, StreamOptions{Workers: 1, MinSegmentOps: 1})
		ParseStream(strings.NewReader(text), func(key string, op history.Operation) error {
			return ref.Append(fmt.Sprintf("p%d-%s", i, key), op)
		})
		ref.Flush()
		refK, _ := ref.SmallestKByKey()
		mu.Lock()
		for k, v := range refK {
			seq[k] = v
		}
		mu.Unlock()
	}
	wg.Wait()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	got, _ := s.SmallestKByKey()
	if len(got) != len(seq) {
		t.Fatalf("key count %d, want %d", len(got), len(seq))
	}
	for k, v := range seq {
		if got[k] != v {
			t.Fatalf("key %s: concurrent k=%d, sequential %d", k, got[k], v)
		}
	}
}

func TestSessionAppendAfterFlush(t *testing.T) {
	s, err := NewCheckSession(2, core.Options{}, StreamOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append("a", history.Operation{Kind: history.KindWrite, Value: 1, Start: 0, Finish: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil { // idempotent
		t.Fatal(err)
	}
	err = s.Append("a", history.Operation{Kind: history.KindRead, Value: 1, Start: 2, Finish: 3})
	if !errors.Is(err, ErrSessionFlushed) {
		t.Fatalf("append after flush: %v, want ErrSessionFlushed", err)
	}
	if _, err := s.AppendTrace(strings.NewReader("w a 9 9 10\n")); !errors.Is(err, ErrSessionFlushed) {
		t.Fatalf("AppendTrace after flush: %v, want ErrSessionFlushed", err)
	}
}

func TestSessionStickyOutOfOrder(t *testing.T) {
	s := NewSmallestKSession(core.Options{}, StreamOptions{Workers: 1, MinSegmentOps: 1})
	ops := []struct {
		start, finish int64
	}{{0, 1}, {10, 11}, {20, 21}}
	for i, iv := range ops {
		op := history.Operation{Kind: history.KindWrite, Value: int64(i + 1), Start: iv.start, Finish: iv.finish}
		if err := s.Append("a", op); err != nil {
			t.Fatal(err)
		}
	}
	// Starts before the committed cut: out of order.
	bad := history.Operation{Kind: history.KindWrite, Value: 9, Start: 5, Finish: 6}
	err := s.Append("a", bad)
	if !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("out-of-order append: %v, want ErrOutOfOrder", err)
	}
	// Sticky: even a well-formed append now fails with the same error.
	good := history.Operation{Kind: history.KindWrite, Value: 10, Start: 50, Finish: 51}
	if err2 := s.Append("a", good); !errors.Is(err2, ErrOutOfOrder) {
		t.Fatalf("append after error: %v, want sticky ErrOutOfOrder", err2)
	}
	if ferr := s.Flush(); !errors.Is(ferr, ErrOutOfOrder) {
		t.Fatalf("Flush: %v, want sticky ErrOutOfOrder", ferr)
	}
}

func TestSessionSnapshotLifecycle(t *testing.T) {
	s := NewSmallestKSession(core.Options{}, StreamOptions{Workers: 1, MinSegmentOps: 1, Horizon: 2})
	if snaps := s.Snapshot(); len(snaps) != 0 {
		t.Fatalf("fresh session snapshot: %v", snaps)
	}
	// A staircase of writes each read back immediately: smallest k = 1,
	// segments close at every quiescent gap.
	clock := int64(0)
	for i := 0; i < 30; i++ {
		w := history.Operation{Kind: history.KindWrite, Value: int64(i + 1), Start: clock, Finish: clock + 1}
		r := history.Operation{Kind: history.KindRead, Value: int64(i + 1), Start: clock + 2, Finish: clock + 3}
		clock += 4
		if err := s.Append("a", w); err != nil {
			t.Fatal(err)
		}
		if err := s.Append("a", r); err != nil {
			t.Fatal(err)
		}
	}
	mid := s.Snapshot()
	if len(mid) != 1 || mid[0].Key != "a" || mid[0].Ops != 60 {
		t.Fatalf("mid snapshot: %+v", mid)
	}
	if mid[0].Err != nil || !mid[0].Atomic {
		t.Fatalf("mid snapshot flags: %+v", mid[0])
	}
	if s.BufferedOps() < 0 {
		t.Fatalf("negative buffered ops")
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	fin := s.Snapshot()
	if len(fin) != 1 || fin[0].PendingOps != 0 {
		t.Fatalf("final snapshot still pending: %+v", fin)
	}
	if fin[0].SmallestK != 1 {
		t.Fatalf("final smallest k = %d, want 1", fin[0].SmallestK)
	}
	st := s.Stats()
	if st.Ops != 60 || st.Keys != 1 || st.Segments == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestSessionStopMatchesStreamOnViolation pins the early-exit contract: a
// stopped session drains only what was already dispatched, so keys the
// reader-driven engine never verified (stopped before dispatch) must report
// identically — not get flushed to a different verdict at Flush.
func TestSessionStopMatchesStreamOnViolation(t *testing.T) {
	// The stale read r a 1 becomes a cross-boundary violation when its
	// window closes at w a 4 — detected synchronously by the parser, so the
	// stop lands at a deterministic input position in both engines: w b 1
	// is never admitted, key b must not exist, and the held key-a segments
	// must not be flushed to extra verdicts.
	canon := "w a 1 0 10\nw a 2 20 30\nw a 3 40 50\nr a 1 60 70\nw a 4 80 90\nw b 1 100 110\n"
	sopts := StreamOptions{Workers: 1, MinSegmentOps: 1, StopOnViolation: true}
	want, wantStats, err := StreamCheck(strings.NewReader(canon), 1, core.Options{}, sopts)
	if err != nil {
		t.Fatal(err)
	}
	if !wantStats.Stopped || len(want.Keys) != 1 {
		t.Fatalf("scenario must stop mid-parse with only key a: %+v %+v", want, wantStats)
	}
	s, err := NewCheckSession(1, core.Options{}, sopts)
	if err != nil {
		t.Fatal(err)
	}
	feedPerOp(t, s, canon)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	got, gotStats := s.Report()
	if gotStats.Stopped != wantStats.Stopped {
		t.Fatalf("stopped: session %v, stream %v", gotStats.Stopped, wantStats.Stopped)
	}
	if gotStats.Segments != wantStats.Segments {
		t.Fatalf("segments: session %d, stream %d (stopped session must not flush)", gotStats.Segments, wantStats.Segments)
	}
	if len(got.Keys) != len(want.Keys) {
		t.Fatalf("key counts differ: %+v vs %+v", got.Keys, want.Keys)
	}
	for i := range want.Keys {
		w, g := want.Keys[i], got.Keys[i]
		if w.Key != g.Key || w.Atomic != g.Atomic || (w.Err == nil) != (g.Err == nil) {
			t.Fatalf("key %s: stream %+v vs session %+v", w.Key, w, g)
		}
	}
}

func TestSessionStopOnViolation(t *testing.T) {
	s, err := NewCheckSession(1, core.Options{},
		StreamOptions{Workers: 1, MinSegmentOps: 1, StopOnViolation: true})
	if err != nil {
		t.Fatal(err)
	}
	// Key becomes non-1-atomic: a read two writes back.
	text := "w a 1 0 1\nw a 2 10 11\nw a 3 20 21\nr a 1 30 31\n"
	if _, err := s.AppendTrace(strings.NewReader(text)); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	// Keep appending until the violation verdict lands and trips the stop
	// flag; appends then become silent no-ops rather than errors.
	clock := int64(100)
	for i := 0; i < 10_000 && !s.Stats().Stopped; i++ {
		op := history.Operation{Kind: history.KindWrite, Value: int64(100 + i), Start: clock, Finish: clock + 1}
		clock += 10
		if err := s.Append("a", op); err != nil {
			t.Fatalf("append during stop race: %v", err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, stats := s.Report()
	if !stats.Stopped {
		t.Fatal("violation did not stop the session")
	}
	if len(rep.Keys) != 1 || rep.Keys[0].Atomic {
		t.Fatalf("report: %+v", rep)
	}
}
