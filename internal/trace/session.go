package trace

// Push-driven streaming verification.
//
// StreamCheck and StreamSmallestKByKey own their input: they pull operations
// out of an io.Reader until it is exhausted. An online monitor cannot hand
// over a reader — operations arrive one RPC at a time, from many concurrent
// clients, with no end in sight — so Session exposes the same engine in push
// form: Append routes single operations into the per-key segment
// accumulators, verdicts accumulate on the verification pool exactly as in
// the reader-driven form, Snapshot reads the live per-key state at any
// moment, and Flush is the graceful drain: it commits every open window,
// verifies everything still held, and waits, after which the reports are
// final and identical to what the reader-driven engine would have produced
// on the concatenation of everything appended (the segment-equivalence
// lemma in stream.go carries over unchanged — the cut rules never depended
// on who drives the parser).
//
// Concurrency shape: there is no session-wide lock. Per-key state is
// striped over StreamOptions.IngestShards independently locked shards
// (key-hash routed), the session-level admission flags (sticky ingest
// error, flushed) are atomics, and every statistic reads lock-free — so
// producers contend only when their keys share a shard, and monitoring
// never queues behind a backpressured producer. The batch entry points
// (AppendBatch, AppendTraceBatch in batch.go) push this further: they
// group a whole chunk of operations by shard first and take each shard
// lock once per batch instead of once per operation.
//
// Many sessions may share one verification pool via StreamOptions.Pool; a
// session only ever waits on its own dispatched segments.

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"kat/internal/core"
	"kat/internal/history"
)

// ErrSessionFlushed reports an Append on a session that was already drained
// by Flush. A flushed session is terminal: its cuts are committed, so later
// operations could not be admitted without violating the arrival-order
// invariant.
var ErrSessionFlushed = errors.New("trace: session already flushed")

// stickyIngestErr boxes the first ingest error so it can live in an
// atomic.Pointer (admission gating without a lock).
type stickyIngestErr struct{ err error }

// Session is the push-driven form of the streaming engine. Create one with
// NewCheckSession (fixed-k verdicts) or NewSmallestKSession (per-key
// smallest-k); feed it with Append, AppendTrace, or the batch forms
// AppendBatch / AppendTraceBatch; observe it with Snapshot, Stats, Report,
// or SmallestKByKey; and retire it with Flush.
//
// All methods are safe for concurrent use: appends from many goroutines
// interleave at operation granularity (batch appends at shard-batch
// granularity; per-key operations must still arrive in nondecreasing start
// order across quiescent gaps, so route each key through one producer — see
// ErrOutOfOrder). Ingest errors are sticky: after an Append fails, every
// later Append returns the same error and Flush reports it, mirroring the
// reader-driven engine's abort-on-error semantics.
type Session struct {
	e *engine

	// err is the sticky ingest error: the first failing append publishes
	// it (CAS, first writer wins) and every later admission check reads it
	// without a lock.
	err atomic.Pointer[stickyIngestErr]
	// flushed marks the session terminal. Appends recheck it under their
	// shard lock, and Flush acquires every shard lock after setting it, so
	// no append can slip in behind the drain.
	flushed atomic.Bool
	// flushMu serializes Flush itself (idempotence; concurrent callers all
	// wait for the one drain).
	flushMu sync.Mutex

	// logger, when set, receives the write-ahead copy of every accepted
	// operation (see ShardLogger in durable.go). An atomic pointer so the
	// undurable hot path pays one load and a nil check.
	logger atomic.Pointer[loggerBox]

	// batchScratches recycles the per-call grouping buffers of the batch
	// ingest paths, keeping them allocation-free at steady state.
	batchScratches sync.Pool
	// batchChunk overrides the AppendTraceBatch read-chunk size (bytes);
	// 0 uses defaultBatchChunk. Tests shrink it to exercise chunk-boundary
	// carry handling.
	batchChunk int
}

// NewCheckSession returns a session verifying every key at bound k, the push
// form of StreamCheck.
func NewCheckSession(k int, opts core.Options, sopts StreamOptions) (*Session, error) {
	if k < 1 {
		return nil, fmt.Errorf("trace: k must be >= 1, got %d", k)
	}
	if sopts.IngestShards <= 0 {
		sopts.IngestShards = DefaultIngestShards
	}
	return &Session{e: newEngine(modeCheck, k, k, opts, sopts)}, nil
}

// NewSmallestKSession returns a session computing each key's smallest k, the
// push form of StreamSmallestKByKey (same horizon semantics).
func NewSmallestKSession(opts core.Options, sopts StreamOptions) *Session {
	horizon := sopts.Horizon
	if horizon <= 0 {
		horizon = DefaultHorizon
	}
	if sopts.IngestShards <= 0 {
		sopts.IngestShards = DefaultIngestShards
	}
	return &Session{e: newEngine(modeSmallestK, 0, horizon, opts, sopts)}
}

// Append routes one operation into its key's segment accumulator. The
// operation's ID is assigned internally. Append blocks when verification
// falls behind the configured in-flight budget (backpressure, as in the
// reader-driven engine). After StopOnViolation fires, appends become no-ops
// and Stats reports Stopped. Only the key's shard lock is taken, so
// producers working disjoint shards never contend; batches of operations
// amortize even that via AppendBatch.
func (s *Session) Append(key string, op history.Operation) error {
	if err := s.gate(); err != nil {
		return err
	}
	logger := s.shardLogger()
	preWM := s.e.watermark() // idleness reference for the cold-shard sweep
	si := s.e.shardIndex(key)
	sh := s.e.shards[si]
	sh.lockIngest()
	// Recheck under the lock: Flush sets the flag and then acquires every
	// shard lock, so an append that saw flushed==false before the drain
	// must not land after it.
	if err := s.gate(); err != nil {
		sh.mu.Unlock()
		return err
	}
	ok, err := s.settleAdd(s.e.addStringIn(sh, key, op))
	if ok && logger != nil {
		sc := s.getScratch()
		sc.wal = appendKeyedOpText(sc.wal[:0], key, op)
		lerr := s.logShard(logger, si, sc.wal)
		s.putScratch(sc)
		if lerr != nil && err == nil {
			err = lerr
		}
	}
	sh.mu.Unlock()
	if ok && logger != nil && err == nil {
		err = s.commitLog(logger)
	}
	if ok && err == nil {
		err = s.sweepAllSticky(1, preWM)
	}
	return err
}

// gate checks admission preconditions, lock-free: a flushed session is
// terminal, and ingest errors are sticky.
func (s *Session) gate() error {
	if s.flushed.Load() {
		return ErrSessionFlushed
	}
	if p := s.err.Load(); p != nil {
		return p.err
	}
	return nil
}

// settleAdd folds an engine admission result into the session state;
// accepted reports whether the operation actually entered the engine
// (false for operations silently dropped after StopOnViolation fired).
// The first error wins the sticky slot; concurrent appends that were
// already past the gate may still report their own errors, every later
// admission returns the published one.
func (s *Session) settleAdd(err error) (accepted bool, _ error) {
	if errors.Is(err, errStopped) {
		s.e.stopped.Store(true) // live Stats report the early exit immediately
		return false, nil
	}
	if err != nil {
		s.err.CompareAndSwap(nil, &stickyIngestErr{err})
		return false, err
	}
	return true, nil
}

// AppendTrace streams the keyed text format from r into the session,
// returning the number of operations actually appended (operations dropped
// after a StopOnViolation early exit are not counted). The key's shard lock
// is taken per operation, so concurrent AppendTrace calls (one per ingesting
// client) interleave at operation granularity instead of serializing whole
// requests; AppendTraceBatch is the higher-throughput form that takes each
// shard lock once per parsed chunk. The key reaches the engine as a
// line-buffer view, keeping this path allocation-free past each key's first
// sighting. A parse or ingest error aborts the read mid-stream; operations
// already appended stay appended (ingest is per-operation, not
// transactional).
func (s *Session) AppendTrace(r io.Reader) (int64, error) {
	var n int64
	logger := s.shardLogger()
	var sc *batchScratch
	if logger != nil {
		sc = s.getScratch()
		defer s.putScratch(sc)
	}
	err := parseStreamBytes(r, func(key []byte, op history.Operation) error {
		if err := s.gate(); err != nil {
			return err
		}
		preWM := s.e.watermark() // idleness reference for the cold-shard sweep
		si := s.e.shardIndexBytes(key)
		sh := s.e.shards[si]
		sh.lockIngest()
		if err := s.gate(); err != nil {
			sh.mu.Unlock()
			return err
		}
		ok, err := s.settleAdd(s.e.addIn(sh, key, op))
		if ok {
			n++
			if logger != nil {
				sc.wal = appendKeyedOpText(sc.wal[:0], key, op)
				if lerr := s.logShard(logger, si, sc.wal); lerr != nil && err == nil {
					err = lerr
				}
			}
		}
		sh.mu.Unlock()
		if ok && err == nil {
			err = s.sweepAllSticky(1, preWM)
		}
		return err
	})
	if logger != nil {
		if cerr := s.commitLog(logger); cerr != nil && err == nil {
			err = cerr
		}
	}
	return n, err
}

// Flush drains the session: it commits every open window, dispatches all
// held segments, waits for every in-flight verification, and — for an
// engine-owned pool — releases the workers. After Flush the session is
// terminal (Append returns ErrSessionFlushed) and Report, SmallestKByKey,
// and Snapshot are final. Flush returns the sticky ingest error, if any;
// as in the reader-driven engine, a session that erred drains only what was
// already dispatched. Flush is idempotent.
func (s *Session) Flush() error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	if s.flushed.Load() {
		return s.stickyErr()
	}
	s.flushed.Store(true)
	// Take every shard lock: in-flight appends (which passed the gate
	// before the flag flipped) finish first, and later ones recheck the
	// gate under their shard lock and bounce. Holding the locks through
	// the drain also keeps Snapshot readers out of the half-committed
	// windows.
	for _, sh := range s.e.shards {
		sh.mu.Lock()
	}
	// A stopped session drains like the reader-driven engine's early exit:
	// only what was already dispatched, so the report covers the same
	// consumed prefix StreamCheck would report.
	if s.e.stopped.Load() {
		s.e.drain(errStopped)
	} else if derr := s.e.drain(s.stickyErr()); derr != nil {
		// A spill reload failing during the drain is this session's first
		// error — record it so Flush and the reports surface it.
		s.err.CompareAndSwap(nil, &stickyIngestErr{derr})
	}
	for i := len(s.e.shards) - 1; i >= 0; i-- {
		s.e.shards[i].mu.Unlock()
	}
	s.e.finish()
	return s.stickyErr()
}

// stickyErr returns the published sticky ingest error, if any.
func (s *Session) stickyErr() error {
	if p := s.err.Load(); p != nil {
		return p.err
	}
	return nil
}

// KeyVerdict is one key's live verification state, as reported by Snapshot.
type KeyVerdict struct {
	// Key is the register.
	Key string
	// Ops counts the key's ingested operations.
	Ops int
	// PendingOps counts operations not yet dispatched for verification:
	// the open window plus held (closed but not horizon-cleared) segments.
	// Zero after Flush.
	PendingOps int
	// Atomic is the fixed-k verdict over everything verified so far (check
	// sessions; true until a violating segment lands, final after Flush).
	// False whenever Err is set.
	Atomic bool
	// SmallestK is the largest per-segment smallest k verified so far
	// (smallest-k sessions) — a lower bound on the key's final smallest k
	// until Flush, 0 before any segment verdict and in check sessions.
	SmallestK int
	// Saturated reports a read staler than the session horizon; SmallestK
	// is then only the horizon floor even after Flush.
	Saturated bool
	// Properties is the set of properties verified for this key (always
	// includes k-atomicity; extras per StreamOptions.Properties). The
	// fields below are populated only for enabled properties.
	Properties PropertySet
	// SmallestDelta is the largest per-segment smallest Δ verified so far
	// (Δ-atomicity property), on the input time scale — a lower bound until
	// Flush, 0 before any segment verdict.
	SmallestDelta int64
	// DeltaSaturated reports that a read staler than the session horizon
	// reduced SmallestDelta to a floor even after Flush.
	DeltaSaturated bool
	// UnsafeReads and IrregularReads count reads violating Lamport safety
	// and regularity (regularity property) over everything verified so far.
	UnsafeReads    int
	IrregularReads int
	// Retired reports that the key was retired after its TTL of quiescence:
	// the verdict is its folded final state (identical to what a
	// never-retired run reports) and its live state has been freed. A later
	// operation re-admits the key and clears the flag.
	Retired bool
	// Err is the key's anomaly or verification error, if any.
	Err error
}

// Snapshot returns the live per-key state, key-sorted. It may be called at
// any time, including concurrently with appends (each shard is read under
// its own lock, one shard at a time); verdict fields reflect exactly the
// segments verified so far.
func (s *Session) Snapshot() []KeyVerdict {
	return s.e.keyVerdicts()
}

// Report returns the fixed-k trace report of a check session, in the shape
// StreamCheck produces. Before Flush it covers only the segments verified so
// far (keys with undispatched operations may still flip); after Flush it is
// final and identical to StreamCheck on the same operation sequence.
func (s *Session) Report() (Report, StreamStats) {
	return s.e.checkReport(), s.e.finalStats()
}

// SmallestKByKey returns each key's smallest k in the shape
// StreamSmallestKByKey produces (0 for keys that failed verification).
// Before Flush the values are lower bounds; after Flush they are final and
// identical to StreamSmallestKByKey on the same operation sequence, with the
// same horizon caveat (Saturated keys report the floor).
func (s *Session) SmallestKByKey() (map[string]int, StreamStats) {
	return s.e.smallestKMap(), s.e.finalStats()
}

// Stats returns the session's streaming statistics so far. Entirely
// lock-free, so monitoring never contends with ingest.
func (s *Session) Stats() StreamStats {
	return s.e.finalStats()
}

// BufferedOps returns the number of live operations currently held by the
// session (open windows + held segments + in-flight verification) — the
// working-set gauge an operator watches. Lock-free.
func (s *Session) BufferedOps() int64 { return s.e.buffered.Load() }

// Keys returns the number of distinct keys seen so far. Lock-free, so
// monitoring never queues behind a backpressured Append.
func (s *Session) Keys() int64 { return s.e.keyCount.Load() }

// PeakBufferedOps returns the largest BufferedOps value observed. Lock-free.
func (s *Session) PeakBufferedOps() int64 { return s.e.peakBuffered.Load() }

// Shards returns the session's ingest shard count (the resolved
// StreamOptions.IngestShards).
func (s *Session) Shards() int { return len(s.e.shards) }

// ShardIngestedOps returns the number of operations routed into shard i so
// far. Lock-free; feed it to a per-shard gauge to watch key-hash balance.
func (s *Session) ShardIngestedOps(i int) int64 { return s.e.shards[i].ingested.Load() }

// ShardBufferedOps returns shard i's live operations (open windows + held
// segments + in-flight verification of its keys). Lock-free.
func (s *Session) ShardBufferedOps(i int) int64 { return s.e.shards[i].buffered.Load() }

// IngestLockAcquisitions returns the total number of ingest-path shard-lock
// acquisitions so far, summed over shards — the numerator of the
// locks-per-operation measurement that batch ingest shrinks (monitoring and
// Flush acquisitions are not counted). Lock-free.
func (s *Session) IngestLockAcquisitions() int64 {
	var n int64
	for _, sh := range s.e.shards {
		n += sh.lockTakes.Load()
	}
	return n
}

// SnapshotKey returns one key's live verification state (see Snapshot),
// without building the full key-sorted snapshot; ok is false for keys the
// session has not seen.
func (s *Session) SnapshotKey(key string) (KeyVerdict, bool) {
	sh := s.e.shards[s.e.shardIndex(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ks, ok := sh.keys[key]
	if !ok {
		if rk, rok := sh.retired[key]; rok {
			return retiredVerdictOf(key, rk), true
		}
		return KeyVerdict{}, false
	}
	return keyVerdictOf(ks), true
}

// keyVerdictOf builds one key's verdict; the caller holds the key's shard
// lock (for the parser-side fields), and the verdict fields are read under
// the key's own lock.
func keyVerdictOf(ks *keyState) KeyVerdict {
	pending := ks.totalOpen()
	for _, seg := range ks.deque {
		pending += seg.nops
	}
	ks.mu.Lock()
	defer ks.mu.Unlock()
	kv := KeyVerdict{
		Key:        ks.key,
		Ops:        ks.ops,
		PendingOps: pending,
		Properties: PropertySetK,
		Err:        ks.err,
	}
	applyPropVerdicts(&kv, ks.props, ks.err)
	return kv
}

// keyVerdicts builds the key-sorted per-key verdict list (the Snapshot and
// StreamVerdictsByKey shape) under the standard locking discipline.
func (e *engine) keyVerdicts() []KeyVerdict {
	var out []KeyVerdict
	e.eachShardLocked(func(sh *ingestShard) {
		for _, ks := range sh.keys {
			out = append(out, keyVerdictOf(ks))
		}
		for key, rk := range sh.retired {
			out = append(out, retiredVerdictOf(key, rk))
		}
	})
	sortKeyVerdicts(out)
	return out
}

func sortKeyVerdicts(kvs []KeyVerdict) {
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
}

// checkReport assembles the per-key fixed-k report. Each shard's keys are
// read under the shard lock (parser-side fields) and each key's verdict
// fields under its own lock, so live (pre-drain) callers race with nothing.
func (e *engine) checkReport() Report {
	rep := Report{K: e.k}
	e.eachShardLocked(func(sh *ingestShard) {
		for _, ks := range sh.keys {
			ks.mu.Lock()
			rep.Keys = append(rep.Keys, KeyReport{
				Key:    ks.key,
				Ops:    ks.ops,
				Atomic: ks.err == nil && ks.props[0].Atomic,
				Err:    ks.err,
			})
			ks.mu.Unlock()
		}
		for key, rk := range sh.retired {
			rep.Keys = append(rep.Keys, KeyReport{
				Key:    key,
				Ops:    rk.ops,
				Atomic: rk.err == nil && rk.props[0].Atomic,
				Err:    rk.err,
			})
		}
	})
	sort.Slice(rep.Keys, func(i, j int) bool { return rep.Keys[i].Key < rep.Keys[j].Key })
	return rep
}

// smallestKMap assembles the per-key smallest-k map under the same locking
// discipline as checkReport.
func (e *engine) smallestKMap() map[string]int {
	out := make(map[string]int, e.keyCount.Load())
	e.eachShardLocked(func(sh *ingestShard) {
		for _, ks := range sh.keys {
			ks.mu.Lock()
			switch {
			case ks.err != nil:
				out[ks.key] = 0
			default:
				out[ks.key] = max(1, ks.props[0].K)
			}
			ks.mu.Unlock()
		}
		for key, rk := range sh.retired {
			if rk.err != nil {
				out[key] = 0
			} else {
				out[key] = max(1, rk.props[0].K)
			}
		}
	})
	return out
}
