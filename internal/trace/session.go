package trace

// Push-driven streaming verification.
//
// StreamCheck and StreamSmallestKByKey own their input: they pull operations
// out of an io.Reader until it is exhausted. An online monitor cannot hand
// over a reader — operations arrive one RPC at a time, from many concurrent
// clients, with no end in sight — so Session exposes the same engine in push
// form: Append routes single operations into the per-key segment
// accumulators, verdicts accumulate on the verification pool exactly as in
// the reader-driven form, Snapshot reads the live per-key state at any
// moment, and Flush is the graceful drain: it commits every open window,
// verifies everything still held, and waits, after which the reports are
// final and identical to what the reader-driven engine would have produced
// on the concatenation of everything appended (the segment-equivalence
// lemma in stream.go carries over unchanged — the cut rules never depended
// on who drives the parser).
//
// Many sessions may share one verification pool via StreamOptions.Pool; a
// session only ever waits on its own dispatched segments.

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"kat/internal/core"
	"kat/internal/history"
)

// ErrSessionFlushed reports an Append on a session that was already drained
// by Flush. A flushed session is terminal: its cuts are committed, so later
// operations could not be admitted without violating the arrival-order
// invariant.
var ErrSessionFlushed = errors.New("trace: session already flushed")

// Session is the push-driven form of the streaming engine. Create one with
// NewCheckSession (fixed-k verdicts) or NewSmallestKSession (per-key
// smallest-k); feed it with Append or AppendTrace; observe it with Snapshot,
// Stats, Report, or SmallestKByKey; and retire it with Flush.
//
// All methods are safe for concurrent use: appends from many goroutines
// interleave at operation granularity (per-key operations must still arrive
// in nondecreasing start order across quiescent gaps, so route each key
// through one producer — see ErrOutOfOrder). Ingest errors are sticky: after
// an Append fails, every later Append returns the same error and Flush
// reports it, mirroring the reader-driven engine's abort-on-error semantics.
type Session struct {
	mu      sync.Mutex
	e       *engine
	err     error // sticky ingest error
	stopped bool  // StopOnViolation fired
	flushed bool
}

// NewCheckSession returns a session verifying every key at bound k, the push
// form of StreamCheck.
func NewCheckSession(k int, opts core.Options, sopts StreamOptions) (*Session, error) {
	if k < 1 {
		return nil, fmt.Errorf("trace: k must be >= 1, got %d", k)
	}
	return &Session{e: newEngine(modeCheck, k, k, opts, sopts)}, nil
}

// NewSmallestKSession returns a session computing each key's smallest k, the
// push form of StreamSmallestKByKey (same horizon semantics).
func NewSmallestKSession(opts core.Options, sopts StreamOptions) *Session {
	horizon := sopts.Horizon
	if horizon <= 0 {
		horizon = DefaultHorizon
	}
	return &Session{e: newEngine(modeSmallestK, 0, horizon, opts, sopts)}
}

// Append routes one operation into its key's segment accumulator. The
// operation's ID is assigned internally. Append blocks when verification
// falls behind the configured in-flight budget (backpressure, as in the
// reader-driven engine). After StopOnViolation fires, appends become no-ops
// and Stats reports Stopped.
func (s *Session) Append(key string, op history.Operation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.gate(); err != nil {
		return err
	}
	_, err := s.settleAdd(s.e.addString(key, op))
	return err
}

// gate checks admission preconditions under the session lock: a flushed
// session is terminal, and ingest errors are sticky.
func (s *Session) gate() error {
	if s.flushed {
		return ErrSessionFlushed
	}
	return s.err
}

// settleAdd folds an engine admission result into the session state;
// accepted reports whether the operation actually entered the engine
// (false for operations silently dropped after StopOnViolation fired).
func (s *Session) settleAdd(err error) (accepted bool, _ error) {
	if errors.Is(err, errStopped) {
		s.stopped = true
		s.e.stopped = true // live Stats report the early exit immediately
		return false, nil
	}
	if err != nil {
		s.err = err
		return false, err
	}
	return true, nil
}

// AppendTrace streams the keyed text format from r into the session,
// returning the number of operations actually appended (operations dropped
// after a StopOnViolation early exit are not counted). The session lock is
// taken per operation, so concurrent AppendTrace calls (one per ingesting
// client) interleave at operation granularity instead of serializing whole
// requests. The key reaches the engine as a line-buffer view, keeping this
// path allocation-free past each key's first sighting. A parse or ingest
// error aborts the read mid-stream; operations already appended stay
// appended (ingest is per-operation, not transactional).
func (s *Session) AppendTrace(r io.Reader) (int64, error) {
	var n int64
	err := parseStreamBytes(r, func(key []byte, op history.Operation) error {
		s.mu.Lock()
		defer s.mu.Unlock()
		if err := s.gate(); err != nil {
			return err
		}
		ok, err := s.settleAdd(s.e.add(key, op))
		if ok {
			n++
		}
		return err
	})
	return n, err
}

// Flush drains the session: it commits every open window, dispatches all
// held segments, waits for every in-flight verification, and — for an
// engine-owned pool — releases the workers. After Flush the session is
// terminal (Append returns ErrSessionFlushed) and Report, SmallestKByKey,
// and Snapshot are final. Flush returns the sticky ingest error, if any;
// as in the reader-driven engine, a session that erred drains only what was
// already dispatched. Flush is idempotent.
func (s *Session) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.flushed {
		return s.err
	}
	s.flushed = true
	// A stopped session drains like the reader-driven engine's early exit:
	// only what was already dispatched, so the report covers the same
	// consumed prefix StreamCheck would report.
	if s.stopped {
		s.e.drain(errStopped)
	} else {
		s.e.drain(s.err)
	}
	s.e.finish()
	return s.err
}

// KeyVerdict is one key's live verification state, as reported by Snapshot.
type KeyVerdict struct {
	// Key is the register.
	Key string
	// Ops counts the key's ingested operations.
	Ops int
	// PendingOps counts operations not yet dispatched for verification:
	// the open window plus held (closed but not horizon-cleared) segments.
	// Zero after Flush.
	PendingOps int
	// Atomic is the fixed-k verdict over everything verified so far (check
	// sessions; true until a violating segment lands, final after Flush).
	// False whenever Err is set.
	Atomic bool
	// SmallestK is the largest per-segment smallest k verified so far
	// (smallest-k sessions) — a lower bound on the key's final smallest k
	// until Flush, 0 before any segment verdict and in check sessions.
	SmallestK int
	// Saturated reports a read staler than the session horizon; SmallestK
	// is then only the horizon floor even after Flush.
	Saturated bool
	// Err is the key's anomaly or verification error, if any.
	Err error
}

// Snapshot returns the live per-key state, key-sorted. It may be called at
// any time, including concurrently with appends; verdict fields reflect
// exactly the segments verified so far.
func (s *Session) Snapshot() []KeyVerdict {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]KeyVerdict, 0, len(s.e.keys))
	for _, ks := range s.e.sortedKeys() {
		out = append(out, keyVerdictOf(ks))
	}
	return out
}

// Report returns the fixed-k trace report of a check session, in the shape
// StreamCheck produces. Before Flush it covers only the segments verified so
// far (keys with undispatched operations may still flip); after Flush it is
// final and identical to StreamCheck on the same operation sequence.
func (s *Session) Report() (Report, StreamStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.checkReport(), s.e.finalStats()
}

// SmallestKByKey returns each key's smallest k in the shape
// StreamSmallestKByKey produces (0 for keys that failed verification).
// Before Flush the values are lower bounds; after Flush they are final and
// identical to StreamSmallestKByKey on the same operation sequence, with the
// same horizon caveat (Saturated keys report the floor).
func (s *Session) SmallestKByKey() (map[string]int, StreamStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.smallestKMap(), s.e.finalStats()
}

// Stats returns the session's streaming statistics so far.
func (s *Session) Stats() StreamStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.e.finalStats()
}

// BufferedOps returns the number of live operations currently held by the
// session (open windows + held segments + in-flight verification) — the
// working-set gauge an operator watches. Lock-free.
func (s *Session) BufferedOps() int64 { return s.e.buffered.Load() }

// Keys returns the number of distinct keys seen so far. Lock-free, so
// monitoring never queues behind a backpressured Append.
func (s *Session) Keys() int64 { return s.e.keyCount.Load() }

// PeakBufferedOps returns the largest BufferedOps value observed. Lock-free.
func (s *Session) PeakBufferedOps() int64 { return s.e.peakBuffered.Load() }

// SnapshotKey returns one key's live verification state (see Snapshot),
// without building the full key-sorted snapshot; ok is false for keys the
// session has not seen.
func (s *Session) SnapshotKey(key string) (KeyVerdict, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ks, ok := s.e.keys[key]
	if !ok {
		return KeyVerdict{}, false
	}
	return keyVerdictOf(ks), true
}

// keyVerdictOf builds one key's verdict; the caller holds the session lock
// (for the parser-side fields), and the verdict fields are read under the
// key's own lock.
func keyVerdictOf(ks *keyState) KeyVerdict {
	pending := len(ks.open)
	for _, seg := range ks.deque {
		pending += len(seg.ops)
	}
	ks.mu.Lock()
	defer ks.mu.Unlock()
	return KeyVerdict{
		Key:        ks.key,
		Ops:        ks.ops,
		PendingOps: pending,
		Atomic:     ks.err == nil && ks.atomic,
		SmallestK:  max(ks.maxK, ks.kFloor),
		Saturated:  ks.saturated,
		Err:        ks.err,
	}
}

// checkReport assembles the per-key fixed-k report. Verdict fields are read
// under each key's lock so live (pre-drain) callers race with nothing.
func (e *engine) checkReport() Report {
	rep := Report{K: e.k}
	for _, ks := range e.sortedKeys() {
		ks.mu.Lock()
		rep.Keys = append(rep.Keys, KeyReport{
			Key:    ks.key,
			Ops:    ks.ops,
			Atomic: ks.err == nil && ks.atomic,
			Err:    ks.err,
		})
		ks.mu.Unlock()
	}
	return rep
}

// smallestKMap assembles the per-key smallest-k map under the same locking
// discipline as checkReport.
func (e *engine) smallestKMap() map[string]int {
	out := make(map[string]int, len(e.keys))
	for _, ks := range e.keys {
		ks.mu.Lock()
		switch {
		case ks.err != nil:
			out[ks.key] = 0
		default:
			out[ks.key] = max(1, ks.maxK, ks.kFloor)
		}
		ks.mu.Unlock()
	}
	return out
}
