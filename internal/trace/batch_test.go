package trace

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"kat/internal/core"
	"kat/internal/history"
)

// keyedOpsOf parses the canonical text into the batch-ingest element form.
func keyedOpsOf(t *testing.T, text string) []KeyedOp {
	t.Helper()
	var ops []KeyedOp
	err := ParseStream(strings.NewReader(text), func(key string, op history.Operation) error {
		ops = append(ops, KeyedOp{Key: key, Op: op})
		return nil
	})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return ops
}

// smallestKVia drains a smallest-k session fed by feed and returns its map.
func smallestKVia(t *testing.T, sopts StreamOptions, feed func(*Session)) map[string]int {
	t.Helper()
	s := NewSmallestKSession(core.Options{}, sopts)
	feed(s)
	if err := s.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	got, _ := s.SmallestKByKey()
	return got
}

// TestAppendBatchMatchesAppend proves batch ingest is verdict-equivalent to
// op-granular ingest for a spread of shard counts and batch sizes, with
// per-key order preserved.
func TestAppendBatchMatchesAppend(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		text := genSessionTrace(seed, 5, 80)
		ops := keyedOpsOf(t, text)
		want := smallestKVia(t, StreamOptions{Workers: 2, MinSegmentOps: 1, IngestShards: 1},
			func(s *Session) {
				for _, ko := range ops {
					if err := s.Append(ko.Key, ko.Op); err != nil {
						t.Fatal(err)
					}
				}
			})
		for _, shards := range []int{1, 2, 3, 7, 16} {
			for _, batch := range []int{1, 7, 64, len(ops)} {
				got := smallestKVia(t, StreamOptions{Workers: 2, MinSegmentOps: 1, IngestShards: shards},
					func(s *Session) {
						for off := 0; off < len(ops); off += batch {
							end := min(off+batch, len(ops))
							n, err := s.AppendBatch(ops[off:end])
							if err != nil {
								t.Fatal(err)
							}
							if n != end-off {
								t.Fatalf("batch appended %d of %d", n, end-off)
							}
						}
					})
				if len(got) != len(want) {
					t.Fatalf("seed %d shards=%d batch=%d: %d keys, want %d", seed, shards, batch, len(got), len(want))
				}
				for key, k := range want {
					if got[key] != k {
						t.Fatalf("seed %d shards=%d batch=%d key %s: k=%d, want %d",
							seed, shards, batch, key, got[key], k)
					}
				}
			}
		}
	}
}

// TestAppendBatchConcurrentProducers runs many producers, each feeding its
// own disjoint key set through AppendBatch concurrently, and checks the
// merged verdicts against per-producer sequential references.
func TestAppendBatchConcurrentProducers(t *testing.T) {
	const producers = 8
	want := make(map[string]int)
	batches := make([][]KeyedOp, producers)
	for p := 0; p < producers; p++ {
		text := genSessionTrace(int64(100+p), 3, 60)
		ops := keyedOpsOf(t, text)
		for i := range ops {
			ops[i].Key = fmt.Sprintf("p%d-%s", p, ops[i].Key)
		}
		batches[p] = ops
		ref := smallestKVia(t, StreamOptions{Workers: 1, MinSegmentOps: 1, IngestShards: 1},
			func(s *Session) {
				if _, err := s.AppendBatch(ops); err != nil {
					t.Fatal(err)
				}
			})
		for k, v := range ref {
			want[k] = v
		}
	}
	for _, shards := range []int{1, 4, 16} {
		s := NewSmallestKSession(core.Options{}, StreamOptions{Workers: 2, MinSegmentOps: 1, IngestShards: shards})
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(ops []KeyedOp) {
				defer wg.Done()
				for off := 0; off < len(ops); off += 32 {
					end := min(off+32, len(ops))
					if _, err := s.AppendBatch(ops[off:end]); err != nil {
						t.Error(err)
						return
					}
				}
			}(batches[p])
		}
		wg.Wait()
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		got, _ := s.SmallestKByKey()
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d keys, want %d", shards, len(got), len(want))
		}
		for key, k := range want {
			if got[key] != k {
				t.Fatalf("shards=%d key %s: concurrent batch k=%d, sequential %d", shards, key, got[key], k)
			}
		}
	}
}

// TestAppendTraceBatchMatchesAppendTrace drives the chunked byte path with
// tiny chunk sizes (forcing partial-line carries across reads), ';'
// separators, and comments, checking verdict and count equivalence with the
// op-granular AppendTrace.
func TestAppendTraceBatchMatchesAppendTrace(t *testing.T) {
	text := genSessionTrace(7, 4, 70)
	// Exercise the multi-segment-line and comment paths too.
	text = "# leading comment\n" + strings.Replace(text, "\n", "; ", 3) + "# trailing\n"

	ref := NewSmallestKSession(core.Options{}, StreamOptions{Workers: 1, MinSegmentOps: 1})
	refN, err := ref.AppendTrace(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	want, _ := ref.SmallestKByKey()

	for _, chunk := range []int{16, 64, 1 << 20} {
		s := NewSmallestKSession(core.Options{}, StreamOptions{Workers: 2, MinSegmentOps: 1, IngestShards: 4})
		s.batchChunk = chunk
		n, err := s.AppendTraceBatch(strings.NewReader(text))
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if n != refN {
			t.Fatalf("chunk=%d: appended %d, want %d", chunk, n, refN)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		got, _ := s.SmallestKByKey()
		for key, k := range want {
			if got[key] != k {
				t.Fatalf("chunk=%d key %s: k=%d, want %d", chunk, key, got[key], k)
			}
		}
	}
}

// TestAppendTraceBatchLongLine covers the buffer-growth path: a single line
// far longer than the chunk size must still parse (the reader-driven parser
// accepts whole traces on one ';'-separated line).
func TestAppendTraceBatchLongLine(t *testing.T) {
	var b strings.Builder
	clock := int64(0)
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&b, "w key-a %d %d %d; ", i+1, clock, clock+1)
		clock += 5
	}
	line := strings.TrimSuffix(b.String(), "; ") + "\n"
	s := NewSmallestKSession(core.Options{}, StreamOptions{Workers: 1, MinSegmentOps: 1})
	s.batchChunk = 32 // forces repeated growth
	n, err := s.AppendTraceBatch(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("appended %d, want 200", n)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.SmallestKByKey(); got["key-a"] != 1 {
		t.Fatalf("k=%d, want 1", got["key-a"])
	}
}

// TestAppendTraceBatchParseError pins AppendTrace's partial-ingest contract
// on the batch path: operations parsed before the malformed segment are
// ingested, the error names the segment, and it is NOT sticky (parse errors
// reject the request, not the session — only engine admission errors
// poison it). This matches the op-granular path, where a malformed line
// aborts the read before any session state is touched.
func TestAppendTraceBatchParseError(t *testing.T) {
	s := NewSmallestKSession(core.Options{}, StreamOptions{Workers: 1, MinSegmentOps: 1, IngestShards: 2})
	n, err := s.AppendTraceBatch(strings.NewReader("w a 1 0 1\nw a 2 10 11\nbogus line\nw a 3 30 31\n"))
	if err == nil || !strings.Contains(err.Error(), "segment 3") {
		t.Fatalf("err = %v, want segment-3 parse error", err)
	}
	if n != 2 {
		t.Fatalf("appended %d before the parse error, want 2", n)
	}
	// The session is still usable: parse errors are per-request.
	if _, err := s.AppendTraceBatch(strings.NewReader("w a 4 40 41\n")); err != nil {
		t.Fatalf("session poisoned by a parse error: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Ops != 3 {
		t.Fatalf("ops = %d, want 3", st.Ops)
	}
}

// errAfterReader yields its payload, then fails with a non-EOF error —
// the shape of a network body that dies mid-request.
type errAfterReader struct {
	data []byte
	err  error
}

func (r *errAfterReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// TestAppendTraceBatchReaderErrorParity pins reader-error behavior to the
// op-granular path's: everything buffered — including a final unterminated
// line — is ingested before the error surfaces, exactly as the scanner
// emits its remaining buffer (final partial token included) on a read
// error.
func TestAppendTraceBatchReaderErrorParity(t *testing.T) {
	boom := errors.New("connection reset")
	payload := "w a 1 0 1\nw b 1 0 1" // no trailing newline
	ref := NewSmallestKSession(core.Options{}, StreamOptions{Workers: 1, MinSegmentOps: 1})
	refN, refErr := ref.AppendTrace(&errAfterReader{data: []byte(payload), err: boom})
	ref.Flush()
	s := NewSmallestKSession(core.Options{}, StreamOptions{Workers: 1, MinSegmentOps: 1, IngestShards: 4})
	n, err := s.AppendTraceBatch(&errAfterReader{data: []byte(payload), err: boom})
	s.Flush()
	if !errors.Is(err, boom) || (refErr == nil) == (err == nil) && !errors.Is(refErr, boom) {
		t.Fatalf("errors diverge: op-granular %v, batch %v", refErr, err)
	}
	if n != refN || n != 2 {
		t.Fatalf("ingested %d (op-granular %d), want both 2 incl. the unterminated final line", n, refN)
	}
}

// TestBatchBoundariesStraddleCuts feeds batches whose boundaries land
// exactly on, just before, and just after quiescent cut points, checking
// verdicts never depend on where a batch ends relative to a cut.
func TestBatchBoundariesStraddleCuts(t *testing.T) {
	// Staircase with a quiescent gap after every read: every op index is a
	// potential cut point under MinSegmentOps 1.
	var ops []KeyedOp
	clock := int64(0)
	for i := 0; i < 90; i++ {
		v := int64(i + 1)
		ops = append(ops,
			KeyedOp{Key: "a", Op: history.Operation{Kind: history.KindWrite, Value: v, Start: clock, Finish: clock + 1}},
			KeyedOp{Key: "a", Op: history.Operation{Kind: history.KindRead, Value: v, Start: clock + 2, Finish: clock + 3}})
		clock += 10
	}
	want := smallestKVia(t, StreamOptions{Workers: 1, MinSegmentOps: 1, IngestShards: 1},
		func(s *Session) {
			for _, ko := range ops {
				if err := s.Append(ko.Key, ko.Op); err != nil {
					t.Fatal(err)
				}
			}
		})
	// Boundary sweep: every split position in a window around each cut.
	for split := 1; split < 8; split++ {
		got := smallestKVia(t, StreamOptions{Workers: 2, MinSegmentOps: 1, IngestShards: 3},
			func(s *Session) {
				for off := 0; off < len(ops); {
					end := min(off+split, len(ops))
					if _, err := s.AppendBatch(ops[off:end]); err != nil {
						t.Fatal(err)
					}
					off = end
				}
			})
		for key, k := range want {
			if got[key] != k {
				t.Fatalf("split=%d key %s: k=%d, want %d", split, key, got[key], k)
			}
		}
	}
}

// TestBatchStickyErrorAcrossShards pins the cross-shard sticky-error
// contract: an ErrOutOfOrder admission failure on one shard's key poisons
// the whole session — later batches touching other shards are refused with
// the same error, and Flush reports it.
func TestBatchStickyErrorAcrossShards(t *testing.T) {
	s := NewSmallestKSession(core.Options{}, StreamOptions{Workers: 1, MinSegmentOps: 1, IngestShards: 8})
	w := func(key string, v, start int64) KeyedOp {
		return KeyedOp{Key: key, Op: history.Operation{Kind: history.KindWrite, Value: v, Start: start, Finish: start + 1}}
	}
	// Three quiescent writes commit cuts on key a.
	if _, err := s.AppendBatch([]KeyedOp{w("a", 1, 0), w("a", 2, 10), w("a", 3, 20)}); err != nil {
		t.Fatal(err)
	}
	// A batch mixing many keys, with the out-of-order op on key a: the
	// batch reports the error and the count of ops that got in.
	bad := []KeyedOp{w("b", 1, 0), w("c", 1, 0), w("a", 9, 5), w("d", 1, 0)}
	n, err := s.AppendBatch(bad)
	if !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("err = %v, want ErrOutOfOrder", err)
	}
	if n < 0 || n >= len(bad) {
		t.Fatalf("appended %d of a failing batch", n)
	}
	// Sticky across shards: keys b..z all hash elsewhere, all refused.
	if _, err := s.AppendBatch([]KeyedOp{w("z", 1, 0)}); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("new batch after error: %v, want sticky ErrOutOfOrder", err)
	}
	if err := s.Append("z", w("z", 2, 100).Op); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("append after error: %v, want sticky ErrOutOfOrder", err)
	}
	if ferr := s.Flush(); !errors.Is(ferr, ErrOutOfOrder) {
		t.Fatalf("Flush: %v, want sticky ErrOutOfOrder", ferr)
	}
	// Terminal after flush, and the flushed error wins the gate.
	if _, err := s.AppendBatch([]KeyedOp{w("q", 1, 0)}); !errors.Is(err, ErrSessionFlushed) {
		t.Fatalf("batch after flush: %v, want ErrSessionFlushed", err)
	}
}

// TestIngestLockAcquisitionsBatchReduction is the PR's headline measurement
// as a counted assertion: batch ingest must take at least 10x fewer
// shard-lock acquisitions per operation than op-granular ingest of the very
// same trace.
func TestIngestLockAcquisitionsBatchReduction(t *testing.T) {
	text := genSessionTrace(11, 8, 512)
	ops := keyedOpsOf(t, text)
	sopts := StreamOptions{Workers: 1, IngestShards: 8}

	opGranular := NewSmallestKSession(core.Options{}, sopts)
	for _, ko := range ops {
		if err := opGranular.Append(ko.Key, ko.Op); err != nil {
			t.Fatal(err)
		}
	}
	opLocks := opGranular.IngestLockAcquisitions()
	if err := opGranular.Flush(); err != nil {
		t.Fatal(err)
	}
	if opLocks != int64(len(ops)) {
		t.Fatalf("op-granular ingest took %d lock acquisitions for %d ops", opLocks, len(ops))
	}

	const batch = 512
	batched := NewSmallestKSession(core.Options{}, sopts)
	for off := 0; off < len(ops); off += batch {
		end := min(off+batch, len(ops))
		if _, err := batched.AppendBatch(ops[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	batchLocks := batched.IngestLockAcquisitions()
	if err := batched.Flush(); err != nil {
		t.Fatal(err)
	}
	if batchLocks == 0 {
		t.Fatal("batch ingest took no locks")
	}
	if ratio := float64(opLocks) / float64(batchLocks); ratio < 10 {
		t.Fatalf("batch ingest reduced lock acquisitions only %.1fx (%d -> %d for %d ops), want >= 10x",
			ratio, opLocks, batchLocks, len(ops))
	}
}

// TestAppendTraceBatchSteadyStateAllocs pins the zero-allocation claim of
// the batch hot path: once the session's maps, open-window buffers, and
// scratches are warm, pushing already-seen keys through AppendTraceBatch
// allocates nothing. The measured window extends one open window per key
// (no quiescent cuts fire inside it), isolating the parse/group/append path
// from segment dispatch, which allocates per segment by design.
func TestAppendTraceBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on pool and lock operations")
	}
	s := NewSmallestKSession(core.Options{}, StreamOptions{Workers: 1, IngestShards: 4, MinSegmentOps: 1 << 30})
	var (
		clock int64
		value int64
	)
	batch := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			value++
			// Overlapping intervals: never quiescent, so no cut commits and
			// the open window just grows.
			fmt.Fprintf(&b, "w key-%d %d %d %d\n", i%4, value, clock, clock+10)
			clock++
		}
		return b.String()
	}
	// Warm-up: grow the open-window buffers, value indexes, and scratches
	// well past what the measured window appends, so neither slice doubling
	// nor map growth fires inside it.
	if _, err := s.AppendTraceBatch(strings.NewReader(batch(80000))); err != nil {
		t.Fatal(err)
	}
	// Payloads are pre-rendered: the measurement must see only the ingest
	// path, not the text generation. AllocsPerRun calls f runs+1 times
	// (one warm-up call), and replaying a payload would be out of order.
	payloads := make([]string, 25)
	for i := range payloads {
		payloads[i] = batch(256)
	}
	run := 0
	r := strings.NewReader("")
	allocs := testing.AllocsPerRun(len(payloads)-1, func() {
		r.Reset(payloads[run])
		run++
		if _, err := s.AppendTraceBatch(r); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("batch hot path allocates %.1f allocs/batch at steady state, want 0", allocs)
	}
}

// TestSessionShardCountStatsConsistency checks the per-shard observability
// surface: shard ops sum to Stats.Ops, buffered sums to BufferedOps, and
// every key routes consistently (SnapshotKey finds what Snapshot lists) for
// a non-power-of-two shard count.
func TestSessionShardCountStatsConsistency(t *testing.T) {
	text := genSessionTrace(3, 6, 50)
	s := NewSmallestKSession(core.Options{}, StreamOptions{Workers: 2, MinSegmentOps: 1, IngestShards: 5})
	if s.Shards() != 5 {
		t.Fatalf("Shards() = %d, want 5", s.Shards())
	}
	if _, err := s.AppendTraceBatch(strings.NewReader(text)); err != nil {
		t.Fatal(err)
	}
	var shardOps, shardBuf int64
	for i := 0; i < s.Shards(); i++ {
		shardOps += s.ShardIngestedOps(i)
		shardBuf += s.ShardBufferedOps(i)
	}
	if st := s.Stats(); shardOps != st.Ops {
		t.Fatalf("shard ops sum %d != Stats.Ops %d", shardOps, st.Ops)
	}
	if got := s.BufferedOps(); shardBuf != got {
		t.Fatalf("shard buffered sum %d != BufferedOps %d", shardBuf, got)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Shards(); i++ {
		if b := s.ShardBufferedOps(i); b != 0 {
			t.Fatalf("shard %d still buffers %d ops after flush", i, b)
		}
	}
	for _, kv := range s.Snapshot() {
		got, ok := s.SnapshotKey(kv.Key)
		if !ok || got.Ops != kv.Ops {
			t.Fatalf("SnapshotKey(%s) = %+v ok=%v, snapshot %+v", kv.Key, got, ok, kv)
		}
	}
}
