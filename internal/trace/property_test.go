package trace

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"kat/internal/core"
	"kat/internal/delta"
	"kat/internal/generator"
	"kat/internal/history"
	"kat/internal/refcheck"
	"kat/internal/regularity"
	"kat/internal/zone"
)

func TestParseProperties(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want PropertySet
	}{
		{"", PropertySetK},
		{"k", PropertySetK},
		{"delta", PropertySetK | PropertySetDelta},
		{"k,delta,regularity", PropertySetAll},
		{" Regularity , DELTA ", PropertySetAll},
		{"safety", PropertySetK | PropertySetRegularity},
	} {
		got, err := ParseProperties(tc.in)
		if err != nil || got|PropertySetK != tc.want {
			t.Errorf("ParseProperties(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseProperties("k,linearizability"); err == nil {
		t.Error("unknown property accepted")
	}
	if got := PropertySetAll.String(); got != "k,delta,regularity" {
		t.Errorf("PropertySetAll.String() = %q", got)
	}
	if !PropertySet(0).Has(PropertyKAtomicity) {
		t.Error("k-atomicity must be implicitly enabled")
	}
}

// propSegmentsAt splits ops at the given sorted cut positions.
func propSegmentsAt(ops []history.Operation, cuts []int) []*history.History {
	bounds := append(append([]int{0}, cuts...), len(ops))
	var out []*history.History
	for i := 1; i < len(bounds); i++ {
		if bounds[i] > bounds[i-1] {
			out = append(out, history.New(ops[bounds[i-1]:bounds[i]]))
		}
	}
	return out
}

// TestCutsPreserveSmallestDelta is the Δ decomposition lemma checked
// directly: for any subset of safe cuts, the maximum smallest-Δ over the
// segments equals the smallest Δ of the whole history.
func TestCutsPreserveSmallestDelta(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		h := generator.KAtomic(generator.Config{
			Seed: seed, Ops: 90, Concurrency: 1 + int(seed%3),
			StalenessDepth: int(seed % 4), ForceDepth: true, ReadFraction: 0.6,
		})
		if seed%2 == 1 {
			h = generator.InjectStaleness(h, seed, 0.2, 1+int(seed%2))
		}
		p, err := history.Prepare(history.Normalize(h))
		if err != nil {
			t.Fatalf("seed %d: Prepare: %v", seed, err)
		}
		whole, err := delta.Smallest(p.H)
		if err != nil {
			t.Fatalf("seed %d: Smallest: %v", seed, err)
		}
		cuts := zone.Cuts(p)
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 3; trial++ {
			var subset []int
			for _, c := range cuts {
				if trial == 0 || rng.Intn(2) == 0 { // trial 0: every cut
					subset = append(subset, c)
				}
			}
			var maxD int64
			for _, seg := range propSegmentsAt(p.H.Ops, subset) {
				d, err := delta.Smallest(seg)
				if err != nil {
					t.Fatalf("seed %d: segment Smallest: %v", seed, err)
				}
				if d > maxD {
					maxD = d
				}
			}
			if maxD != whole {
				t.Fatalf("seed %d trial %d: max segment Δ=%d, whole Δ=%d (cuts %v of %v)",
					seed, trial, maxD, whole, subset, cuts)
			}
		}
	}
}

// TestCutsPreserveRegularity is the per-read decomposition checked directly:
// safety/regularity offender counts sum over safe-cut segments (each
// segment normalized on its own) to the whole history's counts.
func TestCutsPreserveRegularity(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		h := generator.KAtomic(generator.Config{
			Seed: seed, Ops: 90, Concurrency: 1 + int(seed%4),
			StalenessDepth: int(seed % 3), ForceDepth: true,
		})
		if seed%2 == 0 {
			h = generator.InjectStaleness(h, seed, 0.25, int(seed%3))
		}
		p, err := history.Prepare(history.Normalize(h))
		if err != nil {
			t.Fatalf("seed %d: Prepare: %v", seed, err)
		}
		whole := regularity.Check(p)
		cuts := zone.Cuts(p)
		unsafeN, irregularN := 0, 0
		for _, seg := range propSegmentsAt(p.H.Ops, cuts) {
			sp, err := history.Prepare(history.Normalize(seg))
			if err != nil {
				t.Fatalf("seed %d: segment Prepare: %v", seed, err)
			}
			v := regularity.Check(sp)
			unsafeN += len(v.UnsafeReads)
			irregularN += len(v.IrregularReads)
		}
		if unsafeN != len(whole.UnsafeReads) || irregularN != len(whole.IrregularReads) {
			t.Fatalf("seed %d: segments unsafe=%d irregular=%d, whole unsafe=%d irregular=%d",
				seed, unsafeN, irregularN, len(whole.UnsafeReads), len(whole.IrregularReads))
		}
	}
}

// offlineVerdicts computes the per-key reference verdicts with the offline
// checkers on the complete histories.
type offlineVerdict struct {
	k         int
	d         int64
	unsafe    int
	irregular int
}

func offlineVerdictsOf(t *testing.T, keys map[string]*history.History) map[string]offlineVerdict {
	t.Helper()
	v := core.NewVerifier()
	out := make(map[string]offlineVerdict, len(keys))
	for key, h := range keys {
		k, err := v.SmallestK(h, core.Options{})
		if err != nil {
			t.Fatalf("key %q: SmallestK: %v", key, err)
		}
		d, err := delta.Smallest(h)
		if err != nil {
			t.Fatalf("key %q: delta.Smallest: %v", key, err)
		}
		p, err := history.Prepare(history.Normalize(h))
		if err != nil {
			t.Fatalf("key %q: Prepare: %v", key, err)
		}
		rv := regularity.Check(p)
		out[key] = offlineVerdict{k: k, d: d, unsafe: len(rv.UnsafeReads), irregular: len(rv.IrregularReads)}
	}
	return out
}

// checkVerdictsAgainstOffline asserts one drained multi-property run against
// the offline references: exact equality for non-saturated keys, sound
// floors for saturated ones, and exact regularity counts always.
func checkVerdictsAgainstOffline(t *testing.T, desc string, kvs []KeyVerdict, want map[string]offlineVerdict) {
	t.Helper()
	if len(kvs) != len(want) {
		t.Fatalf("%s: %d key verdicts, want %d", desc, len(kvs), len(want))
	}
	for _, kv := range kvs {
		ref, ok := want[kv.Key]
		if !ok {
			t.Fatalf("%s: unexpected key %q", desc, kv.Key)
		}
		if kv.Err != nil {
			t.Fatalf("%s key %q: unexpected error %v", desc, kv.Key, kv.Err)
		}
		if kv.Properties != PropertySetAll {
			t.Fatalf("%s key %q: properties %v, want all", desc, kv.Key, kv.Properties)
		}
		if kv.Saturated {
			if kv.SmallestK < 1 || kv.SmallestK > ref.k {
				t.Fatalf("%s key %q: saturated k=%d outside (0, %d]", desc, kv.Key, kv.SmallestK, ref.k)
			}
		} else if max(1, kv.SmallestK) != ref.k {
			t.Fatalf("%s key %q: k=%d, offline %d", desc, kv.Key, kv.SmallestK, ref.k)
		}
		if kv.DeltaSaturated {
			if kv.SmallestDelta < 1 || kv.SmallestDelta > ref.d {
				t.Fatalf("%s key %q: saturated Δ=%d outside (0, %d]", desc, kv.Key, kv.SmallestDelta, ref.d)
			}
		} else if kv.SmallestDelta != ref.d {
			t.Fatalf("%s key %q: Δ=%d, offline %d", desc, kv.Key, kv.SmallestDelta, ref.d)
		}
		if kv.UnsafeReads != ref.unsafe || kv.IrregularReads != ref.irregular {
			t.Fatalf("%s key %q: unsafe=%d irregular=%d, offline unsafe=%d irregular=%d",
				desc, kv.Key, kv.UnsafeReads, kv.IrregularReads, ref.unsafe, ref.irregular)
		}
	}
}

// multiKeyArrival renders the keys as one arrival-ordered trace text.
func multiKeyArrival(keys map[string]*history.History) string {
	tr := New()
	for key, h := range keys {
		for _, op := range h.Ops {
			tr.Add(key, op)
		}
	}
	var b strings.Builder
	if err := WriteArrivalOrder(&b, tr); err != nil {
		panic(err)
	}
	return b.String()
}

// TestStreamVerdictsByKeyMatchesOffline drives generator traces through the
// one-pass multi-property engine — reader-driven and session-driven, across
// shard counts and segment cut granularities — and asserts every per-key
// per-property verdict against the offline checkers on the complete
// histories.
func TestStreamVerdictsByKeyMatchesOffline(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		keys := map[string]*history.History{}
		for i := 0; i < 3; i++ {
			keys[fmt.Sprintf("key%d", i)] = generator.KAtomic(generator.Config{
				Seed: seed*31 + int64(i), Ops: 60 + 20*i, Concurrency: 1 + int(seed%3),
				StalenessDepth: (int(seed) + i) % 3, ForceDepth: true, ReadFraction: 0.55,
			})
		}
		want := offlineVerdictsOf(t, keys)
		text := multiKeyArrival(keys)

		for _, minSeg := range []int{1, 16} {
			sopts := StreamOptions{MinSegmentOps: minSeg, Properties: PropertySetAll, Workers: 2}
			kvs, stats, err := StreamVerdictsByKey(strings.NewReader(text), core.Options{}, sopts)
			if err != nil {
				t.Fatalf("seed %d minSeg %d: StreamVerdictsByKey: %v", seed, minSeg, err)
			}
			if stats.SaturatedKeys > 0 {
				t.Fatalf("seed %d minSeg %d: saturated under the default horizon", seed, minSeg)
			}
			checkVerdictsAgainstOffline(t, fmt.Sprintf("stream seed %d minSeg %d", seed, minSeg), kvs, want)
		}

		// Session-driven: per-op appends over several ingest shards.
		for _, shards := range []int{1, 4} {
			sopts := StreamOptions{MinSegmentOps: 1, IngestShards: shards, Properties: PropertySetAll, Workers: 2}
			sess := NewSmallestKSession(core.Options{}, sopts)
			if _, err := sess.AppendTrace(strings.NewReader(text)); err != nil {
				t.Fatalf("seed %d shards %d: AppendTrace: %v", seed, shards, err)
			}
			if err := sess.Flush(); err != nil {
				t.Fatalf("seed %d shards %d: Flush: %v", seed, shards, err)
			}
			checkVerdictsAgainstOffline(t, fmt.Sprintf("session seed %d shards %d", seed, shards), sess.Snapshot(), want)
		}
	}
}

// TestStreamVerdictsStaleFloors forces cross-boundary stale reads (deep
// staleness against a tiny horizon) and asserts the evidence-based folds:
// saturated k and Δ report sound non-trivial floors, and the regularity
// counts stay exactly equal to the offline checker — the dropped reads are
// definitively irregular, and their safety verdict is decided by the
// synthetic-history replay of their closing window.
func TestStreamVerdictsStaleFloors(t *testing.T) {
	sawStale := false
	for seed := int64(0); seed < 12; seed++ {
		h := generator.KAtomic(generator.Config{
			Seed: seed, Ops: 120, Concurrency: 1, StalenessDepth: 0, ReadFraction: 0.5,
		})
		h = generator.InjectStaleness(h, seed, 0.3, 6+int(seed%4))
		keys := map[string]*history.History{"x": h}
		want := offlineVerdictsOf(t, keys)
		text := multiKeyArrival(keys)

		sopts := StreamOptions{MinSegmentOps: 1, Horizon: 2, Properties: PropertySetAll, Workers: 2}
		kvs, stats, err := StreamVerdictsByKey(strings.NewReader(text), core.Options{}, sopts)
		if err != nil {
			t.Fatalf("seed %d: StreamVerdictsByKey: %v", seed, err)
		}
		sawStale = sawStale || stats.StaleReads > 0
		checkVerdictsAgainstOffline(t, fmt.Sprintf("stale seed %d", seed), kvs, want)
		if stats.StaleReads > 0 && (!kvs[0].Saturated || !kvs[0].DeltaSaturated) {
			t.Fatalf("seed %d: %d stale reads but saturation flags k=%v Δ=%v",
				seed, stats.StaleReads, kvs[0].Saturated, kvs[0].DeltaSaturated)
		}
	}
	if !sawStale {
		t.Fatal("no seed produced a cross-boundary stale read; the floors went untested")
	}
}

// TestExhaustivePropertiesOnlineVsOffline sweeps every enumerated history of
// up to 4 operations through a drained multi-property session and asserts
// the per-property verdicts equal the brute-force references — the
// acceptance criterion that online property verdicts are provably identical
// to the offline checkers.
func TestExhaustivePropertiesOnlineVsOffline(t *testing.T) {
	maxN := 4
	if testing.Short() {
		maxN = 3
	}
	pool := core.NewPool(2)
	defer pool.Close()
	total := 0
	for n := 1; n <= maxN; n++ {
		refcheck.EnumerateHistories(n, func(h *history.History) {
			total++
			desc := strings.ReplaceAll(h.String(), "\n", "; ")
			refK, refErr := refcheck.SmallestK(h)
			refD, refDErr := refcheck.SmallestDelta(h)
			refP, refPErr := refcheck.Properties(h)
			if (refErr == nil) != (refDErr == nil) || (refErr == nil) != (refPErr == nil) {
				t.Fatalf("%s: reference error disagreement: k=%v Δ=%v props=%v", desc, refErr, refDErr, refPErr)
			}

			ops := append([]history.Operation(nil), h.Ops...)
			sort.SliceStable(ops, func(i, j int) bool { return ops[i].Start < ops[j].Start })
			sess := NewSmallestKSession(core.Options{}, StreamOptions{
				Pool: pool, MinSegmentOps: 1, Properties: PropertySetAll,
			})
			for _, op := range ops {
				if err := sess.Append("x", op); err != nil {
					t.Fatalf("%s: Append: %v", desc, err)
				}
			}
			if err := sess.Flush(); err != nil {
				t.Fatalf("%s: Flush: %v", desc, err)
			}
			kvs := sess.Snapshot()
			if len(kvs) != 1 {
				t.Fatalf("%s: %d keys", desc, len(kvs))
			}
			kv := kvs[0]
			if (refErr == nil) != (kv.Err == nil) {
				t.Fatalf("%s: reference err=%v, online err=%v", desc, refErr, kv.Err)
			}
			if refErr != nil {
				return
			}
			if kv.Saturated || kv.DeltaSaturated {
				t.Fatalf("%s: tiny history saturated the horizon", desc)
			}
			if got := max(1, kv.SmallestK); got != refK {
				t.Fatalf("%s: online k=%d, reference %d", desc, got, refK)
			}
			if kv.SmallestDelta != refD {
				t.Fatalf("%s: online Δ=%d, reference %d", desc, kv.SmallestDelta, refD)
			}
			if kv.UnsafeReads != len(refP.UnsafeReads) || kv.IrregularReads != len(refP.IrregularReads) {
				t.Fatalf("%s: online unsafe=%d irregular=%d, reference unsafe=%d irregular=%d",
					desc, kv.UnsafeReads, kv.IrregularReads, len(refP.UnsafeReads), len(refP.IrregularReads))
			}
		})
		if t.Failed() {
			t.FailNow()
		}
	}
	t.Logf("swept %d histories online vs offline across all properties", total)
}
