package trace

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"kat/internal/core"
	"kat/internal/history"
	"kat/internal/wire"
)

// wireStreamOf encodes ops as a wire stream of frameOps-sized frames
// sharing one key dictionary.
func wireStreamOf(t *testing.T, ops []KeyedOp, frameOps int, compress bool) []byte {
	t.Helper()
	enc := wire.NewEncoder()
	enc.SetCompress(compress)
	var buf []byte
	for i, ko := range ops {
		if err := enc.Add(ko.Key, ko.Op); err != nil {
			t.Fatalf("encode: %v", err)
		}
		if enc.Pending() >= frameOps || i == len(ops)-1 {
			buf = enc.AppendFrame(buf)
		}
	}
	return buf
}

// TestAppendWireMatchesAppendBatch proves binary ingest is
// verdict-equivalent to the pre-parsed batch path for a spread of shard
// counts, frame sizes, and compression settings.
func TestAppendWireMatchesAppendBatch(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		text := genSessionTrace(seed, 5, 80)
		ops := keyedOpsOf(t, text)
		want := smallestKVia(t, StreamOptions{Workers: 2, MinSegmentOps: 1, IngestShards: 1},
			func(s *Session) {
				if _, err := s.AppendBatch(ops); err != nil {
					t.Fatal(err)
				}
			})
		for _, shards := range []int{1, 3, 16} {
			for _, frameOps := range []int{1, 7, 64, len(ops)} {
				for _, compress := range []bool{false, true} {
					stream := wireStreamOf(t, ops, frameOps, compress)
					s := NewSmallestKSession(core.Options{}, StreamOptions{Workers: 2, MinSegmentOps: 1, IngestShards: shards})
					n, err := s.AppendWire(bytes.NewReader(stream))
					if err != nil {
						t.Fatalf("seed %d shards=%d frame=%d compress=%v: %v", seed, shards, frameOps, compress, err)
					}
					if n != int64(len(ops)) {
						t.Fatalf("appended %d of %d", n, len(ops))
					}
					if err := s.Flush(); err != nil {
						t.Fatal(err)
					}
					got, _ := s.SmallestKByKey()
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("seed %d shards=%d frame=%d compress=%v: verdicts %v, want %v",
							seed, shards, frameOps, compress, got, want)
					}
				}
			}
		}
	}
}

// TestAppendWireDecodeErrorNotSticky pins the error contract: frames before
// a malformed one are ingested, the error is a *wire.DecodeError carrying a
// stream offset, and — like a text parse error — it rejects only the
// request, not the session.
func TestAppendWireDecodeErrorNotSticky(t *testing.T) {
	text := genSessionTrace(2, 3, 40)
	ops := keyedOpsOf(t, text)
	half := len(ops) / 2
	good := wireStreamOf(t, ops[:half], 16, false)
	bad := append(bytes.Clone(good), "not a frame"...)

	s := NewSmallestKSession(core.Options{}, StreamOptions{Workers: 1, MinSegmentOps: 1, IngestShards: 4})
	n, err := s.AppendWire(bytes.NewReader(bad))
	var de *wire.DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *wire.DecodeError", err)
	}
	if de.Offset != int64(len(good)) {
		t.Fatalf("decode error offset %d, want %d (start of the garbage)", de.Offset, len(good))
	}
	if n != int64(half) {
		t.Fatalf("appended %d before the bad frame, want %d", n, half)
	}
	// The session is still usable: decode errors are per-request.
	rest := wireStreamOf(t, ops[half:], 16, false)
	if _, err := s.AppendWire(bytes.NewReader(rest)); err != nil {
		t.Fatalf("session poisoned by a decode error: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Ops != int64(len(ops)) {
		t.Fatalf("ops = %d, want %d", st.Ops, len(ops))
	}
}

// TestAppendWireShardLoggerLogsWireFrames checks the durable contract of
// binary ingest: the WAL receives self-contained wire frames (binary in,
// binary logged — no text materialization), and replaying each shard's
// logged bytes through AppendWire into a fresh session with a different
// shard count reproduces the verdicts.
func TestAppendWireShardLoggerLogsWireFrames(t *testing.T) {
	text := genSessionTrace(9, 5, 120)
	ops := keyedOpsOf(t, text)
	base := StreamOptions{Workers: 2, MinSegmentOps: 1, IngestShards: 4}
	want := smallestKOf(t, text, base)

	logger := newCaptureLogger()
	s := NewSmallestKSession(core.Options{}, base)
	s.SetShardLogger(logger)
	stream := wireStreamOf(t, ops, 32, true)
	if _, err := s.AppendWire(bytes.NewReader(stream)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if logger.commits == 0 {
		t.Fatal("logger never committed")
	}
	got, _ := s.SmallestKByKey()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("logged session verdicts differ: %v vs %v", got, want)
	}

	replay := NewSmallestKSession(core.Options{}, StreamOptions{Workers: 2, MinSegmentOps: 1, IngestShards: 7})
	total := int64(0)
	for shard := 0; shard < s.Shards(); shard++ {
		payload := logger.shards[shard]
		if len(payload) == 0 {
			continue
		}
		if !wire.IsMagic(payload) {
			t.Fatalf("shard %d WAL payload is not wire-framed: %q...", shard, payload[:min(16, len(payload))])
		}
		n, err := replay.AppendWire(bytes.NewReader(payload))
		if err != nil {
			t.Fatalf("replay shard %d: %v", shard, err)
		}
		total += n
	}
	if total != int64(len(ops)) {
		t.Fatalf("replayed %d ops, want %d", total, len(ops))
	}
	if err := replay.Flush(); err != nil {
		t.Fatal(err)
	}
	replayed, _ := replay.SmallestKByKey()
	if fmt.Sprint(replayed) != fmt.Sprint(want) {
		t.Fatalf("replayed verdicts differ: %v vs %v", replayed, want)
	}
}

// TestAppendWireSteadyStateAllocs pins the "skip string materialization"
// claim: once the scratch, decoder dictionary, and session state are warm,
// binary batches of already-seen keys ingest with zero allocations — the
// text batch path's guarantee, now without even the parse.
func TestAppendWireSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on pool and lock operations")
	}
	s := NewSmallestKSession(core.Options{}, StreamOptions{Workers: 1, IngestShards: 4, MinSegmentOps: 1 << 30})
	var clock, value int64
	batch := func(n int) []byte {
		enc := wire.NewEncoder()
		enc.SetSelfContained(true)
		for i := 0; i < n; i++ {
			value++
			op := KeyedOp{Key: fmt.Sprintf("key-%d", i%4), Op: history.Operation{
				Kind: history.KindWrite, Value: value, Start: clock, Finish: clock + 10,
			}}
			if err := enc.Add(op.Key, op.Op); err != nil {
				t.Fatal(err)
			}
			clock++
		}
		return enc.AppendFrame(nil)
	}
	if _, err := s.AppendWire(bytes.NewReader(batch(80000))); err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, 25)
	for i := range payloads {
		payloads[i] = batch(256)
	}
	run := 0
	r := bytes.NewReader(nil)
	allocs := testing.AllocsPerRun(len(payloads)-1, func() {
		r.Reset(payloads[run])
		run++
		if _, err := s.AppendWire(r); err != nil {
			t.Fatal(err)
		}
	})
	// The decoder interns one string per key per stream (keys here repeat
	// across batches but each AppendWire call is a fresh stream, so 4 key
	// strings per call); everything else must be allocation-free.
	if allocs > 8 {
		t.Fatalf("wire hot path allocates %.1f allocs/batch at steady state, want <= 8", allocs)
	}
}
