package trace

// Durability hooks for push-driven sessions.
//
// Three seams, all optional and all zero-cost when unused:
//
//   - ShardLogger: the ingest paths re-encode every *accepted* operation in
//     the keyed text format and hand each shard's group to the logger under
//     that shard's ingest lock, so per-shard log order is exactly per-shard
//     ingest order. Replaying a shard's payloads through AppendTraceBatch
//     reproduces the session state — keys re-route by hash on replay, so
//     the ingest shard count may change across restarts.
//
//   - BlobStore + StreamOptions.SpillThresholdOps: segment spill-to-disk.
//     Open windows larger than the threshold spill their accumulated prefix
//     (the value index, write count, and max-finish stay in memory — those
//     are all the cut rules need), and closed segments above the threshold
//     spill while they wait out the dispatch horizon. Spilled operations
//     are reloaded at the point they are next needed: when the window
//     closes, when a backward-reaching read merges a deque segment, or when
//     a segment dispatches to verification. Ingest memory for a
//     never-quiescing window is thereby bounded by the threshold; the
//     eventual close (or Flush) pays a transient reload of the whole
//     segment, which verification materializes anyway.
//
//   - Checkpoint / RestoreCheckpoint: an exact snapshot of the per-key
//     accumulators and verdicts at a frozen instant. Freezing takes every
//     shard lock and waits out in-flight verification (workers never take
//     shard locks, so the wait cannot deadlock), which makes the snapshot a
//     safe cut across every key simultaneously: restoring it into a fresh
//     session and replaying the operations ingested after the freeze yields
//     verdicts identical to the uninterrupted run — the segment-equivalence
//     lemma again, applied at recovery time.
//
// Operation IDs are not preserved across spill or checkpoint: the verifiers
// re-Prepare every segment (sorting and reassigning IDs), so identities
// are verdict-neutral and reloaded operations simply renumber from zero.
//
// Keys are round-tripped through the keyed text format, so durable sessions
// require keys without whitespace, ';', or '#' — the same alphabet the
// trace grammar can express. Everything arriving via parsed ingest
// satisfies this by construction.

import (
	"errors"
	"fmt"
	"math"
	"strconv"

	"kat/internal/history"
)

// ShardLogger receives the write-ahead copy of accepted operations.
// LogShardBatch is called with the shard's ingest lock held — one call per
// (ingest call, shard) pair covering that call's accepted operations for
// the shard, encoded in the keyed text format. Commit is called once per
// ingest call after all locks are released; under a batch-fsync policy this
// is the group-commit point. Errors from either become the session's sticky
// ingest error.
type ShardLogger interface {
	LogShardBatch(shard int, encoded []byte) error
	Commit() error
}

// BlobStore stores spilled segment payloads. Put returns a non-zero id;
// Get returns the stored bytes; Del discards them. Implementations must be
// safe for concurrent use by different keys.
type BlobStore interface {
	Put(data []byte) (uint64, error)
	Get(id uint64) ([]byte, error)
	Del(id uint64) error
}

// loggerBox wraps a ShardLogger for atomic.Pointer storage.
type loggerBox struct{ l ShardLogger }

// SetShardLogger attaches the write-ahead logger. Attach it before
// concurrent ingest begins (recovery replays first, then attaches, so
// replayed operations are not re-logged).
func (s *Session) SetShardLogger(l ShardLogger) {
	if l == nil {
		s.logger.Store(nil)
		return
	}
	s.logger.Store(&loggerBox{l: l})
}

func (s *Session) shardLogger() ShardLogger {
	if b := s.logger.Load(); b != nil {
		return b.l
	}
	return nil
}

// DurabilityError marks an ingest failure caused by the write-ahead logger
// (the storage beneath the session) rather than by the input stream, so
// serving layers can report it as a server-side fault instead of a client
// error. Matched with errors.As; Unwrap exposes the underlying cause.
type DurabilityError struct{ Err error }

func (e *DurabilityError) Error() string { return e.Err.Error() }
func (e *DurabilityError) Unwrap() error { return e.Err }

// logShard hands one shard's accepted-op encoding to the logger (shard lock
// held by the caller) and stickies any failure.
func (s *Session) logShard(l ShardLogger, shard int, buf []byte) error {
	if len(buf) == 0 {
		return nil
	}
	if err := l.LogShardBatch(shard, buf); err != nil {
		werr := &DurabilityError{err}
		s.err.CompareAndSwap(nil, &stickyIngestErr{werr})
		return werr
	}
	return nil
}

// commitLog runs the logger's group-commit point and stickies any failure.
func (s *Session) commitLog(l ShardLogger) error {
	if err := l.Commit(); err != nil {
		werr := &DurabilityError{err}
		s.err.CompareAndSwap(nil, &stickyIngestErr{werr})
		return werr
	}
	return nil
}

// Flushed reports whether the session was drained by Flush.
func (s *Session) Flushed() bool { return s.flushed.Load() }

// SpilledOps returns the number of operations currently resident in the
// spill store instead of memory. Lock-free.
func (s *Session) SpilledOps() int64 { return s.e.onDisk.Load() }

// AppendKeyedOpText appends the keyed text form of one operation —
// "kind key value start finish[ weight=N][ client=N]\n" — the same grammar
// parseKeyedOp reads, so WAL payloads, spill blobs, checkpoint segment
// bodies, and the cluster router's re-emitted per-node sub-batches all
// round-trip through the one parser. Generic over the key view so the
// zero-copy byte paths don't materialize a string.
func AppendKeyedOpText[K string | []byte](buf []byte, key K, op history.Operation) []byte {
	return appendKeyedOpText(buf, key, op)
}

func appendKeyedOpText[K string | []byte](buf []byte, key K, op history.Operation) []byte {
	if op.IsWrite() {
		buf = append(buf, 'w', ' ')
	} else {
		buf = append(buf, 'r', ' ')
	}
	buf = append(buf, key...)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, op.Value, 10)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, op.Start, 10)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, op.Finish, 10)
	if op.Weight > 1 {
		buf = append(buf, " weight="...)
		buf = strconv.AppendInt(buf, op.Weight, 10)
	}
	if op.Client != 0 {
		buf = append(buf, " client="...)
		buf = strconv.AppendInt(buf, int64(op.Client), 10)
	}
	return append(buf, '\n')
}

// appendOpsText encodes a run of operations in keyed text form.
func appendOpsText(buf []byte, key string, ops []history.Operation) []byte {
	for _, op := range ops {
		buf = appendKeyedOpText(buf, key, op)
	}
	return buf
}

// parseOpsText decodes a keyed-text payload back into operations, IDs
// renumbered from base. The keys inside the payload are ignored (spill and
// checkpoint blobs are single-key by construction).
func parseOpsText(data []byte, base int) ([]history.Operation, error) {
	var ops []history.Operation
	seg := 0
	for len(data) > 0 {
		line := data
		if j := indexByte(data, '\n'); j >= 0 {
			line, data = data[:j], data[j+1:]
		} else {
			data = nil
		}
		if err := parseLineOps(line, &seg, func(_ []byte, op history.Operation) error {
			op.ID = base + len(ops)
			ops = append(ops, op)
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return ops, nil
}

func indexByte(b []byte, c byte) int {
	for i := range b {
		if b[i] == c {
			return i
		}
	}
	return -1
}

// ---- spill ----

// totalOpen is the open window's full size: spilled prefix + in-memory tail.
func (ks *keyState) totalOpen() int { return ks.spillOpenOps + len(ks.open) }

// spillOpenTail moves the in-memory open-window tail to the blob store. The
// value index, write count, and max finish stay — they are everything the
// cut rules consult before the window closes.
func (e *engine) spillOpenTail(ks *keyState) error {
	n := len(ks.open)
	if n == 0 {
		return nil
	}
	buf := e.spillBuf(n)
	buf = appendOpsText(buf[:0], ks.key, ks.open)
	id, err := e.store.Put(buf)
	e.spillBufs.Put(buf)
	if err != nil {
		return fmt.Errorf("trace: spill open window of key %q: %w", ks.key, err)
	}
	ks.spillOpen = append(ks.spillOpen, id)
	ks.spillOpenOps += n
	e.bufPool.Put(ks.open[:0])
	ks.open = nil
	e.accountSpill(ks, n)
	return nil
}

// spillSeg moves one closed segment's operations to the blob store.
func (e *engine) spillSeg(ks *keyState, seg *closedSeg) error {
	n := len(seg.ops)
	buf := e.spillBuf(n)
	buf = appendOpsText(buf[:0], ks.key, seg.ops)
	id, err := e.store.Put(buf)
	e.spillBufs.Put(buf)
	if err != nil {
		return fmt.Errorf("trace: spill segment of key %q: %w", ks.key, err)
	}
	seg.spill = id
	e.bufPool.Put(seg.ops[:0])
	seg.ops = nil
	e.accountSpill(ks, n)
	return nil
}

// unspill loads a spilled closed segment back into memory (Get + Del).
func (e *engine) unspill(ks *keyState, seg *closedSeg) error {
	if seg.spill == 0 {
		return nil
	}
	data, err := e.store.Get(seg.spill)
	if err != nil {
		return fmt.Errorf("trace: load spilled segment of key %q: %w", ks.key, err)
	}
	ops, err := parseOpsText(data, 0)
	if err != nil {
		return fmt.Errorf("trace: decode spilled segment of key %q: %w", ks.key, err)
	}
	e.store.Del(seg.spill)
	seg.spill = 0
	seg.ops = ops
	e.accountLoad(ks, len(ops))
	return nil
}

// reloadOpen restores the open window's spilled prefix ahead of the
// in-memory tail (the close path needs the whole window).
func (e *engine) reloadOpen(ks *keyState) error {
	if len(ks.spillOpen) == 0 {
		return nil
	}
	var ops []history.Operation
	for _, id := range ks.spillOpen {
		data, err := e.store.Get(id)
		if err != nil {
			return fmt.Errorf("trace: load spilled window of key %q: %w", ks.key, err)
		}
		chunk, err := parseOpsText(data, len(ops))
		if err != nil {
			return fmt.Errorf("trace: decode spilled window of key %q: %w", ks.key, err)
		}
		ops = append(ops, chunk...)
		e.store.Del(id)
	}
	for _, op := range ks.open {
		op.ID = len(ops)
		ops = append(ops, op)
	}
	if ks.open != nil {
		e.bufPool.Put(ks.open[:0])
	}
	loaded := ks.spillOpenOps
	ks.open = ops
	ks.spillOpen = nil
	ks.spillOpenOps = 0
	e.accountLoad(ks, loaded)
	return nil
}

func (e *engine) accountSpill(ks *keyState, n int) {
	ks.sh.buffered.Add(int64(-n))
	e.buffered.Add(int64(-n))
	e.onDisk.Add(int64(n))
	e.spills.Add(1)
	e.opsSpilled.Add(int64(n))
}

func (e *engine) accountLoad(ks *keyState, n int) {
	ks.sh.buffered.Add(int64(n))
	cur := e.buffered.Add(int64(n))
	atomicMax(&e.peakBuffered, cur)
	e.onDisk.Add(int64(-n))
	e.spillLoads.Add(1)
}

// spillBuf hands out a reusable encode buffer sized for n operations.
func (e *engine) spillBuf(n int) []byte {
	if b, ok := e.spillBufs.Get().([]byte); ok && b != nil {
		return b
	}
	return make([]byte, 0, 32*n)
}

// ---- checkpoint ----

// SegmentState is one held (closed, undispatched) segment in a checkpoint.
type SegmentState struct {
	LoSeq  int    `json:"lo"`
	HiSeq  int    `json:"hi"`
	Writes int    `json:"writes"`
	CutAt  int64  `json:"cutAt,omitempty"` // quiescent cut time (epoch attribution)
	Ops    string `json:"ops"`             // keyed text
}

// KeyState is one register's full accumulator + verdict state at the
// checkpoint freeze.
type KeyState struct {
	Key               string         `json:"key"`
	Seq               int            `json:"seq"`
	Ops               int            `json:"ops"`
	Open              string         `json:"open,omitempty"` // keyed text
	OpenMaxFinish     int64          `json:"openMaxFinish,omitempty"`
	MaxClosedFinish   int64          `json:"maxClosedFinish"`
	ClosedAny         bool           `json:"closedAny,omitempty"`
	Deque             []SegmentState `json:"deque,omitempty"`
	DispatchedThrough int            `json:"dispatched"`
	Values            [][2]int64     `json:"values,omitempty"` // (value, writer seq)
	CumWrites         []int64        `json:"cumWrites,omitempty"`
	CumMaxFinish      []int64        `json:"cumMaxFinish,omitempty"`
	TotalClosed       int64          `json:"totalClosed,omitempty"`
	Atomic            bool           `json:"atomic"`
	Err               string         `json:"err,omitempty"`
	ErrSeq            int            `json:"errSeq,omitempty"`
	MaxK              int            `json:"maxK,omitempty"`
	KFloor            int            `json:"kFloor,omitempty"`
	Saturated         bool           `json:"saturated,omitempty"`
	Props             []PropState    `json:"props,omitempty"`
}

// PropState is one extra property's accumulated verdict in a checkpoint
// (the k verdict rides the legacy Atomic/MaxK/Saturated fields above).
type PropState struct {
	Property  string `json:"property"`
	Delta     int64  `json:"delta,omitempty"`
	Unsafe    int    `json:"unsafe,omitempty"`
	Irregular int    `json:"irregular,omitempty"`
	Saturated bool   `json:"saturated,omitempty"`
}

// CarriedStats are the monotonic counters a checkpoint carries forward so a
// recovered session's Stats continue rather than reset.
type CarriedStats struct {
	Segments        int64 `json:"segments,omitempty"`
	Merges          int64 `json:"merges,omitempty"`
	StaleReads      int64 `json:"staleReads,omitempty"`
	PeakBufferedOps int64 `json:"peakBuffered,omitempty"`
	FirstVerdictOps int64 `json:"firstVerdict,omitempty"`
	Spills          int64 `json:"spills,omitempty"`
	OpsSpilled      int64 `json:"opsSpilled,omitempty"`
	SpillLoads      int64 `json:"spillLoads,omitempty"`
}

// RetiredKeyState is one retired key's compact record in a checkpoint.
type RetiredKeyState struct {
	Key             string      `json:"key"`
	Ops             int         `json:"ops"`
	MaxClosedFinish int64       `json:"maxClosedFinish"`
	Atomic          bool        `json:"atomic"`
	MaxK            int         `json:"maxK,omitempty"`
	Saturated       bool        `json:"saturated,omitempty"`
	Err             string      `json:"err,omitempty"`
	Props           []PropState `json:"props,omitempty"`
}

// SessionCheckpoint is an exact snapshot of a frozen session.
type SessionCheckpoint struct {
	Mode       string       `json:"mode"`                 // "check" | "smallestk"
	Properties string       `json:"properties,omitempty"` // enabled property set, flag syntax
	K          int          `json:"k,omitempty"`
	Threshold  int          `json:"threshold"`
	Flushed    bool         `json:"flushed,omitempty"`
	Stopped    bool         `json:"stopped,omitempty"`
	Err        string       `json:"err,omitempty"`
	Stats      CarriedStats `json:"stats"`
	Keys       []KeyState   `json:"keys"`

	// Keyspace lifecycle state (zero/empty for sessions without RetireTTL or
	// EpochLength, so pre-lifecycle checkpoints round-trip unchanged).
	RetireTTL    int64             `json:"retireTTL,omitempty"`
	EpochLength  int64             `json:"epochLength,omitempty"`
	Watermark    int64             `json:"watermark,omitempty"` // only meaningful when lifecycle enabled
	Retirements  int64             `json:"retirements,omitempty"`
	Readmissions int64             `json:"readmissions,omitempty"`
	Retired      []RetiredKeyState `json:"retired,omitempty"`
	Epochs       []EpochStats      `json:"epochs,omitempty"` // Folded aggregate included, if any
}

func modeName(m streamMode) string {
	if m == modeCheck {
		return "check"
	}
	return "smallestk"
}

// Checkpoint snapshots the session at a frozen instant: every shard lock is
// held (no append can land), in-flight verification has drained (every
// verdict is folded in), and — while still frozen — the frozen callback
// runs, which is where the caller rotates its write-ahead log so that the
// snapshot covers exactly the operations of the log epochs before the
// rotation. Spilled operations are read back (without consuming them) and
// inlined. Safe to call on a flushed session (the drain's final state
// snapshots with Flushed set).
func (s *Session) Checkpoint(frozen func() error) (*SessionCheckpoint, error) {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	for _, sh := range s.e.shards {
		sh.mu.Lock()
	}
	defer func() {
		for i := len(s.e.shards) - 1; i >= 0; i-- {
			s.e.shards[i].mu.Unlock()
		}
	}()
	// Workers never take shard locks, so waiting out in-flight segments
	// while frozen cannot deadlock; producers blocked on our locks hold no
	// semaphore slots the workers need to finish.
	s.e.wg.Wait()
	if frozen != nil {
		if err := frozen(); err != nil {
			return nil, err
		}
	}
	return s.buildCheckpoint()
}

func (s *Session) buildCheckpoint() (*SessionCheckpoint, error) {
	e := s.e
	cp := &SessionCheckpoint{
		Mode:       modeName(e.mode),
		Properties: e.sopts.Properties.String(),
		K:          e.k,
		Threshold:  e.threshold,
		Flushed:    s.flushed.Load(),
		Stopped:    e.stopped.Load(),
		Stats: CarriedStats{
			Segments:        e.segments.Load(),
			Merges:          e.merges.Load(),
			StaleReads:      e.staleReads.Load(),
			PeakBufferedOps: e.peakBuffered.Load(),
			FirstVerdictOps: e.firstVerdict.Load(),
			Spills:          e.spills.Load(),
			OpsSpilled:      e.opsSpilled.Load(),
			SpillLoads:      e.spillLoads.Load(),
		},
	}
	if err := s.stickyErr(); err != nil {
		cp.Err = err.Error()
	}
	cp.RetireTTL = e.retireTTL
	cp.EpochLength = e.epochLen
	cp.Retirements = e.retirements.Load()
	cp.Readmissions = e.readmissions.Load()
	if wm := e.watermark(); wm != math.MinInt64 {
		cp.Watermark = wm
	}
	for _, sh := range e.shards {
		for key, rk := range sh.retired {
			st := RetiredKeyState{
				Key:             key,
				Ops:             rk.ops,
				MaxClosedFinish: rk.maxClosedFinish,
				Atomic:          rk.props[0].Atomic,
				MaxK:            rk.props[0].K,
				Saturated:       rk.props[0].Saturated,
			}
			if rk.err != nil {
				st.Err = rk.err.Error()
			}
			for _, pv := range rk.props[1:] {
				st.Props = append(st.Props, PropState{
					Property:  pv.Property.String(),
					Delta:     pv.Delta,
					Unsafe:    pv.UnsafeReads,
					Irregular: pv.IrregularReads,
					Saturated: pv.Saturated,
				})
			}
			cp.Retired = append(cp.Retired, st)
		}
	}
	if e.epochLen > 0 {
		t := &e.epochT
		t.mu.Lock()
		if t.folded != nil {
			cp.Epochs = append(cp.Epochs, *t.folded)
		}
		for _, es := range t.epochs {
			cp.Epochs = append(cp.Epochs, *es)
		}
		t.mu.Unlock()
	}
	var buf []byte
	for _, sh := range e.shards {
		for _, ks := range sh.keys {
			st := KeyState{
				Key:               ks.key,
				Seq:               ks.seq,
				Ops:               ks.ops,
				OpenMaxFinish:     ks.openMaxFinish,
				MaxClosedFinish:   ks.maxClosedFinish,
				ClosedAny:         ks.closedAny,
				DispatchedThrough: ks.dispatchedThrough,
				CumWrites:         ks.cumWrites,
				CumMaxFinish:      ks.cumMaxFinish,
				TotalClosed:       ks.totalClosed,
			}
			// Open window: spilled prefix (read back, not consumed) + tail.
			buf = buf[:0]
			for _, id := range ks.spillOpen {
				data, err := e.store.Get(id)
				if err != nil {
					return nil, fmt.Errorf("trace: checkpoint read spilled window of %q: %w", ks.key, err)
				}
				buf = append(buf, data...)
			}
			buf = appendOpsText(buf, ks.key, ks.open)
			if len(buf) > 0 {
				st.Open = string(buf)
			}
			for _, seg := range ks.deque {
				ss := SegmentState{LoSeq: seg.loSeq, HiSeq: seg.hiSeq, Writes: seg.writes, CutAt: seg.cutAt}
				if seg.spill != 0 {
					data, err := e.store.Get(seg.spill)
					if err != nil {
						return nil, fmt.Errorf("trace: checkpoint read spilled segment of %q: %w", ks.key, err)
					}
					ss.Ops = string(data)
				} else {
					buf = appendOpsText(buf[:0], ks.key, seg.ops)
					ss.Ops = string(buf)
				}
				st.Deque = append(st.Deque, ss)
			}
			if len(ks.values) > 0 {
				st.Values = make([][2]int64, 0, len(ks.values))
				for v, seq := range ks.values {
					st.Values = append(st.Values, [2]int64{v, int64(seq)})
				}
			}
			ks.mu.Lock()
			st.Atomic = ks.props[0].Atomic
			if ks.err != nil {
				st.Err = ks.err.Error()
				st.ErrSeq = ks.errSeq
			}
			st.MaxK = ks.props[0].K
			st.Saturated = ks.props[0].Saturated
			for _, pv := range ks.props[1:] {
				st.Props = append(st.Props, PropState{
					Property:  pv.Property.String(),
					Delta:     pv.Delta,
					Unsafe:    pv.UnsafeReads,
					Irregular: pv.IrregularReads,
					Saturated: pv.Saturated,
				})
			}
			ks.mu.Unlock()
			cp.Keys = append(cp.Keys, st)
		}
	}
	return cp, nil
}

// RestoreCheckpoint loads a checkpoint into a fresh session. It must run
// before any append (and before SetShardLogger, so restored state is not
// re-logged). The session's mode, k, and threshold must match the
// checkpoint's — the horizon participates in dispatch decisions, so a
// changed threshold would not reproduce the original run. The ingest shard
// count may differ: keys re-route by hash.
func (s *Session) RestoreCheckpoint(cp *SessionCheckpoint) error {
	e := s.e
	if e.opsIngested() != 0 || e.keyCount.Load() != 0 {
		return errors.New("trace: RestoreCheckpoint on a session that already ingested")
	}
	if got := modeName(e.mode); got != cp.Mode {
		return fmt.Errorf("trace: checkpoint mode %q does not match session mode %q", cp.Mode, got)
	}
	// Older checkpoints carry no Properties field; they were written by
	// k-only sessions, which "k" (the PropertySet zero value's name) matches.
	if got := e.sopts.Properties.String(); cp.Properties != "" && cp.Properties != got {
		return fmt.Errorf("trace: checkpoint properties %q do not match session properties %q", cp.Properties, got)
	}
	if cp.Properties == "" && e.sopts.Properties.String() != "k" {
		return fmt.Errorf("trace: k-only checkpoint does not match session properties %q", e.sopts.Properties.String())
	}
	if e.mode == modeCheck && e.k != cp.K {
		return fmt.Errorf("trace: checkpoint k=%d does not match session k=%d", cp.K, e.k)
	}
	if e.threshold != cp.Threshold {
		return fmt.Errorf("trace: checkpoint horizon %d does not match session horizon %d (restart with the original -horizon)", cp.Threshold, e.threshold)
	}
	if e.retireTTL != cp.RetireTTL {
		return fmt.Errorf("trace: checkpoint retire TTL %d does not match session retire TTL %d (restart with the original -retire-ttl)", cp.RetireTTL, e.retireTTL)
	}
	if e.epochLen != cp.EpochLength {
		return fmt.Errorf("trace: checkpoint epoch length %d does not match session epoch length %d (restart with the original -epoch)", cp.EpochLength, e.epochLen)
	}
	for _, st := range cp.Keys {
		sh := e.shards[e.shardIndex(st.Key)]
		if _, dup := sh.keys[st.Key]; dup {
			return fmt.Errorf("trace: checkpoint repeats key %q", st.Key)
		}
		ks := e.newKey(sh, st.Key)
		ks.seq = st.Seq
		ks.ops = st.Ops
		ks.openMaxFinish = st.OpenMaxFinish
		ks.maxClosedFinish = st.MaxClosedFinish
		ks.closedAny = st.ClosedAny
		ks.dispatchedThrough = st.DispatchedThrough
		ks.cumWrites = st.CumWrites
		ks.cumMaxFinish = st.CumMaxFinish
		ks.totalClosed = st.TotalClosed
		for _, pair := range st.Values {
			ks.values[pair[0]] = int32(pair[1])
		}
		pending := 0
		if st.Open != "" {
			ops, err := parseOpsText([]byte(st.Open), 0)
			if err != nil {
				return fmt.Errorf("trace: checkpoint open window of %q: %w", st.Key, err)
			}
			ks.open = ops
			for _, op := range ops {
				if op.IsWrite() {
					ks.openWrites++
				}
			}
			pending += len(ops)
		}
		for _, ss := range st.Deque {
			ops, err := parseOpsText([]byte(ss.Ops), 0)
			if err != nil {
				return fmt.Errorf("trace: checkpoint segment of %q: %w", st.Key, err)
			}
			ks.deque = append(ks.deque, closedSeg{
				loSeq: ss.LoSeq, hiSeq: ss.HiSeq, ops: ops,
				writes: ss.Writes, nops: len(ops), cutAt: ss.CutAt,
			})
			ks.dequeWrites += ss.Writes
			pending += len(ops)
		}
		sh.ingested.Add(int64(st.Ops))
		sh.buffered.Add(int64(pending))
		e.buffered.Add(int64(pending))
		if n := int64(len(ks.open)); n > sh.maxOpen.Load() {
			sh.maxOpen.Store(n)
		}
		ks.props[0].Atomic = st.Atomic
		if st.Err != "" {
			ks.err = errors.New(st.Err)
			ks.errSeq = st.ErrSeq
		}
		ks.props[0].K = max(st.MaxK, st.KFloor)
		ks.props[0].Saturated = st.Saturated
		if st.Saturated {
			e.saturatedKeys.Add(1)
		}
		for _, ps := range st.Props {
			for i := range ks.props {
				if ks.props[i].Property.String() != ps.Property {
					continue
				}
				ks.props[i].Delta = ps.Delta
				ks.props[i].UnsafeReads = ps.Unsafe
				ks.props[i].IrregularReads = ps.Irregular
				ks.props[i].Saturated = ps.Saturated
				break
			}
		}
		bad := ks.err != nil || !ks.props[0].Atomic
		if e.mode == modeCheck && len(e.checkers) == 1 {
			ks.settled.Store(bad)
		} else {
			ks.settled.Store(ks.err != nil)
		}
	}
	for _, st := range cp.Retired {
		sh := e.shards[e.shardIndex(st.Key)]
		if _, dup := sh.keys[st.Key]; dup {
			return fmt.Errorf("trace: checkpoint retires live key %q", st.Key)
		}
		if sh.retired == nil {
			sh.retired = make(map[string]*retiredKey)
		}
		if _, dup := sh.retired[st.Key]; dup {
			return fmt.Errorf("trace: checkpoint repeats retired key %q", st.Key)
		}
		rk := &retiredKey{
			ops:             st.Ops,
			maxClosedFinish: st.MaxClosedFinish,
			props:           e.propsFromCheckpoint(st.Atomic, st.MaxK, st.Saturated, st.Props),
		}
		if st.Err != "" {
			rk.err = errors.New(st.Err)
		}
		sh.retired[st.Key] = rk
		sh.ingested.Add(int64(st.Ops))
		e.keyCount.Add(1)
		e.retiredNow.Add(1)
		e.retiredOps.Add(int64(st.Ops))
		if st.Saturated {
			e.saturatedKeys.Add(1)
		}
	}
	e.retirements.Store(cp.Retirements)
	e.readmissions.Store(cp.Readmissions)
	if cp.Watermark != 0 {
		for _, sh := range e.shards {
			sh.maxStart.Store(cp.Watermark)
		}
	}
	if e.epochLen > 0 {
		t := &e.epochT
		for i := range cp.Epochs {
			es := cp.Epochs[i]
			if es.Folded {
				t.folded = &es
			} else {
				t.epochs[es.Epoch] = &es
			}
		}
	}
	e.segments.Store(cp.Stats.Segments)
	e.merges.Store(cp.Stats.Merges)
	e.staleReads.Store(cp.Stats.StaleReads)
	atomicMax(&e.peakBuffered, cp.Stats.PeakBufferedOps)
	atomicMax(&e.peakBuffered, e.buffered.Load())
	e.firstVerdict.Store(cp.Stats.FirstVerdictOps)
	e.spills.Store(cp.Stats.Spills)
	e.opsSpilled.Store(cp.Stats.OpsSpilled)
	e.spillLoads.Store(cp.Stats.SpillLoads)
	if cp.Stopped {
		e.stopped.Store(true)
		e.stop.Store(true)
	}
	if cp.Err != "" {
		s.err.CompareAndSwap(nil, &stickyIngestErr{errors.New(cp.Err)})
	}
	if cp.Flushed {
		s.flushed.Store(true)
	}
	return nil
}
