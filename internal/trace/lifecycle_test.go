package trace

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"kat/internal/core"
	"kat/internal/generator"
	"kat/internal/history"
)

// churnTraceText renders a generator.Churn workload in arrival order.
func churnTraceText(cfg generator.ChurnConfig) string {
	tr := New()
	for _, ko := range generator.Churn(cfg) {
		tr.Add(ko.Key, ko.Op)
	}
	var b strings.Builder
	if err := WriteArrivalOrder(&b, tr); err != nil {
		panic(err)
	}
	return b.String()
}

// feedChunked feeds a text trace as a sequence of AppendTraceBatch calls of
// at most linesPer lines each. Ingest-path retirement measures idleness
// against the watermark at each batch's start, so batch boundaries are the
// arrival instants — a whole trace in one batch never retires anything.
func feedChunked(t *testing.T, s *Session, text string, linesPer int) {
	t.Helper()
	lines := strings.SplitAfter(strings.TrimSuffix(text, "\n"), "\n")
	for len(lines) > 0 {
		n := linesPer
		if n > len(lines) {
			n = len(lines)
		}
		chunk := strings.Join(lines[:n], "")
		lines = lines[n:]
		if _, err := s.AppendTraceBatch(strings.NewReader(chunk)); err != nil {
			t.Fatalf("feed chunk: %v", err)
		}
	}
}

// settleRetirements waits until every retirement the engine has committed is
// finalized or re-admitted (finalization is two-phase: the fold waits out
// in-flight segment verification, so after an asynchronous dispatch a sweep
// must run again). Used where a test needs a rebirth to land on a finalized
// retired record — i.e. to count as a re-admission deterministically.
func settleRetirements(t *testing.T, s *Session, ttl int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if st.Retirements == st.Readmissions+s.RetiredKeys() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("retirements never settled: %d marked, %d retired, %d readmitted",
				st.Retirements, s.RetiredKeys(), st.Readmissions)
		}
		if err := s.RetireIdle(ttl); err != nil {
			t.Fatalf("retire: %v", err)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// lifecycleOpts is the retirement-heavy configuration the tests use:
// sweep on every operation so eligibility means retirement.
func lifecycleOpts(ttl int64) StreamOptions {
	return StreamOptions{Workers: 2, MinSegmentOps: 1, IngestShards: 4,
		RetireTTL: ttl, RetireSweepOps: 1, Properties: PropertySetAll}
}

// compareSnapshots requires identical per-property verdicts between two
// drained sessions, ignoring only the Retired marker itself.
func compareSnapshots(t *testing.T, label string, want, got []KeyVerdict) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d keys vs %d", label, len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Key != g.Key || w.Ops != g.Ops || (w.Err == nil) != (g.Err == nil) ||
			w.SmallestK != g.SmallestK || w.Saturated != g.Saturated ||
			w.SmallestDelta != g.SmallestDelta || w.DeltaSaturated != g.DeltaSaturated ||
			w.UnsafeReads != g.UnsafeReads || w.IrregularReads != g.IrregularReads {
			t.Fatalf("%s: key %s diverged:\nbaseline %+v\nlifecycle %+v", label, w.Key, w, g)
		}
	}
}

// TestRetireIdleAndReadmit walks the whole lifecycle deterministically:
// quiescence, retirement, the retired verdict surface, re-admission with
// the carried floor, and the final drained verdict.
func TestRetireIdleAndReadmit(t *testing.T) {
	s := NewSmallestKSession(core.Options{}, StreamOptions{Workers: 1, MinSegmentOps: 1, IngestShards: 1})
	w := func(key string, v, start, fin int64) {
		t.Helper()
		if err := s.Append(key, history.Operation{Kind: history.KindWrite, Value: v, Start: start, Finish: fin}); err != nil {
			t.Fatalf("append %s %d: %v", key, v, err)
		}
	}
	w("a", 1, 0, 10)
	w("a", 2, 20, 30)
	// Advance the watermark far past a's last activity via another key.
	w("b", 1, 1000, 1010)
	// Retirement is two-phase: the sweep commits the cut and dispatches the
	// final segment; the fold to a retired record waits for the in-flight
	// verification to drain, so poll the sweep until it finalizes.
	deadline := time.Now().Add(5 * time.Second)
	for s.RetiredKeys() == 0 {
		if err := s.RetireIdle(100); err != nil {
			t.Fatalf("retire: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("retirement never finalized: %d retired", s.RetiredKeys())
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.RetiredKeys(); got != 1 {
		t.Fatalf("retired keys = %d, want 1 (a quiescent, b live)", got)
	}
	kv, ok := s.SnapshotKey("a")
	if !ok || !kv.Retired {
		t.Fatalf("snapshot of retired key: %+v ok=%v, want Retired", kv, ok)
	}
	if kv.Ops != 2 || kv.Err != nil {
		t.Fatalf("retired verdict carries wrong state: %+v", kv)
	}
	sum := s.RetiredSummary()
	if sum.Keys != 1 || sum.Ops != 2 || sum.Retirements != 1 {
		t.Fatalf("retired summary %+v, want 1 key / 2 ops / 1 retirement", sum)
	}
	// Re-admission: a new lifetime with fresh values, after the carried cut.
	w("a", 7, 2000, 2010)
	if got := s.RetiredKeys(); got != 0 {
		t.Fatalf("retired keys after re-admission = %d, want 0", got)
	}
	if st := s.Stats(); st.Readmissions != 1 {
		t.Fatalf("readmissions = %d, want 1", st.Readmissions)
	}
	// The carried cut still enforces the arrival contract.
	err := s.Append("a", history.Operation{Kind: history.KindWrite, Value: 8, Start: 5, Finish: 6})
	if err == nil {
		t.Fatal("op at/before the carried committed cut accepted")
	}
}

// TestRetirementEquivalenceChurn replays churning keyspaces (with recycled
// names, so retirement AND re-admission both fire) through a lifecycle
// session and a never-retiring session and requires identical per-property
// verdicts — the segment-equivalence lemma applied to retirement's forced
// early cuts.
// The TTLs below are chosen so retirement cuts land only at whole-lifetime
// boundaries: Gap exceeds one lifetime's span (so a quiescent key's idle time
// against the watermark grows in Gap-sized jumps), and the TTL sits between
// the largest intra-lifetime idle gap (~one commit spacing) and the
// pool-recycling rebirth distance. Retirement at a point where a later read
// could still reference an already-freed value is the documented divergence
// (the value index is gone, so the read reports an anomaly instead of a
// staleness floor); the fuzz target filters those, this test avoids them.
func TestRetirementEquivalenceChurn(t *testing.T) {
	for _, tc := range []struct {
		cfg generator.ChurnConfig
		ttl int64
	}{
		{generator.ChurnConfig{Seed: 1, Lifetimes: 40, OpsPerLifetime: 12, NamePool: 5, Gap: 1000}, 500},
		{generator.ChurnConfig{Seed: 2, Lifetimes: 60, OpsPerLifetime: 8, NamePool: 3, Gap: 800, Concurrency: 2}, 400},
		{generator.ChurnConfig{Seed: 3, Lifetimes: 30, OpsPerLifetime: 16, ReadFraction: 0.7, Gap: 1200}, 600},
	} {
		cfg, ttl := tc.cfg, tc.ttl
		text := churnTraceText(cfg)
		base := NewSmallestKSession(core.Options{}, lifecycleOpts(0))
		life := NewSmallestKSession(core.Options{}, lifecycleOpts(ttl))
		for _, sess := range []*Session{base, life} {
			lines := strings.SplitAfter(strings.TrimSuffix(text, "\n"), "\n")
			for len(lines) > 0 {
				n := 7
				if n > len(lines) {
					n = len(lines)
				}
				chunk := strings.Join(lines[:n], "")
				lines = lines[n:]
				if _, err := sess.AppendTraceBatch(strings.NewReader(chunk)); err != nil {
					t.Fatalf("cfg %+v ttl %d: feed: %v", cfg, ttl, err)
				}
				if sess == life {
					settleRetirements(t, sess, ttl)
				}
			}
			if err := sess.Flush(); err != nil {
				t.Fatalf("cfg %+v ttl %d: flush: %v", cfg, ttl, err)
			}
		}
		st := life.Stats()
		if st.Retirements == 0 {
			t.Fatalf("cfg %+v ttl %d: no retirements — workload not exercising the lifecycle", cfg, ttl)
		}
		if cfg.NamePool > 0 && st.Readmissions == 0 {
			t.Fatalf("cfg %+v ttl %d: recycled names never re-admitted", cfg, ttl)
		}
		compareSnapshots(t, fmt.Sprintf("seed %d ttl %d", cfg.Seed, ttl),
			base.Snapshot(), life.Snapshot())
	}
}

// TestEpochWindows checks epoch attribution and the /verdict?epoch surface:
// every verified operation lands in exactly one window, windows carry the
// worst k observed inside them, and eviction folds old windows into the
// cumulative aggregate.
func TestEpochWindows(t *testing.T) {
	sopts := StreamOptions{Workers: 1, MinSegmentOps: 1, IngestShards: 1, EpochLength: 100}
	s := NewSmallestKSession(core.Options{}, sopts)
	var total int64
	for i := int64(0); i < 40; i++ {
		start := i * 25 // four ops per epoch window
		err := s.Append("k", history.Operation{Kind: history.KindWrite, Value: i + 1, Start: start, Finish: start + 5})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		total++
	}
	if ep, ok := s.CurrentEpoch(); !ok || ep != (39*25)/100 {
		t.Fatalf("current epoch = %d ok=%v, want %d", ep, ok, (39*25)/100)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	epochs := s.Epochs()
	if len(epochs) < 2 {
		t.Fatalf("expected multiple epoch windows, got %+v", epochs)
	}
	var sum int64
	for _, es := range epochs {
		sum += es.Ops
		if es.MaxK > 1 || es.Violations != 0 || es.Errors != 0 {
			t.Fatalf("sequential writes produced a dirty window: %+v", es)
		}
	}
	if sum != total {
		t.Fatalf("epoch windows cover %d ops, ingested %d", sum, total)
	}
	if _, ok := s.EpochSummary(epochs[0].Epoch); !ok {
		t.Fatalf("EpochSummary missed a listed epoch %d", epochs[0].Epoch)
	}
	if _, ok := s.EpochSummary(10_000); ok {
		t.Fatal("EpochSummary invented an unseen epoch")
	}
}

// TestEpochEviction drives more windows than RetainEpochs and expects the
// oldest to fold into the cumulative aggregate.
func TestEpochEviction(t *testing.T) {
	sopts := StreamOptions{Workers: 1, MinSegmentOps: 1, IngestShards: 1,
		EpochLength: 10, RetainEpochs: 3}
	s := NewSmallestKSession(core.Options{}, sopts)
	for i := int64(0); i < 100; i++ {
		start := i * 10 // one op per window: far more windows than retained
		if err := s.Append("k", history.Operation{Kind: history.KindWrite, Value: i + 1, Start: start, Finish: start + 2}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	epochs := s.Epochs()
	if len(epochs) == 0 || !epochs[0].Folded {
		t.Fatalf("expected a folded aggregate first, got %+v", epochs)
	}
	if live := len(epochs) - 1; live > 3 {
		t.Fatalf("retained %d live windows, cap 3", live)
	}
	var sum int64
	for _, es := range epochs {
		sum += es.Ops
	}
	if sum != 100 {
		t.Fatalf("windows + aggregate cover %d ops, want 100", sum)
	}
	// An evicted epoch answers with the folded aggregate.
	es, ok := s.EpochSummary(0)
	if !ok || !es.Folded {
		t.Fatalf("evicted epoch lookup = %+v ok=%v, want folded aggregate", es, ok)
	}
}

// TestRetiredCheckpointRoundTrip checkpoints a session holding retired
// keys and epoch windows, restores it, and requires the lifecycle state —
// retired verdicts, carried cuts, counters, watermark, epochs — to survive,
// with the drained verdicts identical to an uninterrupted run.
func TestRetiredCheckpointRoundTrip(t *testing.T) {
	cfg := generator.ChurnConfig{Seed: 9, Lifetimes: 30, OpsPerLifetime: 10, NamePool: 4, Gap: 1000}
	text := churnTraceText(cfg)
	lines := strings.SplitAfter(strings.TrimSuffix(text, "\n"), "\n")
	cut := len(lines) / 2
	head, tail := strings.Join(lines[:cut], ""), strings.Join(lines[cut:], "")

	// Boundary-only TTL (see TestRetirementEquivalenceChurn): retirement
	// timing may differ between the interrupted and uninterrupted runs (the
	// sweep cadence restarts at the checkpoint), and only boundary cuts make
	// differently-timed retirements verdict-identical.
	sopts := lifecycleOpts(500)
	sopts.EpochLength = 2000

	want := NewSmallestKSession(core.Options{}, sopts)
	feedChunked(t, want, text, 11)
	if err := want.Flush(); err != nil {
		t.Fatal(err)
	}

	s1 := NewSmallestKSession(core.Options{}, sopts)
	feedChunked(t, s1, head, 11)
	cp, err := s1.Checkpoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s1.RetiredKeys() > 0 && len(cp.Retired) == 0 {
		t.Fatal("checkpoint dropped retired records")
	}

	s2 := NewSmallestKSession(core.Options{}, sopts)
	if err := s2.RestoreCheckpoint(cp); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got, want := s2.RetiredKeys(), s1.RetiredKeys(); got != want {
		t.Fatalf("restored retired keys = %d, want %d", got, want)
	}
	feedChunked(t, s2, tail, 11)
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	compareSnapshots(t, "restored", want.Snapshot(), s2.Snapshot())
	if w, g := want.Stats().Retirements, s2.Stats().Retirements; g == 0 && w > 0 {
		t.Fatalf("restored session lost retirement accounting: %d vs %d", g, w)
	}

	// Lifecycle config is part of the checkpoint contract.
	mismatched := NewSmallestKSession(core.Options{}, func() StreamOptions {
		o := lifecycleOpts(999)
		o.EpochLength = 2000
		return o
	}())
	if err := mismatched.RestoreCheckpoint(cp); err == nil {
		t.Fatal("retire-ttl mismatch accepted")
	}
	noEpochs := NewSmallestKSession(core.Options{}, lifecycleOpts(500))
	if err := noEpochs.RestoreCheckpoint(cp); err == nil {
		t.Fatal("epoch-length mismatch accepted")
	}
}

// TestChurnSoakHeapPlateau is the satellite soak test: a churning replay
// with retirement holds live heap near-flat while the same replay without
// retirement grows with every lifetime. Asserted on runtime.MemStats with
// generous factors so the test is about asymptotics, not allocator noise.
func TestChurnSoakHeapPlateau(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; skipped in -short")
	}
	cfg := generator.ChurnConfig{Seed: 4, Lifetimes: 4000, OpsPerLifetime: 24}
	text := churnTraceText(cfg)

	heapAfterGC := func() int64 {
		runtime.GC()
		runtime.GC() // twice: sync.Pool caches drain over two cycles
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return int64(ms.HeapAlloc)
	}
	liveHeap := func(sopts StreamOptions) (int64, StreamStats) {
		before := heapAfterGC()
		s := NewSmallestKSession(core.Options{}, sopts)
		feedChunked(t, s, text, 512)
		if err := s.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		delta := heapAfterGC() - before // session still reachable here
		st := s.Stats()
		runtime.KeepAlive(s)
		return delta, st
	}

	off, _ := liveHeap(StreamOptions{Workers: 2, MinSegmentOps: 1, IngestShards: 4})
	on, st := liveHeap(StreamOptions{Workers: 2, MinSegmentOps: 1, IngestShards: 4,
		RetireTTL: 50, RetireSweepOps: 64})
	if st.RetiredKeys < int64(cfg.Lifetimes)*8/10 {
		t.Fatalf("retired-key gauge did not climb: %d of %d lifetimes retired",
			st.RetiredKeys, cfg.Lifetimes)
	}
	// The no-retirement run keeps full per-key state for every lifetime ever
	// born; the lifecycle run holds compact retired records. Require a
	// clear asymptotic gap, not just "smaller" (allocator noise).
	if on < 1 {
		on = 1 // GC noise can push a small footprint below zero
	}
	if off < 2*on {
		t.Fatalf("no heap plateau: retirement on %+dB, off %+dB (retired %d)",
			on, off, st.RetiredKeys)
	}
	t.Logf("live heap: retirement on %+dB, off %+dB (%.1fx), %d retirements",
		on, off, float64(off)/float64(on), st.Retirements)
}
