package trace

// Batch-granular session ingest.
//
// The op-granular Append takes its key's shard lock once per operation —
// correct, but at "many concurrent producers" rates the lock traffic itself
// dominates: every operation pays an acquire/release plus the cache-line
// bounce of the lock word. The batch entry points amortize that the way a
// lock-striped memtable does: parse (AppendTraceBatch) or accept
// (AppendBatch) a whole chunk of operations, group them by ingest shard
// with one counting pass, and feed each shard's group under a single lock
// acquisition — lock acquisitions per operation drop by roughly the batch
// size over the shard count, and the parse path reuses the zero-copy byte
// parser so the steady-state hot path allocates nothing.
//
// Ordering: a key maps to exactly one shard and each shard's group
// preserves input order, so per-key arrival order — the only order the
// engine requires — is exactly preserved. What changes is interleaving
// granularity across producers: concurrent batches interleave at
// shard-group boundaries instead of operation boundaries, which is
// invisible to verdicts (keys never share state). Ingest remains
// non-transactional: when an operation is rejected mid-batch, operations
// already fed — including those of later input positions routed to
// earlier-processed shards — stay ingested, and the session error is
// sticky either way.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"

	"kat/internal/history"
	"kat/internal/wire"
)

// KeyedOp pairs a register name with one operation — the element of the
// batch ingest path. It aliases the wire codec's element type, so binary
// frames decode straight into AppendBatch's input with no conversion.
type KeyedOp = wire.Op

// defaultBatchChunk is the AppendTraceBatch read-chunk size: large enough
// that a chunk spans thousands of operations (one shard-lock acquisition
// per shard per chunk), small enough to stay cache- and latency-friendly.
const defaultBatchChunk = 256 << 10

// maxBatchLine caps the AppendTraceBatch buffer growth on newline-free
// input — the same 1 GiB backstop the op-granular path's scanner enforces,
// so a malicious or corrupt producer cannot balloon the server's memory
// with an unterminated line.
const maxBatchLine = 1 << 30

// batchScratch holds the reusable grouping state of one in-flight batch
// call; a sync.Pool on the session recycles them so concurrent producers
// never share one and the steady-state path allocates nothing.
type batchScratch struct {
	buf    []byte              // AppendTraceBatch read buffer
	ops    []history.Operation // parsed operations, input order
	keys   [][]byte            // i-th op's key (view into buf)
	shard  []int32             // i-th op's shard index
	counts []int32             // per-shard group size
	starts []int32             // counting-sort cursor, one per shard
	order  []int32             // op indices grouped by shard
	seg    int                 // running segment counter for parse errors
	wal    []byte              // write-ahead encoding of one shard group
	// kops aliases AppendBatch's input for the duration of one call, so the
	// cached feed closure can reach it without a per-call capture.
	kops []KeyedOp
	// wenc / wdec are the per-scratch wire codec state: wdec decodes
	// AppendWire request bodies, wenc re-frames each shard's accepted group
	// for the write-ahead log (self-contained, so recovery replays records
	// individually).
	wenc *wire.Encoder
	wdec *wire.Decoder
	// The closures below are built once per scratch — capturing per call
	// would allocate on every batch, breaking the zero-alloc hot path.
	// collect appends one parsed op into ops/keys (AppendTraceBatch);
	// feedKeyed / feedBytes hand op i to the engine for the two input
	// forms, both called by feedGrouped under the op's shard lock;
	// walKeyed / walBytes / walWire build one shard group's write-ahead
	// encoding (keyed text for the parsed paths, a wire frame for binary
	// ingest).
	collect   func(key []byte, op history.Operation) error
	feedKeyed func(sh *ingestShard, i int32) error
	feedBytes func(sh *ingestShard, i int32) error
	walKeyed  walEnc
	walBytes  walEnc
	walWire   walEnc
}

// walEnc builds the write-ahead encoding of one shard group: begin resets
// the encoder state, add appends accepted operation i, finish returns the
// encoded group (empty when nothing was accepted). Splitting the
// finalization out lets framed encodings (wire) emit their header/CRC once
// per group instead of per operation.
type walEnc struct {
	begin  func()
	add    func(i int32)
	finish func() []byte
}

func (s *Session) getScratch() *batchScratch {
	if sc, ok := s.batchScratches.Get().(*batchScratch); ok {
		return sc
	}
	return &batchScratch{}
}

func (s *Session) putScratch(sc *batchScratch) {
	sc.ops = sc.ops[:0]
	sc.keys = sc.keys[:0]
	sc.kops = nil // don't retain the caller's batch past the call
	s.batchScratches.Put(sc)
}

// feedGrouped walks the grouped scratch (counts/order as built by group)
// and feeds each non-empty shard group under a single counted lock
// acquisition: gate recheck under the lock, settleAdd per operation, and
// the sticky-error unwind — the one copy of the locking discipline the
// batch entry points share. add hands operation i to the engine (the input
// forms differ only there); enc, when a ShardLogger is attached, builds the
// shard group's write-ahead encoding, and the accepted prefix is logged
// before the lock releases — on the error exits too, so the log never
// misses an operation the engine admitted. Returns the operations actually
// appended and the first error.
func (s *Session) feedGrouped(sc *batchScratch, add func(sh *ingestShard, i int32) error, enc *walEnc) (int, error) {
	appended := 0
	logger := s.shardLogger()
	// Retirement sweeps fired while a shard chews its group must not treat
	// the rest of this batch as elapsed trace time: the whole batch arrived
	// at once, so idleness is measured against the watermark as of the
	// batch's start (see ingestShard.sweepWM).
	preWM := s.e.watermark()
	var start int32
	for si, sh := range s.e.shards {
		cnt := sc.counts[si]
		if cnt == 0 {
			continue
		}
		group := sc.order[start : start+cnt]
		start += cnt
		sh.lockIngest()
		if err := s.gate(); err != nil {
			sh.mu.Unlock()
			return appended, err
		}
		sh.sweepWM = preWM
		unlock := func() {
			sh.sweepWM = math.MaxInt64
			sh.mu.Unlock()
		}
		if logger != nil {
			enc.begin()
		}
		for _, i := range group {
			ok, err := s.settleAdd(add(sh, i))
			if ok {
				appended++
				if logger != nil {
					enc.add(i)
				}
			}
			if err != nil {
				if logger != nil {
					s.logShard(logger, si, enc.finish()) // accepted prefix; err already sticky
				}
				unlock()
				return appended, err
			}
		}
		if logger != nil {
			if err := s.logShard(logger, si, enc.finish()); err != nil {
				unlock()
				return appended, err
			}
		}
		unlock()
	}
	// Cold-shard retirement: the per-operation sweep only visits shards
	// with traffic, so shards whose keys all went quiescent are swept here,
	// against the same pre-batch watermark. No shard lock is held now.
	if err := s.sweepAllSticky(int64(appended), preWM); err != nil {
		return appended, err
	}
	return appended, nil
}

// group builds sc.order: a counting sort of the first n entries of sc.shard
// into per-shard, input-ordered groups. After it returns, shard si's group
// is sc.order[start:start+counts[si]] with start = sum of earlier counts.
func (sc *batchScratch) group(n, nshards int) {
	if cap(sc.counts) < nshards {
		sc.counts = make([]int32, nshards)
		sc.starts = make([]int32, nshards)
	}
	sc.counts = sc.counts[:nshards]
	sc.starts = sc.starts[:nshards]
	for i := range sc.counts {
		sc.counts[i] = 0
	}
	for i := 0; i < n; i++ {
		sc.counts[sc.shard[i]]++
	}
	if cap(sc.order) < n {
		sc.order = make([]int32, n)
	}
	sc.order = sc.order[:n]
	var off int32
	for si := 0; si < nshards; si++ {
		sc.starts[si] = off
		off += sc.counts[si]
	}
	for i := 0; i < n; i++ {
		si := sc.shard[i]
		sc.order[sc.starts[si]] = int32(i)
		sc.starts[si]++
	}
}

// AppendBatch feeds a batch of already-parsed operations, grouping them by
// ingest shard and taking each shard's lock once for its whole group
// instead of once per operation. It returns the number of operations
// actually appended (operations silently dropped after a StopOnViolation
// early exit are not counted) and the first error, which is sticky exactly
// like Append's. Per-key input order is preserved; see the package comment
// in batch.go for the cross-producer interleaving and non-transactionality
// fine print.
func (s *Session) AppendBatch(ops []KeyedOp) (int, error) {
	if len(ops) == 0 {
		return 0, nil
	}
	if err := s.gate(); err != nil {
		return 0, err
	}
	sc := s.getScratch()
	defer s.putScratch(sc)
	if sc.walKeyed.add == nil {
		sc.walKeyed = walEnc{
			begin: func() { sc.wal = sc.wal[:0] },
			add: func(i int32) {
				sc.wal = appendKeyedOpText(sc.wal, sc.kops[i].Key, sc.kops[i].Op)
			},
			finish: func() []byte { return sc.wal },
		}
	}
	appended, err := s.feedKeyedOps(sc, ops, &sc.walKeyed)
	if logger := s.shardLogger(); logger != nil {
		if cerr := s.commitLog(logger); cerr != nil && err == nil {
			err = cerr
		}
	}
	return appended, err
}

// feedKeyedOps groups a slice of keyed operations by ingest shard and feeds
// the groups — the shared core of AppendBatch and the per-frame step of
// AppendWire, differing only in the write-ahead encoding.
func (s *Session) feedKeyedOps(sc *batchScratch, ops []KeyedOp, enc *walEnc) (int, error) {
	e := s.e
	n := len(ops)
	if cap(sc.shard) < n {
		sc.shard = make([]int32, n)
	}
	sc.shard = sc.shard[:n]
	for i := range ops {
		sc.shard[i] = int32(e.shardIndex(ops[i].Key))
	}
	sc.group(n, len(e.shards))
	sc.kops = ops
	if sc.feedKeyed == nil {
		sc.feedKeyed = func(sh *ingestShard, i int32) error {
			return s.e.addStringIn(sh, sc.kops[i].Key, sc.kops[i].Op)
		}
	}
	return s.feedGrouped(sc, sc.feedKeyed, enc)
}

// AppendWire streams binary wire frames from r into the session: each
// frame's operations decode into the reusable scratch — key strings
// interned per stream, no per-operation text — and feed shard groups
// exactly like AppendBatch. Returns the number of operations actually
// appended. Frames decoded before a failure are already ingested; a
// malformed frame surfaces as a *wire.DecodeError carrying the stream byte
// offset, rejecting only this request (like a parse error on the text
// path), while engine admission errors are sticky exactly like Append's.
//
// When a ShardLogger is attached, each shard group is re-framed as a
// self-contained wire frame — durable ingest logs binary when it received
// binary, never materializing text — and the call is the group-commit unit,
// exactly as on AppendTraceBatch.
func (s *Session) AppendWire(r io.Reader) (int64, error) {
	n, err := s.appendWire(r)
	if logger := s.shardLogger(); logger != nil {
		if cerr := s.commitLog(logger); cerr != nil && err == nil {
			err = cerr
		}
	}
	return n, err
}

func (s *Session) appendWire(r io.Reader) (int64, error) {
	if err := s.gate(); err != nil {
		return 0, err
	}
	sc := s.getScratch()
	defer s.putScratch(sc)
	if sc.wdec == nil {
		sc.wdec = wire.NewDecoder(r)
	} else {
		sc.wdec.Reset(r)
	}
	if sc.walWire.add == nil {
		sc.walWire = walEnc{
			begin: func() {
				if sc.wenc == nil {
					sc.wenc = wire.NewEncoder()
					sc.wenc.SetSelfContained(true)
				} else {
					sc.wenc.Reset()
				}
			},
			add: func(i int32) {
				// Keys and kinds came through the decoder, which enforces
				// the grammar alphabet and the kind set, so re-encoding
				// cannot fail.
				_ = sc.wenc.Add(sc.kops[i].Key, sc.kops[i].Op)
			},
			finish: func() []byte {
				sc.wal = sc.wenc.AppendFrame(sc.wal[:0])
				return sc.wal
			},
		}
	}
	var n int64
	for {
		ops, err := sc.wdec.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		added, ferr := s.feedKeyedOps(sc, ops, &sc.walWire)
		n += int64(added)
		if ferr != nil {
			return n, ferr
		}
	}
}

// AppendTraceBatch streams the keyed text format from r into the session in
// batch-granular form: it reads chunks of input, parses every complete line
// with the zero-copy byte parser (keys stay views into the read buffer —
// no per-line or per-op string materializes), groups the chunk's operations
// by ingest shard, and feeds each shard's group under one lock acquisition.
// Returns the number of operations actually appended. Error semantics: any
// error aborts mid-stream with the operations before the failing one (in
// parse order; for admission errors, per shard group) already appended.
// Engine admission errors (ErrOutOfOrder, ErrBufferLimit) are sticky
// exactly like Append's; parse and reader errors reject only this request,
// as on the op-granular AppendTrace path, where a malformed line aborts the
// read before touching session state.
//
// When a ShardLogger is attached, the call is also the group-commit unit:
// accepted operations log shard-by-shard as chunks feed, and the logger
// commits once before the call returns — on the error exits too.
func (s *Session) AppendTraceBatch(r io.Reader) (int64, error) {
	n, err := s.appendTraceBatch(r)
	if logger := s.shardLogger(); logger != nil {
		if cerr := s.commitLog(logger); cerr != nil && err == nil {
			err = cerr
		}
	}
	return n, err
}

func (s *Session) appendTraceBatch(r io.Reader) (int64, error) {
	if err := s.gate(); err != nil {
		return 0, err
	}
	sc := s.getScratch()
	defer s.putScratch(sc)
	chunk := s.batchChunk
	if chunk <= 0 {
		chunk = defaultBatchChunk
	}
	if cap(sc.buf) < chunk {
		sc.buf = make([]byte, chunk)
	}
	buf := sc.buf[:cap(sc.buf)]
	sc.seg = 0
	var n int64
	carry := 0
	for {
		if carry == len(buf) {
			// One line longer than the buffer: grow and keep reading, up
			// to the same backstop the op-granular scanner enforces.
			if len(buf) >= maxBatchLine {
				sc.buf = buf
				return n, fmt.Errorf("trace: %w", bufio.ErrTooLong)
			}
			nb := make([]byte, 2*len(buf))
			copy(nb, buf[:carry])
			buf = nb
		}
		m, rerr := r.Read(buf[carry:])
		carry += m
		var data []byte
		eof := false
		switch {
		case rerr == io.EOF:
			data, carry, eof = buf[:carry], 0, true
		case rerr != nil:
			// A reader error tokenizes like EOF before it surfaces:
			// everything buffered — including a final unterminated line —
			// is ingested first, exactly as the op-granular path's scanner
			// emits its remaining buffer (final partial token included)
			// before reporting the error.
			added, err := s.ingestChunk(sc, buf[:carry])
			n += int64(added)
			sc.buf = buf
			if err != nil {
				return n, err
			}
			return n, fmt.Errorf("trace: %w", rerr)
		default:
			cut := bytes.LastIndexByte(buf[:carry], '\n') + 1
			if cut == 0 {
				continue // no complete line buffered yet
			}
			data = buf[:cut]
		}
		added, err := s.ingestChunk(sc, data)
		n += int64(added)
		if err != nil {
			sc.buf = buf
			return n, err
		}
		if eof {
			sc.buf = buf
			return n, nil
		}
		// Move the partial trailing line to the front (dst precedes src,
		// and the chunk's key views are done being read).
		carry = copy(buf, buf[len(data):carry])
	}
}

// ingestChunk parses one chunk of complete lines into the scratch, groups
// by shard, and feeds each group under a single shard-lock acquisition.
// On a parse error the operations parsed before the failing segment are
// still ingested first (matching AppendTrace's per-operation semantics),
// then the parse error is returned.
func (s *Session) ingestChunk(sc *batchScratch, data []byte) (int, error) {
	e := s.e
	sc.ops = sc.ops[:0]
	sc.keys = sc.keys[:0]
	if sc.collect == nil {
		sc.collect = func(key []byte, op history.Operation) error {
			sc.ops = append(sc.ops, op)
			sc.keys = append(sc.keys, key)
			return nil
		}
	}
	var parseErr error
	for len(data) > 0 {
		line := data
		if j := bytes.IndexByte(data, '\n'); j >= 0 {
			line, data = data[:j], data[j+1:]
		} else {
			data = nil
		}
		if parseErr = parseLineOps(line, &sc.seg, sc.collect); parseErr != nil {
			break
		}
	}
	n := len(sc.ops)
	if n == 0 {
		return 0, parseErr
	}
	if cap(sc.shard) < n {
		sc.shard = make([]int32, n)
	}
	sc.shard = sc.shard[:n]
	for i, key := range sc.keys {
		sc.shard[i] = int32(e.shardIndexBytes(key))
	}
	sc.group(n, len(e.shards))
	if sc.feedBytes == nil {
		sc.feedBytes = func(sh *ingestShard, i int32) error {
			return s.e.addIn(sh, sc.keys[i], sc.ops[i])
		}
		sc.walBytes = walEnc{
			begin: func() { sc.wal = sc.wal[:0] },
			add: func(i int32) {
				sc.wal = appendKeyedOpText(sc.wal, sc.keys[i], sc.ops[i])
			},
			finish: func() []byte { return sc.wal },
		}
	}
	appended, err := s.feedGrouped(sc, sc.feedBytes, &sc.walBytes)
	if err != nil {
		return appended, err
	}
	return appended, parseErr
}
