package regularity

import (
	"reflect"
	"strings"
	"testing"

	"kat/internal/history"
	"kat/internal/refcheck"
)

// TestDifferentialVsRefcheck sweeps every enumerated history of up to 4
// operations and asserts Check (on the normalized prepared history, the
// production calling convention) matches refcheck's definition-literal
// per-read safety/regularity reference exactly, offender lists included.
func TestDifferentialVsRefcheck(t *testing.T) {
	maxN := 4
	if testing.Short() {
		maxN = 3
	}
	total := 0
	for n := 1; n <= maxN; n++ {
		refcheck.EnumerateHistories(n, func(h *history.History) {
			total++
			desc := strings.ReplaceAll(h.String(), "\n", "; ")
			want, refErr := refcheck.Properties(h)
			p, err := history.Prepare(history.Normalize(h))
			if (refErr == nil) != (err == nil) {
				t.Fatalf("%s: ref err=%v, Prepare err=%v", desc, refErr, err)
			}
			if refErr != nil {
				return // anomalous history: Check is not defined on it
			}
			got := Check(p)
			if got.Safe != want.Safe || got.Regular != want.Regular ||
				!reflect.DeepEqual(got.UnsafeReads, want.UnsafeReads) ||
				!reflect.DeepEqual(got.IrregularReads, want.IrregularReads) {
				t.Fatalf("%s: Check %+v, ref %+v", desc, got, want)
			}
		})
		if t.Failed() {
			t.FailNow()
		}
	}
	t.Logf("swept %d histories against the safety/regularity reference", total)
}
