// Package regularity implements the classical weak register properties the
// paper contrasts with k-atomicity in Section I: Lamport's safety and
// regularity. The paper's point — reproduced by experiment E11 — is that
// these properties cannot describe sloppy-quorum behavior: a read that is
// NOT concurrent with any write must return the single most recent preceding
// value, so any stale-but-bounded read (exactly what k=2 tolerates) already
// violates them, while reads overlapping writes are allowed almost anything.
//
// Definitions used (multi-writer generalizations, per-read):
//
//   - A read is SAFE if, when it is concurrent with no write, it returns the
//     value of some maximal preceding write (one not followed by another
//     write that still precedes the read). Reads concurrent with any write
//     may return anything that was ever written.
//   - A read is REGULAR if it returns the value of some maximal preceding
//     write or of some write concurrent with it.
//
// With concurrent writers the "latest preceding write" is not unique; the
// maximal-preceding-writes set is the standard multi-writer relaxation.
// Both checks are per-read (no global total order is sought), which is why
// they are weaker than 1-atomicity and incomparable to k-atomicity for
// k >= 2 — histories exist that are 2-atomic but not regular and vice versa.
package regularity

import (
	"fmt"

	"kat/internal/history"
)

// Verdict reports which per-read properties hold for a history.
type Verdict struct {
	// Safe is true if every read satisfies the safety rule.
	Safe bool
	// Regular is true if every read satisfies the regularity rule.
	Regular bool
	// UnsafeReads and IrregularReads list offending read indices in the
	// prepared history.
	UnsafeReads    []int
	IrregularReads []int
}

// Check classifies every read of the prepared history.
func Check(p *history.Prepared) Verdict {
	v := Verdict{Safe: true, Regular: true}
	for r := 0; r < p.Len(); r++ {
		if !p.Op(r).IsRead() {
			continue
		}
		okReg := readIsRegular(p, r)
		if !okReg {
			v.Regular = false
			v.IrregularReads = append(v.IrregularReads, r)
		}
		if !readIsSafe(p, r, okReg) {
			v.Safe = false
			v.UnsafeReads = append(v.UnsafeReads, r)
		}
	}
	return v
}

// readIsRegular reports whether read r returns a maximal preceding write's
// value or a concurrent write's value.
func readIsRegular(p *history.Prepared, r int) bool {
	w := p.DictatingWrite[r]
	rop, wop := p.Op(r), p.Op(w)
	if wop.ConcurrentWith(rop) {
		return true
	}
	if !wop.Precedes(rop) {
		return false // read before its write: anomalous, never regular
	}
	// w precedes r: regular iff w is maximal — no other write follows w
	// and still precedes r.
	for x := 0; x < p.Len(); x++ {
		if x == w || !p.Op(x).IsWrite() {
			continue
		}
		if wop.Precedes(p.Op(x)) && p.Op(x).Precedes(rop) {
			return false
		}
	}
	return true
}

// readIsSafe reports the safety rule for read r; okReg is the regularity
// verdict (safety follows from regularity when the read overlaps no write).
func readIsSafe(p *history.Prepared, r int, okReg bool) bool {
	rop := p.Op(r)
	for x := 0; x < p.Len(); x++ {
		if p.Op(x).IsWrite() && p.Op(x).ConcurrentWith(rop) {
			return true // concurrent with a write: any written value allowed
		}
	}
	return okReg
}

// Summary renders the verdict compactly.
func (v Verdict) Summary() string {
	return fmt.Sprintf("safe=%v regular=%v (unsafe reads: %d, irregular reads: %d)",
		v.Safe, v.Regular, len(v.UnsafeReads), len(v.IrregularReads))
}
