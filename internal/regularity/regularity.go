// Package regularity implements the classical weak register properties the
// paper contrasts with k-atomicity in Section I: Lamport's safety and
// regularity. The paper's point — reproduced by experiment E11 — is that
// these properties cannot describe sloppy-quorum behavior: a read that is
// NOT concurrent with any write must return the single most recent preceding
// value, so any stale-but-bounded read (exactly what k=2 tolerates) already
// violates them, while reads overlapping writes are allowed almost anything.
//
// Definitions used (multi-writer generalizations, per-read):
//
//   - A read is SAFE if, when it is concurrent with no write, it returns the
//     value of some maximal preceding write (one not followed by another
//     write that still precedes the read). Reads concurrent with any write
//     may return anything that was ever written.
//   - A read is REGULAR if it returns the value of some maximal preceding
//     write or of some write concurrent with it.
//
// With concurrent writers the "latest preceding write" is not unique; the
// maximal-preceding-writes set is the standard multi-writer relaxation.
// Both checks are per-read (no global total order is sought), which is why
// they are weaker than 1-atomicity and incomparable to k-atomicity for
// k >= 2 — histories exist that are 2-atomic but not regular and vice versa.
package regularity

import (
	"fmt"
	"sort"

	"kat/internal/history"
)

// Verdict reports which per-read properties hold for a history.
type Verdict struct {
	// Safe is true if every read satisfies the safety rule.
	Safe bool
	// Regular is true if every read satisfies the regularity rule.
	Regular bool
	// UnsafeReads and IrregularReads list offending read indices in the
	// prepared history.
	UnsafeReads    []int
	IrregularReads []int
}

// Check classifies every read of the prepared history in one sorted sweep,
// O(n log n) total instead of the naive O(n) scan per read.
//
// Prepared histories are sorted by start time, so visiting reads in index
// order visits them in nondecreasing start order. Two precomputed views of
// the writes answer both per-read questions:
//
//   - The maximal-preceding-write FRONTIER: writes sorted by finish. While
//     sweeping reads by start, every write with finish < r.Start has
//     "entered the frontier"; tracking the maximum start among them decides
//     regularity — a dictating write w (with w preceding r) is maximal iff
//     no frontier write starts after w finishes.
//   - Write starts, sorted: the number of writes CONCURRENT with r equals
//     #(writes with start <= r.Finish) − #(writes with finish < r.Start);
//     the first term is a binary search, the second is the frontier size
//     (every write finishing before r.Start also starts before it, so the
//     subtraction counts exactly the overlapping writes). Safety needs only
//     whether that count is nonzero.
func Check(p *history.Prepared) Verdict {
	v := Verdict{Safe: true, Regular: true}
	n := p.Len()
	type writeEnd struct{ finish, start int64 }
	byFinish := make([]writeEnd, 0, n)
	starts := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		if op := p.Op(i); op.IsWrite() {
			byFinish = append(byFinish, writeEnd{op.Finish, op.Start})
			starts = append(starts, op.Start)
		}
	}
	sort.Slice(byFinish, func(i, j int) bool { return byFinish[i].finish < byFinish[j].finish })
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	frontier := 0 // writes with finish < current read's start
	var maxStart int64
	for r := 0; r < n; r++ {
		rop := p.Op(r)
		if !rop.IsRead() {
			continue
		}
		for frontier < len(byFinish) && byFinish[frontier].finish < rop.Start {
			if frontier == 0 || byFinish[frontier].start > maxStart {
				maxStart = byFinish[frontier].start
			}
			frontier++
		}
		w := p.DictatingWrite[r]
		wop := p.Op(w)
		var okReg bool
		switch {
		case wop.ConcurrentWith(rop):
			okReg = true
		case !wop.Precedes(rop):
			okReg = false // read before its write: anomalous, never regular
		default:
			// w precedes r: regular iff w is maximal — no write both
			// follows w and still precedes r. Frontier writes are exactly
			// those preceding r; one follows w iff it starts after w ends.
			okReg = frontier == 0 || maxStart <= wop.Finish
		}
		if !okReg {
			v.Regular = false
			v.IrregularReads = append(v.IrregularReads, r)
		}
		// Safe iff regular or concurrent with at least one write (then any
		// written value is allowed).
		if !okReg {
			startLE := sort.Search(len(starts), func(i int) bool { return starts[i] > rop.Finish })
			if startLE-frontier == 0 {
				v.Safe = false
				v.UnsafeReads = append(v.UnsafeReads, r)
			}
		}
	}
	return v
}

// Summary renders the verdict compactly.
func (v Verdict) Summary() string {
	return fmt.Sprintf("safe=%v regular=%v (unsafe reads: %d, irregular reads: %d)",
		v.Safe, v.Regular, len(v.UnsafeReads), len(v.IrregularReads))
}
