package regularity

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"kat/internal/generator"
	"kat/internal/history"
	"kat/internal/oracle"
	"kat/internal/zone"
)

func prep(t *testing.T, text string) *history.Prepared {
	t.Helper()
	p, err := history.Prepare(history.Normalize(history.MustParse(text)))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	return p
}

func TestSequentialFreshReadsRegular(t *testing.T) {
	p := prep(t, "w 1 0 10; r 1 20 30; w 2 40 50; r 2 60 70")
	v := Check(p)
	if !v.Safe || !v.Regular {
		t.Errorf("fresh sequential reads misclassified: %s", v.Summary())
	}
}

func TestStaleNonConcurrentReadViolatesBoth(t *testing.T) {
	// r(1) runs strictly after w2 and overlaps no write: must return 2.
	p := prep(t, "w 1 0 10; w 2 20 30; r 1 40 50")
	v := Check(p)
	if v.Safe || v.Regular {
		t.Errorf("stale isolated read accepted: %s", v.Summary())
	}
	if len(v.UnsafeReads) != 1 || len(v.IrregularReads) != 1 {
		t.Errorf("offender lists: %+v", v)
	}
}

func TestReadConcurrentWithWriteIsSafeNotRegular(t *testing.T) {
	// r(1) overlaps w3 but returns neither w3's value nor a maximal
	// preceding value (w2 is the maximal preceding write): safe (any value
	// allowed under safety when concurrent with a write) but not regular.
	p := prep(t, "w 1 0 10; w 2 20 30; w 3 40 60; r 1 45 55")
	v := Check(p)
	if !v.Safe {
		t.Errorf("read concurrent with a write must be safe: %s", v.Summary())
	}
	if v.Regular {
		t.Errorf("stale value from neither maximal nor concurrent write accepted as regular: %s", v.Summary())
	}
}

func TestReadOfConcurrentWriteIsRegular(t *testing.T) {
	p := prep(t, "w 1 0 10; w 2 20 60; r 2 30 50")
	v := Check(p)
	if !v.Regular || !v.Safe {
		t.Errorf("read of concurrent write misclassified: %s", v.Summary())
	}
}

func TestConcurrentWritersMaximalSetAccepted(t *testing.T) {
	// w2 and w3 concurrent with each other, both after w1, both before r.
	// Both are maximal preceding writes; reading either is regular.
	for _, val := range []string{"2", "3"} {
		p := prep(t, "w 1 0 10; w 2 20 40; w 3 25 45; r "+val+" 50 60")
		v := Check(p)
		if !v.Regular {
			t.Errorf("read of maximal write %s rejected: %s", val, v.Summary())
		}
	}
	// Reading w1 (dominated by both) is irregular.
	p := prep(t, "w 1 0 10; w 2 20 40; w 3 25 45; r 1 50 60")
	if v := Check(p); v.Regular {
		t.Errorf("dominated value accepted as regular: %s", v.Summary())
	}
}

// checkNaive is the pre-sweep reference implementation: an O(n) inner scan
// per read, straight from the definitions. The sweep in Check must be
// verdict-identical to it, including offender-list order.
func checkNaive(p *history.Prepared) Verdict {
	v := Verdict{Safe: true, Regular: true}
	readIsRegular := func(r int) bool {
		w := p.DictatingWrite[r]
		rop, wop := p.Op(r), p.Op(w)
		if wop.ConcurrentWith(rop) {
			return true
		}
		if !wop.Precedes(rop) {
			return false
		}
		for x := 0; x < p.Len(); x++ {
			if x == w || !p.Op(x).IsWrite() {
				continue
			}
			if wop.Precedes(p.Op(x)) && p.Op(x).Precedes(rop) {
				return false
			}
		}
		return true
	}
	readIsSafe := func(r int, okReg bool) bool {
		rop := p.Op(r)
		for x := 0; x < p.Len(); x++ {
			if p.Op(x).IsWrite() && p.Op(x).ConcurrentWith(rop) {
				return true
			}
		}
		return okReg
	}
	for r := 0; r < p.Len(); r++ {
		if !p.Op(r).IsRead() {
			continue
		}
		okReg := readIsRegular(r)
		if !okReg {
			v.Regular = false
			v.IrregularReads = append(v.IrregularReads, r)
		}
		if !readIsSafe(r, okReg) {
			v.Safe = false
			v.UnsafeReads = append(v.UnsafeReads, r)
		}
	}
	return v
}

// TestPropertySweepMatchesNaiveScan proves the sorted-sweep Check identical
// to the definition-literal naive scan on arbitrary generated histories,
// both normalized (distinct ranked timestamps) and raw (ties allowed).
func TestPropertySweepMatchesNaiveScan(t *testing.T) {
	prop := func(qh generator.QuickHistory, normalize bool) bool {
		h := qh.H
		if normalize {
			h = history.Normalize(h)
		}
		p, err := history.Prepare(h)
		if err != nil {
			return true // anomalous history: Check is not defined on it
		}
		got, want := Check(p), checkNaive(p)
		if got.Safe != want.Safe || got.Regular != want.Regular ||
			!reflect.DeepEqual(got.UnsafeReads, want.UnsafeReads) ||
			!reflect.DeepEqual(got.IrregularReads, want.IrregularReads) {
			t.Logf("sweep %+v != naive %+v on:\n%s", got, want, h)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAtomicImpliesRegularImpliesSafe: on arbitrary histories,
// 1-atomicity implies regularity implies safety (the classical hierarchy).
func TestPropertyAtomicImpliesRegularImpliesSafe(t *testing.T) {
	prop := func(qh generator.QuickHistory) bool {
		p, err := history.Prepare(qh.H)
		if err != nil {
			return false
		}
		atomic1, _ := zone.Check1Atomic(p)
		v := Check(p)
		if atomic1 && !v.Regular {
			t.Logf("1-atomic but irregular:\n%s", qh.H)
			return false
		}
		if v.Regular && !v.Safe {
			t.Logf("regular but unsafe:\n%s", qh.H)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestSectionIPoint reproduces the paper's Section I observation: there are
// histories that are 2-atomic (bounded staleness) yet violate regularity —
// regularity "fails to capture" sloppy-quorum behavior.
func TestSectionIPoint(t *testing.T) {
	p := prep(t, "w 1 0 10; w 2 20 30; r 1 40 50")
	v := Check(p)
	res, err := oracle.CheckK(p, 2, oracle.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Atomic {
		t.Fatal("setup: history should be 2-atomic")
	}
	if v.Regular {
		t.Error("setup: history should be irregular")
	}
}
