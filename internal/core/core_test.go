package core

import (
	"errors"
	"testing"

	"kat/internal/generator"
	"kat/internal/history"
)

func TestCheckDispatchesByK(t *testing.T) {
	h := history.MustParse("w 1 0 10; r 1 20 30")
	tests := []struct {
		k    int
		want Algorithm
	}{
		{1, AlgoZones},
		{2, AlgoFZF},
		{3, AlgoOracle},
		{7, AlgoOracle},
	}
	for _, tt := range tests {
		rep, err := Check(h, tt.k, Options{})
		if err != nil {
			t.Fatalf("Check(k=%d): %v", tt.k, err)
		}
		if rep.Algorithm != tt.want {
			t.Errorf("k=%d dispatched to %v, want %v", tt.k, rep.Algorithm, tt.want)
		}
		if !rep.Atomic {
			t.Errorf("k=%d: trivial history rejected", tt.k)
		}
	}
}

func TestCheckRejectsBadK(t *testing.T) {
	h := history.MustParse("w 1 0 10")
	if _, err := Check(h, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestCheckAnomalyError(t *testing.T) {
	h := history.MustParse("r 5 0 10") // dangling read
	if _, err := Check(h, 2, Options{}); err == nil {
		t.Error("anomalous history accepted")
	}
}

func TestForcedAlgorithmMismatch(t *testing.T) {
	h := history.MustParse("w 1 0 10")
	for _, tt := range []struct {
		algo Algorithm
		k    int
	}{
		{AlgoZones, 2},
		{AlgoLBT, 1},
		{AlgoLBT, 3},
		{AlgoFZF, 1},
	} {
		_, err := Check(h, tt.k, Options{Algorithm: tt.algo})
		if !errors.Is(err, ErrAlgorithmMismatch) {
			t.Errorf("algo=%v k=%d: err = %v, want ErrAlgorithmMismatch", tt.algo, tt.k, err)
		}
	}
}

func TestAlgorithmsAgree(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		h := generator.Random(generator.Config{Seed: seed, Ops: 25, Concurrency: 5})
		var got []bool
		for _, algo := range []Algorithm{AlgoLBT, AlgoFZF, AlgoOracle} {
			rep, err := Check(h, 2, Options{Algorithm: algo})
			if err != nil {
				t.Fatalf("seed %d algo %v: %v", seed, algo, err)
			}
			got = append(got, rep.Atomic)
		}
		if got[0] != got[1] || got[1] != got[2] {
			t.Fatalf("seed %d: disagreement LBT=%v FZF=%v oracle=%v", seed, got[0], got[1], got[2])
		}
	}
}

func TestZonesAgreesWithOracleK1(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		h := generator.Random(generator.Config{Seed: seed, Ops: 22, Concurrency: 4})
		a, err := Check(h, 1, Options{Algorithm: AlgoZones})
		if err != nil {
			t.Fatalf("zones: %v", err)
		}
		b, err := Check(h, 1, Options{Algorithm: AlgoOracle})
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		if a.Atomic != b.Atomic {
			t.Fatalf("seed %d: zones=%v oracle=%v history:\n%s", seed, a.Atomic, b.Atomic, h)
		}
	}
}

func TestSmallestKSequentialDepths(t *testing.T) {
	for _, depth := range []int{0, 1, 2, 3, 4} {
		h := generator.KAtomic(generator.Config{
			Seed: 7, Ops: 40, Concurrency: 1,
			StalenessDepth: depth, ForceDepth: true, ReadFraction: 0.4,
		})
		k, err := SmallestK(h, Options{})
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if k != depth+1 {
			t.Errorf("depth %d: SmallestK = %d, want %d", depth, k, depth+1)
		}
	}
}

func TestSmallestKEmpty(t *testing.T) {
	k, err := SmallestK(history.New(nil), Options{})
	if err != nil || k != 1 {
		t.Errorf("SmallestK(empty) = %d, %v; want 1, nil", k, err)
	}
}

func TestSmallestKMonotoneUnderInjection(t *testing.T) {
	base := generator.KAtomic(generator.Config{
		Seed: 3, Ops: 30, Concurrency: 1, StalenessDepth: 0, ReadFraction: 0.5,
	})
	k0, err := SmallestK(base, Options{})
	if err != nil {
		t.Fatalf("SmallestK: %v", err)
	}
	mut := generator.InjectStaleness(base, 9, 1.0, 2)
	k1, err := SmallestK(mut, Options{})
	if err != nil {
		t.Fatalf("SmallestK mutant: %v", err)
	}
	if k1 < k0 {
		t.Errorf("staleness injection decreased k: %d -> %d", k0, k1)
	}
	if k1 < 2 {
		t.Errorf("full injection at extra depth 2 left k=%d", k1)
	}
}

func TestCheckWeighted(t *testing.T) {
	h := history.MustParse("w 1 0 10 weight=2; w 2 20 30 weight=3; r 1 40 50")
	rep, err := CheckWeighted(h, 4, Options{})
	if err != nil {
		t.Fatalf("CheckWeighted: %v", err)
	}
	if rep.Atomic {
		t.Error("bound 4 accepted separation 5")
	}
	rep, err = CheckWeighted(h, 5, Options{})
	if err != nil {
		t.Fatalf("CheckWeighted: %v", err)
	}
	if !rep.Atomic {
		t.Error("bound 5 rejected separation 5")
	}
}

func TestWitnessExposedAndChecked(t *testing.T) {
	h := generator.KAtomic(generator.Config{Seed: 5, Ops: 30, Concurrency: 3, StalenessDepth: 1})
	for _, algo := range []Algorithm{AlgoLBT, AlgoFZF, AlgoOracle} {
		rep, err := Check(h, 2, Options{Algorithm: algo})
		if err != nil {
			t.Fatalf("algo %v: %v", algo, err)
		}
		if !rep.Atomic {
			t.Fatalf("algo %v rejected generated 2-atomic history", algo)
		}
		if len(rep.Witness) != rep.Prepared.Len() {
			t.Errorf("algo %v: witness length %d != %d", algo, len(rep.Witness), rep.Prepared.Len())
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{
		AlgoAuto: "auto", AlgoZones: "zones", AlgoLBT: "lbt",
		AlgoFZF: "fzf", AlgoOracle: "oracle", Algorithm(42): "Algorithm(42)",
	}
	for a, want := range names {
		if got := a.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", a, got, want)
		}
	}
}
