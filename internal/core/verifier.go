package core

import (
	"fmt"
	"runtime"
	"sync"

	"kat/internal/fzf"
	"kat/internal/history"
	"kat/internal/lbt"
	"kat/internal/oracle"
	"kat/internal/witness"
	"kat/internal/zone"
)

// Verifier is a reusable verification engine: it owns the scratch arenas the
// hot-path algorithms need (FZF buffers, witness-validation buffers) and
// reuses them across Check/SmallestK calls. A long-lived Verifier makes the
// k=2 FZF path allocation-free at steady state, which is what a
// high-throughput multi-key pipeline wants.
//
// A Verifier is NOT safe for concurrent use; give each goroutine its own
// (the parallel trace checker does exactly that). The zero value is ready to
// use.
//
// Reports produced through a Verifier may alias its internal buffers: a
// Report's Witness is valid only until the next call on the same Verifier.
// Copy it (or use the one-shot package functions) if it must outlive that.
type Verifier struct {
	fzf  fzf.Scratch
	wit  witness.Scratch
	prep history.PrepareScratch
	// zone and ops back the (key, chunk) scheduler: zone holds the chunk
	// decomposition a forked verification reads, ops is the chunk-op index
	// buffer used for memo hashing and order translation.
	zone zone.Scratch
	ops  []int
}

// NewVerifier returns a fresh engine.
func NewVerifier() *Verifier { return &Verifier{} }

// ForEachWorker runs fn(v, i) for every i in [0, n) over a bounded worker
// pool. Each worker owns one Verifier, so scratch arenas are reused across
// the items it handles; callers write results into disjoint per-index slots,
// so no locking is needed and output is deterministic for any worker count.
// workers <= 0 uses GOMAXPROCS. The trace checker and corpus metrics both
// fan out through this.
func ForEachWorker(n, workers int, fn func(v *Verifier, i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		v := NewVerifier()
		for i := 0; i < n; i++ {
			fn(v, i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := NewVerifier()
			for i := range next {
				fn(v, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Check decides whether the history is k-atomic. The input is normalized
// internally; anomalies surface as errors.
func (v *Verifier) Check(h *history.History, k int, opts Options) (Report, error) {
	if k < 1 {
		return Report{}, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	p, err := history.PrepareInPlace(history.Normalize(h))
	if err != nil {
		return Report{}, fmt.Errorf("core: %w", err)
	}
	return v.CheckPrepared(p, k, opts)
}

// CheckOwned is Check for callers that own h and will not use it afterwards:
// normalization rewrites h in place and the prepared index reuses the
// Verifier's scratch buffers, so a stream of segment checks allocates no
// fresh index per segment at steady state. The Report's Prepared (and
// Witness) alias the Verifier and are valid only until its next call.
func (v *Verifier) CheckOwned(h *history.History, k int, opts Options) (Report, error) {
	if k < 1 {
		return Report{}, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	p, err := v.prepareOwned(h)
	if err != nil {
		return Report{}, err
	}
	return v.CheckPrepared(p, k, opts)
}

// SmallestKOwned is SmallestK for owned histories (see CheckOwned).
func (v *Verifier) SmallestKOwned(h *history.History, opts Options) (int, error) {
	p, err := v.prepareOwned(h)
	if err != nil {
		return 0, err
	}
	return v.SmallestKPrepared(p, opts)
}

// ScanOwned normalizes and prepares an owned history purely for anomaly
// detection, returning the error Prepare would report (nil when the history
// satisfies the model assumptions). The streaming engine uses it to keep
// scanning segments of keys whose verdict is already settled, so anomaly
// reporting matches the monolithic checkers.
func (v *Verifier) ScanOwned(h *history.History) error {
	_, err := v.prepareOwned(h)
	return err
}

func (v *Verifier) prepareOwned(h *history.History) (*history.Prepared, error) {
	p, err := history.PrepareInPlaceScratch(history.NormalizeInPlace(h), &v.prep)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return p, nil
}

// CheckPrepared is Check for histories already normalized and prepared.
func (v *Verifier) CheckPrepared(p *history.Prepared, k int, opts Options) (Report, error) {
	if k < 1 {
		return Report{}, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	algo := resolveAlgo(k, opts)
	rep := Report{K: k, Algorithm: algo, Prepared: p}
	switch algo {
	case AlgoZones:
		if k != 1 {
			return Report{}, fmt.Errorf("%w: zones requires k=1, got k=%d", ErrAlgorithmMismatch, k)
		}
		ok, _ := zone.Check1Atomic(p)
		rep.Atomic = ok
		if ok {
			// The zone test does not produce an order; obtain one from
			// the oracle, which is fast on 1-atomic histories.
			res, err := oracle.CheckK(p, 1, oracle.Options{MaxStates: opts.OracleStates})
			if err == nil && res.Atomic {
				rep.Witness = res.Witness
			}
		}
	case AlgoLBT:
		if k != 2 {
			return Report{}, fmt.Errorf("%w: LBT requires k=2, got k=%d", ErrAlgorithmMismatch, k)
		}
		res := lbt.Check(p, lbt.Options{NoDeepening: opts.LBTNoDeepening})
		rep.Atomic = res.Atomic
		rep.Witness = res.Witness
	case AlgoFZF:
		if k != 2 {
			return Report{}, fmt.Errorf("%w: FZF requires k=2, got k=%d", ErrAlgorithmMismatch, k)
		}
		res := fzf.CheckScratch(p, &v.fzf)
		rep.Atomic = res.Atomic
		rep.Witness = res.Witness
	case AlgoOracle:
		res, err := oracle.CheckK(p, k, oracle.Options{MaxStates: opts.OracleStates})
		if err != nil {
			return Report{}, fmt.Errorf("core: %w", err)
		}
		rep.Atomic = res.Atomic
		rep.Witness = res.Witness
	default:
		return Report{}, fmt.Errorf("core: unknown algorithm %v", algo)
	}
	if rep.Atomic && rep.Witness != nil && !opts.SkipWitnessCheck {
		if err := witness.ValidateScratch(p, rep.Witness, k, &v.wit); err != nil {
			return Report{}, fmt.Errorf("core: internal error, invalid witness: %w", err)
		}
	}
	return rep, nil
}

// SmallestK computes the least k for which the history is k-atomic, using
// the fast checkers for k=1,2 and binary search with the exact oracle above
// that (Section II-B: given a k-AV solution, binary-search the smallest k).
// Every anomaly-free history is W-atomic where W is its number of writes, so
// the search is bounded.
func (v *Verifier) SmallestK(h *history.History, opts Options) (int, error) {
	p, err := history.PrepareInPlace(history.Normalize(h))
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	return v.SmallestKPrepared(p, opts)
}

// SmallestKPrepared is SmallestK for prepared histories. After the cheap
// k=1 probe, the search starts from the forced-staleness lower bound
// (writes pinned between a read and its dictating write by real time
// alone), so deeply stale histories skip the k=2 probe and binary-search a
// tighter range.
func (v *Verifier) SmallestKPrepared(p *history.Prepared, opts Options) (int, error) {
	if p.Len() == 0 {
		return 1, nil
	}
	// Probe k=1 before paying for the lower bound: healthy workloads are
	// mostly 1-atomic and the zone test is allocation-light.
	if ok, _ := zone.Check1Atomic(p); ok {
		return 1, nil
	}
	lb := history.ForcedStaleness(p)
	if lb <= 2 {
		if res := fzf.CheckScratch(p, &v.fzf); res.Atomic {
			return 2, nil
		}
	}
	// Binary search in [max(3, lb), writes]; monotone because a k-atomic
	// order is also (k+1)-atomic.
	lo, hi := max(3, lb), p.H.Writes()
	if hi < lo {
		hi = lo
	}
	// Verify the upper bound holds (it must, for anomaly-free histories).
	res, err := oracle.CheckK(p, hi, oracle.Options{MaxStates: opts.OracleStates})
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	if !res.Atomic {
		return 0, fmt.Errorf("core: history not even %d-atomic; input may violate model assumptions", hi)
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		res, err := oracle.CheckK(p, mid, oracle.Options{MaxStates: opts.OracleStates})
		if err != nil {
			return 0, fmt.Errorf("core: %w", err)
		}
		if res.Atomic {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}
