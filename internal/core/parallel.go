package core

// Chunk-parallel verification on the work-stealing pool.
//
// The sequential engine (verifier.go) serializes each history: FZF walks
// chunks one by one, the smallest-k search probes the oracle segment by
// segment. But the paper's own structure makes the units independent — a
// prepared history decomposes into chunks (Stage 1 of FZF) whose Stage 2
// verdicts never interact, and into safe-cut segments whose k-atomicity
// verdicts compose exactly (the segment-equivalence lemma in
// internal/trace/stream.go and internal/zone/cut.go). The methods on Ctx
// below exploit that: they fork (key, chunk) and (key, segment) units onto
// the pool, so a single hot key saturates every worker instead of one.
//
// Equivalence to the sequential paths, for any worker count:
//
//   - k=1 (zones): Atomic matches Check1Atomic exactly (see
//     zone.Chunk.OneAtomic for the proof); the witness comes from the same
//     oracle call the sequential path makes.
//   - k=2 (FZF): Atomic, FailedChunk, Reason, Chunks, Dangling, and the
//     Witness are byte-identical to fzf.CheckScratch — per-chunk verdicts
//     are position-independent, failures combine by minimum chunk index,
//     and fzf.Assemble reproduces the sequential concatenation.
//     OrdersTried may exceed the sequential count on rejection (the
//     sequential path stops at the first failing chunk; parallel workers
//     may have tried later chunks already).
//   - k>=3 (oracle) and smallest-k: verdicts and smallest-k values match by
//     the segment-equivalence lemma; a positive witness is the in-order
//     concatenation of per-segment witnesses (valid, and validated, but not
//     necessarily the same total order the whole-history oracle would
//     emit). Oracle state budgets apply per segment, so a pathological
//     history can exhaust the budget in one path and not the other.
//
// All combining is commutative (AND of verdicts, min failing index, max
// smallest-k), so results are deterministic for any schedule.

import (
	"fmt"
	"math"
	"slices"
	"sync/atomic"

	"kat/internal/fzf"
	"kat/internal/history"
	"kat/internal/oracle"
	"kat/internal/witness"
	"kat/internal/zone"
)

// CheckPreparedParallel is Verifier.CheckPrepared with chunk-level
// parallelism: chunk and segment work units fan out over a work-stealing
// pool of the given size (workers <= 0 uses GOMAXPROCS), so even a single
// register saturates multiple cores. The report is equivalent to the
// sequential one for any worker count (see the package comment on
// equivalence).
//
// This one-shot form starts and tears down a pool (cold scratch arenas) per
// call; callers verifying many histories should go through the trace entry
// points, which amortize one pool — and its per-worker Verifiers — across
// every key and chunk of the batch.
func CheckPreparedParallel(p *history.Prepared, k int, opts Options, workers int) (Report, error) {
	var rep Report
	var err error
	Run(workers, func(c *Ctx) { rep, err = c.CheckPrepared(p, k, opts) })
	return rep, err
}

// SmallestKPreparedParallel is Verifier.SmallestKPrepared with the search
// fanned out over safe-cut segments on a work-stealing pool (workers <= 0
// uses GOMAXPROCS). The result equals the sequential search by the
// segment-equivalence lemma.
func SmallestKPreparedParallel(p *history.Prepared, opts Options, workers int) (int, error) {
	var k int
	var err error
	Run(workers, func(c *Ctx) { k, err = c.SmallestKPrepared(p, opts) })
	return k, err
}

// sequentialPreferred reports whether a history should skip chunk scheduling
// and run on the calling worker's sequential scratch path (identical
// verdicts, no fork overhead): single-worker pools, and histories below the
// Options.MinParallelOps floor. A Memo forces the chunk path — caching
// operates on the unit decomposition.
func (c *Ctx) sequentialPreferred(p *history.Prepared, opts Options) bool {
	if opts.Memo != nil {
		return false
	}
	minOps := opts.MinParallelOps
	if minOps == 0 {
		minOps = DefaultMinParallelOps
	}
	if minOps < 0 {
		// Forced chunk scheduling — honored even on one worker, where the
		// units run inline (how tests pin a deterministic schedule while
		// still exercising the chunk path).
		return false
	}
	return c.Workers() == 1 || p.Len() < minOps
}

// resolveAlgo applies the AlgoAuto defaulting rule.
func resolveAlgo(k int, opts Options) Algorithm {
	algo := opts.Algorithm
	if algo == 0 || algo == AlgoAuto {
		switch k {
		case 1:
			algo = AlgoZones
		case 2:
			algo = AlgoFZF
		default:
			algo = AlgoOracle
		}
	}
	return algo
}

// CheckPrepared decides k-atomicity from inside the pool, forking chunk and
// segment units so idle workers steal them. With one worker and no memo it
// is exactly the sequential Verifier.CheckPrepared.
func (c *Ctx) CheckPrepared(p *history.Prepared, k int, opts Options) (Report, error) {
	if k < 1 {
		return Report{}, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	if c.sequentialPreferred(p, opts) {
		return c.v.CheckPrepared(p, k, opts)
	}
	algo := resolveAlgo(k, opts)
	rep := Report{K: k, Algorithm: algo, Prepared: p}
	switch algo {
	case AlgoZones:
		if k != 1 {
			return Report{}, fmt.Errorf("%w: zones requires k=1, got k=%d", ErrAlgorithmMismatch, k)
		}
		rep.Atomic = c.oneAtomicChunks(p)
		if rep.Atomic {
			// Same witness source as the sequential path: the oracle,
			// which is fast on 1-atomic histories.
			res, err := oracle.CheckK(p, 1, oracle.Options{MaxStates: opts.OracleStates})
			if err == nil && res.Atomic {
				rep.Witness = res.Witness
			}
		}
	case AlgoLBT:
		// LBT's epochs are inherently sequential; delegate.
		return c.v.CheckPrepared(p, k, opts)
	case AlgoFZF:
		if k != 2 {
			return Report{}, fmt.Errorf("%w: FZF requires k=2, got k=%d", ErrAlgorithmMismatch, k)
		}
		res := c.fzfChunks(p, opts.Memo)
		rep.Atomic = res.Atomic
		rep.Witness = res.Witness
	case AlgoOracle:
		ok, wit, err := c.oracleSegments(p, k, opts)
		if err != nil {
			return Report{}, fmt.Errorf("core: %w", err)
		}
		rep.Atomic = ok
		rep.Witness = wit
	default:
		return Report{}, fmt.Errorf("core: unknown algorithm %v", algo)
	}
	if rep.Atomic && rep.Witness != nil && !opts.SkipWitnessCheck {
		if err := witness.ValidateScratch(p, rep.Witness, k, &c.v.wit); err != nil {
			return Report{}, fmt.Errorf("core: internal error, invalid witness: %w", err)
		}
	}
	return rep, nil
}

// Check is CheckPrepared for raw histories (normalize + prepare first), the
// per-key unit of the parallel trace checker.
func (c *Ctx) Check(h *history.History, k int, opts Options) (Report, error) {
	if k < 1 {
		return Report{}, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	p, err := history.PrepareInPlace(history.Normalize(h))
	if err != nil {
		return Report{}, fmt.Errorf("core: %w", err)
	}
	return c.CheckPrepared(p, k, opts)
}

// CheckOwned is Check for histories the caller owns (see
// Verifier.CheckOwned); the streaming engine's segment unit. The Report may
// alias the worker and is valid only until the unit returns.
func (c *Ctx) CheckOwned(h *history.History, k int, opts Options) (Report, error) {
	if k < 1 {
		return Report{}, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	p, err := c.v.prepareOwned(h)
	if err != nil {
		return Report{}, err
	}
	return c.CheckPrepared(p, k, opts)
}

// SmallestK computes the smallest k for a raw history with the search fanned
// out over safe-cut segments.
func (c *Ctx) SmallestK(h *history.History, opts Options) (int, error) {
	p, err := history.PrepareInPlace(history.Normalize(h))
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	return c.SmallestKPrepared(p, opts)
}

// SmallestKOwned is SmallestK for owned histories (the streaming engine's
// smallest-k segment unit).
func (c *Ctx) SmallestKOwned(h *history.History, opts Options) (int, error) {
	p, err := c.v.prepareOwned(h)
	if err != nil {
		return 0, err
	}
	return c.SmallestKPrepared(p, opts)
}

// SmallestKPrepared computes the smallest k from inside the pool: the
// history splits at its safe cuts and each segment's smallest-k (computed
// with the usual probe ladder: zones, FZF, bounded oracle search) forks as
// its own unit; the answer is the maximum, per the segment-equivalence
// lemma.
func (c *Ctx) SmallestKPrepared(p *history.Prepared, opts Options) (int, error) {
	if c.sequentialPreferred(p, opts) {
		return c.v.SmallestKPrepared(p, opts)
	}
	if p.Len() == 0 {
		return 1, nil
	}
	segs := segmentsOf(p)
	if len(segs) == 1 && opts.Memo == nil {
		return c.v.SmallestKPrepared(p, opts)
	}
	if opts.Memo == nil {
		// The lemma holds for any subset of the safe cuts, so adjacent
		// segments coalesce into a few units per worker: same verdict,
		// same parallelism, a fraction of the per-unit overhead (view
		// construction, probe setup). With a memo the fine units stay —
		// small stable segments are what make incremental runs hit.
		segs = groupSegments(segs, 4*c.Workers())
	}
	ks := make([]int, len(segs))
	errs := make([]error, len(segs))
	c.forkUnits(len(segs), func(cc *Ctx, i int) {
		view, err := history.SubPrepared(p, segs[i][0], segs[i][1])
		if err != nil {
			errs[i] = fmt.Errorf("core: %w", err)
			return
		}
		memo := opts.Memo
		var key memoKey
		if memo != nil {
			h1, h2 := hashOpsAll(view)
			key = memoKey{h1, h2, memoSegSmallestK, 0}
			if e, hit := memo.get(key); hit {
				ks[i] = int(e.k)
				return
			}
		}
		k, err := cc.v.SmallestKPrepared(view, opts)
		if err != nil {
			errs[i] = err
			return
		}
		ks[i] = k
		if memo != nil {
			memo.put(key, memoEntry{ok: true, k: int32(k)})
		}
	})
	best := 1
	for i := range segs {
		if errs[i] != nil {
			return 0, errs[i]
		}
		if ks[i] > best {
			best = ks[i]
		}
	}
	return best, nil
}

// oneAtomicChunks applies the Gibbons–Korach conditions chunk by chunk
// (zone.Chunk.OneAtomic); verdicts are O(1) per chunk, so the fork mainly
// matters when a huge key yields very many chunks.
func (c *Ctx) oneAtomicChunks(p *history.Prepared) bool {
	dec := zone.DecomposeScratch(p, &c.v.zone)
	nc := len(dec.Chunks)
	var bad atomic.Bool
	batches := batchCount(nc, 4*c.Workers())
	c.Fork(batches, func(cc *Ctx, b int) {
		lo, hi := batchRange(nc, batches, b)
		for ci := lo; ci < hi && !bad.Load(); ci++ {
			if !dec.Chunks[ci].OneAtomic() {
				bad.Store(true)
				return
			}
		}
	})
	return !bad.Load()
}

// fzfChunks is the chunk-parallel form of fzf.CheckScratch: Stage 1 runs on
// the calling worker, Stage 2 verdicts fork as chunk units (memoized by
// content hash when a Memo is supplied), and Stage 3 combines them — first
// failing chunk by index, or the Lemma 4.1 witness assembly.
func (c *Ctx) fzfChunks(p *history.Prepared, memo *Memo) fzf.Result {
	dec := zone.DecomposeScratch(p, &c.v.zone)
	res := fzf.Result{
		Chunks:      len(dec.Chunks),
		Dangling:    len(dec.Dangling),
		FailedChunk: -1,
	}
	nc := len(dec.Chunks)
	orders := make([][]int, nc)
	reasons := make([]string, nc)
	var tried atomic.Int64
	var minFailed atomic.Int64
	minFailed.Store(math.MaxInt64)
	batches := batchCount(nc, 4*c.Workers())
	c.Fork(batches, func(cc *Ctx, b int) {
		wv := cc.v
		lo, hi := batchRange(nc, batches, b)
		for ci := lo; ci < hi; ci++ {
			if minFailed.Load() < int64(ci) {
				// A strictly earlier chunk already failed; this chunk can
				// no longer affect the (min-index) verdict.
				continue
			}
			ch := dec.Chunks[ci]
			var key memoKey
			var chunkOps []int
			if memo != nil {
				wv.ops = fzf.AppendChunkOps(p, ch, wv.ops[:0])
				chunkOps = wv.ops
				h1, h2 := hashOpsSubset(p, chunkOps)
				key = memoKey{h1, h2, memoChunkFZF, 2}
				if e, hit := memo.get(key); hit {
					tried.Add(int64(e.tried))
					if !e.ok {
						reasons[ci] = e.reason
						atomicMin(&minFailed, int64(ci))
						continue
					}
					ord := make([]int, len(e.order))
					for i, r := range e.order {
						ord[i] = chunkOps[r]
					}
					orders[ci] = ord
					continue
				}
			}
			ord, tr, reason := fzf.CheckChunk(p, ch, &wv.fzf)
			tried.Add(int64(tr))
			if ord == nil {
				reasons[ci] = reason
				atomicMin(&minFailed, int64(ci))
				if memo != nil {
					memo.put(key, memoEntry{reason: reason, tried: int32(tr)})
				}
				continue
			}
			out := make([]int, len(ord))
			copy(out, ord)
			orders[ci] = out
			if memo != nil {
				rel := make([]int32, len(out))
				for i, a := range out {
					j, _ := slices.BinarySearch(chunkOps, a)
					rel[i] = int32(j)
				}
				memo.put(key, memoEntry{ok: true, order: rel, tried: int32(tr)})
			}
		}
	})
	res.OrdersTried = int(tried.Load())
	if f := minFailed.Load(); f != math.MaxInt64 {
		res.FailedChunk = int(f)
		res.Reason = reasons[f]
		return res
	}
	res.Witness = fzf.Assemble(p, dec, orders, make([]int, 0, p.Len()))
	res.Atomic = true
	return res
}

// oracleSegments runs the exact decider per safe-cut segment and combines:
// atomic iff every segment is, witness = in-order concatenation.
func (c *Ctx) oracleSegments(p *history.Prepared, k int, opts Options) (bool, []int, error) {
	segs := segmentsOf(p)
	type segResult struct {
		atomic bool
		wit    []int // local indices
		err    error
	}
	results := make([]segResult, len(segs))
	c.forkUnits(len(segs), func(cc *Ctx, i int) {
		view, err := history.SubPrepared(p, segs[i][0], segs[i][1])
		if err != nil {
			results[i] = segResult{err: err}
			return
		}
		memo := opts.Memo
		var key memoKey
		if memo != nil {
			h1, h2 := hashOpsAll(view)
			key = memoKey{h1, h2, memoSegCheck, int32(k)}
			if e, hit := memo.get(key); hit {
				r := segResult{atomic: e.ok}
				if e.ok {
					r.wit = make([]int, len(e.order))
					for j, v := range e.order {
						r.wit[j] = int(v)
					}
				}
				results[i] = r
				return
			}
		}
		res, err := oracle.CheckK(view, k, oracle.Options{MaxStates: opts.OracleStates})
		if err != nil {
			results[i] = segResult{err: err}
			return
		}
		results[i] = segResult{atomic: res.Atomic, wit: res.Witness}
		if memo != nil {
			e := memoEntry{ok: res.Atomic}
			if res.Atomic {
				e.order = make([]int32, len(res.Witness))
				for j, v := range res.Witness {
					e.order[j] = int32(v)
				}
			}
			memo.put(key, e)
		}
	})
	wit := make([]int, 0, p.Len())
	for i, r := range results {
		if r.err != nil {
			return false, nil, r.err
		}
		if !r.atomic {
			return false, nil, nil
		}
		lo := segs[i][0]
		for _, v := range r.wit {
			wit = append(wit, lo+v)
		}
	}
	return true, wit, nil
}

// groupSegments coalesces adjacent safe-cut segments into at most target
// contiguous ranges of roughly equal operation count. Every boundary of the
// result is still a safe cut, so verdicts are unchanged.
func groupSegments(segs [][2]int, target int) [][2]int {
	if target < 1 {
		target = 1
	}
	if len(segs) <= target {
		return segs
	}
	total := segs[len(segs)-1][1] - segs[0][0]
	per := (total + target - 1) / target
	out := make([][2]int, 0, target)
	cur := segs[0]
	for _, s := range segs[1:] {
		if cur[1]-cur[0] >= per {
			out = append(out, cur)
			cur = s
			continue
		}
		cur[1] = s[1]
	}
	return append(out, cur)
}

// segmentsOf splits the prepared history at its safe cuts into contiguous
// [lo, hi) index ranges.
func segmentsOf(p *history.Prepared) [][2]int {
	cuts := zone.Cuts(p)
	segs := make([][2]int, 0, len(cuts)+1)
	lo := 0
	for _, cut := range cuts {
		segs = append(segs, [2]int{lo, cut})
		lo = cut
	}
	return append(segs, [2]int{lo, p.Len()})
}

// forkUnits forks one unit per index, batching only when the unit count is
// extreme (bounding scheduler bookkeeping without hurting load balance).
func (c *Ctx) forkUnits(n int, f func(cc *Ctx, i int)) {
	const maxUnits = 2048
	if n <= maxUnits {
		c.Fork(n, f)
		return
	}
	c.Fork(maxUnits, func(cc *Ctx, b int) {
		lo, hi := batchRange(n, maxUnits, b)
		for i := lo; i < hi; i++ {
			f(cc, i)
		}
	})
}

// batchCount sizes a fork of n tiny units into at most target batches.
func batchCount(n, target int) int {
	if n < target {
		return n
	}
	return target
}

// batchRange returns batch b's [lo, hi) share of n units.
func batchRange(n, batches, b int) (int, int) {
	return n * b / batches, n * (b + 1) / batches
}

// atomicMin lowers v to x if x is smaller.
func atomicMin(v *atomic.Int64, x int64) {
	for {
		cur := v.Load()
		if x >= cur || v.CompareAndSwap(cur, x) {
			return
		}
	}
}
