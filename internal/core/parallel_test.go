package core

import (
	"testing"

	"kat/internal/generator"
	"kat/internal/history"
	"kat/internal/witness"
)

func prepGen(t *testing.T, cfg generator.Config, kind string) *history.Prepared {
	t.Helper()
	var h *history.History
	switch kind {
	case "katomic":
		h = generator.KAtomic(cfg)
	case "random":
		h = generator.Random(cfg)
	default:
		t.Fatalf("unknown kind %s", kind)
	}
	p, err := history.PrepareInPlace(history.Normalize(h))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	return p
}

// workloads covers accepting and rejecting histories across the algorithm
// dispatch: 1-atomic, 2-atomic, deeper-stale, and unconstrained random.
func workloads(t *testing.T) map[string]*history.Prepared {
	t.Helper()
	return map[string]*history.Prepared{
		"linearizable": prepGen(t, generator.Config{Seed: 1, Ops: 600, Concurrency: 3, StalenessDepth: 0, ReadFraction: 0.6}, "katomic"),
		"2atomic":      prepGen(t, generator.Config{Seed: 2, Ops: 600, Concurrency: 4, StalenessDepth: 1, ForceDepth: true, ReadFraction: 0.6}, "katomic"),
		"deep":         prepGen(t, generator.Config{Seed: 3, Ops: 160, Concurrency: 2, StalenessDepth: 3, ForceDepth: true, ReadFraction: 0.5}, "katomic"),
		"random":       prepGen(t, generator.Config{Seed: 4, Ops: 120, Concurrency: 3, ReadFraction: 0.5}, "random"),
	}
}

// TestCheckPreparedParallelMatchesSequential proves the chunk-scheduled
// verdicts identical to the sequential engine for every worker count, k, and
// workload — the core acceptance property of the (key, chunk) scheduler.
func TestCheckPreparedParallelMatchesSequential(t *testing.T) {
	seqV := NewVerifier()
	for name, p := range workloads(t) {
		for _, k := range []int{1, 2, 3} {
			if k >= 3 && p.Len() > 200 {
				continue // keep the oracle tractable
			}
			seq, seqErr := seqV.CheckPrepared(p, k, Options{})
			for _, workers := range []int{1, 2, 3, 4} {
				par, parErr := CheckPreparedParallel(p, k, Options{MinParallelOps: -1}, workers)
				if (seqErr == nil) != (parErr == nil) {
					t.Fatalf("%s k=%d workers=%d: err %v vs %v", name, k, workers, seqErr, parErr)
				}
				if seqErr != nil {
					continue
				}
				if par.Atomic != seq.Atomic {
					t.Fatalf("%s k=%d workers=%d: atomic %v, sequential %v", name, k, workers, par.Atomic, seq.Atomic)
				}
				if par.Atomic && par.Witness != nil {
					if err := witness.Validate(p, par.Witness, k); err != nil {
						t.Fatalf("%s k=%d workers=%d: invalid parallel witness: %v", name, k, workers, err)
					}
				}
				// The k=2 chunk path promises a byte-identical witness.
				if k == 2 && seq.Atomic {
					if len(par.Witness) != len(seq.Witness) {
						t.Fatalf("%s workers=%d: witness lengths differ", name, workers)
					}
					for i := range par.Witness {
						if par.Witness[i] != seq.Witness[i] {
							t.Fatalf("%s workers=%d: witness diverges at %d", name, workers, i)
						}
					}
				}
			}
		}
	}
}

// TestSmallestKParallelMatchesSequential proves the segment-fanned
// smallest-k search equals the sequential one for every worker count.
func TestSmallestKParallelMatchesSequential(t *testing.T) {
	seqV := NewVerifier()
	for name, p := range workloads(t) {
		if p.Len() > 300 {
			continue
		}
		want, seqErr := seqV.SmallestKPrepared(p, Options{})
		for _, workers := range []int{1, 2, 4} {
			got, err := SmallestKPreparedParallel(p, Options{MinParallelOps: -1}, workers)
			if (seqErr == nil) != (err == nil) {
				t.Fatalf("%s workers=%d: err %v vs %v", name, workers, err, seqErr)
			}
			if seqErr == nil && got != want {
				t.Fatalf("%s workers=%d: smallest k = %d, sequential %d", name, workers, got, want)
			}
		}
	}
}

// TestMemoHitsPreserveVerdicts re-verifies every workload with a shared memo
// and checks (a) verdicts are unchanged on the hit path and (b) hits
// actually occur on the second pass.
func TestMemoHitsPreserveVerdicts(t *testing.T) {
	memo := NewMemo()
	opts := Options{Memo: memo}
	for name, p := range workloads(t) {
		for _, k := range []int{1, 2, 3} {
			if k >= 3 && p.Len() > 200 {
				continue
			}
			first, err1 := CheckPreparedParallel(p, k, opts, 2)
			second, err2 := CheckPreparedParallel(p, k, opts, 2)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s k=%d: memo changed error: %v vs %v", name, k, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if first.Atomic != second.Atomic {
				t.Fatalf("%s k=%d: memo changed verdict %v -> %v", name, k, first.Atomic, second.Atomic)
			}
			if second.Atomic && second.Witness != nil {
				if err := witness.Validate(p, second.Witness, k); err != nil {
					t.Fatalf("%s k=%d: memoized witness invalid: %v", name, k, err)
				}
			}
		}
		kA, errA := SmallestKPreparedParallel(p, opts, 2)
		kB, errB := SmallestKPreparedParallel(p, opts, 2)
		if (errA == nil) != (errB == nil) || kA != kB {
			t.Fatalf("%s: memoized smallest-k diverged: %d/%v vs %d/%v", name, kA, errA, kB, errB)
		}
	}
	st := memo.Stats()
	if st.Hits == 0 {
		t.Fatalf("no memo hits across repeated verification: %+v", st)
	}
	if st.Entries == 0 {
		t.Fatalf("no memo entries stored: %+v", st)
	}
}

// TestMemoSequentialWorkerConsistency checks the memo path also engages (and
// stays correct) at workers=1, where the pool runs units inline.
func TestMemoSequentialWorkerConsistency(t *testing.T) {
	p := prepGen(t, generator.Config{Seed: 9, Ops: 400, Concurrency: 4, StalenessDepth: 1, ReadFraction: 0.6}, "katomic")
	memo := NewMemo()
	seq, err := NewVerifier().CheckPrepared(p, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		rep, err := CheckPreparedParallel(p, 2, Options{Memo: memo}, 1)
		if err != nil || rep.Atomic != seq.Atomic {
			t.Fatalf("pass %d: %v atomic=%v want %v", pass, err, rep.Atomic, seq.Atomic)
		}
	}
	if memo.Stats().Hits == 0 {
		t.Fatal("no hits with workers=1")
	}
}
