package core

import (
	"sync"
	"sync/atomic"

	"kat/internal/history"
)

// Memo is a concurrency-safe verdict cache keyed by work-unit content hash.
// The (key, chunk) scheduler consults it before verifying a chunk (k=2 FZF)
// or a safe-cut segment (fixed-k oracle check, smallest-k search): repeated
// or incremental verification of overlapping traces — re-checking a trace
// that grew, re-running smallest-k after a fixed-k check, many keys sharing
// identical traffic patterns — skips every unit whose content was already
// proved.
//
// Keys are 128-bit content hashes (two FNV-1a passes with distinct offset
// bases) over the unit's operations (kind, value, start, finish, weight)
// plus the query (unit kind and staleness bound). FNV-1a is not a
// cryptographic hash and the two passes are structurally related, so treat
// the memo as sound for stochastic workloads, not for adversarially chosen
// inputs — an attacker who engineers a simultaneous collision of both
// passes could plant a wrong cached verdict. Two mitigations bound the
// damage: positive fixed-k verdicts reconstruct their witness from the
// entry and still pass through the engine's independent witness
// re-validation (a collision there surfaces as an internal error, not a
// wrong YES), and disabling the memo (Options.Memo = nil) restores fully
// recomputed verdicts. Positive chunk and segment verdicts store the placed
// order in unit-relative coordinates, so a hit reconstructs the same
// witness the verifier would have produced. Entries are content-addressed
// and never invalidated; the memo stops storing (but keeps serving hits)
// once it reaches its entry cap.
//
// A single Memo may be shared by any number of concurrent verifications;
// share one across runs via Options.Memo.
type Memo struct {
	shards [memoShardCount]memoShard
	hits   atomic.Int64
	misses atomic.Int64
	size   atomic.Int64
}

const (
	memoShardCount = 16
	// memoMaxEntries bounds stored verdicts (~hundreds of MB worst case
	// with large witnesses; typically far less).
	memoMaxEntries = 1 << 20
)

type memoShard struct {
	mu sync.Mutex
	m  map[memoKey]memoEntry
}

// memo unit tags.
const (
	memoChunkFZF uint8 = iota + 1
	memoSegCheck
	memoSegSmallestK
)

type memoKey struct {
	h1, h2 uint64
	tag    uint8
	k      int32
}

type memoEntry struct {
	ok     bool
	k      int32
	order  []int32 // unit-relative placed order for positive verdicts
	reason string
	tried  int32
}

// NewMemo returns an empty verdict memo.
func NewMemo() *Memo { return &Memo{} }

// MemoStats reports cache effectiveness.
type MemoStats struct {
	// Hits and Misses count lookups.
	Hits, Misses int64
	// Entries is the number of stored verdicts.
	Entries int64
}

// Stats returns a snapshot of the memo's counters.
func (m *Memo) Stats() MemoStats {
	return MemoStats{Hits: m.hits.Load(), Misses: m.misses.Load(), Entries: m.size.Load()}
}

func (m *Memo) get(key memoKey) (memoEntry, bool) {
	sh := &m.shards[key.h1%memoShardCount]
	sh.mu.Lock()
	e, ok := sh.m[key]
	sh.mu.Unlock()
	if ok {
		m.hits.Add(1)
	} else {
		m.misses.Add(1)
	}
	return e, ok
}

func (m *Memo) put(key memoKey, e memoEntry) {
	if m.size.Load() >= memoMaxEntries {
		return
	}
	sh := &m.shards[key.h1%memoShardCount]
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[memoKey]memoEntry)
	}
	if _, dup := sh.m[key]; !dup {
		sh.m[key] = e
		m.size.Add(1)
	}
	sh.mu.Unlock()
}

// FNV-1a constants; the second pass uses a distinct offset basis so the two
// 64-bit digests are effectively independent.
const (
	fnvOffset1 = 14695981039346656037
	fnvOffset2 = 0x9e3779b97f4a7c15
	fnvPrime   = 1099511628211
)

type opHasher struct{ h1, h2 uint64 }

func newOpHasher() opHasher { return opHasher{fnvOffset1, fnvOffset2} }

func (h *opHasher) word(v uint64) {
	for i := 0; i < 8; i++ {
		b := byte(v >> (8 * i))
		h.h1 = (h.h1 ^ uint64(b)) * fnvPrime
		h.h2 = (h.h2 ^ uint64(b)) * fnvPrime
	}
}

func (h *opHasher) op(op history.Operation) {
	h.word(uint64(op.Kind))
	h.word(uint64(op.Value))
	h.word(uint64(op.Start))
	h.word(uint64(op.Finish))
	h.word(uint64(op.Weight))
}

// hashOpsSubset hashes the content of the selected operations (by index).
func hashOpsSubset(p *history.Prepared, idx []int) (uint64, uint64) {
	h := newOpHasher()
	h.word(uint64(len(idx)))
	for _, i := range idx {
		h.op(p.Op(i))
	}
	return h.h1, h.h2
}

// hashOpsAll hashes the content of every operation of the prepared history.
func hashOpsAll(p *history.Prepared) (uint64, uint64) {
	h := newOpHasher()
	h.word(uint64(p.Len()))
	for _, op := range p.H.Ops {
		h.op(op)
	}
	return h.h1, h.h2
}
