// Package core is the top-level verification engine: it dispatches a k-AV
// query to the right algorithm (zone-based Gibbons–Korach test for k=1, FZF
// or LBT for k=2, the exact oracle for k >= 3 and for weighted queries) and
// implements the smallest-k search sketched in Section II-B of the paper.
package core

import (
	"errors"
	"fmt"

	"kat/internal/fzf"
	"kat/internal/history"
	"kat/internal/lbt"
	"kat/internal/oracle"
	"kat/internal/witness"
	"kat/internal/zone"
)

// Algorithm selects the verification algorithm.
type Algorithm int

const (
	// AlgoAuto picks the best algorithm for the given k: zones for k=1,
	// FZF for k=2, the exact oracle otherwise.
	AlgoAuto Algorithm = iota + 1
	// AlgoZones forces the Gibbons–Korach zone test (k=1 only).
	AlgoZones
	// AlgoLBT forces LBT (k=2 only).
	AlgoLBT
	// AlgoFZF forces FZF (k=2 only).
	AlgoFZF
	// AlgoOracle forces the exact search (any k; exponential worst case).
	AlgoOracle
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgoAuto:
		return "auto"
	case AlgoZones:
		return "zones"
	case AlgoLBT:
		return "lbt"
	case AlgoFZF:
		return "fzf"
	case AlgoOracle:
		return "oracle"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ErrAlgorithmMismatch is returned when a forced algorithm cannot decide the
// requested k (e.g., LBT with k=3).
var ErrAlgorithmMismatch = errors.New("core: algorithm cannot decide this k")

// Options tune verification.
type Options struct {
	// Algorithm forces a specific algorithm (default AlgoAuto).
	Algorithm Algorithm
	// OracleStates bounds the oracle's search (0 = package default).
	OracleStates int
	// LBTNoDeepening disables iterative deepening inside LBT (ablation).
	LBTNoDeepening bool
	// SkipWitnessCheck skips the internal re-validation of positive
	// results (on by default as a safety net; cost O(n^2) on acceptance).
	SkipWitnessCheck bool
}

// Report is the outcome of a verification run.
type Report struct {
	// K is the staleness bound that was checked.
	K int
	// Atomic is the decision.
	Atomic bool
	// Witness is a valid k-atomic total order over operation indices of
	// the prepared history, when Atomic.
	Witness []int
	// Algorithm records which algorithm decided.
	Algorithm Algorithm
	// Prepared is the normalized, sorted history the decision refers to
	// (witness indices point into it).
	Prepared *history.Prepared
}

// Check decides whether the history is k-atomic. The input is normalized
// internally; anomalies surface as errors.
func Check(h *history.History, k int, opts Options) (Report, error) {
	if k < 1 {
		return Report{}, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	p, err := history.Prepare(history.Normalize(h))
	if err != nil {
		return Report{}, fmt.Errorf("core: %w", err)
	}
	return CheckPrepared(p, k, opts)
}

// CheckPrepared is Check for histories already normalized and prepared.
func CheckPrepared(p *history.Prepared, k int, opts Options) (Report, error) {
	if k < 1 {
		return Report{}, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	algo := opts.Algorithm
	if algo == 0 || algo == AlgoAuto {
		switch k {
		case 1:
			algo = AlgoZones
		case 2:
			algo = AlgoFZF
		default:
			algo = AlgoOracle
		}
	}
	rep := Report{K: k, Algorithm: algo, Prepared: p}
	switch algo {
	case AlgoZones:
		if k != 1 {
			return Report{}, fmt.Errorf("%w: zones requires k=1, got k=%d", ErrAlgorithmMismatch, k)
		}
		ok, _ := zone.Check1Atomic(p)
		rep.Atomic = ok
		if ok {
			// The zone test does not produce an order; obtain one from
			// the oracle, which is fast on 1-atomic histories.
			res, err := oracle.CheckK(p, 1, oracle.Options{MaxStates: opts.OracleStates})
			if err == nil && res.Atomic {
				rep.Witness = res.Witness
			}
		}
	case AlgoLBT:
		if k != 2 {
			return Report{}, fmt.Errorf("%w: LBT requires k=2, got k=%d", ErrAlgorithmMismatch, k)
		}
		res := lbt.Check(p, lbt.Options{NoDeepening: opts.LBTNoDeepening})
		rep.Atomic = res.Atomic
		rep.Witness = res.Witness
	case AlgoFZF:
		if k != 2 {
			return Report{}, fmt.Errorf("%w: FZF requires k=2, got k=%d", ErrAlgorithmMismatch, k)
		}
		res := fzf.Check(p)
		rep.Atomic = res.Atomic
		rep.Witness = res.Witness
	case AlgoOracle:
		res, err := oracle.CheckK(p, k, oracle.Options{MaxStates: opts.OracleStates})
		if err != nil {
			return Report{}, fmt.Errorf("core: %w", err)
		}
		rep.Atomic = res.Atomic
		rep.Witness = res.Witness
	default:
		return Report{}, fmt.Errorf("core: unknown algorithm %v", algo)
	}
	if rep.Atomic && rep.Witness != nil && !opts.SkipWitnessCheck {
		if err := witness.Validate(p, rep.Witness, k); err != nil {
			return Report{}, fmt.Errorf("core: internal error, invalid witness: %w", err)
		}
	}
	return rep, nil
}

// CheckWeighted decides the weighted k-AV problem of Section V with the
// exact oracle.
func CheckWeighted(h *history.History, bound int64, opts Options) (Report, error) {
	p, err := history.Prepare(history.Normalize(h))
	if err != nil {
		return Report{}, fmt.Errorf("core: %w", err)
	}
	res, err := oracle.CheckWeighted(p, bound, oracle.Options{MaxStates: opts.OracleStates})
	if err != nil {
		return Report{}, fmt.Errorf("core: %w", err)
	}
	rep := Report{K: int(bound), Atomic: res.Atomic, Witness: res.Witness,
		Algorithm: AlgoOracle, Prepared: p}
	if rep.Atomic && !opts.SkipWitnessCheck {
		if err := witness.ValidateWeighted(p, rep.Witness, bound); err != nil {
			return Report{}, fmt.Errorf("core: internal error, invalid witness: %w", err)
		}
	}
	return rep, nil
}

// SmallestK computes the least k for which the history is k-atomic, using
// the fast checkers for k=1,2 and binary search with the exact oracle above
// that (Section II-B: given a k-AV solution, binary-search the smallest k).
// Every anomaly-free history is W-atomic where W is its number of writes, so
// the search is bounded.
func SmallestK(h *history.History, opts Options) (int, error) {
	p, err := history.Prepare(history.Normalize(h))
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	return SmallestKPrepared(p, opts)
}

// SmallestKPrepared is SmallestK for prepared histories.
func SmallestKPrepared(p *history.Prepared, opts Options) (int, error) {
	if p.Len() == 0 {
		return 1, nil
	}
	if ok, _ := zone.Check1Atomic(p); ok {
		return 1, nil
	}
	if res := fzf.Check(p); res.Atomic {
		return 2, nil
	}
	// Binary search in [3, writes]; monotone because a k-atomic order is
	// also (k+1)-atomic.
	lo, hi := 3, p.H.Writes()
	if hi < lo {
		hi = lo
	}
	// Verify the upper bound holds (it must, for anomaly-free histories).
	res, err := oracle.CheckK(p, hi, oracle.Options{MaxStates: opts.OracleStates})
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	if !res.Atomic {
		return 0, fmt.Errorf("core: history not even %d-atomic; input may violate model assumptions", hi)
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		res, err := oracle.CheckK(p, mid, oracle.Options{MaxStates: opts.OracleStates})
		if err != nil {
			return 0, fmt.Errorf("core: %w", err)
		}
		if res.Atomic {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}
