// Package core is the top-level verification engine: it dispatches a k-AV
// query to the right algorithm (zone-based Gibbons–Korach test for k=1, FZF
// or LBT for k=2, the exact oracle for k >= 3 and for weighted queries) and
// implements the smallest-k search sketched in Section II-B of the paper.
package core

import (
	"errors"
	"fmt"

	"kat/internal/history"
	"kat/internal/oracle"
	"kat/internal/witness"
)

// Algorithm selects the verification algorithm.
type Algorithm int

const (
	// AlgoAuto picks the best algorithm for the given k: zones for k=1,
	// FZF for k=2, the exact oracle otherwise.
	AlgoAuto Algorithm = iota + 1
	// AlgoZones forces the Gibbons–Korach zone test (k=1 only).
	AlgoZones
	// AlgoLBT forces LBT (k=2 only).
	AlgoLBT
	// AlgoFZF forces FZF (k=2 only).
	AlgoFZF
	// AlgoOracle forces the exact search (any k; exponential worst case).
	AlgoOracle
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgoAuto:
		return "auto"
	case AlgoZones:
		return "zones"
	case AlgoLBT:
		return "lbt"
	case AlgoFZF:
		return "fzf"
	case AlgoOracle:
		return "oracle"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ErrAlgorithmMismatch is returned when a forced algorithm cannot decide the
// requested k (e.g., LBT with k=3).
var ErrAlgorithmMismatch = errors.New("core: algorithm cannot decide this k")

// Options tune verification.
type Options struct {
	// Algorithm forces a specific algorithm (default AlgoAuto).
	Algorithm Algorithm
	// OracleStates bounds the oracle's search (0 = package default).
	OracleStates int
	// LBTNoDeepening disables iterative deepening inside LBT (ablation).
	LBTNoDeepening bool
	// SkipWitnessCheck skips the internal re-validation of positive
	// results (on by default as a safety net; cost O(n^2) on acceptance).
	SkipWitnessCheck bool
	// Memo, when non-nil, lets the chunk-parallel verification paths
	// (Ctx.CheckPrepared, CheckPreparedParallel, the streaming engine)
	// cache per-chunk and per-segment verdicts by content hash, so
	// repeated or incremental verification of overlapping traces skips
	// already-proved work units. The sequential paths ignore it.
	Memo *Memo
	// MinParallelOps is the smallest history (in operations) the parallel
	// entry points split into chunk/segment work units; smaller histories
	// run on the calling worker's sequential scratch path, whose verdicts
	// are identical, so tiny keys don't pay fork overhead. 0 uses
	// DefaultMinParallelOps; negative forces chunk scheduling regardless
	// of size (equivalence tests and fuzzing). A non-nil Memo also forces
	// the chunk path (caching requires the unit decomposition).
	MinParallelOps int
}

// DefaultMinParallelOps is the Options.MinParallelOps default: below this
// many operations a single register's verification is cheaper to run
// sequentially than to schedule as chunk units.
const DefaultMinParallelOps = 2048

// Report is the outcome of a verification run.
type Report struct {
	// K is the staleness bound that was checked.
	K int
	// Atomic is the decision.
	Atomic bool
	// Witness is a valid k-atomic total order over operation indices of
	// the prepared history, when Atomic.
	Witness []int
	// Algorithm records which algorithm decided.
	Algorithm Algorithm
	// Prepared is the normalized, sorted history the decision refers to
	// (witness indices point into it).
	Prepared *history.Prepared
}

// Check decides whether the history is k-atomic. The input is normalized
// internally; anomalies surface as errors. One-shot form of
// Verifier.Check — batch callers should hold a Verifier to reuse its
// scratch buffers.
func Check(h *history.History, k int, opts Options) (Report, error) {
	return NewVerifier().Check(h, k, opts)
}

// CheckPrepared is Check for histories already normalized and prepared.
func CheckPrepared(p *history.Prepared, k int, opts Options) (Report, error) {
	return NewVerifier().CheckPrepared(p, k, opts)
}

// CheckWeighted decides the weighted k-AV problem of Section V with the
// exact oracle.
func CheckWeighted(h *history.History, bound int64, opts Options) (Report, error) {
	p, err := history.Prepare(history.Normalize(h))
	if err != nil {
		return Report{}, fmt.Errorf("core: %w", err)
	}
	res, err := oracle.CheckWeighted(p, bound, oracle.Options{MaxStates: opts.OracleStates})
	if err != nil {
		return Report{}, fmt.Errorf("core: %w", err)
	}
	rep := Report{K: int(bound), Atomic: res.Atomic, Witness: res.Witness,
		Algorithm: AlgoOracle, Prepared: p}
	if rep.Atomic && !opts.SkipWitnessCheck {
		if err := witness.ValidateWeighted(p, rep.Witness, bound); err != nil {
			return Report{}, fmt.Errorf("core: internal error, invalid witness: %w", err)
		}
	}
	return rep, nil
}

// SmallestK computes the least k for which the history is k-atomic, using
// the fast checkers for k=1,2 and binary search with the exact oracle above
// that (Section II-B: given a k-AV solution, binary-search the smallest k).
// Every anomaly-free history is W-atomic where W is its number of writes, so
// the search is bounded. One-shot form of Verifier.SmallestK.
func SmallestK(h *history.History, opts Options) (int, error) {
	return NewVerifier().SmallestK(h, opts)
}

// SmallestKPrepared is SmallestK for prepared histories.
func SmallestKPrepared(p *history.Prepared, opts Options) (int, error) {
	return NewVerifier().SmallestKPrepared(p, opts)
}
