package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fork-join work-stealing scheduler for verification work units.
// It runs a fixed set of workers, each owning a private deque and a reusable
// Verifier (so every unit executes against warm scratch arenas). Units enter
// either from outside via Submit (the streaming engine injects segment jobs
// this way) or from inside a running unit via Ctx.Fork (a key unit forking
// its chunk units). Local execution is LIFO while idle workers steal the
// oldest unit from a victim's deque, so a skewed workload — one hot key
// fanning out many chunk units — spreads over every worker instead of
// serializing behind key boundaries.
//
// Determinism: the pool guarantees nothing about execution order, so callers
// must write results into disjoint per-unit slots or combine them with
// commutative operations (min failing index, max smallest-k). Every
// verification entry point built on the pool does exactly that, which is why
// their reports are identical for any worker count.
type Pool struct {
	nw     int
	deques []deque
	global []task // external injection queue (FIFO), guarded by mu
	wg     sync.WaitGroup

	mu          sync.Mutex
	workCond    *sync.Cond // parked workers wait here
	idleCond    *sync.Cond // Close waits here
	closed      bool
	globalHead  int   // consumed prefix of global (O(1) FIFO pop)
	outstanding int64 // external tasks submitted and not yet finished
	pending     atomic.Int64
}

// task is one schedulable unit. Units forked by Ctx.Fork carry their join
// group; externally submitted units have a nil group and are tracked by the
// pool's outstanding counter instead.
type task struct {
	g  *group
	fn func(*Ctx)
}

// group is the join counter of one Fork call.
type group struct {
	n    atomic.Int64
	done chan struct{}
}

func (g *group) finish() {
	if g.n.Add(-1) == 0 {
		close(g.done)
	}
}

// deque is a mutex-guarded double-ended queue: the owner pushes and pops at
// the top (LIFO, cache-warm, innermost fork first), thieves take from the
// bottom (FIFO, oldest and typically largest unit). The bottom is a head
// index, not a slice shift, so a steal is O(1) — a 100k-key fork must not
// memmove the remainder under the mutex on every steal. The buffer resets
// when it empties, bounding growth to the peak outstanding units.
type deque struct {
	mu   sync.Mutex
	buf  []task
	head int
}

func (d *deque) push(t task) {
	d.mu.Lock()
	d.buf = append(d.buf, t)
	d.mu.Unlock()
}

func (d *deque) reset() {
	if d.head == len(d.buf) {
		clear(d.buf)
		d.buf = d.buf[:0]
		d.head = 0
	}
}

// popTopIf pops the newest task only when it belongs to group g. A worker
// waiting on a fork may execute exactly its own group's units: anything else
// could re-enter scratch arenas (the worker's Verifier, a decomposition the
// forked units are reading) that the suspended unit still owns.
func (d *deque) popTopIf(g *group) (task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n := len(d.buf); n > d.head && d.buf[n-1].g == g {
		t := d.buf[n-1]
		d.buf[n-1] = task{}
		d.buf = d.buf[:n-1]
		d.reset()
		return t, true
	}
	return task{}, false
}

func (d *deque) popTop() (task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n := len(d.buf); n > d.head {
		t := d.buf[n-1]
		d.buf[n-1] = task{}
		d.buf = d.buf[:n-1]
		d.reset()
		return t, true
	}
	return task{}, false
}

func (d *deque) stealBottom() (task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head < len(d.buf) {
		t := d.buf[d.head]
		d.buf[d.head] = task{}
		d.head++
		d.reset()
		return t, true
	}
	return task{}, false
}

// Ctx is a worker's execution context, handed to every unit it runs. The
// Verifier (and through it every scratch arena) is owned by the worker: a
// unit may use it freely, but anything the unit returns that aliases it is
// valid only until the worker picks up its next unit.
type Ctx struct {
	pool *Pool
	id   int
	v    *Verifier
}

// Verifier returns the worker's reusable verification engine.
func (c *Ctx) Verifier() *Verifier { return c.v }

// Workers returns the pool's worker count.
func (c *Ctx) Workers() int { return c.pool.nw }

// NewPool starts a pool with the given number of workers; workers <= 0 uses
// GOMAXPROCS. Close must be called to release the workers.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{nw: workers, deques: make([]deque, workers)}
	p.workCond = sync.NewCond(&p.mu)
	p.idleCond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for id := 0; id < workers; id++ {
		go p.workerLoop(id)
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.nw }

// Submit enqueues a unit from outside the pool. It never blocks; callers
// needing backpressure (the streaming engine) bound their in-flight
// submissions themselves. Submit must not be called after Close.
func (p *Pool) Submit(fn func(*Ctx)) {
	p.mu.Lock()
	p.outstanding++
	p.global = append(p.global, task{fn: fn})
	p.pending.Add(1)
	p.workCond.Signal()
	p.mu.Unlock()
}

// Close waits until every submitted unit (and everything it forked) has
// finished, then stops the workers. The pool cannot be reused afterwards.
func (p *Pool) Close() {
	p.mu.Lock()
	for p.outstanding > 0 {
		p.idleCond.Wait()
	}
	p.closed = true
	p.workCond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// Run is the scoped fork-join form: it starts a pool, runs root as a
// submitted unit, waits for everything root forked, and tears the pool down.
func Run(workers int, root func(*Ctx)) {
	p := NewPool(workers)
	p.Submit(root)
	p.Close()
}

func (p *Pool) workerLoop(id int) {
	defer p.wg.Done()
	c := &Ctx{pool: p, id: id, v: NewVerifier()}
	for {
		if t, ok := p.findWork(id); ok {
			p.runTask(c, t)
			continue
		}
		p.mu.Lock()
		// Re-check under the lock: a push between findWork and here would
		// have signalled before we started waiting.
		if p.pending.Load() > 0 {
			p.mu.Unlock()
			continue
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		p.workCond.Wait()
		p.mu.Unlock()
	}
}

// findWork scans: own deque top, the global queue, then victims' bottoms.
func (p *Pool) findWork(id int) (task, bool) {
	if t, ok := p.deques[id].popTop(); ok {
		p.pending.Add(-1)
		return t, true
	}
	p.mu.Lock()
	if p.globalHead < len(p.global) {
		t := p.global[p.globalHead]
		p.global[p.globalHead] = task{}
		p.globalHead++
		if p.globalHead == len(p.global) {
			p.global = p.global[:0]
			p.globalHead = 0
		}
		p.mu.Unlock()
		p.pending.Add(-1)
		return t, true
	}
	p.mu.Unlock()
	for off := 1; off < p.nw; off++ {
		if t, ok := p.deques[(id+off)%p.nw].stealBottom(); ok {
			p.pending.Add(-1)
			return t, true
		}
	}
	return task{}, false
}

func (p *Pool) runTask(c *Ctx, t task) {
	t.fn(c)
	if t.g != nil {
		t.g.finish()
		return
	}
	p.mu.Lock()
	p.outstanding--
	if p.outstanding == 0 {
		p.idleCond.Broadcast()
	}
	p.mu.Unlock()
}

// Fork runs f(c, i) for every i in [0, n) and returns when all have
// completed. Iteration 0 runs inline on the calling worker; the rest are
// pushed to its deque where idle workers steal them. While waiting, the
// caller executes only units of this fork (never unrelated stolen work, which
// could corrupt scratch arenas the suspended unit still references), then
// blocks until thieves finish the remainder.
//
// f must write results into disjoint per-i slots or combine commutatively;
// execution order across i is unspecified.
func (c *Ctx) Fork(n int, f func(c *Ctx, i int)) {
	if n <= 0 {
		return
	}
	if n == 1 || c.pool.nw == 1 {
		for i := 0; i < n; i++ {
			f(c, i)
		}
		return
	}
	g := &group{done: make(chan struct{})}
	g.n.Store(int64(n - 1))
	d := &c.pool.deques[c.id]
	for i := n - 1; i >= 1; i-- {
		i := i
		d.push(task{g: g, fn: func(cc *Ctx) { f(cc, i) }})
	}
	c.pool.pending.Add(int64(n - 1))
	c.pool.mu.Lock()
	c.pool.workCond.Broadcast()
	c.pool.mu.Unlock()
	f(c, 0)
	for {
		t, ok := d.popTopIf(g)
		if !ok {
			break
		}
		c.pool.pending.Add(-1)
		t.fn(c)
		g.finish()
	}
	<-g.done
}
