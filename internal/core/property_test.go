package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kat/internal/fzf"
	"kat/internal/generator"
	"kat/internal/history"
	"kat/internal/lbt"
	"kat/internal/oracle"
	"kat/internal/witness"
	"kat/internal/zone"
)

// quickCfg keeps property-test history sizes in the oracle's comfort zone.
var quickCfg = &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(1))}

// TestPropertyAllDecidersAgreeOn2AV: for arbitrary anomaly-free histories,
// LBT, FZF, and the exact oracle return the same 2-AV verdict, and every
// positive verdict carries an independently valid witness.
func TestPropertyAllDecidersAgreeOn2AV(t *testing.T) {
	prop := func(qh generator.QuickHistory) bool {
		p, err := history.Prepare(qh.H)
		if err != nil {
			return false
		}
		want, err := oracle.CheckK(p, 2, oracle.Options{})
		if err != nil {
			return false
		}
		l := lbt.Check(p, lbt.Options{})
		f := fzf.Check(p)
		if l.Atomic != want.Atomic || f.Atomic != want.Atomic {
			t.Logf("disagreement (oracle=%v lbt=%v fzf=%v) on:\n%s",
				want.Atomic, l.Atomic, f.Atomic, qh.H)
			return false
		}
		if l.Atomic && witness.Validate(p, l.Witness, 2) != nil {
			return false
		}
		if f.Atomic && witness.Validate(p, f.Witness, 2) != nil {
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyZonesMatchOracleAt1: the Gibbons–Korach zone conditions decide
// exactly 1-atomicity.
func TestPropertyZonesMatchOracleAt1(t *testing.T) {
	prop := func(qh generator.QuickHistory) bool {
		p, err := history.Prepare(qh.H)
		if err != nil {
			return false
		}
		want, err := oracle.CheckK(p, 1, oracle.Options{})
		if err != nil {
			return false
		}
		got, _ := zone.Check1Atomic(p)
		if got != want.Atomic {
			t.Logf("zones=%v oracle=%v on:\n%s", got, want.Atomic, qh.H)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyGeneratedHistoriesVerify: histories built to be
// (depth+1)-atomic verify at that bound, through the public dispatch.
func TestPropertyGeneratedHistoriesVerify(t *testing.T) {
	prop := func(qa generator.QuickAtomicHistory) bool {
		rep, err := Check(qa.H, qa.Depth+1, Options{})
		if err != nil {
			return false
		}
		return rep.Atomic
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// budgeted keeps exact-search probes bounded: searches that exhaust the
// budget make a property vacuously true (the oracle is exponential in the
// worst case — NP-hardness is allowed to show up in a property test).
const budgeted = 400_000

// TestPropertyMonotoneInK: k-atomicity is monotone — a k-atomic history is
// (k+1)-atomic (the same witness order proves both).
func TestPropertyMonotoneInK(t *testing.T) {
	prop := func(qh generator.QuickHistory) bool {
		p, err := history.Prepare(qh.H)
		if err != nil {
			return false
		}
		prev := false
		for k := 1; k <= 4; k++ {
			res, err := oracle.CheckK(p, k, oracle.Options{MaxStates: budgeted})
			if err != nil {
				return true // budget exhausted: no verdict, vacuous
			}
			if prev && !res.Atomic {
				t.Logf("monotonicity broken at k=%d on:\n%s", k, qh.H)
				return false
			}
			prev = res.Atomic
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestPropertySmallestKIsTight: SmallestK returns a k at which the history
// verifies and (when k > 1) fails at k-1. Probes that exhaust the search
// budget are vacuous (see budgeted).
func TestPropertySmallestKIsTight(t *testing.T) {
	prop := func(qh generator.QuickHistory) bool {
		p, err := history.Prepare(qh.H)
		if err != nil {
			return false
		}
		k, err := SmallestKPrepared(p, Options{OracleStates: budgeted})
		if err != nil {
			return true // budget exhausted mid-search: vacuous
		}
		at, err := oracle.CheckK(p, k, oracle.Options{MaxStates: budgeted})
		if err != nil {
			return true
		}
		if !at.Atomic {
			t.Logf("not atomic at its own smallest k=%d:\n%s", k, qh.H)
			return false
		}
		if k > 1 {
			below, err := oracle.CheckK(p, k-1, oracle.Options{MaxStates: budgeted})
			if err != nil {
				return true
			}
			if below.Atomic {
				t.Logf("atomic below smallest k=%d:\n%s", k, qh.H)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestPropertyWeightedUnitEqualsPlain: with unit weights the weighted
// decision coincides with plain k-AV for every k.
func TestPropertyWeightedUnitEqualsPlain(t *testing.T) {
	prop := func(qh generator.QuickHistory) bool {
		p, err := history.Prepare(qh.H)
		if err != nil {
			return false
		}
		for k := 1; k <= 3; k++ {
			plain, err := oracle.CheckK(p, k, oracle.Options{})
			if err != nil {
				return false
			}
			weighted, err := oracle.CheckWeighted(p, int64(k), oracle.Options{})
			if err != nil {
				return false
			}
			if plain.Atomic != weighted.Atomic {
				t.Logf("k=%d plain=%v weighted=%v on:\n%s", k, plain.Atomic, weighted.Atomic, qh.H)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestPropertyNormalizePreservesDecision: normalization (re-applied) never
// changes the 2-AV verdict.
func TestPropertyNormalizePreservesDecision(t *testing.T) {
	prop := func(qh generator.QuickHistory) bool {
		p1, err := history.Prepare(qh.H)
		if err != nil {
			return false
		}
		p2, err := history.Prepare(history.Normalize(qh.H))
		if err != nil {
			return false
		}
		return fzf.Check(p1).Atomic == fzf.Check(p2).Atomic
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}
