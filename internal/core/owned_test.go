package core

import (
	"testing"

	"kat/internal/generator"
	"kat/internal/history"
)

func TestCheckOwnedMatchesCheck(t *testing.T) {
	v := NewVerifier()
	for seed := int64(0); seed < 15; seed++ {
		h := generator.KAtomic(generator.Config{
			Seed: seed, Ops: 120, Concurrency: 1 + int(seed%4),
			StalenessDepth: int(seed % 3), ForceDepth: true,
		})
		for _, k := range []int{1, 2, 3} {
			want, err := v.Check(h, k, Options{})
			if err != nil {
				t.Fatalf("Check: %v", err)
			}
			got, err := v.CheckOwned(h.Clone(), k, Options{})
			if err != nil {
				t.Fatalf("CheckOwned: %v", err)
			}
			if got.Atomic != want.Atomic {
				t.Fatalf("seed %d k=%d: CheckOwned=%v, Check=%v", seed, k, got.Atomic, want.Atomic)
			}
		}
	}
}

// SmallestK must agree with direct probes at k and k-1 now that the search
// starts from the forced-staleness lower bound — including deeply stale
// histories whose lower bound lands the search straight in oracle range.
func TestSmallestKOwnedDeepHistories(t *testing.T) {
	v := NewVerifier()
	for depth := 0; depth < 6; depth++ {
		h := generator.KAtomic(generator.Config{
			Seed: int64(depth), Ops: 80, Concurrency: 1,
			StalenessDepth: depth, ForceDepth: true, ReadFraction: 0.5,
		})
		k, err := v.SmallestKOwned(h.Clone(), Options{})
		if err != nil {
			t.Fatalf("SmallestKOwned: %v", err)
		}
		if want := depth + 1; k != want {
			t.Fatalf("depth %d: smallest k=%d, want %d", depth, k, want)
		}
		rep, err := v.Check(h, k, Options{})
		if err != nil || !rep.Atomic {
			t.Fatalf("depth %d: not atomic at its own smallest k=%d: %v", depth, k, err)
		}
		if k > 1 {
			below, err := v.Check(h, k-1, Options{})
			if err == nil && below.Atomic {
				t.Fatalf("depth %d: atomic below smallest k=%d", depth, k)
			}
		}
	}
}

func TestSmallestKOwnedMatchesSmallestK(t *testing.T) {
	v := NewVerifier()
	for seed := int64(0); seed < 20; seed++ {
		h := generator.KAtomic(generator.Config{
			Seed: seed, Ops: 100, Concurrency: 1 + int(seed%5),
			StalenessDepth: int(seed % 4), ReadFraction: 0.6,
		})
		if seed%2 == 0 {
			h = generator.InjectStaleness(h, seed, 0.25, 1+int(seed%2))
		}
		want, err := v.SmallestK(h, Options{})
		if err != nil {
			t.Fatalf("SmallestK: %v", err)
		}
		got, err := v.SmallestKOwned(h.Clone(), Options{})
		if err != nil {
			t.Fatalf("SmallestKOwned: %v", err)
		}
		if got != want {
			t.Fatalf("seed %d: SmallestKOwned=%d, SmallestK=%d", seed, got, want)
		}
	}
}

func TestScanOwned(t *testing.T) {
	v := NewVerifier()
	if err := v.ScanOwned(history.MustParse("w 1 0 10; r 1 20 30")); err != nil {
		t.Fatalf("clean history: %v", err)
	}
	if err := v.ScanOwned(history.MustParse("w 1 0 10; r 2 20 30")); err == nil {
		t.Fatal("dangling read not reported")
	}
	// Scratch survives the error path.
	if err := v.ScanOwned(history.MustParse("w 1 0 10")); err != nil {
		t.Fatalf("after error: %v", err)
	}
}
