package core

import (
	"sync/atomic"
	"testing"
)

// TestForkRunsEveryIndex checks that Fork executes each index exactly once
// for a spread of worker counts and fan-outs, including n much larger and
// much smaller than the worker count.
func TestForkRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 2, 7, 64, 501} {
			counts := make([]atomic.Int64, n)
			Run(workers, func(c *Ctx) {
				c.Fork(n, func(c *Ctx, i int) {
					counts[i].Add(1)
				})
			})
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestForkNested drives two levels of forking (keys forking chunks) and
// checks every leaf runs exactly once — the shape the trace and streaming
// engines produce.
func TestForkNested(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		const outer, inner = 13, 17
		counts := make([]atomic.Int64, outer*inner)
		Run(workers, func(c *Ctx) {
			c.Fork(outer, func(c *Ctx, i int) {
				c.Fork(inner, func(c *Ctx, j int) {
					counts[i*inner+j].Add(1)
				})
			})
		})
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: leaf %d ran %d times", workers, i, got)
			}
		}
	}
}

// TestForkJoinBarrier checks Fork does not return before all its units have
// completed, even when thieves run them.
func TestForkJoinBarrier(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		var done atomic.Int64
		Run(workers, func(c *Ctx) {
			for round := 0; round < 50; round++ {
				c.Fork(workers*3, func(c *Ctx, i int) {
					done.Add(1)
				})
				if got, want := done.Load(), int64((round+1)*workers*3); got != want {
					t.Errorf("workers=%d round %d: %d units done at join, want %d", workers, round, got, want)
				}
			}
		})
		if t.Failed() {
			return
		}
	}
}

// TestSubmitDrain checks Close waits for externally submitted units and
// everything they fork.
func TestSubmitDrain(t *testing.T) {
	for _, workers := range []int{1, 3} {
		p := NewPool(workers)
		var leaves atomic.Int64
		const jobs, fan = 9, 11
		for j := 0; j < jobs; j++ {
			p.Submit(func(c *Ctx) {
				c.Fork(fan, func(c *Ctx, i int) { leaves.Add(1) })
			})
		}
		p.Close()
		if got := leaves.Load(); got != jobs*fan {
			t.Fatalf("workers=%d: %d leaves after Close, want %d", workers, got, jobs*fan)
		}
	}
}

// TestWorkerVerifiersDistinct checks each worker context carries its own
// Verifier, so scratch arenas are never shared across concurrent units.
func TestWorkerVerifiersDistinct(t *testing.T) {
	const workers = 4
	seen := make(map[*Verifier]int)
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	Run(workers, func(c *Ctx) {
		c.Fork(64, func(c *Ctx, i int) {
			<-mu
			seen[c.Verifier()]++
			mu <- struct{}{}
		})
	})
	if len(seen) > workers {
		t.Fatalf("%d distinct verifiers across %d workers", len(seen), workers)
	}
	total := 0
	for _, n := range seen {
		total += n
	}
	if total != 64 {
		t.Fatalf("verifier uses = %d, want 64", total)
	}
}
