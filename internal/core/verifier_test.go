package core

import (
	"testing"

	"kat/internal/generator"
	"kat/internal/history"
	"kat/internal/witness"
)

// TestVerifierReuseZeroAlloc pins the engine-level guarantee: a reused
// Verifier runs a prepared-history k=2 check — including the internal
// witness re-validation — without allocating at steady state.
func TestVerifierReuseZeroAlloc(t *testing.T) {
	h := generator.KAtomic(generator.Config{
		Seed: 42, Ops: 1000, Concurrency: 4, StalenessDepth: 1, ReadFraction: 0.6,
	})
	p, err := history.Prepare(h)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	v := NewVerifier()
	if rep, err := v.CheckPrepared(p, 2, Options{}); err != nil || !rep.Atomic {
		t.Fatalf("warm-up: %v %+v", err, rep)
	}
	allocs := testing.AllocsPerRun(10, func() {
		rep, err := v.CheckPrepared(p, 2, Options{})
		if err != nil || !rep.Atomic {
			t.Fatalf("CheckPrepared: %v %+v", err, rep)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Verifier.CheckPrepared: %v allocs/op, want 0", allocs)
	}
}

// TestVerifierMatchesOneShot cross-checks a reused Verifier against the
// one-shot package functions across k and history shapes.
func TestVerifierMatchesOneShot(t *testing.T) {
	v := NewVerifier()
	for seed := int64(0); seed < 10; seed++ {
		h := generator.KAtomic(generator.Config{
			Seed: seed, Ops: 60, Concurrency: 2,
			StalenessDepth: int(seed % 3), ForceDepth: true, ReadFraction: 0.5,
		})
		for k := 1; k <= 3; k++ {
			want, errWant := Check(h, k, Options{})
			got, errGot := v.Check(h, k, Options{})
			if (errWant == nil) != (errGot == nil) {
				t.Fatalf("seed %d k=%d: error mismatch: %v vs %v", seed, k, errWant, errGot)
			}
			if errWant == nil && want.Atomic != got.Atomic {
				t.Errorf("seed %d k=%d: one-shot %v, verifier %v", seed, k, want.Atomic, got.Atomic)
			}
		}
		want, errWant := SmallestK(h, Options{})
		got, errGot := v.SmallestK(h, Options{})
		if (errWant == nil) != (errGot == nil) || want != got {
			t.Errorf("seed %d: SmallestK one-shot %d/%v, verifier %d/%v",
				seed, want, errWant, got, errGot)
		}
	}
}

// TestVerifierWitnessAliasing exercises the contract: a Report's Witness is
// valid until the next call on the same Verifier, after which only a copy
// taken beforehand is still trustworthy.
func TestVerifierWitnessAliasing(t *testing.T) {
	v := NewVerifier()
	mk := func(seed int64, ops int) *history.Prepared {
		h := generator.KAtomic(generator.Config{
			Seed: seed, Ops: ops, Concurrency: 3, StalenessDepth: 1, ReadFraction: 0.6,
		})
		p, err := history.Prepare(h)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1, p2 := mk(7, 200), mk(8, 150)

	rep1, err := v.CheckPrepared(p1, 2, Options{})
	if err != nil || !rep1.Atomic {
		t.Fatalf("CheckPrepared(p1): %v %+v", err, rep1)
	}
	if len(rep1.Witness) != p1.Len() {
		t.Fatalf("witness covers %d of %d ops", len(rep1.Witness), p1.Len())
	}
	saved := append([]int(nil), rep1.Witness...)

	// Reuse the Verifier on a different history; rep1.Witness may now be
	// overwritten, but the copy must still prove p1 2-atomic.
	rep2, err := v.CheckPrepared(p2, 2, Options{})
	if err != nil || !rep2.Atomic {
		t.Fatalf("CheckPrepared(p2): %v %+v", err, rep2)
	}
	if len(rep2.Witness) != p2.Len() {
		t.Fatalf("second witness covers %d of %d ops", len(rep2.Witness), p2.Len())
	}
	if err := witness.Validate(p1, saved, 2); err != nil {
		t.Errorf("copied first witness no longer validates: %v", err)
	}
}
