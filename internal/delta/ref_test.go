package delta

import (
	"strings"
	"testing"

	"kat/internal/history"
	"kat/internal/refcheck"
)

// TestDifferentialVsRefcheck sweeps every enumerated history of up to 4
// operations (all interval interleavings × kind masks × read-value
// assignments) and asserts Check/Smallest agree with refcheck's
// permutation-based Δ oracle: identical error presence, identical smallest
// Δ, and matching fixed-Δ verdicts at and around the threshold.
func TestDifferentialVsRefcheck(t *testing.T) {
	maxN := 4
	if testing.Short() {
		maxN = 3
	}
	total := 0
	for n := 1; n <= maxN; n++ {
		refcheck.EnumerateHistories(n, func(h *history.History) {
			total++
			desc := strings.ReplaceAll(h.String(), "\n", "; ")
			refD, refErr := refcheck.SmallestDelta(h)
			d, err := Smallest(h)
			if (refErr == nil) != (err == nil) {
				t.Fatalf("%s: ref err=%v, Smallest err=%v", desc, refErr, err)
			}
			if refErr != nil {
				return
			}
			if d != refD {
				t.Fatalf("%s: Smallest = %d, ref %d", desc, d, refD)
			}
			for _, probe := range []int64{0, d - 1, d, d + 1} {
				if probe < 0 {
					continue
				}
				got, err := Check(h, probe)
				if err != nil {
					t.Fatalf("%s: Check(%d): %v", desc, probe, err)
				}
				want, err := refcheck.CheckDelta(h, probe)
				if err != nil {
					t.Fatalf("%s: ref CheckDelta(%d): %v", desc, probe, err)
				}
				if got != want || got != (probe >= d) {
					t.Fatalf("%s: Check(%d) = %v, ref %v, smallest %d", desc, probe, got, want, d)
				}
			}
		})
		if t.Failed() {
			t.FailNow()
		}
	}
	t.Logf("swept %d histories against the Δ reference", total)
}
