// Package delta implements Δ-atomicity verification — the time-based
// staleness counterpart of k-atomicity, introduced by Golab, Li, and Shah
// ("Analyzing consistency properties for fun and profit", PODC 2011), which
// the ICDCS 2013 paper builds on (reference [10]; its partial 2-AV solution
// came from the same line of work).
//
// A history is Δ-atomic iff it becomes atomic (1-atomic) once every read is
// allowed to be up to Δ time units stale — operationally, once each read's
// start time is moved Δ into the past. Where k-atomicity bounds staleness in
// number of intervening writes, Δ-atomicity bounds it in real time; storage
// operators usually quote the latter ("reads are at most 500ms stale") and
// verify it with exactly this transformation.
//
// Moving read starts earlier only removes real-time ordering constraints, so
// Δ-atomicity is monotone in Δ; the smallest Δ is found by binary search
// over the history's time span, each probe being one O(n log n) zone check.
package delta

import (
	"fmt"

	"kat/internal/history"
	"kat/internal/zone"
)

// Check reports whether the history is Δ-atomic for the given delta,
// i.e., whether relaxing every read's start by delta makes it 1-atomic.
// The input must be anomaly-free (it is normalized internally).
func Check(h *history.History, delta int64) (bool, error) {
	if delta < 0 {
		return false, fmt.Errorf("delta: bound must be >= 0, got %d", delta)
	}
	p, err := prepareRelaxed(h, delta)
	if err != nil {
		return false, err
	}
	ok, _ := zone.Check1Atomic(p)
	return ok, nil
}

// Smallest returns the least Δ for which the history is Δ-atomic, or an
// error if even the maximal relaxation fails (which indicates an input
// violating the model assumptions, since with all reads fully relaxed every
// anomaly-free history is atomic... except when a read must still return a
// value overwritten before the read's finish allows; the search surfaces
// that as an error).
func Smallest(h *history.History) (int64, error) {
	// Probe Δ=0 first: most histories from healthy systems pass.
	if ok, err := Check(h, 0); err != nil {
		return 0, err
	} else if ok {
		return 0, nil
	}
	st := history.Measure(h)
	lo, hi := int64(1), 2*st.Span+2 // relaxed timestamps are rescaled; span bounds the need
	ok, err := Check(h, hi)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("delta: history is not Δ-atomic even at Δ=%d; input may violate model assumptions", hi)
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		ok, err := Check(h, mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// prepareRelaxed normalizes h, moves every read's start delta units earlier
// (clamped so intervals stay well-formed relative to the write that
// dictates them — a read may not start before time zero of the normalized
// scale, which is harmless since nothing precedes it there), and prepares
// the result.
//
// Normalization happens BEFORE relaxation so that delta is measured on the
// caller's own timestamp scale... except normalization re-ranks timestamps.
// To keep delta meaningful on the caller's scale, relaxation is applied to
// the raw (cloned) history first and the result is then normalized; the
// clamp below keeps intervals valid.
func prepareRelaxed(h *history.History, delta int64) (*history.Prepared, error) {
	cp := h.Clone()
	for i := range cp.Ops {
		op := &cp.Ops[i]
		if !op.IsRead() {
			continue
		}
		op.Start -= delta
	}
	return history.Prepare(history.Normalize(cp))
}
