// Package delta implements Δ-atomicity verification — the time-based
// staleness counterpart of k-atomicity, introduced by Golab, Li, and Shah
// ("Analyzing consistency properties for fun and profit", PODC 2011), which
// the ICDCS 2013 paper builds on (reference [10]; its partial 2-AV solution
// came from the same line of work).
//
// A history is Δ-atomic iff it becomes atomic (1-atomic) once every read is
// allowed to be up to Δ time units stale — operationally, once each read's
// start time is moved Δ into the past. Where k-atomicity bounds staleness in
// number of intervening writes, Δ-atomicity bounds it in real time; storage
// operators usually quote the latter ("reads are at most 500ms stale") and
// verify it with exactly this transformation.
//
// Moving read starts earlier only removes real-time ordering constraints, so
// Δ-atomicity is monotone in Δ; the smallest Δ is found by binary search
// over the history's time span, each probe being one O(n log n) zone check.
package delta

import (
	"fmt"

	"kat/internal/history"
	"kat/internal/zone"
)

// Check reports whether the history is Δ-atomic for the given delta,
// i.e., whether relaxing every read's start by delta makes it 1-atomic.
// The input must be anomaly-free (it is normalized internally).
func Check(h *history.History, delta int64) (bool, error) {
	if delta < 0 {
		return false, fmt.Errorf("delta: bound must be >= 0, got %d", delta)
	}
	p, err := prepareRelaxed(h, delta)
	if err != nil {
		return false, err
	}
	ok, _ := zone.Check1Atomic(p)
	return ok, nil
}

// Smallest returns the least Δ for which the history is Δ-atomic, or an
// error if even the maximal relaxation fails (which indicates an input
// violating the model assumptions, since with all reads fully relaxed every
// anomaly-free history is atomic... except when a read must still return a
// value overwritten before the read's finish allows; the search surfaces
// that as an error).
func Smallest(h *history.History) (int64, error) {
	// Probe Δ=0 first: most histories from healthy systems pass.
	if ok, err := Check(h, 0); err != nil {
		return 0, err
	} else if ok {
		return 0, nil
	}
	st := history.Measure(h)
	// Δ=Span clamps every read's relaxed start to the time origin (no start
	// exceeds origin+Span), so it is the maximal effective relaxation; larger
	// probes cannot change the verdict. This also keeps hi free of overflow
	// for histories whose timestamps span most of the int64 range.
	lo, hi := int64(1), st.Span
	if hi < 1 {
		hi = 1
	}
	ok, err := Check(h, hi)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("delta: history is not Δ-atomic even at Δ=%d; input may violate model assumptions", hi)
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		ok, err := Check(h, mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// prepareRelaxed moves every read's start delta units earlier, clamped at
// the history's time origin (the minimum start across all operations), then
// normalizes and prepares the result.
//
// Relaxation is applied to the raw (cloned) history first and the result is
// then normalized, so delta is measured on the caller's own timestamp scale
// rather than on normalized ranks.
//
// The clamp is verdict-preserving: no operation finishes before the origin
// (every finish strictly follows its own start, which is >= origin), so a
// read start pushed below the origin removes no additional real-time
// ordering constraint — "x precedes r" requires x.Finish < r.Start, which is
// already false for every x once r.Start <= origin. Without the clamp a
// large delta (e.g. the binary-search upper bound applied to a history whose
// timestamps sit near the int64 minimum) underflows int64 and wraps the
// relaxed start to a huge positive value, inverting the verdict.
func prepareRelaxed(h *history.History, delta int64) (*history.Prepared, error) {
	cp := h.Clone()
	origin := int64(0)
	for i := range cp.Ops {
		if i == 0 || cp.Ops[i].Start < origin {
			origin = cp.Ops[i].Start
		}
	}
	for i := range cp.Ops {
		op := &cp.Ops[i]
		if !op.IsRead() {
			continue
		}
		// Equivalent to max(op.Start-delta, origin) but immune to overflow:
		// op.Start-origin is mathematically in [0, 2^64), so the uint64
		// two's-complement difference is exact even when the int64 form
		// would wrap.
		if uint64(delta) >= uint64(op.Start)-uint64(origin) {
			op.Start = origin
		} else {
			op.Start -= delta
		}
	}
	return history.Prepare(history.Normalize(cp))
}
