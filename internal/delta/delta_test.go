package delta

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kat/internal/generator"
	"kat/internal/history"
	"kat/internal/zone"
)

func TestCheckRejectsNegative(t *testing.T) {
	h := history.MustParse("w 1 0 10")
	if _, err := Check(h, -1); err == nil {
		t.Error("negative delta accepted")
	}
}

func TestAtomicHistoryHasDeltaZero(t *testing.T) {
	h := history.MustParse("w 1 0 10; r 1 20 30; w 2 40 50; r 2 60 70")
	ok, err := Check(h, 0)
	if err != nil || !ok {
		t.Errorf("Check(0) = %v, %v; want true", ok, err)
	}
	d, err := Smallest(h)
	if err != nil || d != 0 {
		t.Errorf("Smallest = %d, %v; want 0", d, err)
	}
}

func TestStaleReadNeedsItsGap(t *testing.T) {
	// r(1) starts at 40; w2 finished at 30. Relaxing r(1)'s start to just
	// before w2's start (20) lets the order w1 r1 w2 r2 exist. On the raw
	// scale the needed shift is 40-20 = 20... plus the effect of timestamp
	// re-ranking; assert behavior, not the exact constant: Smallest is
	// positive, Check fails below it and passes at it.
	h := history.MustParse("w 1 0 10; w 2 20 30; r 1 40 50; r 2 60 70")
	ok, err := Check(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("stale history Δ-atomic at 0")
	}
	d, err := Smallest(h)
	if err != nil {
		t.Fatalf("Smallest: %v", err)
	}
	if d < 1 {
		t.Fatalf("Smallest = %d, want >= 1", d)
	}
	okAt, err := Check(h, d)
	if err != nil || !okAt {
		t.Errorf("Check(at %d) = %v, %v", d, okAt, err)
	}
	okBelow, err := Check(h, d-1)
	if err != nil || okBelow {
		t.Errorf("Check(below %d) = %v, %v; want false", d-1, okBelow, err)
	}
}

func TestDeeperStalenessNeedsLargerDelta(t *testing.T) {
	// The same shape with a wider gap between the write and its stale read
	// must need a larger Δ.
	near := history.MustParse("w 1 0 10; w 2 20 30; r 1 40 50; r 2 60 70")
	far := history.MustParse("w 1 0 10; w 2 20 30; r 1 400 500; r 2 600 700")
	dNear, err := Smallest(near)
	if err != nil {
		t.Fatal(err)
	}
	dFar, err := Smallest(far)
	if err != nil {
		t.Fatal(err)
	}
	if dFar <= dNear {
		t.Errorf("far staleness Δ=%d should exceed near Δ=%d", dFar, dNear)
	}
}

func TestPropertySmallestDeltaZeroIffAtomic(t *testing.T) {
	prop := func(qh generator.QuickHistory) bool {
		p, err := history.Prepare(qh.H)
		if err != nil {
			return false
		}
		atomic1, _ := zone.Check1Atomic(p)
		d, err := Smallest(qh.H)
		if err != nil {
			return false
		}
		return (d == 0) == atomic1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMonotoneInDelta(t *testing.T) {
	prop := func(qh generator.QuickHistory) bool {
		d, err := Smallest(qh.H)
		if err != nil {
			return false
		}
		// Above the threshold it stays Δ-atomic.
		for _, extra := range []int64{0, 1, 7} {
			ok, err := Check(qh.H, d+extra)
			if err != nil || !ok {
				return false
			}
		}
		if d > 0 {
			ok, err := Check(qh.H, d-1)
			if err != nil || ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestRelaxationClampAtTimeOrigin is the regression test for the
// prepareRelaxed doc/code mismatch: relaxed read starts must be clamped at
// the history's time origin. Without the clamp, a history whose timestamps
// sit at the bottom of the int64 range underflows `op.Start -= delta` during
// the binary-search probes and the relaxed start wraps to a huge positive
// value, breaking Smallest entirely.
func TestRelaxationClampAtTimeOrigin(t *testing.T) {
	base := history.MustParse("w 1 0 10; w 2 20 30; r 1 40 50; r 2 60 70")
	want, err := Smallest(base)
	if err != nil {
		t.Fatalf("Smallest(base): %v", err)
	}
	if want < 1 {
		t.Fatalf("setup: base history should need Δ >= 1, got %d", want)
	}

	// Smallest is shift-invariant (Δ thresholds are timestamp differences),
	// so the same history translated to start at math.MinInt64 must agree.
	shifted := base.Clone()
	for i := range shifted.Ops {
		shifted.Ops[i].Start += math.MinInt64
		shifted.Ops[i].Finish += math.MinInt64
	}
	got, err := Smallest(shifted)
	if err != nil {
		t.Fatalf("Smallest(shifted to int64 origin): %v", err)
	}
	if got != want {
		t.Errorf("Smallest(shifted) = %d, want %d (shift invariance)", got, want)
	}

	// A delta far beyond the span saturates at maximal relaxation (every
	// read start clamped to the origin) instead of wrapping around.
	okSpan, err := Check(shifted, history.Measure(shifted).Span)
	if err != nil {
		t.Fatalf("Check(span): %v", err)
	}
	okHuge, err := Check(shifted, math.MaxInt64)
	if err != nil {
		t.Fatalf("Check(max): %v", err)
	}
	if okHuge != okSpan {
		t.Errorf("Check saturation: Check(MaxInt64)=%v, Check(Span)=%v; want equal", okHuge, okSpan)
	}
	if !okSpan {
		t.Errorf("maximal relaxation should make this history 1-atomic")
	}
}

func TestQuorumHistoriesHaveFiniteDelta(t *testing.T) {
	// Δ must be computable for simulator histories (the operator-facing
	// use case: "how stale, in time units, did the store get?").
	for seed := int64(0); seed < 5; seed++ {
		h := generator.KAtomic(generator.Config{
			Seed: seed, Ops: 60, Concurrency: 3, StalenessDepth: 2,
		})
		if _, err := Smallest(h); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}
