package lbt

import (
	"testing"

	"kat/internal/generator"
	"kat/internal/history"
	"kat/internal/oracle"
	"kat/internal/witness"
)

func prep(t *testing.T, text string) *history.Prepared {
	t.Helper()
	p, err := history.Prepare(history.Normalize(history.MustParse(text)))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	return p
}

func check(t *testing.T, p *history.Prepared) Result {
	t.Helper()
	res := Check(p, Options{})
	if err := SelfCheck(p, res); err != nil {
		t.Fatalf("LBT witness invalid: %v", err)
	}
	return res
}

func TestEmptyHistory(t *testing.T) {
	p, err := history.Prepare(history.New(nil))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if res := check(t, p); !res.Atomic {
		t.Error("empty history rejected")
	}
}

func TestSingleWrite(t *testing.T) {
	if res := check(t, prep(t, "w 1 0 10")); !res.Atomic {
		t.Error("single write rejected")
	}
}

func TestSequential(t *testing.T) {
	p := prep(t, "w 1 0 10; r 1 20 30; w 2 40 50; r 2 60 70")
	if res := check(t, p); !res.Atomic {
		t.Error("sequential 1-atomic history rejected by 2-AV")
	}
}

func TestOneStaleRead(t *testing.T) {
	// Read of w1 after w2 completed: 2-atomic, not 1-atomic.
	p := prep(t, "w 1 0 10; w 2 20 30; r 1 40 50")
	if res := check(t, p); !res.Atomic {
		t.Error("1-stale read rejected at k=2")
	}
}

func TestTwoDeepStaleReadRejected(t *testing.T) {
	// Read of w1 after w2 and w3 completed: needs k=3.
	p := prep(t, "w 1 0 10; w 2 20 30; w 3 40 50; r 1 60 70")
	if res := check(t, p); res.Atomic {
		t.Error("2-stale read accepted at k=2")
	}
}

func TestInterleavedStaleness(t *testing.T) {
	// Alternating fresh/stale reads: w1 w2 r1 w3 r2 w4 r3 — each read one
	// behind. 2-atomic.
	p := prep(t, `
w 1 0 10
w 2 20 30
r 1 40 50
w 3 60 70
r 2 80 90
w 4 100 110
r 3 120 130
`)
	if res := check(t, p); !res.Atomic {
		t.Error("one-behind read chain rejected")
	}
}

func TestDoubleStaleConflict(t *testing.T) {
	// Two reads forced after two newer writes each: r(1) after w2,w3 done.
	p := prep(t, "w 1 0 10; w 2 20 30; w 3 40 50; r 3 60 70; r 1 80 90")
	if res := check(t, p); res.Atomic {
		t.Error("accepted although r(1) is 2-stale in every valid order")
	}
}

func TestConcurrentWritesAllowReordering(t *testing.T) {
	// w1, w2 concurrent; reads see 2 then 1: 2-atomic via order w2 w1? No:
	// order must put both writes before r2... r(2) then r(1): order
	// w1 w2 r2 r1 gives r1 one intervening write — 2-atomic.
	p := prep(t, "w 1 0 30; w 2 5 35; r 2 40 50; r 1 60 70")
	if res := check(t, p); !res.Atomic {
		t.Error("reorderable concurrent writes rejected")
	}
}

func TestEpochChaining(t *testing.T) {
	// Forces multi-iteration epochs: reads of the previous write appear
	// after the next write finishes, chaining w' discoveries.
	p := prep(t, `
w 1 0 10
w 2 20 30
r 1 35 45
w 3 50 60
r 2 65 75
r 3 80 90
`)
	if res := check(t, p); !res.Atomic {
		t.Error("chained epoch history rejected")
	}
}

func TestWriteForcedAfterCandidateFails(t *testing.T) {
	// A write strictly after every other op means the candidate scan must
	// reject any candidate that is not that write.
	p := prep(t, "w 1 0 10; r 1 15 25; w 2 30 40; r 2 45 55; w 3 60 70")
	res := check(t, p)
	if !res.Atomic {
		t.Error("rejected history with trailing unread write")
	}
}

func TestUnreadWritesEverywhere(t *testing.T) {
	p := prep(t, "w 1 0 10; w 2 12 14; w 3 16 18; r 1 20 30")
	// r(1) is 2-stale if w2 and w3 are placed between w1 and r1, but both
	// unread writes can be pushed before w1? No — they follow w1 in time
	// (w1 finishes at 10 before they start). They must follow w1 but they
	// can be placed after r1? w2.f=14 < r1.s=20, so w2 precedes r1 and
	// must be placed before it. Same for w3: separation = 2. Not 2-atomic.
	if res := check(t, p); res.Atomic {
		t.Error("accepted but both unread writes are forced between w1 and r1")
	}
}

func TestUnreadConcurrentWriteSlidesOut(t *testing.T) {
	// Like above but w3 overlaps r1, so it can be ordered after r1.
	p := prep(t, "w 1 0 10; w 2 12 14; w 3 16 100; r 1 20 30")
	if res := check(t, p); !res.Atomic {
		t.Error("rejected although w3 can be placed after r1")
	}
}

func TestResultDiagnostics(t *testing.T) {
	p := prep(t, "w 1 0 10; r 1 20 30; w 2 40 50; r 2 60 70")
	res := check(t, p)
	if res.Epochs == 0 || res.CandidatesTried == 0 || res.Steps == 0 {
		t.Errorf("diagnostics not populated: %+v", res)
	}
}

func TestNoDeepeningSameAnswers(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		h := generator.Random(generator.Config{Seed: seed, Ops: 30, Concurrency: 4})
		p, err := history.Prepare(h)
		if err != nil {
			t.Fatalf("Prepare: %v", err)
		}
		a := Check(p, Options{})
		b := Check(p, Options{NoDeepening: true})
		if a.Atomic != b.Atomic {
			t.Fatalf("seed %d: deepening=%v nodeepening=%v", seed, a.Atomic, b.Atomic)
		}
	}
}

// TestAgainstOracleRandom differential-tests LBT against the exact oracle on
// random histories of varied shapes.
func TestAgainstOracleRandom(t *testing.T) {
	shapes := []generator.Config{
		{Ops: 20, Concurrency: 1},
		{Ops: 24, Concurrency: 3},
		{Ops: 30, Concurrency: 6, ReadFraction: 0.7},
		{Ops: 30, Concurrency: 10, ReadFraction: 0.3},
	}
	for _, shape := range shapes {
		for seed := int64(0); seed < 40; seed++ {
			cfg := shape
			cfg.Seed = seed
			h := generator.Random(cfg)
			p, err := history.Prepare(h)
			if err != nil {
				t.Fatalf("Prepare: %v", err)
			}
			want, err := oracle.CheckK(p, 2, oracle.Options{})
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			got := Check(p, Options{})
			if got.Atomic != want.Atomic {
				t.Fatalf("shape %+v seed %d: LBT=%v oracle=%v history:\n%s",
					shape, seed, got.Atomic, want.Atomic, p.H)
			}
			if got.Atomic {
				if err := witness.Validate(p, got.Witness, 2); err != nil {
					t.Fatalf("shape %+v seed %d: witness: %v", shape, seed, err)
				}
			}
		}
	}
}

// TestAgainstOracleGenerated checks LBT accepts generated 2-atomic histories
// and matches the oracle on staleness-injected mutants.
func TestAgainstOracleGenerated(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		h := generator.KAtomic(generator.Config{
			Seed: seed, Ops: 50, Concurrency: 4, StalenessDepth: 1,
		})
		p, err := history.Prepare(h)
		if err != nil {
			t.Fatalf("Prepare: %v", err)
		}
		res := Check(p, Options{})
		if !res.Atomic {
			t.Fatalf("seed %d: generated 2-atomic history rejected", seed)
		}
		if err := witness.Validate(p, res.Witness, 2); err != nil {
			t.Fatalf("seed %d: witness: %v", seed, err)
		}

		mut := generator.InjectStaleness(h, seed, 0.3, 3)
		pm, err := history.Prepare(mut)
		if err != nil {
			t.Fatalf("Prepare mutant: %v", err)
		}
		want, err := oracle.CheckK(pm, 2, oracle.Options{})
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		got := Check(pm, Options{})
		if got.Atomic != want.Atomic {
			t.Fatalf("seed %d mutant: LBT=%v oracle=%v history:\n%s",
				seed, got.Atomic, want.Atomic, pm.H)
		}
	}
}

func TestLBTWitnessStructure(t *testing.T) {
	// The Figure 1 shape: containers hold the reads between write slots.
	p := prep(t, `
w 1 0 10
r 1 12 20
r 1 22 28
w 2 30 40
r 2 42 50
r 1 44 52
`)
	res := check(t, p)
	if !res.Atomic {
		t.Fatal("figure-1 style history rejected")
	}
	// First op in witness must be w1 and each read must follow its write.
	if !p.Op(res.Witness[0]).IsWrite() {
		t.Errorf("witness starts with a read: %v", res.Witness)
	}
}

func TestLargePracticalHistoryFast(t *testing.T) {
	h := generator.KAtomic(generator.Config{
		Seed: 1, Ops: 5000, Concurrency: 4, StalenessDepth: 1, ReadFraction: 0.6,
	})
	p, err := history.Prepare(h)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	res := Check(p, Options{})
	if !res.Atomic {
		t.Fatal("large generated 2-atomic history rejected")
	}
	if err := witness.Validate(p, res.Witness, 2); err != nil {
		t.Fatalf("witness: %v", err)
	}
}

// TestOptionCombosAgree runs LBT under every option combination on random
// and trap histories; all must agree with the oracle.
func TestOptionCombosAgree(t *testing.T) {
	combos := []Options{
		{},
		{NoDeepening: true},
		{WorstCaseOrder: true},
		{NoDeepening: true, WorstCaseOrder: true},
	}
	var inputs []*history.History
	for seed := int64(0); seed < 15; seed++ {
		inputs = append(inputs, generator.Random(generator.Config{Seed: seed, Ops: 25, Concurrency: 5}))
	}
	inputs = append(inputs, generator.LBTTrap(6, 3), generator.LBTTrap(12, 2))
	for i, h := range inputs {
		p, err := history.Prepare(h)
		if err != nil {
			t.Fatalf("input %d: %v", i, err)
		}
		want, err := oracle.CheckK(p, 2, oracle.Options{})
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		for _, opt := range combos {
			got := Check(p, opt)
			if got.Atomic != want.Atomic {
				t.Fatalf("input %d opts %+v: LBT=%v oracle=%v", i, opt, got.Atomic, want.Atomic)
			}
			if got.Atomic {
				if err := witness.Validate(p, got.Witness, 2); err != nil {
					t.Fatalf("input %d opts %+v: witness: %v", i, opt, err)
				}
			}
		}
	}
}

// TestTrapDeepeningBeatsNoDeepening asserts the Theorem 3.2 pathology is
// real on the trap construction: without deepening, LBT does asymptotically
// more work under an adversarial candidate order.
func TestTrapDeepeningBeatsNoDeepening(t *testing.T) {
	h := generator.LBTTrap(1000, 20)
	p, err := history.Prepare(h)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	on := Check(p, Options{WorstCaseOrder: true})
	off := Check(p, Options{NoDeepening: true, WorstCaseOrder: true})
	if on.Atomic || off.Atomic {
		t.Fatal("trap should be rejected")
	}
	if off.Steps < 3*on.Steps {
		t.Errorf("expected >=3x step blowup without deepening: on=%d off=%d", on.Steps, off.Steps)
	}
}
