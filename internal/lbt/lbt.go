// Package lbt implements the LBT (Limited BackTracking) 2-atomicity
// verification algorithm of Section III (Figure 2) of the paper.
//
// LBT constructs a candidate 2-atomic total order back to front, placing
// operations into write slots and read containers (Figure 1). Each epoch
// tentatively places a candidate write into the latest unfilled write slot;
// that placement forces the contents of the adjacent read container, which in
// turn determines the next write slot, and so on until a placement is
// unconstrained (epoch succeeds) or contradictory (epoch aborts and the next
// candidate is tried). Backtracking is limited to the first write of each
// epoch, which is what makes the algorithm efficient.
//
// Per Theorem 3.2 the implementation keeps the remaining history H as a
// doubly-linked list sorted by start time, the remaining writes W as a list
// sorted by finish time, and per-write dictated-read lists; all removals go
// through an undo log so an aborted candidate is reverted in time
// proportional to the work it performed. Epoch candidates are raced with an
// iteratively-deepened step budget (Korf-style) so that one slow failing
// candidate cannot delay a fast succeeding one; this yields the
// O(n log n + c·n) bound, where c is the maximum number of concurrent
// writes. The racing can be disabled (Options.NoDeepening) to reproduce the
// pathological behavior the paper warns about — used by the ablation bench.
package lbt

import (
	"kat/internal/history"
	"kat/internal/llist"
	"kat/internal/witness"
)

// Options tune the LBT run.
type Options struct {
	// NoDeepening disables iterative-deepening candidate racing: each
	// epoch candidate runs to completion before the next is tried, as in
	// the literal pseudo-code of Figure 2. Worst-case behavior degrades
	// exactly as discussed in Theorem 3.2's proof.
	NoDeepening bool
	// WorstCaseOrder tries epoch candidates in ascending finish-time
	// order instead of descending. Figure 2 leaves the candidate order
	// unspecified; ascending order realizes the pathology the paper
	// warns about (a successful candidate examined late while earlier
	// candidates fail slowly), which iterative deepening neutralizes.
	// Used by the E10 ablation.
	WorstCaseOrder bool
	// InitialBudget is the first step budget for deepening (default 64).
	InitialBudget int
}

// Result reports the decision and diagnostics.
type Result struct {
	// Atomic is true iff the history is 2-atomic.
	Atomic bool
	// Witness is a valid 2-atomic total order (operation indices) when
	// Atomic is true.
	Witness []int
	// Epochs counts successful epochs.
	Epochs int
	// CandidatesTried counts candidate executions across all epochs,
	// including budget-exhausted re-runs.
	CandidatesTried int
	// Steps counts total RunEpoch work (operations scanned/removed).
	Steps int
}

// Check decides 2-atomicity of the prepared history using LBT.
func Check(p *history.Prepared, opts Options) Result {
	c := newChecker(p, opts)
	return c.run()
}

// epochStatus is the outcome of running one candidate.
type epochStatus uint8

const (
	epochSuccess epochStatus = iota + 1
	epochFail
	epochExhausted
)

type checker struct {
	p    *history.Prepared
	opts Options

	h       *llist.List      // remaining ops by start time
	w       *llist.List      // remaining writes by finish time
	s       *llist.List      // remaining writes by start time
	readsOf *llist.MultiList // per-write dictated reads, by start time
	log     llist.UndoLog

	// placement is the total order under construction, recorded back to
	// front: each element is a write slot followed by its read container.
	slots      []int
	containers [][]int

	steps      int
	candidates int
	epochs     int
}

func newChecker(p *history.Prepared, opts Options) *checker {
	n := p.Len()
	c := &checker{
		p:       p,
		opts:    opts,
		h:       llist.New(n),
		w:       llist.New(n),
		s:       llist.New(n),
		readsOf: llist.NewMulti(n, n),
	}
	if c.opts.InitialBudget <= 0 {
		c.opts.InitialBudget = 64
	}
	// Prepared histories are sorted by start time.
	for i := 0; i < n; i++ {
		c.h.PushBack(i)
		if p.Op(i).IsRead() {
			c.readsOf.PushBack(p.DictatingWrite[i], i)
		} else {
			c.s.PushBack(i)
		}
	}
	// W sorted by finish time.
	writes := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if p.Op(i).IsWrite() {
			writes = append(writes, i)
		}
	}
	insertionSortByFinish(writes, p)
	for _, wi := range writes {
		c.w.PushBack(wi)
	}
	return c
}

// insertionSortByFinish sorts write indices by finish time. The input is
// already sorted by start time, so for realistic histories (bounded
// concurrency) displacement is small; the worst case hands LBT its
// documented O(n log n) preprocessing via the caller using sort — but since
// Go's sort is allocation-free here anyway, a shell-sort style pass keeps
// this dependency-free and near-linear on practical inputs.
func insertionSortByFinish(a []int, p *history.Prepared) {
	for gap := len(a) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(a); i++ {
			v := a[i]
			j := i
			for ; j >= gap && p.Op(a[j-gap]).Finish > p.Op(v).Finish; j -= gap {
				a[j] = a[j-gap]
			}
			a[j] = v
		}
	}
}

func (c *checker) run() Result {
	for c.h.Len() > 0 {
		if !c.runOneEpoch() {
			return Result{
				Atomic:          false,
				Epochs:          c.epochs,
				CandidatesTried: c.candidates,
				Steps:           c.steps,
			}
		}
		c.epochs++
	}
	return Result{
		Atomic:          true,
		Witness:         c.witnessOrder(),
		Epochs:          c.epochs,
		CandidatesTried: c.candidates,
		Steps:           c.steps,
	}
}

// candidateSet returns the writes in W that do not precede any other write
// in W (Figure 2, line 3). These form a suffix of W in finish-time order:
// if w is a candidate, any write finishing later is also one. There are at
// most c of them, because candidates are pairwise concurrent.
func (c *checker) candidateSet() []int {
	// A write w is a candidate iff w.Finish exceeds the maximum start
	// time among the *other* remaining writes. The top two start times
	// come from the tail of the start-sorted write list S.
	s1 := llist.None // write with max start
	s2 := llist.None // write with second max start
	if t := c.s.Tail(); t != llist.None {
		s1 = t
		s2 = c.s.Prev(t)
	}
	var out []int
	for wi := c.w.Tail(); wi != llist.None; wi = c.w.Prev(wi) {
		threshold := s1
		if wi == s1 {
			threshold = s2
		}
		if threshold != llist.None && c.p.Op(wi).Finish < c.p.Op(threshold).Start {
			break // not a candidate; neither is anything earlier in W
		}
		out = append(out, wi)
	}
	if c.opts.WorstCaseOrder {
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
	}
	return out
}

// runOneEpoch finds a candidate whose epoch succeeds and commits it,
// returning false if every candidate fails (history not 2-atomic).
func (c *checker) runOneEpoch() bool {
	alive := c.candidateSet()
	if c.opts.NoDeepening {
		for _, cand := range alive {
			c.candidates++
			mark, slotMark := c.log.Mark(), len(c.slots)
			status := c.runEpochFrom(cand, int(^uint(0)>>1))
			if status == epochSuccess {
				c.log.Commit(0)
				return true
			}
			c.revert(mark, slotMark)
		}
		return false
	}
	budget := c.opts.InitialBudget
	for len(alive) > 0 {
		next := alive[:0]
		for _, cand := range alive {
			c.candidates++
			mark, slotMark := c.log.Mark(), len(c.slots)
			status := c.runEpochFrom(cand, budget)
			if status == epochSuccess {
				c.log.Commit(0)
				return true
			}
			c.revert(mark, slotMark)
			if status == epochExhausted {
				next = append(next, cand)
			}
		}
		alive = next
		budget *= 2
	}
	return false
}

func (c *checker) revert(mark, slotMark int) {
	c.log.RevertTo(mark)
	c.slots = c.slots[:slotMark]
	c.containers = c.containers[:slotMark]
}

// runEpochFrom executes RunEpoch (Figure 2, lines 10-22) starting at write
// wi with a step budget. Steps are counted per operation examined so that
// iterative deepening bounds the work of failing candidates.
func (c *checker) runEpochFrom(wi int, budget int) epochStatus {
	used := 0
	step := func() bool {
		used++
		c.steps++
		return used <= budget
	}
	for {
		if !step() {
			return epochExhausted
		}
		wprime := llist.None
		var container []int
		wFinish := c.p.Op(wi).Finish
		// Lines 13-18: every remaining op that starts after wi finishes
		// is forced into wi's read container. They form a suffix of H.
		for op := c.h.Tail(); op != llist.None && c.p.Op(op).Start > wFinish; {
			if !step() {
				return epochExhausted
			}
			if c.p.Op(op).IsWrite() {
				return epochFail // line 14
			}
			d := c.p.DictatingWrite[op]
			if d != wi && d != wprime {
				if wprime != llist.None {
					return epochFail // line 16
				}
				wprime = d // line 17
			}
			prev := c.h.Prev(op)
			c.log.Unlink(c.h, op)
			c.log.Unlink(c.readsOf, op)
			container = append(container, op)
			op = prev
		}
		// Lines 19-20: wi's remaining dictated reads join the container,
		// then wi itself is placed into the write slot.
		for r := c.readsOf.Head(wi); r != llist.None; {
			if !step() {
				return epochExhausted
			}
			next := c.readsOf.Next(r)
			c.log.Unlink(c.h, r)
			c.log.Unlink(c.readsOf, r)
			container = append(container, r)
			r = next
		}
		c.log.Unlink(c.h, wi)
		c.log.Unlink(c.w, wi)
		c.log.Unlink(c.s, wi)
		c.slots = append(c.slots, wi)
		c.containers = append(c.containers, container)
		if wprime == llist.None {
			return epochSuccess // line 21
		}
		wi = wprime // line 22
	}
}

// witnessOrder converts the back-to-front slot/container placement into a
// front-to-back total order. Reads within a container are emitted in start
// order, which conforms to the precedes relation among them.
func (c *checker) witnessOrder() []int {
	order := make([]int, 0, c.p.Len())
	for i := len(c.slots) - 1; i >= 0; i-- {
		order = append(order, c.slots[i])
		cont := c.containers[i]
		// container reads were appended in two passes: forced reads in
		// descending start order, then wi's remaining reads in ascending
		// start order; sort by start time.
		sorted := append([]int(nil), cont...)
		insertionSortByStart(sorted, c.p)
		order = append(order, sorted...)
	}
	return order
}

func insertionSortByStart(a []int, p *history.Prepared) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for ; j >= 0 && p.Op(a[j]).Start > p.Op(v).Start; j-- {
			a[j+1] = a[j]
		}
		a[j+1] = v
	}
}

// SelfCheck verifies a positive result's witness independently; it exists so
// callers and tests can distrust the checker cheaply.
func SelfCheck(p *history.Prepared, r Result) error {
	if !r.Atomic {
		return nil
	}
	return witness.Validate(p, r.Witness, 2)
}
