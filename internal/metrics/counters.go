package metrics

// Operational counters for long-running services. The batch tooling measures
// histories after the fact; a continuous verifier (cmd/kavserve) instead
// needs live cumulative counters (operations ingested, segments closed) and
// instantaneous gauges (open-window size, memo hit rate) it can expose over
// HTTP. Registry renders both in the Prometheus text exposition format, so
// any scraper — or curl — can read them without this repo taking on a client
// library dependency.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a cumulative, monotonically nondecreasing metric. Safe for
// concurrent use; the zero value is ready.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Registry is a named set of counters and callback-backed gauges. The zero
// value is not usable; create one with NewRegistry. Registration and
// rendering are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

type metric struct {
	help    string
	counter *Counter       // exactly one of counter / gauge is set
	gauge   func() float64 // sampled at render time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Counter returns the counter registered under name, creating it on first
// use. Registering a name that already holds a gauge panics: that is a
// programming error, not a runtime condition.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.counter == nil {
			panic(fmt.Sprintf("metrics: %q already registered as a gauge", name))
		}
		return m.counter
	}
	c := &Counter{}
	r.metrics[name] = &metric{help: help, counter: c}
	return c
}

// Gauge registers fn as the instantaneous value of name, sampled every time
// the registry renders. Registering a name twice panics.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.metrics[name]; ok {
		panic(fmt.Sprintf("metrics: %q already registered", name))
	}
	r.metrics[name] = &metric{help: help, gauge: fn}
}

// WriteTo renders every metric in the Prometheus text exposition format
// (HELP and TYPE comments, one sample per metric), sorted by name so output
// is deterministic. Gauge callbacks run outside the registry lock, so a
// gauge may itself take locks.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	ms := make([]*metric, len(names))
	for i, name := range names {
		ms[i] = r.metrics[name]
	}
	r.mu.Unlock()

	var total int64
	for i, name := range names {
		m := ms[i]
		kind, value := "counter", ""
		if m.counter != nil {
			value = strconv.FormatInt(m.counter.Value(), 10)
		} else {
			kind = "gauge"
			value = strconv.FormatFloat(m.gauge(), 'g', -1, 64)
		}
		n, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
			name, m.help, name, kind, name, value)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
