package metrics

// Operational counters for long-running services. The batch tooling measures
// histories after the fact; a continuous verifier (cmd/kavserve) instead
// needs live cumulative counters (operations ingested, segments closed) and
// instantaneous gauges (open-window size, memo hit rate) it can expose over
// HTTP. Registry renders both in the Prometheus text exposition format, so
// any scraper — or curl — can read them without this repo taking on a client
// library dependency.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a cumulative, monotonically nondecreasing metric. Safe for
// concurrent use; the zero value is ready.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Registry is a named set of counters and callback-backed gauges, plain or
// labeled (CounterL / GaugeL render one sample per label set under a shared
// family name, e.g. per-shard gauges). The zero value is not usable; create
// one with NewRegistry. Registration and rendering are safe for concurrent
// use.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

type metric struct {
	help    string
	counter *Counter       // exactly one of counter / gauge / counterFn / series is set
	gauge   func() float64 // sampled at render time
	// counterFn is a callback-backed cumulative counter: sampled like a
	// gauge but rendered with TYPE counter, for monotonic totals whose
	// source of truth lives elsewhere (e.g. summed shard counters).
	counterFn func() float64
	labeled   bool // a labeled family, rendered one sample per series entry
	series    []*sample
	gaugeK    bool // labeled family kind: true = gauge
}

// sample is one labeled series of a family, e.g. shard="3".
type sample struct {
	labels  string
	counter *Counter
	gauge   func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Counter returns the counter registered under name, creating it on first
// use. Registering a name that already holds a gauge panics: that is a
// programming error, not a runtime condition.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.counter == nil {
			panic(fmt.Sprintf("metrics: %q already registered as a gauge", name))
		}
		return m.counter
	}
	c := &Counter{}
	r.metrics[name] = &metric{help: help, counter: c}
	return c
}

// Gauge registers fn as the instantaneous value of name, sampled every time
// the registry renders. Registering a name twice panics.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.metrics[name]; ok {
		panic(fmt.Sprintf("metrics: %q already registered", name))
	}
	r.metrics[name] = &metric{help: help, gauge: fn}
}

// CounterFunc registers fn as a callback-backed cumulative counter: the
// value is sampled at render time like a gauge, but exposed with TYPE
// counter because it is monotonically nondecreasing (a total whose source
// of truth lives elsewhere, e.g. a sum over shard counters). The callback
// must never decrease. Registering a name twice panics.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.metrics[name]; ok {
		panic(fmt.Sprintf("metrics: %q already registered", name))
	}
	r.metrics[name] = &metric{help: help, counterFn: fn}
}

// CounterL returns the counter registered under the family name with the
// given label set (Prometheus form without braces, e.g. `bucket="le256"`),
// creating the family or the series on first use. Families render HELP/TYPE
// once and one sample line per label set. Mixing a labeled family with a
// plain metric of the same name, or with gauge series, panics.
func (r *Registry) CounterL(name, help, labels string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.family(name, help, false)
	for _, s := range m.series {
		if s.labels == labels {
			return s.counter
		}
	}
	c := &Counter{}
	m.series = append(m.series, &sample{labels: labels, counter: c})
	return c
}

// CounterFuncL registers fn as a labeled series of a counter family whose
// value is sampled at render time (the labeled form of CounterFunc; fn
// must be monotonically nondecreasing). Registering the same label set
// twice panics.
func (r *Registry) CounterFuncL(name, help, labels string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.family(name, help, false)
	for _, s := range m.series {
		if s.labels == labels {
			panic(fmt.Sprintf("metrics: %s{%s} already registered", name, labels))
		}
	}
	m.series = append(m.series, &sample{labels: labels, gauge: fn})
}

// GaugeL registers fn as the labeled series of a gauge family (see
// CounterL). Registering the same label set twice panics.
func (r *Registry) GaugeL(name, help, labels string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.family(name, help, true)
	for _, s := range m.series {
		if s.labels == labels {
			panic(fmt.Sprintf("metrics: %s{%s} already registered", name, labels))
		}
	}
	m.series = append(m.series, &sample{labels: labels, gauge: fn})
}

// family fetches or creates the labeled family under name, enforcing kind
// consistency. Caller holds r.mu.
func (r *Registry) family(name, help string, gauge bool) *metric {
	m, ok := r.metrics[name]
	if !ok {
		m = &metric{help: help, labeled: true, gaugeK: gauge}
		r.metrics[name] = m
		return m
	}
	if !m.labeled {
		panic(fmt.Sprintf("metrics: %q already registered as an unlabeled metric", name))
	}
	if m.gaugeK != gauge {
		panic(fmt.Sprintf("metrics: %q mixes counter and gauge series", name))
	}
	return m
}

// WriteTo renders every metric in the Prometheus text exposition format
// (HELP and TYPE comments once per name, one sample per metric or per
// labeled series), sorted by name then label set so output is
// deterministic. Gauge callbacks run outside the registry lock, so a gauge
// may itself take locks.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	type flat struct {
		name string
		help string
		kind string
		rows []*sample // snapshot: series may grow concurrently
	}
	r.mu.Lock()
	fs := make([]flat, 0, len(r.metrics))
	for name, m := range r.metrics {
		f := flat{name: name, help: m.help, kind: "counter"}
		switch {
		case m.labeled:
			if m.gaugeK {
				f.kind = "gauge"
			}
			f.rows = append(f.rows, m.series...)
		case m.counter != nil:
			f.rows = []*sample{{counter: m.counter}}
		case m.counterFn != nil:
			f.rows = []*sample{{gauge: m.counterFn}} // sampled, rendered as counter
		default:
			f.kind = "gauge"
			f.rows = []*sample{{gauge: m.gauge}}
		}
		fs = append(fs, f)
	}
	r.mu.Unlock()
	sort.Slice(fs, func(i, j int) bool { return fs[i].name < fs[j].name })

	var total int64
	for _, f := range fs {
		n, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		total += int64(n)
		if err != nil {
			return total, err
		}
		rows := f.rows
		sort.Slice(rows, func(i, j int) bool { return rows[i].labels < rows[j].labels })
		for _, s := range rows {
			var value string
			if s.counter != nil {
				value = strconv.FormatInt(s.counter.Value(), 10)
			} else {
				value = strconv.FormatFloat(s.gauge(), 'g', -1, 64)
			}
			ident := f.name
			if s.labels != "" {
				ident += "{" + s.labels + "}"
			}
			n, err := fmt.Fprintf(w, "%s %s\n", ident, value)
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
	}
	return total, nil
}
