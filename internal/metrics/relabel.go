package metrics

// Prometheus text-exposition relabeling. A cluster router serving /metrics
// wants to surface its members' metrics next to its own, which requires
// disambiguating the same family names across nodes: every sample gets a
// node="..." label injected, and each family's HELP/TYPE header renders once
// across the whole merged document, not once per node.

import (
	"bytes"
	"io"
	"strings"
)

// WriteRelabeled copies one Prometheus text exposition into w, injecting
// label (Prometheus form without braces, e.g. `node="10.0.0.1:8080"`) into
// every sample line. HELP/TYPE comment lines are emitted only for families
// not already in seen, which the caller threads across calls so a merged
// document declares each family once; other comment lines are dropped.
// Lines that don't look like samples are passed through untouched — a
// scraper is the consumer, and a half-relabeled document is worse than a
// verbatim odd line.
func WriteRelabeled(w io.Writer, exposition []byte, label string, seen map[string]bool) (int64, error) {
	var total int64
	var buf []byte
	for len(exposition) > 0 {
		line := exposition
		if i := bytes.IndexByte(exposition, '\n'); i >= 0 {
			line, exposition = exposition[:i], exposition[i+1:]
		} else {
			exposition = nil
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if line[0] == '#' {
			// "# HELP name ..." / "# TYPE name ...": keep the first sighting
			// of each family header kind, drop the rest (and any other
			// comment).
			fields := strings.Fields(string(line))
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				key := fields[1] + " " + fields[2]
				if !seen[key] {
					seen[key] = true
					n, err := w.Write(append(line, '\n'))
					total += int64(n)
					if err != nil {
						return total, err
					}
				}
			}
			continue
		}
		buf = appendRelabeled(buf[:0], line, label)
		n, err := w.Write(buf)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// appendRelabeled rewrites one sample line with label injected as the first
// label: `name{a="b"} v` -> `name{label,a="b"} v`, `name v` -> `name{label} v`.
// Lines without the expected shape are appended verbatim.
func appendRelabeled(dst, line []byte, label string) []byte {
	if brace := bytes.IndexByte(line, '{'); brace >= 0 {
		dst = append(dst, line[:brace+1]...)
		dst = append(dst, label...)
		if brace+1 < len(line) && line[brace+1] != '}' {
			dst = append(dst, ',')
		}
		dst = append(dst, line[brace+1:]...)
		return append(dst, '\n')
	}
	sp := bytes.IndexByte(line, ' ')
	if sp < 0 {
		// Not a sample; pass through.
		dst = append(dst, line...)
		return append(dst, '\n')
	}
	dst = append(dst, line[:sp]...)
	dst = append(dst, '{')
	dst = append(dst, label...)
	dst = append(dst, '}')
	dst = append(dst, line[sp:]...)
	return append(dst, '\n')
}
