package metrics

import (
	"strings"
	"testing"
)

func TestWriteRelabeled(t *testing.T) {
	nodeA := "# HELP kavserve_ops_ingested_total Operations accepted.\n" +
		"# TYPE kavserve_ops_ingested_total counter\n" +
		"kavserve_ops_ingested_total 12\n" +
		"# HELP kavserve_shard_ops_total Per shard.\n" +
		"# TYPE kavserve_shard_ops_total counter\n" +
		"kavserve_shard_ops_total{shard=\"0\"} 7\n" +
		"kavserve_shard_ops_total{shard=\"1\"} 5\n"
	nodeB := "# HELP kavserve_ops_ingested_total Operations accepted.\n" +
		"# TYPE kavserve_ops_ingested_total counter\n" +
		"kavserve_ops_ingested_total 3\n"

	var out strings.Builder
	seen := map[string]bool{}
	if _, err := WriteRelabeled(&out, []byte(nodeA), `node="a:1"`, seen); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteRelabeled(&out, []byte(nodeB), `node="b:2"`, seen); err != nil {
		t.Fatal(err)
	}
	got := out.String()

	for _, want := range []string{
		`kavserve_ops_ingested_total{node="a:1"} 12`,
		`kavserve_ops_ingested_total{node="b:2"} 3`,
		`kavserve_shard_ops_total{node="a:1",shard="0"} 7`,
		`kavserve_shard_ops_total{node="a:1",shard="1"} 5`,
	} {
		if !strings.Contains(got, want+"\n") {
			t.Fatalf("relabeled output missing %q:\n%s", want, got)
		}
	}
	// Each family header appears exactly once despite two nodes exporting it.
	if n := strings.Count(got, "# TYPE kavserve_ops_ingested_total counter"); n != 1 {
		t.Fatalf("TYPE header repeated %d times:\n%s", n, got)
	}
	if n := strings.Count(got, "# HELP kavserve_ops_ingested_total"); n != 1 {
		t.Fatalf("HELP header repeated %d times:\n%s", n, got)
	}
}

// TestWriteRelabeledEmptyBraces covers the `name{} v` exposition corner: the
// injected label must not leave a trailing comma.
func TestWriteRelabeledEmptyBraces(t *testing.T) {
	var out strings.Builder
	if _, err := WriteRelabeled(&out, []byte("m{} 1\n"), `node="x"`, map[string]bool{}); err != nil {
		t.Fatal(err)
	}
	if got, want := out.String(), "m{node=\"x\"} 1\n"; got != want {
		t.Fatalf("relabeled %q, want %q", got, want)
	}
}
