package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "operations")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			c.Add(500)
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8*1500 {
		t.Fatalf("counter = %d, want %d", got, 8*1500)
	}
}

func TestCounterIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatalf("aliased counter = %d, want 3", b.Value())
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b counter").Add(42)
	r.Gauge("a_open", "live window", func() float64 { return 7.5 })
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := "# HELP a_open live window\n" +
		"# TYPE a_open gauge\n" +
		"a_open 7.5\n" +
		"# HELP b_total b counter\n" +
		"# TYPE b_total counter\n" +
		"b_total 42\n"
	if b.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "gauge", func() float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("counter over existing gauge did not panic")
		}
	}()
	r.Counter("g", "counter")
}
