package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "operations")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			c.Add(500)
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8*1500 {
		t.Fatalf("counter = %d, want %d", got, 8*1500)
	}
}

func TestCounterIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatalf("aliased counter = %d, want 3", b.Value())
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b counter").Add(42)
	r.Gauge("a_open", "live window", func() float64 { return 7.5 })
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := "# HELP a_open live window\n" +
		"# TYPE a_open gauge\n" +
		"a_open 7.5\n" +
		"# HELP b_total b counter\n" +
		"# TYPE b_total counter\n" +
		"b_total 42\n"
	if b.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "gauge", func() float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("counter over existing gauge did not panic")
		}
	}()
	r.Counter("g", "counter")
}

func TestLabeledSeriesExposition(t *testing.T) {
	r := NewRegistry()
	r.GaugeL("shard_ops", "ops per shard", `shard="1"`, func() float64 { return 2 })
	r.GaugeL("shard_ops", "ops per shard", `shard="0"`, func() float64 { return 1 })
	r.CounterL("batches_total", "batches by size", `bucket="le16"`).Add(3)
	r.CounterL("batches_total", "batches by size", `bucket="inf"`).Inc()
	// Re-registering a counter series aliases it.
	r.CounterL("batches_total", "batches by size", `bucket="le16"`).Add(2)
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := "# HELP batches_total batches by size\n" +
		"# TYPE batches_total counter\n" +
		`batches_total{bucket="inf"} 1` + "\n" +
		`batches_total{bucket="le16"} 5` + "\n" +
		"# HELP shard_ops ops per shard\n" +
		"# TYPE shard_ops gauge\n" +
		`shard_ops{shard="0"} 1` + "\n" +
		`shard_ops{shard="1"} 2` + "\n"
	if b.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestCounterFuncExposition(t *testing.T) {
	r := NewRegistry()
	total := 41.0
	r.CounterFunc("derived_total", "summed elsewhere", func() float64 { total++; return total })
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := "# HELP derived_total summed elsewhere\n" +
		"# TYPE derived_total counter\n" +
		"derived_total 42\n"
	if b.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", b.String(), want)
	}
	mustPanic(t, "duplicate CounterFunc", func() { r.CounterFunc("derived_total", "x", func() float64 { return 0 }) })
}

func TestLabeledSeriesClashesPanic(t *testing.T) {
	r := NewRegistry()
	r.Counter("plain_total", "plain")
	mustPanic(t, "labeled over plain", func() { r.CounterL("plain_total", "p", `a="1"`) })
	r.GaugeL("fam", "family", `a="1"`, func() float64 { return 0 })
	mustPanic(t, "duplicate gauge series", func() { r.GaugeL("fam", "family", `a="1"`, func() float64 { return 0 }) })
	mustPanic(t, "counter series in gauge family", func() { r.CounterL("fam", "family", `a="2"`) })
	mustPanic(t, "plain over labeled", func() { r.Gauge("fam", "family", func() float64 { return 0 }) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}
