package metrics

import (
	"runtime"
	"sync"

	"kat/internal/core"
	"kat/internal/history"
)

// SmallestKDistributionParallel is SmallestKDistribution with a worker pool:
// each history's smallest-k search is independent, so a corpus verifies
// embarrassingly parallel. The result is identical to the sequential
// version regardless of worker count. workers <= 0 uses GOMAXPROCS.
func SmallestKDistributionParallel(corpus []*history.History, opts core.Options, workers int) KDistribution {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(corpus) {
		workers = len(corpus)
	}
	if workers <= 1 {
		return SmallestKDistribution(corpus, opts)
	}

	// results[i] holds history i's smallest k, or 0 on error; workers own
	// disjoint indices so no locking is needed on the slice.
	results := make([]int, len(corpus))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				k, err := core.SmallestK(corpus[i], opts)
				if err != nil {
					k = 0
				}
				results[i] = k
			}
		}()
	}
	for i := range corpus {
		next <- i
	}
	close(next)
	wg.Wait()

	d := KDistribution{Counts: make(map[int]int), Total: len(corpus)}
	for _, k := range results {
		if k == 0 {
			d.Errors++
			continue
		}
		d.Counts[k]++
	}
	return d
}
