package metrics

import (
	"kat/internal/core"
	"kat/internal/history"
)

// SmallestKDistributionParallel is SmallestKDistribution with a worker pool:
// each history's smallest-k search is independent, so a corpus verifies
// embarrassingly parallel. Workers fan out through core.ForEachWorker — one
// reusable Verifier per worker, results in disjoint slots — so the result
// is identical to the sequential version regardless of worker count.
// workers <= 0 uses GOMAXPROCS.
func SmallestKDistributionParallel(corpus []*history.History, opts core.Options, workers int) KDistribution {
	// results[i] holds history i's smallest k, or 0 on error.
	results := make([]int, len(corpus))
	core.ForEachWorker(len(corpus), workers, func(v *core.Verifier, i int) {
		k, err := v.SmallestK(corpus[i], opts)
		if err != nil {
			k = 0
		}
		results[i] = k
	})

	d := KDistribution{Counts: make(map[int]int), Total: len(corpus)}
	for _, k := range results {
		if k == 0 {
			d.Errors++
			continue
		}
		d.Counts[k]++
	}
	return d
}
