package metrics

import (
	"strings"
	"testing"

	"kat/internal/core"
	"kat/internal/generator"
	"kat/internal/history"
)

func TestSmallestKDistribution(t *testing.T) {
	var corpus []*history.History
	for seed := int64(0); seed < 5; seed++ {
		corpus = append(corpus, generator.KAtomic(generator.Config{
			Seed: seed, Ops: 25, Concurrency: 1, StalenessDepth: 0, ReadFraction: 0.5,
		}))
	}
	for seed := int64(0); seed < 3; seed++ {
		corpus = append(corpus, generator.KAtomic(generator.Config{
			Seed: seed, Ops: 25, Concurrency: 1, StalenessDepth: 1,
			ForceDepth: true, ReadFraction: 0.5,
		}))
	}
	d := SmallestKDistribution(corpus, core.Options{})
	if d.Total != 8 || d.Errors != 0 {
		t.Fatalf("Total=%d Errors=%d, want 8/0", d.Total, d.Errors)
	}
	if d.Counts[1] != 5 {
		t.Errorf("Counts[1] = %d, want 5 (%v)", d.Counts[1], d.Counts)
	}
	if d.Counts[2] != 3 {
		t.Errorf("Counts[2] = %d, want 3 (%v)", d.Counts[2], d.Counts)
	}
	if f := d.Fraction(1); f < 0.6 || f > 0.7 {
		t.Errorf("Fraction(1) = %v, want 5/8", f)
	}
	if f := d.Fraction(2); f != 1 {
		t.Errorf("Fraction(2) = %v, want 1", f)
	}
	if s := d.String(); !strings.Contains(s, "k=1:5") || !strings.Contains(s, "k=2:3") {
		t.Errorf("String() = %q", s)
	}
}

func TestDistributionErrors(t *testing.T) {
	corpus := []*history.History{history.MustParse("r 9 0 10")} // dangling read
	d := SmallestKDistribution(corpus, core.Options{})
	if d.Errors != 1 {
		t.Errorf("Errors = %d, want 1", d.Errors)
	}
	if d.Fraction(1) != 0 {
		t.Errorf("Fraction with all-errors = %v, want 0", d.Fraction(1))
	}
}

func TestReadStaleness(t *testing.T) {
	h := history.MustParse("w 1 0 10; w 2 20 30; r 1 40 50; r 2 60 70")
	p, err := history.Prepare(history.Normalize(h))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	// Order: w1 w2 r1 r2 — r1 one write behind, r2 zero.
	st, err := ReadStaleness(p, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatalf("ReadStaleness: %v", err)
	}
	if len(st) != 2 || st[0] != 1 || st[1] != 0 {
		t.Errorf("staleness = %v, want [1 0]", st)
	}
	max, err := MaxStaleness(p, []int{0, 1, 2, 3})
	if err != nil || max != 1 {
		t.Errorf("MaxStaleness = %d, %v; want 1", max, err)
	}
}

func TestReadStalenessErrors(t *testing.T) {
	h := history.MustParse("w 1 0 10; r 1 20 30")
	p, err := history.Prepare(history.Normalize(h))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if _, err := ReadStaleness(p, []int{0}); err == nil {
		t.Error("short order accepted")
	}
	if _, err := ReadStaleness(p, []int{0, 9}); err == nil {
		t.Error("out-of-range accepted")
	}
	if _, err := ReadStaleness(p, []int{1, 0}); err == nil {
		t.Error("read-before-write order accepted")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	var corpus []*history.History
	for seed := int64(0); seed < 12; seed++ {
		corpus = append(corpus, generator.KAtomic(generator.Config{
			Seed: seed, Ops: 30, Concurrency: 2, StalenessDepth: int(seed % 3),
		}))
	}
	corpus = append(corpus, history.MustParse("r 9 0 10")) // one error case
	seq := SmallestKDistribution(corpus, core.Options{})
	for _, workers := range []int{0, 1, 2, 4, 32} {
		par := SmallestKDistributionParallel(corpus, core.Options{}, workers)
		if par.Total != seq.Total || par.Errors != seq.Errors {
			t.Fatalf("workers=%d: Total/Errors %d/%d vs %d/%d",
				workers, par.Total, par.Errors, seq.Total, seq.Errors)
		}
		for k, c := range seq.Counts {
			if par.Counts[k] != c {
				t.Fatalf("workers=%d: Counts[%d] = %d, want %d", workers, k, par.Counts[k], c)
			}
		}
	}
}

func TestParallelEmptyCorpus(t *testing.T) {
	d := SmallestKDistributionParallel(nil, core.Options{}, 4)
	if d.Total != 0 || d.Errors != 0 {
		t.Errorf("empty corpus: %+v", d)
	}
}
