// Package metrics computes staleness statistics over histories: smallest-k
// distributions across a corpus (the measurement the paper's Section VII
// proposes running against real storage systems) and per-read staleness
// under a given witness order.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"kat/internal/core"
	"kat/internal/history"
)

// KDistribution is a histogram of smallest-k values over a corpus.
type KDistribution struct {
	// Counts maps k to the number of histories whose smallest k it is.
	Counts map[int]int
	// Errors counts histories that failed verification (anomalies or
	// search-budget exhaustion).
	Errors int
	// Total is the corpus size.
	Total int
}

// Fraction returns the fraction of (successfully analyzed) histories with
// smallest k <= bound.
func (d KDistribution) Fraction(bound int) float64 {
	ok := d.Total - d.Errors
	if ok <= 0 {
		return 0
	}
	n := 0
	for k, c := range d.Counts {
		if k <= bound {
			n += c
		}
	}
	return float64(n) / float64(ok)
}

// String renders the distribution compactly, e.g. "k=1:37 k=2:12 (2 errors)".
func (d KDistribution) String() string {
	ks := make([]int, 0, len(d.Counts))
	for k := range d.Counts {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	var b strings.Builder
	for i, k := range ks {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "k=%d:%d", k, d.Counts[k])
	}
	if d.Errors > 0 {
		fmt.Fprintf(&b, " (%d errors)", d.Errors)
	}
	return b.String()
}

// SmallestKDistribution computes the smallest k of every history in the
// corpus.
func SmallestKDistribution(corpus []*history.History, opts core.Options) KDistribution {
	v := core.NewVerifier()
	d := KDistribution{Counts: make(map[int]int), Total: len(corpus)}
	for _, h := range corpus {
		k, err := v.SmallestK(h, opts)
		if err != nil {
			d.Errors++
			continue
		}
		d.Counts[k]++
	}
	return d
}

// ReadStaleness reports, for each read in the prepared history, the number
// of writes separating it from its dictating write (the dictating write
// excluded) under the given total order. The returned slice is indexed by
// position among reads in operation-index order.
func ReadStaleness(p *history.Prepared, order []int) ([]int, error) {
	n := p.Len()
	if len(order) != n {
		return nil, fmt.Errorf("metrics: order has %d ops, history has %d", len(order), n)
	}
	pos := make([]int, n)
	for i, op := range order {
		if op < 0 || op >= n {
			return nil, fmt.Errorf("metrics: op index %d out of range", op)
		}
		pos[op] = i
	}
	// writesBefore[i] = number of writes at positions < i.
	writesBefore := make([]int, n+1)
	for i, op := range order {
		writesBefore[i+1] = writesBefore[i]
		if p.Op(op).IsWrite() {
			writesBefore[i+1]++
		}
	}
	var out []int
	for i := 0; i < n; i++ {
		if !p.Op(i).IsRead() {
			continue
		}
		w := p.DictatingWrite[i]
		if pos[w] > pos[i] {
			return nil, fmt.Errorf("metrics: read %d before its write in the order", i)
		}
		sep := writesBefore[pos[i]] - writesBefore[pos[w]+1]
		out = append(out, sep)
	}
	return out, nil
}

// MaxStaleness returns the maximum entry of ReadStaleness, or 0 for
// read-free histories.
func MaxStaleness(p *history.Prepared, order []int) (int, error) {
	st, err := ReadStaleness(p, order)
	if err != nil {
		return 0, err
	}
	max := 0
	for _, s := range st {
		if s > max {
			max = s
		}
	}
	return max, nil
}
