package online

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kat"
	"kat/internal/trace"
	"kat/internal/wire"
)

// postWire posts a binary body under the wire content type and decodes the
// reject envelope (zero-valued on success).
func postWire(t *testing.T, base string, body []byte) (int, IngestReject) {
	t.Helper()
	resp, err := http.Post(base+"/ingest", wire.ContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reject IngestReject
	if resp.StatusCode != http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&reject); err != nil {
			t.Fatalf("reject body of %s did not decode: %v", resp.Status, err)
		}
	}
	return resp.StatusCode, reject
}

// TestWireIngestEquivalence drives the binary /ingest path end to end: the
// same trace posted as wire frames must drain to the offline verdicts, and
// the per-codec byte/decode-time series must appear on /metrics with the
// bytes attributed to the wire codec.
func TestWireIngestEquivalence(t *testing.T) {
	srv := New(Config{K: 2, Stream: trace.StreamOptions{Workers: 2, MinSegmentOps: 1, IngestShards: 4}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	tr, _ := buildTrace(t, 5, 70, 0.4)
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		if err := trace.WriteWireArrivalOrder(&buf, tr, 64, compress); err != nil {
			t.Fatal(err)
		}
		if compress {
			// The second (compressed) copy replays the same operations; a
			// fresh server keeps the verdict comparison clean.
			srv2 := New(Config{K: 2, Stream: trace.StreamOptions{Workers: 2, MinSegmentOps: 1, IngestShards: 4}})
			ts2 := httptest.NewServer(srv2.Handler())
			defer ts2.Close()
			if status, rej := postWire(t, ts2.URL, buf.Bytes()); status != http.StatusOK {
				t.Fatalf("compressed wire ingest: %d %+v", status, rej)
			}
			final := postDrain(t, ts2.URL)
			checkAgainstOffline(t, tr, final)
			continue
		}
		if status, rej := postWire(t, ts.URL, buf.Bytes()); status != http.StatusOK {
			t.Fatalf("wire ingest: %d %+v", status, rej)
		}
	}
	final := postDrain(t, ts.URL)
	checkAgainstOffline(t, tr, final)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	mtext := string(mbody)
	for _, frag := range []string{
		`kavserve_ingest_bytes_total{codec="wire"}`,
		`kavserve_ingest_bytes_total{codec="text"} 0`,
		`kavserve_ingest_decode_seconds_total{codec="wire"}`,
		`kavserve_ingest_decode_seconds_total{codec="text"} 0`,
	} {
		if !strings.Contains(mtext, frag) {
			t.Fatalf("metrics output missing %q:\n%s", frag, mtext)
		}
	}
	// The wire byte counter must equal the body we actually posted.
	var wireBytes float64
	for _, line := range strings.Split(mtext, "\n") {
		if strings.HasPrefix(line, `kavserve_ingest_bytes_total{codec="wire"} `) {
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &wireBytes)
		}
	}
	if wireBytes == 0 {
		t.Fatalf("wire codec read 0 bytes:\n%s", mtext)
	}
}

func checkAgainstOffline(t *testing.T, tr *kat.Trace, final VerdictDoc) {
	t.Helper()
	if !final.Drained {
		t.Fatal("drain response not drained")
	}
	want := kat.SmallestKByKey(tr, kat.Options{})
	if len(final.Keys) != len(want) {
		t.Fatalf("verdict has %d keys, want %d", len(final.Keys), len(want))
	}
	for _, ks := range final.Keys {
		if ks.SmallestK != want[ks.Key] {
			t.Fatalf("key %s: server smallest k=%d, offline %d", ks.Key, ks.SmallestK, want[ks.Key])
		}
	}
}

// TestWireIngestMalformedOffset pins the typed 400: a body whose tail is not
// a valid frame is rejected with code "malformed" and the byte offset of the
// defect, while the frames before it stay accepted and the session stays
// usable.
func TestWireIngestMalformedOffset(t *testing.T) {
	srv := New(Config{K: 2, Stream: trace.StreamOptions{Workers: 1, MinSegmentOps: 1}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	enc := wire.NewEncoder()
	for i := 0; i < 10; i++ {
		op := kat.Operation{Kind: kat.KindWrite, Value: int64(i + 1), Start: int64(i * 10), Finish: int64(i*10 + 5)}
		if err := enc.Add("reg", op); err != nil {
			t.Fatal(err)
		}
	}
	good := enc.AppendFrame(nil)
	bad := append(bytes.Clone(good), "this is not a frame"...)

	status, rej := postWire(t, ts.URL, bad)
	if status != http.StatusBadRequest || rej.Code != "malformed" {
		t.Fatalf("malformed wire body: %d %+v, want 400 malformed", status, rej)
	}
	if rej.Offset == nil || *rej.Offset != int64(len(good)) {
		t.Fatalf("reject offset %v, want %d (start of the garbage)", rej.Offset, len(good))
	}
	if rej.Ingested != 10 {
		t.Fatalf("ingested %d before the bad frame, want 10", rej.Ingested)
	}

	// A text parse error must not carry an offset — the field is wire-only.
	if status, rej := postIngest(t, ts.URL, "nonsense line\n"); status != http.StatusBadRequest || rej.Offset != nil {
		t.Fatalf("text malformed reject: %d %+v, want 400 with no offset", status, rej)
	}

	// Decode errors reject the request, not the session.
	enc2 := wire.NewEncoder()
	op := kat.Operation{Kind: kat.KindRead, Value: 10, Start: 100, Finish: 105}
	if err := enc2.Add("reg", op); err != nil {
		t.Fatal(err)
	}
	if status, rej := postWire(t, ts.URL, enc2.AppendFrame(nil)); status != http.StatusOK {
		t.Fatalf("session poisoned by decode error: %d %+v", status, rej)
	}
	final := postDrain(t, ts.URL)
	if len(final.Keys) != 1 || final.Keys[0].Ops != 11 {
		t.Fatalf("final verdict %+v, want one key with 11 ops", final.Keys)
	}
}
