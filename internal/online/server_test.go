package online

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"kat"
	"kat/internal/checkpoint"
	"kat/internal/core"
	"kat/internal/faultfs"
	"kat/internal/trace"
	"kat/internal/wal"
)

// buildTrace generates a deterministic multi-key trace with injected
// staleness and returns both the parsed trace (for the offline reference)
// and its arrival-order text (for ingestion).
func buildTrace(t *testing.T, keys, opsPerKey int, inject float64) (*kat.Trace, string) {
	t.Helper()
	tr := kat.NewTrace()
	for ki := 0; ki < keys; ki++ {
		cfg := kat.GenConfig{
			Seed:         int64(ki + 1),
			Ops:          opsPerKey,
			Concurrency:  2,
			ReadFraction: 0.5,
		}
		h := kat.GenerateKAtomic(cfg)
		if inject > 0 && ki%2 == 0 {
			h = kat.InjectStaleness(h, cfg.Seed+100, inject, 2)
		}
		for _, op := range h.Ops {
			tr.Add(fmt.Sprintf("key-%03d", ki), op)
		}
	}
	var b strings.Builder
	if err := kat.WriteTraceArrivalOrder(&b, tr); err != nil {
		t.Fatal(err)
	}
	return tr, b.String()
}

func getVerdict(t *testing.T, base string) VerdictDoc {
	t.Helper()
	resp, err := http.Get(base + "/verdict")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /verdict: %s", resp.Status)
	}
	var doc VerdictDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

func postDrain(t *testing.T, base string) VerdictDoc {
	t.Helper()
	resp, err := http.Post(base+"/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc VerdictDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestIngestVerdictMetricsDrain(t *testing.T) {
	memo := core.NewMemo()
	srv := New(Config{K: 2, Opts: core.Options{Memo: memo}, Stream: trace.StreamOptions{Workers: 2, MinSegmentOps: 1}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	tr, text := buildTrace(t, 6, 80, 0.4)
	// Ingest in two chunks to prove sessions span requests.
	lines := strings.SplitAfter(strings.TrimSuffix(text, "\n"), "\n")
	half := len(lines) / 2
	for _, chunk := range []string{strings.Join(lines[:half], ""), strings.Join(lines[half:], "")} {
		resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader(chunk))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /ingest: %s: %s", resp.Status, body)
		}
	}

	live := getVerdict(t, ts.URL)
	if live.Drained {
		t.Fatal("live verdict claims drained")
	}
	if len(live.Keys) != len(tr.Keys) {
		t.Fatalf("live verdict has %d keys, want %d", len(live.Keys), len(tr.Keys))
	}

	final := postDrain(t, ts.URL)
	if !final.Drained {
		t.Fatal("drain response not drained")
	}
	want := kat.SmallestKByKey(tr, kat.Options{})
	for _, ks := range final.Keys {
		if ks.SmallestK != want[ks.Key] {
			t.Fatalf("key %s: server smallest k=%d, offline %d", ks.Key, ks.SmallestK, want[ks.Key])
		}
		wantStatus := "ok"
		if want[ks.Key] > 2 {
			wantStatus = "violating"
		}
		if ks.Status != wantStatus {
			t.Fatalf("key %s: status %q (k=%d), want %q", ks.Key, ks.Status, ks.SmallestK, wantStatus)
		}
		if ks.Status == "violating" && ks.Violation == nil {
			t.Fatalf("key %s: violating without a violation witness", ks.Key)
		}
		if ks.PendingOps != 0 {
			t.Fatalf("key %s: pending ops after drain: %d", ks.Key, ks.PendingOps)
		}
	}

	// Per-key endpoint agrees; unknown keys 404.
	resp, err := http.Get(ts.URL + "/verdict/" + final.Keys[0].Key)
	if err != nil {
		t.Fatal(err)
	}
	var one KeyStatus
	if err := json.NewDecoder(resp.Body).Decode(&one); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if statusSansViolation(one) != statusSansViolation(final.Keys[0]) {
		t.Fatalf("per-key verdict %+v != %+v", one, final.Keys[0])
	}
	resp, err = http.Get(ts.URL + "/verdict/no-such-key")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key: %s, want 404", resp.Status)
	}

	// Metrics: ops ingested matches, memo gauges exposed.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metricsText := string(metricsBody)
	wantLine := fmt.Sprintf("kavserve_ops_ingested_total %d", tr.Len())
	for _, frag := range []string{wantLine, "kavserve_segments_closed_total", "kavserve_open_window_ops", "kavserve_memo_hit_rate",
		`kavserve_shard_ingested_ops_total{shard="0"}`, `kavserve_shard_open_window_ops{shard="0"}`,
		"# TYPE kavserve_shard_ingested_ops_total counter",
		`kavserve_ingest_requests_by_size_total{bucket="le256"} 2`,
		"# TYPE kavserve_ingest_lock_acquisitions_total counter"} {
		if !strings.Contains(metricsText, frag) {
			t.Fatalf("metrics output missing %q:\n%s", frag, metricsText)
		}
	}
	// Per-shard ingest totals must sum to the overall total.
	var shardSum, total float64
	for _, line := range strings.Split(metricsText, "\n") {
		var v float64
		if strings.HasPrefix(line, "kavserve_shard_ingested_ops_total{") {
			fmt.Sscanf(line[strings.Index(line, "} ")+2:], "%g", &v)
			shardSum += v
		}
		if strings.HasPrefix(line, "kavserve_ops_ingested_total ") {
			fmt.Sscanf(strings.TrimPrefix(line, "kavserve_ops_ingested_total "), "%g", &total)
		}
	}
	if shardSum != total || total == 0 {
		t.Fatalf("per-shard ingest totals sum to %g, total %g", shardSum, total)
	}

	// Ingest after drain is refused: 409 with the "draining" code.
	status, reject := postIngest(t, ts.URL, "w zz 1 0 1\n")
	if status != http.StatusConflict || reject.Code != "draining" {
		t.Fatalf("ingest after drain: %d %+v, want 409 draining", status, reject)
	}
}

// postIngest posts one body and decodes the reject envelope (zero-valued on
// success).
func postIngest(t *testing.T, base, body string) (int, IngestReject) {
	t.Helper()
	resp, err := http.Post(base+"/ingest", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reject IngestReject
	if resp.StatusCode != http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&reject); err != nil {
			t.Fatalf("reject body of %s did not decode: %v", resp.Status, err)
		}
	}
	return resp.StatusCode, reject
}

// statusSansViolation normalizes the pointer field for struct comparison.
func statusSansViolation(ks KeyStatus) KeyStatus {
	ks.Violation = nil
	return ks
}

// TestDurableServerCrashRestart runs a durable server over an in-memory
// crash-imaged filesystem: ingest over HTTP (with a mid-stream checkpoint),
// cut the disk at a byte boundary, restart a second server from the image,
// and require its drained verdicts to be a per-key-prefix-consistent
// subset verified against a fresh in-memory server fed the same text. Also
// pins the durability metrics names into /metrics.
func TestDurableServerCrashRestart(t *testing.T) {
	tr, text := buildTrace(t, 4, 60, 0.4)
	_ = tr
	mem := faultfs.NewMem()
	mgr, err := checkpoint.Open(mem, "data", checkpoint.Config{Policy: wal.SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	srv, rs, err := NewDurable(Config{K: 2, Stream: trace.StreamOptions{Workers: 2, MinSegmentOps: 1}}, mgr)
	if err != nil {
		t.Fatal(err)
	}
	if rs.CheckpointEpoch != -1 {
		t.Fatalf("cold start restored a checkpoint: %+v", rs)
	}
	ts := httptest.NewServer(srv.Handler())

	lines := strings.SplitAfter(strings.TrimSuffix(text, "\n"), "\n")
	third := len(lines) / 3
	chunks := []string{strings.Join(lines[:third], ""), strings.Join(lines[third:2*third], ""), strings.Join(lines[2*third:], "")}
	for i, chunk := range chunks {
		if status, reject := postIngest(t, ts.URL, chunk); status != http.StatusOK {
			t.Fatalf("ingest chunk %d: %d %+v", i, status, reject)
		}
		if i == 0 {
			if err := mgr.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Durability metrics are exported and live.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, frag := range []string{
		"kavserve_wal_fsyncs_total", "kavserve_wal_fsync_seconds_total",
		"kavserve_wal_appended_records_total", "kavserve_wal_appended_bytes_total",
		"kavserve_wal_rotations_total 1", "kavserve_checkpoints_total 1",
		"kavserve_recovery_replayed_ops_total", "kavserve_spilled_ops",
	} {
		if !strings.Contains(string(mbody), frag) {
			t.Fatalf("durable metrics missing %q:\n%s", frag, mbody)
		}
	}
	ts.Close()
	mgr.Close()

	// Crash: keep 80% of the written bytes; the tail (late WAL records) is
	// torn away mid-record.
	img := mem.CrashImage(mem.TotalWriteBytes() * 4 / 5)
	mgr2, err := checkpoint.Open(img, "data", checkpoint.Config{Policy: wal.SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	srv2, rs2, err := NewDurable(Config{K: 2, Stream: trace.StreamOptions{Workers: 2, MinSegmentOps: 1}}, mgr2)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.CheckpointEpoch < 0 {
		t.Fatalf("restart found no checkpoint: %+v", rs2)
	}
	if err := srv2.Drain(); err != nil {
		t.Fatal(err)
	}
	recovered := srv2.Verdict()

	// Reference: an in-memory server fed exactly the recovered per-key
	// prefixes of the original text, in order.
	perKey := map[string][]string{}
	for _, line := range lines {
		f := strings.Fields(line)
		perKey[f[1]] = append(perKey[f[1]], line)
	}
	ref := New(Config{K: 2, Stream: trace.StreamOptions{Workers: 2, MinSegmentOps: 1}})
	for _, ks := range recovered.Keys {
		pfx := perKey[ks.Key]
		if ks.Ops > len(pfx) {
			t.Fatalf("key %s recovered %d ops, only %d sent", ks.Key, ks.Ops, len(pfx))
		}
		for _, line := range pfx[:ks.Ops] {
			if _, err := ref.sess.AppendTrace(strings.NewReader(line)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := ref.Drain(); err != nil {
		t.Fatal(err)
	}
	want := ref.Verdict()
	if len(recovered.Keys) != len(want.Keys) {
		t.Fatalf("recovered %d keys, reference %d", len(recovered.Keys), len(want.Keys))
	}
	for i, ks := range recovered.Keys {
		if statusSansViolation(ks) != statusSansViolation(want.Keys[i]) {
			t.Fatalf("recovered verdict diverges:\n got %+v\nwant %+v", ks, want.Keys[i])
		}
	}
}

// TestDurableServerDrainedRestart drains a durable server, publishes the
// terminal checkpoint, and restarts: the new server must come up already
// drained, serve the same final verdicts, and 409 all ingest.
func TestDurableServerDrainedRestart(t *testing.T) {
	_, text := buildTrace(t, 3, 40, 0.3)
	mem := faultfs.NewMem()
	mgr, err := checkpoint.Open(mem, "data", checkpoint.Config{Policy: wal.SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	srv, _, err := NewDurable(Config{K: 2, Stream: trace.StreamOptions{Workers: 2, MinSegmentOps: 1}}, mgr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.sess.AppendTrace(strings.NewReader(text)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Checkpoint(); err != nil {
		t.Fatalf("terminal checkpoint: %v", err)
	}
	want := srv.Verdict()
	mgr.Close()

	mgr2, err := checkpoint.Open(mem, "data", checkpoint.Config{Policy: wal.SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	srv2, rs, err := NewDurable(Config{K: 2, Stream: trace.StreamOptions{Workers: 2, MinSegmentOps: 1}}, mgr2)
	if err != nil {
		t.Fatal(err)
	}
	if rs.ReplayedOps != 0 {
		t.Fatalf("drained restart replayed ops: %+v", rs)
	}
	got := srv2.Verdict()
	if !got.Drained {
		t.Fatal("drained restart not marked drained")
	}
	if len(got.Keys) != len(want.Keys) {
		t.Fatalf("drained restart has %d keys, want %d", len(got.Keys), len(want.Keys))
	}
	for i := range got.Keys {
		if statusSansViolation(got.Keys[i]) != statusSansViolation(want.Keys[i]) {
			t.Fatalf("drained restart verdict diverges:\n got %+v\nwant %+v", got.Keys[i], want.Keys[i])
		}
	}
	ts := httptest.NewServer(srv2.Handler())
	defer ts.Close()
	status, reject := postIngest(t, ts.URL, "w zz 1 0 1\n")
	if status != http.StatusConflict || reject.Code != "draining" {
		t.Fatalf("ingest into drained restart: %d %+v, want 409 draining", status, reject)
	}
}

func TestIngestErrors(t *testing.T) {
	// MinSegmentOps 1 commits a cut at every quiescent instant, so an
	// operation starting at or before a committed cut is detectable.
	srv := New(Config{Stream: trace.StreamOptions{Workers: 1, MinSegmentOps: 1}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Malformed line: 400 with the "malformed" code, but preceding ops
	// were ingested and the body says so.
	status, reject := postIngest(t, ts.URL, "w a 1 0 1\nnot a trace line\n")
	if status != http.StatusBadRequest || reject.Code != "malformed" {
		t.Fatalf("malformed ingest: %d %+v, want 400 malformed", status, reject)
	}
	if reject.Ingested != 1 {
		t.Fatalf("reject body should report the partial ingest: %+v", reject)
	}

	// Out-of-order arrival: 409 "out_of_order", and the session error is
	// sticky.
	for _, line := range []string{"w a 2 10 11\n", "w a 3 30 31\n"} {
		if status, reject := postIngest(t, ts.URL, line); status != http.StatusOK {
			t.Fatalf("in-order ingest rejected: %d %+v", status, reject)
		}
	}
	status, reject = postIngest(t, ts.URL, "w a 4 5 6\n")
	if status != http.StatusConflict || reject.Code != "out_of_order" {
		t.Fatalf("out-of-order ingest: %d %+v, want 409 out_of_order", status, reject)
	}
	status, reject = postIngest(t, ts.URL, "w a 5 100 101\n")
	if status != http.StatusConflict || reject.Code != "out_of_order" {
		t.Fatalf("ingest after sticky error: %d %+v, want 409 out_of_order", status, reject)
	}
}

// TestIngestOverloadShedding drives the upfront overload gate: once live
// buffered operations reach Config.OverloadOps, /ingest sheds with 503 +
// Retry-After + {"code":"overload"} without reading the body, and accepts
// again once verification drains the backlog (here: after Drain).
func TestIngestOverloadShedding(t *testing.T) {
	srv := New(Config{
		OverloadOps: 4,
		// A huge MinSegmentOps keeps every op buffered in the open window,
		// so the gate trips deterministically.
		Stream: trace.StreamOptions{Workers: 1, MinSegmentOps: 1 << 20},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var body strings.Builder
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&body, "w a %d %d %d\n", i+1, i*2, i*2+1)
	}
	if status, reject := postIngest(t, ts.URL, body.String()); status != http.StatusOK {
		t.Fatalf("first ingest: %d %+v", status, reject)
	}

	resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader("w a 9 100 101\n"))
	if err != nil {
		t.Fatal(err)
	}
	var reject IngestReject
	if err := json.NewDecoder(resp.Body).Decode(&reject); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || reject.Code != "overload" {
		t.Fatalf("overloaded ingest: %s %+v, want 503 overload", resp.Status, reject)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 overload without Retry-After")
	}
	if reject.Ingested != 0 {
		t.Fatalf("overload shed after accepting ops: %+v", reject)
	}

	// The shed request lost nothing: the producer can resend the same
	// batch once the backlog clears.
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	doc := srv.Verdict()
	if len(doc.Keys) != 1 || doc.Keys[0].Ops != 8 {
		t.Fatalf("unexpected post-shed state: %+v", doc.Keys)
	}
	// Metrics record the shed by reason.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), `kavserve_ingest_rejected_total{reason="overload"} 1`) {
		t.Fatalf("metrics missing overload shed counter:\n%s", mbody)
	}
}

// TestCrossBoundaryViolationWitness covers violations the segment verdicts
// never see: a read reaching past the staleness horizon is recorded as a
// kFloor by the engine's cross-boundary path, and the server must still
// report a witness (Seq -1) for it — and must downgrade saturated keys whose
// floor is within the bound to "indeterminate" rather than claim "ok".
func TestCrossBoundaryViolationWitness(t *testing.T) {
	// Horizon 2: a read three writes back crosses dispatched segments.
	mk := func(k int) (*Server, *httptest.Server) {
		srv := New(Config{K: k, Stream: trace.StreamOptions{Workers: 1, MinSegmentOps: 1, Horizon: 2}})
		return srv, httptest.NewServer(srv.Handler())
	}
	text := "w a 1 0 1\nw a 2 10 11\nw a 3 20 21\nw a 4 30 31\nw a 5 40 41\nr a 1 50 51\nw a 6 60 61\n"

	srv, ts := mk(2)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	doc := srv.Verdict()
	if len(doc.Keys) != 1 {
		t.Fatalf("keys: %+v", doc.Keys)
	}
	ks := doc.Keys[0]
	if !ks.Saturated || ks.Status != "violating" {
		t.Fatalf("want saturated violating key, got %+v", ks)
	}
	if ks.Violation == nil || ks.Violation.Seq != -1 || ks.Violation.K != ks.SmallestK {
		t.Fatalf("cross-boundary violation lacks its synthesized witness: %+v", ks.Violation)
	}

	// Same trace, bound above the floor: the floor alone cannot prove a
	// violation, and saturation forbids a definite ok.
	srv2, ts2 := mk(100)
	defer ts2.Close()
	resp, err = http.Post(ts2.URL+"/ingest", "text/plain", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := srv2.Drain(); err != nil {
		t.Fatal(err)
	}
	ks = srv2.Verdict().Keys[0]
	if ks.Status != "indeterminate" {
		t.Fatalf("saturated key within bound: status %q, want indeterminate (%+v)", ks.Status, ks)
	}
	if ks.Violation != nil {
		t.Fatalf("indeterminate key should carry no violation witness: %+v", ks.Violation)
	}
}

func TestHealthz(t *testing.T) {
	srv := New(Config{Stream: trace.StreamOptions{Workers: 1}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	get := func() Health {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz: %s", resp.Status)
		}
		var h Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}
	if h := get(); h.Status != "ok" || h.Draining {
		t.Fatalf("fresh server health %+v, want ok", h)
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	// /healthz stays 200 while draining — the node is alive and serves
	// verdicts — but reports the state so a router can route around ingest.
	if h := get(); h.Status != "draining" || !h.Draining {
		t.Fatalf("drained server health %+v, want draining", h)
	}
}

// TestHundredConcurrentReplayClients is the acceptance check: 100 concurrent
// clients replay a partitioned trace into kavserve's handler, and after
// drain the server's per-key smallest-k must equal the offline checker's on
// the merged trace. Keys are partitioned by hash so each key's operations
// arrive in order from exactly one client — the documented ingest contract.
func TestHundredConcurrentReplayClients(t *testing.T) {
	const clients = 100
	keys, opsPerKey := 40, 60
	if testing.Short() {
		keys, opsPerKey = 12, 30
	}
	pool := core.NewPool(4)
	defer pool.Close()
	srv := New(Config{K: 2, Stream: trace.StreamOptions{Pool: pool, MinSegmentOps: 4, Horizon: 64}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	tr, text := buildTrace(t, keys, opsPerKey, 0.5)
	buckets := make([][]string, clients)
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		f := strings.Fields(line)
		h := fnv.New32a()
		io.WriteString(h, f[1])
		b := int(h.Sum32() % clients)
		buckets[b] = append(buckets[b], line)
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for _, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		wg.Add(1)
		go func(bucket []string) {
			defer wg.Done()
			body := strings.Join(bucket, "\n") + "\n"
			resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			msg, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("ingest: %s: %s", resp.Status, msg)
			}
		}(bucket)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}

	final := postDrain(t, ts.URL)
	if !final.Drained {
		t.Fatal("not drained")
	}
	if int(final.Stats.Ops) != tr.Len() {
		t.Fatalf("server saw %d ops, trace has %d", final.Stats.Ops, tr.Len())
	}
	want := kat.SmallestKByKey(tr, kat.Options{})
	if len(final.Keys) != len(want) {
		t.Fatalf("server has %d keys, offline %d", len(final.Keys), len(want))
	}
	for _, ks := range final.Keys {
		if ks.Saturated {
			t.Fatalf("key %s saturated the horizon; raise Horizon in the test config", ks.Key)
		}
		if ks.SmallestK != want[ks.Key] {
			t.Fatalf("key %s: server smallest k=%d, offline kavcheck %d", ks.Key, ks.SmallestK, want[ks.Key])
		}
	}
}

// TestPerPropertyVerdictsMatchOffline: a session configured for the full
// property set serves per-key Δ-atomicity and regularity verdicts that
// match the offline checkers exactly after drain, the per-property metric
// families show up on /metrics, and a k-only server's document stays
// byte-compatible (no extra fields).
func TestPerPropertyVerdictsMatchOffline(t *testing.T) {
	srv := New(Config{K: 2, Stream: trace.StreamOptions{Workers: 2, MinSegmentOps: 1, Properties: trace.PropertySetAll}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	tr, text := buildTrace(t, 6, 80, 0.4)
	resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %s", resp.Status)
	}

	final := postDrain(t, ts.URL)
	if !final.Drained {
		t.Fatal("drain response not drained")
	}
	if final.Properties != "k,delta,regularity" {
		t.Fatalf("doc properties = %q", final.Properties)
	}
	wantK := kat.SmallestKByKey(tr, kat.Options{})
	for _, ks := range final.Keys {
		h := tr.Keys[ks.Key]
		if ks.Err != "" {
			t.Fatalf("key %s: unexpected error %q", ks.Key, ks.Err)
		}
		if ks.Delta == nil || ks.Regularity == nil {
			t.Fatalf("key %s: missing per-property verdicts: %+v", ks.Key, ks)
		}
		if ks.SmallestK != wantK[ks.Key] {
			t.Fatalf("key %s: k=%d, offline %d", ks.Key, ks.SmallestK, wantK[ks.Key])
		}
		d, err := kat.SmallestDelta(h)
		if err != nil {
			t.Fatalf("key %s: SmallestDelta: %v", ks.Key, err)
		}
		if ks.Delta.Saturated {
			if ks.Delta.SmallestDelta < 1 || ks.Delta.SmallestDelta > d {
				t.Fatalf("key %s: saturated Δ=%d outside (0, %d]", ks.Key, ks.Delta.SmallestDelta, d)
			}
		} else if ks.Delta.SmallestDelta != d {
			t.Fatalf("key %s: Δ=%d, offline %d", ks.Key, ks.Delta.SmallestDelta, d)
		}
		p, err := kat.Prepare(kat.Normalize(h))
		if err != nil {
			t.Fatalf("key %s: Prepare: %v", ks.Key, err)
		}
		rv := kat.CheckProperties(p)
		if ks.Regularity.IrregularReads != len(rv.IrregularReads) || ks.Regularity.UnsafeReads != len(rv.UnsafeReads) {
			t.Fatalf("key %s: regularity %d/%d, offline %d/%d", ks.Key,
				ks.Regularity.IrregularReads, ks.Regularity.UnsafeReads, len(rv.IrregularReads), len(rv.UnsafeReads))
		}
		if ks.Regularity.Regular != (len(rv.IrregularReads) == 0) || ks.Regularity.Safe != (len(rv.UnsafeReads) == 0) {
			t.Fatalf("key %s: regular/safe flags inconsistent: %+v", ks.Key, ks.Regularity)
		}
	}

	// /verdict/{key} carries the same per-property fields.
	kresp, err := http.Get(ts.URL + "/verdict/" + final.Keys[0].Key)
	if err != nil {
		t.Fatal(err)
	}
	defer kresp.Body.Close()
	var one KeyStatus
	if err := json.NewDecoder(kresp.Body).Decode(&one); err != nil {
		t.Fatal(err)
	}
	if one.Delta == nil || one.Regularity == nil {
		t.Fatalf("/verdict/{key} missing per-property verdicts: %+v", one)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	for _, family := range []string{
		`kavserve_property_segments_total{property="k"}`,
		`kavserve_property_segments_total{property="delta"}`,
		`kavserve_property_segments_total{property="regularity"}`,
		"kavserve_segment_smallest_k_max",
		"kavserve_segment_smallest_delta_max",
		"kavserve_irregular_reads_total",
		"kavserve_unsafe_reads_total",
		"kavserve_stale_reads_total",
		"kavserve_saturated_keys",
	} {
		if !strings.Contains(string(body), family) {
			t.Errorf("/metrics missing %s", family)
		}
	}

	// A k-only server's document is unchanged: no properties header, no
	// per-key sub-verdicts, no per-property metric families beyond k.
	plain := New(Config{K: 2, Stream: trace.StreamOptions{Workers: 1, MinSegmentOps: 1}})
	pts := httptest.NewServer(plain.Handler())
	defer pts.Close()
	resp, err = http.Post(pts.URL+"/ingest", "text/plain", strings.NewReader("w a 1 0 1\nr a 1 2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	doc := postDrain(t, pts.URL)
	if doc.Properties != "" {
		t.Fatalf("k-only doc properties = %q, want empty", doc.Properties)
	}
	if len(doc.Keys) != 1 || doc.Keys[0].Delta != nil || doc.Keys[0].Regularity != nil {
		t.Fatalf("k-only key status grew per-property fields: %+v", doc.Keys)
	}
}

// TestPerPropertyStaleReadFolds: cross-boundary stale reads fold sound
// floors into the Δ verdict and exact counts into the regularity verdict.
func TestPerPropertyStaleReadFolds(t *testing.T) {
	srv := New(Config{K: 2, Stream: trace.StreamOptions{Workers: 1, MinSegmentOps: 1, Horizon: 2, Properties: trace.PropertySetAll}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// The read of value 1 reaches five writes back: past the horizon, so
	// it is dropped from its window, saturates k and Δ, and is counted as
	// definitively irregular (and unsafe: no write overlaps it).
	text := "w a 1 0 1\nw a 2 10 11\nw a 3 20 21\nw a 4 30 31\nw a 5 40 41\nr a 1 50 51\nw a 6 60 61\n"
	resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	doc := srv.Verdict()
	if len(doc.Keys) != 1 {
		t.Fatalf("keys: %+v", doc.Keys)
	}
	ks := doc.Keys[0]
	if !ks.Saturated || ks.Delta == nil || !ks.Delta.Saturated {
		t.Fatalf("want saturated k and Δ verdicts, got %+v", ks)
	}
	if ks.Delta.SmallestDelta < 1 {
		t.Fatalf("Δ floor = %d, want >= 1", ks.Delta.SmallestDelta)
	}
	if ks.Regularity == nil || ks.Regularity.IrregularReads != 1 || ks.Regularity.UnsafeReads != 1 {
		t.Fatalf("stale read not counted exactly: %+v", ks.Regularity)
	}
	if ks.Regularity.Regular || ks.Regularity.Safe {
		t.Fatalf("regular/safe flags wrong: %+v", ks.Regularity)
	}
}
