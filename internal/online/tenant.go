package online

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"

	"kat/internal/metrics"
)

// TenantQuotas bounds one tenant's resource use on a shared server. All
// quotas are enforced before the request body is read, so a tenant at
// its quota costs the server one rejected request, not a parse.
type TenantQuotas struct {
	// MaxOps caps lifetime ingested operations (0 = unlimited). Hitting
	// it is permanent for the tenant's lifetime: rejects are HTTP 429
	// without Retry-After.
	MaxOps int64
	// MaxKeys caps distinct keys (0 = unlimited). Like MaxOps, hitting
	// it is permanent — retirement does not lower the distinct-key
	// count, so the quota is over keys ever seen.
	MaxKeys int64
	// MaxBufferedOps caps live buffered (unverified) operations — the
	// tenant's memory quota, since buffered operations dominate a
	// session's heap (0 = unlimited). Transient: rejects are HTTP 503
	// with Retry-After, and clear as verification catches up or keys
	// retire.
	MaxBufferedOps int64
}

// TenantConfig names one tenant and its quotas.
type TenantConfig struct {
	Name   string
	Quotas TenantQuotas
}

// Multi is a multi-tenant frontend: one isolated Server (and so one
// trace.Session and verdict namespace) per tenant, all verifying on one
// shared core.Pool so a quiet tenant's worker capacity serves a busy one.
//
// Endpoints mirror the single-tenant server's, scoped by path:
//
//	POST /ingest/{tenant}         tenant-scoped ingest; quota checks run
//	                              before the body is read and reject with
//	                              {"code":"quota_exceeded"}
//	GET  /verdict/{tenant}        the tenant's verdict document
//	                              (?epoch=N works as on a single server)
//	GET  /verdict/{tenant}/{key}  one key's verdict
//	POST /drain/{tenant}          drain one tenant (others keep ingesting)
//	POST /drain                   drain every tenant
//	GET  /verdict                 all tenants' documents, keyed by name
//	GET  /metrics                 every tenant's families merged, each
//	                              sample labeled tenant="name"
//	GET  /healthz                 per-tenant health, keyed by name
//
// Isolation: quotas, drain state, ordering contracts, and sticky errors
// are all per-tenant — one tenant at its quota (or drained, or broken)
// never blocks another's ingest, because rejection happens in its own
// session's admission path and the shared pool is work-conserving.
//
// Multi-tenant servers are in-memory only: the checkpoint manager's
// directory layout assumes one session, so durability and tenants are
// mutually exclusive (NewMulti builds every tenant with a nil manager).
type Multi struct {
	names   []string // sorted, for deterministic /metrics and /verdict order
	tenants map[string]*tenant
}

type tenant struct {
	name   string
	quotas TenantQuotas
	srv    *Server
}

// NewMulti builds one Server per tenant from the shared base config.
// Base config fields apply to every tenant (K, properties, lifecycle,
// watermarks); Stream.Pool should be set so tenants share workers —
// when it is nil each tenant gets its own pool, multiplying worker
// goroutines by the tenant count. The base Opts.Memo, if any, is shared:
// segment verdicts are content-addressed, so cross-tenant hits are sound.
func NewMulti(base Config, tenants []TenantConfig) (*Multi, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("no tenants configured")
	}
	m := &Multi{tenants: make(map[string]*tenant, len(tenants))}
	for _, tc := range tenants {
		if tc.Name == "" {
			return nil, fmt.Errorf("tenant with empty name")
		}
		if _, dup := m.tenants[tc.Name]; dup {
			return nil, fmt.Errorf("duplicate tenant %q", tc.Name)
		}
		cfg := base // per-tenant copy; sessions must not share mutable state
		srv, _, err := NewDurable(cfg, nil)
		if err != nil {
			return nil, fmt.Errorf("tenant %q: %w", tc.Name, err)
		}
		m.tenants[tc.Name] = &tenant{name: tc.Name, quotas: tc.Quotas, srv: srv}
		m.names = append(m.names, tc.Name)
	}
	sort.Strings(m.names)
	return m, nil
}

// Tenant returns the named tenant's underlying Server, for direct
// (non-HTTP) access in tests and embedders.
func (m *Multi) Tenant(name string) (*Server, bool) {
	t, ok := m.tenants[name]
	if !ok {
		return nil, false
	}
	return t.srv, true
}

// Tenants returns the tenant names, sorted.
func (m *Multi) Tenants() []string { return append([]string(nil), m.names...) }

// DrainAll drains every tenant and returns the first error.
func (m *Multi) DrainAll() error {
	var first error
	for _, name := range m.names {
		if err := m.tenants[name].srv.Drain(); err != nil && first == nil {
			first = fmt.Errorf("tenant %q: %w", name, err)
		}
	}
	return first
}

// Handler returns the multi-tenant HTTP handler.
func (m *Multi) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest/{tenant}", m.withTenant(func(t *tenant, w http.ResponseWriter, r *http.Request) {
		t.handleIngest(w, r)
	}))
	mux.HandleFunc("GET /verdict/{tenant}", m.withTenant(func(t *tenant, w http.ResponseWriter, r *http.Request) {
		t.srv.handleVerdict(w, r)
	}))
	mux.HandleFunc("GET /verdict/{tenant}/{key}", m.withTenant(func(t *tenant, w http.ResponseWriter, r *http.Request) {
		t.srv.handleVerdictKey(w, r)
	}))
	mux.HandleFunc("POST /drain/{tenant}", m.withTenant(func(t *tenant, w http.ResponseWriter, r *http.Request) {
		t.srv.handleDrain(w, r)
	}))
	mux.HandleFunc("POST /drain", func(w http.ResponseWriter, _ *http.Request) {
		// Drain all, then answer with every final document; per-tenant
		// drain errors ride the same header as the single-tenant path.
		if err := m.DrainAll(); err != nil {
			w.Header().Set("X-Kavserve-Drain-Error", err.Error())
		}
		writeJSON(w, m.verdicts())
	})
	mux.HandleFunc("GET /verdict", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, m.verdicts())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		m.writeMetrics(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		health := make(map[string]Health, len(m.names))
		status := "ok"
		for _, name := range m.names {
			t := m.tenants[name]
			h := Health{Status: "ok", BufferedOps: t.srv.sess.BufferedOps(),
				Keys: t.srv.sess.Keys(), RetiredKeys: t.srv.sess.RetiredKeys()}
			if t.srv.Draining() {
				h.Status, h.Draining = "draining", true
			}
			health[name] = h
		}
		writeJSON(w, struct {
			Status  string            `json:"status"`
			Tenants map[string]Health `json:"tenants"`
		}{status, health})
	})
	return mux
}

// withTenant resolves the {tenant} path segment; unknown tenants 404.
func (m *Multi) withTenant(h func(*tenant, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t, ok := m.tenants[r.PathValue("tenant")]
		if !ok {
			http.Error(w, fmt.Sprintf("unknown tenant %q", r.PathValue("tenant")), http.StatusNotFound)
			return
		}
		h(t, w, r)
	}
}

// verdicts assembles every tenant's document, keyed by tenant name.
func (m *Multi) verdicts() map[string]VerdictDoc {
	docs := make(map[string]VerdictDoc, len(m.names))
	for _, name := range m.names {
		docs[name] = m.tenants[name].srv.Verdict()
	}
	return docs
}

// handleIngest enforces the tenant's quotas before delegating to the
// underlying server (which applies its own draining / overload /
// watermark admission checks). All checks run pre-body: nothing is
// half-accepted on a quota reject, so the producer can retry the same
// batch verbatim where the quota is transient.
func (t *tenant) handleIngest(w http.ResponseWriter, r *http.Request) {
	s := t.srv
	if q := t.quotas.MaxOps; q > 0 {
		if ops := s.sess.Stats().Ops; ops >= q {
			s.ingestReqs.Inc()
			s.rejectQuota.Inc()
			s.rejectIngest(w, http.StatusTooManyRequests, "quota_exceeded", 0,
				fmt.Errorf("tenant %s: operation quota exhausted (%d ingested, quota %d)", t.name, ops, q))
			return
		}
	}
	if q := t.quotas.MaxKeys; q > 0 {
		if keys := s.sess.Keys(); keys >= q {
			s.ingestReqs.Inc()
			s.rejectQuota.Inc()
			s.rejectIngest(w, http.StatusTooManyRequests, "quota_exceeded", 0,
				fmt.Errorf("tenant %s: key quota exhausted (%d keys, quota %d)", t.name, keys, q))
			return
		}
	}
	if q := t.quotas.MaxBufferedOps; q > 0 {
		if buf := s.sess.BufferedOps(); buf >= q {
			s.ingestReqs.Inc()
			s.rejectQuota.Inc()
			// 503 + Retry-After: this quota drains as verification
			// catches up (or as the tenant's keys retire).
			s.rejectIngest(w, http.StatusServiceUnavailable, "quota_exceeded", 0,
				fmt.Errorf("tenant %s: buffered-operation quota reached (%d buffered, quota %d)", t.name, buf, q))
			return
		}
	}
	s.handleIngest(w, r)
}

// writeMetrics merges every tenant's exposition, labeling each sample
// line tenant="name". HELP/TYPE headers are deduplicated across tenants
// via the shared seen set, keeping the merged output parseable.
func (m *Multi) writeMetrics(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	seen := make(map[string]bool)
	var buf bytes.Buffer
	for _, name := range m.names {
		buf.Reset()
		m.tenants[name].srv.reg.WriteTo(&buf)
		metrics.WriteRelabeled(w, buf.Bytes(), `tenant="`+name+`"`, seen)
	}
}
