// Package online is the continuous-verification service behind cmd/kavserve:
// a long-running HTTP ingestion endpoint that routes operation streams from
// many concurrent clients into one push-driven smallest-k session
// (trace.Session) on a shared verification pool, and serves the live per-key
// verdict state back out.
//
// Endpoints:
//
//	POST /ingest        newline-delimited keyed trace format by default, or
//	                    binary wire frames when the request carries
//	                    Content-Type: application/x-kav-wire (chunked bodies
//	                    fine either way); returns {"ingested": n}. 400 on
//	                    malformed input (wire frames report the byte offset
//	                    of the defect), 409 on ordering/buffer violations,
//	                    503 once draining. Text bodies flow through the
//	                    session's batch-granular path: parsed in chunks,
//	                    grouped by ingest shard, one shard-lock take per
//	                    chunk. Binary bodies skip parsing entirely: frames
//	                    decode zero-copy into the same shard-grouped feed.
//	GET  /verdict       live (or, after drain, final) per-key verdicts.
//	GET  /verdict/{key} one key's verdict; 404 for unseen keys.
//	GET  /metrics       Prometheus text exposition of the service counters.
//	POST /drain         graceful drain: flush open segments to final
//	                    verdicts; responds with the final verdict document.
//	GET  /healthz       liveness.
//
// Verdict semantics: the session runs in smallest-k mode, so each key's
// SmallestK is the maximum over its verified segments — a lower bound that
// only grows while operations are still buffered, and exact after drain (up
// to the staleness horizon; see trace.StreamSmallestKByKey). The fixed-k
// status at the configured bound K is derived from it: a key whose smallest
// k exceeds K is violating, by the segment-equivalence lemma. The first
// violating segment per key is retained as the violation witness.
package online

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	rtmetrics "runtime/metrics"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kat/internal/checkpoint"
	"kat/internal/core"
	"kat/internal/metrics"
	"kat/internal/trace"
	"kat/internal/wire"
)

// Config parameterizes a Server.
type Config struct {
	// K is the staleness bound keys are judged against in the verdict
	// status field; <= 0 defaults to 2 (the paper's headline case).
	K int
	// Opts tunes verification; supply Opts.Memo to cache repeated segment
	// verdicts across the service lifetime.
	Opts core.Options
	// Stream tunes the underlying session (workers or shared pool,
	// horizon, segment batching, buffer cap). Stream.Properties selects
	// extra verified properties (Δ-atomicity, regularity/safety) computed
	// in the same pass as smallest-k and surfaced per key in the verdict
	// document. Stream.OnSegment is chained after the server's own verdict
	// bookkeeping.
	Stream trace.StreamOptions
	// OverloadOps, when > 0, sheds /ingest load before reading the body
	// once the session's live buffered operations reach this bound: the
	// request is rejected with 503, a Retry-After header, and a
	// {"code":"overload"} body, telling well-behaved producers to back off
	// rather than pile onto verification backpressure.
	OverloadOps int64
	// SoftWatermarkBytes, when > 0, is the live-heap size at which the
	// ingest path starts reclaiming memory aggressively: quiescent keys
	// are retired immediately regardless of Stream.RetireTTL, and open
	// windows spill to the blob store when one is configured. Relief is
	// rate-limited so a sustained breach costs one sweep per interval,
	// not one per request.
	SoftWatermarkBytes uint64
	// HardWatermarkBytes, when > 0, is the live-heap size at which
	// /ingest sheds load before reading the body with a typed
	// {"code":"memory_pressure"} 503 + Retry-After. Unlike
	// "buffer_limit" this is not sticky: no operations are lost, and
	// requests are accepted again as soon as relief (or GC) brings the
	// heap back under the watermark.
	HardWatermarkBytes uint64
	// MemUsage overrides the live-heap probe used for the watermarks
	// (default: the runtime's heap-objects byte class, polled at most
	// every memPollInterval). Tests inject deterministic pressure here.
	MemUsage func() uint64
}

// Violation is the retained evidence for a key's first violating segment.
type Violation struct {
	// Seq is the first segment sequence number covered by the verdict, or
	// -1 when the violation was established by a cross-boundary stale read
	// (a read returning a value from an already-dispatched segment), which
	// never passes through a segment verdict.
	Seq int `json:"seq"`
	// Ops is the segment length.
	Ops int `json:"ops"`
	// K is the segment's smallest k (what pushed the key over the bound),
	// 0 when the segment failed with an anomaly instead.
	K int `json:"k,omitempty"`
	// Err is the segment's anomaly, if any.
	Err string `json:"error,omitempty"`
}

// KeyStatus is one key's entry in the verdict document.
type KeyStatus struct {
	Key string `json:"key"`
	// Ops counts ingested operations; PendingOps counts those not yet
	// dispatched for verification (0 after drain).
	Ops        int `json:"ops"`
	PendingOps int `json:"pendingOps,omitempty"`
	// SmallestK is the largest verified per-segment smallest k — a lower
	// bound until drained, then exact (horizon caveat: see Saturated).
	SmallestK int `json:"smallestK"`
	// Saturated marks a read staler than the configured horizon;
	// SmallestK is then only the horizon floor even after drain.
	Saturated bool `json:"saturated,omitempty"`
	// Status is "ok" (within bound so far), "violating" (smallest k
	// exceeds the bound — sound even for saturated keys, since the floor
	// is a lower bound), "indeterminate" (the key saturated the staleness
	// horizon and its floor is within the bound, so the true smallest k is
	// unknown; raise the horizon for a definite verdict), or "error"
	// (anomaly).
	Status    string     `json:"status"`
	Err       string     `json:"error,omitempty"`
	Violation *Violation `json:"violation,omitempty"`
	// Retired marks a key whose live state was folded into the compact
	// retired record after quiescing past the retirement TTL. Its
	// verdict fields are final floors (exact if the key never saturated
	// the horizon) and carry forward if the key is later re-admitted.
	Retired bool `json:"retired,omitempty"`
	// Delta and Regularity carry the extra per-property verdicts when the
	// session was configured to verify them (Config.Stream.Properties);
	// both ride the same parse/cut/schedule pass as the k verdict, so
	// enabling them adds no second ingest path.
	Delta      *DeltaStatus      `json:"delta,omitempty"`
	Regularity *RegularityStatus `json:"regularity,omitempty"`
}

// DeltaStatus is the Δ-atomicity (time-staleness) portion of a key's
// verdict.
type DeltaStatus struct {
	// SmallestDelta is the largest verified per-segment smallest Δ — like
	// SmallestK, a lower bound until drained, then exact up to the
	// staleness horizon.
	SmallestDelta int64 `json:"smallestDelta"`
	// Saturated marks a read staler than the configured horizon;
	// SmallestDelta is then only a floor even after drain.
	Saturated bool `json:"saturated,omitempty"`
}

// RegularityStatus is the Lamport safety/regularity portion of a key's
// verdict. Offending-read counts are exact even across the staleness
// horizon (a read reaching past already-dispatched segments is definitively
// irregular), so Regular and Safe are final after drain with no saturation
// caveat.
type RegularityStatus struct {
	// Regular and Safe report zero offending reads so far.
	Regular bool `json:"regular"`
	Safe    bool `json:"safe"`
	// IrregularReads counts reads violating regularity (neither the
	// freshest forced value nor one written concurrently); UnsafeReads
	// counts the subset also violating safety (not even excused by
	// concurrency with a write).
	IrregularReads int `json:"irregularReads,omitempty"`
	UnsafeReads    int `json:"unsafeReads,omitempty"`
}

// Line renders the key's one-line text summary. kavserve's shutdown output
// and kavgen -replay's verdict printout both use it, so server logs and
// load-driver logs read the same.
func (ks KeyStatus) Line() string {
	line := fmt.Sprintf("key %-12s %6d ops  smallest k: %d", ks.Key, ks.Ops, ks.SmallestK)
	if ks.Delta != nil {
		line += fmt.Sprintf("  smallest Δ: %d", ks.Delta.SmallestDelta)
	}
	if ks.Regularity != nil {
		line += fmt.Sprintf("  irregular: %d  unsafe: %d", ks.Regularity.IrregularReads, ks.Regularity.UnsafeReads)
	}
	line += fmt.Sprintf("  [%s]", ks.Status)
	if ks.Err != "" {
		line += "  " + ks.Err
	}
	return line
}

// VerdictDoc is the /verdict response.
type VerdictDoc struct {
	// K is the bound statuses are judged against.
	K int `json:"k"`
	// Properties names the verified property set ("k,delta,regularity")
	// when extra properties beyond k-atomicity are enabled; empty for
	// k-only sessions, keeping the legacy document unchanged.
	Properties string `json:"properties,omitempty"`
	// Drained reports that verdicts are final.
	Drained bool `json:"drained"`
	// Keys holds one entry per seen key, key-sorted.
	Keys []KeyStatus `json:"keys"`
	// Stats is the session's streaming statistics.
	Stats trace.StreamStats `json:"stats"`
	// Retired summarizes the keys whose state was folded into compact
	// retired records (counts plus worst-case per-property floors over
	// all retired keys); present once any retirement has happened.
	Retired *trace.RetiredSummary `json:"retired,omitempty"`
	// Epochs carries the per-epoch verdict windows when the session
	// rotates them (Stream.EpochLength > 0): the folded aggregate of
	// evicted epochs first, then retained epochs in ascending order.
	Epochs []trace.EpochStats `json:"epochs,omitempty"`
}

// EpochDoc is the /verdict?epoch=N response: the k-atomicity verdict
// over one bounded window of trace time, answering "was the store
// k-atomic over that hour" without waiting for a drain.
type EpochDoc struct {
	// Epoch identifies the window: floor(trace time / epoch length).
	Epoch int64 `json:"epoch"`
	// Current marks the still-open window: its stats only cover
	// segments already cut and verified, so they are floors.
	Current bool `json:"current,omitempty"`
	// Folded marks a window old enough to have been folded into the
	// cumulative aggregate of evicted epochs; Stats then covers every
	// evicted window, not just the requested one.
	Folded bool `json:"folded,omitempty"`
	// K is the bound KAtomic judges the window's MaxK against.
	K int `json:"k"`
	// KAtomic reports that every segment settled in the window verified
	// within the bound with no anomalies. Sound even for saturated
	// keys: MaxK is a lower bound, so false is definite; true is final
	// once the window is closed and its keys drained or retired.
	KAtomic bool `json:"kAtomic"`
	// Stats is the window's verdict aggregate.
	Stats trace.EpochStats `json:"stats"`
}

// WriteText renders the per-key verdict lines and a one-line summary under
// the given label ("kavserve: final", "server: live", ...). kavserve's
// shutdown printout and kavgen -replay both use it, so server logs and
// load-driver logs read the same.
func (d VerdictDoc) WriteText(w io.Writer, label string) {
	for _, ks := range d.Keys {
		fmt.Fprintln(w, ks.Line())
	}
	fmt.Fprintf(w, "%s verdicts for %d key(s), %d ops, %d segments\n",
		label, len(d.Keys), d.Stats.Ops, d.Stats.Segments)
}

// Server is the continuous verification service. Create with New (purely
// in-memory) or NewDurable (write-ahead logged and checkpointed); it is
// ready immediately and safe for any number of concurrent requests.
type Server struct {
	cfg  Config
	sess *trace.Session
	reg  *metrics.Registry
	mgr  *checkpoint.Manager // nil for in-memory servers

	opsIngested    *metrics.Counter
	ingestReqs     *metrics.Counter
	ingestErrors   *metrics.Counter
	rejectDraining *metrics.Counter
	rejectOverload *metrics.Counter
	rejectMemory   *metrics.Counter
	rejectQuota    *metrics.Counter
	segmentsClosed *metrics.Counter
	violations     *metrics.Counter
	reliefs        *metrics.Counter

	// Watermark machinery: the live-heap probe is polled at most every
	// memPollInterval (memAt gates, memVal caches), and soft-watermark
	// relief (retire + spill) runs at most every reliefInterval. Both
	// are CAS-gated so concurrent ingest handlers never stack sweeps.
	memUsage func() uint64
	memAt    atomic.Int64
	memVal   atomic.Uint64
	reliefAt atomic.Int64
	// ingestSizes is a histogram-ish breakdown of /ingest request sizes
	// (operations accepted per request), one counter per size class — the
	// batching signal an operator tunes producers against.
	ingestSizes []*metrics.Counter
	// Per-codec ingest accounting: body bytes read and wall time spent
	// decoding+feeding, split text vs wire so the binary pipeline's win is
	// visible straight off /metrics.
	ingestBytesText *metrics.Counter
	ingestBytesWire *metrics.Counter
	decodeNanosText atomic.Int64
	decodeNanosWire atomic.Int64
	// Per-property families, fed from segment verdicts in the OnSegment
	// chain. The counters index by property name; the max gauges track the
	// worst per-segment verdict observed (monotone under the per-key fold,
	// so they agree with the final document's worst key after drain, up to
	// cross-boundary stale-read floors which land only in /verdict).
	propSegments   map[trace.Property]*metrics.Counter
	irregularReads *metrics.Counter
	unsafeReads    *metrics.Counter
	maxSegK        atomic.Int64
	maxSegDelta    atomic.Int64

	mu         sync.Mutex
	firstViols map[string]Violation

	drainOnce sync.Once
	draining  sync.Once // distinct from drainOnce so 503s start immediately
	drainGate chan struct{}
	drainErr  error
	drained   chan struct{}
}

// New builds a purely in-memory Server from cfg and opens its session.
func New(cfg Config) *Server {
	s, _, err := NewDurable(cfg, nil)
	if err != nil {
		// Unreachable: only recovery can fail, and there is no manager.
		panic(err)
	}
	return s
}

// NewDurable builds a Server whose session is write-ahead logged,
// checkpointed, and spill-backed by mgr's data directory (mgr may be nil
// for a purely in-memory server). Recovery runs before the server is
// returned: the directory's newest checkpoint is restored, the WAL tail
// replayed, and the returned RecoveryStats describe what was rebuilt. A
// directory whose final checkpoint was a drain (Flushed) comes back as an
// already-drained server: /verdict serves the final document and /ingest
// rejects with the draining code. The caller starts mgr's checkpoint
// ticker and closes mgr after the server's lifetime.
func NewDurable(cfg Config, mgr *checkpoint.Manager) (*Server, checkpoint.RecoveryStats, error) {
	if cfg.K <= 0 {
		cfg.K = 2
	}
	if mgr != nil && cfg.Stream.Store == nil {
		cfg.Stream.Store = mgr.Store()
	}
	s := &Server{
		cfg:        cfg,
		reg:        metrics.NewRegistry(),
		mgr:        mgr,
		firstViols: make(map[string]Violation),
		drainGate:  make(chan struct{}),
		drained:    make(chan struct{}),
	}
	s.opsIngested = s.reg.Counter("kavserve_ops_ingested_total", "Operations accepted by /ingest.")
	s.ingestReqs = s.reg.Counter("kavserve_ingest_requests_total", "Requests to /ingest.")
	s.ingestErrors = s.reg.Counter("kavserve_ingest_errors_total", "Failed /ingest requests.")
	s.rejectDraining = s.reg.CounterL("kavserve_ingest_rejected_total",
		"Ingest requests shed before reading the body, by reason.", `reason="draining"`)
	s.rejectOverload = s.reg.CounterL("kavserve_ingest_rejected_total",
		"Ingest requests shed before reading the body, by reason.", `reason="overload"`)
	s.rejectMemory = s.reg.CounterL("kavserve_ingest_rejected_total",
		"Ingest requests shed before reading the body, by reason.", `reason="memory_pressure"`)
	s.rejectQuota = s.reg.CounterL("kavserve_ingest_rejected_total",
		"Ingest requests shed before reading the body, by reason.", `reason="quota_exceeded"`)
	s.segmentsClosed = s.reg.Counter("kavserve_segments_closed_total", "Segments verified.")
	s.violations = s.reg.Counter("kavserve_violations_total", "Violating segment verdicts.")
	for _, bucket := range ingestSizeBuckets {
		s.ingestSizes = append(s.ingestSizes, s.reg.CounterL("kavserve_ingest_requests_by_size_total",
			"Clean ingest requests, classified by operations accepted per request (size classes, not a cumulative histogram).",
			`bucket="`+bucket.label+`"`))
	}
	s.ingestBytesText = s.reg.CounterL("kavserve_ingest_bytes_total",
		"Request-body bytes read by /ingest, by codec.", `codec="text"`)
	s.ingestBytesWire = s.reg.CounterL("kavserve_ingest_bytes_total",
		"Request-body bytes read by /ingest, by codec.", `codec="wire"`)
	s.reg.CounterFuncL("kavserve_ingest_decode_seconds_total",
		"Cumulative wall time decoding and feeding /ingest bodies, by codec.",
		`codec="text"`, func() float64 { return float64(s.decodeNanosText.Load()) / 1e9 })
	s.reg.CounterFuncL("kavserve_ingest_decode_seconds_total",
		"Cumulative wall time decoding and feeding /ingest bodies, by codec.",
		`codec="wire"`, func() float64 { return float64(s.decodeNanosWire.Load()) / 1e9 })

	// Per-property families exist only for enabled properties, so a k-only
	// server's exposition is unchanged.
	props := cfg.Stream.Properties
	s.propSegments = map[trace.Property]*metrics.Counter{
		trace.PropertyKAtomicity: s.reg.CounterL("kavserve_property_segments_total",
			"Segment verdicts carrying each property's result.", `property="k"`),
	}
	s.reg.Gauge("kavserve_segment_smallest_k_max",
		"Largest per-segment smallest k observed (lower bound on the worst key's final k).",
		func() float64 { return float64(s.maxSegK.Load()) })
	if props.Has(trace.PropertyDelta) {
		s.propSegments[trace.PropertyDelta] = s.reg.CounterL("kavserve_property_segments_total",
			"Segment verdicts carrying each property's result.", `property="delta"`)
		s.reg.Gauge("kavserve_segment_smallest_delta_max",
			"Largest per-segment smallest Δ observed (lower bound on the worst key's final Δ).",
			func() float64 { return float64(s.maxSegDelta.Load()) })
	}
	if props.Has(trace.PropertyRegularity) {
		s.propSegments[trace.PropertyRegularity] = s.reg.CounterL("kavserve_property_segments_total",
			"Segment verdicts carrying each property's result.", `property="regularity"`)
		s.irregularReads = s.reg.Counter("kavserve_irregular_reads_total",
			"Reads violating regularity, from segment verdicts (cross-boundary stale reads are folded into /verdict directly).")
		s.unsafeReads = s.reg.Counter("kavserve_unsafe_reads_total",
			"Reads violating Lamport safety, from segment verdicts (cross-boundary stale reads are folded into /verdict directly).")
	}

	chained := cfg.Stream.OnSegment
	cfg.Stream.OnSegment = func(v trace.SegmentVerdict) {
		s.segmentsClosed.Inc()
		s.propSegments[trace.PropertyKAtomicity].Inc()
		atomicMax(&s.maxSegK, int64(v.K))
		for _, pv := range v.Props {
			if c := s.propSegments[pv.Property]; c != nil {
				c.Inc()
			}
			switch pv.Property {
			case trace.PropertyDelta:
				atomicMax(&s.maxSegDelta, pv.Delta)
			case trace.PropertyRegularity:
				s.irregularReads.Add(int64(pv.IrregularReads))
				s.unsafeReads.Add(int64(pv.UnsafeReads))
			}
		}
		if bad := v.Err != nil || v.K > s.cfg.K; bad {
			s.violations.Inc()
			s.recordViolation(v)
		}
		if chained != nil {
			chained(v)
		}
	}
	s.sess = trace.NewSmallestKSession(cfg.Opts, cfg.Stream)

	// Every session-backed gauge below is lock-free, so /metrics stays
	// scrapeable even while ingest is blocked on verification backpressure
	// — exactly when an operator most needs to see these numbers.
	s.reg.Gauge("kavserve_open_window_ops", "Live operations buffered (open windows + held + in-flight segments).",
		func() float64 { return float64(s.sess.BufferedOps()) })
	s.reg.Gauge("kavserve_ingest_shards", "Configured ingest shard count.",
		func() float64 { return float64(s.sess.Shards()) })
	s.reg.CounterFunc("kavserve_ingest_lock_acquisitions_total",
		"Ingest-path shard-lock acquisitions (with batch ingest, per-op cost is this over ops ingested).",
		func() float64 { return float64(s.sess.IngestLockAcquisitions()) })
	for i := 0; i < s.sess.Shards(); i++ {
		labels := `shard="` + strconv.Itoa(i) + `"`
		s.reg.CounterFuncL("kavserve_shard_ingested_ops_total", "Operations routed into each ingest shard (key-hash balance).",
			labels, func() float64 { return float64(s.sess.ShardIngestedOps(i)) })
		s.reg.GaugeL("kavserve_shard_open_window_ops", "Live buffered operations owned by each ingest shard's keys.",
			labels, func() float64 { return float64(s.sess.ShardBufferedOps(i)) })
	}
	s.reg.Gauge("kavserve_keys", "Distinct keys seen.",
		func() float64 { return float64(s.sess.Keys()) })
	s.reg.Gauge("kavserve_peak_buffered_ops", "Peak live operations observed.",
		func() float64 { return float64(s.sess.PeakBufferedOps()) })
	if memo := cfg.Opts.Memo; memo != nil {
		s.reg.Gauge("kavserve_memo_hits", "Memo lookups served from cache.",
			func() float64 { return float64(memo.Stats().Hits) })
		s.reg.Gauge("kavserve_memo_misses", "Memo lookups that missed.",
			func() float64 { return float64(memo.Stats().Misses) })
		s.reg.Gauge("kavserve_memo_hit_rate", "Hits / (hits + misses), 0 when idle.",
			func() float64 {
				st := memo.Stats()
				if st.Hits+st.Misses == 0 {
					return 0
				}
				return float64(st.Hits) / float64(st.Hits+st.Misses)
			})
	}
	// Lifecycle families exist only when retirement can happen (a
	// retirement TTL or a soft watermark), so plain servers' exposition
	// is unchanged. All of them read lock-free session atomics.
	if cfg.Stream.RetireTTL > 0 || cfg.SoftWatermarkBytes > 0 {
		s.reg.Gauge("kavserve_retired_keys", "Keys currently folded into compact retired records.",
			func() float64 { return float64(s.sess.RetiredKeys()) })
		s.reg.CounterFunc("kavserve_retirements_total", "Lifetime quiescent-key retirements.",
			func() float64 { return float64(s.sess.Stats().Retirements) })
		s.reg.CounterFunc("kavserve_readmissions_total", "Retired keys re-admitted by later operations (floors carried forward).",
			func() float64 { return float64(s.sess.Stats().Readmissions) })
	}
	if cfg.Stream.EpochLength > 0 {
		s.reg.Gauge("kavserve_current_epoch", "Epoch window the ingest watermark currently falls in.",
			func() float64 { ep, _ := s.sess.CurrentEpoch(); return float64(ep) })
	}
	s.memUsage = cfg.MemUsage
	if s.memUsage == nil {
		s.memUsage = liveHeapBytes
	}
	if cfg.SoftWatermarkBytes > 0 || cfg.HardWatermarkBytes > 0 {
		s.reliefs = s.reg.Counter("kavserve_memory_reliefs_total",
			"Soft-watermark relief sweeps (aggressive retirement + spill) triggered by the ingest path.")
		s.reg.Gauge("kavserve_heap_live_bytes", "Live-heap probe the admission watermarks are judged against.",
			func() float64 { return float64(s.heapBytes()) })
	}
	// Spill gauges read lock-free session atomics; they sit at zero for
	// sessions without a blob store.
	s.reg.Gauge("kavserve_spilled_ops", "Operations currently resident in the spill store instead of memory.",
		func() float64 { return float64(s.sess.SpilledOps()) })
	s.reg.CounterFunc("kavserve_spills_total", "Segment spills to the blob store.",
		func() float64 { return float64(s.sess.Stats().Spills) })
	s.reg.CounterFunc("kavserve_spill_loads_total", "Spilled segments reloaded for close, merge, or dispatch.",
		func() float64 { return float64(s.sess.Stats().SpillLoads) })
	s.reg.CounterFunc("kavserve_stale_reads_total", "Reads that crossed already-dispatched segments (staleness-floor evidence).",
		func() float64 { return float64(s.sess.Stats().StaleReads) })
	s.reg.Gauge("kavserve_saturated_keys", "Keys whose k (and Δ) verdicts are horizon floors rather than exact values.",
		func() float64 { return float64(s.sess.Stats().SaturatedKeys) })

	var rs checkpoint.RecoveryStats
	if mgr != nil {
		var err error
		rs, err = mgr.Recover(s.sess)
		if err != nil {
			return nil, rs, err
		}
		if s.sess.Flushed() {
			// The directory's final checkpoint was a drain: come back up
			// already terminal, serving the final verdicts.
			s.draining.Do(func() { close(s.drainGate) })
			s.drainOnce.Do(func() { close(s.drained) })
		}
		s.reg.CounterFunc("kavserve_wal_fsyncs_total", "WAL fsync calls that hit the disk.",
			func() float64 { return float64(mgr.Stats().WAL.Fsyncs) })
		s.reg.CounterFunc("kavserve_wal_fsync_seconds_total", "Cumulative wall time inside WAL fsyncs.",
			func() float64 { return float64(mgr.Stats().WAL.FsyncNanos) / 1e9 })
		s.reg.CounterFunc("kavserve_wal_appended_records_total", "Batch records appended to the WAL.",
			func() float64 { return float64(mgr.Stats().WAL.Records) })
		s.reg.CounterFunc("kavserve_wal_appended_bytes_total", "Bytes appended to the WAL (framing included).",
			func() float64 { return float64(mgr.Stats().WAL.Bytes) })
		s.reg.CounterFunc("kavserve_wal_rotations_total", "WAL epoch rotations (one per checkpoint).",
			func() float64 { return float64(mgr.Stats().WAL.Rotations) })
		s.reg.CounterFunc("kavserve_checkpoints_total", "Checkpoints durably published.",
			func() float64 { return float64(mgr.Stats().Checkpoints) })
		s.reg.CounterFunc("kavserve_checkpoint_failures_total", "Checkpoint attempts that failed (previous recovery line kept).",
			func() float64 { return float64(mgr.Stats().CheckpointFailures) })
		s.reg.Gauge("kavserve_checkpoint_last_bytes", "Size of the newest published checkpoint.",
			func() float64 { return float64(mgr.Stats().LastCheckpointBytes) })
		s.reg.Gauge("kavserve_recovery_replayed_ops_total", "Operations replayed from the WAL at startup.",
			func() float64 { return float64(mgr.Stats().Recovery.ReplayedOps) })
		s.reg.Gauge("kavserve_recovery_replayed_records_total", "WAL records replayed at startup.",
			func() float64 { return float64(mgr.Stats().Recovery.ReplayedRecords) })
		s.reg.Gauge("kavserve_recovery_torn_bytes_total", "Torn WAL tail bytes discarded at startup.",
			func() float64 { return float64(mgr.Stats().Recovery.TornBytes) })
	}
	return s, rs, nil
}

// memPollInterval bounds how often the live-heap probe actually runs;
// between polls every ingest request reads the cached value. reliefInterval
// bounds how often a sustained soft-watermark breach re-runs the relief
// sweep (each sweep takes every shard lock once, so per-request sweeps
// would turn memory pressure into ingest-lock pressure).
const (
	memPollInterval = 100 * time.Millisecond
	reliefInterval  = 250 * time.Millisecond
)

// liveHeapBytes is the default watermark probe: the runtime's live
// heap-object bytes, from the cheap runtime/metrics read (no
// stop-the-world, unlike runtime.ReadMemStats).
func liveHeapBytes() uint64 {
	sample := []rtmetrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	rtmetrics.Read(sample)
	return sample[0].Value.Uint64()
}

// heapBytes returns the (rate-limited) live-heap probe value.
func (s *Server) heapBytes() uint64 {
	now := time.Now().UnixNano()
	last := s.memAt.Load()
	if now-last < int64(memPollInterval) || !s.memAt.CompareAndSwap(last, now) {
		return s.memVal.Load()
	}
	v := s.memUsage()
	s.memVal.Store(v)
	return v
}

// relieve runs one rate-limited soft-watermark relief sweep: every
// quiescent key retires immediately (TTL 1 — still only at safe cuts, so
// verdicts are unaffected), and open windows spill to the blob store when
// the session has one. Errors are ignored here because the session makes
// them sticky: the next ingest surfaces them with their typed reject.
func (s *Server) relieve() {
	now := time.Now().UnixNano()
	last := s.reliefAt.Load()
	if now-last < int64(reliefInterval) || !s.reliefAt.CompareAndSwap(last, now) {
		return
	}
	s.sess.RetireIdle(1)
	s.sess.SpillOpenWindows()
	if s.reliefs != nil {
		s.reliefs.Inc()
	}
}

// atomicMax lifts a to at least v.
func atomicMax(a *atomic.Int64, v int64) {
	for cur := a.Load(); v > cur && !a.CompareAndSwap(cur, v); cur = a.Load() {
	}
}

// recordViolation retains the earliest (lowest-Seq) violating segment per
// key. Verdicts land in any order from concurrent pool workers, so
// first-to-arrive would make the witness nondeterministic; min-Seq makes it
// reproducible across runs and worker counts.
func (s *Server) recordViolation(v trace.SegmentVerdict) {
	s.mu.Lock()
	if cur, seen := s.firstViols[v.Key]; !seen || v.Seq < cur.Seq {
		viol := Violation{Seq: v.Seq, Ops: v.Ops, K: v.K}
		if v.Err != nil {
			viol.Err = v.Err.Error()
		}
		s.firstViols[v.Key] = viol
	}
	s.mu.Unlock()
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /verdict", s.handleVerdict)
	mux.HandleFunc("GET /verdict/{key}", s.handleVerdictKey)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.reg.WriteTo(w)
	})
	mux.HandleFunc("POST /drain", s.handleDrain)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// Health is the /healthz document: liveness plus the two facts a cluster
// router's probe wants without a full /verdict fetch — whether this node
// still accepts ingest, and how loaded it is.
type Health struct {
	// Status is "ok" while ingest is open, "draining" once Drain started.
	Status string `json:"status"`
	// Draining mirrors Status for machine consumption.
	Draining bool `json:"draining"`
	// BufferedOps is the live buffered-operation count (the overload
	// signal).
	BufferedOps int64 `json:"bufferedOps"`
	// Keys counts distinct keys seen.
	Keys int64 `json:"keys"`
	// RetiredKeys counts keys currently folded into compact retired
	// records (zero for servers without a keyspace lifecycle).
	RetiredKeys int64 `json:"retiredKeys,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := Health{Status: "ok", BufferedOps: s.sess.BufferedOps(), Keys: s.sess.Keys(),
		RetiredKeys: s.sess.RetiredKeys()}
	if s.Draining() {
		h.Status, h.Draining = "draining", true
	}
	writeJSON(w, h)
}

// Drain flushes the session to final verdicts: open windows are committed,
// every held segment verifies, and /verdict afterwards reports exactly what
// the offline checkers report on the merged trace. Idempotent; concurrent
// callers all wait for the one flush. New ingests are rejected from the
// moment Drain is called.
func (s *Server) Drain() error {
	s.draining.Do(func() { close(s.drainGate) })
	s.drainOnce.Do(func() {
		s.drainErr = s.sess.Flush()
		close(s.drained)
	})
	<-s.drained
	return s.drainErr
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	select {
	case <-s.drainGate:
		return true
	default:
		return false
	}
}

func (s *Server) isDrained() bool {
	select {
	case <-s.drained:
		return true
	default:
		return false
	}
}

// ingestSizeBuckets classifies /ingest requests by operations accepted, a
// coarse batching histogram (size classes, not cumulative le-buckets).
var ingestSizeBuckets = []struct {
	max   int64
	label string
}{
	{16, "le16"},
	{256, "le256"},
	{4096, "le4096"},
	{1<<63 - 1, "inf"},
}

func (s *Server) recordIngestSize(n int64) {
	for i, b := range ingestSizeBuckets {
		if n <= b.max {
			s.ingestSizes[i].Inc()
			return
		}
	}
}

// IngestReject is the JSON body of a failed /ingest request. Code is a
// stable machine-readable discriminator:
//
//	"draining"     drain in progress or completed — terminal, stop sending
//	               (HTTP 409)
//	"overload"     load shed; honor Retry-After and resend the same batch
//	               (HTTP 503)
//	"out_of_order" a key violated the nondecreasing-start ingest contract
//	               (HTTP 409, sticky)
//	"buffer_limit" the configured MaxBufferedOps cap tripped (HTTP 503 with
//	               Retry-After — but sticky, unlike "overload": operations
//	               were lost, so resuming requires reconciling via /verdict)
//	"memory_pressure" the hard admission watermark tripped; honor
//	               Retry-After and resend the same batch — like
//	               "overload", nothing was lost and the condition clears
//	               as retirement/spill/GC reclaim memory (HTTP 503)
//	"quota_exceeded" a tenant quota tripped (HTTP 503 with Retry-After
//	               when transient — the buffered-ops quota drains as
//	               verification catches up — or HTTP 429 when the
//	               lifetime op or key quota is exhausted)
//	"durability"   the write-ahead log failed beneath the session (HTTP 500,
//	               sticky)
//	"malformed"    unparseable trace input (HTTP 400)
//
// Ingested reports how many operations of this request were accepted before
// the failure (accepted operations stay accepted — per-key prefixes remain
// intact). For malformed binary bodies, Offset is the request-body byte
// offset where the frame defect was detected.
type IngestReject struct {
	Code     string `json:"code"`
	Error    string `json:"error"`
	Ingested int64  `json:"ingested"`
	Offset   *int64 `json:"offset,omitempty"`
}

func (s *Server) rejectIngest(w http.ResponseWriter, status int, code string, n int64, err error) {
	s.rejectIngestAt(w, status, code, n, err, nil)
}

func (s *Server) rejectIngestAt(w http.ResponseWriter, status int, code string, n int64, err error, offset *int64) {
	s.ingestErrors.Inc()
	if status == http.StatusServiceUnavailable {
		// Back off for a beat; overload drains as verification catches up.
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	reject := IngestReject{Code: code, Ingested: n, Offset: offset}
	if err != nil {
		reject.Error = err.Error()
	}
	json.NewEncoder(w).Encode(reject)
}

// countingReader counts the bytes an ingest body delivered.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// wantsWire reports whether the request negotiated the binary wire codec
// via Content-Type (parameters after ';' are ignored; text stays the
// default for everything else).
func wantsWire(r *http.Request) bool {
	ct, _, _ := strings.Cut(r.Header.Get("Content-Type"), ";")
	return strings.TrimSpace(ct) == wire.ContentType
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.ingestReqs.Inc()
	if s.Draining() {
		s.rejectDraining.Inc()
		s.rejectIngest(w, http.StatusConflict, "draining", 0, errors.New("draining: ingest is closed"))
		return
	}
	if cap := s.cfg.OverloadOps; cap > 0 && s.sess.BufferedOps() >= cap {
		// Shed before reading the body: the producer resends the whole
		// batch after Retry-After, so nothing is half-accepted here.
		s.rejectOverload.Inc()
		s.rejectIngest(w, http.StatusServiceUnavailable, "overload", 0,
			fmt.Errorf("overloaded: %d operations buffered (cap %d)", s.sess.BufferedOps(), cap))
		return
	}
	if hard := s.cfg.HardWatermarkBytes; hard > 0 {
		if heap := s.heapBytes(); heap >= hard {
			// Shed before reading the body, like overload — but also keep
			// relieving, so the condition clears even with no polite
			// producers left to trip the soft path.
			s.rejectMemory.Inc()
			s.relieve()
			s.rejectIngest(w, http.StatusServiceUnavailable, "memory_pressure", 0,
				fmt.Errorf("memory pressure: %d live heap bytes (hard watermark %d)", heap, hard))
			return
		}
	}
	if soft := s.cfg.SoftWatermarkBytes; soft > 0 && s.heapBytes() >= soft {
		s.relieve()
	}
	// Batch-granular ingest, codec by Content-Type. Text bodies are parsed
	// in chunks by the zero-copy byte parser; binary bodies decode wire
	// frames straight into keyed operations. Either way each ingest shard's
	// lock is taken once per chunk/frame, not once per operation — no
	// per-line string ever materializes between the socket and the segment
	// accumulators.
	body := countingReader{r: r.Body}
	isWire := wantsWire(r)
	var n int64
	var err error
	start := time.Now()
	if isWire {
		n, err = s.sess.AppendWire(&body)
		s.decodeNanosWire.Add(int64(time.Since(start)))
		s.ingestBytesWire.Add(body.n)
	} else {
		n, err = s.sess.AppendTraceBatch(&body)
		s.decodeNanosText.Add(int64(time.Since(start)))
		s.ingestBytesText.Add(body.n)
	}
	s.opsIngested.Add(n)
	if err == nil {
		// Only clean requests feed the batching-size signal: an error storm
		// of rejected requests must not masquerade as tiny producer batches.
		s.recordIngestSize(n)
	}
	if err != nil {
		var derr *trace.DurabilityError
		var werr *wire.DecodeError
		switch {
		case errors.Is(err, trace.ErrSessionFlushed):
			s.rejectIngest(w, http.StatusConflict, "draining", n, err)
		case errors.Is(err, trace.ErrBufferLimit):
			s.rejectIngest(w, http.StatusServiceUnavailable, "buffer_limit", n, err)
		case errors.Is(err, trace.ErrOutOfOrder):
			s.rejectIngest(w, http.StatusConflict, "out_of_order", n, err)
		case errors.As(err, &derr):
			s.rejectIngest(w, http.StatusInternalServerError, "durability", n, err)
		case errors.As(err, &werr):
			s.rejectIngestAt(w, http.StatusBadRequest, "malformed", n, err, &werr.Offset)
		default:
			s.rejectIngest(w, http.StatusBadRequest, "malformed", n, err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"ingested\": %d}\n", n)
}

// Verdict assembles the current verdict document (final once drained).
func (s *Server) Verdict() VerdictDoc {
	drained := s.isDrained()
	doc := VerdictDoc{K: s.cfg.K, Drained: drained, Stats: s.sess.Stats()}
	if p := s.cfg.Stream.Properties; p != 0 && p != trace.PropertySetK {
		doc.Properties = p.String()
	}
	for _, kv := range s.sess.Snapshot() {
		doc.Keys = append(doc.Keys, s.keyStatus(kv, drained))
	}
	if doc.Stats.Retirements > 0 {
		rs := s.sess.RetiredSummary()
		doc.Retired = &rs
	}
	if s.sess.EpochLength() > 0 {
		doc.Epochs = s.sess.Epochs()
	}
	return doc
}

func (s *Server) keyStatus(kv trace.KeyVerdict, drained bool) KeyStatus {
	ks := KeyStatus{
		Key:        kv.Key,
		Ops:        kv.Ops,
		PendingOps: kv.PendingOps,
		SmallestK:  kv.SmallestK,
		Saturated:  kv.Saturated,
		Retired:    kv.Retired,
		Status:     "ok",
	}
	if kv.Retired && kv.Err == nil && ks.SmallestK < 1 {
		// Retired verdicts are final for the retired lifetime even while
		// the server is still live.
		ks.SmallestK = 1
	}
	if drained && kv.Err == nil && ks.SmallestK < 1 {
		// Final semantics match SmallestKByKey: a fully verified key is at
		// least 1-atomic.
		ks.SmallestK = 1
	}
	if kv.Properties.Has(trace.PropertyDelta) {
		ks.Delta = &DeltaStatus{SmallestDelta: kv.SmallestDelta, Saturated: kv.DeltaSaturated}
	}
	if kv.Properties.Has(trace.PropertyRegularity) {
		ks.Regularity = &RegularityStatus{
			Regular:        kv.IrregularReads == 0,
			Safe:           kv.UnsafeReads == 0,
			IrregularReads: kv.IrregularReads,
			UnsafeReads:    kv.UnsafeReads,
		}
	}
	switch {
	case kv.Err != nil:
		ks.Status = "error"
		ks.Err = kv.Err.Error()
	case ks.SmallestK > s.cfg.K:
		ks.Status = "violating"
	case kv.Saturated:
		// The floor is within the bound but a read out-reached the
		// horizon, so a definite "ok" would be unsound.
		ks.Status = "indeterminate"
	}
	s.mu.Lock()
	if v, ok := s.firstViols[kv.Key]; ok {
		ks.Violation = &v
	}
	s.mu.Unlock()
	if ks.Violation == nil && ks.Status == "violating" {
		// Cross-boundary stale reads establish violations without any
		// segment verdict; synthesize the witness from the staleness floor
		// so "violating" always carries evidence.
		ks.Violation = &Violation{
			Seq: -1,
			K:   ks.SmallestK,
			Err: "read returned a value from an already-dispatched segment (staleness floor)",
		}
	}
	return ks
}

func (s *Server) handleVerdict(w http.ResponseWriter, r *http.Request) {
	if arg := r.URL.Query().Get("epoch"); arg != "" {
		s.handleVerdictEpoch(w, arg)
		return
	}
	writeJSON(w, s.Verdict())
}

// handleVerdictEpoch serves /verdict?epoch=N (or ?epoch=current): the
// verdict window for one epoch.
func (s *Server) handleVerdictEpoch(w http.ResponseWriter, arg string) {
	if s.sess.EpochLength() <= 0 {
		http.Error(w, "epoch windows are not enabled (start kavserve with -epoch)", http.StatusBadRequest)
		return
	}
	cur, haveCur := s.sess.CurrentEpoch()
	var ep int64
	if arg == "current" {
		if !haveCur {
			http.Error(w, "no operations ingested yet", http.StatusNotFound)
			return
		}
		ep = cur
	} else {
		var err error
		if ep, err = strconv.ParseInt(arg, 10, 64); err != nil {
			http.Error(w, fmt.Sprintf("bad epoch %q (want an integer or \"current\")", arg), http.StatusBadRequest)
			return
		}
	}
	es, ok := s.sess.EpochSummary(ep)
	if !ok {
		http.Error(w, fmt.Sprintf("no verdicts recorded for epoch %d", ep), http.StatusNotFound)
		return
	}
	writeJSON(w, EpochDoc{
		Epoch:   es.Epoch,
		Current: haveCur && !es.Folded && es.Epoch == cur && !s.isDrained(),
		Folded:  es.Folded,
		K:       s.cfg.K,
		KAtomic: es.Errors == 0 && es.Violations == 0 && es.MaxK <= s.cfg.K,
		Stats:   es,
	})
}

func (s *Server) handleVerdictKey(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	kv, ok := s.sess.SnapshotKey(key)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown key %q", key), http.StatusNotFound)
		return
	}
	writeJSON(w, s.keyStatus(kv, s.isDrained()))
}

func (s *Server) handleDrain(w http.ResponseWriter, _ *http.Request) {
	if err := s.Drain(); err != nil {
		// The flush still drained what it could; report both.
		w.Header().Set("X-Kavserve-Drain-Error", err.Error())
	}
	writeJSON(w, s.Verdict())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
