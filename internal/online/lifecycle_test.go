package online

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kat"
	"kat/internal/trace"
)

// postText posts body to url and returns the status code and response body.
func postText(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// decodeReject parses an /ingest error body.
func decodeReject(t *testing.T, body string) IngestReject {
	t.Helper()
	var rej IngestReject
	if err := json.Unmarshal([]byte(body), &rej); err != nil {
		t.Fatalf("reject body %q: %v", body, err)
	}
	return rej
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestMemoryPressureShedding drives the admission watermarks with an
// injected heap probe: the hard watermark sheds with a typed, non-sticky
// memory_pressure reject, the soft watermark triggers relief sweeps, and
// ingest resumes as soon as the pressure clears.
func TestMemoryPressureShedding(t *testing.T) {
	var pressure atomic.Uint64
	srv := New(Config{
		K:                  2,
		Stream:             trace.StreamOptions{Workers: 1, MinSegmentOps: 1, RetireTTL: 1000, RetireSweepOps: 1},
		SoftWatermarkBytes: 500,
		HardWatermarkBytes: 1000,
		MemUsage:           func() uint64 { return pressure.Load() },
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, body := postText(t, ts.URL+"/ingest", "w a 1 0 10\n"); code != http.StatusOK {
		t.Fatalf("unpressured ingest: %d %s", code, body)
	}

	// Breach the hard watermark. The probe is poll-rate-limited, so force a
	// fresh read for the next request.
	pressure.Store(2000)
	srv.memAt.Store(0)
	resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader("w a 2 20 30\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pressured ingest: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("memory_pressure reject missing Retry-After")
	}
	if rej := decodeReject(t, string(body)); rej.Code != "memory_pressure" {
		t.Fatalf("reject code %q, want memory_pressure", rej.Code)
	}

	if _, m := getBody(t, ts.URL+"/metrics"); !strings.Contains(m, `kavserve_ingest_rejected_total{reason="memory_pressure"} 1`) {
		t.Fatalf("metrics missing memory_pressure reject count:\n%s", m)
	}

	// Soft watermark only: accepted, but a relief sweep runs.
	pressure.Store(600)
	srv.memAt.Store(0)
	srv.reliefAt.Store(0)
	if code, body := postText(t, ts.URL+"/ingest", "w a 2 20 30\n"); code != http.StatusOK {
		t.Fatalf("soft-pressured ingest: %d %s", code, body)
	}
	if _, m := getBody(t, ts.URL+"/metrics"); !strings.Contains(m, "kavserve_memory_reliefs_total") {
		t.Fatalf("metrics missing relief counter:\n%s", m)
	}

	// Pressure clears: the shed is not sticky, nothing was lost, and the
	// key's per-request prefix is intact (starts keep increasing).
	pressure.Store(0)
	srv.memAt.Store(0)
	if code, body := postText(t, ts.URL+"/ingest", "w a 3 40 50\n"); code != http.StatusOK {
		t.Fatalf("post-pressure ingest: %d %s", code, body)
	}
	final := postDrain(t, ts.URL)
	var ops int
	for _, ks := range final.Keys {
		ops += ks.Ops
	}
	if ops != 3 {
		t.Fatalf("drained ops %d, want 3 (accepted requests only)", ops)
	}
}

// TestNoQuiesceChaosSheds replays the adversarial churn variant — chained
// overlapping writes, so no key ever quiesces and retirement can reclaim
// nothing — against a hard watermark wired to the session's real buffered
// backlog. The server must degrade into typed memory_pressure sheds with
// bounded buffered growth, never accept-and-grow.
func TestNoQuiesceChaosSheds(t *testing.T) {
	tr := kat.GenerateChurn(kat.ChurnConfig{Seed: 7, Lifetimes: 8, OpsPerLifetime: 12, NoQuiesce: true})
	var b strings.Builder
	if err := kat.WriteTraceArrivalOrder(&b, tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(b.String(), "\n"), "\n")

	// The "heap probe" is the buffered-op count itself: deterministic
	// pressure that only retirement or verification could relieve, and the
	// no-quiesce trace forbids both.
	const hardOps = 40
	var srv *Server
	cfg := Config{
		K:                  2,
		Stream:             trace.StreamOptions{Workers: 1, MinSegmentOps: 1, RetireTTL: 10, RetireSweepOps: 1},
		HardWatermarkBytes: hardOps,
		MemUsage: func() uint64 {
			return uint64(srv.sess.BufferedOps())
		},
	}
	srv = New(cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const chunkLines = 8
	var accepted, shed int64
	for i := 0; i < len(lines); i += chunkLines {
		end := i + chunkLines
		if end > len(lines) {
			end = len(lines)
		}
		srv.memAt.Store(0) // force a fresh probe per request
		code, body := postText(t, ts.URL+"/ingest", strings.Join(lines[i:end], ""))
		switch code {
		case http.StatusOK:
			var ok struct {
				Ingested int64 `json:"ingested"`
			}
			if err := json.Unmarshal([]byte(body), &ok); err != nil {
				t.Fatalf("ingest body %q: %v", body, err)
			}
			accepted += ok.Ingested
		case http.StatusServiceUnavailable:
			rej := decodeReject(t, body)
			if rej.Code != "memory_pressure" {
				t.Fatalf("shed with code %q, want memory_pressure: %s", rej.Code, body)
			}
			shed++
		default:
			t.Fatalf("ingest: %d %s", code, body)
		}
	}
	if shed == 0 {
		t.Fatal("never-quiescing trace never tripped the hard watermark")
	}
	if buf := srv.sess.BufferedOps(); buf > hardOps+chunkLines {
		t.Fatalf("buffered ops %d grew past watermark %d + one chunk", buf, hardOps)
	}
	// The shed is load shedding, not a failure: the server still answers,
	// and every accepted operation is accounted for.
	live := getVerdict(t, ts.URL)
	var ops int
	for _, ks := range live.Keys {
		ops += ks.Ops
	}
	if int64(ops) != accepted {
		t.Fatalf("verdict ops %d != accepted %d", ops, accepted)
	}
}

// TestVerdictEpochEndpoint exercises /verdict?epoch=N: 400 without epoch
// windows, numbered and "current" lookups, and 404 for unseen epochs.
func TestVerdictEpochEndpoint(t *testing.T) {
	plain := New(Config{K: 2, Stream: trace.StreamOptions{Workers: 1, MinSegmentOps: 1}})
	pts := httptest.NewServer(plain.Handler())
	defer pts.Close()
	if code, body := getBody(t, pts.URL+"/verdict?epoch=0"); code != http.StatusBadRequest {
		t.Fatalf("epoch query without windows: %d %s", code, body)
	}

	srv := New(Config{K: 2, Stream: trace.StreamOptions{Workers: 1, MinSegmentOps: 1, EpochLength: 100}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, chunk := range []string{"w a 1 0 10\nw a 2 150 160\n", "w a 3 250 260\nr a 3 270 280\n"} {
		if code, body := postText(t, ts.URL+"/ingest", chunk); code != http.StatusOK {
			t.Fatalf("ingest: %d %s", code, body)
		}
	}
	if code, body := getBody(t, ts.URL+"/verdict?epoch=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad epoch arg: %d %s", code, body)
	}
	postDrain(t, ts.URL)

	code, body := getBody(t, ts.URL+"/verdict?epoch=0")
	if code != http.StatusOK {
		t.Fatalf("epoch 0: %d %s", code, body)
	}
	var doc EpochDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Epoch != 0 || doc.Current || doc.Folded {
		t.Fatalf("epoch 0 doc: %+v", doc)
	}
	if !doc.KAtomic || doc.Stats.Ops == 0 {
		t.Fatalf("epoch 0 verdict: %+v", doc)
	}

	code, body = getBody(t, ts.URL+"/verdict?epoch=current")
	if code != http.StatusOK {
		t.Fatalf("epoch current: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Epoch != 2 {
		t.Fatalf("current epoch %d, want 2 (watermark 270 / length 100)", doc.Epoch)
	}
	if doc.Current {
		t.Fatal("drained current-epoch doc still marked Current")
	}

	if code, body = getBody(t, ts.URL+"/verdict?epoch=99"); code != http.StatusNotFound {
		t.Fatalf("unseen epoch: %d %s", code, body)
	}

	// The full document carries every window, and their ops conserve.
	full := getVerdict(t, ts.URL)
	if len(full.Epochs) == 0 {
		t.Fatal("drained verdict has no epochs")
	}
	var ops int64
	for _, es := range full.Epochs {
		ops += es.Ops
	}
	if ops != 4 {
		t.Fatalf("epoch windows hold %d ops, want 4", ops)
	}
}

// TestRetiredKeyVerdictHTTP drives quiescent-key retirement purely over
// HTTP: later requests advance the watermark past the TTL, the idle key
// folds into the retired record, /verdict and /healthz surface it, and a
// late write re-admits it with the floor carried forward.
func TestRetiredKeyVerdictHTTP(t *testing.T) {
	srv := New(Config{
		K:      2,
		Stream: trace.StreamOptions{Workers: 1, MinSegmentOps: 1, IngestShards: 2, RetireTTL: 100, RetireSweepOps: 1},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Each request is one arrival instant: the batch watermark floor means
	// a single request can never retire its own keys, but request N+1 can
	// retire keys quiesced before request N's ops arrived.
	for _, chunk := range []string{
		"w a 1 0 10\nr a 1 20 30\n",
		"w b 5 1000 1010\n",
		"w c 9 5000 5010\n",
	} {
		if code, body := postText(t, ts.URL+"/ingest", chunk); code != http.StatusOK {
			t.Fatalf("ingest: %d %s", code, body)
		}
	}

	// Retirement is two-phase: the sweep commits the final cut, and a later
	// sweep folds the verdict once verification drains. Keep trickling
	// unrelated traffic until the fold lands — exactly what a live server
	// sees.
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; srv.sess.RetiredKeys() == 0; i++ {
		if time.Now().After(deadline) {
			t.Fatal("key a never retired")
		}
		line := fmt.Sprintf("w d %d %d %d\n", i+1, 6000+40*i, 6010+40*i)
		if code, body := postText(t, ts.URL+"/ingest", line); code != http.StatusOK {
			t.Fatalf("trickle ingest: %d %s", code, body)
		}
		time.Sleep(time.Millisecond)
	}

	code, body := getBody(t, ts.URL+"/verdict/a")
	if code != http.StatusOK {
		t.Fatalf("GET /verdict/a: %d %s", code, body)
	}
	var ks KeyStatus
	if err := json.Unmarshal([]byte(body), &ks); err != nil {
		t.Fatal(err)
	}
	if !ks.Retired || ks.Ops != 2 || ks.SmallestK != 1 || ks.Status != "ok" {
		t.Fatalf("retired key status: %+v", ks)
	}

	// The watermark kept advancing, so b and c may have retired too; the
	// summary covers at least a's lifetime.
	doc := getVerdict(t, ts.URL)
	if doc.Retired == nil || doc.Retired.Keys == 0 || doc.Retired.Ops < 2 {
		t.Fatalf("verdict retired summary: %+v", doc.Retired)
	}
	var health Health
	if _, hb := getBody(t, ts.URL+"/healthz"); true {
		if err := json.Unmarshal([]byte(hb), &health); err != nil {
			t.Fatal(err)
		}
	}
	if health.RetiredKeys == 0 {
		t.Fatalf("healthz retiredKeys: %+v", health)
	}
	if _, m := getBody(t, ts.URL+"/metrics"); !strings.Contains(m, "kavserve_retired_keys") {
		t.Fatalf("metrics missing retired-keys gauge:\n%s", m)
	}

	// A later write transparently re-admits the retired key.
	if code, body := postText(t, ts.URL+"/ingest", "w a 7 9000 9010\n"); code != http.StatusOK {
		t.Fatalf("readmit ingest: %d %s", code, body)
	}
	for srv.sess.Stats().Readmissions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("key a never re-admitted")
		}
		time.Sleep(time.Millisecond)
	}
	code, body = getBody(t, ts.URL+"/verdict/a")
	if code != http.StatusOK {
		t.Fatalf("GET /verdict/a after readmit: %d %s", code, body)
	}
	// Decode into a fresh struct: retired is omitempty, so reusing ks would
	// keep the stale true from the pre-readmit response.
	var readmitted KeyStatus
	if err := json.Unmarshal([]byte(body), &readmitted); err != nil {
		t.Fatal(err)
	}
	if readmitted.Retired || readmitted.Ops != 3 {
		t.Fatalf("re-admitted key status: %+v", readmitted)
	}
	final := postDrain(t, ts.URL)
	for _, ks := range final.Keys {
		if ks.Status != "ok" {
			t.Fatalf("final key %s: %+v", ks.Key, ks)
		}
	}
}

// TestTenantQuotasAndIsolation covers the multi-tenant frontend: typed
// quota rejects per quota class, 404 for unknown tenants, tenant-labeled
// metrics, and one tenant at quota never blocking another under
// concurrent load.
func TestTenantQuotasAndIsolation(t *testing.T) {
	pool := kat.NewPool(2)
	defer pool.Close()
	m, err := NewMulti(
		Config{K: 2, Stream: trace.StreamOptions{Pool: pool, MinSegmentOps: 1000}},
		[]TenantConfig{
			{Name: "alpha", Quotas: TenantQuotas{MaxOps: 4}},
			{Name: "beta"},
			{Name: "gamma", Quotas: TenantQuotas{MaxBufferedOps: 2}},
			{Name: "delta", Quotas: TenantQuotas{MaxKeys: 1}},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	if code, body := postText(t, ts.URL+"/ingest/nobody", "w a 1 0 10\n"); code != http.StatusNotFound {
		t.Fatalf("unknown tenant: %d %s", code, body)
	}

	// alpha: lifetime op quota. 4 ops fit; the 5th request is 429 and
	// permanent (no Retry-After).
	if code, body := postText(t, ts.URL+"/ingest/alpha", "w a 1 0 10\nw a 2 20 30\nw a 3 40 50\nw a 4 60 70\n"); code != http.StatusOK {
		t.Fatalf("alpha ingest: %d %s", code, body)
	}
	resp, err := http.Post(ts.URL+"/ingest/alpha", "text/plain", strings.NewReader("w a 5 80 90\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alpha over quota: %d %s", resp.StatusCode, body)
	}
	if rej := decodeReject(t, string(body)); rej.Code != "quota_exceeded" {
		t.Fatalf("alpha reject code %q", rej.Code)
	}
	if resp.Header.Get("Retry-After") != "" {
		t.Fatal("lifetime op quota reject carries Retry-After (it is permanent)")
	}

	// gamma: buffered-op quota, transient → 503 with Retry-After.
	if code, body := postText(t, ts.URL+"/ingest/gamma", "w g 1 0 10\nw g 2 20 30\n"); code != http.StatusOK {
		t.Fatalf("gamma ingest: %d %s", code, body)
	}
	resp, err = http.Post(ts.URL+"/ingest/gamma", "text/plain", strings.NewReader("w g 3 40 50\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("gamma over quota: %d %s", resp.StatusCode, body)
	}
	if rej := decodeReject(t, string(body)); rej.Code != "quota_exceeded" {
		t.Fatalf("gamma reject code %q", rej.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("buffered-op quota reject missing Retry-After")
	}

	// delta: distinct-key quota.
	if code, body := postText(t, ts.URL+"/ingest/delta", "w d 1 0 10\n"); code != http.StatusOK {
		t.Fatalf("delta ingest: %d %s", code, body)
	}
	if code, body := postText(t, ts.URL+"/ingest/delta", "w e 1 0 10\n"); code != http.StatusTooManyRequests {
		t.Fatalf("delta over key quota: %d %s", code, body)
	}

	// beta keeps ingesting at full tilt while the other tenants sit at
	// their quotas: per-goroutine keys keep each stream's starts
	// nondecreasing, and alpha's rejects must stay typed throughout.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				line := fmt.Sprintf("w b%d %d %d %d\n", g, i+1, i*20, i*20+10)
				code, body := postText(t, ts.URL+"/ingest/beta", line)
				if code != http.StatusOK {
					errs <- fmt.Errorf("beta[%d] ingest %d: %d %s", g, i, code, body)
					return
				}
			}
		}(g)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				code, body := postText(t, ts.URL+"/ingest/alpha", fmt.Sprintf("w a %d %d %d\n", 100+g*10+i, 1000+i*20, 1010+i*20))
				if code != http.StatusTooManyRequests {
					errs <- fmt.Errorf("alpha[%d] expected 429, got %d %s", g, code, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	betaSrv, _ := m.Tenant("beta")
	if ops := betaSrv.sess.Stats().Ops; ops != 40 {
		t.Fatalf("beta ingested %d ops, want 40", ops)
	}
	alphaSrv, _ := m.Tenant("alpha")
	if ops := alphaSrv.sess.Stats().Ops; ops != 4 {
		t.Fatalf("alpha ingested %d ops, want 4 (quota)", ops)
	}

	// Merged metrics label every sample by tenant.
	_, metricsBody := getBody(t, ts.URL+"/metrics")
	for _, name := range []string{"alpha", "beta", "gamma", "delta"} {
		if !strings.Contains(metricsBody, `tenant="`+name+`"`) {
			t.Fatalf("metrics missing tenant=%q labels", name)
		}
	}
	if !strings.Contains(metricsBody, `kavserve_ingest_rejected_total{tenant="alpha",reason="quota_exceeded"}`) {
		t.Fatalf("metrics missing alpha quota rejects:\n%s", metricsBody)
	}

	// Per-tenant drain leaves the others live.
	code, _ := func() (int, string) {
		resp, err := http.Post(ts.URL+"/drain/alpha", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}()
	if code != http.StatusOK {
		t.Fatalf("drain alpha: %d", code)
	}
	if code, body := postText(t, ts.URL+"/ingest/beta", "w zz 1 0 10\n"); code != http.StatusOK {
		t.Fatalf("beta ingest after alpha drain: %d %s", code, body)
	}

	// The aggregate verdict document is keyed by tenant name.
	_, vb := getBody(t, ts.URL+"/verdict")
	var docs map[string]VerdictDoc
	if err := json.Unmarshal([]byte(vb), &docs); err != nil {
		t.Fatal(err)
	}
	if len(docs) != 4 || !docs["alpha"].Drained || docs["beta"].Drained {
		t.Fatalf("aggregate verdicts: drained alpha=%v beta=%v tenants=%d",
			docs["alpha"].Drained, docs["beta"].Drained, len(docs))
	}
}
