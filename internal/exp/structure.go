package exp

import (
	"fmt"
	"strings"

	"kat/internal/core"
	"kat/internal/generator"
	"kat/internal/history"
	"kat/internal/lbt"
	"kat/internal/metrics"
	"kat/internal/zone"
)

// E5Figure3 reproduces the Stage 1 example of Figure 3: eight forward zones
// in three chains plus seven backward zones must decompose into exactly
// three maximal chunks with BZ2, BZ5, BZ7 dangling.
func E5Figure3() Table {
	fz := func(w int, lo, hi int64) zone.Zone { return zone.Zone{Write: w, MinFinish: lo, MaxStart: hi} }
	bz := func(w int, lo, hi int64) zone.Zone { return zone.Zone{Write: w, MinFinish: hi, MaxStart: lo} }
	zs := []zone.Zone{
		fz(1, 0, 20),
		fz(2, 30, 50), fz(3, 45, 70), fz(4, 65, 90),
		fz(5, 100, 140), fz(6, 110, 125), fz(7, 120, 160), fz(8, 150, 180),
		bz(11, 5, 15), bz(12, 22, 28), bz(13, 35, 42), bz(14, 72, 88),
		bz(15, 92, 98), bz(16, 112, 118), bz(17, 185, 195),
	}
	dec := zone.DecomposeZones(zs)
	name := func(w int) string {
		if w <= 8 {
			return fmt.Sprintf("FZ%d", w)
		}
		return fmt.Sprintf("BZ%d", w-10)
	}
	names := func(ws []int) string {
		out := make([]string, len(ws))
		for i, w := range ws {
			out[i] = name(w)
		}
		if len(out) == 0 {
			return "-"
		}
		return strings.Join(out, ",")
	}
	t := Table{
		ID:     "E5",
		Title:  "Figure 3 chunk decomposition (FZF Stage 1)",
		Header: []string{"chunk", "interval", "forward zones", "backward zones"},
		Notes:  "Paper's expected answer: chunks {FZ1,BZ1}, {FZ2,FZ3,FZ4,BZ3,BZ4}, {FZ5,FZ6,FZ7,FZ8,BZ6}; dangling BZ2, BZ5, BZ7.",
	}
	for i, ch := range dec.Chunks {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("[%d,%d]", ch.Lo, ch.Hi),
			names(ch.Forward),
			names(ch.Backward),
		})
	}
	t.Rows = append(t.Rows, []string{"dangling", "-", "-", names(dec.Dangling)})
	return t
}

// E8SmallestK sweeps staleness-injection depth and reports the smallest-k
// distribution (Section II-B: smallest k via search over the k-AV decision
// procedure). k should track injected depth + 1.
func E8SmallestK() Table {
	t := Table{
		ID:     "E8",
		Title:  "Smallest k under staleness injection (Section II-B search)",
		Header: []string{"injected extra depth", "histories", "k distribution", "max k"},
		Notes:  "Base histories are 1-atomic by construction; redirecting reads d writes back should push the smallest k toward d+1.",
	}
	const trials = 20
	for _, depth := range []int{0, 1, 2, 3} {
		var corpus []*history.History
		for seed := int64(0); seed < trials; seed++ {
			base := generator.KAtomic(generator.Config{
				Seed: seed, Ops: 40, Concurrency: 1, StalenessDepth: 0, ReadFraction: 0.5,
			})
			if depth == 0 {
				corpus = append(corpus, base)
				continue
			}
			corpus = append(corpus, generator.InjectStaleness(base, seed+500, 0.5, depth))
		}
		d := metrics.SmallestKDistribution(corpus, core.Options{})
		maxK := 0
		for k := range d.Counts {
			if k > maxK {
				maxK = k
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(depth), fmt.Sprint(trials), d.String(), fmt.Sprint(maxK),
		})
	}
	return t
}

// E9WitnessProfile runs LBT on a Figure 1–style history and reports the
// staleness profile of the witness order it produces — every read must be at
// distance 0 or 1 from its dictating write (the write slot / read container
// structure).
func E9WitnessProfile() Table {
	t := Table{
		ID:     "E9",
		Title:  "LBT witness structure (Figure 1/2: write slots and read containers)",
		Header: []string{"history", "ops", "reads at distance 0", "distance 1", "distance >1"},
		Notes:  "A 2-atomic witness may never separate a read from its write by more than one other write; distance >1 must be zero everywhere.",
	}
	cases := []struct {
		name string
		h    *history.History
	}{
		{"figure-1 shaped", history.MustParse(`
w 1 0 10
r 1 12 20
r 1 22 28
w 2 30 40
r 2 42 50
r 1 44 52
w 3 54 64
r 3 66 74
r 2 68 76`)},
		{"generated depth-1", generator.KAtomic(generator.Config{
			Seed: 31, Ops: 400, Concurrency: 4, StalenessDepth: 1, ReadFraction: 0.6})},
	}
	for _, cs := range cases {
		p, err := history.Prepare(history.Normalize(cs.h))
		if err != nil {
			continue
		}
		res := lbt.Check(p, lbt.Options{})
		if !res.Atomic {
			t.Rows = append(t.Rows, []string{cs.name, fmt.Sprint(p.Len()), "REJECTED", "-", "-"})
			continue
		}
		st, err := metrics.ReadStaleness(p, res.Witness)
		if err != nil {
			continue
		}
		var d0, d1, dMore int
		for _, s := range st {
			switch {
			case s == 0:
				d0++
			case s == 1:
				d1++
			default:
				dMore++
			}
		}
		t.Rows = append(t.Rows, []string{
			cs.name, fmt.Sprint(p.Len()), fmt.Sprint(d0), fmt.Sprint(d1), fmt.Sprint(dMore),
		})
	}
	return t
}
