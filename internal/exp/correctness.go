package exp

import (
	"fmt"

	"kat/internal/fzf"
	"kat/internal/generator"
	"kat/internal/history"
	"kat/internal/lbt"
	"kat/internal/oracle"
	"kat/internal/witness"
)

// E1Agreement cross-checks LBT, FZF, and the exact oracle on randomized
// histories of several shapes (Theorems 3.1 and 4.5: both algorithms decide
// 2-atomicity exactly). Witnesses of positive answers are re-validated
// independently.
func E1Agreement() Table {
	type shape struct {
		name string
		cfg  generator.Config
		mut  bool
	}
	shapes := []shape{
		{name: "random sequentialish", cfg: generator.Config{Ops: 40, Concurrency: 2}},
		{name: "random concurrent", cfg: generator.Config{Ops: 40, Concurrency: 8}},
		{name: "random read-heavy", cfg: generator.Config{Ops: 40, Concurrency: 5, ReadFraction: 0.75}},
		{name: "2-atomic generated", cfg: generator.Config{Ops: 60, Concurrency: 4, StalenessDepth: 1}},
		{name: "mutated (stale-injected)", cfg: generator.Config{Ops: 60, Concurrency: 4, StalenessDepth: 1}, mut: true},
	}
	const trials = 50
	t := Table{
		ID:    "E1",
		Title: "Correctness agreement: LBT vs FZF vs exact oracle (k=2)",
		Header: []string{"workload", "trials", "2-atomic", "not 2-atomic",
			"LBT≠oracle", "FZF≠oracle", "bad witnesses"},
		Notes: "Reproduces Theorems 3.1 and 4.5: all three deciders must agree on every history; every YES must carry an independently validated witness.",
	}
	for _, sh := range shapes {
		var yes, no, lbtDiff, fzfDiff, badWit int
		for seed := int64(0); seed < trials; seed++ {
			cfg := sh.cfg
			cfg.Seed = seed
			var h *history.History
			if sh.cfg.StalenessDepth > 0 {
				h = generator.KAtomic(cfg)
			} else {
				h = generator.Random(cfg)
			}
			if sh.mut {
				h = generator.InjectStaleness(h, seed+1000, 0.3, 3)
			}
			p, err := history.Prepare(h)
			if err != nil {
				continue
			}
			want, err := oracle.CheckK(p, 2, oracle.Options{})
			if err != nil {
				continue
			}
			if want.Atomic {
				yes++
			} else {
				no++
			}
			l := lbt.Check(p, lbt.Options{})
			f := fzf.Check(p)
			if l.Atomic != want.Atomic {
				lbtDiff++
			}
			if f.Atomic != want.Atomic {
				fzfDiff++
			}
			if l.Atomic {
				if err := witness.Validate(p, l.Witness, 2); err != nil {
					badWit++
				}
			}
			if f.Atomic {
				if err := witness.Validate(p, f.Witness, 2); err != nil {
					badWit++
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			sh.name, fmt.Sprint(trials), fmt.Sprint(yes), fmt.Sprint(no),
			fmt.Sprint(lbtDiff), fmt.Sprint(fzfDiff), fmt.Sprint(badWit),
		})
	}
	return t
}
