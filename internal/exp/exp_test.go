package exp

import (
	"strings"
	"testing"
)

func TestE5Figure3MatchesPaper(t *testing.T) {
	tab := E5Figure3()
	if len(tab.Rows) != 4 { // 3 chunks + dangling row
		t.Fatalf("rows = %d, want 4:\n%+v", len(tab.Rows), tab.Rows)
	}
	wantForward := []string{"FZ1", "FZ2,FZ3,FZ4", "FZ5,FZ6,FZ7,FZ8"}
	wantBackward := []string{"BZ1", "BZ3,BZ4", "BZ6"}
	for i := 0; i < 3; i++ {
		if tab.Rows[i][2] != wantForward[i] {
			t.Errorf("chunk %d forward = %q, want %q", i+1, tab.Rows[i][2], wantForward[i])
		}
		if tab.Rows[i][3] != wantBackward[i] {
			t.Errorf("chunk %d backward = %q, want %q", i+1, tab.Rows[i][3], wantBackward[i])
		}
	}
	if tab.Rows[3][3] != "BZ2,BZ5,BZ7" {
		t.Errorf("dangling = %q, want BZ2,BZ5,BZ7", tab.Rows[3][3])
	}
}

func TestE1NoDisagreements(t *testing.T) {
	tab := E1Agreement()
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tab.Rows {
		if row[4] != "0" || row[5] != "0" || row[6] != "0" {
			t.Errorf("workload %q has disagreements/bad witnesses: %v", row[0], row)
		}
	}
}

func TestE9NoDeepReads(t *testing.T) {
	tab := E9WitnessProfile()
	for _, row := range tab.Rows {
		if row[4] != "0" {
			t.Errorf("witness with distance>1 reads: %v", row)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	for _, id := range Order() {
		if _, ok := reg[id]; !ok {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(reg) != len(Order()) {
		t.Errorf("registry has %d entries, order lists %d", len(reg), len(Order()))
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{
		ID: "EX", Title: "demo", Header: []string{"a", "b"},
		Rows: [][]string{{"1", "2"}}, Notes: "note",
	}
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := b.String()
	for _, want := range []string{"## EX — demo", "| a | b |", "| 1 | 2 |", "note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestScalingExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling experiments are slow")
	}
	for _, fn := range []func() Table{E6Reduction, E8SmallestK} {
		tab := fn()
		if len(tab.Rows) == 0 {
			t.Errorf("experiment %s produced no rows", tab.ID)
		}
	}
}

func TestE6NoDisagreements(t *testing.T) {
	if testing.Short() {
		t.Skip("reduction sweep is slow")
	}
	tab := E6Reduction()
	for _, row := range tab.Rows {
		if row[4] != "0" {
			t.Errorf("reduction disagreement: %v", row)
		}
	}
}
