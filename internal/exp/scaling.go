package exp

import (
	"fmt"
	"time"

	"kat/internal/fzf"
	"kat/internal/generator"
	"kat/internal/history"
	"kat/internal/lbt"
)

// E2LBTPractical measures LBT runtime versus history size n at small, fixed
// write concurrency — the "common case that arises in practice" for which
// Theorem 3.2 predicts quasilinear O(n log n + c·n) behavior. The time/op
// column should stay near-constant (up to log factors) as n quadruples.
func E2LBTPractical() Table {
	t := Table{
		ID:     "E2",
		Title:  "LBT scaling with n at fixed small c (Theorem 3.2, practical regime)",
		Header: []string{"n", "c (measured)", "LBT ms", "ms growth vs prev", "ns/op"},
		Notes:  "Quasilinear: quadrupling n should roughly quadruple total time (growth ≈ 4), keeping ns/op nearly flat.",
	}
	var prev time.Duration
	for _, n := range []int{2000, 8000, 32000, 128000} {
		h := generator.KAtomic(generator.Config{
			Seed: 42, Ops: n, Concurrency: 4, StalenessDepth: 1, ReadFraction: 0.6,
		})
		p, err := history.Prepare(h)
		if err != nil {
			continue
		}
		c := history.Measure(h).MaxConcurrentWrites
		var res lbt.Result
		d := timeIt(func() { res = lbt.Check(p, lbt.Options{}) })
		if !res.Atomic {
			t.Rows = append(t.Rows, []string{fmt.Sprint(n), "-", "REJECTED", "-", "-"})
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(c), ms(d), ratio(prev, d),
			fmt.Sprintf("%.0f", float64(d.Nanoseconds())/float64(n)),
		})
		prev = d
	}
	return t
}

// E3LBTConcurrency measures LBT runtime versus write concurrency c at fixed
// n — the worst-case driver in Theorem 3.2's O(n log n + c·n) bound. Time
// should grow roughly linearly with c.
func E3LBTConcurrency() Table {
	t := Table{
		ID:     "E3",
		Title:  "LBT scaling with write concurrency c at fixed n (Theorem 3.2, worst-case driver)",
		Header: []string{"target c", "c (measured)", "n", "LBT ms", "ms growth vs prev"},
		Notes:  "The O(c·n) term dominates as c grows: time should scale roughly linearly in c (growth ≈ 4 per 4x step), approaching quadratic overall when c ≈ n.",
	}
	const n = 20000
	var prev time.Duration
	for _, c := range []int{2, 8, 32, 128, 512} {
		h := generator.Adversarial(generator.Config{
			Seed: 7, Ops: n, Concurrency: c,
		})
		p, err := history.Prepare(h)
		if err != nil {
			continue
		}
		meas := history.Measure(h).MaxConcurrentWrites
		var res lbt.Result
		d := timeIt(func() { res = lbt.Check(p, lbt.Options{}) })
		status := ms(d)
		if !res.Atomic {
			status = "REJECTED"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(c), fmt.Sprint(meas), fmt.Sprint(n), status, ratio(prev, d),
		})
		prev = d
	}
	return t
}

// E4Crossover compares LBT and FZF across n at low and high concurrency
// (Theorem 4.6: FZF is O(n log n) regardless of c, so it wins when c is
// large while simple LBT wins or ties when c is small).
func E4Crossover() Table {
	t := Table{
		ID:     "E4",
		Title:  "LBT vs FZF crossover (Theorem 4.6: FZF quasilinear for any c)",
		Header: []string{"n", "c (target)", "LBT ms", "FZF ms", "FZF/LBT"},
		Notes:  "At small c the two are comparable (LBT often ahead on constants); as c grows LBT's c·n term dominates while FZF stays quasilinear — the paper's motivation for FZF.",
	}
	for _, c := range []int{4, 256} {
		for _, n := range []int{4000, 16000, 64000} {
			h := generator.Adversarial(generator.Config{Seed: 11, Ops: n, Concurrency: c})
			p, err := history.Prepare(h)
			if err != nil {
				continue
			}
			var lres lbt.Result
			ld := timeIt(func() { lres = lbt.Check(p, lbt.Options{}) })
			var fres fzf.Result
			fd := timeIt(func() { fres = fzf.Check(p) })
			lms, fms := ms(ld), ms(fd)
			if !lres.Atomic {
				lms = "REJECTED"
			}
			if !fres.Atomic {
				fms = "REJECTED"
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(n), fmt.Sprint(c), lms, fms, ratio(ld, fd),
			})
		}
	}
	return t
}

// E10Ablation compares LBT with and without iterative-deepening candidate
// racing — the design choice Theorem 3.2's proof calls out ("a successful
// candidate is examined late, while early candidates take a long time to
// fail"). Two workloads: benign adversarial-concurrency histories, where the
// first candidate always succeeds and deepening must cost ~nothing, and the
// staircase-trap construction (generator.LBTTrap) with an adversarial
// candidate order, which realizes the pathology: per epoch, two failing
// candidates each chain through the whole staircase unless deepening cuts
// them off at the doubling budget.
func E10Ablation() Table {
	t := Table{
		ID:     "E10",
		Title:  "Ablation: LBT iterative deepening on vs off (Theorem 3.2 discussion)",
		Header: []string{"workload", "n", "deepening ms", "no-deepening ms", "slowdown", "steps on", "steps off"},
		Notes:  "Benign rows: deepening is free. Trap rows (adversarial candidate order): without deepening every epoch re-walks the full failing chain; the slowdown grows with chain length — exactly the pathology Figure 2's unspecified candidate order permits.",
	}
	type wl struct {
		name  string
		h     *history.History
		worst bool
	}
	wls := []wl{
		{"benign c=16", generator.Adversarial(generator.Config{Seed: 23, Ops: 16000, Concurrency: 16}), false},
		{"benign c=128", generator.Adversarial(generator.Config{Seed: 23, Ops: 16000, Concurrency: 128}), false},
		{"trap chain=1000", generator.LBTTrap(1000, 20), true},
		{"trap chain=4000", generator.LBTTrap(4000, 40), true},
	}
	for _, w := range wls {
		p, err := history.Prepare(w.h)
		if err != nil {
			continue
		}
		var resOn, resOff lbt.Result
		don := timeIt(func() {
			resOn = lbt.Check(p, lbt.Options{WorstCaseOrder: w.worst})
		})
		doff := timeIt(func() {
			resOff = lbt.Check(p, lbt.Options{NoDeepening: true, WorstCaseOrder: w.worst})
		})
		t.Rows = append(t.Rows, []string{
			w.name, fmt.Sprint(p.Len()), ms(don), ms(doff), ratio(don, doff),
			fmt.Sprint(resOn.Steps), fmt.Sprint(resOff.Steps),
		})
	}
	return t
}
