package exp

import (
	"fmt"

	"kat/internal/fzf"
	"kat/internal/history"
	"kat/internal/quorum"
	"kat/internal/regularity"
	"kat/internal/zone"
)

// E11Properties reproduces the Section I comparison between k-atomicity and
// the classical weak properties: safety and regularity "fail to capture"
// sloppy-quorum behavior because any isolated stale read violates them,
// while 2-atomicity absorbs bounded staleness. On weak-quorum histories the
// 2-atomic rate should sit well above the regular rate.
func E11Properties() Table {
	t := Table{
		ID:    "E11",
		Title: "Safety/regularity vs k-atomicity on quorum histories (Section I comparison)",
		Header: []string{"N", "R", "W", "skew", "runs",
			"% safe", "% regular", "% 1-atomic", "% 2-atomic"},
		Notes: "The paper's Section I point: regularity sits between 1-atomicity and safety and rejects bounded staleness outright, so on weak quorums '% 2-atomic' exceeds '% regular' — k-atomicity is the property that actually describes these systems.",
	}
	type cfg struct {
		n, r, w int
		skew    int64
	}
	cfgs := []cfg{
		{n: 3, r: 2, w: 2},
		{n: 5, r: 1, w: 1},
		{n: 5, r: 1, w: 1, skew: 25},
	}
	const runs = 25
	for _, c := range cfgs {
		var safe, regular, atomic1, atomic2, total int
		for seed := int64(0); seed < runs; seed++ {
			h, _, err := quorum.Run(quorum.Config{
				Seed: seed, Replicas: c.n, ReadQuorum: c.r, WriteQuorum: c.w,
				Clients: 4, OpsPerClient: 10, ClockSkew: c.skew, MaxDelay: 20,
			})
			if err != nil {
				continue
			}
			p, err := history.Prepare(h)
			if err != nil {
				continue
			}
			total++
			v := regularity.Check(p)
			if v.Safe {
				safe++
			}
			if v.Regular {
				regular++
			}
			if ok, _ := zone.Check1Atomic(p); ok {
				atomic1++
			}
			if fzf.Check(p).Atomic {
				atomic2++
			}
		}
		pct := func(n int) string {
			if total == 0 {
				return "-"
			}
			return fmt.Sprintf("%.0f", 100*float64(n)/float64(total))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(c.n), fmt.Sprint(c.r), fmt.Sprint(c.w), fmt.Sprint(c.skew),
			fmt.Sprint(total), pct(safe), pct(regular), pct(atomic1), pct(atomic2),
		})
	}
	return t
}
