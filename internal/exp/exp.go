// Package exp implements the reproduction experiments E1–E10 catalogued in
// DESIGN.md and EXPERIMENTS.md: correctness agreement matrices, the runtime
// scaling claims of Theorems 3.2 and 4.6, the Figure 3 chunk decomposition,
// the Theorem 5.1 reduction, the quorum-store staleness study the paper's
// Section VII calls for, smallest-k distributions, and the iterative-
// deepening ablation. The cmd/kavbench binary renders each experiment as a
// table; bench_test.go at the repository root exposes the same workloads as
// testing.B benchmarks.
package exp

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// Render writes the table as GitHub-flavored markdown.
func (t Table) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Header, " | "))
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "\n%s\n", t.Notes)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// timeIt runs fn once and returns the wall-clock duration.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// ms renders a duration in milliseconds with 3 decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000.0)
}

// ratio renders b/a with 2 decimals ("-" when a is zero).
func ratio(a, b time.Duration) string {
	if a <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(b)/float64(a))
}

// Registry returns every experiment keyed by lowercase ID.
func Registry() map[string]func() Table {
	return map[string]func() Table{
		"e1":  E1Agreement,
		"e2":  E2LBTPractical,
		"e3":  E3LBTConcurrency,
		"e4":  E4Crossover,
		"e5":  E5Figure3,
		"e6":  E6Reduction,
		"e7":  E7Quorum,
		"e8":  E8SmallestK,
		"e9":  E9WitnessProfile,
		"e10": E10Ablation,
		"e11": E11Properties,
		"e12": E12Delta,
	}
}

// Order lists experiment IDs in presentation order.
func Order() []string {
	return []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12"}
}

// Describe returns a one-line description without running the experiment.
func Describe(id string) string {
	desc := map[string]string{
		"e1":  "Correctness agreement: LBT vs FZF vs exact oracle (k=2)",
		"e2":  "LBT scaling with n at fixed small c (Theorem 3.2, practical regime)",
		"e3":  "LBT scaling with write concurrency c (Theorem 3.2, worst-case driver)",
		"e4":  "LBT vs FZF crossover (Theorem 4.6)",
		"e5":  "Figure 3 chunk decomposition (FZF Stage 1)",
		"e6":  "k-WAV NP-completeness reduction from bin packing (Theorem 5.1, Figure 5)",
		"e7":  "k-atomicity of a sloppy-quorum store vs configuration (Section VII study)",
		"e8":  "Smallest k under staleness injection (Section II-B search)",
		"e9":  "LBT witness structure (Figures 1 and 2)",
		"e10": "Ablation: LBT iterative deepening on vs off",
		"e11": "Safety/regularity vs k-atomicity on quorum histories (Section I)",
		"e12": "Time staleness Δ of a sloppy-quorum store (ref. [10])",
	}
	return desc[id]
}
