package exp

import (
	"fmt"
	"math/rand"
	"time"

	"kat/internal/history"
	"kat/internal/oracle"
	"kat/internal/wav"
	"kat/internal/witness"
)

// validateWeightedQuiet re-validates a weighted witness, returning only
// success/failure (timing harness use).
func validateWeightedQuiet(p *history.Prepared, order []int, bound int64) bool {
	return witness.ValidateWeighted(p, order, bound) == nil
}

// E6Reduction validates Theorem 5.1 empirically: random small bin-packing
// instances agree with their k-WAV reductions, and the exact weighted solver
// exhibits the expected exponential growth while witness validation stays
// polynomial (the NP membership half of the proof).
func E6Reduction() Table {
	t := Table{
		ID:    "E6",
		Title: "k-WAV NP-completeness (Figure 5 reduction from bin packing, Theorem 5.1)",
		Header: []string{"items", "bins", "instances", "agreements", "disagreements",
			"exact k-WAV ms (avg)", "witness check ms (avg)"},
		Notes: "Agreement must be total. The exact solver's time grows combinatorially with item count; validating a witness stays cheap — the NP-membership asymmetry.",
	}
	rng := rand.New(rand.NewSource(5))
	for _, nItems := range []int{2, 4, 6, 8} {
		const instances = 12
		bins := 2
		var agree, disagree int
		var solveTotal, checkTotal time.Duration
		var solved int
		for i := 0; i < instances; i++ {
			cap := int64(4 + rng.Intn(6))
			sizes := make([]int64, nItems)
			for j := range sizes {
				sizes[j] = 1 + rng.Int63n(cap)
			}
			bp := wav.BinPacking{Sizes: sizes, Capacity: cap, Bins: bins}
			want := bp.Solvable()
			red, err := wav.Reduce(bp)
			if err != nil {
				continue
			}
			p, err := history.Prepare(red.History)
			if err != nil {
				continue
			}
			var res oracle.Result
			var serr error
			solveTotal += timeIt(func() {
				res, serr = oracle.CheckWeighted(p, red.Bound, oracle.Options{})
			})
			if serr != nil {
				continue
			}
			solved++
			if res.Atomic == want {
				agree++
			} else {
				disagree++
			}
			if res.Atomic {
				checkTotal += timeIt(func() {
					_ = validateWeightedQuiet(p, res.Witness, red.Bound)
				})
			}
		}
		avg := func(total time.Duration, n int) string {
			if n == 0 {
				return "-"
			}
			return ms(total / time.Duration(n))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(nItems), fmt.Sprint(bins), fmt.Sprint(instances),
			fmt.Sprint(agree), fmt.Sprint(disagree),
			avg(solveTotal, solved), avg(checkTotal, agree),
		})
	}
	return t
}
