package exp

import (
	"fmt"
	"sort"

	"kat/internal/delta"
	"kat/internal/quorum"
)

// E12Delta measures time-based staleness (Δ-atomicity, the paper's
// reference [10]) on the same quorum configurations as E7: for each run the
// smallest Δ making the history 1-atomic, reported as a distribution. Where
// E7 counts versions behind, E12 counts simulated time units behind — the
// number an operator would put in an SLO.
func E12Delta() Table {
	t := Table{
		ID:    "E12",
		Title: "Time staleness Δ of a sloppy-quorum store (Golab–Li–Shah metric, ref. [10])",
		Header: []string{"N", "R", "W", "skew", "runs",
			"% Δ=0", "median Δ", "max Δ"},
		Notes: "Δ=0 coincides with linearizability; the Δ tail is the staleness SLO a weak configuration could honestly advertise. Timestamps are normalized ranks, so Δ is in rank units (relative scale).",
	}
	type cfg struct {
		n, r, w int
		skew    int64
	}
	cfgs := []cfg{
		{n: 3, r: 2, w: 2},
		{n: 3, r: 1, w: 1},
		{n: 5, r: 1, w: 1},
		{n: 5, r: 1, w: 1, skew: 25},
	}
	const runs = 25
	for _, c := range cfgs {
		var deltas []int64
		for seed := int64(0); seed < runs; seed++ {
			h, _, err := quorum.Run(quorum.Config{
				Seed: seed, Replicas: c.n, ReadQuorum: c.r, WriteQuorum: c.w,
				Clients: 4, OpsPerClient: 10, ClockSkew: c.skew, MaxDelay: 20,
			})
			if err != nil {
				continue
			}
			d, err := delta.Smallest(h)
			if err != nil {
				continue
			}
			deltas = append(deltas, d)
		}
		if len(deltas) == 0 {
			continue
		}
		sort.Slice(deltas, func(i, j int) bool { return deltas[i] < deltas[j] })
		zero := 0
		for _, d := range deltas {
			if d == 0 {
				zero++
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(c.n), fmt.Sprint(c.r), fmt.Sprint(c.w), fmt.Sprint(c.skew),
			fmt.Sprint(len(deltas)),
			fmt.Sprintf("%.0f", 100*float64(zero)/float64(len(deltas))),
			fmt.Sprint(deltas[len(deltas)/2]),
			fmt.Sprint(deltas[len(deltas)-1]),
		})
	}
	return t
}
