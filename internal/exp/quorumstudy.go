package exp

import (
	"fmt"

	"kat/internal/core"
	"kat/internal/history"
	"kat/internal/metrics"
	"kat/internal/quorum"
)

// E7Quorum is the study Section VII proposes: run a (simulated) quorum-
// replicated store under different quorum configurations and measure how
// often its histories are 1-, 2-, and 3-atomic. Expected shape: strict
// quorums (R+W > N) are overwhelmingly 1-atomic; shrinking quorums and
// adding clock skew push mass toward k=2 and beyond.
func E7Quorum() Table {
	t := Table{
		ID:    "E7",
		Title: "k-atomicity of a sloppy-quorum store vs configuration (Section VII study)",
		Header: []string{"N", "R", "W", "skew", "crashes", "repair", "runs",
			"% k=1", "% k≤2", "% k≤3", "k histogram"},
		Notes: "R+W>N rows should sit near 100% at k=1; R+W≤N rows shift right, and skew/crashes shift further — the staleness k-atomicity was designed to bound.",
	}
	type cfg struct {
		n, r, w int
		skew    int64
		crash   int
		repair  bool
	}
	cfgs := []cfg{
		{n: 3, r: 2, w: 2},
		{n: 3, r: 1, w: 3},
		{n: 3, r: 1, w: 2},
		{n: 3, r: 1, w: 1},
		{n: 5, r: 2, w: 2},
		{n: 5, r: 1, w: 1},
		{n: 5, r: 1, w: 1, skew: 25},
		{n: 5, r: 1, w: 1, skew: 25, repair: true},
		{n: 5, r: 2, w: 2, skew: 25, crash: 1},
	}
	const runs = 25
	for _, c := range cfgs {
		var corpus []*history.History
		for seed := int64(0); seed < runs; seed++ {
			h, _, err := quorum.Run(quorum.Config{
				Seed: seed, Replicas: c.n, ReadQuorum: c.r, WriteQuorum: c.w,
				Clients: 4, OpsPerClient: 10, ClockSkew: c.skew,
				CrashReplicas: c.crash, MaxDelay: 20, ReadRepair: c.repair,
			})
			if err != nil {
				continue
			}
			corpus = append(corpus, h)
		}
		d := metrics.SmallestKDistribution(corpus, core.Options{})
		pct := func(bound int) string {
			return fmt.Sprintf("%.0f", 100*d.Fraction(bound))
		}
		repair := "no"
		if c.repair {
			repair = "yes"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(c.n), fmt.Sprint(c.r), fmt.Sprint(c.w),
			fmt.Sprint(c.skew), fmt.Sprint(c.crash), repair, fmt.Sprint(len(corpus)),
			pct(1), pct(2), pct(3), d.String(),
		})
	}
	return t
}
