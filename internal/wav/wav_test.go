package wav

import (
	"math/rand"
	"testing"

	"kat/internal/history"
	"kat/internal/oracle"
)

func TestBinPackingValidate(t *testing.T) {
	tests := []struct {
		name string
		bp   BinPacking
		ok   bool
	}{
		{"valid", BinPacking{Sizes: []int64{1, 2}, Capacity: 3, Bins: 2}, true},
		{"no bins", BinPacking{Sizes: []int64{1}, Capacity: 3, Bins: 0}, false},
		{"zero capacity", BinPacking{Sizes: []int64{1}, Capacity: 0, Bins: 1}, false},
		{"zero item", BinPacking{Sizes: []int64{0}, Capacity: 3, Bins: 1}, false},
		{"empty items", BinPacking{Capacity: 3, Bins: 1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.bp.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestFirstFitDecreasing(t *testing.T) {
	bp := BinPacking{Sizes: []int64{5, 4, 3, 2, 1}, Capacity: 8, Bins: 2}
	assign, ok := bp.FirstFitDecreasing()
	if !ok {
		t.Fatal("FFD failed on a feasible instance")
	}
	loads := make([]int64, bp.Bins)
	for i, b := range assign {
		if b < 0 || b >= bp.Bins {
			t.Fatalf("item %d assigned to bin %d", i, b)
		}
		loads[b] += bp.Sizes[i]
	}
	for b, l := range loads {
		if l > bp.Capacity {
			t.Errorf("bin %d overloaded: %d > %d", b, l, bp.Capacity)
		}
	}
}

func TestFFDInfeasible(t *testing.T) {
	bp := BinPacking{Sizes: []int64{5, 5, 5}, Capacity: 5, Bins: 2}
	if _, ok := bp.FirstFitDecreasing(); ok {
		t.Error("FFD packed 3x5 into two bins of 5")
	}
}

func TestSolvableExact(t *testing.T) {
	tests := []struct {
		name string
		bp   BinPacking
		want bool
	}{
		{"trivial fits", BinPacking{Sizes: []int64{1, 1}, Capacity: 2, Bins: 1}, true},
		{"oversize item", BinPacking{Sizes: []int64{7}, Capacity: 5, Bins: 3}, false},
		{"total too big", BinPacking{Sizes: []int64{3, 3, 3}, Capacity: 3, Bins: 2}, false},
		{"exact partition", BinPacking{Sizes: []int64{4, 3, 3, 2, 2, 2}, Capacity: 8, Bins: 2}, true},
		{"ffd fails exact succeeds", BinPacking{Sizes: []int64{6, 5, 5, 4, 4, 4, 4}, Capacity: 16, Bins: 2}, true},
		{"infeasible tight", BinPacking{Sizes: []int64{6, 5, 5, 4, 4, 4, 5}, Capacity: 16, Bins: 2}, false},
		{"empty", BinPacking{Capacity: 1, Bins: 1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.bp.Solvable(); got != tt.want {
				t.Errorf("Solvable() = %v, want %v", got, tt.want)
			}
		})
	}
}

// TestSolvableAgainstBruteForce verifies the branch-and-bound solver against
// exhaustive assignment enumeration on random small instances.
func TestSolvableAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		bins := 1 + rng.Intn(3)
		cap := int64(3 + rng.Intn(8))
		sizes := make([]int64, n)
		for i := range sizes {
			sizes[i] = 1 + rng.Int63n(cap)
		}
		bp := BinPacking{Sizes: sizes, Capacity: cap, Bins: bins}
		want := bruteForce(bp)
		if got := bp.Solvable(); got != want {
			t.Fatalf("trial %d: Solvable(%+v) = %v, want %v", trial, bp, got, want)
		}
	}
}

func bruteForce(bp BinPacking) bool {
	n := len(bp.Sizes)
	loads := make([]int64, bp.Bins)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			return true
		}
		for b := 0; b < bp.Bins; b++ {
			if loads[b]+bp.Sizes[i] <= bp.Capacity {
				loads[b] += bp.Sizes[i]
				if rec(i + 1) {
					return true
				}
				loads[b] -= bp.Sizes[i]
			}
		}
		return false
	}
	return rec(0)
}

func TestReduceStructure(t *testing.T) {
	bp := BinPacking{Sizes: []int64{3, 2}, Capacity: 5, Bins: 2}
	red, err := Reduce(bp)
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	if red.Bound != 7 {
		t.Errorf("Bound = %d, want Capacity+2 = 7", red.Bound)
	}
	h := red.History
	// m+1 short writes + m reads + n long writes.
	wantOps := (bp.Bins + 1) + bp.Bins + len(bp.Sizes)
	if h.Len() != wantOps {
		t.Fatalf("ops = %d, want %d", h.Len(), wantOps)
	}
	if len(red.ShortValues) != bp.Bins+1 {
		t.Errorf("ShortValues = %v", red.ShortValues)
	}
	if len(red.ItemValues) != len(bp.Sizes) {
		t.Errorf("ItemValues = %v", red.ItemValues)
	}
	p, err := history.Prepare(h)
	if err != nil {
		t.Fatalf("reduced history not preparable: %v", err)
	}
	// Long writes must carry the item sizes as weights.
	for j, v := range red.ItemValues {
		wi, _ := p.WriteFor(v)
		w := p.Op(wi)
		if w.Weight != bp.Sizes[j] {
			t.Errorf("item %d weight = %d, want %d", j, w.Weight, bp.Sizes[j])
		}
		if len(p.DictatedReads[wi]) != 0 {
			t.Errorf("long write %d has dictated reads", j)
		}
	}
	// Every short write except the dummy has exactly one read.
	for i, v := range red.ShortValues[:bp.Bins] {
		wi, _ := p.WriteFor(v)
		if got := len(p.DictatedReads[wi]); got != 1 {
			t.Errorf("short write %d has %d reads, want 1", i, got)
		}
	}
	dummy, _ := p.WriteFor(red.ShortValues[bp.Bins])
	if got := len(p.DictatedReads[dummy]); got != 0 {
		t.Errorf("dummy write has %d reads, want 0", got)
	}
}

func TestReduceRejectsInvalid(t *testing.T) {
	if _, err := Reduce(BinPacking{Sizes: []int64{1}, Capacity: 0, Bins: 1}); err == nil {
		t.Error("Reduce accepted invalid instance")
	}
}

// TestReductionEquivalenceExhaustive is the empirical heart of Theorem 5.1:
// on a sweep of small instances, bin packing is solvable iff the reduced
// history is weighted (B+2)-atomic.
func TestReductionEquivalenceExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(4)
		bins := 1 + rng.Intn(3)
		cap := int64(2 + rng.Intn(6))
		sizes := make([]int64, n)
		for i := range sizes {
			sizes[i] = 1 + rng.Int63n(cap+1) // allow oversize items too
		}
		bp := BinPacking{Sizes: sizes, Capacity: cap, Bins: bins}
		want := bp.Solvable()
		got, err := SolveViaReduction(bp, oracle.Options{})
		if err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, bp, err)
		}
		if got != want {
			t.Fatalf("trial %d: reduction disagrees for %+v: kWAV=%v binpack=%v",
				trial, bp, got, want)
		}
	}
}

func TestReductionSpecificInstances(t *testing.T) {
	tests := []struct {
		name string
		bp   BinPacking
		want bool
	}{
		{"single bin fits", BinPacking{Sizes: []int64{2, 3}, Capacity: 5, Bins: 1}, true},
		{"single bin overflow", BinPacking{Sizes: []int64{3, 3}, Capacity: 5, Bins: 1}, false},
		{"two bins split", BinPacking{Sizes: []int64{3, 3}, Capacity: 3, Bins: 2}, true},
		{"three items two bins", BinPacking{Sizes: []int64{2, 2, 2}, Capacity: 3, Bins: 2}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := SolveViaReduction(tt.bp, oracle.Options{})
			if err != nil {
				t.Fatalf("SolveViaReduction: %v", err)
			}
			if got != tt.want {
				t.Errorf("= %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCheckDelegates(t *testing.T) {
	h := history.MustParse("w 1 0 10 weight=2; w 2 20 30 weight=4; r 1 40 50")
	p, err := history.Prepare(history.Normalize(h))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	// Separation = weight(w1)+weight(w2) = 6.
	res, err := Check(p, 5, oracle.Options{})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Atomic {
		t.Error("bound 5 accepted separation 6")
	}
	res, err = Check(p, 6, oracle.Options{})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !res.Atomic {
		t.Error("bound 6 rejected separation 6")
	}
}
