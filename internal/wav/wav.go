// Package wav implements the weighted k-AV problem of Section V (k-WAV):
// every write carries a positive integer weight, and a history is weighted
// k-atomic iff there is a valid total order in which, for every read, the
// total weight of the writes separating it from its dictating write —
// including the dictating write itself — is at most k.
//
// The package provides:
//
//   - an exact k-WAV decision procedure (delegating to the oracle's
//     branch-and-bound search, which handles weights natively);
//   - the bin-packing problem with an exact solver and the first-fit-
//     decreasing heuristic;
//   - the Figure 5 reduction from bin packing to k-WAV used in the proof of
//     Theorem 5.1 (k-WAV is NP-complete), so the reduction's correctness can
//     be exercised empirically.
package wav

import (
	"fmt"
	"sort"

	"kat/internal/history"
	"kat/internal/oracle"
)

// Check decides the weighted k-AV problem exactly. Exponential in the worst
// case (Theorem 5.1: the problem is NP-complete).
func Check(p *history.Prepared, bound int64, opts oracle.Options) (oracle.Result, error) {
	return oracle.CheckWeighted(p, bound, opts)
}

// BinPacking is a decision instance: can Sizes be partitioned into at most
// Bins subsets each summing to at most Capacity?
type BinPacking struct {
	Sizes    []int64
	Capacity int64
	Bins     int
}

// Validate reports structural problems with the instance.
func (bp BinPacking) Validate() error {
	if bp.Bins < 1 {
		return fmt.Errorf("wav: need at least one bin, got %d", bp.Bins)
	}
	if bp.Capacity < 1 {
		return fmt.Errorf("wav: capacity must be positive, got %d", bp.Capacity)
	}
	for i, s := range bp.Sizes {
		if s < 1 {
			return fmt.Errorf("wav: item %d has nonpositive size %d", i, s)
		}
	}
	return nil
}

// FirstFitDecreasing runs the classic FFD heuristic. It returns the
// per-item bin assignment and true if every item fits; a false result does
// not prove the instance unsolvable.
func (bp BinPacking) FirstFitDecreasing() ([]int, bool) {
	type item struct {
		size int64
		idx  int
	}
	items := make([]item, len(bp.Sizes))
	for i, s := range bp.Sizes {
		items[i] = item{size: s, idx: i}
	}
	sort.SliceStable(items, func(a, b int) bool { return items[a].size > items[b].size })
	loads := make([]int64, bp.Bins)
	assign := make([]int, len(bp.Sizes))
	for _, it := range items {
		placed := false
		for b := range loads {
			if loads[b]+it.size <= bp.Capacity {
				loads[b] += it.size
				assign[it.idx] = b
				placed = true
				break
			}
		}
		if !placed {
			return nil, false
		}
	}
	return assign, true
}

// Solvable decides the instance exactly by branch and bound: items are
// placed in decreasing size order; bins with equal remaining capacity are
// interchangeable and only the first is tried; FFD is used as a fast
// accepting path.
func (bp BinPacking) Solvable() bool {
	if err := bp.Validate(); err != nil {
		return false
	}
	var total int64
	for _, s := range bp.Sizes {
		if s > bp.Capacity {
			return false
		}
		total += s
	}
	if total > bp.Capacity*int64(bp.Bins) {
		return false
	}
	if _, ok := bp.FirstFitDecreasing(); ok {
		return true
	}
	sizes := append([]int64(nil), bp.Sizes...)
	sort.Slice(sizes, func(a, b int) bool { return sizes[a] > sizes[b] })
	loads := make([]int64, bp.Bins)
	var dfs func(i int) bool
	dfs = func(i int) bool {
		if i == len(sizes) {
			return true
		}
		seen := make(map[int64]bool, bp.Bins)
		for b := range loads {
			if loads[b]+sizes[i] > bp.Capacity || seen[loads[b]] {
				continue
			}
			seen[loads[b]] = true
			loads[b] += sizes[i]
			if dfs(i + 1) {
				return true
			}
			loads[b] -= sizes[i]
		}
		return false
	}
	return dfs(0)
}

// Reduction is the output of Reduce: the constructed history, the k-WAV
// bound (B+2), and bookkeeping for interpreting witnesses.
type Reduction struct {
	// History is the constructed k-WAV instance (normalized).
	History *history.History
	// Bound is k = Capacity + 2 (Theorem 5.1).
	Bound int64
	// ShortValues[i] is the value written by short write w(i+1), for
	// i in [0, Bins]; the last one is the dummy write w(m+1).
	ShortValues []int64
	// ItemValues[j] is the value written by the long write carrying item
	// j's size as its weight.
	ItemValues []int64
}

// Reduce builds the Figure 5 construction: m+1 unit-weight "short" writes
// w(1)..w(m+1) with dictated reads r(1)..r(m) laid out sequentially as
// w(1) w(2) r(1) w(3) r(2) ... w(m+1) r(m), plus one "long" write per item
// with weight equal to the item's size, concurrent with everything strictly
// between w(1) and w(m+1). The instance is solvable iff the history is
// weighted (Capacity+2)-atomic.
func Reduce(bp BinPacking) (*Reduction, error) {
	if err := bp.Validate(); err != nil {
		return nil, err
	}
	m := bp.Bins
	n := len(bp.Sizes)
	g := int64(n + 10) // spacing unit; keeps all endpoints distinct
	slot := func(t int) (int64, int64) {
		lo := int64(t) * 4 * g
		return lo, lo + 2*g
	}

	red := &Reduction{Bound: bp.Capacity + 2}
	var ops []history.Operation
	val := int64(1)

	addShort := func(t int) int64 {
		lo, hi := slot(t)
		v := val
		val++
		ops = append(ops, history.Operation{
			Kind: history.KindWrite, Value: v, Start: lo, Finish: hi, Weight: 1,
		})
		red.ShortValues = append(red.ShortValues, v)
		return v
	}
	addRead := func(t int, v int64) {
		lo, hi := slot(t)
		ops = append(ops, history.Operation{
			Kind: history.KindRead, Value: v, Start: lo, Finish: hi,
		})
	}

	// Time slots: w(1)=0, w(2)=1, r(1)=2, w(3)=3, r(2)=4, ...,
	// w(i)=2i-3 (i>=2), r(i)=2i, ..., w(m+1)=2m-1, r(m)=2m.
	shortVals := make([]int64, m+2) // 1-indexed: shortVals[i] = value of w(i)
	shortVals[1] = addShort(0)
	for i := 2; i <= m+1; i++ {
		shortVals[i] = addShort(2*i - 3)
	}
	for i := 1; i <= m; i++ {
		addRead(2*i, shortVals[i])
	}

	// Long writes: start inside (w(1).f, w(2).s) = (2g, 4g), finish inside
	// the gap before w(m+1).s: ((2m-2)*4g + 2g, (2m-1)*4g).
	for j := 0; j < n; j++ {
		start := 2*g + 1 + int64(j)
		finish := int64(2*m-2)*4*g + 3*g + 1 + int64(j)
		v := val
		val++
		ops = append(ops, history.Operation{
			Kind: history.KindWrite, Value: v,
			Start: start, Finish: finish, Weight: bp.Sizes[j],
		})
		red.ItemValues = append(red.ItemValues, v)
	}

	red.History = history.Normalize(history.New(ops))
	return red, nil
}

// SolveViaReduction decides a bin-packing instance by reducing it to k-WAV
// and running the exact weighted checker — the "wrong direction" in
// complexity terms, but exactly the equivalence Theorem 5.1 asserts, and the
// way the reduction is validated empirically.
func SolveViaReduction(bp BinPacking, opts oracle.Options) (bool, error) {
	red, err := Reduce(bp)
	if err != nil {
		return false, err
	}
	p, err := history.Prepare(red.History)
	if err != nil {
		return false, fmt.Errorf("wav: reduced history invalid: %w", err)
	}
	res, err := oracle.CheckWeighted(p, red.Bound, opts)
	if err != nil {
		return false, err
	}
	return res.Atomic, nil
}
