// Package faultfs is the filesystem seam of the durability subsystem: a
// narrow interface covering exactly the operations the write-ahead log and
// checkpoint writers perform, an *os*-backed production implementation, an
// in-memory implementation that journals every mutation so tests can cut the
// "disk" at an arbitrary byte boundary (a deterministic kill -9), and a
// fault-injecting wrapper that fails, short-writes, or delays individual
// calls on a deterministic schedule so every error path in the writers can
// be driven on purpose.
//
// Durability model: the in-memory crash images assume that every completed
// write call survives a process kill (the OS page cache outlives the
// process); fsync matters for machine crashes and is exercised separately
// through injected fsync faults. Torn writes — a crash landing mid-call —
// are modeled exactly, down to the byte.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File is an append-only output file: the only write surface the WAL and
// checkpoint writers need.
type File interface {
	io.Writer
	// Sync flushes the file's written data to stable storage.
	Sync() error
	Close() error
}

// FS is the filesystem surface of the durability layer. Paths use the host
// separator conventions of path/filepath; implementations may be rooted
// anywhere.
type FS interface {
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (io.ReadCloser, error)
	// ReadDir lists the file names (not paths) in dir, sorted. A missing
	// directory is reported as an error satisfying fs.ErrNotExist.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newname with oldname (the checkpoint
	// publish step).
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
}

// ReadFile reads the whole of name from fsys.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// OS returns the real-filesystem implementation.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) MkdirAll(dir string) error            { return os.MkdirAll(dir, 0o755) }

// MemFS is an in-memory FS that journals every mutation in call order, so a
// crash image — the disk state a kill at an arbitrary global byte offset
// would leave behind — can be reconstructed deterministically, torn final
// write included. Safe for concurrent use.
type MemFS struct {
	mu      sync.Mutex
	files   map[string][]byte
	dirs    map[string]bool
	journal []event
	wbytes  int64
}

// event is one journaled mutation. Write events carry payload bytes and
// consume crash budget; directory events are atomic points in the same
// sequence.
type event struct {
	kind kindT
	name string
	to   string // rename target
	data []byte // write payload
}

type kindT int

const (
	evCreate kindT = iota
	evWrite
	evRename
	evRemove
	evMkdir
)

// NewMem returns an empty MemFS.
func NewMem() *MemFS {
	return &MemFS{files: make(map[string][]byte), dirs: map[string]bool{".": true}}
}

// TotalWriteBytes returns the cumulative payload bytes of all write calls so
// far — the crash-offset domain of CrashImage.
func (m *MemFS) TotalWriteBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.wbytes
}

// CrashImage reconstructs the filesystem a kill after writeBytes journaled
// payload bytes would leave: every mutation before the cut is applied, the
// straddling write lands torn at exactly the cut byte, and everything after
// is gone. The source MemFS is not modified.
func (m *MemFS) CrashImage(writeBytes int64) *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	img := NewMem()
	budget := writeBytes
	for _, ev := range m.journal {
		switch ev.kind {
		case evCreate:
			img.files[ev.name] = nil
		case evWrite:
			n := int64(len(ev.data))
			if budget < n {
				img.files[ev.name] = append(img.files[ev.name], ev.data[:budget]...)
				return img
			}
			budget -= n
			img.files[ev.name] = append(img.files[ev.name], ev.data...)
		case evRename:
			img.files[ev.to] = img.files[ev.name]
			delete(img.files, ev.name)
		case evRemove:
			delete(img.files, ev.name)
		case evMkdir:
			img.dirs[ev.name] = true
		}
	}
	return img
}

// memFile is an open MemFS file handle.
type memFile struct {
	m      *MemFS
	name   string
	closed bool
}

func (f *memFile) Write(p []byte) (int, error) {
	if f.closed {
		return 0, fmt.Errorf("faultfs: write to closed file %q", f.name)
	}
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	cp := append([]byte(nil), p...)
	f.m.files[f.name] = append(f.m.files[f.name], cp...)
	f.m.journal = append(f.m.journal, event{kind: evWrite, name: f.name, data: cp})
	f.m.wbytes += int64(len(cp))
	return len(p), nil
}

func (f *memFile) Sync() error {
	if f.closed {
		return fmt.Errorf("faultfs: sync of closed file %q", f.name)
	}
	return nil
}

func (f *memFile) Close() error {
	f.closed = true
	return nil
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = nil
	m.journal = append(m.journal, event{kind: evCreate, name: name})
	return &memFile{m: m, name: name}, nil
}

func (m *MemFS) Open(name string) (io.ReadCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("faultfs: open %s: %w", name, fs.ErrNotExist)
	}
	return io.NopCloser(newSliceReader(data)), nil
}

// newSliceReader snapshots data so later writes don't race the reader.
func newSliceReader(data []byte) io.Reader {
	cp := append([]byte(nil), data...)
	return &sliceReader{data: cp}
}

type sliceReader struct {
	data []byte
	off  int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[dir] && dir != "." {
		// A directory is also visible when files exist under it (crash
		// images replay mkdir events, so this is just a fallback for
		// hand-built fixtures).
		found := false
		prefix := dir + string(filepath.Separator)
		for name := range m.files {
			if len(name) > len(prefix) && name[:len(prefix)] == prefix {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("faultfs: readdir %s: %w", dir, fs.ErrNotExist)
		}
	}
	var names []string
	for name := range m.files {
		d, base := filepath.Split(name)
		if filepath.Clean(d) == filepath.Clean(dir) {
			names = append(names, base)
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("faultfs: rename %s: %w", oldname, fs.ErrNotExist)
	}
	m.files[newname] = data
	delete(m.files, oldname)
	m.journal = append(m.journal, event{kind: evRename, name: oldname, to: newname})
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("faultfs: remove %s: %w", name, fs.ErrNotExist)
	}
	delete(m.files, name)
	m.journal = append(m.journal, event{kind: evRemove, name: name})
	return nil
}

func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for d := dir; d != "." && d != string(filepath.Separator) && d != ""; d = filepath.Dir(d) {
		m.dirs[d] = true
	}
	m.journal = append(m.journal, event{kind: evMkdir, name: dir})
	return nil
}

// Files returns a snapshot of name -> size, for test assertions.
func (m *MemFS) Files() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int, len(m.files))
	for name, data := range m.files {
		out[name] = len(data)
	}
	return out
}

// ErrInjected is the base error of every injected fault, so callers can
// recognize deliberately injected failures with errors.Is.
var ErrInjected = errors.New("faultfs: injected fault")

// Op identifies the call an Injector is deciding about.
type Op int

const (
	OpWrite Op = iota
	OpSync
	OpCreate
	OpOpen
	OpRename
	OpRemove
)

func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpCreate:
		return "create"
	case OpOpen:
		return "open"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	}
	return "unknown"
}

// Fault is what an Injector returns for one call: fail it (Err), complete
// only Short bytes of a write before failing, and/or run Delay first.
// Delay is a callback rather than a duration so deterministic tests can
// observe it without real sleeping.
type Fault struct {
	// Err fails the call with an error wrapping ErrInjected. For writes
	// with Short > 0, Short bytes are written through first (a torn write
	// the caller sees an error for).
	Err bool
	// Short is the number of bytes of a write to complete before failing;
	// ignored unless Err is set on an OpWrite.
	Short int
	// Delay, when non-nil, runs before the call proceeds (or fails).
	Delay func()
}

// Injector decides the fault (if any) for the seq-th intercepted call
// (global sequence, starting at 0). It must be deterministic for a given
// sequence to keep failures reproducible.
type Injector func(op Op, name string, seq int64) *Fault

// FailOnce returns an Injector that fails exactly the nth occurrence
// (0-based) of op, short-writing `short` bytes first when op is OpWrite.
func FailOnce(op Op, n int64, short int) Injector {
	var count int64 = -1
	var mu sync.Mutex
	return func(o Op, _ string, _ int64) *Fault {
		if o != op {
			return nil
		}
		mu.Lock()
		count++
		hit := count == n
		mu.Unlock()
		if hit {
			return &Fault{Err: true, Short: short}
		}
		return nil
	}
}

// Faulty wraps an FS, consulting Decide before every intercepted call.
type Faulty struct {
	FS
	Decide Injector
	seq    int64
	mu     sync.Mutex
}

// NewFaulty wraps fsys with the injector.
func NewFaulty(fsys FS, decide Injector) *Faulty {
	return &Faulty{FS: fsys, Decide: decide}
}

func (f *Faulty) fault(op Op, name string) *Fault {
	f.mu.Lock()
	seq := f.seq
	f.seq++
	f.mu.Unlock()
	if f.Decide == nil {
		return nil
	}
	ft := f.Decide(op, name, seq)
	if ft != nil && ft.Delay != nil {
		ft.Delay()
	}
	return ft
}

func (f *Faulty) Create(name string) (File, error) {
	if ft := f.fault(OpCreate, name); ft != nil && ft.Err {
		return nil, fmt.Errorf("create %s: %w", name, ErrInjected)
	}
	inner, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, name: name, inner: inner}, nil
}

func (f *Faulty) Open(name string) (io.ReadCloser, error) {
	if ft := f.fault(OpOpen, name); ft != nil && ft.Err {
		return nil, fmt.Errorf("open %s: %w", name, ErrInjected)
	}
	return f.FS.Open(name)
}

func (f *Faulty) Rename(oldname, newname string) error {
	if ft := f.fault(OpRename, oldname); ft != nil && ft.Err {
		return fmt.Errorf("rename %s: %w", oldname, ErrInjected)
	}
	return f.FS.Rename(oldname, newname)
}

func (f *Faulty) Remove(name string) error {
	if ft := f.fault(OpRemove, name); ft != nil && ft.Err {
		return fmt.Errorf("remove %s: %w", name, ErrInjected)
	}
	return f.FS.Remove(name)
}

// faultyFile intercepts writes and syncs of one open file.
type faultyFile struct {
	f     *Faulty
	name  string
	inner File
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	if ft := ff.f.fault(OpWrite, ff.name); ft != nil && ft.Err {
		short := ft.Short
		if short > len(p) {
			short = len(p)
		}
		n := 0
		if short > 0 {
			n, _ = ff.inner.Write(p[:short]) // the torn half lands
		}
		return n, fmt.Errorf("write %s: %w", ff.name, ErrInjected)
	}
	return ff.inner.Write(p)
}

func (ff *faultyFile) Sync() error {
	if ft := ff.f.fault(OpSync, ff.name); ft != nil && ft.Err {
		return fmt.Errorf("sync %s: %w", ff.name, ErrInjected)
	}
	return ff.inner.Sync()
}

func (ff *faultyFile) Close() error { return ff.inner.Close() }
