package faultfs

import (
	"errors"
	"io/fs"
	"path/filepath"
	"testing"
)

func TestMemFSBasics(t *testing.T) {
	m := NewMem()
	if err := m.MkdirAll(filepath.Join("d", "sub")); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	f, err := m.Create(filepath.Join("d", "a.log"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := ReadFile(m, filepath.Join("d", "a.log"))
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(got) != "hello world" {
		t.Fatalf("content = %q, want %q", got, "hello world")
	}
	names, err := m.ReadDir("d")
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(names) != 1 || names[0] != "a.log" {
		t.Fatalf("ReadDir = %v, want [a.log]", names)
	}
	if _, err := m.Open(filepath.Join("d", "missing")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Open missing: err = %v, want fs.ErrNotExist", err)
	}
	if _, err := m.ReadDir("nodir"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("ReadDir missing: err = %v, want fs.ErrNotExist", err)
	}
	if err := m.Rename(filepath.Join("d", "a.log"), filepath.Join("d", "b.log")); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if _, err := m.Open(filepath.Join("d", "a.log")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("old name still present after rename: %v", err)
	}
	if err := m.Remove(filepath.Join("d", "b.log")); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := m.Remove(filepath.Join("d", "b.log")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Remove missing: err = %v, want fs.ErrNotExist", err)
	}
}

func TestMemFSOpenSnapshotsData(t *testing.T) {
	m := NewMem()
	f, _ := m.Create("x")
	f.Write([]byte("abc"))
	r, err := m.Open("x")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	f.Write([]byte("def"))
	buf := make([]byte, 16)
	n, _ := r.Read(buf)
	if string(buf[:n]) != "abc" {
		t.Fatalf("snapshot read = %q, want abc", buf[:n])
	}
}

// TestCrashImage cuts the journal at every byte offset and checks the image
// is exactly the applied prefix with a torn straddling write.
func TestCrashImage(t *testing.T) {
	m := NewMem()
	f, _ := m.Create("a")
	f.Write([]byte("0123"))
	f.Write([]byte("4567"))
	g, _ := m.Create("b")
	g.Write([]byte("xyz"))
	m.Rename("b", "c")

	total := m.TotalWriteBytes()
	if total != 11 {
		t.Fatalf("TotalWriteBytes = %d, want 11", total)
	}
	want := "01234567"
	for cut := int64(0); cut <= total; cut++ {
		img := m.CrashImage(cut)
		a, err := ReadFile(img, "a")
		if err != nil {
			t.Fatalf("cut %d: ReadFile(a): %v", cut, err)
		}
		wa := want
		if int(cut) < len(want) {
			wa = want[:cut]
		}
		if string(a) != wa {
			t.Fatalf("cut %d: a = %q, want %q", cut, a, wa)
		}
		// b's create precedes its write; the rename happens after all
		// writes, so for cut < total the file is still named b.
		if cut >= total {
			if c, err := ReadFile(img, "c"); err != nil || string(c) != "xyz" {
				t.Fatalf("cut %d: c = %q, %v", cut, c, err)
			}
		} else if cut > 8 {
			b, err := ReadFile(img, "b")
			if err != nil {
				t.Fatalf("cut %d: ReadFile(b): %v", cut, err)
			}
			if wb := "xyz"[:cut-8]; string(b) != wb {
				t.Fatalf("cut %d: b = %q, want %q", cut, b, wb)
			}
		}
	}
	// The source is untouched by imaging.
	if a, _ := ReadFile(m, "a"); string(a) != want {
		t.Fatalf("source mutated: a = %q", a)
	}
}

func TestCrashImageDropsRemovedAndRenamed(t *testing.T) {
	m := NewMem()
	f, _ := m.Create("tmp")
	f.Write([]byte("ck"))
	m.Rename("tmp", "final")
	g, _ := m.Create("old")
	g.Write([]byte("zz"))
	m.Remove("old")

	img := m.CrashImage(m.TotalWriteBytes())
	if _, err := ReadFile(img, "tmp"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("tmp survived rename in image: %v", err)
	}
	if b, err := ReadFile(img, "final"); err != nil || string(b) != "ck" {
		t.Fatalf("final = %q, %v", b, err)
	}
	if _, err := ReadFile(img, "old"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("old survived remove in image: %v", err)
	}
	// An image cut before the remove still has the file.
	img2 := m.CrashImage(2) // after "ck", before "zz" completes
	if _, err := ReadFile(img2, "old"); err != nil {
		t.Fatalf("old missing in early image: %v", err)
	}
}

func TestFaultyShortWrite(t *testing.T) {
	mem := NewMem()
	var hits []Op
	ff := NewFaulty(mem, func(op Op, name string, seq int64) *Fault {
		hits = append(hits, op)
		if op == OpWrite && seq == 1 { // second intercepted call overall
			return &Fault{Err: true, Short: 2}
		}
		return nil
	})
	f, err := ff.Create("w")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.Write([]byte("abcde")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Write err = %v, want ErrInjected", err)
	}
	got, _ := ReadFile(mem, "w")
	if string(got) != "ab" {
		t.Fatalf("torn write landed %q, want %q", got, "ab")
	}
	if len(hits) != 2 || hits[0] != OpCreate || hits[1] != OpWrite {
		t.Fatalf("intercepted ops = %v", hits)
	}
}

func TestFaultySyncRenameOpen(t *testing.T) {
	mem := NewMem()
	ff := NewFaulty(mem, func(op Op, _ string, _ int64) *Fault {
		if op == OpSync || op == OpRename || op == OpOpen {
			return &Fault{Err: true}
		}
		return nil
	})
	f, err := ff.Create("s")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Sync err = %v, want ErrInjected", err)
	}
	if err := ff.Rename("s", "t"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Rename err = %v, want ErrInjected", err)
	}
	if _, err := ff.Open("s"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Open err = %v, want ErrInjected", err)
	}
}

func TestFailOnce(t *testing.T) {
	mem := NewMem()
	ff := NewFaulty(mem, FailOnce(OpSync, 1, 0))
	f, _ := ff.Create("x")
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync should pass: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("second sync should fail: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("third sync should pass: %v", err)
	}
}

func TestFaultyDelayRuns(t *testing.T) {
	mem := NewMem()
	ran := false
	ff := NewFaulty(mem, func(op Op, _ string, _ int64) *Fault {
		if op == OpWrite {
			return &Fault{Delay: func() { ran = true }}
		}
		return nil
	})
	f, _ := ff.Create("d")
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if !ran {
		t.Fatal("delay callback did not run")
	}
}

func TestOSFS(t *testing.T) {
	dir := t.TempDir()
	o := OS()
	if err := o.MkdirAll(filepath.Join(dir, "sub")); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	f, err := o.Create(filepath.Join(dir, "sub", "f.log"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	names, err := o.ReadDir(filepath.Join(dir, "sub"))
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(names) != 1 || names[0] != "f.log" {
		t.Fatalf("ReadDir = %v", names)
	}
	if err := o.Rename(filepath.Join(dir, "sub", "f.log"), filepath.Join(dir, "sub", "g.log")); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	got, err := ReadFile(o, filepath.Join(dir, "sub", "g.log"))
	if err != nil || string(got) != "data" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if err := o.Remove(filepath.Join(dir, "sub", "g.log")); err != nil {
		t.Fatalf("Remove: %v", err)
	}
}
