// Package zone implements the cluster/zone machinery of Gibbons and Korach
// reviewed in Section IV of the paper: per-cluster forward and backward
// zones, the classical zone-based 1-atomicity test, and the Stage 1 chunk
// decomposition used by the FZF algorithm.
//
// A cluster is a write plus its dictated reads. Its zone spans from the
// minimum finish time of any operation in the cluster (Z.f) to the maximum
// start time of any such operation (Z.s̄). The zone is forward if Z.f < Z.s̄
// and backward otherwise; its low/high endpoints are min/max of the two.
package zone

import (
	"cmp"
	"fmt"
	"slices"
	"sort"

	"kat/internal/history"
	"kat/internal/interval"
)

// Zone is the zone of one cluster, identified by its dictating write's
// operation index in the prepared history.
type Zone struct {
	// Write is the dictating write's index in the prepared history.
	Write int
	// MinFinish is Z.f, the minimum finish time over the cluster.
	MinFinish int64
	// MaxStart is Z.s̄, the maximum start time over the cluster.
	MaxStart int64
}

// Forward reports whether the zone is a forward zone (Z.f < Z.s̄).
func (z Zone) Forward() bool { return z.MinFinish < z.MaxStart }

// Low returns the zone's low endpoint min(Z.f, Z.s̄).
func (z Zone) Low() int64 {
	if z.MinFinish < z.MaxStart {
		return z.MinFinish
	}
	return z.MaxStart
}

// High returns the zone's high endpoint max(Z.f, Z.s̄).
func (z Zone) High() int64 {
	if z.MinFinish > z.MaxStart {
		return z.MinFinish
	}
	return z.MaxStart
}

// String renders the zone for diagnostics.
func (z Zone) String() string {
	kind := "BZ"
	if z.Forward() {
		kind = "FZ"
	}
	return fmt.Sprintf("%s(w=%d)[%d,%d]", kind, z.Write, z.Low(), z.High())
}

// Zones computes the zone of every cluster in the prepared history, in
// ascending order of the dictating write's index.
func Zones(p *history.Prepared) []Zone {
	return ZonesAppend(p, nil)
}

// ZonesAppend is Zones appending into buf (reusing its capacity), for
// allocation-free repeated decompositions.
func ZonesAppend(p *history.Prepared, buf []Zone) []Zone {
	out := buf
	for i, op := range p.H.Ops {
		if !op.IsWrite() {
			continue
		}
		z := Zone{Write: i, MinFinish: op.Finish, MaxStart: op.Start}
		for _, r := range p.DictatedReads[i] {
			rop := p.Op(r)
			if rop.Finish < z.MinFinish {
				z.MinFinish = rop.Finish
			}
			if rop.Start > z.MaxStart {
				z.MaxStart = rop.Start
			}
		}
		out = append(out, z)
	}
	return out
}

// Violation describes why the 1-atomicity test failed.
type Violation struct {
	// Kind is "forward-overlap" or "backward-in-forward".
	Kind string
	// Writes identifies the dictating writes of the zones involved.
	Writes []int
}

// String renders the violation for diagnostics.
func (v Violation) String() string {
	return fmt.Sprintf("%s writes=%v", v.Kind, v.Writes)
}

// Check1Atomic applies the Gibbons–Korach zone conditions: a history
// (satisfying the Section II assumptions) is 1-atomic iff (1) no two forward
// zones overlap and (2) no backward zone is contained entirely in a forward
// zone. It returns ok=true with a nil violation, or ok=false with the first
// violation found.
func Check1Atomic(p *history.Prepared) (bool, *Violation) {
	zs := Zones(p)
	var fwd, bwd []Zone
	for _, z := range zs {
		if z.Forward() {
			fwd = append(fwd, z)
		} else {
			bwd = append(bwd, z)
		}
	}
	sort.Slice(fwd, func(i, j int) bool { return fwd[i].Low() < fwd[j].Low() })
	// Condition 1: no two forward zones overlap. With the sweep sorted by
	// low endpoint, any overlap manifests against the maximum high seen.
	maxHigh := int64(0)
	maxHighWrite := -1
	for i, z := range fwd {
		if i > 0 && z.Low() < maxHigh {
			return false, &Violation{Kind: "forward-overlap", Writes: []int{maxHighWrite, z.Write}}
		}
		if i == 0 || z.High() > maxHigh {
			maxHigh = z.High()
			maxHighWrite = z.Write
		}
	}
	// Condition 2: no backward zone nested in a forward zone.
	if len(fwd) > 0 && len(bwd) > 0 {
		ivs := make([]interval.Interval, len(bwd))
		for i, z := range bwd {
			ivs[i] = interval.Interval{Lo: z.Low(), Hi: z.High(), ID: z.Write}
		}
		tree := interval.Build(ivs)
		for _, f := range fwd {
			if inside := tree.ContainedIn(f.Low(), f.High()); len(inside) > 0 {
				return false, &Violation{Kind: "backward-in-forward", Writes: []int{f.Write, inside[0].ID}}
			}
		}
	}
	return true, nil
}

// Chunk is one maximal chunk from Stage 1 of FZF: a maximal set of forward
// clusters whose zones union to a continuous interval [Lo, Hi], together
// with every backward cluster whose zone nests inside that interval.
type Chunk struct {
	// Lo and Hi bound the union of the chunk's forward zones.
	Lo, Hi int64
	// Forward lists the dictating writes of the chunk's forward clusters
	// in increasing order of their zones' low endpoints — exactly the
	// order T_F that Stage 2 starts from.
	Forward []int
	// Backward lists the dictating writes of the chunk's backward
	// clusters, in increasing order of their zones' low endpoints.
	Backward []int
}

// OneAtomic reports whether the chunk passes the Gibbons–Korach zone
// conditions in isolation — the chunk-local form of Check1Atomic used by the
// chunk-parallel scheduler. A history is 1-atomic iff every chunk of its
// decomposition is OneAtomic:
//
//   - Condition 1 (no two forward zones overlap) fails globally iff some
//     chunk holds two or more forward clusters: a chunk is by construction a
//     maximal run of overlapping forward zones, and distinct chunks occupy
//     disjoint intervals.
//   - Condition 2 (no backward zone nested in a forward zone) fails globally
//     iff some chunk holds a backward cluster: if backward zone b nests in
//     forward zone f, then b nests in f's chunk interval and is assigned to
//     it (never dangling); conversely a backward cluster assigned to a
//     single-forward chunk nests in that chunk's interval, which is exactly
//     the forward zone's interval — and multi-forward chunks already fail
//     condition 1.
//
// Dangling clusters never violate either condition. Each chunk verdict is
// O(1), so the parallel k=1 path is dominated by the shared decomposition.
func (c Chunk) OneAtomic() bool {
	return len(c.Forward) < 2 && len(c.Backward) == 0
}

// Decomposition is the chunk set CS(H) plus the dangling clusters (backward
// clusters belonging to no chunk).
type Decomposition struct {
	Chunks []Chunk
	// Dangling lists dictating writes of dangling clusters in increasing
	// order of their zones' low endpoints. Every dangling cluster is
	// backward (a direct consequence of the chunk-set definition).
	Dangling []int
}

// Decompose computes CS(H) for the prepared history (Stage 1 of FZF).
func Decompose(p *history.Prepared) Decomposition {
	return DecomposeZones(Zones(p))
}

// DecomposeZones computes the chunk set from an explicit zone list. Exposed
// separately so the Figure 3 example can be checked at the zone level.
func DecomposeZones(zs []Zone) Decomposition {
	var fwd []interval.Interval
	var bwd []Zone
	for _, z := range zs {
		if z.Forward() {
			fwd = append(fwd, interval.Interval{Lo: z.Low(), Hi: z.High(), ID: z.Write})
		} else {
			bwd = append(bwd, z)
		}
	}
	runs := interval.MergeRuns(fwd)
	sort.Slice(bwd, func(i, j int) bool { return bwd[i].Low() < bwd[j].Low() })

	dec := Decomposition{Chunks: make([]Chunk, len(runs))}
	for i, r := range runs {
		dec.Chunks[i] = Chunk{Lo: r.Lo, Hi: r.Hi, Forward: r.Members}
	}
	// Runs are disjoint and sorted by Lo, so each backward zone nests in at
	// most one run; assign by advancing a cursor over the runs.
	ci := 0
	for _, z := range bwd {
		for ci < len(dec.Chunks) && dec.Chunks[ci].Hi < z.Low() {
			ci++
		}
		if ci < len(dec.Chunks) && dec.Chunks[ci].Lo <= z.Low() && z.High() <= dec.Chunks[ci].Hi {
			dec.Chunks[ci].Backward = append(dec.Chunks[ci].Backward, z.Write)
		} else {
			dec.Dangling = append(dec.Dangling, z.Write)
		}
	}
	return dec
}

// Scratch holds reusable buffers for DecomposeScratch so that repeated
// decompositions of same-sized histories perform no allocations once the
// buffers have grown to steady state.
type Scratch struct {
	zones      []Zone
	fwd, bwd   []Zone
	fwdMembers []int // flat Chunk.Forward storage, one contiguous run per chunk
	bwdMembers []int // flat Chunk.Backward storage
	chunks     []Chunk
	dangling   []int
}

// DecomposeScratch is Decompose reusing s's buffers. The returned
// Decomposition's slices alias s and are valid only until the next call with
// the same Scratch.
func DecomposeScratch(p *history.Prepared, s *Scratch) Decomposition {
	s.zones = ZonesAppend(p, s.zones[:0])
	s.fwd, s.bwd = s.fwd[:0], s.bwd[:0]
	for _, z := range s.zones {
		if z.Forward() {
			s.fwd = append(s.fwd, z)
		} else {
			s.bwd = append(s.bwd, z)
		}
	}
	// Same orders as DecomposeZones (interval.MergeRuns sorts by Lo then Hi;
	// the write index breaks full ties deterministically).
	slices.SortFunc(s.fwd, func(a, b Zone) int {
		if c := cmp.Compare(a.Low(), b.Low()); c != 0 {
			return c
		}
		if c := cmp.Compare(a.High(), b.High()); c != 0 {
			return c
		}
		return cmp.Compare(a.Write, b.Write)
	})
	slices.SortFunc(s.bwd, func(a, b Zone) int {
		if c := cmp.Compare(a.Low(), b.Low()); c != 0 {
			return c
		}
		return cmp.Compare(a.Write, b.Write)
	})

	// Forward members in sorted-by-low order are exactly the chunks' Forward
	// lists concatenated, so each chunk's list is a subslice of one flat
	// buffer. Fill the buffer first so no append can move it afterwards.
	s.fwdMembers = s.fwdMembers[:0]
	for _, z := range s.fwd {
		s.fwdMembers = append(s.fwdMembers, z.Write)
	}
	s.chunks = s.chunks[:0]
	runStart := 0
	for i, z := range s.fwd {
		if n := len(s.chunks); n > 0 && z.Low() < s.chunks[n-1].Hi {
			c := &s.chunks[n-1]
			if z.High() > c.Hi {
				c.Hi = z.High()
			}
			c.Forward = s.fwdMembers[runStart : i+1]
			continue
		}
		runStart = i
		s.chunks = append(s.chunks, Chunk{Lo: z.Low(), Hi: z.High(), Forward: s.fwdMembers[i : i+1]})
	}

	// Backward zones are assigned with a forward-only cursor, so each chunk's
	// assignments are consecutive appends into one flat buffer (dangling
	// zones go to a separate slice and do not break the runs). Pre-grow the
	// buffer so extending a chunk's subslice never moves it.
	s.bwdMembers = slices.Grow(s.bwdMembers[:0], len(s.bwd))
	s.dangling = s.dangling[:0]
	ci := 0
	for _, z := range s.bwd {
		for ci < len(s.chunks) && s.chunks[ci].Hi < z.Low() {
			ci++
		}
		if ci < len(s.chunks) && s.chunks[ci].Lo <= z.Low() && z.High() <= s.chunks[ci].Hi {
			s.bwdMembers = append(s.bwdMembers, z.Write)
			c := &s.chunks[ci]
			if len(c.Backward) == 0 {
				c.Backward = s.bwdMembers[len(s.bwdMembers)-1 : len(s.bwdMembers)]
			} else {
				c.Backward = c.Backward[:len(c.Backward)+1]
			}
		} else {
			s.dangling = append(s.dangling, z.Write)
		}
	}
	return Decomposition{Chunks: s.chunks, Dangling: s.dangling}
}
