package zone_test

import (
	"math/rand"
	"testing"

	"kat/internal/core"
	"kat/internal/generator"
	"kat/internal/history"
	"kat/internal/zone"
)

func prepare(t *testing.T, h *history.History) *history.Prepared {
	t.Helper()
	p, err := history.Prepare(history.Normalize(h))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	return p
}

// segmentsAt splits the prepared history's operations at the given sorted
// cut positions into fresh sub-histories.
func segmentsAt(p *history.Prepared, cuts []int) []*history.History {
	bounds := append(append([]int{0}, cuts...), p.Len())
	var out []*history.History
	for i := 1; i < len(bounds); i++ {
		if bounds[i] > bounds[i-1] {
			out = append(out, history.New(p.H.Ops[bounds[i-1]:bounds[i]]))
		}
	}
	return out
}

func TestCutsAgreeWithSafeCut(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		h := generator.KAtomic(generator.Config{
			Seed: seed, Ops: 120, Concurrency: 1 + int(seed%4), StalenessDepth: int(seed % 3),
		})
		p := prepare(t, h)
		cuts := zone.Cuts(p)
		ci := 0
		for i := 1; i < p.Len(); i++ {
			want := ci < len(cuts) && cuts[ci] == i
			if want {
				ci++
			}
			if got := zone.SafeCut(p, i); got != want {
				t.Fatalf("seed %d: zone.SafeCut(%d)=%v, Cuts says %v", seed, i, got, want)
			}
		}
		if !zone.SafeCut(p, 0) || !zone.SafeCut(p, p.Len()) {
			t.Fatalf("seed %d: trivial cuts not safe", seed)
		}
	}
}

// TestCutsPreserveSmallestK is the segment-equivalence theorem checked
// directly: for any subset of safe cuts, the maximum smallest-k over the
// segments equals the smallest k of the whole history.
func TestCutsPreserveSmallestK(t *testing.T) {
	v := core.NewVerifier()
	for seed := int64(0); seed < 25; seed++ {
		h := generator.KAtomic(generator.Config{
			Seed: seed, Ops: 90, Concurrency: 1 + int(seed%3),
			StalenessDepth: int(seed % 4), ForceDepth: true, ReadFraction: 0.6,
		})
		if seed%2 == 1 {
			h = generator.InjectStaleness(h, seed, 0.2, 1+int(seed%2))
		}
		p := prepare(t, h)
		whole, err := v.SmallestKPrepared(p, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: SmallestKPrepared: %v", seed, err)
		}
		cuts := zone.Cuts(p)
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 4; trial++ {
			var subset []int
			for _, c := range cuts {
				if trial == 0 || rng.Intn(2) == 0 { // trial 0: every cut
					subset = append(subset, c)
				}
			}
			maxK := 1
			for _, seg := range segmentsAt(p, subset) {
				k, err := v.SmallestK(seg, core.Options{})
				if err != nil {
					t.Fatalf("seed %d: segment SmallestK: %v", seed, err)
				}
				if k > maxK {
					maxK = k
				}
			}
			if maxK != whole {
				t.Fatalf("seed %d trial %d: max segment k=%d, whole k=%d (cuts %v of %v)",
					seed, trial, maxK, whole, subset, cuts)
			}
		}
	}
}

// TestCutsPreserveCheck verifies the fixed-k direction on both atomic and
// violating histories.
func TestCutsPreserveCheck(t *testing.T) {
	v := core.NewVerifier()
	for seed := int64(0); seed < 20; seed++ {
		h := generator.KAtomic(generator.Config{
			Seed: seed, Ops: 80, Concurrency: 2, StalenessDepth: int(seed % 3), ForceDepth: true,
		})
		p := prepare(t, h)
		for _, k := range []int{1, 2, 3} {
			whole, err := v.CheckPrepared(p, k, core.Options{})
			if err != nil {
				t.Fatalf("seed %d: CheckPrepared: %v", seed, err)
			}
			all := true
			for _, seg := range segmentsAt(p, zone.Cuts(p)) {
				rep, err := v.Check(seg, k, core.Options{})
				if err != nil {
					t.Fatalf("seed %d: segment Check: %v", seed, err)
				}
				all = all && rep.Atomic
			}
			if all != whole.Atomic {
				t.Fatalf("seed %d k=%d: segments atomic=%v, whole=%v", seed, k, all, whole.Atomic)
			}
		}
	}
}

// A cut may never bisect a chunk of the FZF decomposition: every chunk's
// operations lie strictly on one side of every safe cut.
func TestCutsRespectChunks(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		h := generator.Adversarial(generator.Config{Seed: seed, Ops: 150, Concurrency: 6})
		p := prepare(t, h)
		cuts := zone.Cuts(p)
		if len(cuts) == 0 {
			continue
		}
		dec := zone.Decompose(p)
		for _, c := range cuts {
			cutTime := p.Op(c).Start
			for _, ch := range dec.Chunks {
				if ch.Lo < cutTime && cutTime < ch.Hi {
					t.Fatalf("seed %d: cut %d (t=%d) bisects chunk [%d,%d]",
						seed, c, cutTime, ch.Lo, ch.Hi)
				}
			}
		}
	}
}
