package zone

import (
	"strings"
	"testing"

	"kat/internal/history"
)

func prep(t *testing.T, text string) *history.Prepared {
	t.Helper()
	p, err := history.Prepare(history.Normalize(history.MustParse(text)))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	return p
}

func TestZoneGeometry(t *testing.T) {
	z := Zone{Write: 1, MinFinish: 10, MaxStart: 20}
	if !z.Forward() {
		t.Error("MinFinish < MaxStart must be forward")
	}
	if z.Low() != 10 || z.High() != 20 {
		t.Errorf("Low/High = %d/%d, want 10/20", z.Low(), z.High())
	}
	b := Zone{Write: 2, MinFinish: 30, MaxStart: 25}
	if b.Forward() {
		t.Error("MinFinish > MaxStart must be backward")
	}
	if b.Low() != 25 || b.High() != 30 {
		t.Errorf("Low/High = %d/%d, want 25/30", b.Low(), b.High())
	}
	if !strings.Contains(z.String(), "FZ") || !strings.Contains(b.String(), "BZ") {
		t.Errorf("String(): %q %q", z.String(), b.String())
	}
}

func TestZonesComputation(t *testing.T) {
	// Write [0,10]; reads [5,20] and [15,30]: cluster min finish = 10
	// (write, after normalization it stays minimal), max start = 15.
	p := prep(t, "w 1 0 10; r 1 5 20; r 1 15 30")
	zs := Zones(p)
	if len(zs) != 1 {
		t.Fatalf("Zones = %v, want 1", zs)
	}
	z := zs[0]
	if !z.Forward() {
		t.Errorf("expected forward zone, got %v", z)
	}
	wop := p.Op(z.Write)
	if wop.Value != 1 {
		t.Errorf("zone write value = %d, want 1", wop.Value)
	}
}

func TestZonesWriteWithoutReadsIsBackward(t *testing.T) {
	p := prep(t, "w 1 0 10")
	zs := Zones(p)
	if len(zs) != 1 || zs[0].Forward() {
		t.Fatalf("write-only cluster should have a backward zone: %v", zs)
	}
}

func TestZonesConcurrentReadBackward(t *testing.T) {
	// Read entirely concurrent with its write: max start < min finish.
	p := prep(t, "w 1 0 20; r 1 5 30")
	zs := Zones(p)
	if len(zs) != 1 || zs[0].Forward() {
		t.Fatalf("overlapping cluster should be backward: %v", zs)
	}
}

func TestCheck1AtomicSequential(t *testing.T) {
	p := prep(t, "w 1 0 10; r 1 20 30; w 2 40 50; r 2 60 70")
	ok, v := Check1Atomic(p)
	if !ok {
		t.Errorf("sequential history not 1-atomic: %v", v)
	}
}

func TestCheck1AtomicForwardOverlap(t *testing.T) {
	// Two forward zones that overlap: write1 [0,10] with read [50,60]
	// (zone [10,50]), write2 [20,30] with read [70,80] (zone [30,70]).
	p := prep(t, "w 1 0 10; r 1 50 60; w 2 20 30; r 2 70 80")
	ok, v := Check1Atomic(p)
	if ok {
		t.Fatal("overlapping forward zones accepted as 1-atomic")
	}
	if v == nil || v.Kind != "forward-overlap" {
		t.Errorf("violation = %v, want forward-overlap", v)
	}
	if !strings.Contains(v.String(), "forward-overlap") {
		t.Errorf("violation String() = %q", v.String())
	}
}

func TestCheck1AtomicBackwardInForward(t *testing.T) {
	// Forward zone [10, 100] from w1[0,10], r1[100,110].
	// Backward cluster w2 [40,60] with no reads: zone [40,60] nested inside.
	p := prep(t, "w 1 0 10; r 1 100 110; w 2 40 60")
	ok, v := Check1Atomic(p)
	if ok {
		t.Fatal("backward zone nested in forward zone accepted as 1-atomic")
	}
	if v == nil || v.Kind != "backward-in-forward" {
		t.Errorf("violation = %v, want backward-in-forward", v)
	}
}

func TestCheck1AtomicStaleReadRejected(t *testing.T) {
	// Classic staleness: w1 then w2 complete, then a read returns w1.
	// Zones: cluster1 = w1[0,10] + r1[40,50] → forward [10,40];
	// cluster2 = w2[15,25] + r2[60,70] → forward [25,60]. They overlap.
	p := prep(t, "w 1 0 10; w 2 15 25; r 1 40 50; r 2 60 70")
	ok, _ := Check1Atomic(p)
	if ok {
		t.Error("stale read accepted as 1-atomic")
	}
}

func TestCheck1AtomicConcurrentWritesOK(t *testing.T) {
	// Two concurrent writes; only the second is read afterwards, so the
	// order w1 w2 r2 is a valid 1-atomic total order.
	p := prep(t, "w 1 0 30; w 2 5 35; r 2 40 50")
	ok, v := Check1Atomic(p)
	if !ok {
		t.Errorf("valid history rejected: %v", v)
	}
}

// figure3Zones reconstructs the zone structure of Figure 3 in the paper:
// eight forward zones in three chains and seven backward zones, of which
// BZ2, BZ5, BZ7 are dangling. Write IDs 1..8 are FZ1..FZ8 and 11..17 are
// BZ1..BZ7.
func figure3Zones() []Zone {
	fz := func(w int, lo, hi int64) Zone { return Zone{Write: w, MinFinish: lo, MaxStart: hi} }
	bz := func(w int, lo, hi int64) Zone { return Zone{Write: w, MinFinish: hi, MaxStart: lo} }
	return []Zone{
		// Chunk 1: single forward zone FZ1 spanning [0,20].
		fz(1, 0, 20),
		// Chunk 2: chain FZ2 [30,50], FZ3 [45,70], FZ4 [65,90]
		// (middle shape: FZ2 ends before FZ3 ends).
		fz(2, 30, 50), fz(3, 45, 70), fz(4, 65, 90),
		// Chunk 3: chain FZ5 [100,140], FZ6 [110,125], FZ7 [120,160],
		// FZ8 [150,180] (right shape: FZ5 ends after FZ6 ends).
		fz(5, 100, 140), fz(6, 110, 125), fz(7, 120, 160), fz(8, 150, 180),
		// Backward zones.
		bz(11, 5, 15),    // BZ1: inside chunk 1
		bz(12, 22, 28),   // BZ2: dangling, between chunks 1 and 2
		bz(13, 35, 42),   // BZ3: inside chunk 2
		bz(14, 72, 88),   // BZ4: inside chunk 2
		bz(15, 92, 98),   // BZ5: dangling, between chunks 2 and 3
		bz(16, 112, 118), // BZ6: inside chunk 3
		bz(17, 185, 195), // BZ7: dangling, after chunk 3
	}
}

func TestFigure3Decomposition(t *testing.T) {
	dec := DecomposeZones(figure3Zones())
	if len(dec.Chunks) != 3 {
		t.Fatalf("chunks = %d, want 3 (%+v)", len(dec.Chunks), dec.Chunks)
	}
	wantForward := [][]int{{1}, {2, 3, 4}, {5, 6, 7, 8}}
	wantBackward := [][]int{{11}, {13, 14}, {16}}
	for i, ch := range dec.Chunks {
		if !equalInts(ch.Forward, wantForward[i]) {
			t.Errorf("chunk %d forward = %v, want %v", i, ch.Forward, wantForward[i])
		}
		if !equalInts(ch.Backward, wantBackward[i]) {
			t.Errorf("chunk %d backward = %v, want %v", i, ch.Backward, wantBackward[i])
		}
	}
	if !equalInts(dec.Dangling, []int{12, 15, 17}) {
		t.Errorf("dangling = %v, want [12 15 17]", dec.Dangling)
	}
	// Union intervals must cover their forward zones.
	if dec.Chunks[1].Lo != 30 || dec.Chunks[1].Hi != 90 {
		t.Errorf("chunk 2 interval = [%d,%d], want [30,90]", dec.Chunks[1].Lo, dec.Chunks[1].Hi)
	}
	if dec.Chunks[2].Lo != 100 || dec.Chunks[2].Hi != 180 {
		t.Errorf("chunk 3 interval = [%d,%d], want [100,180]", dec.Chunks[2].Lo, dec.Chunks[2].Hi)
	}
}

func TestDecomposeBackwardStraddlingBoundaryIsDangling(t *testing.T) {
	zs := []Zone{
		{Write: 1, MinFinish: 0, MaxStart: 20},  // forward [0,20]
		{Write: 2, MinFinish: 25, MaxStart: 15}, // backward [15,25] straddles chunk end
	}
	dec := DecomposeZones(zs)
	if len(dec.Chunks) != 1 || len(dec.Chunks[0].Backward) != 0 {
		t.Fatalf("straddling backward zone assigned to chunk: %+v", dec)
	}
	if !equalInts(dec.Dangling, []int{2}) {
		t.Errorf("dangling = %v, want [2]", dec.Dangling)
	}
}

func TestDecomposeBackwardBeforeAllChunks(t *testing.T) {
	zs := []Zone{
		{Write: 1, MinFinish: 50, MaxStart: 80}, // forward [50,80]
		{Write: 2, MinFinish: 20, MaxStart: 10}, // backward [10,20] before chunk
	}
	dec := DecomposeZones(zs)
	if !equalInts(dec.Dangling, []int{2}) {
		t.Errorf("dangling = %v, want [2]", dec.Dangling)
	}
}

func TestDecomposeNoForwardZones(t *testing.T) {
	zs := []Zone{
		{Write: 1, MinFinish: 20, MaxStart: 10},
		{Write: 2, MinFinish: 40, MaxStart: 30},
	}
	dec := DecomposeZones(zs)
	if len(dec.Chunks) != 0 {
		t.Errorf("chunks = %+v, want none", dec.Chunks)
	}
	if !equalInts(dec.Dangling, []int{1, 2}) {
		t.Errorf("dangling = %v, want [1 2]", dec.Dangling)
	}
}

func TestDecomposeEndToEnd(t *testing.T) {
	// Two overlapping forward clusters plus one nested backward cluster.
	// w1[0,10] r1[30,40] → FZ [10,30]; w2[15,25] r2[50,60] → FZ [25,50];
	// w3[32,38] (no reads) → BZ [32,38] nested in union [10,50].
	p := prep(t, "w 1 0 10; r 1 30 40; w 2 15 25; r 2 50 60; w 3 32 38")
	dec := Decompose(p)
	if len(dec.Chunks) != 1 {
		t.Fatalf("chunks = %+v, want 1", dec.Chunks)
	}
	ch := dec.Chunks[0]
	if len(ch.Forward) != 2 {
		t.Errorf("forward = %v, want 2 writes", ch.Forward)
	}
	if len(ch.Backward) != 1 || p.Op(ch.Backward[0]).Value != 3 {
		t.Errorf("backward = %v, want the value-3 write", ch.Backward)
	}
	if len(dec.Dangling) != 0 {
		t.Errorf("dangling = %v, want none", dec.Dangling)
	}
	// Forward writes must be ordered by zone low endpoint: value 1 first.
	if p.Op(ch.Forward[0]).Value != 1 || p.Op(ch.Forward[1]).Value != 2 {
		t.Errorf("forward order wrong: values %d,%d",
			p.Op(ch.Forward[0]).Value, p.Op(ch.Forward[1]).Value)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
