package zone

// Safe segment cuts.
//
// A position i of a prepared history (sorted by start time) is a safe cut
// when
//
//	(a) every operation before i finishes before every operation at or
//	    after i starts (real-time quiescence), and
//	(b) no read at or after i returns a value written before i
//	    (value-closedness).
//
// Splitting at safe cuts preserves k-atomicity for every k: condition (a)
// forces any total order consistent with real time to place the whole prefix
// before the whole suffix, so a candidate witness is exactly a witness for
// the prefix followed by one for the suffix; condition (b) keeps every
// read's dictating write on the read's own side, so the writes between a
// dictating write and its read in the concatenated order are precisely the
// writes between them in that side's order. Hence the history is k-atomic
// iff both sides are, and the smallest k of the whole history is the
// maximum of the sides' smallest k.
//
// This is the same structural boundary the chunk decomposition exploits: a
// chunk's zones all overlap the chunk interval, so a safe cut can never
// bisect a chunk — every safe cut falls between chunks (or next to dangling
// clusters). The streaming segmenter in internal/trace discovers condition
// (a) online via Quiescent and enforces (b) by merging segments a read
// refers back into.

import "kat/internal/history"

// Quiescent reports whether a cut may be placed between two operation
// groups: maxFinishBefore is the maximum finish time of every earlier
// operation and nextStart the minimum start time of every later one.
// Quiescence requires every earlier operation to strictly precede every
// later one. This is the streaming cut primitive: a parser that sees
// operations in nondecreasing start order per key can commit a cut the
// moment an arriving operation satisfies it.
func Quiescent(maxFinishBefore, nextStart int64) bool {
	return maxFinishBefore < nextStart
}

// SafeCut reports whether position i is a safe segment boundary of the
// prepared history: ops[:i] and ops[i:] are quiescent and value-closed as
// defined above. Positions 0 and Len() are trivially safe (empty side).
func SafeCut(p *history.Prepared, i int) bool {
	n := p.Len()
	if i <= 0 || i >= n {
		return i == 0 || i == n
	}
	var maxFinish int64
	for j := 0; j < i; j++ {
		if f := p.Op(j).Finish; f > maxFinish {
			maxFinish = f
		}
	}
	if !Quiescent(maxFinish, p.Op(i).Start) {
		return false
	}
	for j := i; j < n; j++ {
		if w := p.DictatingWrite[j]; w >= 0 && w < i {
			return false
		}
	}
	return true
}

// Cuts returns every interior safe cut position of the prepared history in
// increasing order (the trivial cuts 0 and Len() are omitted). Runs in
// O(n): a prefix maximum of finish times checks quiescence and a suffix
// minimum of dictating-write indices checks value-closedness.
func Cuts(p *history.Prepared) []int {
	n := p.Len()
	if n < 2 {
		return nil
	}
	// minDW[i] = minimum dictating-write index over reads in ops[i:]
	// (n when the suffix has no reads).
	minDW := make([]int, n+1)
	minDW[n] = n
	for i := n - 1; i >= 0; i-- {
		minDW[i] = minDW[i+1]
		if w := p.DictatingWrite[i]; w >= 0 && w < minDW[i] {
			minDW[i] = w
		}
	}
	var out []int
	maxFinish := p.Op(0).Finish
	for i := 1; i < n; i++ {
		if Quiescent(maxFinish, p.Op(i).Start) && minDW[i] >= i {
			out = append(out, i)
		}
		if f := p.Op(i).Finish; f > maxFinish {
			maxFinish = f
		}
	}
	return out
}
