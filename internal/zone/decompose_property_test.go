package zone

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kat/internal/generator"
	"kat/internal/history"
)

// decompositionsEqual compares two decompositions structurally.
func decompositionsEqual(t *testing.T, a, b Decomposition) bool {
	t.Helper()
	if len(a.Chunks) != len(b.Chunks) || len(a.Dangling) != len(b.Dangling) {
		t.Logf("shape differs: %d/%d chunks, %d/%d dangling",
			len(a.Chunks), len(b.Chunks), len(a.Dangling), len(b.Dangling))
		return false
	}
	for i := range a.Chunks {
		ca, cb := a.Chunks[i], b.Chunks[i]
		if ca.Lo != cb.Lo || ca.Hi != cb.Hi {
			t.Logf("chunk %d interval differs: [%d,%d] vs [%d,%d]", i, ca.Lo, ca.Hi, cb.Lo, cb.Hi)
			return false
		}
		if len(ca.Forward) != len(cb.Forward) || len(ca.Backward) != len(cb.Backward) {
			t.Logf("chunk %d member counts differ", i)
			return false
		}
		for j := range ca.Forward {
			if ca.Forward[j] != cb.Forward[j] {
				t.Logf("chunk %d forward member %d differs: %d vs %d", i, j, ca.Forward[j], cb.Forward[j])
				return false
			}
		}
		for j := range ca.Backward {
			if ca.Backward[j] != cb.Backward[j] {
				t.Logf("chunk %d backward member %d differs: %d vs %d", i, j, ca.Backward[j], cb.Backward[j])
				return false
			}
		}
	}
	for i := range a.Dangling {
		if a.Dangling[i] != b.Dangling[i] {
			t.Logf("dangling %d differs: %d vs %d", i, a.Dangling[i], b.Dangling[i])
			return false
		}
	}
	return true
}

// TestPropertyDecomposeScratchEquivalent checks that the allocation-free
// DecomposeScratch produces exactly the Decomposition of the reference
// Decompose on arbitrary histories — chunk intervals, member lists in order,
// and dangling clusters — including across scratch reuse (stale buffer
// contents from a previous, differently-shaped history must not leak).
func TestPropertyDecomposeScratchEquivalent(t *testing.T) {
	s := &Scratch{} // deliberately shared across all iterations
	prop := func(qh generator.QuickHistory) bool {
		p, err := history.Prepare(qh.H)
		if err != nil {
			return false
		}
		want := Decompose(p)
		got := DecomposeScratch(p, s)
		if !decompositionsEqual(t, want, got) {
			return false
		}
		// Idempotence under immediate reuse with the same input.
		again := DecomposeScratch(p, s)
		return decompositionsEqual(t, want, again)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

// TestDecomposeChunkBoundaryEdgeCases pins the boundary semantics of chunk
// formation on hand-built zone lists: adjacent (non-overlapping) forward
// zones split into separate chunks, strictly overlapping ones merge,
// backward zones assign by closed-interval nesting, and single-cluster
// chunks (the smallest work units of the chunk scheduler) form correctly.
func TestDecomposeChunkBoundaryEdgeCases(t *testing.T) {
	fz := func(w int, lo, hi int64) Zone { return Zone{Write: w, MinFinish: lo, MaxStart: hi} }
	bz := func(w int, lo, hi int64) Zone { return Zone{Write: w, MinFinish: hi, MaxStart: lo} }

	cases := []struct {
		name     string
		zones    []Zone
		chunks   []Chunk
		dangling []int
	}{
		{
			name:  "adjacent-forward-zones-touching-endpoints-split",
			zones: []Zone{fz(0, 0, 10), fz(1, 10, 20)},
			// z1.Low == z0.High: zones only touch, union not continuous
			// beyond a point — two chunks (merge requires strict overlap).
			chunks: []Chunk{
				{Lo: 0, Hi: 10, Forward: []int{0}},
				{Lo: 10, Hi: 20, Forward: []int{1}},
			},
		},
		{
			name:   "overlapping-forward-zones-merge",
			zones:  []Zone{fz(0, 0, 10), fz(1, 9, 20)},
			chunks: []Chunk{{Lo: 0, Hi: 20, Forward: []int{0, 1}}},
		},
		{
			name:   "nested-forward-zone-merges-without-extending",
			zones:  []Zone{fz(0, 0, 20), fz(1, 5, 15)},
			chunks: []Chunk{{Lo: 0, Hi: 20, Forward: []int{0, 1}}},
		},
		{
			name:  "backward-zone-nests-inside-chunk",
			zones: []Zone{fz(0, 0, 20), bz(1, 5, 15)},
			chunks: []Chunk{
				{Lo: 0, Hi: 20, Forward: []int{0}, Backward: []int{1}},
			},
		},
		{
			name:  "backward-zone-at-exact-chunk-bounds-nests",
			zones: []Zone{fz(0, 0, 20), bz(1, 0, 20)},
			chunks: []Chunk{
				{Lo: 0, Hi: 20, Forward: []int{0}, Backward: []int{1}},
			},
		},
		{
			name:     "backward-zone-straddling-chunk-edge-dangles",
			zones:    []Zone{fz(0, 0, 20), bz(1, 15, 25)},
			chunks:   []Chunk{{Lo: 0, Hi: 20, Forward: []int{0}}},
			dangling: []int{1},
		},
		{
			name:     "backward-zone-in-gap-dangles",
			zones:    []Zone{fz(0, 0, 10), fz(1, 30, 40), bz(2, 15, 25)},
			chunks:   []Chunk{{Lo: 0, Hi: 10, Forward: []int{0}}, {Lo: 30, Hi: 40, Forward: []int{1}}},
			dangling: []int{2},
		},
		{
			name:     "only-backward-zones-all-dangle",
			zones:    []Zone{bz(0, 0, 10), bz(1, 5, 15)},
			dangling: []int{0, 1},
		},
		{
			name:  "single-op-wide-chunks-interleaved-with-backward",
			zones: []Zone{fz(0, 0, 2), bz(1, 0, 2), fz(2, 10, 12), bz(3, 11, 12)},
			chunks: []Chunk{
				{Lo: 0, Hi: 2, Forward: []int{0}, Backward: []int{1}},
				{Lo: 10, Hi: 12, Forward: []int{2}, Backward: []int{3}},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := DecomposeZones(tc.zones)
			want := Decomposition{Chunks: tc.chunks, Dangling: tc.dangling}
			if !decompositionsEqual(t, want, got) {
				t.Fatalf("DecomposeZones = %+v, want %+v", got, want)
			}
		})
	}
}

// TestOneAtomicMatchesCheck1Atomic: the chunk-local verdict aggregated over
// the decomposition must agree with the sequential Check1Atomic sweep on
// arbitrary histories (the k=1 leg of the chunk scheduler's equivalence).
func TestOneAtomicMatchesCheck1Atomic(t *testing.T) {
	prop := func(qh generator.QuickHistory) bool {
		p, err := history.Prepare(qh.H)
		if err != nil {
			return false
		}
		want, _ := Check1Atomic(p)
		got := true
		for _, ch := range Decompose(p).Chunks {
			if !ch.OneAtomic() {
				got = false
				break
			}
		}
		if got != want {
			t.Logf("chunk verdict %v, sweep %v", got, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}
