package zone

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kat/internal/generator"
	"kat/internal/history"
)

// TestPropertyDecompositionInvariants checks the structural invariants of
// CS(H) from Section IV on arbitrary histories:
//
//  1. every forward cluster belongs to exactly one chunk;
//  2. chunk intervals are disjoint and sorted;
//  3. chunk members' forward zones lie within the chunk interval and their
//     union is continuous (adjacent zones overlap);
//  4. backward clusters assigned to a chunk nest inside its interval;
//  5. dangling clusters are backward and nest inside no chunk interval.
func TestPropertyDecompositionInvariants(t *testing.T) {
	prop := func(qh generator.QuickHistory) bool {
		p, err := history.Prepare(qh.H)
		if err != nil {
			return false
		}
		zs := Zones(p)
		byWrite := make(map[int]Zone, len(zs))
		for _, z := range zs {
			byWrite[z.Write] = z
		}
		dec := Decompose(p)

		seen := make(map[int]int)
		prevHi := int64(-1 << 62)
		for ci, ch := range dec.Chunks {
			if ch.Lo >= ch.Hi {
				t.Logf("chunk %d empty interval [%d,%d]", ci, ch.Lo, ch.Hi)
				return false
			}
			if ch.Lo <= prevHi {
				t.Logf("chunk %d overlaps previous (lo=%d prevHi=%d)", ci, ch.Lo, prevHi)
				return false
			}
			prevHi = ch.Hi
			var unionHi int64
			for i, w := range ch.Forward {
				z := byWrite[w]
				if !z.Forward() {
					return false
				}
				if z.Low() < ch.Lo || z.High() > ch.Hi {
					return false
				}
				if i == 0 {
					if z.Low() != ch.Lo {
						return false
					}
					unionHi = z.High()
				} else {
					if z.Low() >= unionHi {
						t.Logf("chunk %d not continuous at member %d", ci, i)
						return false
					}
					if z.High() > unionHi {
						unionHi = z.High()
					}
				}
				seen[w]++
			}
			if unionHi != ch.Hi {
				return false
			}
			for _, w := range ch.Backward {
				z := byWrite[w]
				if z.Forward() {
					return false
				}
				if z.Low() < ch.Lo || z.High() > ch.Hi {
					return false
				}
				seen[w]++
			}
		}
		for _, w := range dec.Dangling {
			z := byWrite[w]
			if z.Forward() {
				t.Logf("dangling cluster %d is forward", w)
				return false
			}
			for _, ch := range dec.Chunks {
				if ch.Lo <= z.Low() && z.High() <= ch.Hi {
					t.Logf("dangling cluster %d nests in chunk [%d,%d]", w, ch.Lo, ch.Hi)
					return false
				}
			}
			seen[w]++
		}
		// Exactly once each; every cluster accounted for.
		for _, z := range zs {
			n := seen[z.Write]
			if z.Forward() && n != 1 {
				t.Logf("forward cluster %d appears %d times", z.Write, n)
				return false
			}
			if !z.Forward() && n > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestPropertyZoneEndpoints: Low <= High always, and Forward() agrees with
// the endpoint comparison.
func TestPropertyZoneEndpoints(t *testing.T) {
	prop := func(qh generator.QuickHistory) bool {
		p, err := history.Prepare(qh.H)
		if err != nil {
			return false
		}
		for _, z := range Zones(p) {
			if z.Low() > z.High() {
				return false
			}
			if z.Forward() != (z.MinFinish < z.MaxStart) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}
