package oracle

import (
	"testing"

	"kat/internal/history"
	"kat/internal/witness"
)

func prep(t *testing.T, text string) *history.Prepared {
	t.Helper()
	p, err := history.Prepare(history.Normalize(history.MustParse(text)))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	return p
}

func checkK(t *testing.T, text string, k int) Result {
	t.Helper()
	p := prep(t, text)
	res, err := CheckK(p, k, Options{})
	if err != nil {
		t.Fatalf("CheckK: %v", err)
	}
	if res.Atomic {
		if err := witness.Validate(p, res.Witness, k); err != nil {
			t.Fatalf("oracle produced invalid witness: %v", err)
		}
	}
	return res
}

func TestEmptyHistory(t *testing.T) {
	if res := checkK(t, "", 1); !res.Atomic {
		t.Error("empty history not 1-atomic")
	}
}

func TestKValidation(t *testing.T) {
	p := prep(t, "w 1 0 10")
	if _, err := CheckK(p, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := CheckWeighted(p, 0, Options{}); err == nil {
		t.Error("weighted bound 0 accepted")
	}
}

func TestSequentialHistoryAtomic(t *testing.T) {
	if res := checkK(t, "w 1 0 10; r 1 20 30; w 2 40 50; r 2 60 70", 1); !res.Atomic {
		t.Error("sequential history not 1-atomic")
	}
}

func TestStaleReadNeeds2(t *testing.T) {
	// w1 completes, w2 completes, then a read returns w1's value.
	text := "w 1 0 10; w 2 20 30; r 1 40 50"
	if res := checkK(t, text, 1); res.Atomic {
		t.Error("stale read accepted at k=1")
	}
	if res := checkK(t, text, 2); !res.Atomic {
		t.Error("1-stale read rejected at k=2")
	}
}

func TestDepth3Staleness(t *testing.T) {
	// Three completed writes, read returns the first value: needs k=3.
	text := "w 1 0 10; w 2 20 30; w 3 40 50; r 1 60 70"
	if res := checkK(t, text, 2); res.Atomic {
		t.Error("2-stale read accepted at k=2")
	}
	if res := checkK(t, text, 3); !res.Atomic {
		t.Error("2-stale read rejected at k=3")
	}
}

func TestConcurrentWritesGiveFreedom(t *testing.T) {
	// Concurrent writes can be ordered to satisfy both readers at k=1.
	text := "w 1 0 30; w 2 5 35; r 1 40 50; r 2 60 70"
	if res := checkK(t, text, 2); !res.Atomic {
		t.Error("should be 2-atomic: order w2 w1 r1 r2 or w1 w2 ... ")
	}
	// But k=1 requires r1's write immediately before it while w2 precedes
	// r1 in time (w2.f=35 < r1.s=40)... w2 must be ordered before r1, and
	// w1 must be the closest write before r1, so order w2 w1 r1 r2 — then
	// r2 is separated from w2 by w1: not 1-atomic.
	if res := checkK(t, text, 1); res.Atomic {
		t.Error("accepted at k=1 but every valid order leaves one read stale")
	}
}

func TestInterleavedRequiresOrderChoice(t *testing.T) {
	// The oracle must pick the write order that satisfies the reads:
	// two concurrent writes, reads observe 2 then 1 → order w2 w1 is
	// impossible at k=1 because r2 happens first... Actually with reads
	// sequential after both writes: r(2) then r(1) cannot be 1-atomic
	// (the second read goes backwards) but is 2-atomic.
	text := "w 1 0 30; w 2 5 35; r 2 40 50; r 1 60 70"
	if res := checkK(t, text, 1); res.Atomic {
		t.Error("monotonicity violation accepted at k=1")
	}
	if res := checkK(t, text, 2); !res.Atomic {
		t.Error("rejected at k=2: order w1 w2 r2 r1 works")
	}
}

func TestConcurrentReadersDifferentValues(t *testing.T) {
	// Two concurrent reads during two concurrent writes, each sees a
	// different value: 1-atomic (order w1 r1 w2 r2).
	text := "w 1 0 100; w 2 10 110; r 1 20 120; r 2 30 130"
	if res := checkK(t, text, 1); !res.Atomic {
		t.Error("concurrent overlap rejected at k=1")
	}
}

func TestWriteWithoutReads(t *testing.T) {
	// Unread writes can be placed anywhere valid; here w2 is unread.
	text := "w 1 0 10; w 2 20 30; r 1 40 50"
	if res := checkK(t, text, 2); !res.Atomic {
		t.Error("rejected at k=2")
	}
}

func TestLongChainOfStaleReads(t *testing.T) {
	// Writes w1..w4 sequential; all reads return w1: staleness grows.
	text := `
w 1 0 10
w 2 20 30
w 3 40 50
w 4 60 70
r 1 80 90
`
	for k := 1; k <= 3; k++ {
		if res := checkK(t, text, k); res.Atomic {
			t.Errorf("3-stale read accepted at k=%d", k)
		}
	}
	if res := checkK(t, text, 4); !res.Atomic {
		t.Error("3-stale read rejected at k=4")
	}
}

func TestReadMustFollowWriteBlocks(t *testing.T) {
	// r(2) precedes w(1) in time; w2 concurrent with everything. The only
	// valid orders put w2 before r2, and w1 after r2 finishes... check the
	// oracle handles ordering constraints between clusters.
	text := "w 2 0 100; r 2 10 20; w 1 30 40; r 1 50 60"
	if res := checkK(t, text, 1); !res.Atomic {
		t.Error("should be 1-atomic: w2 r2 w1 r1")
	}
}

func TestWeightedUnitEqualsPlain(t *testing.T) {
	texts := []string{
		"w 1 0 10; w 2 20 30; r 1 40 50",
		"w 1 0 10; r 1 20 30; w 2 40 50; r 2 60 70",
		"w 1 0 30; w 2 5 35; r 2 40 50; r 1 60 70",
		"w 1 0 10; w 2 20 30; w 3 40 50; r 1 60 70",
	}
	for _, text := range texts {
		p := prep(t, text)
		for k := 1; k <= 4; k++ {
			plain, err := CheckK(p, k, Options{})
			if err != nil {
				t.Fatalf("CheckK: %v", err)
			}
			weighted, err := CheckWeighted(p, int64(k), Options{})
			if err != nil {
				t.Fatalf("CheckWeighted: %v", err)
			}
			if plain.Atomic != weighted.Atomic {
				t.Errorf("history %q k=%d: plain=%v weighted=%v", text, k, plain.Atomic, weighted.Atomic)
			}
		}
	}
}

func TestWeightedHeavyWrite(t *testing.T) {
	// Heavy write between a write and its read: weight 5 blocks bound 5
	// (1 for the dictating write + 5 intervening = 6).
	text := "w 1 0 10; w 2 20 30 weight=5; r 1 40 50"
	p := prep(t, text)
	res, err := CheckWeighted(p, 5, Options{})
	if err != nil {
		t.Fatalf("CheckWeighted: %v", err)
	}
	if res.Atomic {
		t.Error("bound-5 accepted with separation 6")
	}
	res, err = CheckWeighted(p, 6, Options{})
	if err != nil {
		t.Fatalf("CheckWeighted: %v", err)
	}
	if !res.Atomic {
		t.Error("bound-6 rejected with separation 6")
	}
	if err := witness.ValidateWeighted(p, res.Witness, 6); err != nil {
		t.Errorf("weighted witness invalid: %v", err)
	}
}

func TestWeightedHeavyWriteCanSlideOut(t *testing.T) {
	// The heavy write is concurrent with everything, so it can be placed
	// after the read: bound 2 suffices.
	text := "w 1 0 10; w 2 15 100 weight=50; r 1 20 30"
	p := prep(t, text)
	res, err := CheckWeighted(p, 1, Options{})
	if err != nil {
		t.Fatalf("CheckWeighted: %v", err)
	}
	if !res.Atomic {
		t.Error("heavy concurrent write should slide after the read at bound 1")
	}
}

func TestStateLimit(t *testing.T) {
	// A dense all-concurrent history with an unsatisfiable read forces
	// exhaustive search; a tiny state budget must trip the limit error.
	text := `
w 1 0 1000; w 2 1 1001; w 3 2 1002; w 4 3 1003; w 5 4 1004
w 6 5 1005; w 7 6 1006; w 8 7 1007; w 9 8 1008; w 10 9 1009
w 11 10 1010; w 12 11 1011; w 13 12 1012; w 14 13 1013; w 15 14 1014
w 16 15 1015; w 17 16 1016; w 18 17 1017; w 19 18 1018; w 20 19 1019
`
	// Make it need real search: read of value 1 after everything.
	text += "r 1 2000 2010\n"
	p := prep(t, text)
	_, err := CheckK(p, 1, Options{MaxStates: 3})
	if err == nil {
		t.Skip("search solved within 3 states; pruning too good for this input")
	}
}

func TestWitnessOrderIsReported(t *testing.T) {
	p := prep(t, "w 1 0 10; r 1 20 30")
	res, err := CheckK(p, 1, Options{})
	if err != nil || !res.Atomic {
		t.Fatalf("CheckK: %v %+v", err, res)
	}
	if len(res.Witness) != 2 {
		t.Fatalf("witness = %v", res.Witness)
	}
	if !p.Op(res.Witness[0]).IsWrite() {
		t.Error("witness does not start with the write")
	}
}
