// Package oracle implements an exact decision procedure for k-atomicity and
// weighted k-atomicity of arbitrary histories, for any k. It performs a
// memoized depth-first search over valid prefixes of a total order, placing
// reads eagerly (which is safe — see below) and branching only over writes.
//
// The oracle is exponential in the worst case — consistent with Section V's
// NP-completeness result for the weighted problem and with the absence of
// known polynomial algorithms for k ≥ 3 — but with eager read placement and
// dead-write pruning it handles the history sizes used for ground truth in
// tests and as the k ≥ 3 fallback in the public API.
//
// Why eager reads are safe: if a valid k-atomic extension exists from the
// current prefix, and read r is appendable (no unplaced operation precedes
// it) with its dictating write's staleness budget not yet exhausted, then
// moving r to the front of the extension keeps the order valid (nothing
// unplaced precedes r) and cannot hurt any other operation (moving a read
// earlier never changes the number of writes separating any other read from
// its dictating write).
package oracle

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"kat/internal/history"
)

// ErrStateLimit is returned when the search exceeds its state budget. The
// answer is then unknown; callers can retry with a larger budget.
var ErrStateLimit = errors.New("oracle: state budget exhausted")

// DefaultMaxStates bounds the number of distinct memoized states explored.
const DefaultMaxStates = 2_000_000

// Options tune the search.
type Options struct {
	// MaxStates bounds memoized states; 0 means DefaultMaxStates.
	MaxStates int
	// UseWeights makes the check weighted (Section V): the total weight
	// of writes from a read's dictating write (inclusive) to the read
	// must be at most k. When false, every write counts 1 and the bound
	// k corresponds to plain k-atomicity.
	UseWeights bool
}

// Result reports a decision and, for positive answers, a witness.
type Result struct {
	// Atomic is the decision.
	Atomic bool
	// Witness is a valid k-atomic total order (operation indices into the
	// prepared history) when Atomic is true.
	Witness []int
	// States is the number of search states explored (diagnostics).
	States int
}

// CheckK decides whether the prepared history is k-atomic.
func CheckK(p *history.Prepared, k int, opts Options) (Result, error) {
	if k < 1 {
		return Result{}, fmt.Errorf("oracle: k must be >= 1, got %d", k)
	}
	opts.UseWeights = false
	s := newSearch(p, int64(k), opts)
	return s.run()
}

// CheckWeighted decides the weighted k-AV problem of Section V: every read
// must be within total write weight k of its dictating write, counting the
// dictating write itself.
func CheckWeighted(p *history.Prepared, k int64, opts Options) (Result, error) {
	if k < 1 {
		return Result{}, fmt.Errorf("oracle: weight bound must be >= 1, got %d", k)
	}
	opts.UseWeights = true
	s := newSearch(p, k, opts)
	return s.run()
}

type search struct {
	p     *history.Prepared
	bound int64 // k (plain) or weight bound (weighted)
	opts  Options

	n          int
	placed     []bool
	pendingRds []int   // per write: number of unplaced dictated reads
	load       []int64 // per write: own weight + weights of writes placed after it
	weight     []int64 // effective weight per op (1 for plain k-AV)
	liveWrites []int   // writes placed with pendingRds > 0, in placement order
	order      []int   // placement order so far

	// byStart lists unplaced op indices sorted by start; cursor-based
	// removal is handled with a boolean filter during scans (the oracle
	// favors clarity over constants; it is the reference implementation).
	byStart  []int
	byFinish []int

	memo   map[string]struct{}
	states int
	limit  int
	found  []int // witness captured at the success leaf (before unwinding)
}

func newSearch(p *history.Prepared, bound int64, opts Options) *search {
	n := p.Len()
	s := &search{
		p:          p,
		bound:      bound,
		opts:       opts,
		n:          n,
		placed:     make([]bool, n),
		pendingRds: make([]int, n),
		load:       make([]int64, n),
		weight:     make([]int64, n),
		byStart:    make([]int, 0, n),
		byFinish:   make([]int, 0, n),
		memo:       make(map[string]struct{}),
		limit:      opts.MaxStates,
	}
	if s.limit <= 0 {
		s.limit = DefaultMaxStates
	}
	for i := 0; i < n; i++ {
		s.byStart = append(s.byStart, i) // prepared history is start-sorted
		s.byFinish = append(s.byFinish, i)
		if p.Op(i).IsWrite() {
			s.pendingRds[i] = len(p.DictatedReads[i])
			if opts.UseWeights {
				s.weight[i] = p.Op(i).EffectiveWeight()
			} else {
				s.weight[i] = 1
			}
		}
	}
	sort.Slice(s.byFinish, func(a, b int) bool {
		return p.Op(s.byFinish[a]).Finish < p.Op(s.byFinish[b]).Finish
	})
	return s
}

func (s *search) run() (Result, error) {
	ok, err := s.dfs(s.n)
	res := Result{Atomic: ok, States: s.states}
	if err != nil {
		return res, err
	}
	if ok {
		res.Witness = s.found
	}
	return res, nil
}

// minFinishes returns the two smallest finish times among unplaced ops
// (math.MaxInt64 when absent).
func (s *search) minFinishes() (int64, int64) {
	m1, m2 := int64(math.MaxInt64), int64(math.MaxInt64)
	for _, i := range s.byFinish {
		if s.placed[i] {
			continue
		}
		f := s.p.Op(i).Finish
		if f < m1 {
			m1, m2 = f, m1
		} else if f < m2 {
			m2 = f
		}
		if m2 != math.MaxInt64 {
			break
		}
	}
	return m1, m2
}

// appendable reports whether op i may be placed next: no unplaced other
// operation precedes it.
func (s *search) appendable(i int, m1, m2 int64) bool {
	threshold := m1
	if s.p.Op(i).Finish == m1 {
		threshold = m2
	}
	return s.p.Op(i).Start < threshold
}

// placeRead places read r (caller checked constraints).
func (s *search) placeRead(r int) {
	s.placed[r] = true
	s.pendingRds[s.p.DictatingWrite[r]]--
	s.order = append(s.order, r)
}

func (s *search) unplaceRead(r int) {
	s.placed[r] = false
	s.pendingRds[s.p.DictatingWrite[r]]++
	s.order = s.order[:len(s.order)-1]
}

// placeEagerReads places every appendable read whose staleness budget holds,
// repeating until none applies. It returns the reads placed (for undo) and
// whether a dead end was detected (an unplaced read whose budget is already
// exhausted can never be placed later).
func (s *search) placeEagerReads() ([]int, bool) {
	var placedReads []int
	for {
		progress := false
		m1, m2 := s.minFinishes()
		for _, i := range s.byStart {
			if s.placed[i] || !s.p.Op(i).IsRead() {
				continue
			}
			if !s.appendable(i, m1, m2) {
				break // appendable ops form a prefix of the start order
			}
			w := s.p.DictatingWrite[i]
			if !s.placed[w] {
				continue
			}
			if s.load[w] > s.bound {
				// Budget exhausted and it only grows: dead end.
				return placedReads, true
			}
			s.placeRead(i)
			placedReads = append(placedReads, i)
			progress = true
			m1, m2 = s.minFinishes()
		}
		if !progress {
			return placedReads, false
		}
	}
}

// placeWrite places write w, updating loads of live writes.
func (s *search) placeWrite(w int) {
	s.placed[w] = true
	s.load[w] = s.weight[w]
	for _, x := range s.liveWrites {
		if s.pendingRds[x] > 0 {
			s.load[x] += s.weight[w]
		}
	}
	s.liveWrites = append(s.liveWrites, w)
	s.order = append(s.order, w)
}

func (s *search) unplaceWrite(w int) {
	s.liveWrites = s.liveWrites[:len(s.liveWrites)-1]
	for _, x := range s.liveWrites {
		if s.pendingRds[x] > 0 {
			s.load[x] -= s.weight[w]
		}
	}
	s.load[w] = 0
	s.placed[w] = false
	s.order = s.order[:len(s.order)-1]
}

// writeIsDeadly reports whether placing write w would push some live write
// with pending reads beyond the budget (those reads could then never be
// placed), or w itself arrives with an impossible own weight.
func (s *search) writeIsDeadly(w int) bool {
	if s.pendingRds[w] > 0 && s.weight[w] > s.bound {
		return true
	}
	for _, x := range s.liveWrites {
		if s.pendingRds[x] > 0 && s.load[x]+s.weight[w] > s.bound {
			return true
		}
	}
	return false
}

// key builds the memo key: the placed bitset plus the capped load of every
// placed write that still has pending reads (feasibility of the remaining
// problem depends on exactly this state).
func (s *search) key() string {
	buf := make([]byte, 0, (s.n+7)/8+8*len(s.liveWrites))
	var cur byte
	for i := 0; i < s.n; i++ {
		if s.placed[i] {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			buf = append(buf, cur)
			cur = 0
		}
	}
	if s.n%8 != 0 {
		buf = append(buf, cur)
	}
	for _, x := range s.liveWrites {
		if s.pendingRds[x] == 0 {
			continue
		}
		l := s.load[x]
		if l > s.bound {
			l = s.bound + 1
		}
		buf = append(buf, byte(x), byte(x>>8),
			byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return string(buf)
}

// dfs returns whether the remaining ops can be placed. remaining is the
// number of unplaced ops.
func (s *search) dfs(remaining int) (bool, error) {
	reads, dead := s.placeEagerReads()
	remaining -= len(reads)
	defer func() {
		for i := len(reads) - 1; i >= 0; i-- {
			s.unplaceRead(reads[i])
		}
	}()
	if dead {
		return false, nil
	}
	if remaining == 0 {
		s.found = append([]int(nil), s.order...)
		return true, nil
	}

	k := s.key()
	if _, seen := s.memo[k]; seen {
		return false, nil
	}
	s.states++
	if s.states > s.limit {
		return false, ErrStateLimit
	}

	m1, m2 := s.minFinishes()
	for _, i := range s.byStart {
		if s.placed[i] {
			continue
		}
		if !s.appendable(i, m1, m2) {
			break
		}
		if !s.p.Op(i).IsWrite() || s.writeIsDeadly(i) {
			continue
		}
		s.placeWrite(i)
		ok, err := s.dfs(remaining - 1)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
		s.unplaceWrite(i)
		m1, m2 = s.minFinishes()
	}
	s.memo[k] = struct{}{}
	return false, nil
}
