// Package interval provides a static centered interval tree over integer
// intervals, supporting stabbing, overlap, and containment queries in
// O(log n + answer). It is the index structure Theorem 4.6's implementation
// sketch uses for Stage 1 of FZF (inserting zones into an interval tree
// sorted by low endpoint, then scanning for maximal chunks), and is reused by
// the zone package for assigning backward zones to chunks.
package interval

import "sort"

// Interval is a closed integer interval [Lo, Hi] tagged with a caller ID.
type Interval struct {
	Lo, Hi int64
	// ID is an opaque caller-provided tag returned by queries.
	ID int
}

// Contains reports whether the interval contains point p.
func (iv Interval) Contains(p int64) bool { return iv.Lo <= p && p <= iv.Hi }

// Overlaps reports whether the two closed intervals intersect.
func (iv Interval) Overlaps(o Interval) bool { return iv.Lo <= o.Hi && o.Lo <= iv.Hi }

// Within reports whether iv lies entirely inside o.
func (iv Interval) Within(o Interval) bool { return o.Lo <= iv.Lo && iv.Hi <= o.Hi }

// Tree is an immutable centered interval tree. Build once, query many times.
type Tree struct {
	root *node
	n    int
}

type node struct {
	center      int64
	left, right *node
	// intervals crossing center, sorted two ways
	byLo []Interval // ascending Lo
	byHi []Interval // descending Hi
}

// Build constructs a tree over the given intervals. Intervals with Lo > Hi
// are normalized by swapping endpoints.
func Build(ivs []Interval) *Tree {
	cp := make([]Interval, len(ivs))
	copy(cp, ivs)
	for i := range cp {
		if cp[i].Lo > cp[i].Hi {
			cp[i].Lo, cp[i].Hi = cp[i].Hi, cp[i].Lo
		}
	}
	return &Tree{root: build(cp), n: len(cp)}
}

// Len returns the number of stored intervals.
func (t *Tree) Len() int { return t.n }

func build(ivs []Interval) *node {
	if len(ivs) == 0 {
		return nil
	}
	// Median of all endpoints keeps the tree balanced.
	endpoints := make([]int64, 0, 2*len(ivs))
	for _, iv := range ivs {
		endpoints = append(endpoints, iv.Lo, iv.Hi)
	}
	sort.Slice(endpoints, func(i, j int) bool { return endpoints[i] < endpoints[j] })
	center := endpoints[len(endpoints)/2]

	var left, right, cross []Interval
	for _, iv := range ivs {
		switch {
		case iv.Hi < center:
			left = append(left, iv)
		case iv.Lo > center:
			right = append(right, iv)
		default:
			cross = append(cross, iv)
		}
	}
	nd := &node{center: center}
	nd.byLo = append(nd.byLo, cross...)
	sort.Slice(nd.byLo, func(i, j int) bool { return nd.byLo[i].Lo < nd.byLo[j].Lo })
	nd.byHi = append(nd.byHi, cross...)
	sort.Slice(nd.byHi, func(i, j int) bool { return nd.byHi[i].Hi > nd.byHi[j].Hi })
	nd.left = build(left)
	nd.right = build(right)
	return nd
}

// Stab returns all intervals containing point p.
func (t *Tree) Stab(p int64) []Interval {
	var out []Interval
	for nd := t.root; nd != nil; {
		switch {
		case p < nd.center:
			for _, iv := range nd.byLo {
				if iv.Lo > p {
					break
				}
				out = append(out, iv)
			}
			nd = nd.left
		case p > nd.center:
			for _, iv := range nd.byHi {
				if iv.Hi < p {
					break
				}
				out = append(out, iv)
			}
			nd = nd.right
		default:
			out = append(out, nd.byLo...)
			nd = nil
		}
	}
	return out
}

// Overlapping returns all intervals intersecting query [lo, hi].
func (t *Tree) Overlapping(lo, hi int64) []Interval {
	if lo > hi {
		lo, hi = hi, lo
	}
	var out []Interval
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd == nil {
			return
		}
		if hi < nd.center {
			// Query entirely left of center: crossing intervals overlap
			// iff their Lo <= hi.
			for _, iv := range nd.byLo {
				if iv.Lo > hi {
					break
				}
				out = append(out, iv)
			}
			walk(nd.left)
			return
		}
		if lo > nd.center {
			for _, iv := range nd.byHi {
				if iv.Hi < lo {
					break
				}
				out = append(out, iv)
			}
			walk(nd.right)
			return
		}
		// Query straddles center: every crossing interval overlaps.
		out = append(out, nd.byLo...)
		walk(nd.left)
		walk(nd.right)
	}
	walk(t.root)
	return out
}

// ContainedIn returns all intervals lying entirely within [lo, hi].
func (t *Tree) ContainedIn(lo, hi int64) []Interval {
	if lo > hi {
		return nil
	}
	out := t.Overlapping(lo, hi)
	filtered := out[:0]
	q := Interval{Lo: lo, Hi: hi}
	for _, iv := range out {
		if iv.Within(q) {
			filtered = append(filtered, iv)
		}
	}
	return filtered
}

// All returns every stored interval, in ascending (Lo, Hi, ID) order.
func (t *Tree) All() []Interval {
	var out []Interval
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd == nil {
			return
		}
		walk(nd.left)
		out = append(out, nd.byLo...)
		walk(nd.right)
	}
	walk(t.root)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Lo != b.Lo {
			return a.Lo < b.Lo
		}
		if a.Hi != b.Hi {
			return a.Hi < b.Hi
		}
		return a.ID < b.ID
	})
	return out
}

// MergeRuns coalesces intervals into maximal strictly-overlapping runs: the
// input is sorted by Lo and consecutive intervals are merged while the next
// interval's Lo lies strictly inside the running union. Because history
// timestamps are distinct, two zones touching only at an endpoint cannot
// occur; strict overlap is the right merge criterion for FZF Stage 1 chunk
// runs. Each returned Run records the union interval and the member IDs in
// ascending Lo order.
func MergeRuns(ivs []Interval) []Run {
	cp := make([]Interval, len(ivs))
	copy(cp, ivs)
	sort.Slice(cp, func(i, j int) bool {
		if cp[i].Lo != cp[j].Lo {
			return cp[i].Lo < cp[j].Lo
		}
		return cp[i].Hi < cp[j].Hi
	})
	var runs []Run
	for _, iv := range cp {
		if len(runs) > 0 && iv.Lo < runs[len(runs)-1].Hi {
			r := &runs[len(runs)-1]
			if iv.Hi > r.Hi {
				r.Hi = iv.Hi
			}
			r.Members = append(r.Members, iv.ID)
			continue
		}
		runs = append(runs, Run{Lo: iv.Lo, Hi: iv.Hi, Members: []int{iv.ID}})
	}
	return runs
}

// Run is a maximal union of overlapping intervals.
type Run struct {
	Lo, Hi  int64
	Members []int
}
