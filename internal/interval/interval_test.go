package interval

import (
	"math/rand"
	"sort"
	"testing"
)

func ids(ivs []Interval) []int {
	out := make([]int, len(ivs))
	for i, iv := range ivs {
		out[i] = iv.ID
	}
	sort.Ints(out)
	return out
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIntervalPredicates(t *testing.T) {
	iv := Interval{Lo: 10, Hi: 20}
	if !iv.Contains(10) || !iv.Contains(15) || !iv.Contains(20) {
		t.Error("Contains endpoints/middle failed")
	}
	if iv.Contains(9) || iv.Contains(21) {
		t.Error("Contains outside points")
	}
	if !iv.Overlaps(Interval{Lo: 20, Hi: 30}) {
		t.Error("closed intervals sharing endpoint must overlap")
	}
	if iv.Overlaps(Interval{Lo: 21, Hi: 30}) {
		t.Error("disjoint intervals must not overlap")
	}
	if !iv.Within(Interval{Lo: 0, Hi: 100}) {
		t.Error("Within failed")
	}
	if iv.Within(Interval{Lo: 11, Hi: 100}) {
		t.Error("Within accepted partial containment")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := Build(nil)
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if got := tr.Stab(5); len(got) != 0 {
		t.Errorf("Stab on empty = %v", got)
	}
	if got := tr.Overlapping(0, 10); len(got) != 0 {
		t.Errorf("Overlapping on empty = %v", got)
	}
}

func TestStabSmall(t *testing.T) {
	tr := Build([]Interval{
		{Lo: 0, Hi: 10, ID: 1},
		{Lo: 5, Hi: 15, ID: 2},
		{Lo: 12, Hi: 20, ID: 3},
	})
	tests := []struct {
		p    int64
		want []int
	}{
		{0, []int{1}},
		{5, []int{1, 2}},
		{7, []int{1, 2}},
		{11, []int{2}},
		{13, []int{2, 3}},
		{16, []int{3}},
		{25, nil},
		{-1, nil},
	}
	for _, tt := range tests {
		got := ids(tr.Stab(tt.p))
		if !equalIDs(got, tt.want) {
			t.Errorf("Stab(%d) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestBuildNormalizesInverted(t *testing.T) {
	tr := Build([]Interval{{Lo: 10, Hi: 0, ID: 1}})
	if got := ids(tr.Stab(5)); !equalIDs(got, []int{1}) {
		t.Errorf("inverted interval not normalized: Stab(5) = %v", got)
	}
}

func TestContainedIn(t *testing.T) {
	tr := Build([]Interval{
		{Lo: 0, Hi: 10, ID: 1},
		{Lo: 2, Hi: 4, ID: 2},
		{Lo: 8, Hi: 12, ID: 3},
		{Lo: 3, Hi: 3, ID: 4},
	})
	got := ids(tr.ContainedIn(1, 11))
	if !equalIDs(got, []int{2, 4}) {
		t.Errorf("ContainedIn(1,11) = %v, want [2 4]", got)
	}
	if got := tr.ContainedIn(5, 4); got != nil {
		t.Errorf("ContainedIn on empty range = %v", got)
	}
}

func TestAllSorted(t *testing.T) {
	tr := Build([]Interval{
		{Lo: 5, Hi: 9, ID: 2},
		{Lo: 0, Hi: 3, ID: 1},
		{Lo: 5, Hi: 20, ID: 3},
	})
	all := tr.All()
	if len(all) != 3 {
		t.Fatalf("All len = %d", len(all))
	}
	if all[0].ID != 1 || all[1].ID != 2 || all[2].ID != 3 {
		t.Errorf("All order = %v", all)
	}
}

// TestRandomizedAgainstBruteForce cross-checks all query types against a
// linear scan on random inputs.
func TestRandomizedAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		ivs := make([]Interval, n)
		for i := range ivs {
			lo := int64(rng.Intn(200))
			hi := lo + int64(rng.Intn(50))
			ivs[i] = Interval{Lo: lo, Hi: hi, ID: i}
		}
		tr := Build(ivs)
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
		for q := 0; q < 30; q++ {
			p := int64(rng.Intn(260) - 10)
			var want []int
			for _, iv := range ivs {
				if iv.Contains(p) {
					want = append(want, iv.ID)
				}
			}
			sort.Ints(want)
			if got := ids(tr.Stab(p)); !equalIDs(got, want) {
				t.Fatalf("trial %d: Stab(%d) = %v, want %v", trial, p, got, want)
			}

			lo := int64(rng.Intn(220) - 10)
			hi := lo + int64(rng.Intn(80))
			var wantOv, wantIn []int
			for _, iv := range ivs {
				if iv.Overlaps(Interval{Lo: lo, Hi: hi}) {
					wantOv = append(wantOv, iv.ID)
				}
				if iv.Within(Interval{Lo: lo, Hi: hi}) {
					wantIn = append(wantIn, iv.ID)
				}
			}
			sort.Ints(wantOv)
			sort.Ints(wantIn)
			if got := ids(tr.Overlapping(lo, hi)); !equalIDs(got, wantOv) {
				t.Fatalf("trial %d: Overlapping(%d,%d) = %v, want %v", trial, lo, hi, got, wantOv)
			}
			if got := ids(tr.ContainedIn(lo, hi)); !equalIDs(got, wantIn) {
				t.Fatalf("trial %d: ContainedIn(%d,%d) = %v, want %v", trial, lo, hi, got, wantIn)
			}
		}
	}
}

func TestMergeRunsBasic(t *testing.T) {
	runs := MergeRuns([]Interval{
		{Lo: 0, Hi: 10, ID: 1},
		{Lo: 5, Hi: 20, ID: 2},
		{Lo: 30, Hi: 40, ID: 3},
		{Lo: 35, Hi: 38, ID: 4},
		{Lo: 50, Hi: 60, ID: 5},
	})
	if len(runs) != 3 {
		t.Fatalf("runs = %+v, want 3 runs", runs)
	}
	if runs[0].Lo != 0 || runs[0].Hi != 20 || len(runs[0].Members) != 2 {
		t.Errorf("run 0 = %+v", runs[0])
	}
	if runs[1].Lo != 30 || runs[1].Hi != 40 || len(runs[1].Members) != 2 {
		t.Errorf("run 1 = %+v", runs[1])
	}
	if runs[2].Lo != 50 || runs[2].Hi != 60 || len(runs[2].Members) != 1 {
		t.Errorf("run 2 = %+v", runs[2])
	}
}

func TestMergeRunsTouchingDoesNotMerge(t *testing.T) {
	// Strict overlap required: [0,10] and [10,20] share only an endpoint.
	runs := MergeRuns([]Interval{
		{Lo: 0, Hi: 10, ID: 1},
		{Lo: 10, Hi: 20, ID: 2},
	})
	if len(runs) != 2 {
		t.Fatalf("touching intervals merged: %+v", runs)
	}
}

func TestMergeRunsUnsortedInput(t *testing.T) {
	runs := MergeRuns([]Interval{
		{Lo: 35, Hi: 38, ID: 4},
		{Lo: 0, Hi: 10, ID: 1},
		{Lo: 30, Hi: 40, ID: 3},
		{Lo: 5, Hi: 20, ID: 2},
	})
	if len(runs) != 2 {
		t.Fatalf("runs = %+v, want 2", runs)
	}
	if runs[0].Members[0] != 1 || runs[0].Members[1] != 2 {
		t.Errorf("run 0 members = %v, want [1 2]", runs[0].Members)
	}
}

func TestMergeRunsNestedInterval(t *testing.T) {
	// A long interval followed by one nested inside it: the union must keep
	// the longer Hi.
	runs := MergeRuns([]Interval{
		{Lo: 0, Hi: 100, ID: 1},
		{Lo: 10, Hi: 20, ID: 2},
		{Lo: 90, Hi: 150, ID: 3},
	})
	if len(runs) != 1 {
		t.Fatalf("runs = %+v, want 1", runs)
	}
	if runs[0].Lo != 0 || runs[0].Hi != 150 || len(runs[0].Members) != 3 {
		t.Errorf("run = %+v", runs[0])
	}
}

func TestMergeRunsEmpty(t *testing.T) {
	if runs := MergeRuns(nil); len(runs) != 0 {
		t.Errorf("MergeRuns(nil) = %v", runs)
	}
}
