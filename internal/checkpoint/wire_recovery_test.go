package checkpoint

// Crash recovery with binary ingest: the same prefix-equivalence oracle as
// checkpoint_test.go, but the session is fed wire frames through
// Session.AppendWire — so the WAL holds self-contained wire frames and
// Recover exercises the magic-sniffing replay path.

import (
	"bytes"
	"testing"

	"kat/internal/core"
	"kat/internal/faultfs"
	"kat/internal/trace"
	"kat/internal/wal"
	"kat/internal/wire"
)

// buildWireScenario is buildScenario with binary ingest: each batch is
// encoded as one wire frame (one shared dictionary per stream) and pushed
// through AppendWire.
func buildWireScenario(t testing.TB, seed int64, shards, ckptEvery, batchSize int,
	policy wal.SyncPolicy, compress bool) *scenario {
	t.Helper()
	perKey, all := genWorkload(seed, 4, 60)
	mem := faultfs.NewMem()
	sc := &scenario{perKey: perKey, mem: mem, policy: policy}
	mgr, err := Open(mem, "data", Config{Policy: policy})
	if err != nil {
		return sc
	}
	sess := trace.NewSmallestKSession(core.Options{},
		trace.StreamOptions{Workers: 2, MinSegmentOps: 1, IngestShards: shards})
	if _, err := mgr.Recover(sess); err != nil {
		mgr.Close()
		return sc
	}
	enc := wire.NewEncoder()
	enc.SetCompress(compress)
	// One frame per batch, each its own AppendWire stream — so frames must
	// be self-contained rather than share a dictionary.
	enc.SetSelfContained(true)
	var frame []byte
	batch := 0
feed:
	for off := 0; off < len(all); off += batchSize {
		end := off + batchSize
		if end > len(all) {
			end = len(all)
		}
		for _, ko := range all[off:end] {
			if err := enc.Add(ko.Key, ko.Op); err != nil {
				t.Fatalf("encode: %v", err)
			}
		}
		frame = enc.AppendFrame(frame[:0])
		if _, err := sess.AppendWire(bytes.NewReader(frame)); err != nil {
			break feed
		}
		batch++
		if ckptEvery > 0 && batch%ckptEvery == 0 {
			if err := mgr.Checkpoint(); err != nil {
				break feed
			}
		}
	}
	sess.Flush()
	mgr.Close()
	return sc
}

// TestCrashSweepWireIngest cuts a binary-ingest scenario's disk at a spread
// of byte offsets and requires every image — whose WAL records are wire
// frames, possibly torn mid-frame — to recover to a verdict-identical
// prefix run.
func TestCrashSweepWireIngest(t *testing.T) {
	for _, compress := range []bool{false, true} {
		sc := buildWireScenario(t, 29, 4, 2, 17, wal.SyncBatch, compress)
		total := sc.mem.TotalWriteBytes()
		if total == 0 {
			t.Fatal("scenario wrote nothing")
		}
		step := total/43 + 1
		var cuts []int64
		for cut := int64(0); cut <= total; cut += step {
			cuts = append(cuts, cut)
		}
		for d := int64(0); d < 4 && d <= total; d++ {
			cuts = append(cuts, total-d)
		}
		for _, cut := range cuts {
			checkRecovery(t, sc, sc.mem.CrashImage(cut), 4)
		}
		// Full-image recovery into a different shard count.
		rs := checkRecovery(t, sc, sc.mem.CrashImage(total), 7)
		if rs.CheckpointEpoch < 0 {
			t.Fatalf("wire sweep scenario published no checkpoint: %+v", rs)
		}
	}
}
