package checkpoint

// Crash-point fuzzing of the full durability loop. The oracle throughout is
// per-key prefix equivalence: whatever a recovery rebuilds must be, key by
// key, some prefix of the acknowledged operation stream, and the recovered
// session's final verdicts must equal those of an uninterrupted in-memory
// run over exactly those prefixes. The crash model is faultfs.MemFS's
// journal: a kill at an arbitrary global write byte, the straddling write
// torn at exactly that byte. Fault injection (failed or short writes,
// failed fsyncs/creates/renames) covers the errors a *surviving* process
// sees; the same oracle applies because the session stickies on the first
// durability error and never acknowledges past it.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"kat/internal/core"
	"kat/internal/faultfs"
	"kat/internal/history"
	"kat/internal/trace"
	"kat/internal/wal"
)

// genWorkload builds a deterministic multi-key workload: per-key operation
// lists in arrival order (nondecreasing starts, first op a write, reads of
// possibly stale but always-written values) plus the globally merged
// arrival sequence used to drive batch ingest.
func genWorkload(seed int64, nkeys, opsPerKey int) (map[string][]history.Operation, []trace.KeyedOp) {
	rng := rand.New(rand.NewSource(seed))
	perKey := make(map[string][]history.Operation, nkeys)
	var all []trace.KeyedOp
	for ki := 0; ki < nkeys; ki++ {
		key := fmt.Sprintf("key%02d", ki)
		clock := int64(rng.Intn(8))
		var vals []int64
		next := int64(1)
		ops := make([]history.Operation, 0, opsPerKey)
		for i := 0; i < opsPerKey; i++ {
			start := clock
			dur := int64(1 + rng.Intn(6))
			var op history.Operation
			if i == 0 || rng.Intn(3) == 0 {
				op = history.Operation{Kind: history.KindWrite, Value: next,
					Start: start, Finish: start + dur}
				vals = append(vals, next)
				next++
			} else {
				lag := rng.Intn(3)
				if lag >= len(vals) {
					lag = len(vals) - 1
				}
				op = history.Operation{Kind: history.KindRead,
					Value: vals[len(vals)-1-lag], Start: start, Finish: start + dur}
			}
			ops = append(ops, op)
			clock += int64(rng.Intn(4))
		}
		perKey[key] = ops
		for _, op := range ops {
			all = append(all, trace.KeyedOp{Key: key, Op: op})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Op.Start < all[j].Op.Start })
	return perKey, all
}

// scenario is one completed (or fault-aborted) durable ingest run whose
// MemFS can be crash-imaged at any byte.
type scenario struct {
	perKey map[string][]history.Operation
	mem    *faultfs.MemFS
	policy wal.SyncPolicy
}

// buildScenario runs a durable session over the generated workload,
// checkpointing every ckptEvery batches. inject, when non-nil, wraps the
// MemFS in a fault injector; on the first session or checkpoint error the
// feed stops (the session is sticky — nothing past the error is
// acknowledged). spillThreshold > 0 enables segment spill through the
// manager's store.
func buildScenario(t testing.TB, seed int64, shards, ckptEvery, batchSize int,
	policy wal.SyncPolicy, inject faultfs.Injector, spillThreshold int) *scenario {
	t.Helper()
	perKey, all := genWorkload(seed, 4, 60)
	mem := faultfs.NewMem()
	var fsys faultfs.FS = mem
	if inject != nil {
		fsys = faultfs.NewFaulty(mem, inject)
	}
	sc := &scenario{perKey: perKey, mem: mem, policy: policy}
	mgr, err := Open(fsys, "data", Config{Policy: policy})
	if err != nil {
		return sc // nothing durable was written; recovery sees an empty dir
	}
	sopts := trace.StreamOptions{Workers: 2, MinSegmentOps: 1, IngestShards: shards}
	if spillThreshold > 0 {
		sopts.Store = mgr.Store()
		sopts.SpillThresholdOps = spillThreshold
	}
	sess := trace.NewSmallestKSession(core.Options{}, sopts)
	if _, err := mgr.Recover(sess); err != nil {
		mgr.Close()
		return sc
	}
	batch := 0
feed:
	for off := 0; off < len(all); off += batchSize {
		end := off + batchSize
		if end > len(all) {
			end = len(all)
		}
		if _, err := sess.AppendBatch(all[off:end]); err != nil {
			break feed
		}
		batch++
		if ckptEvery > 0 && batch%ckptEvery == 0 {
			if err := mgr.Checkpoint(); err != nil {
				break feed
			}
		}
	}
	sess.Flush() // reap pool workers; errors (sticky faults) are the point
	mgr.Close()
	return sc
}

// checkRecovery recovers img into a fresh session of shards2 ingest shards
// and holds the recovered state to the prefix-equivalence oracle.
func checkRecovery(t *testing.T, sc *scenario, img *faultfs.MemFS, shards2 int) RecoveryStats {
	t.Helper()
	mgr, err := Open(img, "data", Config{Policy: sc.policy})
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer mgr.Close()
	sess := trace.NewSmallestKSession(core.Options{}, trace.StreamOptions{
		Workers: 2, MinSegmentOps: 1, IngestShards: shards2,
		Store: mgr.Store(), SpillThresholdOps: trace.DefaultSpillThresholdOps,
	})
	rs, err := mgr.Recover(sess)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatalf("recovered session Flush: %v", err)
	}
	got, _ := sess.SmallestKByKey()

	// Reference: an uninterrupted in-memory run over exactly the per-key
	// prefixes recovery rebuilt.
	ref := trace.NewSmallestKSession(core.Options{}, trace.StreamOptions{
		Workers: 2, MinSegmentOps: 1, IngestShards: 3,
	})
	var recovered int64
	for _, kv := range sess.Snapshot() {
		full, ok := sc.perKey[kv.Key]
		if !ok {
			t.Fatalf("recovered unknown key %q", kv.Key)
		}
		if kv.Ops > len(full) {
			t.Fatalf("key %q: recovered %d ops, only %d were ever sent", kv.Key, kv.Ops, len(full))
		}
		recovered += int64(kv.Ops)
		for _, op := range full[:kv.Ops] {
			if err := ref.Append(kv.Key, op); err != nil {
				t.Fatalf("reference Append(%q): %v", kv.Key, err)
			}
		}
	}
	if err := ref.Flush(); err != nil {
		t.Fatalf("reference Flush: %v", err)
	}
	want, _ := ref.SmallestKByKey()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered verdicts diverge from uninterrupted prefix run:\n got %v\nwant %v\n(recovered %d ops, stats %+v)",
			got, want, recovered, rs)
	}
	return rs
}

func TestRecoverEmptyDir(t *testing.T) {
	mem := faultfs.NewMem()
	mgr, err := Open(mem, "data", Config{})
	if err != nil {
		t.Fatal(err)
	}
	sess := trace.NewSmallestKSession(core.Options{}, trace.StreamOptions{IngestShards: 2})
	rs, err := mgr.Recover(sess)
	if err != nil {
		t.Fatal(err)
	}
	if rs.CheckpointEpoch != -1 || rs.ReplayedOps != 0 {
		t.Fatalf("cold start reported recovery work: %+v", rs)
	}
	// The WAL is live from the first append.
	if err := sess.Append("a", history.Operation{Kind: history.KindWrite, Value: 1, Start: 0, Finish: 1}); err != nil {
		t.Fatal(err)
	}
	if st := mgr.Stats(); st.WAL.Records == 0 {
		t.Fatalf("append did not reach the WAL: %+v", st.WAL)
	}
	mgr.Close()
}

// TestCrashSweep cuts one scenario's disk at a spread of byte offsets —
// including every boundary-adjacent offset around the end — and requires
// every image to recover to a verdict-identical prefix run.
func TestCrashSweep(t *testing.T) {
	sc := buildScenario(t, 7, 4, 2, 17, wal.SyncBatch, nil, 0)
	total := sc.mem.TotalWriteBytes()
	if total == 0 {
		t.Fatal("scenario wrote nothing")
	}
	step := total/97 + 1
	var cuts []int64
	for cut := int64(0); cut <= total; cut += step {
		cuts = append(cuts, cut)
	}
	for d := int64(0); d < 4 && d <= total; d++ {
		cuts = append(cuts, total-d)
	}
	for _, cut := range cuts {
		checkRecovery(t, sc, sc.mem.CrashImage(cut), 4)
	}
	// Full-image recovery rebuilds everything that was acknowledged.
	rs := checkRecovery(t, sc, sc.mem.CrashImage(total), 6)
	var totalOps int
	for _, ops := range sc.perKey {
		totalOps += len(ops)
	}
	if rs.CheckpointEpoch < 0 {
		t.Fatalf("sweep scenario published no checkpoint: %+v", rs)
	}
}

// TestRecoverShardCountChange recovers one run into sessions with different
// ingest shard counts — keys re-route by hash, verdicts must not move.
func TestRecoverShardCountChange(t *testing.T) {
	sc := buildScenario(t, 11, 8, 3, 23, wal.SyncNever, nil, 0)
	total := sc.mem.TotalWriteBytes()
	for _, shards := range []int{1, 2, 7, 16} {
		checkRecovery(t, sc, sc.mem.CrashImage(total), shards)
	}
}

// TestRecoverWithSpill runs ingest with an aggressive spill threshold, then
// recovers mid-crash: spilled segments are inlined into checkpoints and
// reconstructed from WAL replay, never read from stale blobs.
func TestRecoverWithSpill(t *testing.T) {
	sc := buildScenario(t, 13, 4, 2, 17, wal.SyncBatch, nil, 6)
	total := sc.mem.TotalWriteBytes()
	for _, frac := range []float64{0.3, 0.7, 1.0} {
		checkRecovery(t, sc, sc.mem.CrashImage(int64(frac*float64(total))), 4)
	}
}

// TestRecoveryIsRepeatable recovers the same crash image twice (the second
// recovery runs on top of the first one's re-anchor) — a crash during or
// right after recovery must itself be recoverable.
func TestRecoveryIsRepeatable(t *testing.T) {
	sc := buildScenario(t, 17, 4, 2, 19, wal.SyncBatch, nil, 0)
	img := sc.mem.CrashImage(sc.mem.TotalWriteBytes() * 2 / 3)
	checkRecovery(t, sc, img, 4)
	// img now holds the first recovery's fresh epoch + re-anchor checkpoint.
	checkRecovery(t, sc, img, 4)
	// And a crash torn into the re-anchor itself.
	checkRecovery(t, sc, img.CrashImage(img.TotalWriteBytes()-3), 4)
}

// TestFaultInjectionSweep drives a fault into the nth write, sync, create,
// and rename the durable path performs, for a range of n, and requires the
// surviving disk (page cache intact — the process kept running, only the
// call failed) to recover cleanly every time.
func TestFaultInjectionSweep(t *testing.T) {
	for _, op := range []faultfs.Op{faultfs.OpWrite, faultfs.OpSync, faultfs.OpCreate, faultfs.OpRename} {
		op := op
		t.Run(op.String(), func(t *testing.T) {
			t.Parallel()
			for n := int64(0); n < 30; n++ {
				short := int(n % 7)
				sc := buildScenario(t, 19, 4, 2, 17, wal.SyncBatch,
					faultfs.FailOnce(op, n, short), 0)
				checkRecovery(t, sc, sc.mem, 4)
			}
		})
	}
}

// TestDrainedRestart drains a session, publishes the terminal checkpoint,
// and restarts from the directory: the recovered session is flushed,
// serves identical final verdicts, and refuses ingest.
func TestDrainedRestart(t *testing.T) {
	_, all := genWorkload(23, 4, 60)
	mem := faultfs.NewMem()
	mgr, err := Open(mem, "data", Config{Policy: wal.SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	sess := trace.NewSmallestKSession(core.Options{}, trace.StreamOptions{
		Workers: 2, MinSegmentOps: 1, IngestShards: 4,
	})
	if _, err := mgr.Recover(sess); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.AppendBatch(all); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Checkpoint(); err != nil {
		t.Fatalf("terminal checkpoint: %v", err)
	}
	want, _ := sess.SmallestKByKey()
	mgr.Close()

	mgr2, err := Open(mem, "data", Config{Policy: wal.SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	sess2 := trace.NewSmallestKSession(core.Options{}, trace.StreamOptions{
		Workers: 2, MinSegmentOps: 1, IngestShards: 4,
	})
	rs, err := mgr2.Recover(sess2)
	if err != nil {
		t.Fatal(err)
	}
	if !sess2.Flushed() {
		t.Fatal("restart of a drained directory is not flushed")
	}
	if rs.ReplayedOps != 0 {
		t.Fatalf("drained restart replayed %d ops", rs.ReplayedOps)
	}
	got, _ := sess2.SmallestKByKey()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("drained restart verdicts:\n got %v\nwant %v", got, want)
	}
	if err := sess2.Append("a", history.Operation{Kind: history.KindWrite, Value: 1, Start: 1 << 40, Finish: 1<<40 + 1}); err == nil {
		t.Fatal("drained restart accepted ingest")
	}
}

// TestCorruptCheckpointFallsBack truncates the newest checkpoint file;
// recovery must fall back to replaying the full WAL chain (or an older
// checkpoint) and still satisfy the oracle.
func TestCorruptCheckpointFallsBack(t *testing.T) {
	sc := buildScenario(t, 29, 4, 3, 17, wal.SyncBatch, nil, 0)
	img := sc.mem.CrashImage(sc.mem.TotalWriteBytes())
	var newest string
	var newestEpoch int
	for name := range img.Files() {
		const prefix = "data/"
		if len(name) <= len(prefix) || name[:len(prefix)] != prefix {
			continue
		}
		if e, ok := parseCkptName(name[len(prefix):]); ok && (newest == "" || e > newestEpoch) {
			newest, newestEpoch = name, e
		}
	}
	if newest == "" {
		t.Fatal("scenario published no checkpoint")
	}
	// Truncate by rewriting a prefix: remove, recreate, write half.
	data, err := faultfs.ReadFile(img, newest)
	if err != nil {
		t.Fatal(err)
	}
	img.Remove(newest)
	f, err := img.Create(newest)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(data[:len(data)/2])
	f.Close()
	checkRecovery(t, sc, img, 4)
}

// TestCheckpointNameParsing pins the file-name grammar.
func TestCheckpointNameParsing(t *testing.T) {
	for _, e := range []int{0, 1, 42, 99999999} {
		got, ok := parseCkptName(CkptFileName(e))
		if !ok || got != e {
			t.Fatalf("round trip of epoch %d: got %d, %v", e, got, ok)
		}
	}
	for _, bad := range []string{"ckpt-0000003", "ckpt-00000003.tmp", "ckpt-0000000x",
		"wal-ep00000000-s0000.log", "ckpt-000000031"} {
		if _, ok := parseCkptName(bad); ok {
			t.Fatalf("parsed %q", bad)
		}
	}
}

// FuzzCrashPointRecovery is the randomized form of the sweeps above: fuzzed
// workload seed, crash byte, checkpoint cadence, shard counts on both sides
// of the crash, sync policy, and an optional injected fault. Registered in
// the CI fuzz smoke (go test -fuzz is also supported).
func FuzzCrashPointRecovery(f *testing.F) {
	f.Add(int64(1), uint16(30000), uint8(2), uint8(4), uint8(7), uint8(255), uint16(0), uint8(0), uint8(1))
	f.Add(int64(2), uint16(65535), uint8(1), uint8(1), uint8(1), uint8(255), uint16(0), uint8(0), uint8(0))
	f.Add(int64(3), uint16(100), uint8(4), uint8(8), uint8(2), uint8(0), uint16(5), uint8(3), uint8(2))
	f.Add(int64(4), uint16(60000), uint8(3), uint8(2), uint8(5), uint8(1), uint16(2), uint8(0), uint8(1))
	f.Add(int64(5), uint16(40000), uint8(2), uint8(3), uint8(3), uint8(2), uint16(7), uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, cutFrac uint16, ckptEvery, s1, s2, faultOp uint8, faultSeq uint16, short, pol uint8) {
		shards1 := 1 + int(s1%8)
		shards2 := 1 + int(s2%8)
		policy := []wal.SyncPolicy{wal.SyncNever, wal.SyncBatch, wal.SyncAlways}[int(pol)%3]
		var inject faultfs.Injector
		spill := 0
		if op := int(faultOp); op <= int(faultfs.OpRemove) {
			inject = faultfs.FailOnce(faultfs.Op(op), int64(faultSeq%150), int(short%16))
		} else if faultSeq%2 == 1 {
			spill = 8
		}
		sc := buildScenario(t, seed, shards1, 1+int(ckptEvery%5), 17, policy, inject, spill)
		total := sc.mem.TotalWriteBytes()
		cut := int64(float64(cutFrac) / 65535 * float64(total))
		checkRecovery(t, sc, sc.mem.CrashImage(cut), shards2)
		// The fault-survivor disk (no crash) must recover too.
		checkRecovery(t, sc, sc.mem, shards2)
	})
}
