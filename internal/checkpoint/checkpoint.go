// Package checkpoint is the durability orchestrator of the online
// verifier: it owns a data directory holding the per-shard write-ahead log
// (package wal), periodic checkpoint files (trace.SessionCheckpoint encoded
// with the same CRC framing as the WAL), and the spill area for segment
// bodies evicted from memory.
//
// The epoch protocol ties the three together. WAL files are grouped into
// epochs; checkpoint N snapshots exactly the session state produced by the
// operations logged in epochs < N. Taking a checkpoint therefore rotates the
// log *inside* the session freeze (every ingest lock held, verification
// drained), so the boundary is exact: operations accepted after the freeze
// land in epoch N and are replayed on top of checkpoint N. The checkpoint
// file is published atomically — written to a temp name, fsynced, renamed —
// and only after a successful publish are the covered WAL epochs and older
// checkpoints garbage-collected. A crash at any byte leaves either the old
// checkpoint or the new one, never a half state.
//
// Recovery inverts the protocol: restore the newest valid checkpoint (CRC
// framing and a keyed footer reject torn or partial files, falling back to
// the previous one), replay the batch records of every WAL epoch >= the
// checkpoint's number in epoch order, then open a fresh epoch, write a new
// checkpoint covering everything replayed, and attach the log to the
// session so ingest resumes. Torn WAL tails truncate cleanly (a record is
// either fully durable or ignored), and because the session stickies on any
// WAL append failure, the log can never be missing an operation that a
// later acknowledged operation of the same key depends on — what recovery
// rebuilds is always a per-key prefix of the acknowledged stream, which the
// crash-point fuzzer checks verdict-for-verdict against an uninterrupted
// run of that prefix.
package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kat/internal/faultfs"
	"kat/internal/trace"
	"kat/internal/wal"
	"kat/internal/wire"
)

// Config tunes a Manager.
type Config struct {
	// Policy selects the WAL fsync policy (see wal.SyncPolicy).
	Policy wal.SyncPolicy
	// OnError, when non-nil, receives failures of the periodic checkpoint
	// ticker (manual Checkpoint calls return their errors directly).
	OnError func(error)
}

// RecoveryStats describes what Recover found and replayed.
type RecoveryStats struct {
	// CheckpointEpoch is the epoch of the checkpoint restored, -1 if the
	// directory held none (cold start or pre-checkpoint crash).
	CheckpointEpoch int
	// RestoredKeys is the number of keys the checkpoint carried.
	RestoredKeys int
	// ReplayedEpochs counts WAL epochs visited during replay.
	ReplayedEpochs int
	// ReplayedRecords counts WAL batch records fed back into the session.
	ReplayedRecords int64
	// ReplayedOps counts operations re-ingested from the WAL.
	ReplayedOps int64
	// TornBytes counts trailing bytes discarded from torn WAL tails.
	TornBytes int64
}

// Stats snapshots the manager's counters.
type Stats struct {
	Checkpoints         int64 // successfully published checkpoints
	CheckpointFailures  int64 // failed attempts (state on disk unchanged)
	LastCheckpointKeys  int64
	LastCheckpointBytes int64
	WAL                 wal.Stats
	Recovery            RecoveryStats
}

// Manager owns one data directory. Lifecycle: Open -> (Store into the
// session's StreamOptions) -> Recover -> optional Start ticker -> Checkpoint
// on demand -> Close. Recover attaches the manager to the session as its
// ShardLogger, so every accepted operation hits the WAL from then on.
type Manager struct {
	fs      faultfs.FS
	dir     string
	policy  wal.SyncPolicy
	onError func(error)

	store *blobStore
	log   *wal.Log       // set by Recover
	sess  *trace.Session // set by Recover

	ckptMu sync.Mutex // serializes checkpoint attempts (ticker vs manual)

	checkpoints   atomic.Int64
	ckptFailures  atomic.Int64
	lastCkptKeys  atomic.Int64
	lastCkptBytes atomic.Int64
	recovery      RecoveryStats // written once by Recover

	tickerStop chan struct{}
	tickerDone chan struct{}
	closeOnce  sync.Once
}

// Open prepares the data directory: creates it (and the spill area) if
// missing, removes half-published checkpoint temporaries, and wipes stale
// spill blobs — spilled segments are reconstructible from checkpoint + WAL,
// so blobs never outlive the process that wrote them.
func Open(fsys faultfs.FS, dir string, cfg Config) (*Manager, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("checkpoint: create data dir: %w", err)
	}
	spillDir := join(dir, "spill")
	if err := fsys.MkdirAll(spillDir); err != nil {
		return nil, fmt.Errorf("checkpoint: create spill dir: %w", err)
	}
	m := &Manager{fs: fsys, dir: dir, policy: cfg.Policy, onError: cfg.OnError,
		store: &blobStore{fs: fsys, dir: spillDir}}
	m.recovery.CheckpointEpoch = -1
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: scan data dir: %w", err)
	}
	for _, name := range names {
		if strings.HasSuffix(name, ".tmp") {
			fsys.Remove(join(dir, name))
		}
	}
	if blobs, err := fsys.ReadDir(spillDir); err == nil {
		for _, name := range blobs {
			fsys.Remove(join(spillDir, name))
		}
	}
	return m, nil
}

// Store returns the spill BlobStore rooted in the data directory, for the
// session's StreamOptions.Store.
func (m *Manager) Store() trace.BlobStore { return m.store }

// Recover loads the directory's state into sess (which must be fresh and
// configured with the same mode, k, and horizon as the previous run), opens
// a fresh WAL epoch, re-anchors it with a new checkpoint, and attaches the
// WAL to the session. Call exactly once, before serving ingest. A recovered
// drained session (final checkpoint had Flushed set) is left terminal: no
// WAL is attached and no re-anchor is written.
func (m *Manager) Recover(sess *trace.Session) (RecoveryStats, error) {
	rs := RecoveryStats{CheckpointEpoch: -1}
	names, err := m.fs.ReadDir(m.dir)
	if err != nil {
		return rs, fmt.Errorf("checkpoint: scan data dir: %w", err)
	}
	var ckptEpochs []int
	walEpochs := map[int][]string{} // epoch -> shard file names, sorted
	for _, name := range names {
		if e, ok := parseCkptName(name); ok {
			ckptEpochs = append(ckptEpochs, e)
		} else if e, _, ok := wal.ParseFileName(name); ok {
			walEpochs[e] = append(walEpochs[e], name)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ckptEpochs)))

	// Newest structurally valid checkpoint wins; torn or partial files are
	// skipped (they can only arise from filesystems without atomic rename,
	// but the fallback costs nothing).
	for _, e := range ckptEpochs {
		cp, ok := m.readCheckpoint(e)
		if !ok {
			continue
		}
		if err := sess.RestoreCheckpoint(cp); err != nil {
			return rs, fmt.Errorf("checkpoint: restore ckpt %d: %w", e, err)
		}
		rs.CheckpointEpoch = e
		rs.RestoredKeys = len(cp.Keys)
		break
	}

	// Replay every WAL epoch the checkpoint does not cover, oldest first.
	// Within an epoch a key's operations live in exactly one shard file (in
	// append order), so file order within an epoch is irrelevant and per-key
	// order is preserved across the whole replay.
	replayFrom := 0
	if rs.CheckpointEpoch >= 0 {
		replayFrom = rs.CheckpointEpoch
	}
	epochs := make([]int, 0, len(walEpochs))
	for e := range walEpochs {
		epochs = append(epochs, e)
	}
	sort.Ints(epochs)
	newEpoch := 0
	for _, e := range epochs {
		if e+1 > newEpoch {
			newEpoch = e + 1
		}
		if e < replayFrom || sess.Flushed() {
			continue
		}
		rs.ReplayedEpochs++
		sort.Strings(walEpochs[e])
		for _, name := range walEpochs[e] {
			recs, torn, err := wal.ReadFile(m.fs, join(m.dir, name))
			if err != nil {
				return rs, fmt.Errorf("checkpoint: replay %s: %w", name, err)
			}
			rs.TornBytes += torn
			for _, rec := range recs {
				if rec.Type != wal.RecordBatch {
					continue
				}
				// Batch records carry whichever encoding ingest logged:
				// keyed text, or a self-contained wire frame when the batch
				// arrived binary. The magic bytes say which (no text record
				// can start with them).
				var n int64
				var err error
				if wire.IsMagic(rec.Payload) {
					n, err = sess.AppendWire(bytes.NewReader(rec.Payload))
				} else {
					n, err = sess.AppendTraceBatch(bytes.NewReader(rec.Payload))
				}
				rs.ReplayedOps += n
				if err != nil {
					return rs, fmt.Errorf("checkpoint: replay %s: %w", name, err)
				}
				rs.ReplayedRecords++
			}
		}
	}
	if rs.CheckpointEpoch > newEpoch {
		newEpoch = rs.CheckpointEpoch
	}

	l, err := wal.Open(m.fs, m.dir, sess.Shards(), newEpoch, m.policy)
	if err != nil {
		return rs, err
	}
	m.log = l
	m.sess = sess
	m.recovery = rs
	if sess.Flushed() {
		return rs, nil
	}
	if newEpoch > 0 {
		// Re-anchor: a fresh checkpoint covering everything just replayed,
		// so the next crash replays from here instead of from the old epoch
		// chain, and the old files can be collected.
		cp, err := sess.Checkpoint(nil)
		if err != nil {
			return rs, fmt.Errorf("checkpoint: re-anchor: %w", err)
		}
		if err := m.writeCheckpointFile(cp, newEpoch); err != nil {
			return rs, fmt.Errorf("checkpoint: re-anchor: %w", err)
		}
		m.checkpoints.Add(1)
		m.log.PurgeBefore(newEpoch)
		m.purgeCheckpointsBefore(newEpoch)
	}
	sess.SetShardLogger(m)
	return rs, nil
}

// LogShardBatch implements trace.ShardLogger: one WAL record per
// (ingest call, shard) group, appended under that shard's ingest lock.
func (m *Manager) LogShardBatch(shard int, encoded []byte) error {
	return m.log.AppendShard(shard, encoded)
}

// Commit implements trace.ShardLogger: the group-commit point, fsyncing
// dirty shard files under the batch policy.
func (m *Manager) Commit() error { return m.log.Commit() }

// Checkpoint takes and publishes a checkpoint of the attached session:
// freeze, rotate the WAL to the next epoch while frozen, snapshot, publish
// atomically, then garbage-collect the covered epochs and older
// checkpoints. On any failure the directory keeps its previous recovery
// line and the error is returned.
func (m *Manager) Checkpoint() error {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	if m.log == nil || m.sess == nil {
		return errors.New("checkpoint: manager has no recovered session")
	}
	next := m.log.Epoch() + 1
	cp, err := m.sess.Checkpoint(func() error { return m.log.Rotate(next) })
	if err != nil {
		m.ckptFailures.Add(1)
		return err
	}
	if err := m.writeCheckpointFile(cp, next); err != nil {
		m.ckptFailures.Add(1)
		return err
	}
	m.checkpoints.Add(1)
	m.log.PurgeBefore(next)
	m.purgeCheckpointsBefore(next)
	return nil
}

// Start runs Checkpoint every interval until Close. Failures are counted,
// reported to Config.OnError, and retried at the next tick.
func (m *Manager) Start(interval time.Duration) {
	if interval <= 0 || m.tickerStop != nil {
		return
	}
	m.tickerStop = make(chan struct{})
	m.tickerDone = make(chan struct{})
	go func() {
		defer close(m.tickerDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-m.tickerStop:
				return
			case <-t.C:
				if err := m.Checkpoint(); err != nil && m.onError != nil {
					m.onError(err)
				}
			}
		}
	}()
}

// Close stops the ticker and closes the WAL files (without a final
// checkpoint — callers wanting a clean shutdown point call Checkpoint, or
// Flush + Checkpoint for a drained-terminal directory, first).
func (m *Manager) Close() error {
	var err error
	m.closeOnce.Do(func() {
		if m.tickerStop != nil {
			close(m.tickerStop)
			<-m.tickerDone
		}
		if m.log != nil {
			err = m.log.Close()
		}
	})
	return err
}

// Stats snapshots the counters.
func (m *Manager) Stats() Stats {
	st := Stats{
		Checkpoints:         m.checkpoints.Load(),
		CheckpointFailures:  m.ckptFailures.Load(),
		LastCheckpointKeys:  m.lastCkptKeys.Load(),
		LastCheckpointBytes: m.lastCkptBytes.Load(),
		Recovery:            m.recovery,
	}
	if m.log != nil {
		st.WAL = m.log.Stats()
	}
	return st
}

// ---- checkpoint files ----

// CkptFileName returns the checkpoint file name of one epoch.
func CkptFileName(epoch int) string { return fmt.Sprintf("ckpt-%08d", epoch) }

// parseCkptName inverts CkptFileName ("ckpt-NNNNNNNN", exactly).
func parseCkptName(name string) (int, bool) {
	const prefix = "ckpt-"
	if len(name) != len(prefix)+8 || !strings.HasPrefix(name, prefix) {
		return 0, false
	}
	n := 0
	for _, c := range name[len(prefix):] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// ckptFooter closes a checkpoint file; a reader seeing the footer with the
// right key count knows the file is whole.
type ckptFooter struct {
	Keys int `json:"keys"`
}

// writeCheckpointFile publishes cp as the checkpoint of `epoch`: CRC-framed
// records (header, one per key, footer) to a temp file, fsync, atomic
// rename. Any failure removes the temp and leaves the directory unchanged.
func (m *Manager) writeCheckpointFile(cp *trace.SessionCheckpoint, epoch int) error {
	tmp := join(m.dir, CkptFileName(epoch)+".tmp")
	f, err := m.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: create %s: %w", tmp, err)
	}
	w := wal.NewWriter(f)
	fail := func(err error) error {
		w.Close()
		m.fs.Remove(tmp)
		return fmt.Errorf("checkpoint: write ckpt %d: %w", epoch, err)
	}
	hdr := *cp
	hdr.Keys = nil
	b, err := json.Marshal(&hdr)
	if err != nil {
		return fail(err)
	}
	if err := w.Append(wal.RecordCkptHeader, b); err != nil {
		return fail(err)
	}
	for i := range cp.Keys {
		b, err := json.Marshal(&cp.Keys[i])
		if err != nil {
			return fail(err)
		}
		if err := w.Append(wal.RecordCkptKey, b); err != nil {
			return fail(err)
		}
	}
	b, err = json.Marshal(ckptFooter{Keys: len(cp.Keys)})
	if err != nil {
		return fail(err)
	}
	if err := w.Append(wal.RecordCkptFooter, b); err != nil {
		return fail(err)
	}
	if err := w.Sync(); err != nil {
		return fail(err)
	}
	size := w.Written()
	if err := w.Close(); err != nil {
		m.fs.Remove(tmp)
		return fmt.Errorf("checkpoint: close ckpt %d: %w", epoch, err)
	}
	if err := m.fs.Rename(tmp, join(m.dir, CkptFileName(epoch))); err != nil {
		m.fs.Remove(tmp)
		return fmt.Errorf("checkpoint: publish ckpt %d: %w", epoch, err)
	}
	m.lastCkptKeys.Store(int64(len(cp.Keys)))
	m.lastCkptBytes.Store(size)
	return nil
}

// readCheckpoint loads and validates one checkpoint file. ok is false for
// any structural defect: unreadable, torn framing, missing or mismatched
// footer, undecodable records.
func (m *Manager) readCheckpoint(epoch int) (*trace.SessionCheckpoint, bool) {
	recs, torn, err := wal.ReadFile(m.fs, join(m.dir, CkptFileName(epoch)))
	if err != nil || torn != 0 || len(recs) < 2 {
		return nil, false
	}
	if recs[0].Type != wal.RecordCkptHeader || recs[len(recs)-1].Type != wal.RecordCkptFooter {
		return nil, false
	}
	var cp trace.SessionCheckpoint
	if json.Unmarshal(recs[0].Payload, &cp) != nil {
		return nil, false
	}
	var foot ckptFooter
	if json.Unmarshal(recs[len(recs)-1].Payload, &foot) != nil {
		return nil, false
	}
	body := recs[1 : len(recs)-1]
	if foot.Keys != len(body) {
		return nil, false
	}
	cp.Keys = make([]trace.KeyState, 0, len(body))
	for _, rec := range body {
		if rec.Type != wal.RecordCkptKey {
			return nil, false
		}
		var ks trace.KeyState
		if json.Unmarshal(rec.Payload, &ks) != nil {
			return nil, false
		}
		cp.Keys = append(cp.Keys, ks)
	}
	return &cp, true
}

// purgeCheckpointsBefore removes checkpoint files of epochs < epoch.
// Failures are ignored; stale checkpoints are harmless (recovery prefers
// the newest valid one).
func (m *Manager) purgeCheckpointsBefore(epoch int) {
	names, err := m.fs.ReadDir(m.dir)
	if err != nil {
		return
	}
	for _, name := range names {
		if e, ok := parseCkptName(name); ok && e < epoch {
			m.fs.Remove(join(m.dir, name))
		}
	}
}

// ---- spill store ----

// blobStore implements trace.BlobStore as one file per blob under the spill
// directory. Blobs are process-lifetime scratch (reconstructible from
// checkpoint + WAL), so Put does not fsync.
type blobStore struct {
	fs   faultfs.FS
	dir  string
	next atomic.Uint64
}

func (b *blobStore) name(id uint64) string { return fmt.Sprintf("seg-%016x.blob", id) }

func (b *blobStore) Put(data []byte) (uint64, error) {
	id := b.next.Add(1)
	f, err := b.fs.Create(join(b.dir, b.name(id)))
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	return id, nil
}

func (b *blobStore) Get(id uint64) ([]byte, error) {
	return faultfs.ReadFile(b.fs, join(b.dir, b.name(id)))
}

func (b *blobStore) Del(id uint64) error {
	return b.fs.Remove(join(b.dir, b.name(id)))
}

// join mirrors wal's flat path concatenation so both packages address the
// same names on any faultfs implementation.
func join(dir, name string) string {
	if dir == "" || dir == "." {
		return name
	}
	return dir + "/" + name
}
