package wire

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"kat/internal/history"
)

// Encoder accumulates operations and emits them as frames. One encoder is
// one stream: its key dictionary persists across AppendFrame calls (each
// frame lists only the keys the decoder has not seen yet), so the caller
// chooses frame boundaries freely — per batch, per flush interval — without
// re-paying key bytes. The zero value is not ready; use NewEncoder.
//
// Operation IDs are not encoded: batch ingest renumbers them on arrival, so
// they are identity-neutral (the same contract the durable text paths have).
// The weight and client fields ride along only when they carry information
// (weight > 1, client != 0), mirroring the text grammar's canonical form.
type Encoder struct {
	dict    map[string]uint32
	dictBuf []byte // pending additions: uvarint len + key bytes each
	newKeys int
	opsBuf  []byte
	nops    int
	last    int64 // previous op's start (delta base), reset per frame

	selfContained bool
	compress      bool
	fw            *flate.Writer
	cbuf          bytes.Buffer
}

// NewEncoder returns an empty encoder for one stream.
func NewEncoder() *Encoder {
	return &Encoder{dict: make(map[string]uint32)}
}

// SetCompress enables DEFLATE block compression: each frame's payload is
// compressed at BestSpeed and kept only if it actually shrank (the frame's
// compressed flag records which happened, so mixed streams decode fine).
func (e *Encoder) SetCompress(on bool) { e.compress = on }

// SetSelfContained makes every frame carry the dict-reset flag and re-list
// the keys it references, so each frame decodes alone — the mode WAL
// records use, since recovery replays them individually.
func (e *Encoder) SetSelfContained(on bool) { e.selfContained = on }

// Pending returns the number of operations buffered for the next frame.
func (e *Encoder) Pending() int { return e.nops }

// Add buffers one operation for the next frame.
func (e *Encoder) Add(key string, op history.Operation) error {
	id, ok := e.dict[key]
	if !ok {
		if !ValidKey(key) {
			return fmt.Errorf("wire: key %q is not expressible in the trace grammar", key)
		}
		id = uint32(len(e.dict))
		e.dict[key] = id
		e.dictBuf = binary.AppendUvarint(e.dictBuf, uint64(len(key)))
		e.dictBuf = append(e.dictBuf, key...)
		e.newKeys++
	}
	return e.addOp(id, op)
}

// AddOp buffers one keyed operation — Add for the codec's own element type,
// so callers holding decoded batches (the cluster router re-framing per-node
// sub-batches) need no destructuring at the call site.
func (e *Encoder) AddOp(kop Op) error {
	return e.Add(kop.Key, kop.Op)
}

// AddBytes is Add for a byte-slice key view; it allocates the key string
// only on the first sighting (map hits are allocation-free).
func (e *Encoder) AddBytes(key []byte, op history.Operation) error {
	id, ok := e.dict[string(key)]
	if !ok {
		if !ValidKey(key) {
			return fmt.Errorf("wire: key %q is not expressible in the trace grammar", key)
		}
		id = uint32(len(e.dict))
		e.dict[string(key)] = id
		e.dictBuf = binary.AppendUvarint(e.dictBuf, uint64(len(key)))
		e.dictBuf = append(e.dictBuf, key...)
		e.newKeys++
	}
	return e.addOp(id, op)
}

func (e *Encoder) addOp(id uint32, op history.Operation) error {
	var kindBit uint64
	switch op.Kind {
	case history.KindWrite:
		kindBit = 0
	case history.KindRead:
		kindBit = 1
	default:
		return fmt.Errorf("wire: operation kind %v is not encodable", op.Kind)
	}
	hasW := op.Weight > 1
	hasC := op.Client != 0
	head := uint64(id)<<3 | kindBit<<2
	if hasW {
		head |= 1 << 1
	}
	if hasC {
		head |= 1
	}
	b := e.opsBuf
	b = binary.AppendUvarint(b, head)
	b = binary.AppendUvarint(b, zigzag(op.Value))
	b = binary.AppendUvarint(b, zigzag(op.Start-e.last))
	e.last = op.Start
	b = binary.AppendUvarint(b, zigzag(op.Finish-op.Start))
	if hasW {
		b = binary.AppendUvarint(b, uint64(op.Weight))
	}
	if hasC {
		b = binary.AppendUvarint(b, zigzag(int64(op.Client)))
	}
	e.opsBuf = b
	e.nops++
	return nil
}

// AppendFrame finalizes the buffered operations as one frame appended to
// dst and clears the per-frame state. With nothing buffered it appends
// nothing (empty frames are never emitted).
func (e *Encoder) AppendFrame(dst []byte) []byte {
	if e.nops == 0 {
		return dst
	}
	// Assemble the payload in the ops buffer's tail so one buffer serves
	// both roles: [opsBuf | header + dictBuf + header + opsBuf-copy].
	pstart := len(e.opsBuf)
	p := binary.AppendUvarint(e.opsBuf, uint64(e.newKeys))
	p = append(p, e.dictBuf...)
	p = binary.AppendUvarint(p, uint64(e.nops))
	p = append(p, e.opsBuf[:pstart]...)
	e.opsBuf = p[:pstart] // keep the grown capacity for the next frame
	payload := p[pstart:]

	flags := byte(0)
	if e.selfContained {
		flags |= flagDictReset
	}
	stored := payload
	if e.compress {
		if c := e.deflate(payload); len(c) < len(payload) {
			stored = c
			flags |= flagCompressed
		}
	}
	dst = append(dst, magic[:]...)
	dst = append(dst, Version, flags)
	dst = binary.AppendUvarint(dst, uint64(len(stored)))
	dst = append(dst, stored...)
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(stored, castagnoli))

	e.dictBuf = e.dictBuf[:0]
	e.newKeys = 0
	e.opsBuf = e.opsBuf[:0]
	e.nops = 0
	e.last = 0
	if e.selfContained {
		clear(e.dict)
	}
	return dst
}

// deflate compresses p at BestSpeed into the encoder's scratch buffer.
func (e *Encoder) deflate(p []byte) []byte {
	e.cbuf.Reset()
	if e.fw == nil {
		e.fw, _ = flate.NewWriter(&e.cbuf, flate.BestSpeed)
	} else {
		e.fw.Reset(&e.cbuf)
	}
	e.fw.Write(p)
	e.fw.Close()
	return e.cbuf.Bytes()
}

// Reset returns the encoder to its initial state (dictionary cleared,
// buffers retained) for reuse on a new stream.
func (e *Encoder) Reset() {
	clear(e.dict)
	e.dictBuf = e.dictBuf[:0]
	e.newKeys = 0
	e.opsBuf = e.opsBuf[:0]
	e.nops = 0
	e.last = 0
}

// EncodeSelfContained appends ops to dst as one self-contained frame — the
// one-shot form used for WAL records and tests.
func EncodeSelfContained(dst []byte, ops []Op, compress bool) ([]byte, error) {
	e := NewEncoder()
	e.SetSelfContained(true)
	e.SetCompress(compress)
	for _, kop := range ops {
		if err := e.Add(kop.Key, kop.Op); err != nil {
			return dst, err
		}
	}
	return e.AppendFrame(dst), nil
}
