package wire

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"kat/internal/history"
)

// Decoder reads frames from a stream and yields their operations. One
// decoder is one stream: the key dictionary accumulates across frames
// (unless a frame resets it), and every dictionary key is interned as a
// single string shared by every operation that references it — decoding a
// batch allocates per new key, not per operation.
type Decoder struct {
	br  *bufio.Reader
	off int64 // bytes consumed from the stream

	dict    []string
	ops     []Op
	stored  []byte // frame payload as stored
	raw     []byte // decompressed payload accumulator
	block   []byte // fixed inflate read chunk
	scratch [4]byte
	fr      io.ReadCloser // flate reader, reused via flate.Resetter
}

// NewDecoder returns a decoder reading frames from r.
func NewDecoder(r io.Reader) *Decoder {
	d := &Decoder{}
	d.Reset(r)
	return d
}

// Reset repoints the decoder at a new stream, retaining its buffers —
// the pooling hook for per-request reuse.
func (d *Decoder) Reset(r io.Reader) {
	if d.br == nil {
		d.br = bufio.NewReaderSize(r, 1<<16)
	} else {
		d.br.Reset(r)
	}
	d.off = 0
	d.dict = d.dict[:0]
}

// Offset returns the number of stream bytes consumed so far.
func (d *Decoder) Offset() int64 { return d.off }

// errAt builds a DecodeError at an explicit offset.
func errAt(off int64, msg string, cause error) error {
	return &DecodeError{Offset: off, Msg: msg, Err: cause}
}

// readFull fills buf from the stream, mapping a short read to a torn-frame
// DecodeError at the current offset.
func (d *Decoder) readFull(buf []byte, what string) error {
	n, err := io.ReadFull(d.br, buf)
	d.off += int64(n)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return errAt(d.off, "torn frame: truncated "+what, err)
	}
	return nil
}

// ReadByte lets binary.ReadUvarint pull header varints while the offset
// stays accurate.
func (d *Decoder) ReadByte() (byte, error) {
	b, err := d.br.ReadByte()
	if err == nil {
		d.off++
	}
	return b, err
}

// Next decodes one frame and returns its operations, or io.EOF at a clean
// end of stream. The slice (and its Op values) is reused by the following
// Next or Reset call. Any malformed input yields a *DecodeError carrying
// the stream byte offset of the defect.
func (d *Decoder) Next() ([]Op, error) {
	frameOff := d.off
	// Magic: a clean EOF before any frame byte ends the stream; anything
	// partial is a torn frame.
	n, err := io.ReadFull(d.br, d.scratch[:4])
	d.off += int64(n)
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, errAt(d.off, "torn frame: truncated magic", io.ErrUnexpectedEOF)
	}
	if !IsMagic(d.scratch[:4]) {
		return nil, errAt(frameOff, fmt.Sprintf("bad magic %q (not a wire frame)", d.scratch[:4]), nil)
	}
	ver, err := d.ReadByte()
	if err != nil {
		return nil, errAt(d.off, "torn frame: truncated version", io.ErrUnexpectedEOF)
	}
	if ver != Version {
		return nil, errAt(d.off-1, fmt.Sprintf("unsupported frame version %d (decoder speaks %d)", ver, Version), nil)
	}
	flags, err := d.ReadByte()
	if err != nil {
		return nil, errAt(d.off, "torn frame: truncated flags", io.ErrUnexpectedEOF)
	}
	if flags&^byte(flagKnown) != 0 {
		return nil, errAt(d.off-1, fmt.Sprintf("unknown frame flags %#x", flags&^byte(flagKnown)), nil)
	}
	lenOff := d.off
	plen, err := binary.ReadUvarint(d)
	if err != nil {
		return nil, errAt(d.off, "torn frame: truncated payload length", io.ErrUnexpectedEOF)
	}
	if plen > maxPayloadBytes {
		return nil, errAt(lenOff, fmt.Sprintf("payload length %d exceeds the %d-byte limit", plen, int64(maxPayloadBytes)), nil)
	}
	payloadOff := d.off
	if cap(d.stored) < int(plen) {
		d.stored = make([]byte, plen)
	}
	d.stored = d.stored[:plen]
	if err := d.readFull(d.stored, "payload"); err != nil {
		return nil, err
	}
	if err := d.readFull(d.scratch[:4], "checksum"); err != nil {
		return nil, err
	}
	want := binary.LittleEndian.Uint32(d.scratch[:4])
	if got := crc32.Checksum(d.stored, castagnoli); got != want {
		return nil, errAt(frameOff, fmt.Sprintf("payload checksum mismatch (stored %#08x, computed %#08x)", want, got), nil)
	}
	payload := d.stored
	if flags&flagCompressed != 0 {
		payload, err = d.inflate(d.stored)
		if err != nil {
			return nil, errAt(payloadOff, "corrupt compressed payload", err)
		}
	}
	ops, err := d.decodePayload(payload, flags, payloadOff)
	if err != nil {
		return nil, err
	}
	return ops, nil
}

// inflate decompresses a frame payload into the decoder's scratch buffer.
func (d *Decoder) inflate(stored []byte) ([]byte, error) {
	src := bytes.NewReader(stored)
	if d.fr == nil {
		d.fr = flate.NewReader(src)
	} else if err := d.fr.(flate.Resetter).Reset(src, nil); err != nil {
		return nil, err
	}
	d.raw = d.raw[:0]
	buf := d.scratchBlock()
	for {
		n, err := d.fr.Read(buf)
		d.raw = append(d.raw, buf[:n]...)
		if len(d.raw) > maxPayloadBytes {
			return nil, fmt.Errorf("decompressed payload exceeds the %d-byte limit", int64(maxPayloadBytes))
		}
		if err == io.EOF {
			return d.raw, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// scratchBlock returns the fixed read chunk inflate copies through.
func (d *Decoder) scratchBlock() []byte {
	if d.block == nil {
		d.block = make([]byte, 32<<10)
	}
	return d.block
}

// decodePayload parses a decompressed payload into the reusable ops slice.
func (d *Decoder) decodePayload(p []byte, flags byte, payloadOff int64) ([]Op, error) {
	bad := func(format string, args ...any) error {
		return errAt(payloadOff, "malformed payload: "+fmt.Sprintf(format, args...), nil)
	}
	if flags&flagDictReset != 0 {
		d.dict = d.dict[:0]
	}
	i := 0
	uvar := func() (uint64, bool) {
		v, n := binary.Uvarint(p[i:])
		if n <= 0 {
			return 0, false
		}
		i += n
		return v, true
	}
	newKeys, ok := uvar()
	if !ok {
		return nil, bad("truncated dictionary count")
	}
	if newKeys > uint64(len(p)) {
		return nil, bad("dictionary count %d exceeds payload size", newKeys)
	}
	for j := uint64(0); j < newKeys; j++ {
		klen, ok := uvar()
		if !ok {
			return nil, bad("truncated key length")
		}
		if klen > maxKeyBytes {
			return nil, bad("key length %d exceeds the %d-byte limit", klen, int64(maxKeyBytes))
		}
		if uint64(len(p)-i) < klen {
			return nil, bad("key bytes overrun payload")
		}
		key := p[i : i+int(klen)]
		i += int(klen)
		if !ValidKey(key) {
			return nil, bad("key %q is not expressible in the trace grammar", key)
		}
		d.dict = append(d.dict, string(key))
	}
	nops, ok := uvar()
	if !ok {
		return nil, bad("truncated operation count")
	}
	// Every operation takes at least 4 payload bytes (head, value, start
	// delta, duration), so the remaining bytes bound the count.
	if nops > uint64(len(p)-i)/4+1 {
		return nil, bad("operation count %d exceeds payload size", nops)
	}
	if cap(d.ops) < int(nops) {
		d.ops = make([]Op, nops)
	}
	d.ops = d.ops[:nops]
	last := int64(0)
	for j := range d.ops {
		head, ok := uvar()
		if !ok {
			return nil, bad("truncated operation %d head", j)
		}
		keyID := head >> 3
		if keyID >= uint64(len(d.dict)) {
			return nil, bad("operation %d references key id %d outside the %d-entry dictionary", j, keyID, len(d.dict))
		}
		kind := history.KindWrite
		if head&(1<<2) != 0 {
			kind = history.KindRead
		}
		value, ok := uvar()
		if !ok {
			return nil, bad("truncated operation %d value", j)
		}
		sdelta, ok := uvar()
		if !ok {
			return nil, bad("truncated operation %d start delta", j)
		}
		dur, ok := uvar()
		if !ok {
			return nil, bad("truncated operation %d duration", j)
		}
		start := last + unzigzag(sdelta)
		last = start
		op := history.Operation{
			Kind:   kind,
			Value:  unzigzag(value),
			Start:  start,
			Finish: start + unzigzag(dur),
		}
		if head&(1<<1) != 0 {
			w, ok := uvar()
			if !ok {
				return nil, bad("truncated operation %d weight", j)
			}
			if w > math.MaxInt64 {
				return nil, bad("operation %d weight %d overflows int64", j, w)
			}
			op.Weight = int64(w)
		}
		if head&1 != 0 {
			c, ok := uvar()
			if !ok {
				return nil, bad("truncated operation %d client", j)
			}
			cv := unzigzag(c)
			if cv > math.MaxInt || cv < math.MinInt {
				return nil, bad("operation %d client %d overflows int", j, cv)
			}
			op.Client = int(cv)
		}
		d.ops[j] = Op{Key: d.dict[keyID], Op: op}
	}
	if i != len(p) {
		return nil, bad("%d trailing bytes after the last operation", len(p)-i)
	}
	return d.ops, nil
}
